// Figure 4 (and Figure 5): the schedule-quality examples.
//
// Figure 4: one SI with molecules m1=(1,2), m2=(2,2), m3=(3,3) (and the
// incomparable m4=(1,3)); two atom loading orders for sup=(3,3) and the
// "fastest available molecule after k loaded atoms" table — the good
// schedule composes m1 after 3 atoms and m2 after 4, the naive one waits
// until atom 5/6.
//
// Figure 5: two SIs over (A1, A2); the FSFR path upgrades SI1 completely
// before SI2, ASF first gives each SI a small molecule.
#include <cstdio>

#include "base/table.h"
#include "isa/h264_si_library.h"
#include "sched/asf.h"
#include "sched/fsfr.h"
#include "sched/hef.h"
#include "sched/oracle.h"
#include "sched/registry.h"

namespace {

using namespace rispp;

SpecialInstructionSet figure4_set() {
  AtomLibrary lib;
  lib.add({"A1", 2, 100, 400});
  lib.add({"A2", 2, 100, 400});
  SpecialInstructionSet set(std::move(lib));
  DataPathGraph g(&set.library());
  const auto l1 = g.add_layer(0, 6);
  g.add_layer(1, 6, l1);
  set.add_si("SI", std::move(g), Molecule{3, 3}, 200);
  return set;
}

void availability_table(const SpecialInstructionSet& set,
                        const std::vector<AtomTypeId>& loads, const char* title) {
  std::printf("%s: loads =", title);
  for (AtomTypeId t : loads) std::printf(" %s", t == 0 ? "A1" : "A2");
  std::printf("\n");
  TextTable table({"# loaded atoms", "available", "fastest molecule", "latency"});
  Molecule a(set.atom_type_count());
  for (std::size_t k = 0; k < loads.size(); ++k) {
    ++a[loads[k]];
    const MoleculeId m = set.fastest_available(0, a);
    table.add(k + 1, a.to_string(),
              m == kSoftwareMolecule ? std::string("software")
                                     : set.si(0).molecule(m).atoms.to_string(),
              set.si(0).latency(m));
  }
  std::printf("%s\n", table.render().c_str());
}

void figure4() {
  const auto set = figure4_set();
  std::printf("=== Figure 4 — different Atom schedules for sup(M) = (3,3) ===\n\n");
  std::printf("Molecule list of the SI (derived by list scheduling):\n");
  for (const auto& m : set.si(0).molecules)
    std::printf("  %s latency %llu\n", m.atoms.to_string().c_str(),
                static_cast<unsigned long long>(m.latency));
  std::printf("  software latency %llu\n\n",
              static_cast<unsigned long long>(set.si(0).software_latency));

  // The paper's good schedule: u2,u2,u1,u1,u2,u1.
  availability_table(set, {1, 1, 0, 0, 1, 0}, "good schedule (paper SF)");
  // The naive schedule: all A1 first.
  availability_table(set, {0, 0, 0, 1, 1, 1}, "naive schedule");

  // What our schedulers produce for this request.
  ScheduleRequest req;
  req.set = &set;
  MoleculeId m3 = kSoftwareMolecule;
  for (MoleculeId m = 0; m < set.si(0).molecules.size(); ++m)
    if (set.si(0).molecule(m).atoms == Molecule{3, 3}) m3 = m;
  req.selected = {SiRef{0, m3}};
  req.available = Molecule(2);
  req.expected_executions = {1000};
  for (const auto& name : scheduler_names()) {
    const Schedule s = make_scheduler(name)->schedule(req);
    availability_table(set, s.loads, name.c_str());
  }
  const Schedule oracle = OracleScheduler(87'403).schedule(req);
  availability_table(set, oracle.loads, "Oracle (exhaustive)");
}

void figure5() {
  std::printf("=== Figure 5 — FSFR vs ASF for two SIs over (A1, A2) ===\n\n");
  AtomLibrary lib;
  lib.add({"A1", 2, 80, 400});
  lib.add({"A2", 2, 80, 400});
  SpecialInstructionSet set(std::move(lib));
  {
    DataPathGraph g(&set.library());
    g.add_layer(0, 8);
    set.add_si("SI1", std::move(g), Molecule{4, 0}, 150);
  }
  {
    DataPathGraph g(&set.library());
    g.add_layer(1, 8);
    set.add_si("SI2", std::move(g), Molecule{0, 4}, 150);
  }
  ScheduleRequest req;
  req.set = &set;
  req.selected = {SiRef{0, static_cast<MoleculeId>(set.si(0).molecules.size() - 1)},
                  SiRef{1, static_cast<MoleculeId>(set.si(1).molecules.size() - 1)}};
  req.available = Molecule(2);
  req.expected_executions = {5000, 800};

  for (const char* name : {"FSFR", "ASF", "HEF"}) {
    const Schedule s = make_scheduler(name)->schedule(req);
    std::printf("%-4s path:", name);
    Molecule a(2);
    for (const UpgradeStep& step : s.steps) {
      a = join(a, set.si(step.molecule.si).molecule(step.molecule.mol).atoms);
      std::printf("  %s:%s", set.si(step.molecule.si).name.c_str(), a.to_string().c_str());
    }
    std::printf("\n");
  }
  std::printf("\nFSFR walks SI1 to its selected molecule before touching SI2;\n"
              "ASF first gives both SIs a small molecule (the Figure 5 paths).\n");
}

}  // namespace

int main() {
  figure4();
  figure5();
  return 0;
}
