// Shared context for the figure/table bench binaries.
//
// Every report binary replays the same 140-frame CIF H.264 workload (the
// paper's evaluation run). Generating the trace takes a few seconds, so it
// is cached on disk keyed by frame count; RISPP_FRAMES overrides the length
// (e.g. RISPP_FRAMES=20 for a quick pass) and RISPP_TRACE_DIR the cache
// location (default: the system temp directory).
#pragma once

#include <memory>
#include <string>

#include "baselines/molen.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp::bench {

struct BenchContext {
  BenchContext();

  SpecialInstructionSet set;
  WorkloadTrace trace;
  int frames;

  /// Runs the trace under the RISPP Run-Time Manager with `scheduler_name`.
  SimResult run_scheduler(const std::string& scheduler_name, unsigned container_count,
                          SimStats* stats = nullptr,
                          ForecastMode mode = ForecastMode::kMonitored) const;

  /// Runs the trace under the Molen-like baseline.
  SimResult run_molen(unsigned container_count, SimStats* stats = nullptr) const;
};

/// Number of frames the benches use (env RISPP_FRAMES, default 140).
int bench_frames();

}  // namespace rispp::bench
