// Shared context for the figure/table bench binaries.
//
// Every report binary replays the same 140-frame CIF H.264 workload (the
// paper's evaluation run). Generating the trace takes a few seconds, so it
// is cached on disk keyed by trace version, frame count and a fingerprint
// of the SI set + workload config (so edits to the library can never replay
// a stale trace); RISPP_FRAMES overrides the length (e.g. RISPP_FRAMES=20
// for a quick pass) and RISPP_TRACE_DIR the cache location (default: the
// system temp directory).
//
// Sweeps fan their cells across cores with run_sweep (RISPP_THREADS
// controls the width). Thread-safety contract: every run_* call builds its
// own backend and scheduler, so concurrent cells share only the immutable
// BenchContext (const SpecialInstructionSet + const WorkloadTrace). Keep it
// that way — never add mutable state to BenchContext that run_* touches.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "base/parallel.h"
#include "baselines/molen.h"
#include "baselines/onechip.h"
#include "fleet/spec.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp::bench {

struct BenchContext {
  BenchContext();

  SpecialInstructionSet set;
  WorkloadTrace trace;
  int frames;

  /// Runs the trace under the RISPP Run-Time Manager with `scheduler_name`.
  SimResult run_scheduler(const std::string& scheduler_name, unsigned container_count,
                          SimStats* stats = nullptr,
                          ForecastMode mode = ForecastMode::kMonitored) const;

  /// Runs the trace under the Molen-like baseline.
  SimResult run_molen(unsigned container_count, SimStats* stats = nullptr) const;

  /// Runs the trace under the OneChip-like baseline.
  SimResult run_onechip(unsigned container_count, SimStats* stats = nullptr) const;
};

/// Number of frames the benches use (env RISPP_FRAMES, default 140).
/// RISPP_FRAMES must be an integer >= 1 — garbage or 0 is a loud error
/// (exit kEnvParseExitCode), never a silent fall-back to the default.
int bench_frames();

/// Digest of everything that determines a recorded trace's contents: the SI
/// set (names, molecule tables — isa fingerprint()) plus the WorkloadConfig
/// fields. Editing the H.264 SI library or the workload parameters changes
/// the digest, so a stale cached trace can never be replayed.
std::uint64_t workload_fingerprint(const SpecialInstructionSet& set,
                                   const h264::WorkloadConfig& config);

/// Cache file the bench trace for `config` lives at: keyed by
/// kWorkloadTraceVersion, the frame count and workload_fingerprint(). Honors
/// RISPP_TRACE_DIR (default: the system temp directory).
std::filesystem::path trace_cache_path(const SpecialInstructionSet& set,
                                       const h264::WorkloadConfig& config);

/// Ensures the shared trace cache holds the bench workload (generating it if
/// missing), without constructing a full BenchContext. The concurrent bench
/// driver calls this once before fanning report binaries out, so every child
/// hits a warm cache instead of racing to encode the sequence.
void warm_trace_cache();

/// The fleet mix fig_multitenant sweeps: 16 sessions, HEF/SJF, 8 ACs per
/// tenant, lengths 1..min(frames, 4). Shared with warm_fleet_trace_cache so
/// the pre-warm and the bench can never drift apart.
fleet::FleetSpec multitenant_fleet_spec(int frames);

/// The fig7-like heterogeneous mix fleet_throughput runs: 400 sessions, all
/// schedulers, ACs 5..20, lengths 1..min(frames, 8).
fleet::FleetSpec throughput_fleet_spec(int frames);

/// Pre-generates every distinct workload trace the fleet benches touch into
/// the shared on-disk trace cache (via the fleet TraceRepository, which
/// persists on generation). Like warm_trace_cache, the driver calls this
/// once up front so child report binaries load instead of encoding.
void warm_fleet_trace_cache();

/// Fans `fn` over `cells` with parallel_for; results keep cell order, so the
/// output is deterministic regardless of RISPP_THREADS. `fn` must not touch
/// shared mutable state (see the thread-safety contract above).
template <typename Cell, typename Fn>
auto run_sweep(const std::vector<Cell>& cells, Fn&& fn) {
  using Result = std::decay_t<decltype(fn(cells.front()))>;
  std::vector<Result> results(cells.size());
  parallel_for(cells.size(), [&](std::size_t i) { results[i] = fn(cells[i]); });
  return results;
}

/// Machine-readable perf trajectory: when RISPP_BENCH_JSON_DIR is set, the
/// destructor writes <dir>/BENCH_<name>.json with wall-clock seconds,
/// cells/sec, thread count and frame count, so speedups stay trackable
/// across PRs. Off (no I/O) when the variable is unset; a failed write
/// (missing/unwritable dir) is reported on stderr, never swallowed.
class BenchPerfLog {
 public:
  explicit BenchPerfLog(std::string name);
  ~BenchPerfLog();
  BenchPerfLog(const BenchPerfLog&) = delete;
  BenchPerfLog& operator=(const BenchPerfLog&) = delete;

  /// Number of sweep cells the binary ran (for the cells/sec rate).
  void set_cells(std::size_t cells) { cells_ = cells; }

 private:
  std::string name_;
  std::size_t cells_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rispp::bench
