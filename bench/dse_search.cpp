// DSE evaluator throughput and discovered-ISA quality (DESIGN §10).
//
// Runs the automatic SI design-space exploration on the fig7-like H.264
// trace and reports (a) the quality criterion — the discovered ISA must
// reach at least 90% of the hand-built Table 1 library's speedup under the
// same scheduler and AC budgets — and (b) the perf criterion — the memoized
// + parallel + bound-pruned evaluator must sustain at least 10x the
// candidates/sec of naive full re-simulation (scalar reference replay, no
// MakespanMemo, no eval cache, no decision cache). Both are hard
// assertions: the bench exits nonzero when either degrades, and the
// reported gauges feed BENCH_SUITE.json / ci/bench_baseline.json.
#include <chrono>
#include <cstdio>

#include "base/metrics.h"
#include "base/prng.h"
#include "base/table.h"
#include "bench/common.h"
#include "config/h264_platform.h"
#include "dpg/makespan_memo.h"
#include "dse/engine.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "sim/trace.h"

namespace {

using namespace rispp;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

WorkloadTrace load_or_generate(const SpecialInstructionSet& set, int frames) {
  h264::WorkloadConfig config;
  config.frames = frames;
  const auto path = h264::trace_cache_path(set, config);
  if (auto cached = try_load_trace_file(path)) return std::move(*cached);
  std::fprintf(stderr, "[bench] encoding %d synthetic CIF frames (cached at %s)...\n",
               frames, path.string().c_str());
  WorkloadTrace trace = h264::generate_h264_workload(set, config).trace;
  save_trace_file(trace, path);
  return trace;
}

}  // namespace

int main() {
  bench::BenchPerfLog perf("dse_search");

  // The search trace stays short — DSE cost scales with candidate count, not
  // trace length — mirroring how the fleet benches cap session length.
  const int frames = std::min(bench::bench_frames(), 8);
  const SpecialInstructionSet handbuilt_set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = load_or_generate(handbuilt_set, frames);
  const config::PlatformSpec handbuilt = config::h264_platform_spec();

  // Fresh caches so the measured hit rate is the search's own, not leftovers.
  dse::EvalCache eval_cache;
  MakespanMemo makespan_memo;
  dse::DseOptions options;
  options.eval_cache = &eval_cache;
  options.makespan_memo = &makespan_memo;

  const auto search_start = std::chrono::steady_clock::now();
  const dse::DseResult result = run_dse(trace, handbuilt, options);
  const double search_seconds = seconds_since(search_start);

  // Scored candidates: everything the evaluator disposed of — cache hits and
  // bound-abandons cost ~nothing, replays cost a batched simulation.
  const std::uint64_t scored = result.cache_hits + result.abandoned + result.replays;
  const double candidates_per_sec =
      search_seconds > 0.0 ? static_cast<double>(scored) / search_seconds : 0.0;
  perf.set_cells(scored);

  // Naive baseline: full re-simulation of a handful of distinct candidates
  // drawn from the same mutation space.
  Xoshiro256 naive_rng(12345);
  constexpr int kNaiveCandidates = 5;
  dse::DesignPoint naive_point = dse::degraded_seed(handbuilt);
  const auto naive_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kNaiveCandidates; ++i) {
    dse::mutate(naive_point, naive_rng);
    dse::evaluate_candidate_naive(naive_point.spec, trace, result.reference_cycles, options);
  }
  const double naive_seconds = seconds_since(naive_start);
  const double naive_per_sec =
      naive_seconds > 0.0 ? kNaiveCandidates / naive_seconds : 0.0;
  const double throughput_ratio = naive_per_sec > 0.0 ? candidates_per_sec / naive_per_sec : 0.0;
  const double hit_rate =
      scored != 0 ? static_cast<double>(result.cache_hits) / static_cast<double>(scored) : 0.0;

  metric_gauge("dse.search.candidates_per_sec").set(candidates_per_sec);
  metric_gauge("dse.search.naive_candidates_per_sec").set(naive_per_sec);
  metric_gauge("dse.search.eval_throughput_ratio").set(throughput_ratio);
  metric_gauge("dse.search.eval_cache_hit_rate").set(hit_rate);

  std::printf("DSE search — %d frames, %u generations, scheduler %s\n\n", frames,
              result.generations_run, options.scheduler.c_str());
  TextTable table({"metric", "value"});
  table.add("hand-built mean speedup", format_fixed(result.handbuilt_eval.mean_speedup, 3));
  table.add("discovered mean speedup", format_fixed(result.best.eval.mean_speedup, 3));
  table.add("discovered / hand-built", format_fixed(result.discovered_vs_handbuilt, 3));
  table.add("pareto front size", result.front.size());
  table.add("candidates scored", scored);
  table.add("eval cache hit rate", format_fixed(hit_rate, 3));
  table.add("abandoned (bound)", result.abandoned);
  table.add("candidates/sec (engine)", format_fixed(candidates_per_sec, 0));
  table.add("candidates/sec (naive)", format_fixed(naive_per_sec, 0));
  table.add("throughput ratio", format_fixed(throughput_ratio, 1));
  std::printf("%s\n", table.render().c_str());

  bool ok = true;
  if (result.discovered_vs_handbuilt < 0.90) {
    std::fprintf(stderr,
                 "FAIL: discovered ISA reaches only %.3f of the hand-built speedup "
                 "(needs >= 0.90)\n",
                 result.discovered_vs_handbuilt);
    ok = false;
  }
  if (throughput_ratio < 10.0) {
    std::fprintf(stderr,
                 "FAIL: memoized evaluator sustains only %.1fx the naive "
                 "candidates/sec (needs >= 10x)\n",
                 throughput_ratio);
    ok = false;
  }
  return ok ? 0 : 1;
}
