// Figure 7: execution time for encoding the CIF sequence as a function of
// the Atom Container count (5..24), for the four scheduling strategies.
//
// Paper shape to look for: all strategies tie at tiny budgets; FSFR degrades
// in the mid range ("as it strictly upgrades one SI after the other") and
// recovers at large budgets; ASF/SJF plateau; HEF is lowest throughout and
// the spread widens as ACs are added.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "base/csv.h"
#include "base/table.h"
#include "bench/common.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;
  bench::BenchPerfLog perf("fig7");

  std::printf("Figure 7 — execution time [Mcycles] encoding %d CIF frames\n", ctx.frames);
  std::printf("(paper: 140 frames, y-axis 200-500 Mcycles, 0 ACs = 7,403M)\n\n");

  const auto names = scheduler_names();
  struct Cell { std::string scheduler; unsigned acs; };
  std::vector<Cell> cells;
  for (unsigned acs = 5; acs <= 24; ++acs)
    for (const auto& name : names) cells.push_back({name, acs});
  perf.set_cells(cells.size());

  const auto cycles = bench::run_sweep(cells, [&](const Cell& cell) {
    return ctx.run_scheduler(cell.scheduler, cell.acs).total_cycles;
  });

  TextTable table({"#ACs", "ASF", "FSFR", "SJF", "HEF", "best"});
  CsvWriter csv(std::cout, {"acs", "asf_mcycles", "fsfr_mcycles", "sjf_mcycles",
                            "hef_mcycles"});
  for (unsigned acs = 5; acs <= 24; ++acs) {
    const std::size_t row = (acs - 5) * names.size();
    double mcycles[4];
    for (std::size_t i = 0; i < names.size(); ++i)
      mcycles[i] = static_cast<double>(cycles[row + i]) / 1e6;
    std::size_t best = 0;
    for (std::size_t i = 1; i < 4; ++i)
      if (mcycles[i] < mcycles[best]) best = i;
    table.add(acs, mcycles[0], mcycles[1], mcycles[2], mcycles[3], names[best]);
    csv.write(acs, format_fixed(mcycles[0], 2), format_fixed(mcycles[1], 2),
              format_fixed(mcycles[2], 2), format_fixed(mcycles[3], 2));
  }
  std::printf("\n%s\n", table.render().c_str());
  return 0;
}
