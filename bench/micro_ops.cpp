// Micro-benchmarks (google-benchmark): the hot operations of the run-time
// system and of the workload kernels. These are host-CPU numbers — they
// bound simulator throughput, not the modelled hardware.
#include <benchmark/benchmark.h>

#include "alg/molecule.h"
#include "base/metrics.h"
#include "base/parallel.h"
#include "base/prng.h"
#include "base/trace_event.h"
#include "bench/common.h"
#include "config/h264_platform.h"
#include "dpg/enumerate.h"
#include "dpg/makespan_memo.h"
#include "dse/design_point.h"
#include "dse/engine.h"
#include "dse/pareto.h"
#include "dpg/list_scheduler.h"
#include "fleet/session_batch.h"
#include "h264/workload.h"
#include "h264/interpolate.h"
#include "h264/kernels.h"
#include "h264/synthetic_video.h"
#include "h264/transform.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "rtm/tenant_sim.h"
#include "sched/hef.h"
#include "sched/registry.h"
#include "select/selection.h"
#include "sim/executor.h"

namespace {

using namespace rispp;

const SpecialInstructionSet& h264_set() {
  static const SpecialInstructionSet set = h264sis::build_h264_si_set();
  return set;
}

void BM_MoleculeJoin(benchmark::State& state) {
  const Molecule a{1, 2, 0, 4, 1, 0, 2, 3, 0, 1, 2, 0, 1};
  const Molecule b{2, 0, 3, 1, 0, 2, 1, 0, 4, 0, 1, 2, 0};
  for (auto _ : state) benchmark::DoNotOptimize(join(a, b));
}
BENCHMARK(BM_MoleculeJoin);

void BM_MoleculeMissing(benchmark::State& state) {
  const Molecule a{1, 2, 0, 4, 1, 0, 2, 3, 0, 1, 2, 0, 1};
  const Molecule b{2, 0, 3, 1, 0, 2, 1, 0, 4, 0, 1, 2, 0};
  for (auto _ : state) benchmark::DoNotOptimize(missing(a, b));
}
BENCHMARK(BM_MoleculeMissing);

// In-place counterparts of the two ops above: the ratio to BM_MoleculeJoin /
// BM_MoleculeMissing is the allocation cost the decision path no longer pays.
void BM_MoleculeJoinInto(benchmark::State& state) {
  const Molecule a{1, 2, 0, 4, 1, 0, 2, 3, 0, 1, 2, 0, 1};
  const Molecule b{2, 0, 3, 1, 0, 2, 1, 0, 4, 0, 1, 2, 0};
  Molecule acc = a;
  for (auto _ : state) {
    join_into(acc, b);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MoleculeJoinInto);

void BM_MoleculeMissingInto(benchmark::State& state) {
  const Molecule a{1, 2, 0, 4, 1, 0, 2, 3, 0, 1, 2, 0, 1};
  const Molecule b{2, 0, 3, 1, 0, 2, 1, 0, 4, 0, 1, 2, 0};
  Molecule out;
  for (auto _ : state) {
    missing_into(out, a, b);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MoleculeMissingInto);

void BM_FastestAvailable(benchmark::State& state) {
  const auto& set = h264_set();
  const SiId satd = set.find("SATD").value();
  Molecule avail(set.atom_type_count());
  for (std::size_t t = 0; t < avail.dimension(); ++t) avail[t] = 2;
  for (auto _ : state) benchmark::DoNotOptimize(set.fastest_available(satd, avail));
}
BENCHMARK(BM_FastestAvailable);

void BM_ListScheduleSatd(benchmark::State& state) {
  const auto& set = h264_set();
  const SiId satd = set.find("SATD").value();
  const Molecule& instances = set.si(satd).molecules.front().atoms;
  for (auto _ : state)
    benchmark::DoNotOptimize(molecule_latency(set.si(satd).graph, instances));
}
BENCHMARK(BM_ListScheduleSatd);

void BM_EnumerateMoleculesSatd(benchmark::State& state) {
  const auto& set = h264_set();
  const SiId satd = set.find("SATD").value();
  EnumerationOptions options;
  // The platform's design-time caps (zero caps would mean occurrence-count
  // caps: a ~500K-point grid — a design-space-exploration job, not a micro
  // benchmark).
  options.instance_caps = Molecule(set.atom_type_count());
  const auto qsub = set.library().find("QSub").value();
  const auto had = set.library().find("HadCore").value();
  const auto sav = set.library().find("SAV").value();
  const auto repack = set.library().find("Repack").value();
  options.instance_caps[qsub] = 4;
  options.instance_caps[had] = 6;
  options.instance_caps[sav] = 3;
  options.instance_caps[repack] = 2;
  for (auto _ : state)
    benchmark::DoNotOptimize(enumerate_molecules(set.si(satd).graph, options));
}
BENCHMARK(BM_EnumerateMoleculesSatd)->Unit(benchmark::kMillisecond);

ScheduleRequest me_request(const SpecialInstructionSet& set) {
  ScheduleRequest req;
  req.set = &set;
  req.expected_executions.assign(set.si_count(), 0);
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  req.selected = {SiRef{sad, 2},
                  SiRef{satd, static_cast<MoleculeId>(set.si(satd).molecules.size() - 1)}};
  req.expected_executions[sad] = 24'000;
  req.expected_executions[satd] = 3'600;
  req.available = Molecule(set.atom_type_count());
  return req;
}

void BM_HefScheduleMeHotSpot(benchmark::State& state) {
  const auto& set = h264_set();
  const ScheduleRequest req = me_request(set);
  const HefScheduler hef;
  for (auto _ : state) benchmark::DoNotOptimize(hef.schedule(req));
}
BENCHMARK(BM_HefScheduleMeHotSpot);

void BM_SchedulerStrategies(benchmark::State& state) {
  static const std::vector<std::string> names = scheduler_names();
  const auto& set = h264_set();
  const ScheduleRequest req = me_request(set);
  const auto scheduler = make_scheduler(names[static_cast<std::size_t>(state.range(0))]);
  for (auto _ : state) benchmark::DoNotOptimize(scheduler->schedule(req));
  state.SetLabel(names[static_cast<std::size_t>(state.range(0))]);
}
BENCHMARK(BM_SchedulerStrategies)->DenseRange(0, 3);

void BM_SelectMolecules(benchmark::State& state) {
  const auto& set = h264_set();
  SelectionRequest req;
  req.set = &set;
  req.expected_executions.assign(set.si_count(), 500);
  for (SiId si = 0; si < set.si_count(); ++si) req.hot_spot_sis.push_back(si);
  req.container_count = static_cast<unsigned>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(select_molecules(req));
  state.SetLabel(std::to_string(state.range(0)) + " ACs");
}
BENCHMARK(BM_SelectMolecules)->Arg(8)->Arg(16)->Arg(24);

// The original O(rounds·|SIs|²·molecules·dim) greedy kept as the fuzz
// oracle; the ratio to BM_SelectMolecules is the incremental rewrite's win.
void BM_SelectMoleculesReference(benchmark::State& state) {
  const auto& set = h264_set();
  SelectionRequest req;
  req.set = &set;
  req.expected_executions.assign(set.si_count(), 500);
  for (SiId si = 0; si < set.si_count(); ++si) req.hot_spot_sis.push_back(si);
  req.container_count = static_cast<unsigned>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(select_molecules_reference(req));
  state.SetLabel(std::to_string(state.range(0)) + " ACs");
}
BENCHMARK(BM_SelectMoleculesReference)->Arg(8)->Arg(16)->Arg(24);

// The full hot-spot-entry decision path (selection + scheduling + load-queue
// rebuild), with the decision cache off (every entry runs the pipeline) vs
// on (every entry after the first replays the memoized result). `now` stays
// at 0 so the port never retires its first load and the ready-atom state —
// part of the cache key — stays fixed; static seeds keep the forecast fixed.
void BM_HotSpotEntryDecision(benchmark::State& state) {
  const auto& set = h264_set();
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad, satd}, 8}};
  HotSpotInstance inst;
  inst.hot_spot = 0;
  inst.entry_overhead = 1000;
  trace.instances.push_back(std::move(inst));

  const HefScheduler hef;
  RtmConfig config;
  config.container_count = 17;
  config.scheduler = &hef;
  config.forecast_mode = ForecastMode::kStaticSeeds;
  config.enable_decision_cache = state.range(0) != 0;
  RunTimeManager rtm(&set, 1, config);
  rtm.seed_forecast(0, sad, 87'500);
  rtm.seed_forecast(0, satd, 12'500);
  for (auto _ : state) {
    rtm.on_hot_spot_entry(trace, 0, 0);
    rtm.on_hot_spot_exit(0);
  }
  state.SetLabel(config.enable_decision_cache ? "cached" : "uncached");
}
BENCHMARK(BM_HotSpotEntryDecision)->Arg(0)->Arg(1);

// The tracing-off cost every instrumentation site pays: a relaxed atomic
// load plus a branch at span construction and destruction. The "zero-cost"
// claim of the tracer is this number staying at a few nanoseconds.
void BM_TraceSpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    RISPP_TRACE_SPAN(TraceTrack::kRtm, "bench span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

// One relaxed fetch_add: the always-on cost of a registry counter bump.
void BM_MetricCounterAdd(benchmark::State& state) {
  static MetricCounter& counter = metric_counter("bench.micro_counter");
  for (auto _ : state) {
    counter.add();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MetricCounterAdd);

void BM_Sad16x16(benchmark::State& state) {
  Xoshiro256 rng(1);
  h264::Plane a(64, 64), b(64, 64);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) {
      a.at(x, y) = static_cast<h264::Pixel>(rng.bounded(256));
      b.at(x, y) = static_cast<h264::Pixel>(rng.bounded(256));
    }
  for (auto _ : state) benchmark::DoNotOptimize(h264::sad_16x16(a, 16, 16, b, 17, 15));
}
BENCHMARK(BM_Sad16x16);

void BM_Satd16x16(benchmark::State& state) {
  Xoshiro256 rng(2);
  h264::Plane a(64, 64), b(64, 64);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) {
      a.at(x, y) = static_cast<h264::Pixel>(rng.bounded(256));
      b.at(x, y) = static_cast<h264::Pixel>(rng.bounded(256));
    }
  for (auto _ : state) benchmark::DoNotOptimize(h264::satd_16x16(a, 16, 16, b, 17, 15));
}
BENCHMARK(BM_Satd16x16);

void BM_Dct4x4RoundTrip(benchmark::State& state) {
  int in[16], coeff[16], out[16];
  for (int i = 0; i < 16; ++i) in[i] = (i * 37) % 255 - 128;
  for (auto _ : state) {
    h264::dct4x4(in, coeff);
    h264::idct4x4(coeff, out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_Dct4x4RoundTrip);

// Scalar vs SIMD kernel backends (the pinned variants, bypassing dispatch).
// The items/sec ratio of Arg(0) to Arg(1) is the per-kernel speedup the
// cold trace-generation path gets from the vector backend.

h264::Plane random_plane(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  h264::Plane p(64, 64);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) p.at(x, y) = static_cast<h264::Pixel>(rng.bounded(256));
  return p;
}

void BM_Sad16x16Backend(benchmark::State& state) {
  const h264::Plane a = random_plane(11), b = random_plane(12);
  const bool simd = state.range(0) != 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(simd ? h264::sad_16x16_simd(a, 16, 16, b, 17, 15)
                                  : h264::sad_16x16_scalar(a, 16, 16, b, 17, 15));
  state.SetLabel(simd ? "simd" : "scalar");
}
BENCHMARK(BM_Sad16x16Backend)->Arg(0)->Arg(1);

void BM_Satd16x16Backend(benchmark::State& state) {
  const h264::Plane a = random_plane(13), b = random_plane(14);
  const bool simd = state.range(0) != 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(simd ? h264::satd_16x16_simd(a, 16, 16, b, 17, 15)
                                  : h264::satd_16x16_scalar(a, 16, 16, b, 17, 15));
  state.SetLabel(simd ? "simd" : "scalar");
}
BENCHMARK(BM_Satd16x16Backend)->Arg(0)->Arg(1);

void BM_Satd16x16PredBackend(benchmark::State& state) {
  const h264::Plane a = random_plane(15);
  h264::Pixel pred[16 * 16];
  Xoshiro256 rng(16);
  for (auto& p : pred) p = static_cast<h264::Pixel>(rng.bounded(256));
  const bool simd = state.range(0) != 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(simd ? h264::satd_16x16_pred_simd(a, 16, 16, pred)
                                  : h264::satd_16x16_pred_scalar(a, 16, 16, pred));
  state.SetLabel(simd ? "simd" : "scalar");
}
BENCHMARK(BM_Satd16x16PredBackend)->Arg(0)->Arg(1);

void BM_MotionCompensateHalfPel(benchmark::State& state) {
  const h264::Plane ref = random_plane(17);
  h264::Pixel dst[16 * 16];
  // Diagonal half-pel at an interior MB: the most expensive position (h+v
  // 6-tap), fully inside the SIMD fast-path footprint.
  const h264::MotionVector mv{3, 5};
  const bool simd = state.range(0) != 0;
  for (auto _ : state) {
    if (simd) h264::motion_compensate_16x16_simd(ref, 16, 16, mv, dst);
    else h264::motion_compensate_16x16_scalar(ref, 16, 16, mv, dst);
    benchmark::DoNotOptimize(dst);
  }
  state.SetLabel(simd ? "simd" : "scalar");
}
BENCHMARK(BM_MotionCompensateHalfPel)->Arg(0)->Arg(1);

void BM_Dct4x4Backend(benchmark::State& state) {
  int in[16], coeff[16], out[16];
  for (int i = 0; i < 16; ++i) in[i] = (i * 37) % 255 - 128;
  const bool simd = state.range(0) != 0;
  for (auto _ : state) {
    if (simd) {
      h264::dct4x4_simd(in, coeff);
      h264::idct4x4_simd(coeff, out);
    } else {
      h264::dct4x4_scalar(in, coeff);
      h264::idct4x4_scalar(coeff, out);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(simd ? "simd" : "scalar");
}
BENCHMARK(BM_Dct4x4Backend)->Arg(0)->Arg(1);

// Work-stealing throughput on deliberately uneven tasks: index i costs
// O((i % 32)^2), so round-robin chunk dealing leaves some deques heavy and
// the light owners must steal to keep busy. items/sec at N threads vs 1
// thread shows the pool's load-balancing efficiency.
void BM_PoolStealUneven(benchmark::State& state) {
  constexpr std::size_t kTasks = 512;
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  std::vector<std::uint64_t> out(kTasks);
  for (auto _ : state) {
    pool.parallel_for(kTasks, [&](std::size_t i) {
      const std::uint64_t reps = (i % 32) * (i % 32) * 8 + 1;
      std::uint64_t acc = i;
      for (std::uint64_t r = 0; r < reps; ++r) acc = acc * 6364136223846793005ULL + 1;
      out[i] = acc;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kTasks);
  state.SetLabel(std::to_string(pool.thread_count()) + " threads");
}
BENCHMARK(BM_PoolStealUneven)
    ->Arg(1)
    ->Arg(2)
    ->Arg(static_cast<int>(parallel_thread_count()))
    ->Unit(benchmark::kMicrosecond);

void BM_SyntheticFrame(benchmark::State& state) {
  h264::VideoConfig config;
  h264::SyntheticVideo video(config);
  for (auto _ : state) benchmark::DoNotOptimize(video.next());
}
BENCHMARK(BM_SyntheticFrame)->Unit(benchmark::kMillisecond);

void BM_SimulatorThroughput(benchmark::State& state) {
  // Events per second of the cycle-level executor on a dense ME-style trace.
  const auto& set = h264_set();
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad, satd}, 8}};
  HotSpotInstance inst;
  inst.hot_spot = 0;
  inst.entry_overhead = 1000;
  for (int i = 0; i < 100'000; ++i) inst.executions.push_back(i % 8 == 7 ? satd : sad);
  trace.instances.push_back(std::move(inst));

  const HefScheduler hef;
  for (auto _ : state) {
    RtmConfig config;
    config.container_count = 17;
    config.scheduler = &hef;
    RunTimeManager rtm(&set, 1, config);
    rtm.seed_forecast(0, sad, 87'500);
    rtm.seed_forecast(0, satd, 12'500);
    benchmark::DoNotOptimize(run_trace(trace, rtm));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 100'000);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

const bench::BenchContext& cached_context() {
  static const bench::BenchContext ctx;
  return ctx;
}

// Scalar vs run-batched replay of the cached H.264 bench trace (items =
// SI execution events). The ratio of the two items/sec rates is the
// fast-forward speedup the sweeps enjoy.
void BM_TraceReplay(benchmark::State& state) {
  const auto& ctx = cached_context();
  const auto mode = state.range(0) == 0 ? ReplayMode::kScalar : ReplayMode::kBatched;
  const HefScheduler hef;
  for (auto _ : state) {
    RtmConfig config;
    config.container_count = 17;
    config.scheduler = &hef;
    RunTimeManager rtm(&ctx.set, ctx.trace.hot_spots.size(), config);
    h264::seed_default_forecasts(ctx.set, rtm);
    benchmark::DoNotOptimize(run_trace(ctx.trace, rtm, nullptr, mode));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ctx.trace.total_si_executions()));
  state.SetLabel(mode == ReplayMode::kScalar ? "scalar" : "batched");
}
BENCHMARK(BM_TraceReplay)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// parallel_for scaling: the same cell workload fanned over 1, 2 and N
// threads. Cells are small RTM runs on a short synthetic trace, matching
// the sweep harness's use of the pool.
void BM_ParallelFor(benchmark::State& state) {
  const auto& set = h264_set();
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad, satd}, 8}};
  HotSpotInstance inst;
  inst.hot_spot = 0;
  inst.entry_overhead = 1000;
  for (int i = 0; i < 20'000; ++i) inst.executions.push_back(i % 8 == 7 ? satd : sad);
  trace.instances.push_back(std::move(inst));
  trace.build_runs();

  constexpr std::size_t kCells = 16;
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  const HefScheduler hef;
  std::vector<Cycles> cycles(kCells);
  for (auto _ : state) {
    pool.parallel_for(kCells, [&](std::size_t i) {
      RtmConfig config;
      config.container_count = static_cast<unsigned>(5 + i);
      config.scheduler = &hef;
      RunTimeManager rtm(&set, 1, config);
      rtm.seed_forecast(0, sad, 17'500);
      rtm.seed_forecast(0, satd, 2'500);
      cycles[i] = run_trace(trace, rtm).total_cycles;
    });
    benchmark::DoNotOptimize(cycles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kCells);
  state.SetLabel(std::to_string(pool.thread_count()) + " threads");
}
BENCHMARK(BM_ParallelFor)
    ->Arg(1)
    ->Arg(2)
    ->Arg(static_cast<int>(parallel_thread_count()))
    ->Unit(benchmark::kMillisecond);

// SoA instance-major fleet stepping (fleet::SessionBatch) vs the per-object
// loop (one full run_trace per session, back to back) over the same 32
// identical short sessions. Items = sessions; the SoA rate should win on
// cache residency (the shared trace instance is streamed once per block,
// not once per session) plus the cross-session decision cache.
void fleet_stepping_sessions(std::vector<fleet::SessionSpec>& specs) {
  fleet::SessionSpec spec;
  spec.content = fleet::Content::kH264;
  spec.frames = 1;
  spec.width = 96;
  spec.height = 64;
  specs.assign(32, spec);
}

void BM_FleetSoAStepping(benchmark::State& state) {
  std::vector<fleet::SessionSpec> specs;
  fleet_stepping_sessions(specs);
  fleet::TraceRepository repo;
  repo.get(specs.front());  // pre-generate: measure stepping, not encoding
  ThreadPool pool(1);
  for (auto _ : state) {
    fleet::SharedDecisionCache cache(1 << 12, 1);
    fleet::FleetOptions options;
    options.traces = &repo;
    options.pool = &pool;
    options.shared_cache = &cache;
    options.block_size = static_cast<unsigned>(state.range(0));
    fleet::SessionBatch batch(specs, options);
    batch.run();
    benchmark::DoNotOptimize(batch.result(specs.size() - 1).total_cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(specs.size()));
  state.SetLabel("block " + std::to_string(state.range(0)));
}
BENCHMARK(BM_FleetSoAStepping)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_FleetPerObjectStepping(benchmark::State& state) {
  std::vector<fleet::SessionSpec> specs;
  fleet_stepping_sessions(specs);
  fleet::TraceRepository repo;
  const fleet::TraceEntry& entry = repo.get(specs.front());
  const HefScheduler hef;
  for (auto _ : state) {
    Cycles last = 0;
    for (const fleet::SessionSpec& spec : specs) {
      RtmConfig config;
      config.container_count = spec.container_count;
      config.scheduler = &hef;
      RunTimeManager rtm(&entry.set, entry.trace.hot_spots.size(), config);
      h264::seed_default_forecasts(entry.set, rtm);
      last = run_trace(entry.trace, rtm).total_cycles;
    }
    benchmark::DoNotOptimize(last);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(specs.size()));
}
BENCHMARK(BM_FleetPerObjectStepping)->Unit(benchmark::kMillisecond);

// Cross-session steal latency: blocks deliberately dealt unevenly (one
// worker owns everything) so every other worker must steal whole session
// blocks. Items = sessions; compare the 1-thread rate (no stealing) to the
// N-thread rate to read the steal overhead per block.
void BM_FleetCrossSessionSteal(benchmark::State& state) {
  std::vector<fleet::SessionSpec> specs;
  fleet_stepping_sessions(specs);
  fleet::TraceRepository repo;
  repo.get(specs.front());
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    fleet::SharedDecisionCache cache(1 << 12, 4);
    fleet::FleetOptions options;
    options.traces = &repo;
    options.pool = &pool;
    options.shared_cache = &cache;
    options.block_size = 2;  // many small blocks → many steal opportunities
    fleet::SessionBatch batch(specs, options);
    batch.run();
    benchmark::DoNotOptimize(batch.result(specs.size() - 1).total_cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(specs.size()));
  state.SetLabel(std::to_string(pool.thread_count()) + " threads");
}
BENCHMARK(BM_FleetCrossSessionSteal)
    ->Arg(1)
    ->Arg(2)
    ->Arg(static_cast<int>(parallel_thread_count()))
    ->Unit(benchmark::kMillisecond);

// Min-clock pick for the co-simulation: one pop+push cycle on a heap of 64
// tenants (kMaxTenants) — the per-epoch cost that replaced the O(n) scan in
// run_tenants. Deterministic clock stream from a seeded PRNG.
void BM_TenantMinHeapPick(benchmark::State& state) {
  Xoshiro256 prng(0xc0513);
  MinClockHeap heap;
  heap.reset(FabricArbiter::kMaxTenants);
  for (std::uint32_t i = 0; i < FabricArbiter::kMaxTenants; ++i)
    heap.push({prng.next() % 1'000'000, i});
  for (auto _ : state) {
    MinClockHeap::Item item = heap.pop();
    item.clock += 1 + prng.next() % 4'096;
    heap.push(item);
    benchmark::DoNotOptimize(heap.top().clock);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TenantMinHeapPick);

// End-to-end co-simulation of one device (3 tenants sharing a fabric),
// fast-forward vs instance-stepped reference — the tentpole speedup this PR
// exists for. The mix is tuned so the device actually reaches the quiescent
// steady state the overrun exploits (see Cosim.HorizonOverrunEngagesWith-
// StaticSeeds): static-seed forecasts so decide() keys repeat, a quota
// covering JPEG's whole working set so steady-state decisions schedule zero
// loads, and sessions long enough that the serial-port warm-up is a prefix.
// Static setup outside the timed loop; each iteration rebuilds the arbiter +
// RTMs (cheap) and re-runs the co-sim.
void BM_CosimFastForward(benchmark::State& state) {
  std::vector<fleet::SessionSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].content = fleet::Content::kJpeg;
    specs[i].frames = 96 + static_cast<int>(i) * 8;
    specs[i].width = 128;
    specs[i].height = 96;
    specs[i].scheduler = i % 2 == 0 ? "HEF" : "SJF";
    specs[i].container_count = 20;
    specs[i].forecast_mode = ForecastMode::kStaticSeeds;
  }
  fleet::TraceRepository repo;
  std::vector<const fleet::TraceEntry*> entries;
  for (const auto& spec : specs) entries.push_back(&repo.get(spec));
  const CosimMode mode =
      state.range(0) == 0 ? CosimMode::kReference : CosimMode::kFastForward;
  std::unique_ptr<ThreadPool> pool;
  if (state.range(0) == 2) pool = std::make_unique<ThreadPool>(4);
  for (auto _ : state) {
    ArbiterConfig arb_config;
    arb_config.total_containers = static_cast<unsigned>(specs.size()) * 20;
    FabricArbiter arbiter(arb_config);
    std::vector<std::unique_ptr<AtomScheduler>> schedulers(specs.size());
    std::vector<std::unique_ptr<RunTimeManager>> rtms(specs.size());
    std::vector<TenantRun> runs(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      TenantConfig tenant;
      tenant.quota = 20;
      tenant.floor = 2;
      runs[i].tenant = arbiter.add_tenant(tenant);
      schedulers[i] = make_scheduler(specs[i].scheduler);
      RtmConfig config;
      config.scheduler = schedulers[i].get();
      config.forecast_mode = specs[i].forecast_mode;
      config.arbiter = &arbiter;
      config.tenant = runs[i].tenant;
      rtms[i] = std::make_unique<RunTimeManager>(
          &entries[i]->set, entries[i]->trace.hot_spots.size(), config);
      for (HotSpotId hs = 0; hs < entries[i]->seeds.size(); ++hs)
        for (SiId si = 0; si < entries[i]->seeds[hs].size(); ++si)
          if (entries[i]->seeds[hs][si] != 0)
            rtms[i]->seed_forecast(hs, si, entries[i]->seeds[hs][si]);
      runs[i].trace = &entries[i]->trace;
      runs[i].rtm = rtms[i].get();
    }
    CosimOptions options;
    options.mode = mode;
    options.pool = pool.get();
    const auto results = run_tenants(arbiter, std::span<TenantRun>(runs), options);
    benchmark::DoNotOptimize(results.front().total_cycles);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(specs.size()));
  state.SetLabel(state.range(0) == 0   ? "reference"
                 : state.range(0) == 1 ? "fast-forward"
                                       : "fast-forward+pool4");
}
BENCHMARK(BM_CosimFastForward)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

// A typical mid-search DSE candidate: the degraded seed of the hand-built
// platform plus a few work-preserving mutations.
const config::PlatformSpec& dse_candidate_spec() {
  static const config::PlatformSpec spec = [] {
    dse::DesignPoint point = dse::degraded_seed(config::h264_platform_spec());
    Xoshiro256 rng(42);
    for (int i = 0; i < 6; ++i) dse::mutate(point, rng);
    return point.spec;
  }();
  return spec;
}

// One DSE candidate evaluation: the engine fast path (MakespanMemo-backed
// build + run-batched replay, decision cache on) vs the naive full
// re-simulation (no memo, scalar replay, cache off). Items = candidates; the
// rate ratio is the per-candidate win bench/dse_search asserts at >= 10x.
void BM_DseEvaluateCandidate(benchmark::State& state) {
  const auto& ctx = cached_context();
  const config::PlatformSpec& spec = dse_candidate_spec();
  const Cycles reference = dse::software_reference_cycles(ctx.set, ctx.trace);
  MakespanMemo memo;
  dse::DseOptions options;
  options.makespan_memo = &memo;
  const bool fast = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fast ? dse::evaluate_candidate(spec, ctx.trace, reference, options)
             : dse::evaluate_candidate_naive(spec, ctx.trace, reference, options));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(fast ? "memoized+batched" : "naive");
}
BENCHMARK(BM_DseEvaluateCandidate)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Molecule-table construction for a candidate spec: the memo-less full
// list-scheduling pass vs the warm-MakespanMemo steady state (every graph a
// mutation left untouched hits the memo instead of rescheduling) — the
// incremental latency re-estimation the search's build stage rides.
void BM_IncrementalLatency(benchmark::State& state) {
  const config::PlatformSpec& spec = dse_candidate_spec();
  const bool memoized = state.range(0) != 0;
  MakespanMemo memo;
  if (memoized) config::build_platform(spec, &memo);  // warm
  for (auto _ : state)
    benchmark::DoNotOptimize(config::build_platform(spec, memoized ? &memo : nullptr));
  state.SetLabel(memoized ? "warm memo" : "full reschedule");
}
BENCHMARK(BM_IncrementalLatency)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Pareto-front maintenance: a fixed stream of 256 random (slices, speedup)
// points through insert() — dominance scan, sorted insertion, eviction of
// newly-dominated members. Items = insert calls.
void BM_ParetoInsert(benchmark::State& state) {
  Xoshiro256 rng(0xd5e);
  std::vector<dse::ParetoPoint> points(256);
  for (auto& p : points) {
    p.slices = 100 + static_cast<unsigned>(rng.bounded(900));
    p.speedup = 1.0 + static_cast<double>(rng.bounded(3000)) / 100.0;
    p.fingerprint = rng.next();
  }
  for (auto _ : state) {
    dse::ParetoFront front;
    for (const auto& p : points) front.insert(p);
    benchmark::DoNotOptimize(front.points().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_ParetoInsert);

}  // namespace

BENCHMARK_MAIN();
