// Cold-path trace generation: wall time of generate_h264_workload (the
// cache-miss path every bench binary hits on a fresh machine) for the three
// encoder configurations the PR optimises:
//
//   scalar/serial    — reference: scalar kernels, one thread
//   simd/serial      — SIMD kernels, one thread (pure kernel speedup)
//   simd/wavefront   — SIMD kernels + wavefront MB rows on the thread pool
//
// Every cell must produce the *same* trace (bit-exact SI event sequence);
// the report aborts if any configuration diverges from the reference.
#include <chrono>
#include <cstdio>
#include <vector>

#include "base/check.h"
#include "base/parallel.h"
#include "base/table.h"
#include "bench/common.h"
#include "h264/kernels.h"
#include "h264/workload.h"

int main() {
  using namespace rispp;
  using Clock = std::chrono::steady_clock;
  bench::BenchPerfLog perf("cold_generation");

  const int frames = bench::bench_frames();
  const SpecialInstructionSet set = h264sis::build_h264_si_set();

  struct Cell {
    const char* name;
    h264::KernelBackend backend;
    int encode_threads;  // WorkloadConfig::encode_threads (0 = global pool)
  };
  const std::vector<Cell> cells = {
      {"scalar/serial", h264::KernelBackend::kScalar, 1},
      {"simd/serial", h264::KernelBackend::kSimd, 1},
      {"simd/wavefront", h264::KernelBackend::kSimd, 0},
  };
  perf.set_cells(cells.size());

  std::printf("cold generation — encode %d CIF frames, trace discarded\n", frames);
  std::printf("(threads for the wavefront cell: %u, simd_available: %s)\n\n",
              parallel_thread_count(), h264::simd_available() ? "yes" : "no");

  const h264::KernelBackend entry_backend = h264::active_kernel_backend();
  std::vector<double> seconds(cells.size(), 0.0);
  WorkloadTrace reference;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    h264::set_kernel_backend(cells[i].backend);
    h264::WorkloadConfig config;
    config.frames = frames;
    config.encode_threads = cells[i].encode_threads;
    const auto start = Clock::now();
    WorkloadTrace trace = h264::generate_h264_workload(set, config).trace;
    seconds[i] = std::chrono::duration<double>(Clock::now() - start).count();

    if (i == 0) {
      reference = std::move(trace);
    } else {
      // The optimised paths must be invisible in the trace.
      RISPP_CHECK_MSG(trace.instances.size() == reference.instances.size(),
                      cells[i].name << ": instance count diverged");
      for (std::size_t k = 0; k < trace.instances.size(); ++k) {
        RISPP_CHECK_MSG(trace.instances[k].hot_spot == reference.instances[k].hot_spot &&
                            trace.instances[k].executions == reference.instances[k].executions,
                        cells[i].name << ": SI events diverged at instance " << k);
      }
    }
  }
  h264::set_kernel_backend(entry_backend);

  TextTable table({"configuration", "wall [s]", "speedup vs scalar"});
  for (std::size_t i = 0; i < cells.size(); ++i)
    table.add(cells[i].name, format_fixed(seconds[i], 3),
              format_fixed(seconds[0] / (seconds[i] > 0.0 ? seconds[i] : 1e-9), 2));
  std::printf("%s\n", table.render().c_str());
  std::printf("all configurations produced bit-identical SI event sequences\n");
  return 0;
}
