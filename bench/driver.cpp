#include "bench/driver.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <system_error>

#include "base/check.h"
#include "base/table.h"
#include "base/trace_event.h"

namespace rispp::bench {

bool glob_match(const std::string& pattern, const std::string& name) {
  // Classic two-pointer wildcard match with '*' backtracking.
  std::size_t p = 0, n = 0, star = std::string::npos, star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<std::filesystem::path> discover_reports(const std::filesystem::path& bench_dir) {
  std::vector<std::filesystem::path> reports;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(bench_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == "micro_ops") continue;  // google-benchmark micro suite, not a report
    if (::access(entry.path().c_str(), X_OK) != 0) continue;
    reports.push_back(entry.path());
  }
  std::sort(reports.begin(), reports.end());
  return reports;
}

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The records are our own fixed "key": value format (BenchPerfLog), so a
// targeted scan beats a JSON dependency: find `"key"`, skip `: `, parse the
// value. Good for both BENCH_<name>.json and BENCH_SUITE.json chunks.
//
// Hardening: because the scan is first-occurrence-wins, a duplicated key or
// text after the closing brace would be silently (mis)accepted — and both
// can only mean a corrupted or hand-mangled record, so they are loud errors
// (RISPP_CHECK throws) instead.

/// Rejects `text` containing `"key"` more than once (first occurrence wins
/// in the scanners above, so a duplicate would silently shadow the rest).
void check_no_duplicate_key(const std::string& text, const std::string& key,
                            const std::string& context) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t first = text.find(needle);
  if (first == std::string::npos) return;
  RISPP_CHECK_MSG(text.find(needle, first + needle.size()) == std::string::npos,
                  context << ": duplicate key " << needle);
}

/// Index of the '}' closing the object whose '{' is at `text[open]`,
/// honoring strings and escapes; npos when unbalanced.
std::size_t balanced_object_end(const std::string& text, std::size_t open) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t p = open; p < text.size(); ++p) {
    const char c = text[p];
    if (in_string) {
      if (c == '\\')
        ++p;  // skip the escaped character
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) return p;
    }
  }
  return std::string::npos;
}

/// Rejects anything but one balanced {...} object surrounded by whitespace —
/// in particular trailing garbage after the closing brace (a truncated write
/// concatenated with an older record, a merge artifact, ...).
void check_single_json_object(const std::string& text, const std::string& context) {
  std::size_t p = 0;
  while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p]))) ++p;
  RISPP_CHECK_MSG(p < text.size() && text[p] == '{',
                  context << ": expected a JSON object");
  const std::size_t end = balanced_object_end(text, p);
  RISPP_CHECK_MSG(end != std::string::npos, context << ": unbalanced braces");
  for (p = end + 1; p < text.size(); ++p)
    RISPP_CHECK_MSG(std::isspace(static_cast<unsigned char>(text[p])),
                    context << ": trailing garbage after the closing brace");
}

std::optional<double> find_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t p = at + needle.size();
  while (p < text.size() && (text[p] == ':' || text[p] == ' ')) ++p;
  char* end = nullptr;
  const double value = std::strtod(text.c_str() + p, &end);
  if (end == text.c_str() + p) return std::nullopt;
  return value;
}

std::optional<std::string> find_string(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nullopt;
  at = text.find('"', at + needle.size() + 1);  // opening quote of the value
  if (at == std::string::npos) return std::nullopt;
  const std::size_t close = text.find('"', at + 1);
  if (close == std::string::npos) return std::nullopt;
  return text.substr(at + 1, close - at - 1);
}

std::optional<PerfRecord> parse_perf_text(const std::string& text,
                                          const std::string& context) {
  check_single_json_object(text, context);
  for (const char* key : {"bench", "wall_seconds", "cells", "cells_per_sec", "threads",
                          "frames"})
    check_no_duplicate_key(text, key, context);
  const auto bench = find_string(text, "bench");
  const auto wall = find_number(text, "wall_seconds");
  if (!bench || !wall) return std::nullopt;
  PerfRecord record;
  record.bench = *bench;
  record.wall_seconds = *wall;
  record.cells = find_number(text, "cells").value_or(0.0);
  record.cells_per_sec = find_number(text, "cells_per_sec").value_or(0.0);
  record.threads = find_number(text, "threads").value_or(0.0);
  record.frames = find_number(text, "frames").value_or(0.0);
  return record;
}

/// Scans the flat `"name": number` pairs of one metrics subobject
/// (text[open] == '{', text[close] == its '}') into `out`. Registry names
/// never contain escapes, so the key scan is a plain quote-to-quote read.
void parse_flat_metrics(const std::string& text, std::size_t open, std::size_t close,
                        const std::string& context, std::map<std::string, double>& out) {
  std::size_t p = open + 1;
  const auto skip_ws = [&] {
    while (p < close && std::isspace(static_cast<unsigned char>(text[p]))) ++p;
  };
  for (;;) {
    skip_ws();
    if (p >= close) break;
    if (text[p] == ',') {
      ++p;
      continue;
    }
    RISPP_CHECK_MSG(text[p] == '"', context << ": expected a quoted metric name");
    const std::size_t key_end = text.find('"', p + 1);
    RISPP_CHECK_MSG(key_end != std::string::npos && key_end < close,
                    context << ": unterminated metric name");
    const std::string key = text.substr(p + 1, key_end - p - 1);
    p = key_end + 1;
    skip_ws();
    RISPP_CHECK_MSG(p < close && text[p] == ':', context << ": expected ':' after " << key);
    ++p;
    skip_ws();
    char* end = nullptr;
    const double value = std::strtod(text.c_str() + p, &end);
    RISPP_CHECK_MSG(end != text.c_str() + p,
                    context << ": metric " << key << " has no numeric value");
    p = static_cast<std::size_t>(end - text.c_str());
    RISPP_CHECK_MSG(out.emplace(key, value).second, context << ": duplicate metric " << key);
  }
}

/// The single BENCH_*.json a child wrote into its private json dir, if any.
std::optional<PerfRecord> collect_child_record(const std::filesystem::path& json_dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(json_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().filename().string().rfind("BENCH_", 0) != 0) continue;
    if (auto record = parse_perf_record(entry.path())) return record;
  }
  return std::nullopt;
}

/// Counters are integers in disguise; print them without an exponent so the
/// suite record stays grep-friendly. Gauges keep full double precision.
void append_metric_number(std::ostream& out, double value) {
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    out << static_cast<long long>(value);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out << buf;
}

}  // namespace

std::optional<PerfRecord> parse_perf_record(const std::filesystem::path& path) {
  return parse_perf_text(read_file(path), path.string());
}

std::map<std::string, double> parse_metrics_record(const std::filesystem::path& path) {
  std::map<std::string, double> metrics;
  const std::string text = read_file(path);
  if (text.empty()) return metrics;  // child wrote no snapshot: not an error
  check_single_json_object(text, path.string());
  for (const char* section : {"counters", "gauges"}) {
    check_no_duplicate_key(text, section, path.string());
    const std::string needle = "\"" + std::string(section) + "\"";
    const std::size_t at = text.find(needle);
    if (at == std::string::npos) continue;
    const std::size_t open = text.find('{', at + needle.size());
    RISPP_CHECK_MSG(open != std::string::npos,
                    path.string() << ": " << section << " is not an object");
    const std::size_t close = balanced_object_end(text, open);
    RISPP_CHECK_MSG(close != std::string::npos,
                    path.string() << ": unbalanced " << section << " object");
    parse_flat_metrics(text, open, close, path.string(), metrics);
  }
  // Histogram series fold into the same flat map as
  // <name>.count/.sum/.min/.max/.p50/.p90/.p99 — the full bucket array stays
  // in the snapshot file (rispp_stats reads it); the suite record keeps the
  // summary shape a regression gate can diff.
  check_no_duplicate_key(text, "histograms", path.string());
  const std::size_t hist_at = text.find("\"histograms\"");
  if (hist_at != std::string::npos) {
    const std::size_t open = text.find('{', hist_at + 12);
    RISPP_CHECK_MSG(open != std::string::npos,
                    path.string() << ": histograms is not an object");
    const std::size_t close = balanced_object_end(text, open);
    RISPP_CHECK_MSG(close != std::string::npos,
                    path.string() << ": unbalanced histograms object");
    std::size_t p = open + 1;
    while (p < close) {
      // Histogram names may contain '{' / '}' (label suffixes) but those live
      // inside JSON strings, so the quote-to-quote read and the string-aware
      // balanced scan below both stay correct.
      const std::size_t name_open = text.find('"', p);
      if (name_open == std::string::npos || name_open >= close) break;
      const std::size_t name_close = text.find('"', name_open + 1);
      RISPP_CHECK_MSG(name_close != std::string::npos && name_close < close,
                      path.string() << ": unterminated histogram name");
      const std::string name = text.substr(name_open + 1, name_close - name_open - 1);
      const std::size_t h_open = text.find('{', name_close + 1);
      RISPP_CHECK_MSG(h_open != std::string::npos && h_open < close,
                      path.string() << ": histogram " << name << " is not an object");
      const std::size_t h_close = balanced_object_end(text, h_open);
      RISPP_CHECK_MSG(h_close != std::string::npos && h_close < close,
                      path.string() << ": unbalanced histogram " << name);
      const std::string chunk = text.substr(h_open, h_close - h_open + 1);
      for (const char* field : {"count", "sum", "min", "max", "p50", "p90", "p99"}) {
        const auto value = find_number(chunk, field);
        RISPP_CHECK_MSG(value.has_value(),
                        path.string() << ": histogram " << name << " lacks " << field);
        const std::string key = name + "." + field;
        RISPP_CHECK_MSG(metrics.emplace(key, *value).second,
                        path.string() << ": duplicate metric " << key);
      }
      p = h_close + 1;
    }
  }
  return metrics;
}

unsigned compute_child_threads(unsigned total_threads, unsigned jobs, std::size_t unfinished) {
  const std::size_t lanes =
      std::max<std::size_t>(1, std::min<std::size_t>(std::max(1u, jobs), unfinished));
  return std::max<unsigned>(1, std::max(1u, total_threads) / static_cast<unsigned>(lanes));
}

std::vector<ReportResult> run_reports(const std::vector<std::filesystem::path>& binaries,
                                      const DriverOptions& options, std::ostream& status) {
  using Clock = std::chrono::steady_clock;
  const std::filesystem::path log_dir = options.out_dir / "logs";
  const std::filesystem::path json_dir = options.out_dir / "json";
  std::filesystem::create_directories(log_dir);
  std::filesystem::create_directories(json_dir);
  if (!options.trace_dir.empty()) std::filesystem::create_directories(options.trace_dir);

  std::vector<ReportResult> results(binaries.size());
  std::vector<Clock::time_point> started(binaries.size());
  // Per-report trace rows (one lane each, so overlapping children never
  // share a row); traced_names doubles as the "was this report traced" flag.
  std::vector<TraceLane> lanes(binaries.size(), 0);
  std::vector<double> started_us(binaries.size(), 0.0);
  std::vector<const char*> traced_names(binaries.size(), nullptr);
  std::map<pid_t, std::size_t> running;
  std::size_t next = 0, done = 0;

  const auto launch = [&](std::size_t i) {
    // Work-stealing thread split: children launched after other reports
    // already finished inherit the finishers' share of the host's threads
    // instead of the static total/jobs division.
    const std::string threads = std::to_string(
        options.total_threads > 0
            ? compute_child_threads(options.total_threads, options.jobs, binaries.size() - done)
            : options.threads_per_child);
    ReportResult& r = results[i];
    r.binary = binaries[i];
    r.name = binaries[i].filename().string();
    r.log = log_dir / (r.name + ".log");
    const std::filesystem::path child_json = json_dir / r.name;
    std::filesystem::create_directories(child_json);
    const std::string metrics_path = (child_json / "METRICS.json").string();
    const std::string trace_path =
        options.trace_dir.empty()
            ? std::string()
            : (options.trace_dir / (r.name + ".trace.json")).string();

    if (trace_enabled()) {
      lanes[i] = trace_new_lane();
      traced_names[i] = trace_intern(r.name);
      trace_name_lane(TraceTrack::kBench, lanes[i], traced_names[i]);
      started_us[i] = trace_now_us();
    }
    const int fd = ::open(r.log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    RISPP_CHECK_MSG(fd >= 0, "cannot open log " << r.log.string());
    started[i] = Clock::now();
    const pid_t pid = ::fork();
    RISPP_CHECK_MSG(pid >= 0, "fork failed: " << std::strerror(errno));
    if (pid == 0) {
      // Child: own stdout/stderr, a private perf-record dir, and its share
      // of the host's threads so `jobs` children never oversubscribe it.
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
      ::setenv("RISPP_THREADS", threads.c_str(), 1);
      ::setenv("RISPP_BENCH_JSON_DIR", child_json.c_str(), 1);
      ::setenv("RISPP_METRICS", metrics_path.c_str(), 1);
      if (trace_path.empty())
        // A traced driver must not leak its own RISPP_TRACE into children:
        // every child would overwrite the parent's trace file at exit.
        ::unsetenv("RISPP_TRACE");
      else
        ::setenv("RISPP_TRACE", trace_path.c_str(), 1);
      ::execl(binaries[i].c_str(), binaries[i].c_str(), (char*)nullptr);
      std::fprintf(stderr, "exec %s: %s\n", binaries[i].c_str(), std::strerror(errno));
      ::_exit(127);
    }
    ::close(fd);
    running.emplace(pid, i);
  };

  while (next < binaries.size() || !running.empty()) {
    while (next < binaries.size() && running.size() < std::max(1u, options.jobs))
      launch(next++);
    int wstatus = 0;
    const pid_t pid = ::waitpid(-1, &wstatus, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;
      RISPP_CHECK_MSG(false, "waitpid failed: " << std::strerror(errno));
    }
    const auto it = running.find(pid);
    if (it == running.end()) continue;  // not one of ours
    const std::size_t i = it->second;
    running.erase(it);
    ReportResult& r = results[i];
    r.wall_seconds = std::chrono::duration<double>(Clock::now() - started[i]).count();
    r.exit_code = WIFSIGNALED(wstatus) ? 128 + WTERMSIG(wstatus)
                                       : WEXITSTATUS(wstatus);
    r.perf = collect_child_record(json_dir / r.name);
    r.metrics = parse_metrics_record(json_dir / r.name / "METRICS.json");
    if (traced_names[i] != nullptr)
      trace_complete(TraceTrack::kBench, lanes[i], traced_names[i], started_us[i],
                     trace_now_us() - started_us[i]);
    ++done;
    char line[256];
    std::snprintf(line, sizeof line, "[%2zu/%zu] %-28s %8.2fs  %s", done, binaries.size(),
                  r.name.c_str(), r.wall_seconds,
                  r.exit_code == 0 ? "ok" : ("exit " + std::to_string(r.exit_code)).c_str());
    status << line << '\n' << std::flush;
  }
  return results;
}

std::string render_summary_table(const std::vector<ReportResult>& results) {
  TextTable table({"report", "wall [s]", "cells", "cells/s", "exit"});
  for (const ReportResult& r : results) {
    const double cells = r.perf ? r.perf->cells : 0.0;
    const double rate = r.perf ? r.perf->cells_per_sec : 0.0;
    table.add(r.name, format_fixed(r.wall_seconds, 2),
              cells > 0.0 ? format_fixed(cells, 0) : "-",
              rate > 0.0 ? format_fixed(rate, 1) : "-",
              r.exit_code == 0 ? "ok" : std::to_string(r.exit_code));
  }
  return table.render();
}

void write_suite(const std::vector<ReportResult>& results, int frames,
                 const DriverOptions& options, const std::filesystem::path& path) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"frames\": " << frames << ",\n"
      << "  \"jobs\": " << options.jobs << ",\n"
      << "  \"threads_per_child\": " << options.threads_per_child << ",\n"
      << "  \"reports\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ReportResult& r = results[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \"" << r.name
        << "\", \"exit_code\": " << r.exit_code << ", \"wall_seconds\": " << r.wall_seconds;
    if (r.perf)
      out << ", \"bench\": \"" << r.perf->bench << "\", \"cells\": " << r.perf->cells
          << ", \"cells_per_sec\": " << r.perf->cells_per_sec
          << ", \"threads\": " << r.perf->threads;
    if (!r.metrics.empty()) {
      out << ", \"metrics\": {";
      bool first = true;
      for (const auto& [key, value] : r.metrics) {
        out << (first ? "" : ", ") << "\"" << key << "\": ";
        append_metric_number(out, value);
        first = false;
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  out.flush();
  if (!out.good())
    std::fprintf(stderr, "[driver] failed to write suite record %s\n",
                 path.string().c_str());
}

std::map<std::string, PerfRecord> load_baseline(const std::filesystem::path& path) {
  std::map<std::string, PerfRecord> baseline;
  if (std::filesystem::is_directory(path)) {
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().filename().string().rfind("BENCH_", 0) != 0) continue;
      if (const auto record = parse_perf_record(entry.path()))
        baseline[record->bench] = *record;
    }
    return baseline;
  }
  // BENCH_SUITE.json: one {...} chunk per report inside "reports": [...].
  const std::string text = read_file(path);
  // A missing/unreadable baseline stays an *empty* map — the CLI reports
  // that case with its own clean diagnostic; the strict checks below only
  // police content that was actually read.
  if (text.empty()) return baseline;
  check_single_json_object(text, path.string());
  check_no_duplicate_key(text, "reports", path.string());
  const std::size_t reports = text.find("\"reports\"");
  std::size_t at = reports == std::string::npos ? std::string::npos
                                                : text.find('{', reports);
  while (at != std::string::npos) {
    // Balanced scan, not find('}'): a report chunk may hold a nested
    // "metrics" subobject whose first '}' is not the chunk's end.
    const std::size_t close = balanced_object_end(text, at);
    if (close == std::string::npos) break;
    std::string chunk = text.substr(at, close - at + 1);
    // Strip the metrics subobject before the flat scans below: its registry
    // names are arbitrary and must never shadow (or dup-flag) a report key.
    const std::size_t metrics_at = chunk.find("\"metrics\"");
    if (metrics_at != std::string::npos) {
      const std::size_t metrics_open = chunk.find('{', metrics_at);
      const std::size_t metrics_close =
          metrics_open == std::string::npos
              ? std::string::npos
              : balanced_object_end(chunk, metrics_open);
      if (metrics_close != std::string::npos)
        chunk.erase(metrics_at, metrics_close - metrics_at + 1);
    }
    // Duplicate keys inside one report chunk would silently shadow the scan.
    for (const char* key :
         {"name", "exit_code", "wall_seconds", "bench", "cells", "cells_per_sec", "threads"})
      check_no_duplicate_key(chunk, key, path.string());
    const auto name = find_string(chunk, "name");
    const auto wall = find_number(chunk, "wall_seconds");
    if (name && wall) {
      PerfRecord record;
      record.bench = find_string(chunk, "bench").value_or(*name);
      record.wall_seconds = *wall;
      record.cells = find_number(chunk, "cells").value_or(0.0);
      record.cells_per_sec = find_number(chunk, "cells_per_sec").value_or(0.0);
      baseline[*name] = record;
    }
    at = text.find('{', close);
  }
  return baseline;
}

std::map<std::string, std::map<std::string, double>> load_baseline_metrics(
    const std::filesystem::path& path) {
  std::map<std::string, std::map<std::string, double>> baseline;
  const std::string text = read_file(path);
  if (text.empty()) return baseline;
  check_single_json_object(text, path.string());
  check_no_duplicate_key(text, "reports", path.string());
  const std::size_t reports = text.find("\"reports\"");
  std::size_t at = reports == std::string::npos ? std::string::npos
                                                : text.find('{', reports);
  while (at != std::string::npos) {
    const std::size_t close = balanced_object_end(text, at);
    if (close == std::string::npos) break;
    const std::string chunk = text.substr(at, close - at + 1);
    // The report name comes first in write_suite's chunk layout, so the
    // first-occurrence scan reads it before any metric key could shadow it.
    const auto name = find_string(chunk, "name");
    const std::size_t metrics_at = chunk.find("\"metrics\"");
    if (name && metrics_at != std::string::npos) {
      const std::size_t metrics_open = chunk.find('{', metrics_at);
      RISPP_CHECK_MSG(metrics_open != std::string::npos,
                      path.string() << ": metrics of " << *name << " is not an object");
      const std::size_t metrics_close = balanced_object_end(chunk, metrics_open);
      RISPP_CHECK_MSG(metrics_close != std::string::npos,
                      path.string() << ": unbalanced metrics of " << *name);
      std::map<std::string, double> flat;
      parse_flat_metrics(chunk, metrics_open, metrics_close, path.string(), flat);
      if (!flat.empty()) baseline[*name] = std::move(flat);
    }
    at = text.find('{', close);
  }
  return baseline;
}

std::string render_metrics_diff(
    const std::vector<ReportResult>& results,
    const std::map<std::string, std::map<std::string, double>>& baseline,
    std::size_t top_per_report) {
  TextTable table({"report", "metric", "base", "now", "delta"});
  std::size_t rows = 0;
  for (const ReportResult& r : results) {
    const auto it = baseline.find(r.name);
    if (it == baseline.end() || r.metrics.empty()) continue;
    struct Row {
      const std::string* key;
      double base, now, magnitude;
    };
    std::vector<Row> rows_for_report;
    for (const auto& [key, now] : r.metrics) {
      const auto base_it = it->second.find(key);
      if (base_it == it->second.end()) continue;  // new metric: nothing to diff
      const double base = base_it->second;
      if (base == now) continue;
      // Rank by relative change; a metric appearing from zero ranks highest.
      const double magnitude =
          base != 0.0 ? std::abs(now / base - 1.0)
                      : std::numeric_limits<double>::infinity();
      rows_for_report.push_back({&key, base, now, magnitude});
    }
    std::stable_sort(rows_for_report.begin(), rows_for_report.end(),
                     [](const Row& a, const Row& b) { return a.magnitude > b.magnitude; });
    if (rows_for_report.size() > top_per_report) rows_for_report.resize(top_per_report);
    for (const Row& row : rows_for_report) {
      const std::string delta =
          row.base != 0.0 ? format_fixed((row.now / row.base - 1.0) * 100.0, 1) + "%"
                          : std::string("new");
      table.add(r.name, *row.key, format_fixed(row.base, 3), format_fixed(row.now, 3),
                delta);
      ++rows;
    }
  }
  if (rows == 0) return "(no overlapping metrics changed)\n";
  return table.render();
}

RegressionReport compare_against_baseline(const std::vector<ReportResult>& results,
                                          const std::map<std::string, PerfRecord>& baseline,
                                          double threshold) {
  // Wall-clock growth under 50 ms absolute is jitter, not regression: at the
  // CI 8-frame setting a whole report finishes in tens of milliseconds.
  constexpr double kWallSlackSeconds = 0.05;
  RegressionReport report;
  std::map<std::string, bool> seen;
  for (const ReportResult& r : results) {
    if (r.exit_code != 0) continue;  // failures already fail the run itself
    auto it = baseline.find(r.name);
    // A baseline built from a BENCH_<name>.json dir is keyed by the perf
    // record's internal bench name, not the binary name.
    if (it == baseline.end() && r.perf) it = baseline.find(r.perf->bench);
    if (it != baseline.end()) seen[it->first] = true;
    if (it == baseline.end()) continue;  // new report: never gates
    const PerfRecord& base = it->second;
    RegressionDelta delta;
    delta.name = r.name;
    delta.base_wall = base.wall_seconds;
    delta.wall = r.wall_seconds;
    delta.base_rate = base.cells_per_sec;
    delta.rate = r.perf ? r.perf->cells_per_sec : 0.0;
    const bool wall_regressed =
        delta.wall > delta.base_wall * (1.0 + threshold) &&
        delta.wall - delta.base_wall > kWallSlackSeconds;
    const bool rate_regressed = delta.base_rate > 0.0 && delta.rate > 0.0 &&
                                delta.rate * (1.0 + threshold) < delta.base_rate &&
                                (delta.base_rate - delta.rate) * delta.base_wall >
                                    kWallSlackSeconds * delta.base_rate;
    delta.regressed = wall_regressed || rate_regressed;
    report.failed = report.failed || delta.regressed;
    report.deltas.push_back(delta);
  }
  for (const auto& [name, record] : baseline)
    if (!seen.count(name)) report.missing.push_back(name);
  return report;
}

std::string render_regression_table(const RegressionReport& report) {
  TextTable table({"report", "base wall", "wall", "delta", "base c/s", "c/s", "verdict"});
  for (const RegressionDelta& d : report.deltas) {
    const double pct =
        d.base_wall > 0.0 ? (d.wall / d.base_wall - 1.0) * 100.0 : 0.0;
    table.add(d.name, format_fixed(d.base_wall, 3), format_fixed(d.wall, 3),
              format_fixed(pct, 1) + "%",
              d.base_rate > 0.0 ? format_fixed(d.base_rate, 1) : "-",
              d.rate > 0.0 ? format_fixed(d.rate, 1) : "-",
              d.regressed ? "REGRESSED" : "ok");
  }
  return table.render();
}

}  // namespace rispp::bench
