// Beyond the paper's tables: robustness across video content.
//
// The paper's core argument is that run-time adaptation wins exactly when
// behaviour "cannot be well predicted during design time (like varying
// workloads)". This bench runs the same platform over qualitatively
// different synthetic sequences — near-static, normal, high-motion, rapid
// scene cuts — and checks the HEF-over-Molen advantage holds for all of
// them (no content-specific tuning).
//
// Each preset is one run_sweep cell (encode + HEF + Molen are independent
// per content), so the four contents encode concurrently; rows keep preset
// order regardless of RISPP_THREADS.
#include <cstdio>
#include <string>

#include "base/table.h"
#include "baselines/molen.h"
#include "bench/common.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

int main() {
  using namespace rispp;
  bench::BenchPerfLog perf("robustness_content");
  const SpecialInstructionSet set = h264sis::build_h264_si_set();
  const int frames = 30;
  constexpr unsigned kAcs = 14;

  struct Preset {
    const char* name;
    h264::VideoConfig video;
  };
  std::vector<Preset> presets;
  {
    Preset p{"near-static", {}};
    p.video.object_count = 1;
    p.video.noise_stddev = 0.5;
    p.video.cut_period = 0;
    presets.push_back(p);
  }
  presets.push_back({"normal", {}});
  {
    Preset p{"high-motion", {}};
    p.video.object_count = 12;
    p.video.noise_stddev = 3.0;
    presets.push_back(p);
  }
  {
    Preset p{"rapid-cuts", {}};
    p.video.cut_period = 8;
    presets.push_back(p);
  }
  perf.set_cells(presets.size());

  struct Row {
    std::size_t me_per_frame = 0;
    int intra_mbs = 0;
    Cycles hef_cycles = 0;
    Cycles molen_cycles = 0;
  };
  const auto rows = bench::run_sweep(presets, [&](const Preset& preset) {
    h264::WorkloadConfig config;
    config.frames = frames;
    config.video = preset.video;
    config.encode_threads = 1;  // cells already fill the pool; don't nest
    const auto workload = h264::generate_h264_workload(set, config);

    Row row;
    row.intra_mbs = workload.intra_mbs;
    std::size_t me_execs = 0;
    int me_instances = 0;
    for (const auto& inst : workload.trace.instances)
      if (inst.hot_spot == h264::kHotSpotMe) {
        me_execs += inst.executions.size();
        ++me_instances;
      }
    row.me_per_frame = me_instances > 0 ? me_execs / me_instances : 0;

    auto hef = make_scheduler("HEF");
    RtmConfig rtm_config;
    rtm_config.container_count = kAcs;
    rtm_config.scheduler = hef.get();
    RunTimeManager rtm(&set, workload.trace.hot_spots.size(), rtm_config);
    h264::seed_default_forecasts(set, rtm);
    row.hef_cycles = run_trace(workload.trace, rtm).total_cycles;

    MolenConfig molen_config;
    molen_config.container_count = kAcs;
    MolenBackend molen(&set, workload.trace.hot_spots.size(), molen_config);
    h264::seed_default_forecasts(set, molen);
    row.molen_cycles = run_trace(workload.trace, molen).total_cycles;
    return row;
  });

  std::printf("Robustness — scheduler advantage across content types (%d frames, %u "
              "ACs)\n\n",
              frames, kAcs);
  TextTable table({"content", "ME SI/frame", "intra MBs", "HEF [Mcyc]", "Molen [Mcyc]",
                   "speedup"});
  for (std::size_t i = 0; i < presets.size(); ++i) {
    const Row& row = rows[i];
    table.add(presets[i].name, row.me_per_frame, row.intra_mbs,
              format_fixed(row.hef_cycles / 1e6, 1),
              format_fixed(row.molen_cycles / 1e6, 1),
              format_fixed(static_cast<double>(row.molen_cycles) / row.hef_cycles, 2) +
                  "x");
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expectation: the gradual-upgrade advantage persists across contents;\n"
              "busier content loads the ME hot spot harder, calmer content shifts\n"
              "weight to EE/LF — the monitor retargets without any re-tuning.\n");
  return 0;
}
