// Ablation: which ingredient of the HEF benefit metric matters?
//
//   benefit = expectedExecs * (bestLatency - latency) / additionalAtoms
//
// Variants: the full metric (HEF), without the execution weighting
// (latency gain per atom only), without the atom-count relativization
// (weighted gain only), and neither (pure latency gain). This quantifies the
// design choice behind Figure 6 line 20.
#include <cstdio>

#include "base/table.h"
#include "bench/common.h"
#include "sched/hef.h"

namespace {

using namespace rispp;

enum class Variant { kFull, kNoExecWeight, kNoAtomRelativize, kNeither };

/// HEF with parts of the benefit metric disabled.
class AblatedHef final : public AtomScheduler {
 public:
  AblatedHef(Variant variant, std::string name)
      : variant_(variant), name_(std::move(name)) {}

  std::string_view name() const override { return name_; }

  Schedule schedule(const ScheduleRequest& request) const override {
    UpgradeState state(request);
    for (;;) {
      const auto& live = state.live_candidates();
      if (live.empty()) break;
      Benefit best{0, 1};
      const SiRef* chosen = nullptr;
      for (const SiRef& o : live) {
        const Cycles gain = state.best_latency(o.si) - state.latency(o);
        Benefit b;
        b.gain_weighted = variant_ == Variant::kNoExecWeight || variant_ == Variant::kNeither
                              ? gain
                              : state.expected_executions(o.si) * gain;
        b.atoms = variant_ == Variant::kNoAtomRelativize || variant_ == Variant::kNeither
                      ? 1
                      : state.additional_atoms(o);
        if (chosen == nullptr ? b.gain_weighted > 0 : benefit_greater(b, best)) {
          best = b;
          chosen = &o;
        }
      }
      if (chosen == nullptr) break;
      state.commit(*chosen);
    }
    return state.take_schedule();
  }

 private:
  Variant variant_;
  std::string name_;
};

}  // namespace

int main() {
  const rispp::bench::BenchContext ctx;

  const AblatedHef variants[] = {
      {Variant::kFull, "full benefit (HEF)"},
      {Variant::kNoExecWeight, "no execution weighting"},
      {Variant::kNoAtomRelativize, "no atom relativization"},
      {Variant::kNeither, "raw latency gain"},
  };

  std::printf("Ablation — HEF benefit-metric ingredients (%d frames)\n\n", ctx.frames);
  rispp::TextTable table({"#ACs", "full (HEF)", "no exec wt", "no atom rel", "raw gain"});
  for (unsigned acs : {8u, 12u, 16u, 20u, 24u}) {
    std::vector<std::string> row{std::to_string(acs)};
    for (const AblatedHef& variant : variants) {
      rispp::RtmConfig config;
      config.container_count = acs;
      config.scheduler = &variant;
      rispp::RunTimeManager rtm(&ctx.set, ctx.trace.hot_spots.size(), config);
      rispp::h264::seed_default_forecasts(ctx.set, rtm);
      const auto result = rispp::run_trace(ctx.trace, rtm);
      row.push_back(rispp::format_fixed(result.total_cycles / 1e6, 1) + "M");
    }
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expectation: dropping the atom-count relativization is the costly\n"
              "mutation (benefit density is what prioritizes cheap upgrades); the\n"
              "execution weighting matters when hot spots mix rare and frequent SIs.\n");
  return 0;
}
