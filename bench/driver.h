// The concurrent report driver behind the rispp_bench binary (tools/).
//
// PR 1 made each report binary fast (run-batched replay + run_sweep); this
// layer makes the *suite* fast: it discovers the report binaries in the
// build tree, pre-warms the shared trace cache once, fans the binaries out
// as subprocesses across a bounded worker pool, streams every child's
// stdout+stderr to a per-report log (so per-report output stays
// byte-identical to a sequential run), folds the per-report
// BENCH_<name>.json perf records into one BENCH_SUITE.json, and — given a
// baseline — gates on perf regressions (>threshold wall-clock growth or
// cells/sec drop per report).
//
// Everything here is also a library so tests can drive the pool, the JSON
// round-trip and the gate without spawning the real (slow) report suite.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rispp::bench {

/// One BENCH_<name>.json perf record as written by BenchPerfLog.
struct PerfRecord {
  std::string bench;
  double wall_seconds = 0.0;
  double cells = 0.0;
  double cells_per_sec = 0.0;
  double threads = 0.0;
  double frames = 0.0;
};

/// Outcome of one report binary under the driver.
struct ReportResult {
  std::string name;                // binary filename
  std::filesystem::path binary;
  std::filesystem::path log;       // captured stdout+stderr
  int exit_code = -1;              // 128+signal when killed by a signal
  double wall_seconds = 0.0;       // driver-measured (includes process spawn)
  std::optional<PerfRecord> perf;  // the child's BENCH_<name>.json, if written
  /// The child's metrics-registry snapshot (METRICS.json: counters and
  /// gauges flattened into one name → value map); empty when absent.
  std::map<std::string, double> metrics;
};

struct DriverOptions {
  unsigned jobs = 1;               // concurrent children
  unsigned threads_per_child = 1;  // static RISPP_THREADS share (total_threads == 0)
  /// When > 0, each child's RISPP_THREADS is computed at launch time by
  /// compute_child_threads() — children launched after others finished get
  /// the finishers' share instead of the static total/jobs split.
  unsigned total_threads = 0;
  std::filesystem::path out_dir;   // logs/, json/, BENCH_SUITE.json
  /// When non-empty, each child runs with RISPP_TRACE=<trace_dir>/<name>
  /// .trace.json so every report leaves a Chrome trace. When empty the
  /// driver *unsets* RISPP_TRACE in children: a traced driver must not make
  /// every child overwrite the parent's own trace file.
  std::filesystem::path trace_dir;
};

/// The thread share of a child launched while `unfinished` reports (queued +
/// running, including this one) remain: total_threads divided by how many
/// children can actually run side by side from here on. Early launches get
/// the static total/jobs split; stragglers launched late inherit the
/// finished reports' threads.
unsigned compute_child_threads(unsigned total_threads, unsigned jobs, std::size_t unfinished);

/// Minimal glob matching for --filter: '*' any sequence, '?' one char.
bool glob_match(const std::string& pattern, const std::string& name);

/// Executables in `bench_dir`, sorted by name. micro_ops (the
/// google-benchmark micro suite — not a report, and slow) is excluded;
/// pass it explicitly to run it anyway.
std::vector<std::filesystem::path> discover_reports(const std::filesystem::path& bench_dir);

/// Parses one BENCH_<name>.json; nullopt when the expected keys are absent.
/// Structural corruption — trailing garbage after the closing brace or a
/// duplicated key (which the first-occurrence scan would silently shadow) —
/// throws with a message naming the file, never parses wrong.
std::optional<PerfRecord> parse_perf_record(const std::filesystem::path& path);

/// Parses a METRICS.json registry snapshot ({"counters": {...}, "gauges":
/// {...}, "histograms": {...}}) into one flat name → value map; each
/// histogram folds to <name>.count/.sum/.min/.max/.p50/.p90/.p99 (the bucket
/// arrays stay in the snapshot file — rispp_stats reads those). A missing or
/// empty file yields an empty map; structural corruption (trailing garbage,
/// unbalanced braces, duplicated metric names) throws with a message naming
/// the file.
std::map<std::string, double> parse_metrics_record(const std::filesystem::path& path);

/// Runs `binaries` across a bounded pool (options.jobs children at a time),
/// each with RISPP_THREADS=options.threads_per_child,
/// RISPP_BENCH_JSON_DIR=<out_dir>/json/<name> and
/// RISPP_METRICS=<out_dir>/json/<name>/METRICS.json (folded into
/// ReportResult::metrics after the child exits), stdout+stderr streamed to
/// <out_dir>/logs/<name>.log. Prints one line per completed report to
/// `status`. Results keep the input order regardless of completion order.
std::vector<ReportResult> run_reports(const std::vector<std::filesystem::path>& binaries,
                                      const DriverOptions& options, std::ostream& status);

/// Renders the end-of-run summary table (name, wall, cells/sec, exit).
std::string render_summary_table(const std::vector<ReportResult>& results);

/// Writes every result (and its perf record, when present) to `path` as the
/// BENCH_SUITE.json the CI artifact uploads and --baseline consumes.
void write_suite(const std::vector<ReportResult>& results, int frames,
                 const DriverOptions& options, const std::filesystem::path& path);

/// Loads a baseline keyed by report name: either a BENCH_SUITE.json file or
/// a directory of BENCH_<name>.json records (keyed by their bench name).
/// Missing/empty files yield an empty map (the CLI reports that case);
/// readable-but-corrupted content (trailing garbage, duplicate keys) throws.
std::map<std::string, PerfRecord> load_baseline(const std::filesystem::path& path);

/// The per-report flat metrics maps of a BENCH_SUITE.json (report name →
/// metric name → value), for rispp_bench --stats-diff. Reports without a
/// metrics subobject are absent; a missing/empty file yields an empty map;
/// corrupted content throws.
std::map<std::string, std::map<std::string, double>> load_baseline_metrics(
    const std::filesystem::path& path);

/// Renders the largest per-report metric movements of this run against a
/// baseline suite's metrics: for every report present in both, the
/// `top_per_report` metrics with the biggest relative change (a metric
/// growing from zero ranks highest, shown as "new"). Purely informational —
/// the perf gate stays wall-clock/cells-per-sec based.
std::string render_metrics_diff(
    const std::vector<ReportResult>& results,
    const std::map<std::string, std::map<std::string, double>>& baseline,
    std::size_t top_per_report);

struct RegressionDelta {
  std::string name;
  double base_wall = 0.0, wall = 0.0;  // seconds
  double base_rate = 0.0, rate = 0.0;  // cells/sec (0 when not recorded)
  bool regressed = false;
};

struct RegressionReport {
  std::vector<RegressionDelta> deltas;
  std::vector<std::string> missing;  // baselined reports absent from this run
  bool failed = false;               // any delta regressed
};

/// The perf-regression gate: a report regresses when its wall-clock grew by
/// more than `threshold` (fraction; 0.20 = the documented 20 % budget) over
/// the baseline, or its cells/sec dropped by more than `threshold`.
/// Absolute wall-clock growth below 50 ms is ignored — at CI's 8-frame
/// setting whole reports finish in tens of milliseconds, where scheduler
/// jitter swamps any real signal. Reports without a baseline entry pass
/// (new reports must not fail the gate); baselined reports missing from the
/// run are listed in `missing` but do not fail it either.
RegressionReport compare_against_baseline(const std::vector<ReportResult>& results,
                                          const std::map<std::string, PerfRecord>& baseline,
                                          double threshold);

/// Renders the per-report delta table of the gate.
std::string render_regression_table(const RegressionReport& report);

}  // namespace rispp::bench
