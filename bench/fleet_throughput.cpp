// Fleet throughput: sessions/minute sustained by the batched multi-session
// core (fleet::SessionBatch) on a fig7-like heterogeneous mix — mixed
// H.264/JPEG content, all four scheduler strategies in rotation, AC budgets
// 5..20 — plus per-session completion-latency percentiles and the
// cross-session decision-cache hit rate.
//
// Shape to look for: sessions/min far above the 10k/min service target, a
// cross-session hit rate approaching 1.0 (the fleet's whole point: session
// N+1 replays decisions sessions 1..N already computed), and p99 latency a
// small multiple of p50. The solo-equivalence contract behind these numbers
// is enforced by tests/fleet_test.cpp, not here.
#include <cstdio>

#include "base/table.h"
#include "bench/common.h"
#include "fleet/session_batch.h"
#include "fleet/spec.h"

int main() {
  using namespace rispp;
  bench::BenchPerfLog perf("fleet_throughput");

  // Sized so the CI frames knob scales the work: RISPP_FRAMES caps the
  // session length range (default bench frames elsewhere; sessions stay
  // short — fleet scale comes from the count, not the length).
  const int frames = bench::bench_frames();
  const fleet::FleetSpec spec = bench::throughput_fleet_spec(frames);
  const auto sessions = fleet::expand_fleet_spec(spec);
  perf.set_cells(sessions.size());

  fleet::FleetOptions options;
  const fleet::FleetReport report = fleet::run_fleet(sessions, options);

  std::printf("Fleet throughput — %zu sessions, mixed h264/jpeg, %zu schedulers, "
              "ACs %d..%d, frames %d..%d\n\n",
              report.sessions, spec.schedulers.size(), spec.acs_min, spec.acs_max,
              spec.frames_min, spec.frames_max);
  TextTable table({"metric", "value"});
  table.add("sessions/min", format_fixed(report.sessions_per_min, 0));
  table.add("wall seconds", format_fixed(report.wall_seconds, 3));
  table.add("latency p50 (ms)", format_fixed(report.latency_p50_ms, 2));
  table.add("latency p99 (ms)", format_fixed(report.latency_p99_ms, 2));
  table.add("cross-session hit rate", format_fixed(report.cross_session_hit_rate, 3));
  table.add("cycles checksum", report.cycles_checksum);
  std::printf("%s\n", table.render().c_str());
  return 0;
}
