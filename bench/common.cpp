#include "bench/common.h"

#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <system_error>

#include "base/env.h"

namespace rispp::bench {

int bench_frames() {
  return static_cast<int>(parse_env_int("RISPP_FRAMES", 140,  // the paper's length
                                        1, 1'000'000));
}

std::uint64_t workload_fingerprint(const SpecialInstructionSet& set,
                                   const h264::WorkloadConfig& config) {
  std::uint64_t hash = fingerprint(set);
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.frames));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.video.width));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.video.height));
  hash = fingerprint_mix(hash, config.video.seed);
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.video.object_count));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.video.cut_period));
  hash = fingerprint_mix(hash,
                         static_cast<std::uint64_t>(config.video.noise_stddev * 1024.0));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.encoder.qp));
  hash = fingerprint_mix(hash,
                         static_cast<std::uint64_t>(config.encoder.search.search_range));
  hash = fingerprint_mix(hash, config.encoder.search.early_exit);
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.encoder.deblock.alpha));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.encoder.deblock.beta));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.encoder.intra_bias_num));
  hash = fingerprint_mix(
      hash, static_cast<std::uint64_t>(config.encoder.strong_edge_threshold));
  hash = fingerprint_mix(hash, config.per_execution_overhead);
  hash = fingerprint_mix(hash, config.hot_spot_entry_overhead);
  return hash;
}

std::filesystem::path trace_cache_path(const SpecialInstructionSet& set,
                                       const h264::WorkloadConfig& config) {
  std::filesystem::path dir;
  if (const char* env = std::getenv("RISPP_TRACE_DIR")) dir = env;
  else dir = std::filesystem::temp_directory_path();
  char key[32];
  std::snprintf(key, sizeof key, "%016" PRIx64, workload_fingerprint(set, config));
  return dir / ("rispp_h264_trace_v" + std::to_string(h264::kWorkloadTraceVersion) + "_" +
                std::to_string(config.frames) + "_" + key + ".rtrc");
}

namespace {

// Concurrent bench binaries may race to fill the cache: write to a
// pid-and-thread-unique temp file and rename it into place, so a reader
// never sees a partially written trace. The atomic counter keeps two
// BenchContexts constructed concurrently in one process (in-process
// drivers, tests) from clobbering each other's temp file.
void save_trace_cache(const WorkloadTrace& trace, const std::filesystem::path& path) {
  static std::atomic<unsigned> counter{0};
  const std::filesystem::path tmp = path.string() + "." + std::to_string(::getpid()) +
                                    "." + std::to_string(counter.fetch_add(1)) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out.good()) return;
    trace.save(out);
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

WorkloadTrace load_or_generate(const SpecialInstructionSet& set, int frames) {
  h264::WorkloadConfig config;
  config.frames = frames;
  const auto path = trace_cache_path(set, config);
  {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      try {
        return WorkloadTrace::load(in);
      } catch (const std::exception&) {
        // Corrupt cache: fall through to regeneration.
      }
    }
  }
  std::fprintf(stderr, "[bench] encoding %d synthetic CIF frames (cached at %s)...\n",
               frames, path.string().c_str());
  WorkloadTrace trace = h264::generate_h264_workload(set, config).trace;
  save_trace_cache(trace, path);
  return trace;
}

}  // namespace

void warm_trace_cache() {
  const SpecialInstructionSet set = h264sis::build_h264_si_set();
  load_or_generate(set, bench_frames());
}

BenchContext::BenchContext()
    : set(h264sis::build_h264_si_set()),
      trace(load_or_generate(set, bench_frames())),
      frames(bench_frames()) {}

SimResult BenchContext::run_scheduler(const std::string& scheduler_name,
                                      unsigned container_count, SimStats* stats,
                                      ForecastMode mode) const {
  const auto scheduler = make_scheduler(scheduler_name);
  RtmConfig config;
  config.container_count = container_count;
  config.scheduler = scheduler.get();
  config.forecast_mode = mode;
  RunTimeManager rtm(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, rtm);
  return run_trace(trace, rtm, stats);
}

SimResult BenchContext::run_molen(unsigned container_count, SimStats* stats) const {
  MolenConfig config;
  config.container_count = container_count;
  MolenBackend molen(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, molen);
  return run_trace(trace, molen, stats);
}

SimResult BenchContext::run_onechip(unsigned container_count, SimStats* stats) const {
  OneChipConfig config;
  config.container_count = container_count;
  OneChipBackend onechip(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, onechip);
  return run_trace(trace, onechip, stats);
}

BenchPerfLog::BenchPerfLog(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

BenchPerfLog::~BenchPerfLog() {
  const char* dir = std::getenv("RISPP_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "[bench] cannot create RISPP_BENCH_JSON_DIR %s: %s\n", dir,
                 ec.message().c_str());
    return;
  }
  const std::filesystem::path path =
      std::filesystem::path(dir) / ("BENCH_" + name_ + ".json");
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"" << name_ << "\",\n"
      << "  \"wall_seconds\": " << seconds << ",\n"
      << "  \"cells\": " << cells_ << ",\n"
      << "  \"cells_per_sec\": " << (seconds > 0.0 ? cells_ / seconds : 0.0) << ",\n"
      << "  \"threads\": " << parallel_thread_count() << ",\n"
      << "  \"frames\": " << bench_frames() << "\n"
      << "}\n";
  out.flush();
  if (!out.good())
    std::fprintf(stderr, "[bench] failed to write perf record %s\n",
                 path.string().c_str());
}

}  // namespace rispp::bench
