#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace rispp::bench {

int bench_frames() {
  if (const char* env = std::getenv("RISPP_FRAMES")) {
    const int frames = std::atoi(env);
    if (frames > 0) return frames;
  }
  return 140;  // the paper's sequence length
}

namespace {

std::filesystem::path trace_cache_path(int frames) {
  std::filesystem::path dir;
  if (const char* env = std::getenv("RISPP_TRACE_DIR")) dir = env;
  else dir = std::filesystem::temp_directory_path();
  return dir / ("rispp_h264_trace_v" + std::to_string(h264::kWorkloadTraceVersion) + "_" +
                std::to_string(frames) + ".rtrc");
}

WorkloadTrace load_or_generate(const SpecialInstructionSet& set, int frames) {
  const auto path = trace_cache_path(frames);
  {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      try {
        return WorkloadTrace::load(in);
      } catch (const std::exception&) {
        // Stale/corrupt cache: fall through to regeneration.
      }
    }
  }
  std::fprintf(stderr, "[bench] encoding %d synthetic CIF frames (cached at %s)...\n",
               frames, path.string().c_str());
  h264::WorkloadConfig config;
  config.frames = frames;
  WorkloadTrace trace = h264::generate_h264_workload(set, config).trace;
  std::ofstream out(path, std::ios::binary);
  if (out.good()) trace.save(out);
  return trace;
}

}  // namespace

BenchContext::BenchContext()
    : set(h264sis::build_h264_si_set()),
      trace(load_or_generate(set, bench_frames())),
      frames(bench_frames()) {}

SimResult BenchContext::run_scheduler(const std::string& scheduler_name,
                                      unsigned container_count, SimStats* stats,
                                      ForecastMode mode) const {
  const auto scheduler = make_scheduler(scheduler_name);
  RtmConfig config;
  config.container_count = container_count;
  config.scheduler = scheduler.get();
  config.forecast_mode = mode;
  RunTimeManager rtm(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, rtm);
  return run_trace(trace, rtm, stats);
}

SimResult BenchContext::run_molen(unsigned container_count, SimStats* stats) const {
  MolenConfig config;
  config.container_count = container_count;
  MolenBackend molen(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, molen);
  return run_trace(trace, molen, stats);
}

}  // namespace rispp::bench
