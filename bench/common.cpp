#include "bench/common.h"

#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <system_error>

#include "base/env.h"
#include "fleet/trace_repository.h"

namespace rispp::bench {

int bench_frames() {
  return static_cast<int>(parse_env_int("RISPP_FRAMES", 140,  // the paper's length
                                        1, 1'000'000));
}

std::uint64_t workload_fingerprint(const SpecialInstructionSet& set,
                                   const h264::WorkloadConfig& config) {
  return h264::workload_fingerprint(set, config);  // shared key (byte-identical)
}

std::filesystem::path trace_cache_path(const SpecialInstructionSet& set,
                                       const h264::WorkloadConfig& config) {
  return h264::trace_cache_path(set, config);
}

namespace {

WorkloadTrace load_or_generate(const SpecialInstructionSet& set, int frames) {
  h264::WorkloadConfig config;
  config.frames = frames;
  const auto path = h264::trace_cache_path(set, config);
  if (auto cached = try_load_trace_file(path)) return std::move(*cached);
  std::fprintf(stderr, "[bench] encoding %d synthetic CIF frames (cached at %s)...\n",
               frames, path.string().c_str());
  WorkloadTrace trace = h264::generate_h264_workload(set, config).trace;
  save_trace_file(trace, path);
  return trace;
}

}  // namespace

void warm_trace_cache() {
  const SpecialInstructionSet set = h264sis::build_h264_si_set();
  load_or_generate(set, bench_frames());
}

fleet::FleetSpec multitenant_fleet_spec(int frames) {
  fleet::FleetSpec spec;
  spec.sessions = 16;  // a full 16-tenant device forms at the sweep's top end
  spec.frames_min = 1;
  spec.frames_max = frames < 4 ? frames : 4;
  spec.schedulers = {"HEF", "SJF"};
  spec.acs_min = 8;
  spec.acs_max = 8;
  return spec;
}

fleet::FleetSpec throughput_fleet_spec(int frames) {
  fleet::FleetSpec spec;
  spec.sessions = 400;
  spec.frames_min = 1;
  spec.frames_max = frames < 8 ? frames : 8;
  spec.schedulers = scheduler_names();
  spec.acs_min = 5;
  spec.acs_max = 20;
  return spec;
}

void warm_fleet_trace_cache() {
  // TraceRepository::get persists every trace it generates, so touching
  // each distinct content here fills the on-disk cache the child report
  // binaries (and contended fleet runs) then load from.
  const int frames = bench_frames();
  for (const fleet::FleetSpec& spec :
       {multitenant_fleet_spec(frames), throughput_fleet_spec(frames)})
    for (const fleet::SessionSpec& session : fleet::expand_fleet_spec(spec))
      fleet::TraceRepository::global().get(session);
}

BenchContext::BenchContext()
    : set(h264sis::build_h264_si_set()),
      trace(load_or_generate(set, bench_frames())),
      frames(bench_frames()) {}

SimResult BenchContext::run_scheduler(const std::string& scheduler_name,
                                      unsigned container_count, SimStats* stats,
                                      ForecastMode mode) const {
  const auto scheduler = make_scheduler(scheduler_name);
  RtmConfig config;
  config.container_count = container_count;
  config.scheduler = scheduler.get();
  config.forecast_mode = mode;
  RunTimeManager rtm(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, rtm);
  return run_trace(trace, rtm, stats);
}

SimResult BenchContext::run_molen(unsigned container_count, SimStats* stats) const {
  MolenConfig config;
  config.container_count = container_count;
  MolenBackend molen(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, molen);
  return run_trace(trace, molen, stats);
}

SimResult BenchContext::run_onechip(unsigned container_count, SimStats* stats) const {
  OneChipConfig config;
  config.container_count = container_count;
  OneChipBackend onechip(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, onechip);
  return run_trace(trace, onechip, stats);
}

BenchPerfLog::BenchPerfLog(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

BenchPerfLog::~BenchPerfLog() {
  const char* dir = std::getenv("RISPP_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "[bench] cannot create RISPP_BENCH_JSON_DIR %s: %s\n", dir,
                 ec.message().c_str());
    return;
  }
  const std::filesystem::path path =
      std::filesystem::path(dir) / ("BENCH_" + name_ + ".json");
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"" << name_ << "\",\n"
      << "  \"wall_seconds\": " << seconds << ",\n"
      << "  \"cells\": " << cells_ << ",\n"
      << "  \"cells_per_sec\": " << (seconds > 0.0 ? cells_ / seconds : 0.0) << ",\n"
      << "  \"threads\": " << parallel_thread_count() << ",\n"
      << "  \"frames\": " << bench_frames() << "\n"
      << "}\n";
  out.flush();
  if (!out.good())
    std::fprintf(stderr, "[bench] failed to write perf record %s\n",
                 path.string().c_str());
}

}  // namespace rispp::bench
