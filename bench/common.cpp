#include "bench/common.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace rispp::bench {

int bench_frames() {
  if (const char* env = std::getenv("RISPP_FRAMES")) {
    const int frames = std::atoi(env);
    if (frames > 0) return frames;
  }
  return 140;  // the paper's sequence length
}

namespace {

std::filesystem::path trace_cache_path(int frames) {
  std::filesystem::path dir;
  if (const char* env = std::getenv("RISPP_TRACE_DIR")) dir = env;
  else dir = std::filesystem::temp_directory_path();
  return dir / ("rispp_h264_trace_v" + std::to_string(h264::kWorkloadTraceVersion) + "_" +
                std::to_string(frames) + ".rtrc");
}

// Concurrent bench binaries may race to fill the cache: write to a
// pid-unique temp file and rename it into place, so a reader never sees a
// partially written trace.
void save_trace_cache(const WorkloadTrace& trace, const std::filesystem::path& path) {
  const std::filesystem::path tmp =
      path.string() + "." + std::to_string(::getpid()) + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out.good()) return;
    trace.save(out);
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

WorkloadTrace load_or_generate(const SpecialInstructionSet& set, int frames) {
  const auto path = trace_cache_path(frames);
  {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      try {
        return WorkloadTrace::load(in);
      } catch (const std::exception&) {
        // Stale/corrupt cache: fall through to regeneration.
      }
    }
  }
  std::fprintf(stderr, "[bench] encoding %d synthetic CIF frames (cached at %s)...\n",
               frames, path.string().c_str());
  h264::WorkloadConfig config;
  config.frames = frames;
  WorkloadTrace trace = h264::generate_h264_workload(set, config).trace;
  save_trace_cache(trace, path);
  return trace;
}

}  // namespace

BenchContext::BenchContext()
    : set(h264sis::build_h264_si_set()),
      trace(load_or_generate(set, bench_frames())),
      frames(bench_frames()) {}

SimResult BenchContext::run_scheduler(const std::string& scheduler_name,
                                      unsigned container_count, SimStats* stats,
                                      ForecastMode mode) const {
  const auto scheduler = make_scheduler(scheduler_name);
  RtmConfig config;
  config.container_count = container_count;
  config.scheduler = scheduler.get();
  config.forecast_mode = mode;
  RunTimeManager rtm(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, rtm);
  return run_trace(trace, rtm, stats);
}

SimResult BenchContext::run_molen(unsigned container_count, SimStats* stats) const {
  MolenConfig config;
  config.container_count = container_count;
  MolenBackend molen(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, molen);
  return run_trace(trace, molen, stats);
}

SimResult BenchContext::run_onechip(unsigned container_count, SimStats* stats) const {
  OneChipConfig config;
  config.container_count = container_count;
  OneChipBackend onechip(&set, trace.hot_spots.size(), config);
  h264::seed_default_forecasts(set, onechip);
  return run_trace(trace, onechip, stats);
}

BenchPerfLog::BenchPerfLog(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

BenchPerfLog::~BenchPerfLog() {
  const char* dir = std::getenv("RISPP_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path path =
      std::filesystem::path(dir) / ("BENCH_" + name_ + ".json");
  std::ofstream out(path);
  if (!out.good()) return;
  out << "{\n"
      << "  \"bench\": \"" << name_ << "\",\n"
      << "  \"wall_seconds\": " << seconds << ",\n"
      << "  \"cells\": " << cells_ << ",\n"
      << "  \"cells_per_sec\": " << (seconds > 0.0 ? cells_ / seconds : 0.0) << ",\n"
      << "  \"threads\": " << parallel_thread_count() << ",\n"
      << "  \"frames\": " << bench_frames() << "\n"
      << "}\n";
}

}  // namespace rispp::bench
