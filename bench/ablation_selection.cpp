// Ablation: quality of the greedy Molecule selection substrate.
//
// The paper defers selection to companion work; the scheduler only assumes
// NA <= #ACs holds. This bench measures how close our greedy profit-ascent
// selection is to the exact optimum (exhaustive search) on the ME hot spot,
// and what end-to-end cost a deliberately bad selection (naive
// biggest-molecule-first) incurs.
#include <cstdio>

#include "base/table.h"
#include "bench/common.h"
#include "select/optimal.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;

  const SiId sad = ctx.set.find("SAD").value();
  const SiId satd = ctx.set.find("SATD").value();

  std::printf("Ablation — greedy selection vs exact optimum (ME hot spot)\n\n");
  TextTable table({"#ACs", "greedy benefit", "optimal benefit", "ratio", "greedy NA",
                   "optimal NA"});
  for (unsigned acs = 4; acs <= 20; acs += 2) {
    SelectionRequest req;
    req.set = &ctx.set;
    req.hot_spot_sis = {sad, satd};
    req.expected_executions.assign(ctx.set.si_count(), 0);
    req.expected_executions[sad] = 24'000;
    req.expected_executions[satd] = 3'600;
    req.container_count = acs;

    const auto greedy = select_molecules(req);
    const auto optimal = select_molecules_optimal(req);
    const long double gb = selection_benefit(req, greedy);
    const long double ob = selection_benefit(req, optimal);
    table.add(acs, format_fixed(static_cast<double>(gb) / 1e6, 1) + "M",
              format_fixed(static_cast<double>(ob) / 1e6, 1) + "M",
              format_fixed(ob > 0 ? static_cast<double>(gb / ob) : 1.0, 4),
              selection_atom_count(ctx.set, greedy),
              selection_atom_count(ctx.set, optimal));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expectation: the greedy profit ascent stays within a few percent of\n"
              "the exhaustive optimum across the budget range (the scheduler's\n"
              "input assumption NA <= #ACs holds by construction for both).\n");
  return 0;
}
