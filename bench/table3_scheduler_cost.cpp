// Table 3: hardware implementation cost of the HEF scheduler.
//
// The paper synthesizes HEF to a 12-state FSM on a Xilinx xc2v3000 (549
// slices — less than one Atom Container) and reports the division-free
// benefit comparison (a*b)/c > (d*e)/f  =>  (a*b)*f > (d*e)*c. FPGA
// synthesis is outside a software reproduction, so this bench provides the
// checkable counterpart:
//   * the FSM work HEF actually performs on the paper's workload (benefit
//     evaluations / comparisons / commits per invocation),
//   * verification that the division-free comparison is used and exact,
//   * the paper's synthesis numbers quoted for side-by-side reading.
#include <cstdio>

#include "base/check.h"
#include "base/table.h"
#include "cpu/emulation.h"
#include "bench/common.h"
#include "sched/hef.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;

  HefCostCounters counters;
  HefScheduler hef(&counters);
  RtmConfig config;
  config.container_count = 10;
  config.scheduler = &hef;
  // The paper's Table 3 costs the FSM work of *every* hot-spot entry; the
  // decision cache would skip the FSM on repeated decisions, so it is
  // disabled for the counter run and measured separately below.
  config.enable_decision_cache = false;
  RunTimeManager rtm(&ctx.set, ctx.trace.hot_spots.size(), config);
  h264::seed_default_forecasts(ctx.set, rtm);
  const SimResult result = run_trace(ctx.trace, rtm);

  std::printf("Table 3 (proxy) — HEF scheduler computational cost @10 ACs, %d frames\n\n",
              ctx.frames);
  TextTable fsm({"counter", "total", "per invocation"});
  auto per = [&](std::uint64_t v) {
    return format_fixed(static_cast<double>(v) / counters.invocations, 2);
  };
  fsm.add("scheduler invocations (hot-spot entries)", counters.invocations, "1.00");
  fsm.add("FSM rounds (Figure 6 while-loop)", counters.rounds, per(counters.rounds));
  fsm.add("benefit evaluations (line 20)", counters.benefit_evaluations,
          per(counters.benefit_evaluations));
  fsm.add("benefit comparisons (line 21, division-free)", counters.benefit_comparisons,
          per(counters.benefit_comparisons));
  fsm.add("molecule commits (lines 25-28)", counters.commits, per(counters.commits));
  fsm.add("atoms scheduled", counters.atoms_scheduled, per(counters.atoms_scheduled));
  std::printf("%s\n", fsm.render().c_str());
  std::printf("run completed in %.1f Mcycles with %llu atom loads\n\n",
              result.total_cycles / 1e6,
              static_cast<unsigned long long>(result.atom_loads));

  // The software run-time's answer to the same cost question: with the
  // decision cache on (the default), repeated (SIs, forecast, ready atoms,
  // budget) inputs replay their memoized schedule and skip the FSM entirely
  // — bit-exact, since the key covers everything the decision reads.
  {
    HefCostCounters cached_counters;
    HefScheduler cached_hef(&cached_counters);
    RtmConfig cached_config = config;
    cached_config.scheduler = &cached_hef;
    cached_config.enable_decision_cache = true;
    RunTimeManager cached_rtm(&ctx.set, ctx.trace.hot_spots.size(), cached_config);
    h264::seed_default_forecasts(ctx.set, cached_rtm);
    const SimResult cached_result = run_trace(ctx.trace, cached_rtm);
    RISPP_CHECK(cached_result.total_cycles == result.total_cycles);
    const std::uint64_t hits = cached_rtm.decision_cache_hits();
    const std::uint64_t misses = cached_rtm.decision_cache_misses();
    std::printf("decision cache (selection+schedule memoization): %llu hits / %llu misses"
                " (%.1f%% hit rate), FSM invocations %llu -> %llu, replay bit-exact\n\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses),
                static_cast<unsigned long long>(counters.invocations),
                static_cast<unsigned long long>(cached_counters.invocations));
  }

  // Division-free comparison sanity (the §5 hardware trick).
  const Benefit a{24'000ull * 1056, 3};
  const Benefit b{3'600ull * 4284, 6};
  std::printf("division-free compare example: (%llu/%llu) vs (%llu/%llu) -> %s\n\n",
              static_cast<unsigned long long>(a.gain_weighted),
              static_cast<unsigned long long>(a.atoms),
              static_cast<unsigned long long>(b.gain_weighted),
              static_cast<unsigned long long>(b.atoms),
              benefit_greater(a, b) ? "left" : "right");

  // Ground the trap-latency column with the base-processor substrate: the
  // emulation kernels executed on the DLX pipeline model.
  std::printf("Atom trap-handler validation on the DLX pipeline model (one op each):\n");
  TextTable emu({"atom type", "pipeline [cyc]", "table [cyc]", "ratio", "#instr"});
  for (const auto& m : cpu::emulation_report()) {
    emu.add(m.atom_type, m.measured_cycles, m.table_cycles,
            format_fixed(static_cast<double>(m.measured_cycles) /
                             static_cast<double>(m.table_cycles),
                         2),
            m.instructions);
  }
  std::printf("%s", emu.render().c_str());
  std::printf("(table values model the prototype's hand-tuned handlers; SADRow's 2x\n"
              "gap is the packed-word SIMD trick the reference kernel forgoes)\n\n");

  std::printf("Paper's synthesis results (xc2v3000, quoted for reference — not\n"
              "reproducible in software):\n");
  TextTable paper({"characteristic", "HEF scheduler", "avg atom"});
  paper.add("# Slices", 549, 421);
  paper.add("# LUTs", 915, 839);
  paper.add("# FFs", 297, 45);
  paper.add("# MULT18X18", 5, 0);
  paper.add("Gate equivalents", 30'769, 6'944);
  paper.add("Clock delay [ns]", "12.596", "1.284");
  std::printf("%s", paper.render().c_str());
  std::printf("(HEF fits in less area than one Atom Container: 549 < 1024 slices.)\n");
  return 0;
}
