// Ablation: reconfiguration-port bandwidth.
//
// The paper's 66 MB/s SelectMap/ICAP fixes the ~874 us atom load. Faster
// ports shrink the upgrade windows (scheduling matters less); slower ports
// stretch them (scheduling matters more, and Molen suffers most since it
// cannot use partial molecules at all).
#include <cstdio>

#include "base/table.h"
#include "bench/common.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;
  constexpr unsigned kAcs = 12;

  std::printf("Ablation — reconfiguration bandwidth @%u ACs (%d frames; paper port: "
              "66 MB/s)\n\n",
              kAcs, ctx.frames);
  TextTable table({"port [MB/s]", "avg atom [us]", "HEF [Mcyc]", "ASF [Mcyc]",
                   "Molen [Mcyc]", "HEF vs Molen"});
  for (const std::uint64_t mbps : {16u, 33u, 66u, 132u, 264u, 1056u}) {
    BitstreamModel model;
    model.bytes_per_second = mbps * 1'000'000;

    auto run_with = [&](const std::string& name) {
      auto scheduler = make_scheduler(name);
      RtmConfig config;
      config.container_count = kAcs;
      config.scheduler = scheduler.get();
      config.bitstream = model;
      RunTimeManager rtm(&ctx.set, ctx.trace.hot_spots.size(), config);
      h264::seed_default_forecasts(ctx.set, rtm);
      return run_trace(ctx.trace, rtm).total_cycles;
    };
    MolenConfig molen_config;
    molen_config.container_count = kAcs;
    molen_config.bitstream = model;
    MolenBackend molen(&ctx.set, ctx.trace.hot_spots.size(), molen_config);
    h264::seed_default_forecasts(ctx.set, molen);
    const Cycles molen_cycles = run_trace(ctx.trace, molen).total_cycles;

    const Cycles hef = run_with("HEF");
    const Cycles asf = run_with("ASF");
    table.add(mbps, format_fixed(model.average_reconfig_us(ctx.set.library()), 1),
              format_fixed(hef / 1e6, 1), format_fixed(asf / 1e6, 1),
              format_fixed(molen_cycles / 1e6, 1),
              format_fixed(static_cast<double>(molen_cycles) / hef, 2));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expectation: the HEF-vs-Molen gap collapses as the port speeds up and\n"
              "widens as it slows — gradual upgrading is a defence against slow\n"
              "reconfiguration.\n");
  return 0;
}
