// Ablation: reconfiguration-port bandwidth.
//
// The paper's 66 MB/s SelectMap/ICAP fixes the ~874 us atom load. Faster
// ports shrink the upgrade windows (scheduling matters less); slower ports
// stretch them (scheduling matters more, and Molen suffers most since it
// cannot use partial molecules at all).
#include <cstdio>
#include <string>
#include <vector>

#include "base/table.h"
#include "bench/common.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;
  bench::BenchPerfLog perf("ablation_reconfig_bandwidth");
  constexpr unsigned kAcs = 12;

  std::printf("Ablation — reconfiguration bandwidth @%u ACs (%d frames; paper port: "
              "66 MB/s)\n\n",
              kAcs, ctx.frames);

  const std::vector<std::uint64_t> bandwidths{16u, 33u, 66u, 132u, 264u, 1056u};
  // Three systems per bandwidth: HEF, ASF, Molen.
  struct Cell { std::uint64_t mbps; int system; };
  std::vector<Cell> cells;
  for (const std::uint64_t mbps : bandwidths)
    for (int system = 0; system < 3; ++system) cells.push_back({mbps, system});
  perf.set_cells(cells.size());

  const auto cycles = bench::run_sweep(cells, [&](const Cell& cell) {
    BitstreamModel model;
    model.bytes_per_second = cell.mbps * 1'000'000;
    if (cell.system == 2) {
      MolenConfig config;
      config.container_count = kAcs;
      config.bitstream = model;
      MolenBackend molen(&ctx.set, ctx.trace.hot_spots.size(), config);
      h264::seed_default_forecasts(ctx.set, molen);
      return run_trace(ctx.trace, molen).total_cycles;
    }
    auto scheduler = make_scheduler(cell.system == 0 ? "HEF" : "ASF");
    RtmConfig config;
    config.container_count = kAcs;
    config.scheduler = scheduler.get();
    config.bitstream = model;
    RunTimeManager rtm(&ctx.set, ctx.trace.hot_spots.size(), config);
    h264::seed_default_forecasts(ctx.set, rtm);
    return run_trace(ctx.trace, rtm).total_cycles;
  });

  TextTable table({"port [MB/s]", "avg atom [us]", "HEF [Mcyc]", "ASF [Mcyc]",
                   "Molen [Mcyc]", "HEF vs Molen"});
  for (std::size_t i = 0; i < bandwidths.size(); ++i) {
    BitstreamModel model;
    model.bytes_per_second = bandwidths[i] * 1'000'000;
    const Cycles hef = cycles[i * 3 + 0];
    const Cycles asf = cycles[i * 3 + 1];
    const Cycles molen_cycles = cycles[i * 3 + 2];
    table.add(bandwidths[i], format_fixed(model.average_reconfig_us(ctx.set.library()), 1),
              format_fixed(hef / 1e6, 1), format_fixed(asf / 1e6, 1),
              format_fixed(molen_cycles / 1e6, 1),
              format_fixed(static_cast<double>(molen_cycles) / hef, 2));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expectation: the HEF-vs-Molen gap collapses as the port speeds up and\n"
              "widens as it slows — gradual upgrading is a defence against slow\n"
              "reconfiguration.\n");
  return 0;
}
