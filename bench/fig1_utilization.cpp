// Figure 1 (quantified): the efficiency problem that motivates RISPP.
//
// A static ASIP dedicates hardware to every SI; while one hot spot executes,
// the other hot spots' accelerators idle ("during the execution of ME, EE
// and LF are idling"). This bench measures that: per hot spot, the fraction
// of dedicated atoms actually exercised, time-weighted over the encode run —
// versus the RISPP platform where a small rotated Atom Container budget
// achieves comparable speed.
#include <cstdio>

#include "base/table.h"
#include "baselines/static_asip.h"
#include "bench/common.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;

  // Dedicated hardware per SI: its fastest molecule (what an ASIP would
  // instantiate), no sharing across SIs.
  std::vector<unsigned> dedicated(ctx.set.si_count(), 0);
  unsigned total_dedicated = 0;
  for (SiId si = 0; si < ctx.set.si_count(); ++si) {
    Cycles best = ctx.set.si(si).software_latency;
    for (const auto& m : ctx.set.si(si).molecules)
      if (m.latency < best) {
        best = m.latency;
        dedicated[si] = m.atoms.determinant();
      }
    total_dedicated += dedicated[si];
  }

  // Time share of each hot spot under the static ASIP (everything resident).
  StaticAsipBackend asip(&ctx.set);
  const SimResult asip_run = run_trace(ctx.trace, asip);

  std::printf("Figure 1 (quantified) — idling dedicated hardware in a static ASIP\n");
  std::printf("(%d frames; %u atoms of dedicated hardware across 9 SIs)\n\n", ctx.frames,
              total_dedicated);
  TextTable table({"hot spot", "time share", "atoms used", "atoms idle", "utilization"});
  for (HotSpotId hs = 0; hs < ctx.trace.hot_spots.size(); ++hs) {
    unsigned used = 0;
    for (SiId si : ctx.trace.hot_spots[hs].sis) used += dedicated[si];
    const double share = static_cast<double>(asip_run.hot_spot_cycles[hs]) /
                         static_cast<double>(asip_run.total_cycles);
    table.add(ctx.trace.hot_spots[hs].name, format_fixed(share * 100.0, 1) + "%", used,
              total_dedicated - used,
              format_fixed(100.0 * used / total_dedicated, 1) + "%");
  }
  std::printf("%s\n", table.render().c_str());

  // Time-weighted mean utilization of the dedicated hardware.
  double weighted = 0.0;
  for (HotSpotId hs = 0; hs < ctx.trace.hot_spots.size(); ++hs) {
    unsigned used = 0;
    for (SiId si : ctx.trace.hot_spots[hs].sis) used += dedicated[si];
    weighted += static_cast<double>(asip_run.hot_spot_cycles[hs]) /
                static_cast<double>(asip_run.total_cycles) *
                (static_cast<double>(used) / total_dedicated);
  }

  const SimResult rispp_run = ctx.run_scheduler("HEF", 24);
  std::printf("static ASIP: %.1f Mcycles with %u dedicated atoms, %.0f%% mean "
              "hardware utilization\n",
              asip_run.total_cycles / 1e6, total_dedicated, weighted * 100.0);
  std::printf("RISPP + HEF: %.1f Mcycles with 24 rotated Atom Containers (%.1fx the\n"
              "ASIP time at %.1fx less reconfigurable area) — the paper's premise:\n"
              "idling accelerators are better spent rotating the instruction set.\n",
              rispp_run.total_cycles / 1e6,
              static_cast<double>(rispp_run.total_cycles) / asip_run.total_cycles,
              static_cast<double>(total_dedicated) / 24.0);
  return 0;
}
