// Ablation: forecast quality (Run-Time Manager task II).
//
// HEF weights upgrades by "expected SI executions". How much does the
// quality of that expectation matter? Compared: online monitoring (the
// paper's system, exponential update), static design-time seeds only, and an
// oracle that knows the exact counts of the upcoming hot-spot instance.
#include <cstdio>
#include <vector>

#include "base/table.h"
#include "bench/common.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;
  bench::BenchPerfLog perf("ablation_forecast");

  std::printf("Ablation — forecast source for HEF (%d frames)\n\n", ctx.frames);

  const std::vector<unsigned> ac_counts{8u, 12u, 16u, 20u, 24u};
  const ForecastMode modes[] = {ForecastMode::kMonitored, ForecastMode::kStaticSeeds,
                                ForecastMode::kOracle};
  struct Cell { unsigned acs; ForecastMode mode; };
  std::vector<Cell> cells;
  for (const unsigned acs : ac_counts)
    for (const ForecastMode mode : modes) cells.push_back({acs, mode});
  perf.set_cells(cells.size());

  const auto cycles = bench::run_sweep(cells, [&](const Cell& cell) {
    return static_cast<double>(
        ctx.run_scheduler("HEF", cell.acs, nullptr, cell.mode).total_cycles);
  });

  TextTable table({"#ACs", "monitored [Mcyc]", "static seeds [Mcyc]", "oracle [Mcyc]",
                   "monitor vs static", "oracle headroom"});
  for (std::size_t i = 0; i < ac_counts.size(); ++i) {
    const double monitored = cycles[i * 3 + 0];
    const double fixed = cycles[i * 3 + 1];
    const double oracle = cycles[i * 3 + 2];
    table.add(ac_counts[i], format_fixed(monitored / 1e6, 1), format_fixed(fixed / 1e6, 1),
              format_fixed(oracle / 1e6, 1), format_fixed(fixed / monitored, 3),
              format_fixed(monitored / oracle, 3));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expectation: monitoring tracks the oracle closely (the [24] claim that\n"
              "light-weight online monitoring suffices); static seeds drift as the\n"
              "video's motion phases change.\n");
  return 0;
}
