// Ablation: forecast quality (Run-Time Manager task II).
//
// HEF weights upgrades by "expected SI executions". How much does the
// quality of that expectation matter? Compared: online monitoring (the
// paper's system, exponential update), static design-time seeds only, and an
// oracle that knows the exact counts of the upcoming hot-spot instance.
#include <cstdio>

#include "base/table.h"
#include "bench/common.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;

  std::printf("Ablation — forecast source for HEF (%d frames)\n\n", ctx.frames);
  TextTable table({"#ACs", "monitored [Mcyc]", "static seeds [Mcyc]", "oracle [Mcyc]",
                   "monitor vs static", "oracle headroom"});
  for (unsigned acs : {8u, 12u, 16u, 20u, 24u}) {
    const double monitored =
        static_cast<double>(ctx.run_scheduler("HEF", acs, nullptr,
                                              ForecastMode::kMonitored)
                                .total_cycles);
    const double fixed =
        static_cast<double>(ctx.run_scheduler("HEF", acs, nullptr,
                                              ForecastMode::kStaticSeeds)
                                .total_cycles);
    const double oracle =
        static_cast<double>(ctx.run_scheduler("HEF", acs, nullptr,
                                              ForecastMode::kOracle)
                                .total_cycles);
    table.add(acs, format_fixed(monitored / 1e6, 1), format_fixed(fixed / 1e6, 1),
              format_fixed(oracle / 1e6, 1), format_fixed(fixed / monitored, 3),
              format_fixed(monitored / oracle, 3));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expectation: monitoring tracks the oracle closely (the [24] claim that\n"
              "light-weight online monitoring suffices); static seeds drift as the\n"
              "video's motion phases change.\n");
  return 0;
}
