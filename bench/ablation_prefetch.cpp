// Extension bench: cross-hot-spot prefetching.
//
// The paper's schedule only reacts at hot-spot entry; once the port drains
// the current sequence it idles until the next hot spot. The prefetch
// extension uses that idle time to start loading the predicted next hot
// spot's atoms (first-order successor prediction, current demand pinned).
#include <cstdio>

#include "base/table.h"
#include "bench/common.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;

  std::printf("Extension — cross-hot-spot prefetching with HEF (%d frames)\n\n",
              ctx.frames);
  TextTable table({"#ACs", "no prefetch [Mcyc]", "prefetch [Mcyc]", "gain", "loads no/pf"});
  for (unsigned acs : {8u, 12u, 16u, 20u, 24u}) {
    SimResult results[2];
    for (int pf = 0; pf < 2; ++pf) {
      auto scheduler = make_scheduler("HEF");
      RtmConfig config;
      config.container_count = acs;
      config.scheduler = scheduler.get();
      config.enable_prefetch = pf == 1;
      RunTimeManager rtm(&ctx.set, ctx.trace.hot_spots.size(), config);
      h264::seed_default_forecasts(ctx.set, rtm);
      results[pf] = run_trace(ctx.trace, rtm);
    }
    table.add(acs, format_fixed(results[0].total_cycles / 1e6, 1),
              format_fixed(results[1].total_cycles / 1e6, 1),
              format_fixed(static_cast<double>(results[0].total_cycles) /
                               static_cast<double>(results[1].total_cycles),
                           3),
              std::to_string(results[0].atom_loads) + "/" +
                  std::to_string(results[1].atom_loads));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expectation: gains where containers are plentiful enough that the\n"
              "next hot spot's atoms fit beside the current working set; neutral\n"
              "when the budget is tight (prefetch cannot evict current demand).\n");
  return 0;
}
