// Table 1: the implemented SIs of the H.264 encoder with the number of
// required atom types and the number of available molecules — printed from
// the live SI library next to the paper's numbers.
#include <cstdio>

#include "base/table.h"
#include "bench/common.h"
#include "hw/bitstream.h"

int main() {
  using namespace rispp;
  const auto set = h264sis::build_h264_si_set();

  struct PaperRow {
    const char* hot_spot;
    const char* name;
    unsigned atom_types;
    unsigned molecules;
  };
  const PaperRow paper[] = {
      {"Motion Estimation (ME)", "SAD", 1, 3},
      {"", "SATD", 4, 20},
      {"Encoding Engine (EE)", "(I)DCT", 3, 12},
      {"", "(I)HT 2x2", 1, 2},
      {"", "(I)HT 4x4", 2, 7},
      {"", "MC 4", 3, 11},
      {"", "IPred HDC", 2, 4},
      {"", "IPred VDC", 1, 3},
      {"Loop Filter (LF)", "LF_BS4", 2, 5},
  };

  std::printf("Table 1 — implemented SIs with #atom-types and #molecules\n\n");
  TextTable table({"hot spot", "SI", "#atom-types", "#molecules", "paper", "match",
                   "trap [cyc]", "fastest [cyc]"});
  bool all_match = true;
  for (const PaperRow& row : paper) {
    const auto id = set.find(row.name);
    if (!id.has_value()) {
      std::printf("missing SI %s\n", row.name);
      return 1;
    }
    const SpecialInstruction& si = set.si(*id);
    const unsigned types = si.graph.occurrences().type_count();
    const auto molecules = static_cast<unsigned>(si.molecules.size());
    const bool match = types == row.atom_types && molecules == row.molecules;
    all_match = all_match && match;
    Cycles fastest = si.software_latency;
    for (const auto& m : si.molecules) fastest = std::min(fastest, m.latency);
    table.add(row.hot_spot, row.name, types, molecules,
              std::to_string(row.atom_types) + "/" + std::to_string(row.molecules),
              match ? "yes" : "NO", si.software_latency, fastest);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("All rows match Table 1: %s\n\n", all_match ? "yes" : "NO");

  // Atom library details (the paper: avg 421 slices, 60,488-byte partial
  // bitstreams, 874.03 us average reconfiguration).
  BitstreamModel model;
  TextTable atoms({"atom type", "op lat", "sw cyc/op", "slices", "bitstream [B]",
                   "reconfig [us]"});
  for (AtomTypeId t = 0; t < set.library().size(); ++t) {
    const AtomType& a = set.library().type(t);
    atoms.add(a.name, a.op_latency, a.sw_op_cycles, a.slices, model.bitstream_bytes(a),
              format_fixed(us_from_cycles(model.reconfig_cycles(a)), 1));
  }
  std::printf("%s\n", atoms.render().c_str());
  std::printf("average atom reconfiguration: %.2f us (paper: 874.03 us)\n",
              model.average_reconfig_us(set.library()));
  return all_match ? 0 : 1;
}
