// Table 2: speedup of HEF over ASF, of ASF over a Molen-like system, and of
// HEF over Molen, for 5..24 Atom Containers.
//
// Paper: HEF vs ASF up to 1.52x, ASF vs Molen up to 1.67x, HEF vs Molen up
// to 2.38x (avg 1.71x), and HEF never slower than Molen or any scheduler.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "base/table.h"
#include "bench/common.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;
  bench::BenchPerfLog perf("table2");

  std::printf("Table 2 — speedups vs. ASF and a Molen-like baseline (%d frames)\n\n",
              ctx.frames);

  // Four systems per AC count: ASF, HEF, Molen, OneChip.
  struct Cell { unsigned acs; int system; };
  std::vector<Cell> cells;
  for (unsigned acs = 5; acs <= 24; ++acs)
    for (int system = 0; system < 4; ++system) cells.push_back({acs, system});
  perf.set_cells(cells.size());

  const auto cycles = bench::run_sweep(cells, [&](const Cell& cell) {
    switch (cell.system) {
      case 0: return ctx.run_scheduler("ASF", cell.acs).total_cycles;
      case 1: return ctx.run_scheduler("HEF", cell.acs).total_cycles;
      case 2: return ctx.run_molen(cell.acs).total_cycles;
      default: return ctx.run_onechip(cell.acs).total_cycles;
    }
  });

  TextTable table({"#ACs", "HEF vs ASF", "ASF vs Molen", "HEF vs Molen", "HEF vs OneChip"});
  double sum_hef_molen = 0.0, max_hef_molen = 0.0;
  unsigned count = 0;
  bool hef_never_slower = true;
  for (unsigned acs = 5; acs <= 24; ++acs) {
    const std::size_t row = (acs - 5) * 4;
    const double asf = static_cast<double>(cycles[row + 0]);
    const double hef = static_cast<double>(cycles[row + 1]);
    const double molen = static_cast<double>(cycles[row + 2]);
    const double onechip_cycles = static_cast<double>(cycles[row + 3]);
    const double hef_asf = asf / hef;
    const double asf_molen = molen / asf;
    const double hef_molen = molen / hef;
    table.add(acs, hef_asf, asf_molen, hef_molen, onechip_cycles / hef);
    sum_hef_molen += hef_molen;
    max_hef_molen = std::max(max_hef_molen, hef_molen);
    if (hef_molen < 0.995) hef_never_slower = false;  // >0.5% = meaningful
    ++count;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("HEF vs Molen: avg %.2fx, max %.2fx   (paper: avg 1.71x, max 2.38x)\n",
              sum_hef_molen / count, max_hef_molen);
  std::printf("HEF meaningfully (>0.5%%) slower than Molen at any AC count: %s   "
              "(paper: never)\n",
              hef_never_slower ? "no" : "yes");
  return 0;
}
