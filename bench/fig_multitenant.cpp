// Multi-tenant contention: the fleet's aggregate speedup and per-tenant
// simulated-cycle percentiles as 1, 2, 4, 8 and 16 applications share one
// device's fabric through the FabricArbiter, under both partition modes
// (DESIGN §9). The co-simulation runs in the default event-horizon
// fast-forward mode (DESIGN §9.1) — bit-identical to the instance-stepped
// reference, so the numbers are comparable across PRs either way.
//
// Shape to look for: at 1 tenant both modes reproduce the solo speedup
// exactly (the arbiter degenerates to the private fabric — the equivalence
// contract lives in tests/multitenant_test.cpp). As tenants pile on, the
// shared reconfiguration port and the split fabric erode the aggregate
// speedup and stretch the p99 tail; kBenefitWeighted should hold more of
// the speedup than kStatic at the same tenant count by shifting containers
// toward the tenants with the most forecast mass, at the cost of
// cross-tenant evictions.
#include <cstdio>

#include "base/metrics.h"
#include "base/table.h"
#include "bench/common.h"
#include "fleet/spec.h"
#include "fleet/tenant_fleet.h"

int main() {
  using namespace rispp;
  bench::BenchPerfLog perf("fig_multitenant");

  const int frames = bench::bench_frames();
  const fleet::FleetSpec spec = bench::multitenant_fleet_spec(frames);
  const auto sessions = fleet::expand_fleet_spec(spec);

  const int tenant_counts[] = {1, 2, 4, 8, 16};
  const PartitionMode modes[] = {PartitionMode::kStatic,
                                 PartitionMode::kBenefitWeighted};
  std::size_t cells = 0;

  std::printf("Multi-tenant contention — %zu sessions, 8 ACs/tenant, frames %d..%d\n\n",
              sessions.size(), spec.frames_min, spec.frames_max);
  TextTable table({"tenants/device", "partition", "agg speedup", "sim p50", "sim p99",
                   "evictions", "port wait", "mispredicts", "avg churn"});
  // The registry metrics are cumulative across the whole process, so each
  // configuration's row reports the delta over its own run.
  const MetricCounter& mispredicts = metric_counter("rtm.forecast.mispredicts");
  const MetricHistogram& churn =
      metric_histogram("rtm.forecast.mispredict_reconfig_loads");
  for (const PartitionMode mode : modes) {
    for (const int tenants : tenant_counts) {
      fleet::ContendedOptions options;
      options.tenants_per_device = tenants;
      options.acs_per_tenant = 8;
      options.floor = 2;
      options.partition = mode;
      const std::uint64_t mispredicts0 = mispredicts.value();
      const HistogramSnapshot churn0 = churn.snapshot();
      const fleet::ContendedReport report =
          fleet::run_contended_fleet(sessions, options);
      cells += report.sessions;
      const std::uint64_t mispredicted = mispredicts.value() - mispredicts0;
      const HistogramSnapshot churn1 = churn.snapshot();
      const std::uint64_t churn_count = churn1.count - churn0.count;
      // Mispredict→reconfig churn: atom loads a forecast flip forced, per
      // mispredicted hot-spot entry.
      const double avg_churn =
          churn_count > 0
              ? static_cast<double>(churn1.sum - churn0.sum) /
                    static_cast<double>(churn_count)
              : 0.0;
      table.add(tenants, mode == PartitionMode::kStatic ? "static" : "weighted",
                format_fixed(report.aggregate_speedup, 3), report.sim_cycles_p50,
                report.sim_cycles_p99, report.evictions, report.port_wait_cycles,
                mispredicted, format_fixed(avg_churn, 2));
    }
  }
  perf.set_cells(cells);
  std::printf("%s\n", table.render().c_str());
  const HistogramSnapshot churn_total = churn.snapshot();
  std::printf("forecast mispredicts total: %llu, reconfig churn p50 %llu / p99 %llu loads\n",
              static_cast<unsigned long long>(mispredicts.value()),
              static_cast<unsigned long long>(churn_total.p(0.5)),
              static_cast<unsigned long long>(churn_total.p(0.99)));
  return 0;
}
