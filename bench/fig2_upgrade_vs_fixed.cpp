// Figure 2: SI executions per 100K cycles in the Motion Estimation hot spot,
// with and without stepwise SI upgrade (the paper's motivating experiment:
// 31,977 executions of SAD and SATD in one ME hot spot).
//
// "Without upgrade" is the Molen-like single-implementation behaviour: each
// SI runs on the base processor until its full molecule is reconfigured.
// "With upgrade" uses the RISPP hierarchy under the HEF scheduler.
#include <cstdio>

#include "base/table.h"
#include "bench/common.h"
#include "sim/stats.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;
  const SiId sad = ctx.set.find("SAD").value();
  const SiId satd = ctx.set.find("SATD").value();

  // Isolate the first P-frame's ME hot spot, cold-started (as in Figure 2).
  WorkloadTrace me;
  me.hot_spots = ctx.trace.hot_spots;
  for (const auto& inst : ctx.trace.instances) {
    if (inst.hot_spot == h264::kHotSpotMe) {
      me.instances.push_back(inst);
      break;
    }
  }
  if (me.instances.empty()) {
    std::printf("trace has no ME instance\n");
    return 1;
  }
  std::printf(
      "Figure 2 — ME hot spot, %zu SAD+SATD executions (paper: 31,977)\n"
      "Executions per 100K cycles, with vs. without stepwise SI upgrade\n\n",
      me.instances.front().executions.size());

  constexpr unsigned kAcs = 17;  // room for the full ME selection

  SimStats upgraded_stats(ctx.set.si_count());
  const auto run_upgraded = [&] {
    auto scheduler = make_scheduler("HEF");
    RtmConfig config;
    config.container_count = kAcs;
    config.scheduler = scheduler.get();
    RunTimeManager rtm(&ctx.set, me.hot_spots.size(), config);
    h264::seed_default_forecasts(ctx.set, rtm);
    return run_trace(me, rtm, &upgraded_stats);
  };
  SimStats fixed_stats(ctx.set.si_count());
  const auto run_fixed = [&] {
    MolenConfig config;
    config.container_count = kAcs;
    MolenBackend molen(&ctx.set, me.hot_spots.size(), config);
    h264::seed_default_forecasts(ctx.set, molen);
    return run_trace(me, molen, &fixed_stats);
  };

  const SimResult upgraded = run_upgraded();
  const SimResult fixed = run_fixed();

  TextTable table({"t [100K cyc]", "with upgrade", "no upgrade", "note"});
  const std::size_t buckets =
      std::max(upgraded_stats.bucket_count(), fixed_stats.bucket_count());
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::uint64_t up = upgraded_stats.bucket_executions(sad, b) +
                             upgraded_stats.bucket_executions(satd, b);
    const std::uint64_t fx = fixed_stats.bucket_executions(sad, b) +
                             fixed_stats.bucket_executions(satd, b);
    std::string note;
    if (b + 1 == static_cast<std::size_t>(
                     (upgraded.total_cycles + kBucketCycles - 1) / kBucketCycles))
      note = "<- upgrade run finishes";
    table.add(b, up, fx, note);
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("ME hot spot duration: with upgrade %.2f Mcycles, without %.2f Mcycles "
              "(%.2fx earlier finish; paper shows the upgraded run finishing "
              "well before the fixed one)\n",
              upgraded.total_cycles / 1e6, fixed.total_cycles / 1e6,
              static_cast<double>(fixed.total_cycles) / upgraded.total_cycles);

  // Reconfiguration landmarks (the paper annotates SAD/SATD completion).
  const auto& tl_sad = upgraded_stats.latency_timeline(sad);
  const auto& tl_satd = upgraded_stats.latency_timeline(satd);
  if (tl_sad.size() > 1)
    std::printf("upgrade run: first SAD hardware molecule at %.0fK cycles, "
                "final at %.0fK cycles\n",
                tl_sad[1].at / 1e3, tl_sad.back().at / 1e3);
  if (tl_satd.size() > 1)
    std::printf("upgrade run: first SATD hardware molecule at %.0fK cycles, "
                "final at %.0fK cycles\n",
                tl_satd[1].at / 1e3, tl_satd.back().at / 1e3);
  return 0;
}
