// Figure 8: detailed HEF behaviour at 10 Atom Containers over the first two
// hot spots (ME and EE) of one encoded frame — SI latencies over time (the
// immediate scheduler decisions; log-scale lines in the paper) and the
// resulting SI executions per 100K cycles (bars).
#include <cstdio>

#include "base/table.h"
#include "bench/common.h"
#include "sim/stats.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;

  const SiId sad = ctx.set.find("SAD").value();
  const SiId satd = ctx.set.find("SATD").value();
  const SiId mc = ctx.set.find("MC 4").value();
  const SiId dct = ctx.set.find("(I)DCT").value();

  // First two hot spots of the first P frame (ME then EE), cold start.
  WorkloadTrace window;
  window.hot_spots = ctx.trace.hot_spots;
  for (const auto& inst : ctx.trace.instances) {
    if (window.instances.empty() && inst.hot_spot != h264::kHotSpotMe) continue;
    window.instances.push_back(inst);
    if (window.instances.size() == 2) break;
  }
  if (window.instances.size() < 2) {
    std::printf("trace too short for Figure 8\n");
    return 1;
  }

  auto scheduler = make_scheduler("HEF");
  RtmConfig config;
  config.container_count = 10;
  config.scheduler = scheduler.get();
  RunTimeManager rtm(&ctx.set, window.hot_spots.size(), config);
  h264::seed_default_forecasts(ctx.set, rtm);
  SimStats stats(ctx.set.si_count());
  const SimResult result = run_trace(window, rtm, &stats);

  std::printf("Figure 8 — HEF detail @10 ACs, first two hot spots (ME, EE) of one "
              "frame; total %.2f Mcycles (paper: ~2.4M)\n\n",
              result.total_cycles / 1e6);

  // Latency at the start of each 100K bucket, from the change-point
  // timelines (the paper's log-scale latency lines).
  auto latency_at = [&](SiId si, Cycles t) -> Cycles {
    Cycles lat = ctx.set.si(si).software_latency;
    for (const auto& point : stats.latency_timeline(si)) {
      if (point.at > t) break;
      lat = point.latency;
    }
    return lat;
  };

  TextTable table({"t [100K cyc]", "SAD exec", "SATD exec", "MC exec", "DCT exec",
                   "SAD lat", "SATD lat", "MC lat", "DCT lat"});
  for (std::size_t b = 0; b < stats.bucket_count(); ++b) {
    const Cycles t = static_cast<Cycles>(b) * kBucketCycles;
    table.add(b, stats.bucket_executions(sad, b), stats.bucket_executions(satd, b),
              stats.bucket_executions(mc, b), stats.bucket_executions(dct, b),
              latency_at(sad, t), latency_at(satd, t), latency_at(mc, t),
              latency_at(dct, t));
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Scheduler decision landmarks (latency decreases = an upgrade's atoms "
              "finished loading):\n");
  for (SiId si : {sad, satd, mc, dct}) {
    std::printf("  %-9s:", ctx.set.si(si).name.c_str());
    for (const auto& point : stats.latency_timeline(si))
      std::printf(" %llu@%.0fK", static_cast<unsigned long long>(point.latency),
                  point.at / 1e3);
    std::printf("\n");
  }
  return 0;
}
