// Ablation: the Run-Time Manager's payback-horizon rule (an extension beyond
// the paper).
//
// A candidate upgrade is only requested when its expected latency savings
// over `horizon` hot-spot instances repay the reconfiguration time of its
// missing atoms. Without the rule (horizon 0), tail upgrades with negligible
// value keep the reconfiguration port busy and evict the other hot spots'
// resident atoms; with a too-aggressive rule (horizon 1), the platform
// freezes into a static working set and the schedulers stop mattering.
//
// This bench also documents the one deliberate deviation from the paper's
// Figure 7 (see EXPERIMENTS.md): with horizon 0 our FSFR crosses above ASF
// at large AC counts exactly as the paper describes, but then beats HEF at
// 22-24 ACs by accidental residency preservation; the default horizon (16)
// restores HEF's never-slower property at the cost of that crossover.
#include <cstdio>
#include <string>
#include <vector>

#include "base/table.h"
#include "bench/common.h"

int main() {
  using namespace rispp;
  const bench::BenchContext ctx;
  bench::BenchPerfLog perf("ablation_payback");

  std::printf("Ablation — payback horizon (%d frames)\n\n", ctx.frames);

  const auto names = scheduler_names();
  const std::vector<unsigned> horizons{0u, 1u, 8u, 16u, 64u};
  const std::vector<unsigned> ac_counts{8u, 12u, 16u, 20u, 24u};
  struct Cell { unsigned horizon; unsigned acs; std::string scheduler; };
  std::vector<Cell> cells;
  for (const unsigned horizon : horizons)
    for (const unsigned acs : ac_counts)
      for (const auto& name : names) cells.push_back({horizon, acs, name});
  perf.set_cells(cells.size());

  const auto results = bench::run_sweep(cells, [&](const Cell& cell) {
    auto scheduler = make_scheduler(cell.scheduler);
    RtmConfig config;
    config.container_count = cell.acs;
    config.scheduler = scheduler.get();
    config.payback_horizon = cell.horizon;
    RunTimeManager rtm(&ctx.set, ctx.trace.hot_spots.size(), config);
    h264::seed_default_forecasts(ctx.set, rtm);
    return run_trace(ctx.trace, rtm);
  });

  std::size_t cell = 0;
  for (const unsigned horizon : horizons) {
    TextTable table({"#ACs", "ASF [Mcyc]", "FSFR [Mcyc]", "SJF [Mcyc]", "HEF [Mcyc]",
                     "HEF loads"});
    for (const unsigned acs : ac_counts) {
      std::vector<std::string> row{std::to_string(acs)};
      std::uint64_t hef_loads = 0;
      for (const auto& name : names) {
        const SimResult& result = results[cell++];
        row.push_back(format_fixed(result.total_cycles / 1e6, 1));
        if (name == "HEF") hef_loads = result.atom_loads;
      }
      row.push_back(std::to_string(hef_loads));
      table.add_row(std::move(row));
    }
    std::printf("horizon = %u %s\n%s\n", horizon,
                horizon == 0 ? "(rule disabled)" : horizon == 16 ? "(default)" : "",
                table.render().c_str());
  }
  std::printf("horizon 0 reproduces the paper's FSFR-over-ASF crossover at large\n"
              "budgets; horizon 1 collapses into a static working set; the default\n"
              "keeps HEF never-slower while still pruning worthless tail upgrades.\n");
  return 0;
}
