// Beyond the paper's tables: the §6 generality claim ("the concept is
// certainly not limited to" the H.264 encoder). The same run-time system —
// selection, SI Scheduler, Atom Containers, monitoring — drives a
// JPEG-style image compressor with its own atoms and SIs. The scheduler
// ordering seen in Figure 7 must carry over qualitatively.
#include <cstdio>

#include "base/table.h"
#include "baselines/molen.h"
#include "baselines/software_only.h"
#include "jpeg/jpeg_si_library.h"
#include "jpeg/jpeg_workload.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

int main() {
  using namespace rispp;
  const SpecialInstructionSet set = jpegsis::build_jpeg_si_set();
  jpeg::JpegWorkloadConfig config;
  const auto workload = jpeg::generate_jpeg_workload(set, config);

  std::printf("Generality — JPEG-style compressor on the same run-time system\n");
  std::printf("(%d images 512x384, %llu blocks, %.1f nonzero coefficients/block, "
              "%zu SI executions)\n\n",
              config.images, static_cast<unsigned long long>(workload.total_blocks),
              workload.mean_activity, workload.trace.total_si_executions());

  SoftwareOnlyBackend software(&set);
  const Cycles sw = run_trace(workload.trace, software).total_cycles;
  std::printf("base processor only: %.1f Mcycles\n\n", sw / 1e6);

  TextTable table({"#ACs", "ASF", "FSFR", "SJF", "HEF", "Molen", "HEF speedup vs SW"});
  for (unsigned acs : {4u, 6u, 8u, 10u, 12u, 14u}) {
    std::vector<std::string> row{std::to_string(acs)};
    Cycles hef_cycles = 0;
    for (const auto& name : scheduler_names()) {
      auto scheduler = make_scheduler(name);
      RtmConfig rtm_config;
      rtm_config.container_count = acs;
      rtm_config.scheduler = scheduler.get();
      RunTimeManager rtm(&set, workload.trace.hot_spots.size(), rtm_config);
      jpeg::seed_jpeg_forecasts(set, rtm);
      const Cycles cycles = run_trace(workload.trace, rtm).total_cycles;
      if (name == "HEF") hef_cycles = cycles;
      row.push_back(format_fixed(cycles / 1e6, 1) + "M");
    }
    MolenConfig molen_config;
    molen_config.container_count = acs;
    MolenBackend molen(&set, workload.trace.hot_spots.size(), molen_config);
    jpeg::seed_jpeg_forecasts(set, molen);
    row.push_back(format_fixed(run_trace(workload.trace, molen).total_cycles / 1e6, 1) + "M");
    row.push_back(format_fixed(static_cast<double>(sw) / hef_cycles, 2) + "x");
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expectation: same qualitative ordering as Figure 7 — HEF at or near\n"
              "the top, Molen behind, despite a completely different SI library.\n");
  return 0;
}
