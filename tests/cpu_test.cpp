// Tests for the base-processor substrate: ISA semantics, pipeline timing
// (load-use interlock, branch penalty, iterative multiplier), the miniature
// assembler, and the atom-emulation kernels (functional correctness against
// the C++ kernels plus cycle-cost validation against the atom library).
#include <gtest/gtest.h>

#include "cpu/core.h"
#include "cpu/emulation.h"
#include "cpu/program.h"
#include "h264/interpolate.h"
#include "isa/h264_si_library.h"

namespace rispp::cpu {
namespace {

TEST(Assembler, LabelsResolveAndDuplicatesThrow) {
  Program p;
  p.li(kT0, 3);
  p.label("loop");
  p.addi(kT0, kT0, -1);
  p.bne(kT0, kZero, "loop");
  p.halt();
  p.finalize();
  EXPECT_EQ(p.instructions()[2].imm, 1);  // branch target = index of "loop"

  Program q;
  q.label("x");
  EXPECT_THROW(q.label("x"), std::logic_error);

  Program r;
  r.j("nowhere");
  EXPECT_THROW(r.finalize(), std::logic_error);
}

TEST(Core, ArithmeticAndLogicSemantics) {
  Program p;
  p.li(kT0, 7);
  p.li(kT1, -3);
  p.add(kT2, kT0, kT1);   // 4
  p.sub(kT3, kT0, kT1);   // 10
  p.mul(kT4, kT0, kT1);   // -21
  p.and_(kT5, kT0, kT1);  // 7 & -3 = 5
  p.or_(kT6, kT0, kT1);   // -1
  p.xor_(kT7, kT0, kT1);  // -6
  p.slt(kS0, kT1, kT0);   // 1
  p.halt();
  p.finalize();
  Core core(64);
  const RunResult r = core.run(p);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(core.reg(kT2), 4);
  EXPECT_EQ(core.reg(kT3), 10);
  EXPECT_EQ(core.reg(kT4), -21);
  EXPECT_EQ(core.reg(kT5), 5);
  EXPECT_EQ(core.reg(kT6), -1);
  EXPECT_EQ(core.reg(kT7), -6);
  EXPECT_EQ(core.reg(kS0), 1);
}

TEST(Core, ShiftsAndZeroRegister) {
  Program p;
  p.li(kT0, -8);
  p.sra(kT1, kT0, 1);  // -4 (arithmetic)
  p.srl(kT2, kT0, 28); // logical: 0xF...8 >> 28 = 15
  p.sll(kT3, kT0, 2);  // -32
  p.addi(static_cast<Reg>(kZero), kT0, 5);  // writes to r0 are dropped
  p.halt();
  p.finalize();
  Core core(64);
  core.run(p);
  EXPECT_EQ(core.reg(kT1), -4);
  EXPECT_EQ(core.reg(kT2), 15);
  EXPECT_EQ(core.reg(kT3), -32);
  EXPECT_EQ(core.reg(kZero), 0);
}

TEST(Core, MemoryAccessAndBounds) {
  Program p;
  p.li(kT0, 0x1234);
  p.li(kT1, 8);
  p.sw(kT0, kT1, 0);
  p.lw(kT2, kT1, 0);
  p.lbu(kT3, kT1, 0);  // little-endian low byte 0x34
  p.halt();
  p.finalize();
  Core core(64);
  core.run(p);
  EXPECT_EQ(core.reg(kT2), 0x1234);
  EXPECT_EQ(core.reg(kT3), 0x34);

  Program bad;
  bad.li(kT0, 4096);
  bad.lw(kT1, kT0, 0);
  bad.halt();
  bad.finalize();
  Core small(64);
  EXPECT_THROW(small.run(bad), std::logic_error);
}

TEST(Core, LoopExecutesCorrectTripCount) {
  // sum = 1+2+...+10 via a counted loop.
  Program p;
  p.li(kT0, 10);
  p.li(kV0, 0);
  p.label("loop");
  p.add(kV0, kV0, kT0);
  p.addi(kT0, kT0, -1);
  p.bne(kT0, kZero, "loop");
  p.halt();
  p.finalize();
  Core core(64);
  const RunResult r = core.run(p);
  EXPECT_EQ(core.reg(kV0), 55);
  // 2 setup + 10 iterations x 3 instructions + halt.
  EXPECT_EQ(r.instructions, 2u + 30u + 1u);
}

TEST(Core, LoadUseInterlockCostsOneCycle) {
  Program with_hazard;
  with_hazard.li(kT1, 8);
  with_hazard.lw(kT0, kT1, 0);
  with_hazard.add(kT2, kT0, kT0);  // immediately uses the load
  with_hazard.halt();
  with_hazard.finalize();

  Program without_hazard;
  without_hazard.li(kT1, 8);
  without_hazard.lw(kT0, kT1, 0);
  without_hazard.add(kT2, kT1, kT1);  // independent
  without_hazard.halt();
  without_hazard.finalize();

  Core a(64), b(64);
  EXPECT_EQ(a.run(with_hazard).cycles, b.run(without_hazard).cycles + 1);
}

TEST(Core, TakenBranchPaysThePenalty) {
  Program taken;
  taken.li(kT0, 1);
  taken.bne(kT0, kZero, "skip");
  taken.li(kT1, 99);  // skipped
  taken.label("skip");
  taken.halt();
  taken.finalize();

  Program not_taken;
  not_taken.li(kT0, 0);
  not_taken.bne(kT0, kZero, "skip");
  not_taken.li(kT1, 99);  // executed
  not_taken.label("skip");
  not_taken.halt();
  not_taken.finalize();

  Core a(64), b(64);
  const Cycles taken_cycles = a.run(taken).cycles;       // 3 instr + penalty
  const Cycles not_taken_cycles = b.run(not_taken).cycles;  // 4 instr
  EXPECT_EQ(taken_cycles, 3 + PipelineTiming::dlx().taken_branch_penalty);
  EXPECT_EQ(not_taken_cycles, 4u);
}

TEST(Core, MultiplierIsIterative) {
  Program p;
  p.li(kT0, 6);
  p.mul(kT1, kT0, kT0);
  p.halt();
  p.finalize();
  Core core(64);
  EXPECT_EQ(core.run(p).cycles, 3u + PipelineTiming::dlx().mul_extra_cycles);
}

TEST(Core, InstructionBudgetStopsRunawayPrograms) {
  Program p;
  p.label("spin");
  p.j("spin");
  p.finalize();
  Core core(64);
  const RunResult r = core.run(p, 100);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.instructions, 100u);
}

// ---- Emulation kernels -------------------------------------------------

TEST(Emulation, SadRowMatchesReference) {
  Core core(0x1000);
  std::uint32_t expected = 0;
  for (int i = 0; i < 16; ++i) {
    const std::uint8_t a = static_cast<std::uint8_t>(10 + 9 * i);
    const std::uint8_t b = static_cast<std::uint8_t>(200 - 5 * i);
    core.store_byte(0x100 + i, a);
    core.store_byte(0x200 + i, b);
    expected += static_cast<std::uint32_t>(std::abs(int(a) - int(b)));
  }
  core.set_reg(kA0, 0x100);
  core.set_reg(kA1, 0x200);
  core.run(build_emulation_kernel(h264sis::kSadRow));
  EXPECT_EQ(static_cast<std::uint32_t>(core.reg(kV0)), expected);
}

TEST(Emulation, Clip3ClampsBothSides) {
  for (const int value : {-77, 0, 128, 255, 300}) {
    Core core(0x1000);
    core.set_reg(kA0, 0x100);
    core.set_reg(kA2, 0x300);
    core.store_word(0x100, value);
    core.run(build_emulation_kernel(h264sis::kClip3));
    const int expected = value < 0 ? 0 : (value > 255 ? 255 : value);
    EXPECT_EQ(core.load_word(0x300), expected) << value;
  }
}

TEST(Emulation, PointFilterMatchesCppKernel) {
  Core core(0x1000);
  std::uint8_t px[8];
  for (int i = 0; i < 8; ++i) {
    px[i] = static_cast<std::uint8_t>(30 + 23 * i);
    core.store_byte(0x100 + i, px[i]);
  }
  core.set_reg(kA0, 0x100);
  core.set_reg(kA2, 0x300);
  core.run(build_emulation_kernel(h264sis::kPointFilter));
  for (int out = 0; out < 3; ++out) {
    const int raw = h264::point_filter_6tap(px[out], px[out + 1], px[out + 2],
                                            px[out + 3], px[out + 4], px[out + 5]);
    // Kernel stores the unclipped (raw+16)>>5; positive here, so comparable.
    EXPECT_EQ(core.load_byte(0x300 + out), static_cast<std::uint8_t>((raw + 16) >> 5));
  }
}

TEST(Emulation, EveryAtomTypeHasAKernelWithinCostBand) {
  // The atom library's sw_op_cycles model the prototype's hand-tuned trap
  // handlers (packed-word arithmetic where it pays, e.g. SAD); the reference
  // kernels here must land within a small factor.
  const auto report = emulation_report();
  EXPECT_EQ(report.size(), 13u);
  for (const auto& m : report) {
    const double ratio =
        static_cast<double>(m.measured_cycles) / static_cast<double>(m.table_cycles);
    EXPECT_GE(ratio, 0.5) << m.atom_type;
    EXPECT_LE(ratio, 2.2) << m.atom_type;
    EXPECT_GT(m.instructions, 0u);
  }
}

TEST(Emulation, Leon2TimingIsSlowerOrEqual) {
  const auto dlx = emulation_report(PipelineTiming::dlx());
  const auto leon = emulation_report(PipelineTiming::leon2());
  ASSERT_EQ(dlx.size(), leon.size());
  for (std::size_t i = 0; i < dlx.size(); ++i)
    EXPECT_GE(leon[i].measured_cycles, dlx[i].measured_cycles) << dlx[i].atom_type;
}

TEST(Emulation, UnknownAtomTypeThrows) {
  EXPECT_THROW(build_emulation_kernel("NoSuchAtom"), std::logic_error);
}

}  // namespace
}  // namespace rispp::cpu
