// Paper-shape calibration: asserts the qualitative results of the DATE'08
// evaluation hold in this reproduction (see DESIGN.md §4 for the bands).
//
// Uses a 16-frame CIF prefix of the 140-frame run to keep test time low; the
// bench binaries regenerate the full-length figures.
#include <gtest/gtest.h>

#include "baselines/molen.h"
#include "baselines/software_only.h"
#include "hw/bitstream.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp {
namespace {

class CalibrationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_ = new SpecialInstructionSet(h264sis::build_h264_si_set());
    h264::WorkloadConfig config;
    config.frames = kFrames;
    trace_ = new WorkloadTrace(h264::generate_h264_workload(*set_, config).trace);
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete set_;
  }

  static Cycles run_scheduler(const std::string& name, unsigned acs) {
    auto sched = make_scheduler(name);
    RtmConfig config;
    config.container_count = acs;
    config.scheduler = sched.get();
    RunTimeManager rtm(set_, 3, config);
    h264::seed_default_forecasts(*set_, rtm);
    return run_trace(*trace_, rtm).total_cycles;
  }

  static Cycles run_molen(unsigned acs) {
    MolenConfig config;
    config.container_count = acs;
    MolenBackend molen(set_, 3, config);
    h264::seed_default_forecasts(*set_, molen);
    return run_trace(*trace_, molen).total_cycles;
  }

  static constexpr int kFrames = 16;
  static SpecialInstructionSet* set_;
  static WorkloadTrace* trace_;
};

SpecialInstructionSet* CalibrationFixture::set_ = nullptr;
WorkloadTrace* CalibrationFixture::trace_ = nullptr;

TEST_F(CalibrationFixture, AverageAtomReconfigurationNearPaper) {
  BitstreamModel model;
  EXPECT_NEAR(model.average_reconfig_us(set_->library()), 874.03, 30.0);
}

TEST_F(CalibrationFixture, SoftwareOnlyScalesToPaperTotal) {
  // Paper: 0 ACs => 7,403M cycles for 140 frames => ~52.9M per frame.
  SoftwareOnlyBackend sw(set_);
  const Cycles total = run_trace(*trace_, sw).total_cycles;
  const double per_frame = static_cast<double>(total) / kFrames;
  EXPECT_GT(per_frame, 40e6);
  EXPECT_LT(per_frame, 65e6);
}

TEST_F(CalibrationFixture, AcceleratedTotalInPaperBand) {
  // Paper Figure 7: HEF at 24 ACs ~200M cycles for 140 frames (~1.4M/frame).
  const Cycles total = run_scheduler("HEF", 24);
  const double per_frame = static_cast<double>(total) / kFrames;
  EXPECT_GT(per_frame, 0.7e6);
  EXPECT_LT(per_frame, 2.5e6);
}

TEST_F(CalibrationFixture, HefNeverMeaningfullySlowerThanOtherSchedulers) {
  // Paper: "it never performed slower than Molen or any of the other
  // schedulers". On this short 16-frame prefix we assert dominance on
  // average and allow bounded per-point scheduling noise (the full-length
  // bench sweep is the tighter check).
  const std::vector<unsigned> budgets{6u, 9u, 12u, 15u, 18u, 21u, 24u};
  std::vector<double> hef;
  for (unsigned acs : budgets)
    hef.push_back(static_cast<double>(run_scheduler("HEF", acs)));
  for (const std::string name : {"ASF", "FSFR", "SJF"}) {
    double hef_sum = 0.0, other_sum = 0.0;
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      const double other = static_cast<double>(run_scheduler(name, budgets[i]));
      EXPECT_LE(hef[i], other * 1.08) << name << " @ " << budgets[i] << " ACs";
      hef_sum += hef[i];
      other_sum += other;
    }
    EXPECT_LE(hef_sum, other_sum) << "HEF worse than " << name << " on average";
  }
  for (std::size_t i = 0; i < budgets.size(); ++i)
    EXPECT_LE(hef[i], static_cast<double>(run_molen(budgets[i])) * 1.02)
        << "Molen @ " << budgets[i];
}

TEST_F(CalibrationFixture, HefVsMolenSpeedupGrowsIntoPaperBand) {
  // Paper Table 2: 1.09x at 5 ACs growing to 2.38x at 24 ACs.
  const double low = static_cast<double>(run_molen(6)) / run_scheduler("HEF", 6);
  const double high = static_cast<double>(run_molen(24)) / run_scheduler("HEF", 24);
  EXPECT_LT(low, 1.4);
  EXPECT_GT(high, 1.8);
  EXPECT_LT(high, 3.2);
  EXPECT_GT(high, low);
}

TEST_F(CalibrationFixture, FsfrDipsInTheMidRange) {
  // Paper Figure 7: FSFR degrades in the mid range ("especially FSFR fails
  // here, as it strictly upgrades one SI after the other").
  const Cycles fsfr = run_scheduler("FSFR", 14);
  const Cycles asf = run_scheduler("ASF", 14);
  EXPECT_GT(static_cast<double>(fsfr), static_cast<double>(asf) * 1.1);
}

TEST_F(CalibrationFixture, FsfrRecoversAtHighAcCounts) {
  // Paper: from 17 ACs on FSFR outperforms ASF. In our substrate FSFR's
  // mid-range dip is reproduced and its gap to ASF shrinks again at large
  // budgets; the full crossover only appears with the payback rule disabled
  // (see bench/ablation_payback and EXPERIMENTS.md).
  double worst_mid_gap = 0.0;
  for (unsigned acs : {12u, 14u, 16u}) {
    const double gap = static_cast<double>(run_scheduler("FSFR", acs)) /
                       static_cast<double>(run_scheduler("ASF", acs));
    worst_mid_gap = std::max(worst_mid_gap, gap);
  }
  const double high_gap = static_cast<double>(run_scheduler("FSFR", 24)) /
                          static_cast<double>(run_scheduler("ASF", 24));
  EXPECT_GT(worst_mid_gap, 1.10);     // the Figure 7 mid-range dip exists
  EXPECT_LT(high_gap, worst_mid_gap); // and closes at large budgets
}

TEST_F(CalibrationFixture, SchedulingIrrelevantAtTinyBudgets) {
  // Paper Table 2: HEF vs ASF = 1.00 at 5 ACs — with almost no hardware
  // there is nothing to order.
  const Cycles hef = run_scheduler("HEF", 5);
  const Cycles asf = run_scheduler("ASF", 5);
  EXPECT_NEAR(static_cast<double>(hef) / asf, 1.0, 0.01);
}

}  // namespace
}  // namespace rispp
