// MetricHistogram laws (bucket math, quantile error bound, merge algebra,
// concurrent-record determinism), the labeled-scope registration, the flight
// recorder's flush contract, and the hard guarantee that recording metrics —
// with the flight recorder running — never changes a simulated result.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "base/env.h"
#include "base/metrics.h"
#include "base/quantile.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp {
namespace {

namespace fs = std::filesystem;

/// Deterministic 64-bit mix (splitmix64) so the sample sets are identical
/// across runs and threads without touching the process PRNG.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// --- bucket math -----------------------------------------------------------

TEST(Histogram, BucketMathIsMonotonicWithTightBounds) {
  // Small values are exact: the bucket's upper bound is the value itself.
  for (std::uint64_t v = 0; v < 2 * MetricHistogram::kSubBuckets; ++v)
    EXPECT_EQ(MetricHistogram::bucket_upper_bound(MetricHistogram::bucket_index(v)), v);

  // Everywhere: the bound holds the value, never undershoots, and the
  // relative overshoot stays within one sub-bucket (1/32).
  std::uint64_t prev_index = 0;
  for (std::uint64_t v = 1; v < (1ull << 40); v = v * 21 / 13 + 1) {
    const std::size_t index = MetricHistogram::bucket_index(v);
    ASSERT_LT(index, MetricHistogram::kBucketCount);
    const std::uint64_t upper = MetricHistogram::bucket_upper_bound(index);
    EXPECT_GE(upper, v);
    EXPECT_LE(upper - v, v / MetricHistogram::kSubBuckets) << v;
    EXPECT_GE(index, prev_index) << "bucket index must be monotone in the value";
    prev_index = index;
  }
  // The extremes stay in range.
  EXPECT_LT(MetricHistogram::bucket_index(~0ull), MetricHistogram::kBucketCount);
}

TEST(Histogram, SnapshotTracksCountSumMinMax) {
  MetricHistogram hist;
  const std::vector<std::uint64_t> values = {7, 0, 1'000'000, 63, 64, 65, 12'345};
  std::uint64_t sum = 0;
  for (const std::uint64_t v : values) {
    hist.record(v);
    sum += v;
  }
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 1'000'000u);
  std::uint64_t bucket_total = 0;
  for (const auto& [upper, count] : snap.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, snap.count);
}

// --- quantile error bound --------------------------------------------------

TEST(Histogram, QuantileStaysWithinTheRelativeErrorBound) {
  MetricHistogram hist;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20'000; ++i) {
    // A heavy-tailed deterministic distribution spanning several octaves.
    const std::uint64_t v = mix64(i) % (1ull << (8 + i % 24));
    values.push_back(v);
    hist.record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snap = hist.snapshot();
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    const std::uint64_t exact = percentile_sorted(values, q);
    const std::uint64_t approx = snap.p(q);
    EXPECT_GE(approx, exact) << q;
    // Upper bound: the exact statistic's own bucket ceiling.
    EXPECT_LE(approx, exact + exact / MetricHistogram::kSubBuckets) << q;
  }
  // Degenerate quantiles clamp instead of walking off the ends.
  EXPECT_GE(snap.p(0.0), snap.min);
  EXPECT_LE(snap.p(1.0), snap.max);
}

TEST(Histogram, EmptySnapshotIsWellDefined) {
  MetricHistogram hist;
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.p(0.5), 0u);
  EXPECT_TRUE(snap.buckets.empty());
  EXPECT_EQ(snap.fraction_at_most(123), 1.0);
}

// --- merge algebra ---------------------------------------------------------

HistogramSnapshot filled(std::uint64_t seed, int n) {
  MetricHistogram hist;
  for (int i = 0; i < n; ++i) hist.record(mix64(seed * 1'000'003 + i) % 500'000);
  return hist.snapshot();
}

bool same_snapshot(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  return a.count == b.count && a.sum == b.sum && a.min == b.min && a.max == b.max &&
         a.buckets == b.buckets;
}

TEST(Histogram, MergeIsCommutativeAndAssociative) {
  const HistogramSnapshot a = filled(1, 900);
  const HistogramSnapshot b = filled(2, 1'100);
  const HistogramSnapshot c = filled(3, 500);

  HistogramSnapshot ab = a;
  ab.merge(b);
  HistogramSnapshot ba = b;
  ba.merge(a);
  EXPECT_TRUE(same_snapshot(ab, ba));

  HistogramSnapshot ab_c = ab;
  ab_c.merge(c);
  HistogramSnapshot bc = b;
  bc.merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(same_snapshot(ab_c, a_bc));

  // The identity: merging an empty snapshot changes nothing.
  HistogramSnapshot a_id = a;
  a_id.merge(HistogramSnapshot{});
  EXPECT_TRUE(same_snapshot(a_id, a));
  HistogramSnapshot id_a;
  id_a.merge(a);
  EXPECT_TRUE(same_snapshot(id_a, a));
}

// --- concurrent recording --------------------------------------------------

TEST(Histogram, ConcurrentRecordingMatchesSequential) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;

  MetricHistogram sequential;
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i)
      sequential.record(mix64(t * 100'000 + i) % 1'000'000);

  MetricHistogram concurrent;
  std::atomic<int> go{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, &go, t] {
      go.fetch_add(1);
      while (go.load() < kThreads) {
      }
      for (int i = 0; i < kPerThread; ++i)
        concurrent.record(mix64(t * 100'000 + i) % 1'000'000);
    });
  }
  for (auto& t : threads) t.join();

  // Same multiset in, same merged snapshot out — shard striping must not
  // lose or double-count a sample regardless of the thread interleaving.
  EXPECT_TRUE(same_snapshot(sequential.snapshot(), concurrent.snapshot()));
}

// --- labeled scopes --------------------------------------------------------

TEST(Histogram, LabeledScopeRegistersOneCanonicalSeries) {
  MetricHistogram& a = metric_histogram("test.hist.labeled", {"tenant", 3});
  MetricHistogram& b = metric_histogram("test.hist.labeled", {"tenant", 3});
  // The same (name, label) pair resolves to one registration; spelling the
  // canonical form out by hand is rejected — the labeled overload is the
  // only way to mint a series, so collisions cannot happen by concatenation.
  EXPECT_EQ(&a, &b);
  EXPECT_THROW((void)metric_histogram("test.hist.labeled{tenant=3}"), std::logic_error);
  MetricHistogram& other = metric_histogram("test.hist.labeled", {"tenant", 4});
  EXPECT_NE(&a, &other);

  a.record(42);
  bool found = false;
  for (const auto& [name, snap] : metrics_histogram_snapshot())
    if (name == "test.hist.labeled{tenant=3}") {
      found = true;
      EXPECT_GE(snap.count, 1u);
    }
  EXPECT_TRUE(found);
}

TEST(Histogram, MalformedNamesAndLabelsAreRejected) {
  // '{', '}', '=' and '"' would break the canonical "<name>{<key>=<value>}"
  // form (and the JSON snapshot), so registration throws on them.
  EXPECT_THROW((void)metric_histogram("bad{name"), std::logic_error);
  EXPECT_THROW((void)metric_histogram("test.hist.ok", {"te=nant", 1}), std::logic_error);
  EXPECT_THROW((void)metric_histogram("test.hist.ok", {"", 1}), std::logic_error);
}

// --- snapshot JSON ---------------------------------------------------------

TEST(Histogram, SnapshotJsonCarriesHistogramsAndValidates) {
  metric_histogram("test.hist.json", {"tenant", 7}).record(1234);
  metric_histogram("test.hist.json", {"tenant", 7}).record(88);
  const std::string json = metrics_snapshot_json();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("test.hist.json{tenant=7}"), std::string::npos);

  std::istringstream in(json);
  const auto problem = validate_metrics_json(in);
  EXPECT_FALSE(problem.has_value()) << *problem;
}

// --- flight recorder -------------------------------------------------------

TEST(FlightRecorder, RingFlushesOnStopAndValidates) {
  const fs::path ring_path =
      fs::path(::testing::TempDir()) / "rispp_flight_ring.json";
  fs::remove(ring_path);

  FlightRecorderOptions options;
  options.interval_ms = 1;
  options.ring_path = ring_path.string();
  options.ring_capacity = 8;
  start_flight_recorder(options);
  metric_counter("test.flight.ticks").add(5);
  metric_histogram("test.flight.lat").record(999);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop_flight_recorder();

  std::ifstream in(ring_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << ring_path;
  const auto problem = validate_metrics_json(in);
  EXPECT_FALSE(problem.has_value()) << *problem;

  std::ifstream reread(ring_path, std::ios::binary);
  std::ostringstream buffer;
  buffer << reread.rdbuf();
  const std::string text = buffer.str();
  // The final window (taken at stop) must see both series.
  EXPECT_NE(text.find("\"windows\""), std::string::npos);
  EXPECT_NE(text.find("test.flight.ticks"), std::string::npos);
  EXPECT_NE(text.find("test.flight.lat"), std::string::npos);
  fs::remove(ring_path);

  // Stop with no recorder running stays a no-op.
  stop_flight_recorder();
}

TEST(FlightRecorder, RecorderNeverChangesSimulationResults) {
  const auto set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad, satd}, 8}};
  HotSpotInstance inst;
  inst.hot_spot = 0;
  inst.entry_overhead = 1000;
  for (int i = 0; i < 12'000; ++i) inst.executions.push_back(i % 8 == 7 ? satd : sad);
  trace.instances.push_back(std::move(inst));
  trace.build_runs();

  const auto run_once = [&]() {
    auto sched = make_scheduler("HEF");
    RtmConfig config;
    config.container_count = 14;
    config.scheduler = sched.get();
    RunTimeManager rtm(&set, 3, config);
    h264::seed_default_forecasts(set, rtm);
    return run_trace(trace, rtm);
  };
  const SimResult off = run_once();

  FlightRecorderOptions options;
  options.interval_ms = 1;  // sample as aggressively as the knob allows
  start_flight_recorder(options);
  const SimResult on = run_once();
  stop_flight_recorder();

  EXPECT_EQ(on.total_cycles, off.total_cycles);
  EXPECT_EQ(on.si_executions, off.si_executions);
  EXPECT_EQ(on.atom_loads, off.atom_loads);
  EXPECT_EQ(on.hot_spot_cycles, off.hot_spot_cycles);
}

TEST(FlightRecorderDeathTest, GarbageIntervalExitsLoudly) {
  ::setenv("RISPP_METRICS_INTERVAL_MS", "fast", 1);
  EXPECT_EXIT(init_flight_recorder_from_env(), ::testing::ExitedWithCode(kEnvParseExitCode),
              "RISPP_METRICS_INTERVAL_MS");
  ::setenv("RISPP_METRICS_INTERVAL_MS", "-3", 1);
  EXPECT_EXIT(init_flight_recorder_from_env(), ::testing::ExitedWithCode(kEnvParseExitCode),
              "RISPP_METRICS_INTERVAL_MS");
  ::unsetenv("RISPP_METRICS_INTERVAL_MS");
}

// --- the shared percentile path --------------------------------------------

TEST(Histogram, RecordAndPercentilesKeepsExactValuesBitExact) {
  // kExact must reproduce the historical sort-based report values exactly
  // (same index rule), while the whole distribution lands in the histogram.
  std::vector<double> values;
  for (int i = 0; i < 1'000; ++i)
    values.push_back(static_cast<double>(mix64(i) % 100'000) / 7.0);

  std::vector<double> reference = values;
  std::sort(reference.begin(), reference.end());
  const double want_p50 = reference[values.size() / 2];
  const double want_p99 = reference[static_cast<std::size_t>(0.99 * values.size())];

  MetricHistogram& hist = metric_histogram("test.hist.record_pcts");
  std::vector<double> exact_in = values;
  const PercentilePair<double> exact =
      record_and_percentiles(exact_in, hist, 1000.0, QuantileMode::kExact);
  EXPECT_EQ(exact.p50, want_p50);
  EXPECT_EQ(exact.p99, want_p99);
  EXPECT_GE(hist.snapshot().count, values.size());

  // kSketch answers from the histogram: bounded above by the bucket width.
  std::vector<double> sketch_in = values;
  MetricHistogram& sketch_hist = metric_histogram("test.hist.record_pcts_sketch");
  const PercentilePair<double> sketch =
      record_and_percentiles(sketch_in, sketch_hist, 1000.0, QuantileMode::kSketch);
  // llround at record time can shave up to half a unit (0.0005 here).
  EXPECT_GE(sketch.p50, want_p50 - 1e-3);
  EXPECT_LE(sketch.p50, want_p50 * (1.0 + 1.0 / MetricHistogram::kSubBuckets) + 1e-3);
  EXPECT_GE(sketch.p99, want_p99 - 1e-3);
  EXPECT_LE(sketch.p99, want_p99 * (1.0 + 1.0 / MetricHistogram::kSubBuckets) + 1e-3);
}

}  // namespace
}  // namespace rispp
