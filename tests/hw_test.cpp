// Tests for the hardware models: Atom Containers, bitstream/reconfiguration
// timing, the single reconfiguration port and eviction.
#include <gtest/gtest.h>

#include "hw/atom_container.h"
#include "hw/bitstream.h"
#include "hw/eviction.h"
#include "hw/reconfig_port.h"
#include "isa/h264_si_library.h"

namespace rispp {
namespace {

TEST(Bitstream, AverageReconfigurationMatchesPaper) {
  // §5: 874.03 us average atom reconfiguration via 66 MB/s SelectMap/ICAP.
  const auto set = h264sis::build_h264_si_set();
  BitstreamModel model;
  const double avg_us = model.average_reconfig_us(set.library());
  EXPECT_GT(avg_us, 850.0);
  EXPECT_LT(avg_us, 900.0);
}

TEST(Bitstream, ReconfigCyclesScaleWithSlices) {
  BitstreamModel model;
  AtomType small{"s", 1, 1, 200};
  AtomType large{"l", 1, 1, 600};
  EXPECT_LT(model.reconfig_cycles(small), model.reconfig_cycles(large));
  EXPECT_GE(model.reconfig_cycles(small), model.setup_cycles);
}

TEST(ContainerFile, LoadLifecycle) {
  ContainerFile file(3, 4);
  EXPECT_EQ(file.ready_atoms().determinant(), 0u);
  ASSERT_TRUE(file.find_empty().has_value());

  file.begin_load(0, 2);
  EXPECT_EQ(file.container(0).state, ContainerState::kLoading);
  EXPECT_EQ(file.ready_atoms()[2], 0);
  file.complete_load(0);
  EXPECT_EQ(file.container(0).state, ContainerState::kReady);
  EXPECT_EQ(file.ready_atoms()[2], 1);
  EXPECT_EQ(file.ready_of_type(2).size(), 1u);
}

TEST(ContainerFile, OverwritingReadyAtomRemovesItImmediately) {
  ContainerFile file(1, 4);
  file.begin_load(0, 1);
  file.complete_load(0);
  ASSERT_EQ(file.ready_atoms()[1], 1);
  file.begin_load(0, 3);  // reconfigure over the old atom
  EXPECT_EQ(file.ready_atoms()[1], 0);
  EXPECT_EQ(file.ready_atoms()[3], 0);  // not ready yet
  file.complete_load(0);
  EXPECT_EQ(file.ready_atoms()[3], 1);
}

TEST(ContainerFile, DoubleLoadOnSameContainerRejected) {
  ContainerFile file(2, 2);
  file.begin_load(0, 0);
  EXPECT_THROW(file.begin_load(0, 1), std::logic_error);
  EXPECT_THROW(file.complete_load(1), std::logic_error);
}

TEST(ReconfigPort, SingleChannelTiming) {
  const auto set = h264sis::build_h264_si_set();
  BitstreamModel model;
  ReconfigPort port(&set.library(), model);
  EXPECT_FALSE(port.busy());
  const Cycles done = port.start(0, 0, 1000);
  EXPECT_EQ(done, 1000 + port.load_cycles(0));
  EXPECT_TRUE(port.busy());
  EXPECT_THROW(port.start(1, 1, 1500), std::logic_error);    // single channel
  EXPECT_THROW(port.retire(done - 1), std::logic_error);     // not finished
  const auto load = port.retire(done);
  EXPECT_EQ(load.type, 0);
  EXPECT_FALSE(port.busy());
  EXPECT_EQ(port.completed_loads(), 1u);
}

TEST(Eviction, PrefersEmptyContainers) {
  ContainerFile file(2, 3);
  file.begin_load(0, 1);
  file.complete_load(0);
  const std::vector<Cycles> lru(3, 0);
  const Molecule demand{0, 0, 1};
  const auto victim = pick_victim(file, demand, Molecule(3), lru);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1);  // the empty one, not the ready atom
}

TEST(Eviction, PinsDemandedAtoms) {
  ContainerFile file(2, 3);
  file.begin_load(0, 1);
  file.complete_load(0);
  file.begin_load(1, 2);
  file.complete_load(1);
  const std::vector<Cycles> lru(3, 0);
  // Both atoms demanded: nothing evictable.
  EXPECT_FALSE(pick_victim(file, Molecule{0, 1, 1}, Molecule(3), lru).has_value());
  // Type 2 not demanded: its container is the victim.
  const auto victim = pick_victim(file, Molecule{0, 1, 0}, Molecule(3), lru);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(file.container(*victim).type, 2);
}

TEST(Eviction, EvictsOverProvisionedTypeByLru) {
  ContainerFile file(3, 2);
  for (ContainerId id = 0; id < 3; ++id) {
    file.begin_load(id, 0);
    file.complete_load(id);
  }
  // Demand wants only one type-0 atom; two are superfluous.
  std::vector<Cycles> lru{50, 0};
  const auto victim = pick_victim(file, Molecule{1, 0}, Molecule(2), lru);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(file.container(*victim).type, 0);
}

TEST(Eviction, UnneededTypeBeatsRecentlyUsedNeeded) {
  ContainerFile file(2, 2);
  file.begin_load(0, 0);
  file.complete_load(0);
  file.begin_load(1, 1);
  file.complete_load(1);
  // Demand: one of type 0 (so a second type-0 would be over-provisioned);
  // type 1 not demanded at all -> container 1 is the victim even though its
  // type was used more recently.
  std::vector<Cycles> lru{0, 100};
  const auto victim = pick_victim(file, Molecule{1, 2}, Molecule(2), lru);
  ASSERT_FALSE(victim.has_value());  // both pinned: type1 demand=2 > ready
  const auto victim2 = pick_victim(file, Molecule{1, 0}, Molecule(2), lru);
  ASSERT_TRUE(victim2.has_value());
  EXPECT_EQ(*victim2, 1);
}

TEST(Eviction, LoadingContainersAreNeverVictims) {
  ContainerFile file(1, 2);
  file.begin_load(0, 0);
  const std::vector<Cycles> lru(2, 0);
  EXPECT_FALSE(pick_victim(file, Molecule{0, 0}, Molecule(2), lru).has_value());
}

TEST(Eviction, SoftDemandProtectsOtherHotSpotsAtoms) {
  // Two ready atoms, neither hard-demanded; type 1 is soft-demanded (another
  // hot spot's selection wants it resident) -> type 0 is the victim even
  // though type 1 is the least recently used.
  ContainerFile file(2, 2);
  file.begin_load(0, 0);
  file.complete_load(0);
  file.begin_load(1, 1);
  file.complete_load(1);
  std::vector<Cycles> lru{100, 0};
  const auto victim = pick_victim(file, Molecule(2), Molecule{0, 1}, lru);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(file.container(*victim).type, 0);
  // Soft demand never blocks progress: with everything soft-pinned the LRU
  // type still gets evicted.
  const auto victim2 = pick_victim(file, Molecule(2), Molecule{1, 1}, lru);
  ASSERT_TRUE(victim2.has_value());
  EXPECT_EQ(file.container(*victim2).type, 1);  // LRU among soft-pinned
}

}  // namespace
}  // namespace rispp
