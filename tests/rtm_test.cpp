// Integration tests of the Run-Time Manager: gradual upgrading, trap
// fallback, reconfiguration interleaving, eviction across hot spots, and
// the Molen baseline contrast.
#include <gtest/gtest.h>

#include <stdexcept>

#include "baselines/molen.h"
#include "baselines/software_only.h"
#include "baselines/static_asip.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/hef.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp {
namespace {

/// A long single-hot-spot trace over SAD+SATD (an ME instance).
WorkloadTrace me_trace(const SpecialInstructionSet& set, int executions) {
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad, satd}, 8}};
  HotSpotInstance inst;
  inst.hot_spot = 0;
  inst.entry_overhead = 1000;
  for (int i = 0; i < executions; ++i)
    inst.executions.push_back(i % 8 == 7 ? satd : sad);
  trace.instances.push_back(std::move(inst));
  return trace;
}

RtmConfig config_with(const AtomScheduler* scheduler, unsigned acs) {
  RtmConfig config;
  config.container_count = acs;
  config.scheduler = scheduler;
  return config;
}

TEST(RunTimeManager, StartsInSoftwareAndUpgrades) {
  const auto set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  HefScheduler hef;
  RunTimeManager rtm(&set, 1, config_with(&hef, 12));
  rtm.seed_forecast(0, sad, 10'000);
  rtm.seed_forecast(0, set.find("SATD").value(), 1'500);

  const WorkloadTrace trace = me_trace(set, 4'000);
  SimStats stats(set.si_count());
  const SimResult result = run_trace(trace, rtm, &stats);

  // The latency timeline of SAD must start at the trap latency and descend.
  const auto& tl = stats.latency_timeline(sad);
  ASSERT_GE(tl.size(), 2u);
  EXPECT_EQ(tl.front().latency, set.si(sad).software_latency);
  for (std::size_t i = 1; i < tl.size(); ++i) EXPECT_LT(tl[i].latency, tl[i - 1].latency);
  EXPECT_LT(tl.back().latency, 40u);
  EXPECT_GT(result.atom_loads, 0u);
}

TEST(RunTimeManager, GradualUpgradeBeatsNoUpgradeBaseline) {
  // The Figure 2 claim: with stepwise upgrades the hot spot finishes earlier
  // than with single-implementation (Molen-like) SIs.
  const auto set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = me_trace(set, 12'000);

  HefScheduler hef;
  RunTimeManager rtm(&set, 3, config_with(&hef, 14));
  h264::seed_default_forecasts(set, rtm);
  const SimResult upgraded = run_trace(trace, rtm);

  MolenConfig mc;
  mc.container_count = 14;
  MolenBackend molen(&set, 3, mc);
  h264::seed_default_forecasts(set, molen);
  const SimResult fixed = run_trace(trace, molen);

  EXPECT_LT(upgraded.total_cycles, fixed.total_cycles);
}

TEST(RunTimeManager, ZeroContainersBehavesLikeSoftware) {
  const auto set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = me_trace(set, 500);
  HefScheduler hef;
  RunTimeManager rtm(&set, 3, config_with(&hef, 0));
  h264::seed_default_forecasts(set, rtm);
  SoftwareOnlyBackend sw(&set);
  EXPECT_EQ(run_trace(trace, rtm).total_cycles, run_trace(trace, sw).total_cycles);
}

TEST(RunTimeManager, MoreContainersNeverSlower) {
  const auto set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = me_trace(set, 8'000);
  Cycles prev = kMaxCycles;
  for (unsigned acs : {4u, 8u, 12u, 17u}) {
    HefScheduler hef;
    RunTimeManager rtm(&set, 3, config_with(&hef, acs));
    h264::seed_default_forecasts(set, rtm);
    const Cycles t = run_trace(trace, rtm).total_cycles;
    EXPECT_LE(t, prev) << acs;
    prev = t;
  }
}

TEST(RunTimeManager, WarmStartSkipsReloadingResidentAtoms) {
  const auto set = h264sis::build_h264_si_set();
  WorkloadTrace trace = me_trace(set, 6'000);
  // Append a second identical ME instance: its schedule should need almost
  // no additional loads.
  trace.instances.push_back(trace.instances.front());
  HefScheduler hef;
  RunTimeManager rtm(&set, 3, config_with(&hef, 17));
  h264::seed_default_forecasts(set, rtm);
  SimStats stats(set.si_count());
  (void)run_trace(trace, rtm, &stats);
  // Second instance runs at full speed immediately: the latency timeline has
  // no regression back to software.
  const SiId sad = set.find("SAD").value();
  const auto& tl = stats.latency_timeline(sad);
  for (std::size_t i = 1; i < tl.size(); ++i)
    EXPECT_LE(tl[i].latency, tl[i - 1].latency);
}

TEST(RunTimeManager, EvictionRepurposesContainersAcrossHotSpots) {
  const auto set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  const SiId dct = set.find("(I)DCT").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad}, 8}, HotSpotInfo{"EE", {dct}, 8}};
  // Alternate hot spots; 4 containers force eviction at each switch.
  for (int rep = 0; rep < 4; ++rep) {
    trace.instances.push_back(HotSpotInstance{0, std::vector<SiId>(3000, sad), 1000});
    trace.instances.push_back(HotSpotInstance{1, std::vector<SiId>(3000, dct), 1000});
  }
  HefScheduler hef;
  RunTimeManager rtm(&set, 2, config_with(&hef, 4));
  rtm.seed_forecast(0, sad, 3000);
  rtm.seed_forecast(1, dct, 3000);
  const SimResult r = run_trace(trace, rtm);
  // Each switch reloads: far more loads than the 4 containers.
  EXPECT_GT(r.atom_loads, 12u);
  // Fewer cycles than software-only nevertheless.
  SoftwareOnlyBackend sw(&set);
  EXPECT_LT(r.total_cycles, run_trace(trace, sw).total_cycles);
}

TEST(RunTimeManager, MonitoringAdaptsForecastsAcrossInstances) {
  const auto set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  WorkloadTrace trace = me_trace(set, 2'000);
  trace.instances.push_back(trace.instances.front());
  HefScheduler hef;
  RunTimeManager rtm(&set, 1, config_with(&hef, 10));
  rtm.seed_forecast(0, sad, 1);  // wildly wrong seed
  (void)run_trace(trace, rtm);
  // After two instances the forecast reflects the measured ~1750 SADs.
  EXPECT_GT(rtm.monitor().forecast(0)[sad], 1'000u);
}

TEST(RunTimeManager, PrefetchStartsNextHotSpotsAtomsEarly) {
  // Alternating ME/EE style hot spots with spare containers: with prefetch
  // the port keeps working between hot spots, so entries find more atoms
  // resident and the run is never slower.
  const auto set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  const SiId dct = set.find("(I)DCT").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad}, 8}, HotSpotInfo{"EE", {dct}, 8}};
  for (int rep = 0; rep < 6; ++rep) {
    trace.instances.push_back(HotSpotInstance{0, std::vector<SiId>(20'000, sad), 1000});
    trace.instances.push_back(HotSpotInstance{1, std::vector<SiId>(6'000, dct), 1000});
  }
  Cycles cycles[2];
  for (int pf = 0; pf < 2; ++pf) {
    HefScheduler hef;
    RtmConfig config = config_with(&hef, 14);
    config.enable_prefetch = pf == 1;
    RunTimeManager rtm(&set, 2, config);
    rtm.seed_forecast(0, sad, 20'000);
    rtm.seed_forecast(1, dct, 6'000);
    cycles[pf] = run_trace(trace, rtm).total_cycles;
  }
  EXPECT_LE(cycles[1], cycles[0]);
}

TEST(RunTimeManager, PrefetchForecastSourceFollowsForecastMode) {
  // compute_prefetch picks the forecast that predicts the successor hot spot
  // per ForecastMode: the seeds under kStaticSeeds, the monitor under
  // kMonitored — and under kOracle too, deliberately: the oracle only knows
  // the *current* instance's exact counts, so oracle prefetch falls back to
  // the monitored forecast. This pins the once-silent ternary fall-through
  // as documented behavior. Observable: every prefetch decision is one extra
  // decide() call in the decision-cache counters.
  const auto set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  const SiId dct = set.find("(I)DCT").value();
  // The EE hot spot is deliberately id 0: the successor table defaults to 0,
  // so the only non-self successor prediction in this trace is "after ME
  // comes EE", observed at instance 1 and acted on during instance 2. That
  // makes instance 2 the single prefetch opportunity — one decide() call,
  // cleanly attributable.
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"EE", {dct}, 8}, HotSpotInfo{"ME", {sad}, 8}};
  trace.instances.push_back(HotSpotInstance{1, std::vector<SiId>(8'000, sad), 1000});
  trace.instances.push_back(HotSpotInstance{0, std::vector<SiId>(3'000, dct), 1000});
  // Long enough for the port to drain and prefetch for the predicted
  // successor (EE).
  trace.instances.push_back(HotSpotInstance{1, std::vector<SiId>(20'000, sad), 1000});

  const auto decisions_with = [&](ForecastMode mode, bool prefetch) {
    HefScheduler hef;
    RtmConfig config = config_with(&hef, 14);
    config.enable_prefetch = prefetch;
    config.forecast_mode = mode;
    RunTimeManager rtm(&set, 2, config);
    rtm.seed_forecast(1, sad, 8'000);
    // EE is deliberately NOT seeded: a prefetch that consults the seeds
    // sees an all-zero forecast for it and decides nothing, while one
    // consulting the monitor sees the ~3000 DCTs measured at instance 1.
    (void)run_trace(trace, rtm);
    return rtm.decision_cache_hits() + rtm.decision_cache_misses();
  };

  // Without prefetch: exactly one decision per hot-spot entry, every mode.
  for (const ForecastMode mode :
       {ForecastMode::kMonitored, ForecastMode::kStaticSeeds, ForecastMode::kOracle})
    ASSERT_EQ(decisions_with(mode, false), 3u);

  // With prefetch: instance 2 prefetches for EE only when the mode's
  // forecast source knows about it — the monitor does, the seeds do not.
  EXPECT_EQ(decisions_with(ForecastMode::kMonitored, true), 4u);
  EXPECT_EQ(decisions_with(ForecastMode::kOracle, true), 4u)
      << "oracle prefetch must fall back to the monitored forecast";
  EXPECT_EQ(decisions_with(ForecastMode::kStaticSeeds, true), 3u)
      << "static-seeds prefetch must consult the seeds, not the monitor";
}

TEST(RunTimeManager, DecisionCacheEvictsLeastRecentlyUsed) {
  // Three hot spots with distinct SI lists are three distinct cache keys;
  // capacity 2 forces eviction on every third distinct entry. `now` stays 0
  // so the port never retires a load and the ready-atom part of the key is
  // fixed; static seeds fix the forecast part.
  const auto set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  const SiId dct = set.find("(I)DCT").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"A", {sad}, 8}, HotSpotInfo{"B", {satd}, 8},
                     HotSpotInfo{"C", {dct}, 8}};
  trace.instances = {HotSpotInstance{0, {}, 0}, HotSpotInstance{1, {}, 0},
                     HotSpotInstance{2, {}, 0}};

  HefScheduler hef;
  RtmConfig config = config_with(&hef, 14);
  config.forecast_mode = ForecastMode::kStaticSeeds;
  config.decision_cache_capacity = 2;
  RunTimeManager rtm(&set, 3, config);
  rtm.seed_forecast(0, sad, 10'000);
  rtm.seed_forecast(1, satd, 10'000);
  rtm.seed_forecast(2, dct, 10'000);

  const auto enter = [&](std::size_t instance) {
    rtm.on_hot_spot_entry(trace, instance, 0);
    rtm.on_hot_spot_exit(0);
  };

  enter(0);  // A: miss, cache [A]
  enter(1);  // B: miss, cache [B, A]
  EXPECT_EQ(rtm.decision_cache_misses(), 2u);
  EXPECT_EQ(rtm.decision_cache_evictions(), 0u);

  enter(0);  // A: hit — and A becomes most recent, cache [A, B]
  EXPECT_EQ(rtm.decision_cache_hits(), 1u);

  enter(2);  // C: miss past capacity — evicts B (the LRU), not A
  EXPECT_EQ(rtm.decision_cache_evictions(), 1u);
  EXPECT_EQ(rtm.decision_cache_size(), 2u);

  enter(0);  // A: still a hit — proves the recency splice protected it
  EXPECT_EQ(rtm.decision_cache_hits(), 2u);

  enter(1);  // B: miss again — proves B was the one evicted; evicts C
  EXPECT_EQ(rtm.decision_cache_misses(), 4u);
  EXPECT_EQ(rtm.decision_cache_evictions(), 2u);

  enter(2);  // C: miss (evicted above); evicts A
  EXPECT_EQ(rtm.decision_cache_misses(), 5u);
  EXPECT_EQ(rtm.decision_cache_evictions(), 3u);
  EXPECT_EQ(rtm.decision_cache_size(), 2u);
  EXPECT_EQ(rtm.decision_cache_hits(), 2u);
}

TEST(RunTimeManager, TinyDecisionCacheStaysBitExact) {
  // Eviction-heavy configuration vs unlimited cache vs no cache: the full
  // simulated run must be identical — a miss recomputes, never approximates.
  const auto set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = me_trace(set, 6'000);
  const auto total = [&](bool enable, std::size_t capacity) {
    HefScheduler hef;
    RtmConfig config = config_with(&hef, 14);
    config.enable_decision_cache = enable;
    config.decision_cache_capacity = capacity;
    RunTimeManager rtm(&set, 3, config);
    h264::seed_default_forecasts(set, rtm);
    return run_trace(trace, rtm).total_cycles;
  };
  const Cycles reference = total(false, 4096);
  EXPECT_EQ(total(true, 1), reference);
  EXPECT_EQ(total(true, 4096), reference);
}

TEST(Molen, NoIntermediateAcceleration) {
  // Until the full selected molecule is loaded, Molen runs in software even
  // though a subset of its atoms is configured.
  const auto set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = me_trace(set, 10'000);
  MolenConfig mc;
  mc.container_count = 17;
  MolenBackend molen(&set, 3, mc);
  h264::seed_default_forecasts(set, molen);
  SimStats stats(set.si_count());
  (void)run_trace(trace, molen, &stats);
  const SiId sad = set.find("SAD").value();
  const auto& tl = stats.latency_timeline(sad);
  // Exactly one downward step: software -> selected molecule.
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl[0].latency, set.si(sad).software_latency);
  const SiId satd = set.find("SATD").value();
  const auto& tl2 = stats.latency_timeline(satd);
  ASSERT_LE(tl2.size(), 2u);  // same: one step at most
}

TEST(StaticAsip, IsTheLowerBound) {
  const auto set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = me_trace(set, 5'000);
  StaticAsipBackend asip(&set);
  const Cycles bound = run_trace(trace, asip).total_cycles;
  for (const auto& name : scheduler_names()) {
    auto sched = make_scheduler(name);
    RunTimeManager rtm(&set, 3, config_with(sched.get(), 24));
    h264::seed_default_forecasts(set, rtm);
    EXPECT_GE(run_trace(trace, rtm).total_cycles, bound) << name;
  }
  // And the paper's Figure 1 overhead remark: dedicated hardware for all SIs
  // far exceeds any AC budget evaluated.
  EXPECT_GT(asip.dedicated_atoms(), 24u * 2);
}

TEST(RunTimeManager, ReseedingForecastIsAHardError) {
  // seed_forecast installs a design-time profile: one value per (hot spot,
  // SI) pair. A second seed for the same pair used to silently overwrite the
  // first — a misconfiguration that produced wrong numbers downstream.
  const auto set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  HefScheduler hef;
  RunTimeManager rtm(&set, 1, config_with(&hef, 8));
  rtm.seed_forecast(0, sad, 10'000);
  EXPECT_THROW(rtm.seed_forecast(0, sad, 20'000), std::logic_error);
  // A different pair is still fine.
  EXPECT_NO_THROW(rtm.seed_forecast(0, set.find("SATD").value(), 1'500));
}

TEST(RunTimeManager, SeedingAfterFirstHotSpotIsAHardError) {
  // Once the workload runs, the monitor owns the forecast; a late seed would
  // silently lose to the next adapted update instead of taking effect.
  const auto set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  HefScheduler hef;
  RunTimeManager rtm(&set, 1, config_with(&hef, 8));
  rtm.seed_forecast(0, sad, 10'000);
  run_trace(me_trace(set, 100), rtm);
  EXPECT_THROW(rtm.seed_forecast(0, set.find("SATD").value(), 1'500), std::logic_error);
}

}  // namespace
}  // namespace rispp
