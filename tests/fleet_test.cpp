// Fleet-mode equivalence and the fleet subsystem's unit contracts.
//
// The load-bearing test is FleetMatchesSoloRuns: a randomized heterogeneous
// session mix (content, length, scheduler, AC budget), replayed through the
// batched fleet::SessionBatch core, must produce every per-session result
// and statistic *byte-identical* to the same session run alone through
// sim::run_trace on a fresh backend — across schedulers, thread counts,
// block sizes and shared-decision-cache on/off. SoA batching, cohort
// stepping, work stealing and cross-session memoization may only change
// wall-clock, never a simulated number.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/env.h"
#include "base/parallel.h"
#include "base/prng.h"
#include "fleet/session_batch.h"
#include "fleet/shared_decision_cache.h"
#include "fleet/spec.h"
#include "fleet/trace_repository.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp::fleet {
namespace {

// Private repository per fixture: tests must not depend on what other tests
// already generated into the global one (hit/miss counts stay predictable).
SessionSpec small_session(Content content, int frames, const std::string& scheduler,
                          unsigned acs) {
  SessionSpec spec;
  spec.content = content;
  spec.frames = frames;
  spec.width = content == Content::kH264 ? 96 : 128;
  spec.height = content == Content::kH264 ? 64 : 96;
  spec.scheduler = scheduler;
  spec.container_count = acs;
  return spec;
}

/// The single-session reference path: a fresh RTM over the cohort's shared
/// trace, seeded exactly as the batch seeds it.
SimResult solo_run(const TraceEntry& entry, const SessionSpec& spec, SimStats* stats) {
  const auto scheduler = make_scheduler(spec.scheduler);
  RtmConfig config;
  config.container_count = spec.container_count;
  config.scheduler = scheduler.get();
  config.forecast_mode = spec.forecast_mode;
  RunTimeManager rtm(&entry.set, entry.trace.hot_spots.size(), config);
  for (HotSpotId hs = 0; hs < entry.seeds.size(); ++hs)
    for (SiId si = 0; si < entry.seeds[hs].size(); ++si)
      if (entry.seeds[hs][si] != 0) rtm.seed_forecast(hs, si, entry.seeds[hs][si]);
  return run_trace(entry.trace, rtm, stats);
}

void expect_stats_equal(const SimStats& solo, const SimStats& fleet, std::size_t si_count,
                        std::size_t session) {
  ASSERT_EQ(solo.bucket_count(), fleet.bucket_count()) << "session " << session;
  for (SiId si = 0; si < si_count; ++si) {
    EXPECT_EQ(solo.executions(si), fleet.executions(si))
        << "session " << session << " si " << si;
    for (std::size_t b = 0; b < solo.bucket_count(); ++b)
      ASSERT_EQ(solo.bucket_executions(si, b), fleet.bucket_executions(si, b))
          << "session " << session << " si " << si << " bucket " << b;
    const auto& st = solo.latency_timeline(si);
    const auto& ft = fleet.latency_timeline(si);
    ASSERT_EQ(st.size(), ft.size()) << "session " << session << " si " << si;
    for (std::size_t p = 0; p < st.size(); ++p) {
      EXPECT_EQ(st[p].at, ft[p].at) << "session " << session << " si " << si;
      EXPECT_EQ(st[p].latency, ft[p].latency) << "session " << session << " si " << si;
    }
  }
}

/// Randomized heterogeneous mix, compared session by session to solo runs.
void check_fleet_against_solo(std::uint64_t seed, unsigned threads, unsigned block_size,
                              bool share_cache, bool collect_stats) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " threads " + std::to_string(threads) +
               " block " + std::to_string(block_size) +
               (share_cache ? " shared-cache" : " private-cache") +
               (collect_stats ? " stats" : " span"));
  const std::vector<std::string> schedulers = scheduler_names();
  Xoshiro256 prng(seed);
  std::vector<SessionSpec> specs;
  for (int s = 0; s < 24; ++s) {
    const Content content = prng.bounded(3) != 0 ? Content::kH264 : Content::kJpeg;
    specs.push_back(small_session(content, static_cast<int>(prng.range(1, 3)),
                                  schedulers[prng.bounded(schedulers.size())],
                                  static_cast<unsigned>(prng.range(4, 12))));
  }

  TraceRepository repo;
  SharedDecisionCache cache(1 << 12, 4);
  ThreadPool pool(threads);
  FleetOptions options;
  options.traces = &repo;
  options.pool = &pool;
  options.block_size = block_size;
  options.share_decision_cache = share_cache;
  options.shared_cache = share_cache ? &cache : nullptr;
  options.collect_stats = collect_stats;

  SessionBatch batch(specs, options);
  batch.run();

  for (std::size_t s = 0; s < specs.size(); ++s) {
    const TraceEntry& entry = repo.get(specs[s]);
    SimStats solo_stats(entry.set.si_count());
    const SimResult solo = solo_run(entry, specs[s], collect_stats ? &solo_stats : nullptr);
    const SimResult fleet_result = batch.result(s);
    EXPECT_EQ(solo.total_cycles, fleet_result.total_cycles) << "session " << s;
    EXPECT_EQ(solo.si_executions, fleet_result.si_executions) << "session " << s;
    EXPECT_EQ(solo.atom_loads, fleet_result.atom_loads) << "session " << s;
    EXPECT_EQ(solo.hot_spot_cycles, fleet_result.hot_spot_cycles) << "session " << s;
    if (collect_stats) {
      ASSERT_NE(batch.stats(s), nullptr) << "session " << s;
      expect_stats_equal(solo_stats, *batch.stats(s), entry.set.si_count(), s);
    }
  }
}

TEST(Fleet, FleetMatchesSoloRuns) {
  // The core contract over thread counts (including oversubscribed on this
  // host), block sizes, and the stats-free span path.
  check_fleet_against_solo(/*seed=*/1, /*threads=*/1, /*block_size=*/8,
                           /*share_cache=*/true, /*collect_stats=*/false);
  check_fleet_against_solo(2, 2, 4, true, false);
  check_fleet_against_solo(3, 8, 1, true, false);
}

TEST(Fleet, FleetMatchesSoloRunsWithStats) {
  // Full SimStats (buckets, latency timelines) byte-identical too.
  check_fleet_against_solo(4, 2, 8, true, true);
  check_fleet_against_solo(5, 4, 3, true, true);
}

TEST(Fleet, FleetMatchesSoloRunsWithoutSharedCache) {
  // Per-RTM caches only: the batching itself is equivalence-preserving.
  check_fleet_against_solo(6, 2, 8, false, false);
  check_fleet_against_solo(7, 2, 2, false, true);
}

TEST(Fleet, SharedCacheCountsCrossSessionHits) {
  // Two identical sessions: the second replays the first's decisions, and
  // every one of those hits is a cross-session hit.
  TraceRepository repo;
  SharedDecisionCache cache(1 << 12, 1);
  ThreadPool pool(1);
  FleetOptions options;
  options.traces = &repo;
  options.pool = &pool;
  options.shared_cache = &cache;
  options.block_size = 1;  // separate blocks → distinct sessions, serial pool
  const SessionSpec spec = small_session(Content::kH264, 2, "HEF", 8);
  SessionBatch batch({spec, spec}, options);
  batch.run();
  EXPECT_EQ(batch.result(0).total_cycles, batch.result(1).total_cycles);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.cross_session_hits(), 0u);
  // Session 1 never misses on a key session 0 already inserted.
  EXPECT_GT(batch.decision_cache_hits(1), batch.decision_cache_hits(0));
}

TEST(Fleet, SharedCacheKeepsDomainsApart) {
  // Same SI set and forecast but different schedulers must never share a
  // decision: the domain (set fingerprint, scheduler, payback) is part of
  // the key. If domains collided, HEF sessions would replay SJF schedules
  // and diverge from their solo runs — so equality with solo runs across a
  // mixed-scheduler fleet is the sharpest check.
  TraceRepository repo;
  SharedDecisionCache cache(1 << 12, 2);
  ThreadPool pool(2);
  FleetOptions options;
  options.traces = &repo;
  options.pool = &pool;
  options.shared_cache = &cache;
  std::vector<SessionSpec> specs;
  for (const std::string& name : scheduler_names())
    specs.push_back(small_session(Content::kH264, 2, name, 8));
  SessionBatch batch(specs, options);
  batch.run();
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const SimResult solo = solo_run(repo.get(specs[s]), specs[s], nullptr);
    EXPECT_EQ(solo.total_cycles, batch.result(s).total_cycles)
        << specs[s].scheduler << " diverged under the shared cache";
  }
}

TEST(Fleet, SharedCacheEvictsAtCapacity) {
  SharedDecisionCache cache(/*capacity=*/8, /*shards=*/1);
  const auto domain = cache.register_domain(1, "HEF", 100, 0);
  Molecule ready;
  SharedDecision decision;
  decision.loads = {1, 2};
  for (std::uint64_t i = 0; i < 64; ++i)
    cache.insert(domain, /*session=*/0, {static_cast<SiId>(i)}, {i}, ready, 10, decision);
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.evictions(), 0u);
  // Freshest key still resident, oldest evicted.
  SharedDecision out;
  EXPECT_TRUE(cache.lookup(domain, 1, {static_cast<SiId>(63)}, {63}, ready, 10, out));
  EXPECT_EQ(out.loads, decision.loads);
  EXPECT_FALSE(cache.lookup(domain, 1, {static_cast<SiId>(0)}, {0}, ready, 10, out));
}

TEST(Fleet, SharedCacheInternsDomains) {
  SharedDecisionCache cache;
  const auto a = cache.register_domain(42, "HEF", 100, 0);
  const auto b = cache.register_domain(42, "HEF", 100, 0);
  const auto c = cache.register_domain(42, "SJF", 100, 0);
  const auto d = cache.register_domain(42, "HEF", 200, 0);
  // The config digest is part of the domain identity: two RTMs that agree on
  // set/scheduler/payback but differ in any other config knob (forecast mode,
  // today) must land in separate domains.
  const auto e = cache.register_domain(42, "HEF", 100, 7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(a, e);
}

TEST(Fleet, DomainDigestSeparatesForecastModes) {
  // The regression this guards: before the digest existed, a kMonitored RTM
  // and a kStaticSeeds RTM with the same scheduler shared decisions, and the
  // second one replayed schedules computed under the other forecast policy.
  RtmConfig monitored;
  monitored.forecast_mode = ForecastMode::kMonitored;
  RtmConfig seeded;
  seeded.forecast_mode = ForecastMode::kStaticSeeds;
  EXPECT_NE(rtm_domain_digest(monitored), rtm_domain_digest(seeded));

  SharedDecisionCache cache;
  const auto a = cache.register_domain(42, "HEF", 100, rtm_domain_digest(monitored));
  const auto b = cache.register_domain(42, "HEF", 100, rtm_domain_digest(seeded));
  EXPECT_NE(a, b);

  // End to end: sessions differing only in forecast mode, all sharing one
  // cache, must each still match their solo replay exactly.
  TraceRepository repo;
  SharedDecisionCache shared(1 << 12, 1);
  ThreadPool pool(1);
  FleetOptions options;
  options.traces = &repo;
  options.pool = &pool;
  options.shared_cache = &shared;
  SessionSpec base = small_session(Content::kH264, 2, "HEF", 8);
  SessionSpec with_seeds = base;
  with_seeds.forecast_mode = ForecastMode::kStaticSeeds;
  const std::vector<SessionSpec> specs = {base, with_seeds, base, with_seeds};
  SessionBatch batch(specs, options);
  batch.run();
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const SimResult solo = solo_run(repo.get(specs[s]), specs[s], nullptr);
    EXPECT_EQ(solo.total_cycles, batch.result(s).total_cycles)
        << "session " << s << " leaked decisions across forecast modes";
  }
}

TEST(Fleet, TraceRepositoryMemoizes) {
  TraceRepository repo;
  const SessionSpec spec = small_session(Content::kJpeg, 1, "HEF", 8);
  const TraceEntry& first = repo.get(spec);
  const TraceEntry& again = repo.get(spec);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(repo.hits(), 1u);
  EXPECT_EQ(repo.misses(), 1u);
  SessionSpec longer = spec;
  longer.frames = 2;
  const TraceEntry& other = repo.get(longer);
  EXPECT_NE(&first, &other);
  EXPECT_EQ(repo.size(), 2u);
  // Scheduler and AC budget are replay-side knobs, not trace-side: they must
  // not fragment the repository.
  SessionSpec other_scheduler = spec;
  other_scheduler.scheduler = "SJF";
  other_scheduler.container_count = 4;
  EXPECT_EQ(&repo.get(other_scheduler), &first);
}

TEST(Fleet, ExpandFleetSpecIsDeterministic) {
  FleetSpec spec;
  spec.sessions = 50;
  spec.schedulers = {"HEF", "SJF"};
  spec.acs_min = 5;
  spec.acs_max = 20;
  spec.arrival_per_min = 6000.0;
  const auto a = expand_fleet_spec(spec);
  const auto b = expand_fleet_spec(spec);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a[i].content), static_cast<int>(b[i].content)) << i;
    EXPECT_EQ(a[i].frames, b[i].frames) << i;
    EXPECT_EQ(a[i].scheduler, b[i].scheduler) << i;
    EXPECT_EQ(a[i].container_count, b[i].container_count) << i;
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms) << i;
    EXPECT_GE(a[i].frames, spec.frames_min) << i;
    EXPECT_LE(a[i].frames, spec.frames_max) << i;
  }
  // Uniform arrivals at 6000/min = one session every 10ms.
  EXPECT_DOUBLE_EQ(a[1].arrival_ms, 10.0);
  EXPECT_DOUBLE_EQ(a[49].arrival_ms, 490.0);
  FleetSpec reseeded = spec;
  reseeded.seed = 2;
  const auto c = expand_fleet_spec(reseeded);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    any_difference |= a[i].frames != c[i].frames || a[i].scheduler != c[i].scheduler;
  EXPECT_TRUE(any_difference) << "reseeding changed nothing — PRNG unused?";
}

TEST(Fleet, MixCountsAreExact) {
  // The --mix expansion is apportionment, not coin flips: for S sessions and
  // weights (h, j) the content counts must be the exact largest-remainder
  // split of S, for every session count — odd ones especially, where the old
  // per-session PRNG draw drifted by several sessions.
  const int session_counts[] = {1, 3, 7, 17, 101, 1000};
  const std::pair<std::uint64_t, std::uint64_t> mixes[] = {
      {4, 1}, {1, 1}, {7, 3}, {5, 0}, {0, 2}};
  for (const int sessions : session_counts) {
    for (const auto& [h, j] : mixes) {
      FleetSpec spec;
      spec.sessions = sessions;
      spec.h264_weight = h;
      spec.jpeg_weight = j;
      const auto expanded = expand_fleet_spec(spec);
      ASSERT_EQ(expanded.size(), static_cast<std::size_t>(sessions));
      std::size_t h264 = 0;
      for (const auto& s : expanded)
        if (s.content == Content::kH264) ++h264;
      const double total = static_cast<double>(h + j);
      const double ideal = static_cast<double>(sessions) * static_cast<double>(h) / total;
      // Largest-remainder: the realized count differs from the ideal share by
      // less than one whole session.
      EXPECT_LT(std::abs(static_cast<double>(h264) - ideal), 1.0)
          << sessions << " sessions, mix " << h << ":" << j;
      if (j == 0) EXPECT_EQ(h264, expanded.size());
      if (h == 0) EXPECT_EQ(h264, 0u);
    }
  }
}

TEST(Fleet, MixInterleavesContents) {
  // Smooth WRR, not a prefix of h264 then a suffix of jpeg: in a 1:1 mix the
  // two contents alternate, so any window of consecutive sessions is balanced.
  FleetSpec spec;
  spec.sessions = 10;
  spec.h264_weight = 1;
  spec.jpeg_weight = 1;
  const auto expanded = expand_fleet_spec(spec);
  for (std::size_t i = 1; i < expanded.size(); ++i)
    EXPECT_NE(static_cast<int>(expanded[i].content),
              static_cast<int>(expanded[i - 1].content))
        << "position " << i;
}

// ---------------------------------------------------------------------------
// Strict parsing: garbage exits with kEnvParseExitCode naming the offender.
// Death tests fork, so the exit path (message + code 2) is observed exactly
// as a shell would see it.

TEST(FleetSpecDeathTest, MixGarbageExits) {
  FleetSpec spec;
  EXPECT_EXIT(parse_mix_or_die("--mix", "h264=x", spec),
              ::testing::ExitedWithCode(kEnvParseExitCode), "--mix");
  EXPECT_EXIT(parse_mix_or_die("--mix", "av1=3", spec),
              ::testing::ExitedWithCode(kEnvParseExitCode), "--mix");
  EXPECT_EXIT(parse_mix_or_die("--mix", "h264=0,jpeg=0", spec),
              ::testing::ExitedWithCode(kEnvParseExitCode), "--mix");
}

TEST(FleetSpecDeathTest, RangeGarbageExits) {
  int lo = 0, hi = 0;
  EXPECT_EXIT(parse_range_or_die("--frames", "8..2", 1, 100, lo, hi),
              ::testing::ExitedWithCode(kEnvParseExitCode), "--frames");
  EXPECT_EXIT(parse_range_or_die("--frames", "abc", 1, 100, lo, hi),
              ::testing::ExitedWithCode(kEnvParseExitCode), "--frames");
  EXPECT_EXIT(parse_range_or_die("--frames", "4..999", 1, 100, lo, hi),
              ::testing::ExitedWithCode(kEnvParseExitCode), "--frames");
}

TEST(FleetSpecDeathTest, SchedulerGarbageExits) {
  EXPECT_EXIT(parse_schedulers_or_die("--schedulers", "HEF,NOPE"),
              ::testing::ExitedWithCode(kEnvParseExitCode), "--schedulers");
}

TEST(FleetSpecDeathTest, ArrivalGarbageExits) {
  EXPECT_EXIT(parse_arrival_or_die("--arrival", "sometimes"),
              ::testing::ExitedWithCode(kEnvParseExitCode), "--arrival");
  EXPECT_EXIT(parse_arrival_or_die("--arrival", "uniform:fast"),
              ::testing::ExitedWithCode(kEnvParseExitCode), "--arrival");
}

TEST(FleetSpecDeathTest, SessionsEnvGarbageExits) {
  EXPECT_EXIT(
      [] {
        setenv("RISPP_SESSIONS", "many", 1);
        FleetSpec spec;
        apply_fleet_env(spec);
        std::exit(0);  // unreachable: apply_fleet_env must have exited
      }(),
      ::testing::ExitedWithCode(kEnvParseExitCode), "RISPP_SESSIONS");
}

TEST(FleetSpecDeathTest, TenantsEnvGarbageExits) {
  EXPECT_EXIT(
      [] {
        setenv("RISPP_TENANTS", "lots", 1);
        FleetSpec spec;
        apply_fleet_env(spec);
        std::exit(0);  // unreachable: apply_fleet_env must have exited
      }(),
      ::testing::ExitedWithCode(kEnvParseExitCode), "RISPP_TENANTS");
  EXPECT_EXIT(
      [] {
        setenv("RISPP_TENANTS", "0", 1);
        FleetSpec spec;
        apply_fleet_env(spec);
        std::exit(0);
      }(),
      ::testing::ExitedWithCode(kEnvParseExitCode), "RISPP_TENANTS");
}

TEST(FleetSpecDeathTest, PartitionGarbageExits) {
  EXPECT_EXIT(parse_partition_or_die("--partition", "fair-ish"),
              ::testing::ExitedWithCode(kEnvParseExitCode), "--partition");
}

TEST(FleetSpec, TenantsEnvParsesAndDefaults) {
  unsetenv("RISPP_TENANTS");
  FleetSpec spec;
  apply_fleet_env(spec);
  EXPECT_EQ(spec.tenants, 1);  // unset leaves the default
  setenv("RISPP_TENANTS", "4", 1);
  apply_fleet_env(spec);
  EXPECT_EQ(spec.tenants, 4);
  unsetenv("RISPP_TENANTS");
  EXPECT_EQ(parse_partition_or_die("--partition", "static"), PartitionMode::kStatic);
  EXPECT_EQ(parse_partition_or_die("--partition", "weighted"),
            PartitionMode::kBenefitWeighted);
}

TEST(FleetSpec, SessionsEnvParsesAndDefaults) {
  unsetenv("RISPP_SESSIONS");
  FleetSpec spec;
  spec.sessions = 123;
  apply_fleet_env(spec);
  EXPECT_EQ(spec.sessions, 123);  // unset leaves the default
  setenv("RISPP_SESSIONS", "77", 1);
  apply_fleet_env(spec);
  EXPECT_EQ(spec.sessions, 77);
  unsetenv("RISPP_SESSIONS");
}

TEST(FleetSpec, ParsersAcceptWellFormedInput) {
  FleetSpec spec;
  parse_mix_or_die("--mix", "h264=2,jpeg=3", spec);
  EXPECT_EQ(spec.h264_weight, 2u);
  EXPECT_EQ(spec.jpeg_weight, 3u);
  parse_mix_or_die("--mix", "jpeg=1", spec);
  EXPECT_EQ(spec.h264_weight, 0u);
  int lo = 0, hi = 0;
  parse_range_or_die("--frames", "4..9", 1, 100, lo, hi);
  EXPECT_EQ(lo, 4);
  EXPECT_EQ(hi, 9);
  parse_range_or_die("--acs", "7", 1, 100, lo, hi);
  EXPECT_EQ(lo, 7);
  EXPECT_EQ(hi, 7);
  EXPECT_EQ(parse_arrival_or_die("--arrival", "all"), 0.0);
  EXPECT_EQ(parse_arrival_or_die("--arrival", "uniform:6000"), 6000.0);
  const auto names = parse_schedulers_or_die("--schedulers", "HEF,SJF");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "HEF");
  EXPECT_EQ(names[1], "SJF");
}

TEST(Fleet, RunFleetReportsThroughputAndLatency) {
  TraceRepository repo;
  SharedDecisionCache cache(1 << 12, 2);
  ThreadPool pool(2);
  FleetOptions options;
  options.traces = &repo;
  options.pool = &pool;
  options.shared_cache = &cache;
  std::vector<SessionSpec> specs(10, small_session(Content::kH264, 1, "HEF", 8));
  SessionBatch batch(specs, options);
  const FleetReport report = run_fleet(batch);
  EXPECT_EQ(report.sessions, 10u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.sessions_per_min, 0.0);
  EXPECT_GE(report.latency_p99_ms, report.latency_p50_ms);
  EXPECT_GT(report.cache_hits + report.cache_misses, 0u);
  EXPECT_NE(report.cycles_checksum, 0u);
  // Identical sessions: throughput math consistent with the wall clock.
  EXPECT_NEAR(report.sessions_per_min, 10.0 * 60.0 / report.wall_seconds, 1.0);
}

TEST(Fleet, UnknownSchedulerThrowsAtConstruction) {
  TraceRepository repo;
  FleetOptions options;
  options.traces = &repo;
  std::vector<SessionSpec> specs{small_session(Content::kH264, 1, "BOGUS", 8)};
  EXPECT_THROW(SessionBatch(specs, options), std::exception);
}

}  // namespace
}  // namespace rispp::fleet
