// Tests for bit I/O, Exp-Golomb codes and the run-level residual coder.
#include <gtest/gtest.h>

#include "base/prng.h"
#include "h264/bitstream.h"
#include "h264/entropy.h"

namespace rispp::h264 {
namespace {

TEST(BitIo, WriteReadRoundTrip) {
  BitWriter writer;
  writer.put_bits(0b101, 3);
  writer.put_bit(true);
  writer.put_bits(0xAB, 8);
  writer.put_bits(0x12345, 20);
  EXPECT_EQ(writer.bit_count(), 32u);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bits(3), 0b101u);
  EXPECT_TRUE(reader.get_bit());
  EXPECT_EQ(reader.get_bits(8), 0xABu);
  EXPECT_EQ(reader.get_bits(20), 0x12345u);
}

TEST(BitIo, AlignPadsWithZeros) {
  BitWriter writer;
  writer.put_bits(0b11, 2);
  writer.align();
  EXPECT_EQ(writer.bit_count(), 8u);
  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.get_bits(8), 0b11000000u);
}

TEST(BitIo, ReadingPastEndThrows) {
  BitWriter writer;
  writer.put_bits(0xFF, 8);
  BitReader reader(writer.bytes());
  reader.get_bits(8);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_THROW(reader.get_bits(1), std::logic_error);
}

TEST(ExpGolomb, KnownCodewords) {
  // H.264 Table 9-1: 0 -> "1", 1 -> "010", 2 -> "011", 3 -> "00100", ...
  auto bits_of = [](std::uint32_t value) {
    BitWriter w;
    write_ue(w, value);
    return w.bit_count();
  };
  EXPECT_EQ(bits_of(0), 1u);
  EXPECT_EQ(bits_of(1), 3u);
  EXPECT_EQ(bits_of(2), 3u);
  EXPECT_EQ(bits_of(3), 5u);
  EXPECT_EQ(bits_of(6), 5u);
  EXPECT_EQ(bits_of(7), 7u);

  BitWriter w;
  write_ue(w, 3);  // 00100
  BitReader r(w.bytes());
  EXPECT_EQ(r.get_bits(5), 0b00100u);
}

class ExpGolombRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExpGolombRoundTrip, UnsignedAndSigned) {
  Xoshiro256 rng(GetParam());
  BitWriter writer;
  std::vector<std::uint32_t> ue_values;
  std::vector<std::int32_t> se_values;
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.bounded(100'000));
    const auto s = static_cast<std::int32_t>(rng.range(-50'000, 50'000));
    ue_values.push_back(u);
    se_values.push_back(s);
    write_ue(writer, u);
    write_se(writer, s);
  }
  BitReader reader(writer.bytes());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(read_ue(reader), ue_values[i]);
    EXPECT_EQ(read_se(reader), se_values[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpGolombRoundTrip, ::testing::Range<std::uint64_t>(1, 17));

TEST(ResidualCoder, ZigZagIsAPermutation) {
  bool seen[16] = {};
  for (int i = 0; i < 16; ++i) {
    ASSERT_GE(kZigZag4x4[i], 0);
    ASSERT_LT(kZigZag4x4[i], 16);
    EXPECT_FALSE(seen[kZigZag4x4[i]]);
    seen[kZigZag4x4[i]] = true;
  }
}

TEST(ResidualCoder, AllZeroBlockIsOneBit) {
  BitWriter writer;
  const int levels[16] = {};
  EXPECT_EQ(encode_residual_block(writer, levels), 1u);  // ue(0) = "1"
  BitReader reader(writer.bytes());
  int decoded[16];
  decode_residual_block(reader, decoded);
  for (int v : decoded) EXPECT_EQ(v, 0);
}

TEST(ResidualCoder, DcOnlyBlock) {
  BitWriter writer;
  int levels[16] = {};
  levels[0] = -3;
  encode_residual_block(writer, levels);
  BitReader reader(writer.bytes());
  int decoded[16];
  decode_residual_block(reader, decoded);
  EXPECT_EQ(decoded[0], -3);
  for (int i = 1; i < 16; ++i) EXPECT_EQ(decoded[i], 0);
}

class ResidualRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResidualRoundTrip, RandomSparseBlocks) {
  Xoshiro256 rng(GetParam());
  BitWriter writer;
  std::vector<std::array<int, 16>> blocks;
  for (int b = 0; b < 50; ++b) {
    std::array<int, 16> levels{};
    const int nonzero = static_cast<int>(rng.bounded(9));
    for (int k = 0; k < nonzero; ++k)
      levels[rng.bounded(16)] = static_cast<int>(rng.range(-40, 40));
    blocks.push_back(levels);
    encode_residual_block(writer, levels.data());
  }
  BitReader reader(writer.bytes());
  for (const auto& expected : blocks) {
    int decoded[16];
    decode_residual_block(reader, decoded);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(decoded[i], expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResidualRoundTrip, ::testing::Range<std::uint64_t>(1, 17));

TEST(ResidualCoder, SparseBlocksCostFewerBits) {
  int dense[16], sparse[16] = {};
  for (int i = 0; i < 16; ++i) dense[i] = i % 2 == 0 ? 5 : -5;
  sparse[0] = 5;
  BitWriter dense_writer, sparse_writer;
  const auto dense_bits = encode_residual_block(dense_writer, dense);
  const auto sparse_bits = encode_residual_block(sparse_writer, sparse);
  EXPECT_GT(dense_bits, sparse_bits);
}

}  // namespace
}  // namespace rispp::h264
