// Tests for the online execution monitor / forecaster.
#include <gtest/gtest.h>

#include "monitor/forecast.h"

namespace rispp {
namespace {

TEST(Monitor, SeedsAreReturnedBeforeAnyMeasurement) {
  ExecutionMonitor mon(2, 3);
  mon.seed(0, 1, 500);
  EXPECT_EQ(mon.forecast(0)[1], 500u);
  EXPECT_EQ(mon.forecast(0)[0], 0u);
  EXPECT_EQ(mon.forecast(1)[1], 0u);
}

TEST(Monitor, ExponentialUpdateHalvesTowardMeasurement) {
  ExecutionMonitor mon(1, 2);
  mon.seed(0, 0, 1000);
  mon.begin_hot_spot(0);
  for (int i = 0; i < 2000; ++i) mon.record_execution(0);
  mon.end_hot_spot();
  EXPECT_EQ(mon.forecast(0)[0], 1500u);  // (1000 + 2000) / 2
  EXPECT_EQ(mon.last_measured(0)[0], 2000u);

  mon.begin_hot_spot(0);
  mon.end_hot_spot();  // zero executions this time
  EXPECT_EQ(mon.forecast(0)[0], 750u);
}

TEST(Monitor, ConvergesToStationaryWorkload) {
  ExecutionMonitor mon(1, 1);
  mon.seed(0, 0, 0);
  for (int round = 0; round < 20; ++round) {
    mon.begin_hot_spot(0);
    for (int i = 0; i < 640; ++i) mon.record_execution(0);
    mon.end_hot_spot();
  }
  // f' = (f + 640)/2 converges to 639..640 with integer floor.
  EXPECT_NEAR(static_cast<double>(mon.forecast(0)[0]), 640.0, 2.0);
}

TEST(Monitor, HotSpotsAreIndependent) {
  ExecutionMonitor mon(2, 1);
  mon.begin_hot_spot(0);
  mon.record_execution(0);
  mon.end_hot_spot();
  EXPECT_EQ(mon.forecast(1)[0], 0u);
}

TEST(Monitor, NestedHotSpotsRejected) {
  ExecutionMonitor mon(1, 1);
  mon.begin_hot_spot(0);
  EXPECT_THROW(mon.begin_hot_spot(0), std::logic_error);
  mon.end_hot_spot();
  EXPECT_THROW(mon.end_hot_spot(), std::logic_error);
}

TEST(Monitor, RecordOutsideHotSpotRejected) {
  ExecutionMonitor mon(1, 1);
  EXPECT_THROW(mon.record_execution(0), std::logic_error);
}

TEST(Monitor, TracksOscillatingWorkloadWithinHalfStep) {
  // The paper's motivation: per-frame counts vary with motion. An
  // alternating 100/300 load keeps the forecast between the extremes.
  ExecutionMonitor mon(1, 1);
  mon.seed(0, 0, 200);
  for (int round = 0; round < 30; ++round) {
    const int n = round % 2 == 0 ? 100 : 300;
    mon.begin_hot_spot(0);
    for (int i = 0; i < n; ++i) mon.record_execution(0);
    mon.end_hot_spot();
  }
  EXPECT_GE(mon.forecast(0)[0], 100u);
  EXPECT_LE(mon.forecast(0)[0], 300u);
}

}  // namespace
}  // namespace rispp
