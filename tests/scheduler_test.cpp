// Tests for the §4 Atom schedulers: the scheduling function and validity
// condition, the strategy behaviours (FSFR/ASF/SJF/HEF), the Figure 6
// pseudocode, the division-free benefit comparison, and oracle comparisons.
#include <gtest/gtest.h>

#include <map>

#include "base/prng.h"
#include "isa/h264_si_library.h"
#include "sched/asf.h"
#include "sched/fsfr.h"
#include "sched/hef.h"
#include "sched/oracle.h"
#include "sched/registry.h"
#include "sched/sjf.h"

namespace rispp {
namespace {

/// The Figure 4 example: one SI over two atom types with molecules
/// m1=(1,2), m2=(2,2), m3=(3,3) and the incomparable m4=(1,3).
SpecialInstructionSet figure4_set() {
  AtomLibrary lib;
  lib.add({"A1", 2, 100, 400});
  lib.add({"A2", 2, 100, 400});
  SpecialInstructionSet set(std::move(lib));
  DataPathGraph g(&set.library());
  const auto l1 = g.add_layer(0, 6);
  g.add_layer(1, 6, l1);
  set.add_si("SI", std::move(g), Molecule{3, 3}, 200);
  return set;
}

MoleculeId find_molecule(const SpecialInstruction& si, const Molecule& atoms) {
  for (MoleculeId m = 0; m < si.molecules.size(); ++m)
    if (si.molecules[m].atoms == atoms) return m;
  return kSoftwareMolecule;
}

ScheduleRequest figure4_request(const SpecialInstructionSet& set) {
  ScheduleRequest req;
  req.set = &set;
  const MoleculeId m3 = find_molecule(set.si(0), Molecule{3, 3});
  EXPECT_NE(m3, kSoftwareMolecule);
  req.selected = {SiRef{0, m3}};
  req.available = Molecule(2);
  req.expected_executions = {1000};
  return req;
}

class EveryScheduler : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryScheduler, Figure4ScheduleIsValidAndComplete) {
  const auto set = figure4_set();
  const auto req = figure4_request(set);
  const auto scheduler = make_scheduler(GetParam());
  const Schedule schedule = scheduler->schedule(req);
  EXPECT_TRUE(is_valid_schedule(req, schedule));
  // Cold start, no cleaning shortcut possible: exact condition (2) — the
  // load multiset equals sup(M) = (3,3).
  std::map<AtomTypeId, int> counts;
  for (AtomTypeId t : schedule.loads) ++counts[t];
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 3);
}

TEST_P(EveryScheduler, WarmStartLoadsOnlyMissingAtoms) {
  const auto set = figure4_set();
  auto req = figure4_request(set);
  req.available = Molecule{2, 1};
  const Schedule schedule = make_scheduler(GetParam())->schedule(req);
  EXPECT_TRUE(is_valid_schedule(req, schedule));
  std::map<AtomTypeId, int> counts;
  for (AtomTypeId t : schedule.loads) ++counts[t];
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
}

TEST_P(EveryScheduler, NothingToScheduleYieldsEmpty) {
  const auto set = figure4_set();
  auto req = figure4_request(set);
  req.available = Molecule{3, 3};  // everything already loaded
  const Schedule schedule = make_scheduler(GetParam())->schedule(req);
  EXPECT_TRUE(schedule.loads.empty());
  EXPECT_TRUE(is_valid_schedule(req, schedule));
}

TEST_P(EveryScheduler, EmptySelectionYieldsEmptySchedule) {
  const auto set = figure4_set();
  ScheduleRequest req;
  req.set = &set;
  req.available = Molecule(2);
  req.expected_executions = {1000};
  const Schedule schedule = make_scheduler(GetParam())->schedule(req);
  EXPECT_TRUE(schedule.loads.empty());
}

TEST_P(EveryScheduler, H264FullSelectionSchedulesAreValid) {
  const auto set = h264sis::build_h264_si_set();
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    ScheduleRequest req;
    req.set = &set;
    req.expected_executions.assign(set.si_count(), 0);
    // Random selection: a random molecule for a random subset of SIs.
    for (SiId si = 0; si < set.si_count(); ++si) {
      if (rng.bounded(2) == 0) continue;
      const auto& mols = set.si(si).molecules;
      req.selected.push_back(SiRef{si, static_cast<MoleculeId>(rng.bounded(mols.size()))});
      req.expected_executions[si] = 1 + rng.bounded(10'000);
    }
    // Random warm start.
    Molecule avail(set.atom_type_count());
    for (std::size_t t = 0; t < avail.dimension(); ++t)
      avail[t] = static_cast<AtomCount>(rng.bounded(3));
    req.available = avail;
    const Schedule schedule = make_scheduler(GetParam())->schedule(req);
    EXPECT_TRUE(is_valid_schedule(req, schedule)) << GetParam() << " trial " << trial;
  }
}

TEST_P(EveryScheduler, StepsComposeMonotonicallyImprovingMolecules) {
  const auto set = h264sis::build_h264_si_set();
  ScheduleRequest req;
  req.set = &set;
  req.expected_executions.assign(set.si_count(), 1000);
  const SiId satd = set.find("SATD").value();
  const SiId sad = set.find("SAD").value();
  req.selected = {SiRef{sad, 2}, SiRef{satd, static_cast<MoleculeId>(
                                            set.si(satd).molecules.size() - 1)}};
  req.available = Molecule(set.atom_type_count());
  req.expected_executions[sad] = 24'000;
  req.expected_executions[satd] = 3'600;
  const Schedule schedule = make_scheduler(GetParam())->schedule(req);

  // Replaying the steps: every committed molecule strictly improves the
  // latency of its SI at the moment of completion.
  Molecule a = req.available;
  std::vector<Cycles> best(set.si_count());
  for (SiId si = 0; si < set.si_count(); ++si)
    best[si] = set.fastest_available_latency(si, a);
  for (const UpgradeStep& step : schedule.steps) {
    const Cycles lat = set.latency(step.molecule);
    EXPECT_LT(lat, best[step.molecule.si]) << GetParam();
    best[step.molecule.si] = lat;
    a = join(a, set.si(step.molecule.si).molecule(step.molecule.mol).atoms);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, EveryScheduler,
                         ::testing::Values("FSFR", "ASF", "SJF", "HEF"));

// ---- Figure 4 behaviour ---------------------------------------------------

TEST(Schedulers, HefProducesTheGoodFigure4Schedule) {
  // The good schedule of Figure 4 composes m1=(1,2) after 3 atoms and
  // m2=(2,2) after 4, instead of waiting for m3=(3,3) at 6.
  const auto set = figure4_set();
  const auto req = figure4_request(set);
  const Schedule schedule = HefScheduler().schedule(req);
  ASSERT_GE(schedule.steps.size(), 2u);  // upgrades through intermediates
  // First step must be a small intermediate, not the full m3.
  const auto& first = set.si(0).molecule(schedule.steps.front().molecule.mol);
  EXPECT_LT(first.atoms.determinant(), 6u);
}

TEST(Schedulers, UpgradePathReachesSelectedLatency) {
  const auto set = figure4_set();
  const auto req = figure4_request(set);
  for (const auto& name : scheduler_names()) {
    const Schedule schedule = make_scheduler(name)->schedule(req);
    Molecule a = req.available;
    for (AtomTypeId t : schedule.loads) ++a[t];
    EXPECT_EQ(set.fastest_available_latency(0, a), set.latency(req.selected[0]))
        << name;
  }
}

// ---- Strategy-specific behaviour -------------------------------------------

/// Two SIs; SI0 hugely important, SI1 barely executed.
SpecialInstructionSet two_si_set() {
  AtomLibrary lib;
  lib.add({"A", 2, 60, 400});
  lib.add({"B", 2, 60, 400});
  SpecialInstructionSet set(std::move(lib));
  {
    DataPathGraph g(&set.library());
    g.add_layer(0, 8);
    set.add_si("Hot", std::move(g), Molecule{4, 0}, 100);
  }
  {
    DataPathGraph g(&set.library());
    g.add_layer(1, 8);
    set.add_si("Cold", std::move(g), Molecule{4, 0} /*unused dims ok*/, 100);
  }
  return set;
}

ScheduleRequest two_si_request(const SpecialInstructionSet& set) {
  ScheduleRequest req;
  req.set = &set;
  const auto last0 = static_cast<MoleculeId>(set.si(0).molecules.size() - 1);
  const auto last1 = static_cast<MoleculeId>(set.si(1).molecules.size() - 1);
  req.selected = {SiRef{0, last0}, SiRef{1, last1}};
  req.available = Molecule(2);
  req.expected_executions = {100'000, 10};
  return req;
}

TEST(Schedulers, FsfrFinishesImportantSiBeforeTouchingTheOther) {
  const auto set = two_si_set();
  const auto req = two_si_request(set);
  const Schedule schedule = FsfrScheduler().schedule(req);
  // All atom-type-0 loads (Hot SI) must precede any type-1 load.
  bool seen_cold = false;
  for (AtomTypeId t : schedule.loads) {
    if (t == 1) seen_cold = true;
    if (t == 0) {
      EXPECT_FALSE(seen_cold) << "FSFR interleaved the second SI";
    }
  }
}

TEST(Schedulers, AsfAcceleratesEverySiBeforeDeepUpgrades) {
  const auto set = two_si_set();
  const auto req = two_si_request(set);
  const Schedule schedule = AsfScheduler().schedule(req);
  // Within the first two steps both SIs must have a molecule.
  ASSERT_GE(schedule.steps.size(), 2u);
  EXPECT_NE(schedule.steps[0].molecule.si, schedule.steps[1].molecule.si);
}

TEST(Schedulers, SjfPrefersLocallySmallestStep) {
  const auto set = h264sis::build_h264_si_set();
  ScheduleRequest req;
  req.set = &set;
  req.expected_executions.assign(set.si_count(), 1000);
  const SiId sad = set.find("SAD").value();
  const SiId lf = set.find("LF_BS4").value();
  req.selected = {SiRef{sad, 2},
                  SiRef{lf, static_cast<MoleculeId>(set.si(lf).molecules.size() - 1)}};
  req.available = Molecule(set.atom_type_count());
  const Schedule schedule = SjfScheduler().schedule(req);
  EXPECT_TRUE(is_valid_schedule(req, schedule));
  // After phase 1 (both smallest), the remaining steps are sorted by
  // additional atom count (non-decreasing per commit decision is not
  // guaranteed globally, but each step must be the minimum at its time —
  // verified by replay).
  Molecule a = req.available;
  std::vector<Cycles> best(set.si_count());
  for (SiId si = 0; si < set.si_count(); ++si)
    best[si] = set.fastest_available_latency(si, a);
  const auto candidates = smaller_candidates(set, req.selected);
  for (std::size_t k = 2; k < schedule.steps.size(); ++k) {
    // Recompute availability after steps 0..k-1.
    Molecule avail = req.available;
    for (std::size_t j = 0; j < k; ++j)
      avail = join(avail, set.si(schedule.steps[j].molecule.si)
                              .molecule(schedule.steps[j].molecule.mol)
                              .atoms);
    std::vector<Cycles> bl(set.si_count());
    for (SiId si = 0; si < set.si_count(); ++si)
      bl[si] = set.fastest_available_latency(si, avail);
    unsigned chosen_cost =
        missing(avail, set.si(schedule.steps[k].molecule.si)
                           .molecule(schedule.steps[k].molecule.mol)
                           .atoms)
            .determinant();
    for (const SiRef& c : candidates) {
      if (!candidate_is_live(set, c, avail, bl[c.si])) continue;
      const unsigned cost = missing(avail, set.si(c.si).molecule(c.mol).atoms).determinant();
      EXPECT_LE(chosen_cost, cost) << "SJF step " << k << " not minimal";
    }
  }
}

// ---- HEF pseudocode details -------------------------------------------------

TEST(Hef, BenefitComparisonMatchesExactRational) {
  Xoshiro256 rng(42);
  for (int i = 0; i < 2000; ++i) {
    Benefit a{rng.bounded(1'000'000'000), 1 + rng.bounded(40)};
    Benefit b{rng.bounded(1'000'000'000), 1 + rng.bounded(40)};
    const bool fast = benefit_greater(a, b);
    const long double exact_a =
        static_cast<long double>(a.gain_weighted) / static_cast<long double>(a.atoms);
    const long double exact_b =
        static_cast<long double>(b.gain_weighted) / static_cast<long double>(b.atoms);
    EXPECT_EQ(fast, exact_a > exact_b);
  }
}

TEST(Hef, BenefitComparisonRequiresPositiveAtomCounts) {
  EXPECT_THROW(benefit_greater(Benefit{1, 0}, Benefit{1, 1}), std::logic_error);
}

TEST(Hef, CountersAccumulateFsmWork) {
  const auto set = figure4_set();
  const auto req = figure4_request(set);
  HefCostCounters counters;
  HefScheduler hef(&counters);
  (void)hef.schedule(req);
  EXPECT_EQ(counters.invocations, 1u);
  EXPECT_GT(counters.rounds, 0u);
  EXPECT_GT(counters.benefit_evaluations, 0u);
  EXPECT_EQ(counters.benefit_evaluations, counters.benefit_comparisons);
  EXPECT_GT(counters.commits, 0u);
  EXPECT_EQ(counters.atoms_scheduled, 6u);  // sup = (3,3), cold start
  (void)hef.schedule(req);
  EXPECT_EQ(counters.invocations, 2u);
}

TEST(Hef, ZeroExpectedExecutionsStillProducesValidSchedule) {
  const auto set = figure4_set();
  auto req = figure4_request(set);
  req.expected_executions = {0};
  const Schedule schedule = HefScheduler().schedule(req);
  // All benefits are zero; HEF commits nothing (nothing is worth loading).
  EXPECT_TRUE(schedule.loads.empty());
}

TEST(Hef, PicksHighestBenefitFirst) {
  // Two independent single-type SIs; SI0: small gain, 1 atom; SI1: large
  // gain, 1 atom. HEF must upgrade SI1 first.
  AtomLibrary lib;
  lib.add({"A", 1, 10, 100});
  lib.add({"B", 1, 50, 100});
  SpecialInstructionSet set(std::move(lib));
  {
    DataPathGraph g(&set.library());
    g.add_layer(0, 4);
    set.add_si("small", std::move(g), Molecule{1, 0}, 10);
  }
  {
    DataPathGraph g(&set.library());
    g.add_layer(1, 4);
    set.add_si("large", std::move(g), Molecule{0, 1}, 10);
  }
  ScheduleRequest req;
  req.set = &set;
  req.selected = {SiRef{0, 0}, SiRef{1, 0}};
  req.available = Molecule(2);
  req.expected_executions = {100, 100};
  const Schedule schedule = HefScheduler().schedule(req);
  ASSERT_EQ(schedule.loads.size(), 2u);
  EXPECT_EQ(schedule.loads[0], 1);  // the large-gain SI's atom type B
  EXPECT_EQ(schedule.loads[1], 0);
}

// ---- Oracle ------------------------------------------------------------------

TEST(Oracle, MatchesExhaustiveCostOnFigure4) {
  const auto set = figure4_set();
  const auto req = figure4_request(set);
  constexpr Cycles kAtomCycles = 87'403;
  OracleScheduler oracle(kAtomCycles);
  const Schedule best = oracle.schedule(req);
  EXPECT_TRUE(is_valid_schedule(req, best));
  const long double best_cost = weighted_wait_cost(req, best, kAtomCycles);
  for (const auto& name : scheduler_names()) {
    const Schedule s = make_scheduler(name)->schedule(req);
    EXPECT_GE(weighted_wait_cost(req, s, kAtomCycles), best_cost - 1e-6L) << name;
  }
}

TEST(Oracle, HefIsNearOptimalOnSmallRandomInstances) {
  const auto set = h264sis::build_h264_si_set();
  constexpr Cycles kAtomCycles = 87'403;
  Xoshiro256 rng(11);
  int hef_within_10_percent = 0;
  constexpr int kTrials = 12;
  for (int trial = 0; trial < kTrials; ++trial) {
    ScheduleRequest req;
    req.set = &set;
    req.expected_executions.assign(set.si_count(), 0);
    // Two small SIs to keep the oracle tractable.
    const SiId a = set.find("SAD").value();
    const SiId b = set.find("LF_BS4").value();
    req.selected = {
        SiRef{a, static_cast<MoleculeId>(rng.bounded(set.si(a).molecules.size()))},
        SiRef{b, static_cast<MoleculeId>(rng.bounded(set.si(b).molecules.size()))}};
    req.expected_executions[a] = 1 + rng.bounded(30'000);
    req.expected_executions[b] = 1 + rng.bounded(3'000);
    req.available = Molecule(set.atom_type_count());

    const long double opt =
        weighted_wait_cost(req, OracleScheduler(kAtomCycles).schedule(req), kAtomCycles);
    const long double hef =
        weighted_wait_cost(req, HefScheduler().schedule(req), kAtomCycles);
    EXPECT_GE(hef, opt - 1e-6L);
    if (hef <= opt * 1.10L + 1e-6L) ++hef_within_10_percent;
  }
  EXPECT_GE(hef_within_10_percent, kTrials - 2);
}

TEST(Oracle, RefusesHugeInstances) {
  const auto set = h264sis::build_h264_si_set();
  ScheduleRequest req;
  req.set = &set;
  req.expected_executions.assign(set.si_count(), 100);
  for (SiId si = 0; si < set.si_count(); ++si)
    req.selected.push_back(
        SiRef{si, static_cast<MoleculeId>(set.si(si).molecules.size() - 1)});
  req.available = Molecule(set.atom_type_count());
  EXPECT_THROW(OracleScheduler(87'403).schedule(req), std::logic_error);
}

// ---- Registry -----------------------------------------------------------------

TEST(Registry, KnowsAllFourStrategies) {
  const auto names = scheduler_names();
  ASSERT_EQ(names.size(), 4u);
  for (const auto& name : names) {
    const auto s = make_scheduler(name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
  }
  EXPECT_THROW(make_scheduler("BOGUS"), std::logic_error);
}

}  // namespace
}  // namespace rispp
