// The rispp_stats analysis library (base/stats.h): document parsing for all
// three input shapes (snapshot, flight-recorder ring, bench suite), series
// label parsing, SLO attainment, quantile extraction and the two-document
// diff — all over in-memory strings, no CLI or filesystem.
#include <gtest/gtest.h>

#include <string>

#include "base/metrics.h"
#include "base/stats.h"

namespace rispp {
namespace {

// A realistic two-bucket histogram entry: 3 values <= 100, 1 value <= 200.
const char* kSnapshotDoc = R"({
  "counters": {
    "rtm.forecast.mispredicts": 12
  },
  "gauges": {
    "fleet.sessions_per_min": 180.5
  },
  "histograms": {
    "fleet.contended.session_cycles": {
      "count": 4, "sum": 500, "min": 90, "max": 200,
      "p50": 100, "p90": 200, "p99": 200,
      "buckets": [[100, 3], [200, 1]]
    },
    "fleet.contended.session_cycles{tenant=0}": {
      "count": 2, "sum": 190, "min": 90, "max": 100,
      "p50": 100, "p90": 100, "p99": 100,
      "buckets": [[100, 2]]
    },
    "fleet.contended.session_cycles{tenant=1}": {
      "count": 2, "sum": 310, "min": 110, "max": 200,
      "p50": 200, "p90": 200, "p99": 200,
      "buckets": [[200, 2]]
    }
  }
})";

TEST(Stats, ParsesSeriesNames) {
  const auto plain = stats::parse_series_name("rtm.decision_latency_ns");
  EXPECT_FALSE(plain.labeled);
  EXPECT_EQ(plain.base, "rtm.decision_latency_ns");

  const auto labeled = stats::parse_series_name("x.y{tenant=13}");
  EXPECT_TRUE(labeled.labeled);
  EXPECT_EQ(labeled.base, "x.y");
  EXPECT_EQ(labeled.label_key, "tenant");
  EXPECT_EQ(labeled.label_value, 13u);

  // Malformed label suffixes degrade to unlabeled, never crash.
  EXPECT_FALSE(stats::parse_series_name("x{tenant=}").labeled);
  EXPECT_FALSE(stats::parse_series_name("x{=3}").labeled);
  EXPECT_FALSE(stats::parse_series_name("x{tenant=abc}").labeled);
  EXPECT_FALSE(stats::parse_series_name("x{tenant3}").labeled);
}

TEST(Stats, ParsesASnapshotDocument) {
  stats::MetricsDocument doc;
  std::string error;
  ASSERT_TRUE(stats::parse_metrics_document(kSnapshotDoc, doc, error)) << error;
  EXPECT_EQ(doc.counters.at("rtm.forecast.mispredicts"), 12.0);
  EXPECT_EQ(doc.gauges.at("fleet.sessions_per_min"), 180.5);
  ASSERT_EQ(doc.histograms.size(), 3u);
  const auto& all = doc.histograms.at("fleet.contended.session_cycles");
  EXPECT_TRUE(all.has_buckets);
  EXPECT_EQ(all.snapshot.count, 4u);
  EXPECT_EQ(all.snapshot.buckets.size(), 2u);
  EXPECT_EQ(all.p99, 200u);
}

TEST(Stats, RejectsMalformedDocuments) {
  stats::MetricsDocument doc;
  std::string error;
  EXPECT_FALSE(stats::parse_metrics_document("[]", doc, error));
  EXPECT_FALSE(stats::parse_metrics_document("{\"foo\": 1}", doc, error));
  EXPECT_FALSE(stats::parse_metrics_document(
      "{\"counters\": {}, \"gauges\": {}, \"histograms\": {\"h\": {\"count\": 1}}}", doc,
      error));
  EXPECT_NE(error.find("lacks a summary field"), std::string::npos) << error;
  EXPECT_FALSE(stats::parse_metrics_document("{\"counters\": 3, \"gauges\": {}}", doc,
                                             error));
}

TEST(Stats, ParsesTheLastRingWindow) {
  const std::string ring = R"({
    "interval_ms": 20,
    "windows": [
      {"t_ms": 0, "counters": {"c": 1}, "gauges": {}, "histograms": {}},
      {"t_ms": 20, "counters": {"c": 5}, "gauges": {"g": 2.5}, "histograms": {
        "h": {"count": 3, "sum": 30, "min": 5, "max": 20,
              "p50": 10, "p90": 20, "p99": 20}
      }}
    ]
  })";
  stats::MetricsDocument doc;
  std::string error;
  ASSERT_TRUE(stats::parse_metrics_document(ring, doc, error)) << error;
  EXPECT_EQ(doc.counters.at("c"), 5.0) << "must read the last window";
  EXPECT_EQ(doc.gauges.at("g"), 2.5);
  const auto& h = doc.histograms.at("h");
  EXPECT_FALSE(h.has_buckets) << "ring windows omit buckets";
  EXPECT_EQ(h.p50, 10u);
}

TEST(Stats, ParsesASuiteIntoPrefixedScalars) {
  const std::string suite = R"({
    "frames": 8, "jobs": 2, "threads_per_child": 1,
    "reports": [
      {"name": "fig7", "exit_code": 0, "wall_seconds": 1.5,
       "metrics": {"rtm.decisions": 42, "rtm.decision_latency_ns.p99": 900}},
      {"name": "fig9", "exit_code": 0, "wall_seconds": 0.5}
    ]
  })";
  stats::MetricsDocument doc;
  std::string error;
  ASSERT_TRUE(stats::parse_metrics_document(suite, doc, error)) << error;
  EXPECT_TRUE(doc.histograms.empty());
  EXPECT_EQ(doc.gauges.at("fig7/rtm.decisions"), 42.0);
  EXPECT_EQ(doc.gauges.at("fig7/rtm.decision_latency_ns.p99"), 900.0);
}

TEST(Stats, FlattenFoldsHistogramSummaries) {
  stats::MetricsDocument doc;
  std::string error;
  ASSERT_TRUE(stats::parse_metrics_document(kSnapshotDoc, doc, error)) << error;
  const auto flat = stats::flatten(doc);
  EXPECT_EQ(flat.at("rtm.forecast.mispredicts"), 12.0);
  EXPECT_EQ(flat.at("fleet.contended.session_cycles.count"), 4.0);
  EXPECT_EQ(flat.at("fleet.contended.session_cycles{tenant=1}.p99"), 200.0);
}

TEST(Stats, SloTableRanksTenantsAndComputesAttainment) {
  stats::MetricsDocument doc;
  std::string error;
  ASSERT_TRUE(stats::parse_metrics_document(kSnapshotDoc, doc, error)) << error;

  const auto table =
      stats::render_slo_table(doc, "fleet.contended.session_cycles", 100);
  ASSERT_TRUE(table.has_value());
  // Aggregate row first, then tenants in numeric order; tenant 0 meets the
  // objective fully, tenant 1 not at all (buckets are conservative).
  const std::size_t all_at = table->find("(all)");
  const std::size_t t0_at = table->find("tenant=0");
  const std::size_t t1_at = table->find("tenant=1");
  ASSERT_NE(all_at, std::string::npos);
  ASSERT_NE(t0_at, std::string::npos);
  ASSERT_NE(t1_at, std::string::npos);
  EXPECT_LT(all_at, t0_at);
  EXPECT_LT(t0_at, t1_at);
  EXPECT_NE(table->find("100.00%"), std::string::npos);
  EXPECT_NE(table->find("0.00%"), std::string::npos);
  EXPECT_NE(table->find("75.00%"), std::string::npos);  // 3 of 4 overall

  EXPECT_FALSE(stats::render_slo_table(doc, "no.such.metric", 1).has_value());
}

TEST(Stats, QuantileTableReadsBucketsAndDegradesWithoutThem) {
  stats::MetricsDocument doc;
  std::string error;
  ASSERT_TRUE(stats::parse_metrics_document(kSnapshotDoc, doc, error)) << error;
  const std::string table =
      stats::render_quantile_table(doc, {0.5, 0.999}, "tenant=1");
  EXPECT_NE(table.find("fleet.contended.session_cycles{tenant=1}"), std::string::npos);
  EXPECT_EQ(table.find("{tenant=0}"), std::string::npos) << "filter must apply";
  EXPECT_NE(table.find("p99.9"), std::string::npos);

  // Without buckets, only the recorded p50/p90/p99 grid answers.
  stats::MetricsDocument ring;
  ASSERT_TRUE(stats::parse_metrics_document(
      R"({"interval_ms": 1, "windows": [{"t_ms": 0, "counters": {}, "gauges": {},
          "histograms": {"h": {"count": 1, "sum": 7, "min": 7, "max": 7,
                               "p50": 7, "p90": 7, "p99": 7}}}]})",
      ring, error))
      << error;
  const std::string degraded = stats::render_quantile_table(ring, {0.5, 0.999}, "");
  EXPECT_NE(degraded.find("n/a"), std::string::npos);
}

TEST(Stats, DiffRanksLargestRelativeMovements) {
  stats::MetricsDocument base, now;
  std::string error;
  ASSERT_TRUE(stats::parse_metrics_document(
      R"({"counters": {"nudged": 100, "tripled": 100, "from_zero": 0,
          "steady": 5}, "gauges": {}})",
      base, error))
      << error;
  ASSERT_TRUE(stats::parse_metrics_document(
      R"({"counters": {"nudged": 110, "tripled": 300, "from_zero": 4,
          "steady": 5}, "gauges": {}})",
      now, error))
      << error;

  const std::string diff = stats::render_diff(base, now, 2);
  // from_zero has infinite relative change and tripled beats nudged; the 10%
  // move falls off the top-2 cut, and an unchanged metric never appears.
  const std::size_t zero_at = diff.find("from_zero");
  const std::size_t tripled_at = diff.find("tripled");
  ASSERT_NE(zero_at, std::string::npos);
  ASSERT_NE(tripled_at, std::string::npos);
  EXPECT_LT(zero_at, tripled_at);
  EXPECT_NE(diff.find("new"), std::string::npos);
  EXPECT_NE(diff.find("200.0%"), std::string::npos);
  EXPECT_EQ(diff.find("nudged"), std::string::npos);
  EXPECT_EQ(diff.find("steady"), std::string::npos);

  const std::string empty = stats::render_diff(base, base, 5);
  EXPECT_NE(empty.find("no overlapping metrics changed"), std::string::npos);
}

TEST(Stats, RoundTripsALiveRegistrySnapshot) {
  // The end-to-end path the CLI takes: registry → metrics_snapshot_json() →
  // parse → SLO table over a labeled family registered right here.
  metric_histogram("stats.test.rt_cycles", {"tenant", 0}).record(50);
  metric_histogram("stats.test.rt_cycles", {"tenant", 0}).record(60);
  metric_histogram("stats.test.rt_cycles", {"tenant", 1}).record(5'000);

  stats::MetricsDocument doc;
  std::string error;
  ASSERT_TRUE(stats::parse_metrics_document(metrics_snapshot_json(), doc, error))
      << error;
  const auto table = stats::render_slo_table(doc, "stats.test.rt_cycles", 100);
  ASSERT_TRUE(table.has_value());
  EXPECT_NE(table->find("tenant=0"), std::string::npos);
  EXPECT_NE(table->find("tenant=1"), std::string::npos);
  EXPECT_NE(table->find("100.00%"), std::string::npos);
  EXPECT_NE(table->find("0.00%"), std::string::npos);
}

}  // namespace
}  // namespace rispp
