// Tests of the H.264-subset encoder and the workload generation pipeline.
#include <gtest/gtest.h>

#include "h264/kernels.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"

namespace rispp::h264 {
namespace {

WorkloadConfig small_config(int frames) {
  WorkloadConfig config;
  config.frames = frames;
  config.video.width = 96;   // 6x4 MBs — fast tests
  config.video.height = 64;
  config.video.object_count = 2;
  return config;
}

TEST(Encoder, FirstFrameIsAllIntra) {
  const auto set = h264sis::build_h264_si_set();
  const auto config = small_config(1);
  const auto result = generate_h264_workload(set, config);
  EXPECT_EQ(result.inter_mbs, 0);
  EXPECT_EQ(result.intra_mbs, 6 * 4);
  // No ME instance for an intra frame: only EE and LF.
  ASSERT_EQ(result.trace.instances.size(), 2u);
  EXPECT_EQ(result.trace.instances[0].hot_spot, kHotSpotEe);
  EXPECT_EQ(result.trace.instances[1].hot_spot, kHotSpotLf);
}

TEST(Encoder, PFramesAreMostlyInter) {
  const auto set = h264sis::build_h264_si_set();
  const auto result = generate_h264_workload(set, small_config(6));
  EXPECT_GT(result.inter_mbs, result.intra_mbs);
  // Frames 1..5 contribute 3 instances each (ME, EE, LF).
  EXPECT_EQ(result.trace.instances.size(), 2u + 5u * 3u);
}

TEST(Encoder, ReconstructionQualityIsReasonable) {
  const auto set = h264sis::build_h264_si_set();
  const auto result = generate_h264_workload(set, small_config(6));
  EXPECT_GT(result.mean_psnr, 28.0);  // lossy but recognizable
  EXPECT_LT(result.mean_psnr, 99.0);  // actually lossy
}

TEST(Encoder, TraceContainsOnlyHotSpotSis) {
  const auto set = h264sis::build_h264_si_set();
  const auto result = generate_h264_workload(set, small_config(4));
  for (const auto& inst : result.trace.instances) {
    const auto& allowed = result.trace.hot_spots[inst.hot_spot].sis;
    for (SiId si : inst.executions)
      EXPECT_NE(std::find(allowed.begin(), allowed.end(), si), allowed.end())
          << "SI " << si << " in hot spot " << result.trace.hot_spots[inst.hot_spot].name;
  }
}

TEST(Encoder, DeterministicTraces) {
  const auto set = h264sis::build_h264_si_set();
  const auto a = generate_h264_workload(set, small_config(4));
  const auto b = generate_h264_workload(set, small_config(4));
  ASSERT_EQ(a.trace.instances.size(), b.trace.instances.size());
  for (std::size_t i = 0; i < a.trace.instances.size(); ++i)
    EXPECT_EQ(a.trace.instances[i].executions, b.trace.instances[i].executions);
}

TEST(Encoder, MotionPhaseModulatesSearchEffort) {
  // Data dependence: per-frame ME counts vary (non-constant search effort).
  const auto set = h264sis::build_h264_si_set();
  const auto result = generate_h264_workload(set, small_config(12));
  std::vector<std::size_t> me_counts;
  for (const auto& inst : result.trace.instances)
    if (inst.hot_spot == kHotSpotMe) me_counts.push_back(inst.executions.size());
  ASSERT_GE(me_counts.size(), 5u);
  const auto [min_it, max_it] = std::minmax_element(me_counts.begin(), me_counts.end());
  EXPECT_GT(*max_it, *min_it);
}

TEST(Encoder, WavefrontDeterminism) {
  // The wavefront-parallel encoder must reproduce the single-thread trace
  // event for event at any thread count — the trace cache is keyed without
  // the thread count on exactly this guarantee. All three hot spots run as
  // wavefronts (ME/EE with a one-MB lag, the deblocking LF with a two-MB
  // lag), so the comparison must see every kind of instance; in particular
  // a trace without LF executions would vacuously pass the filter check.
  const auto set = h264sis::build_h264_si_set();
  auto config = small_config(5);
  config.encode_threads = 1;
  const auto reference = generate_h264_workload(set, config);
  std::size_t reference_lf_executions = 0;
  for (const auto& inst : reference.trace.instances)
    if (inst.hot_spot == kHotSpotLf) reference_lf_executions += inst.executions.size();
  EXPECT_GT(reference_lf_executions, 0u)
      << "workload exercises no deblocking; the LF wavefront is untested";
  for (int threads : {2, 3, 8, 16}) {
    config.encode_threads = threads;
    const auto parallel = generate_h264_workload(set, config);
    EXPECT_EQ(parallel.mean_psnr, reference.mean_psnr) << threads << " threads";
    EXPECT_EQ(parallel.mean_bitrate_kbps, reference.mean_bitrate_kbps)
        << threads << " threads";
    EXPECT_EQ(parallel.intra_mbs, reference.intra_mbs) << threads << " threads";
    EXPECT_EQ(parallel.inter_mbs, reference.inter_mbs) << threads << " threads";
    ASSERT_EQ(parallel.trace.instances.size(), reference.trace.instances.size())
        << threads << " threads";
    for (std::size_t i = 0; i < reference.trace.instances.size(); ++i) {
      EXPECT_EQ(parallel.trace.instances[i].hot_spot,
                reference.trace.instances[i].hot_spot)
          << threads << " threads, instance " << i;
      EXPECT_EQ(parallel.trace.instances[i].executions,
                reference.trace.instances[i].executions)
          << threads << " threads, instance " << i;
    }
  }
}

TEST(Encoder, WavefrontDeterministicAcrossKernelBackends) {
  // SIMD on/off must also be invisible in the trace (bit-exact kernels).
  if (!simd_available()) GTEST_SKIP() << "SIMD backend not compiled in";
  const auto set = h264sis::build_h264_si_set();
  const auto config = small_config(4);
  const KernelBackend entry = active_kernel_backend();
  set_kernel_backend(KernelBackend::kScalar);
  const auto scalar = generate_h264_workload(set, config);
  set_kernel_backend(KernelBackend::kSimd);
  const auto simd = generate_h264_workload(set, config);
  set_kernel_backend(entry);
  EXPECT_EQ(scalar.mean_psnr, simd.mean_psnr);
  ASSERT_EQ(scalar.trace.instances.size(), simd.trace.instances.size());
  for (std::size_t i = 0; i < scalar.trace.instances.size(); ++i)
    EXPECT_EQ(scalar.trace.instances[i].executions, simd.trace.instances[i].executions)
        << "instance " << i;
}

TEST(Workload, CifMeCountsNearPaperProfile) {
  // Figure 2: 31,977 SAD+SATD executions in one frame's ME hot spot. Our
  // synthetic sequence lands in the same band (20K-40K).
  const auto set = h264sis::build_h264_si_set();
  WorkloadConfig config;  // full CIF
  config.frames = 3;
  const auto result = generate_h264_workload(set, config);
  std::vector<std::size_t> me_counts;
  for (const auto& inst : result.trace.instances)
    if (inst.hot_spot == kHotSpotMe) me_counts.push_back(inst.executions.size());
  ASSERT_EQ(me_counts.size(), 2u);
  for (std::size_t c : me_counts) {
    EXPECT_GT(c, 20'000u);
    EXPECT_LT(c, 45'000u);
  }
}

TEST(Workload, SeedsCoverEveryHotSpotSi) {
  const auto set = h264sis::build_h264_si_set();
  const auto seeds = default_forecast_seeds(set);
  ASSERT_EQ(seeds.size(), 3u);
  const H264SiIds ids = resolve_si_ids(set);
  EXPECT_GT(seeds[kHotSpotMe][ids.sad], 0u);
  EXPECT_GT(seeds[kHotSpotMe][ids.satd], 0u);
  EXPECT_GT(seeds[kHotSpotEe][ids.mc], 0u);
  EXPECT_GT(seeds[kHotSpotLf][ids.lf_bs4], 0u);
}

TEST(Workload, ResolveSiIdsThrowsOnForeignSet) {
  AtomLibrary lib;
  lib.add({"X", 1, 2, 100});
  SpecialInstructionSet set(std::move(lib));
  EXPECT_THROW(resolve_si_ids(set), std::logic_error);
}

}  // namespace
}  // namespace rispp::h264
