// Tests for the base utilities: PRNG determinism and distribution sanity,
// table/CSV rendering, invariant checking and the clock model.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "base/apportion.h"
#include "base/check.h"
#include "base/clock.h"
#include "base/csv.h"
#include "base/log.h"
#include "base/prng.h"
#include "base/table.h"

namespace rispp {
namespace {

TEST(Prng, DeterministicForEqualSeeds) {
  Xoshiro256 a(42), b(42), c(43);
  bool all_equal = true, any_diff_seed_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    all_equal = all_equal && va == b.next();
    any_diff_seed_diff = any_diff_seed_diff || va != c.next();
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff_seed_diff);
}

TEST(Prng, BoundedStaysInRangeAndCoversIt) {
  Xoshiro256 rng(7);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.bounded(10);
    ASSERT_LT(v, 10u);
    ++histogram[v];
  }
  for (int count : histogram) {
    EXPECT_GT(count, 700);  // roughly uniform
    EXPECT_LT(count, 1300);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Prng, RangeIsInclusive) {
  Xoshiro256 rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2'000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, Uniform01AndGaussianMoments) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20'000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20'000, 0.5, 0.02);

  double gsum = 0.0, gsq = 0.0;
  for (int i = 0; i < 20'000; ++i) {
    const double g = rng.gaussian(10.0, 2.0);
    gsum += g;
    gsq += g * g;
  }
  const double mean = gsum / 20'000;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(gsq / 20'000 - mean * mean, 4.0, 0.4);
}

TEST(Apportion, SumsExactlyAndTracksProportions) {
  const std::uint64_t weights[] = {4, 1};
  for (std::uint64_t seats : {0ull, 1ull, 3ull, 7ull, 17ull, 101ull, 1000ull}) {
    const auto shares = apportion_largest_remainder(seats, weights);
    ASSERT_EQ(shares.size(), 2u);
    EXPECT_EQ(shares[0] + shares[1], seats) << seats << " seats";
    // Hamilton's method stays within one seat of the exact share.
    const double ideal = static_cast<double>(seats) * 4.0 / 5.0;
    EXPECT_LT(std::abs(static_cast<double>(shares[0]) - ideal), 1.0) << seats;
  }
}

TEST(Apportion, ThreeWaySplitAndZeroWeights) {
  const std::uint64_t weights[] = {2, 3, 5};
  const auto shares = apportion_largest_remainder(10, weights);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(shares[0], 2u);
  EXPECT_EQ(shares[1], 3u);
  EXPECT_EQ(shares[2], 5u);
  // A zero weight gets nothing; the others absorb its share.
  const std::uint64_t lopsided[] = {1, 0, 1};
  const auto split = apportion_largest_remainder(9, lopsided);
  EXPECT_EQ(split[1], 0u);
  EXPECT_EQ(split[0] + split[2], 9u);
}

TEST(Apportion, TiesGoToLowestIndexAndAllZeroIsUniform) {
  // 1 seat over equal weights: the remainders tie, index 0 wins.
  const std::uint64_t equal[] = {1, 1, 1};
  const auto one = apportion_largest_remainder(1, equal);
  EXPECT_EQ(one[0], 1u);
  EXPECT_EQ(one[1], 0u);
  EXPECT_EQ(one[2], 0u);
  // All-zero weights degrade to uniform instead of dividing by zero.
  const std::uint64_t zeros[] = {0, 0, 0};
  const auto uniform = apportion_largest_remainder(7, zeros);
  EXPECT_EQ(uniform[0], 3u);
  EXPECT_EQ(uniform[1], 2u);
  EXPECT_EQ(uniform[2], 2u);
  // Empty weights: nothing to split.
  EXPECT_TRUE(apportion_largest_remainder(0, {}).empty());
}

TEST(Clock, RoundTripAndPaperAnchors) {
  EXPECT_EQ(cycles_from_us(874.03), 87'403u);
  EXPECT_NEAR(us_from_cycles(87'403), 874.03, 0.01);
  EXPECT_EQ(cycles_from_us(0.0), 0u);
}

TEST(Table, RendersAlignedColumnsWithSeparator) {
  TextTable table({"a", "long header"});
  table.add(1, "x");
  table.add(22, 3.5);
  const std::string out = table.render();
  EXPECT_NE(out.find("| a  | long header |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | 3.50        |"), std::string::npos);
  EXPECT_NE(out.find("|----|"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, RejectsWrongArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), std::logic_error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 3), "-1.000");
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(7'403'000'000ull), "7,403,000,000");
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os, {"name", "value"});
  csv.write(std::string("plain"), 42);
  csv.write(std::string("has,comma"), 1);
  csv.write(std::string("has\"quote"), 2);
  const std::string out = os.str();
  EXPECT_NE(out.find("name,value\n"), std::string::npos);
  EXPECT_NE(out.find("plain,42\n"), std::string::npos);
  EXPECT_NE(out.find("\"has,comma\",1\n"), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\",2\n"), std::string::npos);
}

TEST(Csv, RejectsWrongArity) {
  std::ostringstream os;
  CsvWriter csv(os, {"a", "b"});
  EXPECT_THROW(csv.write_row({"one"}), std::logic_error);
}

TEST(Check, ThrowsWithContext) {
  try {
    RISPP_CHECK_MSG(1 == 2, "context " << 99);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 99"), std::string::npos);
  }
  EXPECT_NO_THROW(RISPP_CHECK(true));
}

TEST(Log, LevelsGateEmission) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  RISPP_INFO("suppressed " << 1);  // must not crash, must not emit
  set_log_level(LogLevel::kDebug);
  RISPP_DEBUG("emitted " << 2);
  set_log_level(before);
  SUCCEED();
}

}  // namespace
}  // namespace rispp
