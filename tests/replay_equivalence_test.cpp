// Bit-exactness of the run-batched fast-forward replay (ReplayMode::kBatched,
// the default) against the scalar reference path (ReplayMode::kScalar), for
// every backend the repo ships. The batched path may only change simulator
// wall-clock, never a simulated number: total cycles, per-hot-spot cycles,
// load counts, stats buckets and latency timelines must all match.
//
// Two workloads: the H.264 CIF encode (the paper's evaluation run) and the
// JPEG stream — the latter exercises different SI shapes, data-dependent EC
// run lengths and a different hot-spot cadence, so a fast path that
// overfits H.264's structure cannot pass.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/molen.h"
#include "baselines/onechip.h"
#include "baselines/software_only.h"
#include "baselines/static_asip.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "jpeg/jpeg_si_library.h"
#include "jpeg/jpeg_workload.h"
#include "rtm/run_time_manager.h"
#include "sched/hef.h"
#include "sched/registry.h"
#include "sim/executor.h"
#include "sim/stats.h"

namespace rispp {
namespace {

class ReplayEquivalenceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_ = new SpecialInstructionSet(h264sis::build_h264_si_set());
    h264::WorkloadConfig config;
    config.frames = kFrames;
    trace_ = new WorkloadTrace(h264::generate_h264_workload(*set_, config).trace);

    jpeg_set_ = new SpecialInstructionSet(jpegsis::build_jpeg_si_set());
    jpeg::JpegWorkloadConfig jpeg_config;
    jpeg_config.images = kJpegImages;
    jpeg_trace_ = new WorkloadTrace(
        jpeg::generate_jpeg_workload(*jpeg_set_, jpeg_config).trace);
  }
  static void TearDownTestSuite() {
    delete jpeg_trace_;
    delete jpeg_set_;
    delete trace_;
    delete set_;
  }

  struct Observed {
    SimResult result;
    std::uint64_t loads = 0;
  };

  // Runs `trace` twice with `make_backend` producing a fresh backend each
  // time, and asserts the batched replay matches the scalar one exactly —
  // including the per-bucket stats and latency timelines.
  template <typename MakeBackend>
  static void expect_equivalent(const SpecialInstructionSet& set,
                                const WorkloadTrace& trace, MakeBackend&& make_backend,
                                const std::string& label) {
    SCOPED_TRACE(label);
    SimStats scalar_stats(set.si_count()), batched_stats(set.si_count());
    Observed scalar, batched;
    {
      auto backend = make_backend();
      scalar.result = run_trace(trace, *backend, &scalar_stats, ReplayMode::kScalar);
      scalar.loads = backend->completed_loads();
    }
    {
      auto backend = make_backend();
      batched.result = run_trace(trace, *backend, &batched_stats, ReplayMode::kBatched);
      batched.loads = backend->completed_loads();
    }
    EXPECT_EQ(scalar.result.total_cycles, batched.result.total_cycles);
    EXPECT_EQ(scalar.result.si_executions, batched.result.si_executions);
    EXPECT_EQ(scalar.result.atom_loads, batched.result.atom_loads);
    EXPECT_EQ(scalar.result.hot_spot_cycles, batched.result.hot_spot_cycles);
    EXPECT_EQ(scalar.loads, batched.loads);

    ASSERT_EQ(scalar_stats.bucket_count(), batched_stats.bucket_count());
    for (SiId si = 0; si < set.si_count(); ++si) {
      EXPECT_EQ(scalar_stats.executions(si), batched_stats.executions(si)) << "si " << si;
      for (std::size_t b = 0; b < scalar_stats.bucket_count(); ++b)
        ASSERT_EQ(scalar_stats.bucket_executions(si, b),
                  batched_stats.bucket_executions(si, b))
            << "si " << si << " bucket " << b;
      const auto& st = scalar_stats.latency_timeline(si);
      const auto& bt = batched_stats.latency_timeline(si);
      ASSERT_EQ(st.size(), bt.size()) << "si " << si;
      for (std::size_t p = 0; p < st.size(); ++p) {
        EXPECT_EQ(st[p].at, bt[p].at) << "si " << si << " point " << p;
        EXPECT_EQ(st[p].latency, bt[p].latency) << "si " << si << " point " << p;
      }
    }

    // The stats-free span fast path must agree with the stats path too.
    auto backend = make_backend();
    const SimResult span = run_trace(trace, *backend, nullptr, ReplayMode::kBatched);
    EXPECT_EQ(scalar.result.total_cycles, span.total_cycles);
    EXPECT_EQ(scalar.result.si_executions, span.si_executions);
    EXPECT_EQ(scalar.result.atom_loads, span.atom_loads);
    EXPECT_EQ(scalar.result.hot_spot_cycles, span.hot_spot_cycles);
  }

  static constexpr int kFrames = 8;
  static constexpr int kJpegImages = 6;
  static SpecialInstructionSet* set_;
  static WorkloadTrace* trace_;
  static SpecialInstructionSet* jpeg_set_;
  static WorkloadTrace* jpeg_trace_;
};

SpecialInstructionSet* ReplayEquivalenceFixture::set_ = nullptr;
WorkloadTrace* ReplayEquivalenceFixture::trace_ = nullptr;
SpecialInstructionSet* ReplayEquivalenceFixture::jpeg_set_ = nullptr;
WorkloadTrace* ReplayEquivalenceFixture::jpeg_trace_ = nullptr;

struct RtmHolder {
  std::unique_ptr<AtomScheduler> scheduler;
  std::unique_ptr<RunTimeManager> rtm;
  std::uint64_t completed_loads() const { return rtm->completed_loads(); }
  operator RunTimeManager&() { return *rtm; }
};

TEST_F(ReplayEquivalenceFixture, RtmAllSchedulersAllBudgets) {
  for (const auto& name : scheduler_names()) {
    for (const unsigned acs : {6u, 10u, 17u, 24u}) {
      expect_equivalent(
          *set_, *trace_,
          [&] {
            auto holder = std::make_unique<RtmHolder>();
            holder->scheduler = make_scheduler(name);
            RtmConfig config;
            config.container_count = acs;
            config.scheduler = holder->scheduler.get();
            holder->rtm = std::make_unique<RunTimeManager>(
                set_, trace_->hot_spots.size(), config);
            h264::seed_default_forecasts(*set_, *holder->rtm);
            return holder;
          },
          name + "@" + std::to_string(acs));
    }
  }
}

TEST_F(ReplayEquivalenceFixture, RtmWithPrefetchEnabled) {
  expect_equivalent(
      *set_, *trace_,
      [&] {
        auto holder = std::make_unique<RtmHolder>();
        holder->scheduler = make_scheduler("HEF");
        RtmConfig config;
        config.container_count = 12;
        config.scheduler = holder->scheduler.get();
        config.enable_prefetch = true;
        holder->rtm =
            std::make_unique<RunTimeManager>(set_, trace_->hot_spots.size(), config);
        h264::seed_default_forecasts(*set_, *holder->rtm);
        return holder;
      },
      "HEF@12+prefetch");
}

TEST_F(ReplayEquivalenceFixture, RtmOracleForecastAndPaybackDisabled) {
  expect_equivalent(
      *set_, *trace_,
      [&] {
        auto holder = std::make_unique<RtmHolder>();
        holder->scheduler = make_scheduler("ASF");
        RtmConfig config;
        config.container_count = 10;
        config.scheduler = holder->scheduler.get();
        config.forecast_mode = ForecastMode::kOracle;
        config.payback_horizon = 0;
        holder->rtm =
            std::make_unique<RunTimeManager>(set_, trace_->hot_spots.size(), config);
        h264::seed_default_forecasts(*set_, *holder->rtm);
        return holder;
      },
      "ASF@10+oracle+horizon0");
}

TEST_F(ReplayEquivalenceFixture, MolenBaseline) {
  for (const unsigned acs : {6u, 10u, 17u, 24u}) {
    expect_equivalent(
        *set_, *trace_,
        [&] {
          MolenConfig config;
          config.container_count = acs;
          auto molen = std::make_unique<MolenBackend>(set_, trace_->hot_spots.size(),
                                                      config);
          h264::seed_default_forecasts(*set_, *molen);
          return molen;
        },
        "Molen@" + std::to_string(acs));
  }
}

TEST_F(ReplayEquivalenceFixture, OneChipBaseline) {
  for (const unsigned acs : {6u, 10u, 17u, 24u}) {
    expect_equivalent(
        *set_, *trace_,
        [&] {
          OneChipConfig config;
          config.container_count = acs;
          auto onechip = std::make_unique<OneChipBackend>(set_, trace_->hot_spots.size(),
                                                          config);
          h264::seed_default_forecasts(*set_, *onechip);
          return onechip;
        },
        "OneChip@" + std::to_string(acs));
  }
}

TEST_F(ReplayEquivalenceFixture, SoftwareOnlyBaseline) {
  expect_equivalent(*set_, *trace_,
                    [&] { return std::make_unique<SoftwareOnlyBackend>(set_); },
                    "SoftwareOnly");
}

TEST_F(ReplayEquivalenceFixture, StaticAsipBaseline) {
  expect_equivalent(*set_, *trace_,
                    [&] { return std::make_unique<StaticAsipBackend>(set_); },
                    "StaticASIP");
}

// The decision cache (DESIGN §6.2) replays memoized selection+schedule
// results; its key covers everything the decision reads, so a cached run
// must be bit-exact against an uncached one — every simulated number, every
// stats bucket — while actually serving hits on a steady-state workload.
TEST_F(ReplayEquivalenceFixture, DecisionCacheIsBitExactAndEffective) {
  const auto run_with_cache = [&](bool cache_on, RunTimeManager** rtm_out,
                                  SimStats* stats) {
    static HefScheduler hef;  // stateless; shared across calls is fine
    RtmConfig config;
    config.container_count = 10;
    config.scheduler = &hef;
    config.enable_prefetch = true;  // the prefetch path shares the cache
    config.enable_decision_cache = cache_on;
    // Static seeds keep the forecast constant, so decisions repeat as soon
    // as atom residency reaches its steady state — the cache serves real
    // hits even in this short 8-frame run. (Under kMonitored the forecast
    // converges too, but only over more frames than a unit test should pay
    // for; bench/table3_scheduler_cost reports the monitored hit rate.)
    config.forecast_mode = ForecastMode::kStaticSeeds;
    auto rtm = std::make_unique<RunTimeManager>(set_, trace_->hot_spots.size(), config);
    h264::seed_default_forecasts(*set_, *rtm);
    const SimResult result = run_trace(*trace_, *rtm, stats);
    if (rtm_out) *rtm_out = rtm.release();  // caller inspects counters
    return result;
  };

  SimStats cached_stats(set_->si_count()), uncached_stats(set_->si_count());
  RunTimeManager* cached_rtm = nullptr;
  const SimResult cached = run_with_cache(true, &cached_rtm, &cached_stats);
  std::unique_ptr<RunTimeManager> cached_owner(cached_rtm);
  const SimResult uncached = run_with_cache(false, nullptr, &uncached_stats);

  EXPECT_EQ(cached.total_cycles, uncached.total_cycles);
  EXPECT_EQ(cached.si_executions, uncached.si_executions);
  EXPECT_EQ(cached.atom_loads, uncached.atom_loads);
  EXPECT_EQ(cached.hot_spot_cycles, uncached.hot_spot_cycles);
  for (SiId si = 0; si < set_->si_count(); ++si) {
    EXPECT_EQ(cached_stats.executions(si), uncached_stats.executions(si)) << "si " << si;
    const auto& ct = cached_stats.latency_timeline(si);
    const auto& ut = uncached_stats.latency_timeline(si);
    ASSERT_EQ(ct.size(), ut.size()) << "si " << si;
    for (std::size_t p = 0; p < ct.size(); ++p) {
      EXPECT_EQ(ct[p].at, ut[p].at) << "si " << si << " point " << p;
      EXPECT_EQ(ct[p].latency, ut[p].latency) << "si " << si << " point " << p;
    }
  }

  // Monitored forecasts converge after warm-up, so a multi-frame replay must
  // reach a steady state of pure cache hits — not just a token few.
  EXPECT_GT(cached_rtm->decision_cache_hits(), cached_rtm->decision_cache_misses());
  EXPECT_GT(cached_rtm->decision_cache_hits(), 0u);
}

// --- the JPEG workload: same matrix, different SI shapes -------------------

TEST_F(ReplayEquivalenceFixture, JpegRtmAllSchedulersAllBudgets) {
  for (const auto& name : scheduler_names()) {
    for (const unsigned acs : {4u, 8u, 14u}) {
      expect_equivalent(
          *jpeg_set_, *jpeg_trace_,
          [&] {
            auto holder = std::make_unique<RtmHolder>();
            holder->scheduler = make_scheduler(name);
            RtmConfig config;
            config.container_count = acs;
            config.scheduler = holder->scheduler.get();
            holder->rtm = std::make_unique<RunTimeManager>(
                jpeg_set_, jpeg_trace_->hot_spots.size(), config);
            jpeg::seed_jpeg_forecasts(*jpeg_set_, *holder->rtm);
            return holder;
          },
          "jpeg:" + name + "@" + std::to_string(acs));
    }
  }
}

TEST_F(ReplayEquivalenceFixture, JpegMolenBaseline) {
  for (const unsigned acs : {4u, 8u, 14u}) {
    expect_equivalent(
        *jpeg_set_, *jpeg_trace_,
        [&] {
          MolenConfig config;
          config.container_count = acs;
          auto molen = std::make_unique<MolenBackend>(
              jpeg_set_, jpeg_trace_->hot_spots.size(), config);
          jpeg::seed_jpeg_forecasts(*jpeg_set_, *molen);
          return molen;
        },
        "jpeg:Molen@" + std::to_string(acs));
  }
}

TEST_F(ReplayEquivalenceFixture, JpegOneChipBaseline) {
  for (const unsigned acs : {4u, 8u, 14u}) {
    expect_equivalent(
        *jpeg_set_, *jpeg_trace_,
        [&] {
          OneChipConfig config;
          config.container_count = acs;
          auto onechip = std::make_unique<OneChipBackend>(
              jpeg_set_, jpeg_trace_->hot_spots.size(), config);
          jpeg::seed_jpeg_forecasts(*jpeg_set_, *onechip);
          return onechip;
        },
        "jpeg:OneChip@" + std::to_string(acs));
  }
}

TEST_F(ReplayEquivalenceFixture, JpegSoftwareOnlyBaseline) {
  expect_equivalent(*jpeg_set_, *jpeg_trace_,
                    [&] { return std::make_unique<SoftwareOnlyBackend>(jpeg_set_); },
                    "jpeg:SoftwareOnly");
}

TEST_F(ReplayEquivalenceFixture, JpegStaticAsipBaseline) {
  expect_equivalent(*jpeg_set_, *jpeg_trace_,
                    [&] { return std::make_unique<StaticAsipBackend>(jpeg_set_); },
                    "jpeg:StaticASIP");
}

// The RLE run form must cover exactly the execution sequence it encodes.
TEST_F(ReplayEquivalenceFixture, TraceRunsMatchExecutions) {
  ASSERT_TRUE(trace_->runs_built());
  for (const HotSpotInstance& inst : trace_->instances) {
    std::vector<SiId> expanded;
    for (const SiRun& run : inst.runs) {
      ASSERT_GT(run.count, 0u);
      for (std::uint32_t i = 0; i < run.count; ++i) expanded.push_back(run.si);
    }
    ASSERT_EQ(expanded, inst.executions);
    // Adjacent runs were coalesced: no two consecutive runs share an SI.
    for (std::size_t i = 1; i < inst.runs.size(); ++i)
      EXPECT_NE(inst.runs[i - 1].si, inst.runs[i].si);
  }
}

}  // namespace
}  // namespace rispp
