// Tests for the comparison systems: OneChip-like demand loading vs the
// Molen-like prefetch model, and their relation to RISPP.
#include <gtest/gtest.h>

#include "baselines/molen.h"
#include "baselines/onechip.h"
#include "baselines/software_only.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/hef.h"
#include "sim/executor.h"

namespace rispp {
namespace {

WorkloadTrace two_si_trace(const SpecialInstructionSet& set, int executions) {
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad, satd}, 8}};
  HotSpotInstance inst{0, {}, 1000};
  for (int i = 0; i < executions; ++i)
    inst.executions.push_back(i % 8 == 7 ? satd : sad);
  trace.instances.push_back(std::move(inst));
  return trace;
}

TEST(OneChip, DemandLoadingBeatsSoftwareButTrailsPrefetch) {
  const auto set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = two_si_trace(set, 20'000);

  SoftwareOnlyBackend software(&set);
  const Cycles sw = run_trace(trace, software).total_cycles;

  OneChipConfig oc;
  oc.container_count = 17;
  OneChipBackend onechip(&set, 3, oc);
  h264::seed_default_forecasts(set, onechip);
  const Cycles demand = run_trace(trace, onechip).total_cycles;

  MolenConfig mc;
  mc.container_count = 17;
  MolenBackend molen(&set, 3, mc);
  h264::seed_default_forecasts(set, molen);
  const Cycles prefetch = run_trace(trace, molen).total_cycles;

  EXPECT_LT(demand, sw);
  // Both load the same accelerators; demand loading can only start later.
  EXPECT_GE(demand, prefetch);
}

TEST(OneChip, LoadsNothingForUnexecutedSis) {
  const auto set = h264sis::build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  // Hot spot declares SAD+SATD, but only SAD ever executes.
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad, set.find("SATD").value()}, 8}};
  trace.instances = {HotSpotInstance{0, std::vector<SiId>(30'000, sad), 1000}};

  OneChipConfig oc;
  oc.container_count = 17;
  OneChipBackend onechip(&set, 3, oc);
  h264::seed_default_forecasts(set, onechip);
  const SimResult result = run_trace(trace, onechip);
  // Only SAD's selected molecule gets configured (3 atoms at most).
  EXPECT_LE(result.atom_loads, 3u);
}

TEST(OneChip, SingleImplementationNoIntermediates) {
  const auto set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = two_si_trace(set, 20'000);
  OneChipConfig oc;
  oc.container_count = 17;
  OneChipBackend onechip(&set, 3, oc);
  h264::seed_default_forecasts(set, onechip);
  SimStats stats(set.si_count());
  (void)run_trace(trace, onechip, &stats);
  const SiId sad = set.find("SAD").value();
  // One step: trap -> selected molecule (no gradual upgrading).
  EXPECT_LE(stats.latency_timeline(sad).size(), 2u);
}

TEST(Baselines, FullH264OrderingHolds) {
  // On a short real workload: software > OneChip >= Molen >= RISPP(HEF),
  // with a little tolerance for residency noise between the middle two.
  const auto set = h264sis::build_h264_si_set();
  h264::WorkloadConfig config;
  config.frames = 6;
  const auto workload = h264::generate_h264_workload(set, config);
  constexpr unsigned kAcs = 14;

  SoftwareOnlyBackend software(&set);
  const Cycles sw = run_trace(workload.trace, software).total_cycles;

  OneChipConfig oc;
  oc.container_count = kAcs;
  OneChipBackend onechip(&set, 3, oc);
  h264::seed_default_forecasts(set, onechip);
  const Cycles demand = run_trace(workload.trace, onechip).total_cycles;

  MolenConfig mc;
  mc.container_count = kAcs;
  MolenBackend molen(&set, 3, mc);
  h264::seed_default_forecasts(set, molen);
  const Cycles prefetch = run_trace(workload.trace, molen).total_cycles;

  HefScheduler hef;
  RtmConfig rtm_config;
  rtm_config.container_count = kAcs;
  rtm_config.scheduler = &hef;
  RunTimeManager rtm(&set, 3, rtm_config);
  h264::seed_default_forecasts(set, rtm);
  const Cycles rispp = run_trace(workload.trace, rtm).total_cycles;

  EXPECT_LT(demand, sw);
  EXPECT_LE(static_cast<double>(prefetch), static_cast<double>(demand) * 1.05);
  EXPECT_LT(rispp, prefetch);
}

}  // namespace
}  // namespace rispp
