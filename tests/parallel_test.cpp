// The sweep thread pool (base/parallel.h): every index runs exactly once,
// results are independent of the thread count, exceptions propagate, and
// nested calls degrade to serial instead of deadlocking.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/parallel.h"

namespace rispp {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads << " threads";
  }
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  auto sweep = [](ThreadPool& pool) {
    std::vector<std::uint64_t> out(257);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      std::uint64_t v = i + 1;
      for (int k = 0; k < 50; ++k) v = v * 6364136223846793005ULL + 1442695040888963407ULL;
      out[i] = v;
    });
    return out;
  };
  ThreadPool serial(1), two(2), four(4);
  const auto a = sweep(serial);
  EXPECT_EQ(a, sweep(two));
  EXPECT_EQ(a, sweep(four));
}

TEST(ParallelFor, EmptyAndSingleElement) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesException) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [&](std::size_t i) {
                            if (i == 42) throw std::runtime_error("cell failed");
                          }),
        std::runtime_error);
  }
}

TEST(ParallelFor, RethrowsLowestIndexFailureAndFinishesAllIndices) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(64);
    try {
      pool.parallel_for(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1);
        if (i == 7 || i == 55) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "7");
    }
    // The failing cells do not abort the rest of the sweep.
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, NestedCallsRunSerially) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(8 * 8);
  pool.parallel_for(8, [&](std::size_t outer) {
    // Reentrant use from inside a job must not deadlock on the single-job
    // pool; it falls back to a serial loop on the calling thread.
    pool.parallel_for(8, [&](std::size_t inner) { hits[outer * 8 + inner].fetch_add(1); });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, GlobalWrapperAndThreadCount) {
  EXPECT_GE(parallel_thread_count(), 1u);
  EXPECT_EQ(ThreadPool::global().thread_count(), parallel_thread_count());
  std::atomic<int> sum{0};
  parallel_for(10, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelFor, UnevenTasksAllComplete) {
  // Work-stealing: wildly uneven cell costs (index i costs O((i%32)^2)) must
  // still run every index exactly once and produce thread-count-independent
  // results — light owners steal from heavy deques.
  auto sweep = [](ThreadPool& pool) {
    std::vector<std::uint64_t> out(300);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      const std::uint64_t reps = (i % 32) * (i % 32) * 16 + 1;
      std::uint64_t v = i;
      for (std::uint64_t r = 0; r < reps; ++r) v = v * 6364136223846793005ULL + 1;
      out[i] = v;
    });
    return out;
  };
  ThreadPool serial(1), four(4), eight(8);
  const auto a = sweep(serial);
  EXPECT_EQ(a, sweep(four));
  EXPECT_EQ(a, sweep(eight));
}

TEST(ParallelFor, WavefrontStyleDependenciesDoNotDeadlock) {
  // The encoder's wavefront jobs spin-wait on earlier indices finishing.
  // The pool's distribution guarantees the smallest unfinished index is
  // always runnable (header comment in base/parallel.h); a chained job where
  // index i waits for i-1 must therefore finish at any thread count.
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 64;
    std::vector<std::atomic<int>> done(kN);
    pool.parallel_for(kN, [&](std::size_t i) {
      if (i > 0)
        while (done[i - 1].load(std::memory_order_acquire) == 0) std::this_thread::yield();
      done[i].store(1, std::memory_order_release);
    });
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(done[i].load(), 1) << "index " << i << " with " << threads << " threads";
  }
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  int calls = 0;
  pool.parallel_for(5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

}  // namespace
}  // namespace rispp
