// Randomized end-to-end robustness: generate random platforms (atom
// libraries, SI graphs, molecule sets), random workload traces and random
// run-time configurations; assert the system-wide invariants hold for every
// scheduler — no crashes, valid schedules, monotone quality relations, and
// the executor's accounting identities.
#include <gtest/gtest.h>

#include "base/prng.h"
#include "baselines/molen.h"
#include "baselines/software_only.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp {
namespace {

struct RandomPlatform {
  std::unique_ptr<SpecialInstructionSet> set;
  WorkloadTrace trace;
};

RandomPlatform make_random_platform(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  AtomLibrary lib;
  const std::size_t types = 2 + rng.bounded(6);
  for (std::size_t t = 0; t < types; ++t) {
    AtomType type;
    type.name = "T" + std::to_string(t);
    type.op_latency = 1 + rng.bounded(4);
    type.sw_op_cycles = type.op_latency * (4 + rng.bounded(24));
    type.slices = 150 + static_cast<unsigned>(rng.bounded(500));
    lib.add(type);
  }
  auto set = std::make_unique<SpecialInstructionSet>(std::move(lib));

  const std::size_t si_count = 1 + rng.bounded(5);
  for (std::size_t s = 0; s < si_count; ++s) {
    DataPathGraph g(&set->library());
    std::vector<NodeId> prev;
    const std::size_t layers = 1 + rng.bounded(3);
    for (std::size_t l = 0; l < layers; ++l) {
      const auto type = static_cast<AtomTypeId>(rng.bounded(types));
      const unsigned width = 2 + static_cast<unsigned>(rng.bounded(10));
      prev = g.add_layer(type, width, prev);
    }
    Molecule cap(types);
    const Molecule occ = g.occurrences();
    for (std::size_t t = 0; t < types; ++t)
      if (occ[t] > 0) cap[t] = static_cast<AtomCount>(1 + rng.bounded(std::min<int>(occ[t], 4)));
    set->add_si("SI" + std::to_string(s), std::move(g), cap,
                32 + rng.bounded(128));
  }

  // Random trace: 1-3 hot spots, random SI membership, random instances.
  RandomPlatform platform;
  const std::size_t hot_spots = 1 + rng.bounded(3);
  platform.trace.hot_spots.resize(hot_spots);
  for (std::size_t h = 0; h < hot_spots; ++h) {
    auto& info = platform.trace.hot_spots[h];
    info.name = "H" + std::to_string(h);
    info.per_execution_overhead = rng.bounded(16);
    for (SiId si = 0; si < set->si_count(); ++si)
      if (rng.bounded(2) == 0 || si == h % set->si_count()) info.sis.push_back(si);
  }
  const std::size_t instances = 2 + rng.bounded(6);
  for (std::size_t i = 0; i < instances; ++i) {
    HotSpotInstance inst;
    inst.hot_spot = static_cast<HotSpotId>(rng.bounded(hot_spots));
    inst.entry_overhead = rng.bounded(3000);
    const auto& sis = platform.trace.hot_spots[inst.hot_spot].sis;
    const std::size_t execs = 50 + rng.bounded(4000);
    for (std::size_t k = 0; k < execs; ++k)
      inst.executions.push_back(sis[rng.bounded(sis.size())]);
    platform.trace.instances.push_back(std::move(inst));
  }
  platform.set = std::move(set);
  return platform;
}

class RandomPlatformFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPlatformFuzz, AllSchedulersProduceValidSchedulesAndSaneRuns) {
  const RandomPlatform platform = make_random_platform(GetParam());
  const SpecialInstructionSet& set = *platform.set;
  Xoshiro256 rng(GetParam() ^ 0xF00D);

  // Scheduler-level fuzz: random selections and warm starts.
  for (int trial = 0; trial < 5; ++trial) {
    ScheduleRequest req;
    req.set = &set;
    req.expected_executions.assign(set.si_count(), 0);
    for (SiId si = 0; si < set.si_count(); ++si) {
      if (rng.bounded(3) == 0) continue;
      req.selected.push_back(
          SiRef{si, static_cast<MoleculeId>(rng.bounded(set.si(si).molecules.size()))});
      req.expected_executions[si] = rng.bounded(20'000);
    }
    Molecule avail(set.atom_type_count());
    for (std::size_t t = 0; t < avail.dimension(); ++t)
      avail[t] = static_cast<AtomCount>(rng.bounded(4));
    req.available = avail;
    for (const auto& name : scheduler_names()) {
      const Schedule schedule = make_scheduler(name)->schedule(req);
      EXPECT_TRUE(is_valid_schedule(req, schedule)) << name << " seed " << GetParam();
    }
  }

  // System-level fuzz: run the trace end to end on every backend.
  SoftwareOnlyBackend software(&set);
  const SimResult sw = run_trace(platform.trace, software);
  EXPECT_EQ(sw.si_executions, platform.trace.total_si_executions());

  const unsigned acs = 1 + static_cast<unsigned>(rng.bounded(12));
  for (const auto& name : scheduler_names()) {
    auto scheduler = make_scheduler(name);
    RtmConfig config;
    config.container_count = acs;
    config.scheduler = scheduler.get();
    config.enable_prefetch = rng.bounded(2) == 1;
    config.payback_horizon = static_cast<unsigned>(rng.bounded(3) * 16);
    RunTimeManager rtm(&set, platform.trace.hot_spots.size(), config);
    SimStats stats(set.si_count());
    const SimResult result = run_trace(platform.trace, rtm, &stats);
    // Accounting identities.
    EXPECT_EQ(result.si_executions, sw.si_executions) << name;
    EXPECT_EQ(stats.total_executions(), sw.si_executions) << name;
    // Hardware can only help.
    EXPECT_LE(result.total_cycles, sw.total_cycles) << name;
    // Latencies recorded are either trap or a molecule latency.
    for (SiId si = 0; si < set.si_count(); ++si) {
      for (const auto& point : stats.latency_timeline(si)) {
        bool known = point.latency == set.si(si).software_latency;
        for (const auto& m : set.si(si).molecules) known = known || m.latency == point.latency;
        EXPECT_TRUE(known) << name << " SI " << si << " latency " << point.latency;
      }
    }
  }

  // Molen never beats the best RISPP scheduler by more than noise (it has
  // strictly less capability: same selection, no upgrades).
  MolenConfig molen_config;
  molen_config.container_count = acs;
  MolenBackend molen(&set, platform.trace.hot_spots.size(), molen_config);
  const SimResult molen_result = run_trace(platform.trace, molen);
  EXPECT_LE(molen_result.total_cycles, sw.total_cycles);

  Cycles best_rispp = kMaxCycles;
  for (const auto& name : scheduler_names()) {
    auto scheduler = make_scheduler(name);
    RtmConfig config;
    config.container_count = acs;
    config.scheduler = scheduler.get();
    RunTimeManager rtm(&set, platform.trace.hot_spots.size(), config);
    best_rispp = std::min(best_rispp, run_trace(platform.trace, rtm).total_cycles);
  }
  // On tiny random traces the cross-hot-spot residency lottery can favour
  // either side by a few percent (see EXPERIMENTS.md); assert Molen never
  // wins big.
  EXPECT_LE(static_cast<double>(best_rispp),
            static_cast<double>(molen_result.total_cycles) * 1.15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlatformFuzz, ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace rispp
