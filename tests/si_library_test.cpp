// Tests of the SI abstraction and the Table 1 H.264 SI library.
#include <gtest/gtest.h>

#include <map>

#include "isa/candidates.h"
#include "isa/h264_si_library.h"
#include "isa/si.h"

namespace rispp {
namespace {

using h264sis::build_h264_si_set;

SpecialInstructionSet tiny_set() {
  AtomLibrary lib;
  lib.add({"A", 2, 40, 400});
  lib.add({"B", 1, 30, 300});
  SpecialInstructionSet set(std::move(lib));
  DataPathGraph g(&set.library());
  const auto a = g.add_layer(0, 4);
  g.add_layer(1, 2, a);
  set.add_si("T", std::move(g), Molecule{3, 2}, 50);
  return set;
}

TEST(SpecialInstructionSet, BasicAccessors) {
  const auto set = tiny_set();
  EXPECT_EQ(set.si_count(), 1u);
  EXPECT_EQ(set.atom_type_count(), 2u);
  EXPECT_TRUE(set.find("T").has_value());
  EXPECT_FALSE(set.find("U").has_value());
  const SpecialInstruction& si = set.si(0);
  EXPECT_EQ(si.name, "T");
  EXPECT_EQ(si.software_latency, 4u * 40 + 2u * 30 + 50);
  EXPECT_GE(si.molecules.size(), 2u);
}

TEST(SpecialInstructionSet, SoftwareMoleculeLatency) {
  const auto set = tiny_set();
  EXPECT_EQ(set.latency(SiRef{0, kSoftwareMolecule}), set.si(0).software_latency);
}

TEST(SpecialInstructionSet, FastestAvailableWalksUpgradePath) {
  const auto set = tiny_set();
  const SpecialInstruction& si = set.si(0);
  // Nothing loaded -> software.
  EXPECT_EQ(set.fastest_available(0, Molecule(2)), kSoftwareMolecule);
  // Full sup loaded -> the fastest molecule.
  Molecule all(2);
  for (const auto& m : si.molecules) all = join(all, m.atoms);
  const MoleculeId best = set.fastest_available(0, all);
  ASSERT_NE(best, kSoftwareMolecule);
  for (const auto& m : si.molecules) EXPECT_LE(si.molecule(best).latency, m.latency);
  // Availability is monotone: adding atoms never increases latency.
  Molecule partial(2);
  Cycles prev = set.fastest_available_latency(0, partial);
  for (AtomTypeId t = 0; t < 2; ++t) {
    for (int k = 0; k < 3; ++k) {
      ++partial[t];
      const Cycles now = set.fastest_available_latency(0, partial);
      EXPECT_LE(now, prev);
      prev = now;
    }
  }
}

TEST(SpecialInstructionSet, DuplicateSiNameThrows) {
  auto set = tiny_set();
  DataPathGraph g(&set.library());
  g.add_node(0);
  EXPECT_THROW(set.add_si("T", std::move(g), Molecule{1, 0}, 10), std::logic_error);
}

// ---- Table 1 ---------------------------------------------------------------

TEST(H264SiLibrary, Table1AtomTypesPerSi) {
  const auto set = build_h264_si_set();
  const std::map<std::string, unsigned> expected{
      {"SAD", 1},      {"SATD", 4},      {"(I)DCT", 3},
      {"(I)HT 2x2", 1}, {"(I)HT 4x4", 2}, {"MC 4", 3},
      {"IPred HDC", 2}, {"IPred VDC", 1}, {"LF_BS4", 2},
  };
  ASSERT_EQ(set.si_count(), expected.size());
  for (const auto& [name, types] : expected) {
    const auto id = set.find(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_EQ(set.si(*id).graph.occurrences().type_count(), types) << name;
  }
}

TEST(H264SiLibrary, Table1MoleculeCounts) {
  const auto set = build_h264_si_set();
  const std::map<std::string, std::size_t> expected{
      {"SAD", 3},      {"SATD", 20},     {"(I)DCT", 12},
      {"(I)HT 2x2", 2}, {"(I)HT 4x4", 7}, {"MC 4", 11},
      {"IPred HDC", 4}, {"IPred VDC", 3}, {"LF_BS4", 5},
  };
  for (const auto& [name, count] : expected) {
    const auto id = set.find(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_EQ(set.si(*id).molecules.size(), count) << name;
  }
}

TEST(H264SiLibrary, MoleculeSetsAreConsistent) {
  const auto set = build_h264_si_set();
  for (SiId id = 0; id < set.si_count(); ++id) {
    const auto& mols = set.si(id).molecules;
    for (const auto& m : mols) {
      EXPECT_LT(m.latency, set.si(id).software_latency);
      for (const auto& o : mols)
        if (o.atoms != m.atoms && leq(o.atoms, m.atoms)) {
          EXPECT_GT(o.latency, m.latency) << set.si(id).name;
        }
    }
  }
}

TEST(H264SiLibrary, ThirteenSharedAtomTypes) {
  const auto set = build_h264_si_set();
  EXPECT_EQ(set.atom_type_count(), 13u);
  // HadCore is shared between SATD, (I)HT 2x2 and (I)HT 4x4 — sharing is what
  // makes the ∪/∩ lattice across SIs non-trivial.
  const auto had = set.library().find("HadCore");
  ASSERT_TRUE(had.has_value());
  unsigned users = 0;
  for (SiId id = 0; id < set.si_count(); ++id)
    if (set.si(id).graph.occurrences()[*had] > 0) ++users;
  EXPECT_GE(users, 3u);
}

// ---- Candidates: equations (3) and (4) -------------------------------------

TEST(Candidates, SmallerCandidatesContainSelectedAndIntermediates) {
  const auto set = build_h264_si_set();
  const SiId satd = set.find("SATD").value();
  const auto& si = set.si(satd);
  const MoleculeId sel = static_cast<MoleculeId>(si.molecules.size() - 1);
  const std::vector<SiRef> selected{{satd, sel}};
  const auto cands = smaller_candidates(set, selected);
  EXPECT_FALSE(cands.empty());
  // The selected molecule itself is a candidate.
  EXPECT_NE(std::find(cands.begin(), cands.end(), SiRef{satd, sel}), cands.end());
  // Every candidate is <= the selected molecule and belongs to SATD.
  for (const SiRef& c : cands) {
    EXPECT_EQ(c.si, satd);
    EXPECT_TRUE(leq(si.molecule(c.mol).atoms, si.molecule(sel).atoms));
  }
}

TEST(Candidates, DuplicateSelectedSiThrows) {
  const auto set = build_h264_si_set();
  const std::vector<SiRef> selected{{0, 0}, {0, 1}};
  EXPECT_THROW(smaller_candidates(set, selected), std::logic_error);
}

TEST(Candidates, CleaningRemovesAvailableAndSlowCandidates) {
  const auto set = build_h264_si_set();
  const SiId sad = set.find("SAD").value();
  const auto& si = set.si(sad);
  ASSERT_EQ(si.molecules.size(), 3u);
  const std::vector<SiRef> selected{{sad, 2}};
  auto cands = smaller_candidates(set, selected);
  ASSERT_EQ(cands.size(), 3u);

  // With molecule 1 fully available, candidates 0 and 1 die: 0 is slower
  // than the best available, 1 needs no atoms.
  std::vector<Cycles> best(set.si_count(), kMaxCycles);
  best[sad] = si.molecule(1).latency;
  clean_candidates(set, cands, si.molecule(1).atoms, best);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].mol, 2);
}

TEST(Candidates, PaperM4Example) {
  // Recreate the §4.3 example: SI with m1=(1,2), m2=(2,2), m3=(3,3),
  // m4=(1,3); lat(m4) between lat(m2) and lat(m1). After m2 is composed, m4
  // is dead — but with warm start a=(0,3), m4 only needs one atom and lives.
  AtomLibrary lib;
  lib.add({"A1", 2, 100, 400});
  lib.add({"A2", 2, 100, 400});
  SpecialInstructionSet set(std::move(lib));
  // Graph shaped so the enumerated grid includes the four molecules.
  DataPathGraph g(&set.library());
  const auto l1 = g.add_layer(0, 6);
  g.add_layer(1, 6, l1);
  set.add_si("X", std::move(g), Molecule{3, 3}, 200);

  const auto& si = set.si(0);
  auto find_mol = [&](const Molecule& atoms) -> MoleculeId {
    for (MoleculeId m = 0; m < si.molecules.size(); ++m)
      if (si.molecules[m].atoms == atoms) return m;
    return kSoftwareMolecule;
  };
  const MoleculeId m2 = find_mol(Molecule{2, 2});
  const MoleculeId m4 = find_mol(Molecule{1, 3});
  ASSERT_NE(m2, kSoftwareMolecule);
  ASSERT_NE(m4, kSoftwareMolecule);
  ASSERT_GT(si.molecule(m4).latency, si.molecule(m2).latency);

  // m2 composed: m4 does not survive cleaning.
  EXPECT_FALSE(candidate_is_live(set, SiRef{0, m4}, si.molecule(m2).atoms,
                                 si.molecule(m2).latency));
  // Warm start (0,3): m4 needs one atom, m2 needs two — m4 is live while the
  // best latency is still the trap.
  EXPECT_TRUE(candidate_is_live(set, SiRef{0, m4}, Molecule{0, 3}, si.software_latency));
  EXPECT_EQ(missing(Molecule{0, 3}, si.molecule(m4).atoms).determinant(), 1u);
  EXPECT_EQ(missing(Molecule{0, 3}, si.molecule(m2).atoms).determinant(), 2u);
}

}  // namespace
}  // namespace rispp
