// Round-trip tests: the decoder reproduces the encoder's luma
// reconstruction bit-exactly, frame after frame (drift-free closed loop).
#include <gtest/gtest.h>

#include "h264/decoder.h"
#include "h264/encoder.h"
#include "h264/synthetic_video.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"

namespace rispp::h264 {
namespace {

TEST(Decoder, LumaReconstructionMatchesEncoderExactly) {
  const auto set = h264sis::build_h264_si_set();
  const H264SiIds ids = resolve_si_ids(set);
  VideoConfig video_config;
  video_config.width = 96;
  video_config.height = 64;
  video_config.object_count = 3;
  SyntheticVideo video(video_config);

  EncoderConfig config;
  Encoder encoder(config, video_config.width, video_config.height, ids);

  Plane decoder_ref(video_config.width, video_config.height);
  for (int frame = 0; frame < 5; ++frame) {
    const Frame input = video.next();
    const FrameResult result = encoder.encode_frame(input, nullptr);

    BitReader reader(encoder.last_frame_bytes());
    const DecodedFrame decoded = decode_frame_luma(reader, decoder_ref, config);

    EXPECT_EQ(decoded.intra_mbs, result.intra_mbs) << "frame " << frame;
    EXPECT_EQ(decoded.inter_mbs, result.inter_mbs) << "frame " << frame;
    // Bit-exact luma reconstruction, including the deblocking pass.
    int mismatches = 0;
    for (int y = 0; y < video_config.height; ++y)
      for (int x = 0; x < video_config.width; ++x)
        if (decoded.luma.at(x, y) != encoder.reconstructed().y.at(x, y)) ++mismatches;
    ASSERT_EQ(mismatches, 0) << "frame " << frame;
    decoder_ref = decoded.luma;  // closed loop: decode from decoded reference
  }
}

TEST(Decoder, BitrateIsPlausible) {
  const auto set = h264sis::build_h264_si_set();
  WorkloadConfig config;
  config.frames = 4;
  config.video.width = 176;  // QCIF for speed
  config.video.height = 144;
  const auto result = generate_h264_workload(set, config);
  // A lossy QCIF stream at QP 28 should land far below raw size and above
  // absurdly-small: raw 176*144*8*30 ~ 6 Mbps; expect tens to hundreds kbps
  // for luma residuals + headers.
  EXPECT_GT(result.mean_bitrate_kbps, 20.0);
  EXPECT_LT(result.mean_bitrate_kbps, 4'000.0);
}

TEST(Decoder, TruncatedStreamThrows) {
  const auto set = h264sis::build_h264_si_set();
  const H264SiIds ids = resolve_si_ids(set);
  VideoConfig video_config;
  video_config.width = 48;
  video_config.height = 32;
  SyntheticVideo video(video_config);
  EncoderConfig config;
  Encoder encoder(config, video_config.width, video_config.height, ids);
  (void)encoder.encode_frame(video.next(), nullptr);
  auto bytes = encoder.last_frame_bytes();
  ASSERT_GT(bytes.size(), 8u);
  bytes.resize(bytes.size() / 4);  // chop the stream
  BitReader reader(std::move(bytes));
  const Plane ref(video_config.width, video_config.height);
  EXPECT_THROW((void)decode_frame_luma(reader, ref, config), std::logic_error);
}

}  // namespace
}  // namespace rispp::h264
