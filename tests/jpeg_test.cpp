// Tests for the second platform instance (JPEG-style compressor): library
// consistency, workload generation, and the cross-domain scheduler sanity.
#include <gtest/gtest.h>

#include "baselines/software_only.h"
#include "jpeg/jpeg_si_library.h"
#include "jpeg/jpeg_workload.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp::jpeg {
namespace {

using jpegsis::build_jpeg_si_set;

JpegWorkloadConfig small_config() {
  JpegWorkloadConfig config;
  config.images = 6;
  config.width = 128;
  config.height = 96;
  return config;
}

TEST(JpegLibrary, FiveSisOverSixAtomTypes) {
  const auto set = build_jpeg_si_set();
  EXPECT_EQ(set.si_count(), 5u);
  EXPECT_EQ(set.atom_type_count(), 6u);
  for (const char* name : {jpegsis::kCsc, jpegsis::kDownsample, jpegsis::kFdct,
                           jpegsis::kQuant, jpegsis::kRle})
    EXPECT_TRUE(set.find(name).has_value()) << name;
}

TEST(JpegLibrary, MoleculeSetsAreConsistent) {
  const auto set = build_jpeg_si_set();
  for (SiId id = 0; id < set.si_count(); ++id) {
    const auto& si = set.si(id);
    EXPECT_GE(si.molecules.size(), 2u) << si.name;
    for (const auto& m : si.molecules) {
      EXPECT_LT(m.latency, si.software_latency);
      for (const auto& o : si.molecules) {
        if (o.atoms != m.atoms && leq(o.atoms, m.atoms)) {
          EXPECT_GT(o.latency, m.latency);
        }
      }
    }
  }
}

TEST(JpegWorkload, ThreeHotSpotsPerImage) {
  const auto set = build_jpeg_si_set();
  const auto workload = generate_jpeg_workload(set, small_config());
  EXPECT_EQ(workload.trace.instances.size(), 6u * 3u);
  EXPECT_GT(workload.total_blocks, 0u);
  EXPECT_GT(workload.mean_activity, 0.0);
  // 128x96 -> 48 MCUs -> 288 blocks per image.
  EXPECT_EQ(workload.total_blocks, 6u * 288u);
}

TEST(JpegWorkload, RleCountsAreDataDependent) {
  const auto set = build_jpeg_si_set();
  const auto workload = generate_jpeg_workload(set, small_config());
  const SiId rle = set.find(jpegsis::kRle).value();
  std::vector<std::size_t> ec_counts;
  for (const auto& inst : workload.trace.instances)
    if (inst.hot_spot == kHotSpotEc) {
      std::size_t n = 0;
      for (SiId si : inst.executions)
        if (si == rle) ++n;
      ec_counts.push_back(n);
    }
  ASSERT_EQ(ec_counts.size(), 6u);
  const auto [lo, hi] = std::minmax_element(ec_counts.begin(), ec_counts.end());
  EXPECT_GT(*hi, *lo);  // busy images produce more RLE work
}

TEST(JpegWorkload, DeterministicForEqualConfig) {
  const auto set = build_jpeg_si_set();
  const auto a = generate_jpeg_workload(set, small_config());
  const auto b = generate_jpeg_workload(set, small_config());
  ASSERT_EQ(a.trace.instances.size(), b.trace.instances.size());
  for (std::size_t i = 0; i < a.trace.instances.size(); ++i)
    EXPECT_EQ(a.trace.instances[i].executions, b.trace.instances[i].executions);
}

TEST(JpegPlatform, RisppBeatsSoftwareAndHefIsCompetitive) {
  const auto set = build_jpeg_si_set();
  const auto workload = generate_jpeg_workload(set, small_config());

  SoftwareOnlyBackend software(&set);
  const Cycles sw = run_trace(workload.trace, software).total_cycles;

  Cycles best_other = kMaxCycles;
  Cycles hef = 0;
  for (const auto& name : scheduler_names()) {
    auto scheduler = make_scheduler(name);
    RtmConfig config;
    config.container_count = 10;
    config.scheduler = scheduler.get();
    RunTimeManager rtm(&set, workload.trace.hot_spots.size(), config);
    seed_jpeg_forecasts(set, rtm);
    const Cycles cycles = run_trace(workload.trace, rtm).total_cycles;
    if (name == "HEF") hef = cycles;
    else best_other = std::min(best_other, cycles);
  }
  EXPECT_LT(hef, sw / 2);  // hardware pays off on this domain too
  EXPECT_LE(static_cast<double>(hef), static_cast<double>(best_other) * 1.05);
}

}  // namespace
}  // namespace rispp::jpeg
