// Tests for data-path graphs, the resource-constrained list scheduler and
// the Pareto molecule enumeration.
#include <gtest/gtest.h>

#include "base/prng.h"
#include "dpg/atom_library.h"
#include "dpg/enumerate.h"
#include "dpg/graph.h"
#include "dpg/list_scheduler.h"

namespace rispp {
namespace {

AtomLibrary two_type_library() {
  AtomLibrary lib;
  lib.add({"A", 2, 20, 400});
  lib.add({"B", 3, 30, 500});
  return lib;
}

TEST(AtomLibrary, AddFindAndDuplicates) {
  AtomLibrary lib = two_type_library();
  EXPECT_EQ(lib.size(), 2u);
  EXPECT_EQ(lib.find("A").value(), 0);
  EXPECT_EQ(lib.find("B").value(), 1);
  EXPECT_FALSE(lib.find("C").has_value());
  EXPECT_THROW(lib.add({"A", 1, 1, 1}), std::logic_error);
  EXPECT_EQ(lib.type(1).op_latency, 3u);
}

TEST(DataPathGraph, OccurrencesAndSoftwareCycles) {
  AtomLibrary lib = two_type_library();
  DataPathGraph g(&lib);
  const auto a = g.add_layer(0, 3);
  g.add_layer(1, 2, a);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.occurrences(), (Molecule{3, 2}));
  EXPECT_EQ(g.software_cycles(), 3u * 20 + 2u * 30);
  // Critical path: one A (2) then one B (3).
  EXPECT_EQ(g.critical_path(), 5u);
}

TEST(DataPathGraph, ForwardOnlyPredecessors) {
  AtomLibrary lib = two_type_library();
  DataPathGraph g(&lib);
  const NodeId n0 = g.add_node(0);
  EXPECT_THROW(g.add_node(0, {n0 + 5}), std::logic_error);
}

TEST(ListScheduler, SerializesOnSingleInstance) {
  AtomLibrary lib = two_type_library();
  DataPathGraph g(&lib);
  g.add_layer(0, 4);  // 4 independent A-ops, latency 2 each
  EXPECT_EQ(molecule_latency(g, Molecule{1, 0}), 8u);
  EXPECT_EQ(molecule_latency(g, Molecule{2, 0}), 4u);
  EXPECT_EQ(molecule_latency(g, Molecule{4, 0}), 2u);
}

TEST(ListScheduler, RespectsDependencies) {
  AtomLibrary lib = two_type_library();
  DataPathGraph g(&lib);
  const NodeId a = g.add_node(0);
  const NodeId b = g.add_node(1, {a});
  g.add_node(0, {b});
  // Chain A->B->A: 2+3+2 regardless of instance count.
  EXPECT_EQ(molecule_latency(g, Molecule{3, 3}), 7u);
  EXPECT_EQ(molecule_latency(g, Molecule{1, 1}), 7u);
}

TEST(ListScheduler, MissingInstanceForUsedTypeThrows) {
  AtomLibrary lib = two_type_library();
  DataPathGraph g(&lib);
  g.add_node(1);
  EXPECT_THROW(molecule_latency(g, Molecule{1, 0}), std::logic_error);
}

TEST(ListScheduler, StartTimesAreConsistent) {
  AtomLibrary lib = two_type_library();
  DataPathGraph g(&lib);
  const auto layer1 = g.add_layer(0, 3);
  const auto layer2 = g.add_layer(1, 3, layer1);
  const Molecule instances{2, 1};
  const ListScheduleResult r = list_schedule(g, instances);
  // Every node starts after all predecessors finished.
  for (NodeId id = 0; id < g.node_count(); ++id)
    for (NodeId p : g.node(id).preds)
      EXPECT_GE(r.start[id], r.start[p] + lib.type(g.node(p).type).op_latency);
  // Resource constraint: no more than `instances[t]` overlapping ops.
  for (AtomTypeId t = 0; t < 2; ++t) {
    for (Cycles time = 0; time < r.makespan; ++time) {
      unsigned busy = 0;
      for (NodeId id = 0; id < g.node_count(); ++id) {
        if (g.node(id).type != t) continue;
        const Cycles lat = lib.type(t).op_latency;
        if (r.start[id] <= time && time < r.start[id] + lat) ++busy;
      }
      EXPECT_LE(busy, instances[t]);
    }
  }
  (void)layer2;
}

// Property: latency is monotone non-increasing in the instance vector and
// bounded below by the critical path.
class ListSchedulerMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ListSchedulerMonotonicity, MoreInstancesNeverHurt) {
  Xoshiro256 rng(GetParam());
  AtomLibrary lib;
  const std::size_t types = 2 + rng.bounded(3);
  for (std::size_t t = 0; t < types; ++t)
    lib.add({"T" + std::to_string(t), 1 + rng.bounded(4), 10, 100});

  DataPathGraph g(&lib);
  const std::size_t layers = 1 + rng.bounded(4);
  std::vector<NodeId> prev;
  for (std::size_t l = 0; l < layers; ++l) {
    const auto type = static_cast<AtomTypeId>(rng.bounded(types));
    const unsigned width = 1 + static_cast<unsigned>(rng.bounded(6));
    prev = g.add_layer(type, width, prev);
  }

  const Molecule occ = g.occurrences();
  Molecule lo(types), hi(types);
  for (std::size_t t = 0; t < types; ++t) {
    if (occ[t] == 0) continue;
    lo[t] = static_cast<AtomCount>(1 + rng.bounded(occ[t]));
    hi[t] = static_cast<AtomCount>(lo[t] + rng.bounded(occ[t] - lo[t] + 1));
  }
  const Cycles lat_lo = molecule_latency(g, lo);
  const Cycles lat_hi = molecule_latency(g, hi);
  EXPECT_LE(lat_hi, lat_lo) << "lo=" << lo.to_string() << " hi=" << hi.to_string();
  EXPECT_GE(lat_hi, g.critical_path());
  EXPECT_LE(lat_lo, g.software_cycles());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ListSchedulerMonotonicity,
                         ::testing::Range<std::uint64_t>(1, 49));

// Graham-style quality bound: a list schedule never exceeds the critical
// path plus the per-type serialization work sum(ceil(work_t / m_t)) — the
// classic argument that at every cycle either the critical path advances or
// some needed type has all instances busy.
class ListSchedulerQualityBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ListSchedulerQualityBound, WithinCriticalPathPlusTypeWork) {
  Xoshiro256 rng(GetParam() * 7919);
  AtomLibrary lib;
  const std::size_t types = 1 + rng.bounded(4);
  for (std::size_t t = 0; t < types; ++t)
    lib.add({"Q" + std::to_string(t), 1 + rng.bounded(5), 10, 100});

  DataPathGraph g(&lib);
  // Random layered DAG with random cross-layer edges.
  std::vector<NodeId> prev;
  const std::size_t layers = 1 + rng.bounded(5);
  for (std::size_t l = 0; l < layers; ++l) {
    const auto type = static_cast<AtomTypeId>(rng.bounded(types));
    const unsigned width = 1 + static_cast<unsigned>(rng.bounded(5));
    std::vector<NodeId> layer;
    for (unsigned i = 0; i < width; ++i) {
      std::vector<NodeId> preds;
      for (NodeId p : prev)
        if (rng.bounded(2) == 0) preds.push_back(p);
      layer.push_back(g.add_node(type, preds));
    }
    prev = layer;
  }

  const Molecule occ = g.occurrences();
  Molecule instances(types);
  for (std::size_t t = 0; t < types; ++t)
    if (occ[t] > 0) instances[t] = static_cast<AtomCount>(1 + rng.bounded(occ[t]));

  const Cycles makespan = molecule_latency(g, instances);
  Cycles bound = g.critical_path();
  for (std::size_t t = 0; t < types; ++t) {
    if (occ[t] == 0) continue;
    const Cycles work = static_cast<Cycles>(occ[t]) * lib.type(t).op_latency;
    bound += (work + instances[t] - 1) / instances[t];
  }
  EXPECT_LE(makespan, bound);
  EXPECT_GE(makespan, g.critical_path());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ListSchedulerQualityBound,
                         ::testing::Range<std::uint64_t>(1, 65));

TEST(Enumerate, SingleTypeGridIsFullyKept) {
  AtomLibrary lib = two_type_library();
  DataPathGraph g(&lib);
  g.add_layer(0, 6);
  EnumerationOptions opt;
  opt.instance_caps = Molecule{3, 0};
  const auto mols = enumerate_molecules(g, opt);
  // ceil(6/1)=6, ceil(6/2)=3, ceil(6/3)=2 ops * 2 cycles: all distinct.
  ASSERT_EQ(mols.size(), 3u);
  EXPECT_EQ(mols[0].atoms, (Molecule{1, 0}));
  EXPECT_EQ(mols[0].latency, 12u);
  EXPECT_EQ(mols[2].atoms, (Molecule{3, 0}));
  EXPECT_EQ(mols[2].latency, 4u);
}

TEST(Enumerate, DominatedCandidatesArePruned) {
  AtomLibrary lib = two_type_library();
  DataPathGraph g(&lib);
  // 2 independent A ops: 3 instances can never beat 2.
  g.add_layer(0, 2);
  EnumerationOptions opt;
  opt.instance_caps = Molecule{3, 0};
  const auto mols = enumerate_molecules(g, opt);
  ASSERT_EQ(mols.size(), 2u);
  EXPECT_EQ(mols[1].atoms, (Molecule{2, 0}));
}

TEST(Enumerate, ParetoConsistencyProperty) {
  // No kept molecule may have a strictly smaller sibling that is as fast.
  AtomLibrary lib = two_type_library();
  DataPathGraph g(&lib);
  const auto a = g.add_layer(0, 5);
  g.add_layer(1, 4, a);
  EnumerationOptions opt;
  opt.instance_caps = Molecule{4, 4};
  const auto mols = enumerate_molecules(g, opt);
  EXPECT_GE(mols.size(), 2u);
  for (const auto& m : mols)
    for (const auto& o : mols)
      if (o.atoms != m.atoms && leq(o.atoms, m.atoms)) {
        EXPECT_GT(o.latency, m.latency);
      }
}

TEST(Enumerate, HardwareMoleculeNeedsEveryUsedType) {
  AtomLibrary lib = two_type_library();
  DataPathGraph g(&lib);
  const auto a = g.add_layer(0, 2);
  g.add_layer(1, 2, a);
  EnumerationOptions opt;
  opt.instance_caps = Molecule{2, 2};
  for (const auto& m : enumerate_molecules(g, opt)) {
    EXPECT_GE(m.atoms[0], 1);
    EXPECT_GE(m.atoms[1], 1);
  }
}

}  // namespace
}  // namespace rispp
