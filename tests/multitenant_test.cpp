// Multi-tenant fabric arbitration (DESIGN §9).
//
// The load-bearing test is SoloEquivalencePerScheduler: a 1-tenant arbiter
// must be *bit-identical* to the pre-arbiter solo RunTimeManager — same
// SimResult, same SimStats buckets and latency timelines — across all four
// schedulers and both replay paths. The arbiter indirection (ContainerFile
// quotas, port grants through try_start, the co-simulation loop) may only
// matter when a second tenant exists.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/parallel.h"
#include "fleet/session.h"
#include "fleet/tenant_fleet.h"
#include "fleet/trace_repository.h"
#include "isa/h264_si_library.h"
#include "rtm/fabric_arbiter.h"
#include "rtm/run_time_manager.h"
#include "rtm/tenant_sim.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp {
namespace {

using fleet::Content;
using fleet::SessionSpec;
using fleet::TraceEntry;
using fleet::TraceRepository;

SessionSpec small_session(Content content, int frames, const std::string& scheduler,
                          unsigned acs) {
  SessionSpec spec;
  spec.content = content;
  spec.frames = frames;
  spec.width = content == Content::kH264 ? 96 : 128;
  spec.height = content == Content::kH264 ? 64 : 96;
  spec.scheduler = scheduler;
  spec.container_count = acs;
  return spec;
}

void seed_from_entry(const TraceEntry& entry, RunTimeManager& rtm) {
  for (HotSpotId hs = 0; hs < entry.seeds.size(); ++hs)
    for (SiId si = 0; si < entry.seeds[hs].size(); ++si)
      if (entry.seeds[hs][si] != 0) rtm.seed_forecast(hs, si, entry.seeds[hs][si]);
}

void expect_stats_equal(const SimStats& solo, const SimStats& tenant,
                        std::size_t si_count) {
  ASSERT_EQ(solo.bucket_count(), tenant.bucket_count());
  for (SiId si = 0; si < si_count; ++si) {
    EXPECT_EQ(solo.executions(si), tenant.executions(si)) << "si " << si;
    for (std::size_t b = 0; b < solo.bucket_count(); ++b)
      ASSERT_EQ(solo.bucket_executions(si, b), tenant.bucket_executions(si, b))
          << "si " << si << " bucket " << b;
    const auto& st = solo.latency_timeline(si);
    const auto& tt = tenant.latency_timeline(si);
    ASSERT_EQ(st.size(), tt.size()) << "si " << si;
    for (std::size_t p = 0; p < st.size(); ++p) {
      EXPECT_EQ(st[p].at, tt[p].at) << "si " << si;
      EXPECT_EQ(st[p].latency, tt[p].latency) << "si " << si;
    }
  }
}

/// Replays `entry` through a 1-tenant arbiter and through the solo path and
/// demands bit-identical results.
void check_one_tenant_equivalence(const TraceEntry& entry, const SessionSpec& spec,
                                  bool collect_stats) {
  SCOPED_TRACE(spec.scheduler + (collect_stats ? " stats" : " span"));
  const auto solo_scheduler = make_scheduler(spec.scheduler);
  RtmConfig solo_config;
  solo_config.container_count = spec.container_count;
  solo_config.scheduler = solo_scheduler.get();
  solo_config.forecast_mode = spec.forecast_mode;
  RunTimeManager solo_rtm(&entry.set, entry.trace.hot_spots.size(), solo_config);
  seed_from_entry(entry, solo_rtm);
  SimStats solo_stats(entry.set.si_count());
  const SimResult solo =
      run_trace(entry.trace, solo_rtm, collect_stats ? &solo_stats : nullptr);

  ArbiterConfig arb_config;
  arb_config.total_containers = spec.container_count;
  FabricArbiter arbiter(arb_config);
  TenantConfig tenant_config;
  tenant_config.quota = spec.container_count;
  const TenantId tenant = arbiter.add_tenant(tenant_config);
  const auto scheduler = make_scheduler(spec.scheduler);
  RtmConfig config;
  config.scheduler = scheduler.get();
  config.forecast_mode = spec.forecast_mode;
  config.arbiter = &arbiter;
  config.tenant = tenant;
  RunTimeManager rtm(&entry.set, entry.trace.hot_spots.size(), config);
  seed_from_entry(entry, rtm);
  SimStats tenant_stats(entry.set.si_count());
  TenantRun run;
  run.tenant = tenant;
  run.trace = &entry.trace;
  run.rtm = &rtm;
  run.stats = collect_stats ? &tenant_stats : nullptr;
  std::vector<TenantRun> runs{run};
  const std::vector<SimResult> results = run_tenants(arbiter, std::span<TenantRun>(runs));
  ASSERT_EQ(results.size(), 1u);

  EXPECT_EQ(solo.total_cycles, results[0].total_cycles);
  EXPECT_EQ(solo.si_executions, results[0].si_executions);
  EXPECT_EQ(solo.atom_loads, results[0].atom_loads);
  EXPECT_EQ(solo.hot_spot_cycles, results[0].hot_spot_cycles);
  if (collect_stats) expect_stats_equal(solo_stats, tenant_stats, entry.set.si_count());
}

TEST(Multitenant, SoloEquivalencePerScheduler) {
  TraceRepository repo;
  for (const std::string& name : scheduler_names()) {
    const SessionSpec h264 = small_session(Content::kH264, 2, name, 8);
    check_one_tenant_equivalence(repo.get(h264), h264, /*collect_stats=*/true);
    check_one_tenant_equivalence(repo.get(h264), h264, /*collect_stats=*/false);
    const SessionSpec jpeg = small_session(Content::kJpeg, 1, name, 6);
    check_one_tenant_equivalence(repo.get(jpeg), jpeg, /*collect_stats=*/true);
  }
}

/// Builds a bound 2-tenant arbiter over the H.264 atom library for the port
/// unit tests. The RTMs exist only to bind the tenants' container views.
struct TwoTenantFixture {
  std::unique_ptr<SpecialInstructionSet> set;
  std::unique_ptr<AtomScheduler> scheduler;
  FabricArbiter arbiter;
  TenantId a;
  TenantId b;
  std::unique_ptr<RunTimeManager> rtm_a;
  std::unique_ptr<RunTimeManager> rtm_b;

  TwoTenantFixture(unsigned weight_a, unsigned weight_b, ArbiterConfig config)
      : set(std::make_unique<SpecialInstructionSet>(h264sis::build_h264_si_set())),
        scheduler(make_scheduler("HEF")),
        arbiter(config) {
    TenantConfig ta;
    ta.quota = config.total_containers / 2;
    ta.weight = weight_a;
    TenantConfig tb = ta;
    tb.weight = weight_b;
    a = arbiter.add_tenant(ta);
    b = arbiter.add_tenant(tb);
    RtmConfig rc;
    rc.scheduler = scheduler.get();
    rc.arbiter = &arbiter;
    rc.tenant = a;
    rtm_a = std::make_unique<RunTimeManager>(set.get(), 1, rc);
    rc.tenant = b;
    rtm_b = std::make_unique<RunTimeManager>(set.get(), 1, rc);
  }
};

TEST(Multitenant, StarvationBoundCapsConsecutiveDenials) {
  // Tenant A's weight dwarfs B's, and B's round-robin pass starts far ahead
  // (it took one early grant): pure stride scheduling would deny B for ~1000
  // epochs. The starvation bound must hand B the port after at most
  // `starvation_bound` consecutive lost epochs.
  ArbiterConfig config;
  config.total_containers = 8;
  config.starvation_bound = 4;
  TwoTenantFixture fx(/*weight_a=*/1000, /*weight_b=*/1, config);
  FabricArbiter& arbiter = fx.arbiter;
  const Cycles load = arbiter.load_cycles(fx.b, 0);
  ASSERT_GT(load, 0u);

  // B takes one free grant, pushing its pass a full stride (1<<16) ahead.
  Cycles now = 0;
  ASSERT_FALSE(arbiter.try_start(fx.b, 0, 0, now).has_value());
  now += load;
  arbiter.retire(fx.b, now);

  unsigned b_denials = 0;
  bool b_granted = false;
  for (int round = 0; round < 30 && !b_granted; ++round) {
    // A asks first each round; B asks one cycle into A's load.
    const auto a_result = arbiter.try_start(fx.a, 0, 0, now);
    const auto b_result = arbiter.try_start(fx.b, 0, 0, now + 1);
    if (!b_result.has_value()) {
      b_granted = true;
      break;
    }
    ++b_denials;
    EXPECT_GT(*b_result, now) << "retry hint must make progress";
    if (!a_result.has_value()) {
      now += load;
      arbiter.retire(fx.a, now);
    } else {
      now = *a_result;
    }
  }
  EXPECT_TRUE(b_granted);
  EXPECT_LE(b_denials, config.starvation_bound + 1);
  EXPECT_GT(arbiter.port_wait_cycles(), 0u);
  arbiter.check_invariants();
}

TEST(Multitenant, RetiredClaimantsLeaveTheRoundRobin) {
  // B parks a claim (denied while A's load is in flight) and then retires.
  // A must win the next free port outright — a dead claimant may never block
  // the fabric.
  ArbiterConfig config;
  config.total_containers = 8;
  TwoTenantFixture fx(/*weight_a=*/1, /*weight_b=*/1000, config);
  FabricArbiter& arbiter = fx.arbiter;
  const Cycles load = arbiter.load_cycles(fx.a, 0);

  ASSERT_FALSE(arbiter.try_start(fx.a, 0, 0, 0).has_value());
  ASSERT_TRUE(arbiter.try_start(fx.b, 0, 0, 1).has_value());  // denied: port busy
  arbiter.retire(fx.a, load);
  arbiter.retire_tenant(fx.b);
  // With B retired its claim is gone; A (the only live tenant) gets the port
  // even though B's pass would have won.
  EXPECT_FALSE(arbiter.try_start(fx.a, 0, 1, load).has_value());
  arbiter.check_invariants();
}

TEST(Multitenant, QuotaFloorsSurviveWeightedRebalance) {
  // A one-sided benefit signal under kBenefitWeighted: every rebalance pulls
  // containers toward the heavy tenant, but the light tenant — while live —
  // never drops below its floor, and the fabric never oversubscribes.
  ArbiterConfig config;
  config.total_containers = 8;
  config.partition = PartitionMode::kBenefitWeighted;
  config.rebalance_period = 1;
  TwoTenantFixture fx(/*weight_a=*/1, /*weight_b=*/1, config);
  FabricArbiter& arbiter = fx.arbiter;
  const unsigned floor_b = arbiter.floor(fx.b);
  ASSERT_GE(floor_b, 1u);
  for (int step = 0; step < 16; ++step) {
    arbiter.on_decision_point(fx.a, 1'000'000, static_cast<Cycles>(step) * 100);
    arbiter.on_decision_point(fx.b, 0, static_cast<Cycles>(step) * 100 + 50);
    arbiter.check_invariants();
    EXPECT_GE(arbiter.quota(fx.b), floor_b) << "step " << step;
    EXPECT_LE(arbiter.quota(fx.a) + arbiter.quota(fx.b), config.total_containers);
  }
  // The signal did move containers: the heavy tenant grew past its static
  // half, the light tenant sits exactly on its floor.
  EXPECT_GT(arbiter.quota(fx.a), config.total_containers / 2);
  EXPECT_EQ(arbiter.quota(fx.b), floor_b);
  EXPECT_EQ(arbiter.quota(fx.a) + arbiter.quota(fx.b), config.total_containers);
}

TEST(Multitenant, WeightedCoSimulationHoldsInvariantsEndToEnd) {
  // A heavy and a light tenant co-simulated under kBenefitWeighted: both
  // finish, and the arbiter's invariants hold before and after (floors only
  // bind *live* tenants — a retired tenant surrenders its containers at the
  // next rebalance, which is what lets the survivor absorb the fabric).
  TraceRepository repo;
  const SessionSpec heavy = small_session(Content::kH264, 3, "HEF", 6);
  const SessionSpec light = small_session(Content::kJpeg, 1, "SJF", 6);
  const TraceEntry& heavy_entry = repo.get(heavy);
  const TraceEntry& light_entry = repo.get(light);

  ArbiterConfig config;
  config.total_containers = 12;
  config.partition = PartitionMode::kBenefitWeighted;
  config.rebalance_period = 2;
  FabricArbiter arbiter(config);
  TenantConfig tenant;
  tenant.quota = 6;
  tenant.floor = 2;
  const TenantId t_heavy = arbiter.add_tenant(tenant);
  const TenantId t_light = arbiter.add_tenant(tenant);

  const auto hef = make_scheduler("HEF");
  const auto sjf = make_scheduler("SJF");
  RtmConfig rc_heavy;
  rc_heavy.scheduler = hef.get();
  rc_heavy.arbiter = &arbiter;
  rc_heavy.tenant = t_heavy;
  RunTimeManager rtm_heavy(&heavy_entry.set, heavy_entry.trace.hot_spots.size(), rc_heavy);
  seed_from_entry(heavy_entry, rtm_heavy);
  RtmConfig rc_light;
  rc_light.scheduler = sjf.get();
  rc_light.arbiter = &arbiter;
  rc_light.tenant = t_light;
  RunTimeManager rtm_light(&light_entry.set, light_entry.trace.hot_spots.size(), rc_light);
  seed_from_entry(light_entry, rtm_light);

  std::vector<TenantRun> runs(2);
  runs[0] = {t_heavy, &heavy_entry.trace, &rtm_heavy, nullptr};
  runs[1] = {t_light, &light_entry.trace, &rtm_light, nullptr};
  arbiter.check_invariants();
  const auto results = run_tenants(arbiter, std::span<TenantRun>(runs));
  arbiter.check_invariants();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].total_cycles, 0u);
  EXPECT_GT(results[1].total_cycles, 0u);
  EXPECT_LE(arbiter.quota(t_heavy) + arbiter.quota(t_light), config.total_containers);
}

TEST(Multitenant, StaticContentionNeverBeatsTheUncontendedDevice) {
  // Under kStatic partitioning a tenant makes exactly the decisions it would
  // make alone with container_count == quota; the shared port can only delay
  // its upgrades. Simulated cycles are therefore bounded below by the solo
  // run at the same quota.
  TraceRepository repo;
  const SessionSpec spec = small_session(Content::kH264, 2, "HEF", 6);
  const TraceEntry& entry = repo.get(spec);

  const auto solo_scheduler = make_scheduler(spec.scheduler);
  RtmConfig solo_config;
  solo_config.container_count = spec.container_count;
  solo_config.scheduler = solo_scheduler.get();
  RunTimeManager solo_rtm(&entry.set, entry.trace.hot_spots.size(), solo_config);
  seed_from_entry(entry, solo_rtm);
  const Cycles solo_cycles = run_trace(entry.trace, solo_rtm).total_cycles;

  ArbiterConfig config;
  config.total_containers = 12;
  FabricArbiter arbiter(config);
  TenantConfig tenant;
  tenant.quota = 6;
  const TenantId t0 = arbiter.add_tenant(tenant);
  const TenantId t1 = arbiter.add_tenant(tenant);
  const auto s0 = make_scheduler(spec.scheduler);
  const auto s1 = make_scheduler(spec.scheduler);
  RtmConfig rc0;
  rc0.scheduler = s0.get();
  rc0.arbiter = &arbiter;
  rc0.tenant = t0;
  RunTimeManager rtm0(&entry.set, entry.trace.hot_spots.size(), rc0);
  seed_from_entry(entry, rtm0);
  RtmConfig rc1;
  rc1.scheduler = s1.get();
  rc1.arbiter = &arbiter;
  rc1.tenant = t1;
  RunTimeManager rtm1(&entry.set, entry.trace.hot_spots.size(), rc1);
  seed_from_entry(entry, rtm1);

  std::vector<TenantRun> runs(2);
  runs[0] = {t0, &entry.trace, &rtm0, nullptr};
  runs[1] = {t1, &entry.trace, &rtm1, nullptr};
  const auto results = run_tenants(arbiter, std::span<TenantRun>(runs));
  EXPECT_GE(results[0].total_cycles, solo_cycles);
  EXPECT_GE(results[1].total_cycles, solo_cycles);
  EXPECT_EQ(results[0].si_executions, results[1].si_executions);
}

TEST(Multitenant, ContendedFleetIsDeterministicAcrossThreadCounts) {
  // Devices are independent serial co-simulations; fanning them over more
  // threads must not change a single simulated number. (This test carries
  // the TSan shard for the arbiter path.)
  TraceRepository repo;
  std::vector<SessionSpec> specs;
  for (int s = 0; s < 8; ++s)
    specs.push_back(small_session(s % 3 == 0 ? Content::kJpeg : Content::kH264,
                                  1 + s % 2, s % 2 == 0 ? "HEF" : "SJF", 6));
  fleet::ContendedOptions options;
  options.tenants_per_device = 4;
  options.acs_per_tenant = 6;
  options.partition = PartitionMode::kBenefitWeighted;
  options.traces = &repo;

  ThreadPool serial(1);
  options.pool = &serial;
  std::vector<SimResult> serial_results;
  const auto serial_report = fleet::run_contended_fleet(specs, options, &serial_results);

  ThreadPool wide(3);
  options.pool = &wide;
  std::vector<SimResult> wide_results;
  const auto wide_report = fleet::run_contended_fleet(specs, options, &wide_results);

  EXPECT_EQ(serial_report.cycles_checksum, wide_report.cycles_checksum);
  EXPECT_EQ(serial_report.grants, wide_report.grants);
  EXPECT_EQ(serial_report.evictions, wide_report.evictions);
  EXPECT_EQ(serial_report.port_wait_cycles, wide_report.port_wait_cycles);
  ASSERT_EQ(serial_results.size(), wide_results.size());
  for (std::size_t s = 0; s < serial_results.size(); ++s) {
    EXPECT_EQ(serial_results[s].total_cycles, wide_results[s].total_cycles) << s;
    EXPECT_EQ(serial_results[s].si_executions, wide_results[s].si_executions) << s;
    EXPECT_EQ(serial_results[s].atom_loads, wide_results[s].atom_loads) << s;
  }
  EXPECT_EQ(serial_report.devices, 2u);
  EXPECT_GT(serial_report.aggregate_speedup, 1.0);
}

TEST(Multitenant, EmptyTraceTenantsFinalizeAndRetireCleanly) {
  // A tenant whose trace has zero instances must retire immediately with
  // run_trace's semantics — total_cycles 0 and atom_loads populated from its
  // RTM (not left default-initialized) — in both co-simulation modes, while
  // the remaining tenants replay normally and identically across modes.
  TraceRepository repo;
  const SessionSpec spec = small_session(Content::kH264, 2, "HEF", 6);
  const TraceEntry& entry = repo.get(spec);
  WorkloadTrace empty_trace = entry.trace;
  empty_trace.instances.clear();

  for (const CosimMode mode : {CosimMode::kReference, CosimMode::kFastForward}) {
    SCOPED_TRACE(mode == CosimMode::kReference ? "reference" : "fast-forward");
    ArbiterConfig config;
    config.total_containers = 18;
    FabricArbiter arbiter(config);
    TenantConfig tenant;
    tenant.quota = 6;
    std::vector<TenantId> ids(3);
    for (auto& id : ids) id = arbiter.add_tenant(tenant);

    std::vector<std::unique_ptr<AtomScheduler>> schedulers(3);
    std::vector<std::unique_ptr<RunTimeManager>> rtms(3);
    std::vector<TenantRun> runs(3);
    for (std::size_t i = 0; i < 3; ++i) {
      schedulers[i] = make_scheduler(spec.scheduler);
      RtmConfig rc;
      rc.scheduler = schedulers[i].get();
      rc.arbiter = &arbiter;
      rc.tenant = ids[i];
      rtms[i] = std::make_unique<RunTimeManager>(&entry.set, entry.trace.hot_spots.size(), rc);
      seed_from_entry(entry, *rtms[i]);
      runs[i].tenant = ids[i];
      runs[i].rtm = rtms[i].get();
      runs[i].trace = i == 1 ? &empty_trace : &entry.trace;
    }
    CosimOptions options;
    options.mode = mode;
    const auto results = run_tenants(arbiter, std::span<TenantRun>(runs), options);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[1].total_cycles, 0u);
    EXPECT_EQ(results[1].si_executions, 0u);
    EXPECT_EQ(results[1].atom_loads, rtms[1]->completed_loads());
    EXPECT_EQ(results[1].hot_spot_cycles,
              std::vector<Cycles>(empty_trace.hot_spots.size(), 0));
    // The empty tenant left the round-robin before the first pick: the two
    // real tenants ran an ordinary 2-claimant co-simulation.
    EXPECT_GT(results[0].total_cycles, 0u);
    EXPECT_GT(results[2].total_cycles, 0u);
    EXPECT_EQ(results[0].si_executions, results[2].si_executions);
    arbiter.check_invariants();
  }
}

TEST(Multitenant, OversubscribedQuotasAreAHardError) {
  ArbiterConfig config;
  config.total_containers = 8;
  FabricArbiter arbiter(config);
  TenantConfig tenant;
  tenant.quota = 6;
  arbiter.add_tenant(tenant);
  EXPECT_THROW(arbiter.add_tenant(tenant), std::logic_error);  // 12 > 8
  TenantConfig bad_floor;
  bad_floor.quota = 2;
  bad_floor.floor = 3;
  EXPECT_THROW(arbiter.add_tenant(bad_floor), std::logic_error);
}

}  // namespace
}  // namespace rispp
