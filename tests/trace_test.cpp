// The observability layer: the Chrome-trace tracer (base/trace_event.h), the
// metrics registry (base/metrics.h), and the hard guarantee that turning
// tracing on never changes a simulated result. Also the strict
// RISPP_LOG_LEVEL parse (a garbage level is a loud exit, never a silent
// default).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/env.h"
#include "base/log.h"
#include "base/metrics.h"
#include "base/trace_event.h"
#include "bench/driver.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "rtm/run_time_manager.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp {
namespace {

namespace fs = std::filesystem;

fs::path temp_trace_path(const std::string& tag) {
  const fs::path path = fs::path(::testing::TempDir()) / ("rispp_" + tag + ".trace.json");
  fs::remove(path);
  return path;
}

std::optional<std::string> validate_file(const fs::path& path,
                                         TraceValidation* info = nullptr) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return validate_chrome_trace(in, info);
}

std::optional<std::string> validate_text(const std::string& text,
                                         TraceValidation* info = nullptr) {
  std::istringstream in(text);
  return validate_chrome_trace(in, info);
}

/// A long single-hot-spot ME-style trace (SAD+SATD).
WorkloadTrace me_trace(const SpecialInstructionSet& set, int executions) {
  const SiId sad = set.find("SAD").value();
  const SiId satd = set.find("SATD").value();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad, satd}, 8}};
  HotSpotInstance inst;
  inst.hot_spot = 0;
  inst.entry_overhead = 1000;
  for (int i = 0; i < executions; ++i)
    inst.executions.push_back(i % 8 == 7 ? satd : sad);
  trace.instances.push_back(std::move(inst));
  trace.build_runs();
  return trace;
}

// --- session round trip ----------------------------------------------------

TEST(TraceEvent, SessionWritesAValidChromeTrace) {
  const fs::path path = temp_trace_path("session");
  start_trace_session(path.string());
  ASSERT_TRUE(trace_enabled());

  const TraceLane port_lane = trace_new_lane();
  trace_name_lane(TraceTrack::kReconfigPort, port_lane, "atom loads");
  trace_complete(TraceTrack::kReconfigPort, port_lane, "QSub", 10.0, 5.0);
  trace_complete(TraceTrack::kReconfigPort, port_lane, "SAV", 15.0, 5.0);

  const TraceLane exec_lane = trace_new_lane();
  trace_begin(TraceTrack::kExecutor, exec_lane, "ME", 0.0);
  trace_instant(TraceTrack::kExecutor, exec_lane, "SAD upgraded", 12.0);
  trace_end(TraceTrack::kExecutor, exec_lane, "ME", 40.0);

  trace_begin_now(TraceTrack::kRtm, "decide");
  trace_end_now(TraceTrack::kRtm, "decide");
  trace_counter_now(TraceTrack::kRtm, "decision cache hits", 3.0);
  { RISPP_TRACE_SPAN(TraceTrack::kBench, "report"); }

  stop_trace_session();
  EXPECT_FALSE(trace_enabled());

  TraceValidation info;
  const auto problem = validate_file(path, &info);
  EXPECT_FALSE(problem.has_value()) << *problem;
  EXPECT_GE(info.events, 8u);
  EXPECT_GE(info.tracks, 4u);
  ASSERT_FALSE(info.counter_names.empty());
  EXPECT_NE(std::find(info.counter_names.begin(), info.counter_names.end(),
                      "decision cache hits"),
            info.counter_names.end());
  fs::remove(path);
}

TEST(TraceEvent, RegistryCountersAppearAsFinalSamples) {
  metric_counter("test.trace_flush_counter").add(7);
  const fs::path path = temp_trace_path("registry");
  start_trace_session(path.string());
  trace_instant_now(TraceTrack::kRtm, "tick");
  stop_trace_session();

  TraceValidation info;
  const auto problem = validate_file(path, &info);
  EXPECT_FALSE(problem.has_value()) << *problem;
  EXPECT_NE(std::find(info.counter_names.begin(), info.counter_names.end(),
                      "test.trace_flush_counter"),
            info.counter_names.end())
      << "every registry counter must be sampled onto the metrics track at flush";
  fs::remove(path);
}

TEST(TraceEvent, DisabledEmittersWriteNothing) {
  ASSERT_FALSE(trace_enabled());
  // All of these must be cheap no-ops with no session active.
  trace_complete(TraceTrack::kReconfigPort, 1, "noop", 0.0, 1.0);
  trace_instant_now(TraceTrack::kRtm, "noop");
  trace_counter_now(TraceTrack::kRtm, "noop", 1.0);
  trace_begin_now(TraceTrack::kThreadPool, "noop");
  trace_end_now(TraceTrack::kThreadPool, "noop");
  { RISPP_TRACE_SPAN(TraceTrack::kBench, "noop"); }
  SUCCEED();
}

// --- validator rejects malformed traces ------------------------------------

TEST(TraceValidate, AcceptsBothRootForms) {
  EXPECT_FALSE(validate_text("[]").has_value());
  EXPECT_FALSE(validate_text("{\"traceEvents\": []}").has_value());
  const char* event =
      "[{\"name\": \"a\", \"ph\": \"X\", \"ts\": 1.0, \"dur\": 2.0, "
      "\"pid\": 1, \"tid\": 1}]";
  EXPECT_FALSE(validate_text(event).has_value());
}

TEST(TraceValidate, RejectsStructuralGarbage) {
  EXPECT_TRUE(validate_text("").has_value());
  EXPECT_TRUE(validate_text("not json").has_value());
  EXPECT_TRUE(validate_text("{\"traceEvents\": 3}").has_value());
  EXPECT_TRUE(validate_text("[{\"ph\": \"X\"}]").has_value());  // no name/pid/tid
  EXPECT_TRUE(validate_text("[{\"name\": \"a\", \"ph\": \"Q\", \"ts\": 1, "
                            "\"pid\": 1, \"tid\": 1}]")
                  .has_value())
      << "unknown phase letter";
}

TEST(TraceValidate, RejectsUnmatchedDurationPairs) {
  const char* unclosed =
      "[{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1.0, \"pid\": 1, \"tid\": 1}]";
  EXPECT_TRUE(validate_text(unclosed).has_value());
  const char* mismatched =
      "[{\"name\": \"a\", \"ph\": \"B\", \"ts\": 1.0, \"pid\": 1, \"tid\": 1},"
      " {\"name\": \"b\", \"ph\": \"E\", \"ts\": 2.0, \"pid\": 1, \"tid\": 1}]";
  EXPECT_TRUE(validate_text(mismatched).has_value());
  const char* bare_end =
      "[{\"name\": \"a\", \"ph\": \"E\", \"ts\": 1.0, \"pid\": 1, \"tid\": 1}]";
  EXPECT_TRUE(validate_text(bare_end).has_value());
}

TEST(TraceValidate, RejectsNonMonotonicRowTimestamps) {
  const char* backwards =
      "[{\"name\": \"a\", \"ph\": \"i\", \"ts\": 5.0, \"pid\": 1, \"tid\": 1, \"s\": \"t\"},"
      " {\"name\": \"b\", \"ph\": \"i\", \"ts\": 4.0, \"pid\": 1, \"tid\": 1, \"s\": \"t\"}]";
  EXPECT_TRUE(validate_text(backwards).has_value());
  // The same timestamps on *different* rows are fine.
  const char* two_rows =
      "[{\"name\": \"a\", \"ph\": \"i\", \"ts\": 5.0, \"pid\": 1, \"tid\": 1, \"s\": \"t\"},"
      " {\"name\": \"b\", \"ph\": \"i\", \"ts\": 4.0, \"pid\": 1, \"tid\": 2, \"s\": \"t\"}]";
  EXPECT_FALSE(validate_text(two_rows).has_value());
}

// --- the hard guarantee: tracing never changes results ---------------------

TEST(TraceEvent, TracedReplayIsBitIdenticalAcrossSchedulersAndModes) {
  const auto set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = me_trace(set, 12'000);

  for (const auto& name : scheduler_names()) {
    for (const ReplayMode mode : {ReplayMode::kScalar, ReplayMode::kBatched}) {
      const auto run_once = [&]() {
        auto sched = make_scheduler(name);
        RtmConfig config;
        config.container_count = 14;
        config.scheduler = sched.get();
        RunTimeManager rtm(&set, 3, config);
        h264::seed_default_forecasts(set, rtm);
        return run_trace(trace, rtm, nullptr, mode);
      };
      const SimResult off = run_once();

      const fs::path path = temp_trace_path("equiv_" + name);
      start_trace_session(path.string());
      const SimResult on = run_once();
      stop_trace_session();

      EXPECT_EQ(on.total_cycles, off.total_cycles) << name;
      EXPECT_EQ(on.si_executions, off.si_executions) << name;
      EXPECT_EQ(on.atom_loads, off.atom_loads) << name;
      EXPECT_EQ(on.hot_spot_cycles, off.hot_spot_cycles) << name;

      TraceValidation info;
      const auto problem = validate_file(path, &info);
      EXPECT_FALSE(problem.has_value()) << name << ": " << *problem;
      EXPECT_GT(info.events, 0u) << name;
      fs::remove(path);
    }
  }
}

TEST(TraceEvent, InstrumentedSimulationProducesAWellFormedMultiTrackTrace) {
  // One traced end-to-end run must populate the port, executor, RTM and
  // metrics tracks (the fig7 CI artifact requires >= 4 distinct tracks).
  const auto set = h264sis::build_h264_si_set();
  const WorkloadTrace trace = me_trace(set, 12'000);
  const fs::path path = temp_trace_path("multitrack");
  start_trace_session(path.string());
  {
    auto sched = make_scheduler("HEF");
    RtmConfig config;
    config.container_count = 14;
    config.scheduler = sched.get();
    RunTimeManager rtm(&set, 3, config);
    h264::seed_default_forecasts(set, rtm);
    (void)run_trace(trace, rtm);
  }
  stop_trace_session();

  TraceValidation info;
  const auto problem = validate_file(path, &info);
  ASSERT_FALSE(problem.has_value()) << *problem;
  EXPECT_GE(info.tracks, 4u) << "port + executor + RTM + metrics at minimum";
  for (const char* counter :
       {"rtm.decision_cache.hits", "rtm.decision_cache.misses", "rtm.decision_cache.evictions"})
    EXPECT_NE(std::find(info.counter_names.begin(), info.counter_names.end(), counter),
              info.counter_names.end())
        << counter;
  fs::remove(path);
}

// --- concurrency: emitting from many threads while flushing ----------------

TEST(TraceEvent, ConcurrentEmittersFlushClean) {
  const fs::path path = temp_trace_path("mt");
  start_trace_session(path.string());
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 2'000;
  std::atomic<int> go{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go] {
      go.fetch_add(1);
      while (go.load() < kThreads) {
      }
      for (int i = 0; i < kEventsPerThread; ++i) {
        { RISPP_TRACE_SPAN(TraceTrack::kThreadPool, "work"); }
        trace_instant_now(TraceTrack::kThreadPool, "tick");
        trace_counter_now(TraceTrack::kThreadPool, "progress", i);
      }
    });
  }
  for (auto& t : threads) t.join();
  stop_trace_session();

  TraceValidation info;
  const auto problem = validate_file(path, &info);
  EXPECT_FALSE(problem.has_value()) << *problem;
  EXPECT_GE(info.events, static_cast<std::size_t>(kThreads) * kEventsPerThread * 3);
  fs::remove(path);
}

// --- metrics registry ------------------------------------------------------

TEST(Metrics, CountersAndGaugesRoundTripThroughSnapshot) {
  metric_counter("test.metrics.alpha").add(41);
  metric_counter("test.metrics.alpha").add();
  metric_gauge("test.metrics.level").set(2.5);
  EXPECT_EQ(metric_counter("test.metrics.alpha").value(), 42u);
  EXPECT_EQ(metric_gauge("test.metrics.level").value(), 2.5);

  // The same name always yields the same object.
  EXPECT_EQ(&metric_counter("test.metrics.alpha"), &metric_counter("test.metrics.alpha"));

  const fs::path path = fs::path(::testing::TempDir()) / "rispp_metrics_snapshot.json";
  fs::remove(path);
  ASSERT_TRUE(write_metrics_json(path.string()));
  // The driver-side parser reads what the registry writes.
  const auto parsed = bench::parse_metrics_record(path);
  ASSERT_TRUE(parsed.count("test.metrics.alpha"));
  EXPECT_EQ(parsed.at("test.metrics.alpha"), 42.0);
  ASSERT_TRUE(parsed.count("test.metrics.level"));
  EXPECT_EQ(parsed.at("test.metrics.level"), 2.5);
  fs::remove(path);
}

TEST(Metrics, SnapshotIsSortedAndWellFormed) {
  metric_counter("test.metrics.zeta").add(1);
  metric_counter("test.metrics.beta").add(2);
  const auto counters = metrics_counter_snapshot();
  ASSERT_GE(counters.size(), 2u);
  for (std::size_t i = 1; i < counters.size(); ++i)
    EXPECT_LT(counters[i - 1].first, counters[i].first);
}

// --- strict RISPP_LOG_LEVEL ------------------------------------------------

TEST(LogLevelDeathTest, GarbageLevelExitsLoudly) {
  ::setenv("RISPP_LOG_LEVEL", "loud", 1);
  EXPECT_EXIT(init_log_level_from_env(), ::testing::ExitedWithCode(kEnvParseExitCode),
              "RISPP_LOG_LEVEL");
  ::setenv("RISPP_LOG_LEVEL", "DEBUG!", 1);
  EXPECT_EXIT(init_log_level_from_env(), ::testing::ExitedWithCode(kEnvParseExitCode),
              "RISPP_LOG_LEVEL");
  ::unsetenv("RISPP_LOG_LEVEL");
}

TEST(LogLevel, ValidLevelsStillParse) {
  const LogLevel before = log_level();
  ::setenv("RISPP_LOG_LEVEL", "warn", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  ::setenv("RISPP_LOG_LEVEL", "off", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kOff);
  ::unsetenv("RISPP_LOG_LEVEL");
  set_log_level(before);
}

}  // namespace
}  // namespace rispp
