// Tests for the §4.1 Molecule assembly model, including property-based
// checks of the algebraic laws the paper states: (ℕⁿ, ∪) and (ℕⁿ, ∩) are
// Abelian semi-groups with neutral elements, ≤ is a partial order, and the
// structure is a complete lattice.
#include "alg/molecule.h"

#include <gtest/gtest.h>

#include "base/prng.h"

namespace rispp {
namespace {

Molecule random_molecule(Xoshiro256& rng, std::size_t dim, AtomCount max_count) {
  Molecule m(dim);
  for (std::size_t i = 0; i < dim; ++i)
    m[i] = static_cast<AtomCount>(rng.bounded(max_count + 1));
  return m;
}

TEST(Molecule, ZeroConstructionAndAccess) {
  Molecule m(4);
  EXPECT_EQ(m.dimension(), 4u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.determinant(), 0u);
  m[2] = 5;
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.determinant(), 5u);
  EXPECT_EQ(m.type_count(), 1u);
}

TEST(Molecule, InitializerList) {
  Molecule m{1, 0, 3};
  EXPECT_EQ(m.dimension(), 3u);
  EXPECT_EQ(m.determinant(), 4u);
  EXPECT_EQ(m.type_count(), 2u);
  EXPECT_EQ(m.to_string(), "(1,0,3)");
}

TEST(Molecule, UnitMolecules) {
  const Molecule u1 = Molecule::unit(3, 0);
  EXPECT_EQ(u1, (Molecule{1, 0, 0}));
  const Molecule u3 = Molecule::unit(3, 2);
  EXPECT_EQ(u3, (Molecule{0, 0, 1}));
  EXPECT_EQ(u3.determinant(), 1u);
}

TEST(Molecule, JoinIsComponentwiseMax) {
  EXPECT_EQ(join({1, 4, 0}, {2, 2, 2}), (Molecule{2, 4, 2}));
}

TEST(Molecule, MeetIsComponentwiseMin) {
  EXPECT_EQ(meet({1, 4, 0}, {2, 2, 2}), (Molecule{1, 2, 0}));
}

TEST(Molecule, PaperExampleOrdering) {
  // §4.3: m2=(2,2) and m4=(1,3) are incomparable.
  const Molecule m2{2, 2}, m4{1, 3};
  EXPECT_FALSE(leq(m2, m4));
  EXPECT_FALSE(leq(m4, m2));
  EXPECT_TRUE(leq(m2, join(m2, m4)));
  EXPECT_TRUE(leq(m4, join(m2, m4)));
  EXPECT_EQ(join(m2, m4), (Molecule{2, 3}));
  EXPECT_EQ(meet(m2, m4), (Molecule{1, 2}));
}

TEST(Molecule, MissingOperator) {
  // a ⊖ m: atoms still to load for m when a is available (paper's example:
  // m4=(1,3) is cheap for a=(0,3)).
  const Molecule a{0, 3};
  EXPECT_EQ(missing(a, {1, 3}), (Molecule{1, 0}));
  EXPECT_EQ(missing(a, {2, 2}), (Molecule{2, 0}));
  EXPECT_EQ(missing(a, {0, 0}), (Molecule{0, 0}));
  EXPECT_EQ(missing(Molecule{5, 5}, {2, 2}), (Molecule{0, 0}));
}

TEST(Molecule, SupAndInfOverSets) {
  const std::vector<Molecule> set{{1, 2, 0}, {0, 3, 1}, {2, 0, 0}};
  EXPECT_EQ(sup(set, 3), (Molecule{2, 3, 1}));
  EXPECT_EQ(inf(set), (Molecule{0, 0, 0}));
  EXPECT_EQ(sup(std::vector<Molecule>{}, 3), Molecule(3));
}

TEST(Molecule, SupremumBoundsEveryElement) {
  const std::vector<Molecule> set{{1, 7}, {4, 2}, {3, 3}};
  const Molecule s = sup(set, 2);
  for (const auto& m : set) EXPECT_TRUE(leq(m, s));
}

TEST(Molecule, UnitDecompositionMatchesCounts) {
  const Molecule m{2, 0, 1};
  const auto units = unit_decomposition(m);
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0], 0);
  EXPECT_EQ(units[1], 0);
  EXPECT_EQ(units[2], 2);
}

TEST(Molecule, DimensionMismatchThrows) {
  EXPECT_THROW(join(Molecule{1}, Molecule{1, 2}), std::logic_error);
  EXPECT_THROW((void)leq(Molecule{1}, Molecule{1, 2}), std::logic_error);
}

TEST(Molecule, InfOfEmptySetThrows) {
  EXPECT_THROW(inf(std::vector<Molecule>{}), std::logic_error);
}

// ---- Property-based lattice laws ----------------------------------------

class MoleculeLatticeLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MoleculeLatticeLaws, SemigroupAndLatticeProperties) {
  Xoshiro256 rng(GetParam());
  const std::size_t dim = 1 + rng.bounded(8);
  const Molecule a = random_molecule(rng, dim, 6);
  const Molecule b = random_molecule(rng, dim, 6);
  const Molecule c = random_molecule(rng, dim, 6);
  const Molecule zero(dim);

  // Commutativity and associativity of ∪ and ∩ (Abelian semi-groups).
  EXPECT_EQ(join(a, b), join(b, a));
  EXPECT_EQ(meet(a, b), meet(b, a));
  EXPECT_EQ(join(a, join(b, c)), join(join(a, b), c));
  EXPECT_EQ(meet(a, meet(b, c)), meet(meet(a, b), c));

  // Neutral element of ∪ is (0,...,0).
  EXPECT_EQ(join(a, zero), a);

  // Idempotence and absorption (lattice laws).
  EXPECT_EQ(join(a, a), a);
  EXPECT_EQ(meet(a, a), a);
  EXPECT_EQ(join(a, meet(a, b)), a);
  EXPECT_EQ(meet(a, join(a, b)), a);

  // ≤ is reflexive; antisymmetry; transitivity via join-characterization.
  EXPECT_TRUE(leq(a, a));
  if (leq(a, b) && leq(b, a)) {
    EXPECT_EQ(a, b);
  }
  EXPECT_TRUE(leq(meet(a, b), a));
  EXPECT_TRUE(leq(a, join(a, b)));
  // leq(a,b) iff join(a,b)==b iff meet(a,b)==a.
  EXPECT_EQ(leq(a, b), join(a, b) == b);
  EXPECT_EQ(leq(a, b), meet(a, b) == a);

  // ⊖ law: loading exactly the missing atoms on top of a yields a ∪ b —
  // componentwise a + (a ⊖ b) == max(a, b). This is why HEF line 26/27 can
  // push the unit decomposition of a ⊖ m and then update a ← a ∪ m.
  const Molecule delta = missing(a, b);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_EQ(a[i] + delta[i], join(a, b)[i]);
    EXPECT_GE(a[i] + delta[i], b[i]);
  }
  EXPECT_EQ(join(a, b).determinant(), a.determinant() + delta.determinant());

  // Determinant is monotone along the order.
  EXPECT_LE(meet(a, b).determinant(), a.determinant());
  EXPECT_GE(join(a, b).determinant(), a.determinant());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MoleculeLatticeLaws,
                         ::testing::Range<std::uint64_t>(1, 65));

// ---- Allocation-free in-place operations and the determinant cache -------

class MoleculeInPlaceOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MoleculeInPlaceOps, InPlaceOpsMatchAllocatingOnes) {
  Xoshiro256 rng(GetParam());
  // Span both storage modes: dims beyond kInlineCapacity use the heap spill.
  const std::size_t dim = 1 + rng.bounded(2 * Molecule::kInlineCapacity);
  const Molecule a = random_molecule(rng, dim, 6);
  const Molecule b = random_molecule(rng, dim, 6);

  Molecule acc = a;
  join_into(acc, b);
  EXPECT_EQ(acc, join(a, b));
  EXPECT_EQ(acc.determinant(), join(a, b).determinant());

  acc = a;
  meet_into(acc, b);
  EXPECT_EQ(acc, meet(a, b));

  Molecule out;
  missing_into(out, a, b);
  EXPECT_EQ(out, missing(a, b));
  EXPECT_EQ(out.determinant(), missing(a, b).determinant());
  EXPECT_EQ(missing_determinant(a, b), missing(a, b).determinant());
  EXPECT_EQ(join_determinant(a, b), join(a, b).determinant());

  // missing_into must tolerate aliasing with either input.
  Molecule alias = a;
  missing_into(alias, alias, b);
  EXPECT_EQ(alias, missing(a, b));
  alias = b;
  missing_into(alias, a, alias);
  EXPECT_EQ(alias, missing(a, b));

  // append_unit_decomposition appends the same type sequence that
  // unit_decomposition returns.
  std::vector<AtomTypeId> appended{42};
  append_unit_decomposition(a, appended);
  const auto units = unit_decomposition(a);
  ASSERT_EQ(appended.size(), units.size() + 1);
  EXPECT_EQ(appended.front(), 42u);
  for (std::size_t i = 0; i < units.size(); ++i) EXPECT_EQ(appended[i + 1], units[i]);
}

TEST_P(MoleculeInPlaceOps, CachedDeterminantSurvivesEveryMutationPath) {
  Xoshiro256 rng(GetParam());
  const std::size_t dim = 1 + rng.bounded(2 * Molecule::kInlineCapacity);
  auto fresh_sum = [](const Molecule& m) {
    unsigned s = 0;
    for (std::size_t i = 0; i < m.dimension(); ++i) s += m.counts()[i];
    return s;
  };

  Molecule m = random_molecule(rng, dim, 6);
  EXPECT_EQ(m.determinant(), fresh_sum(m));

  // Mutation through operator[] must invalidate the cache.
  m.determinant();  // prime the cache
  m[rng.bounded(dim)] = static_cast<AtomCount>(rng.bounded(9));
  EXPECT_EQ(m.determinant(), fresh_sum(m));

  // Reuse of the same storage with new contents.
  m.determinant();
  m.assign_zero(dim);
  EXPECT_EQ(m.determinant(), 0u);
  const Molecule src = random_molecule(rng, dim, 6);
  m.assign(src.counts());
  EXPECT_EQ(m.determinant(), fresh_sum(src));

  // In-place lattice ops.
  Molecule other = random_molecule(rng, dim, 6);
  m.determinant();
  join_into(m, other);
  EXPECT_EQ(m.determinant(), fresh_sum(m));
  m.determinant();
  meet_into(m, other);
  EXPECT_EQ(m.determinant(), fresh_sum(m));

  // Copies and moves carry a consistent cache state with them.
  Molecule copy = m;
  copy.determinant();
  copy[0] = static_cast<AtomCount>(copy.counts()[0] + 1);
  EXPECT_EQ(copy.determinant(), fresh_sum(copy));
  EXPECT_EQ(m.determinant(), fresh_sum(m));  // the original is untouched

  // operator== ignores the cache: equal contents compare equal regardless
  // of which instance has a primed cache.
  Molecule x = random_molecule(rng, dim, 6);
  Molecule y = x;
  x.determinant();           // x primed
  y[0] = y.counts()[0];      // y invalidated, same contents
  EXPECT_EQ(x, y);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MoleculeInPlaceOps,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace rispp
