// Event-horizon fast-forward co-simulation (DESIGN §9.1).
//
// The load-bearing suite is the randomized equivalence matrix: the
// epoch-based fast-forward (min-clock heap, batched replay, horizon overrun,
// optional parallel quiescent sweep) must be *bit-identical* to the
// instance-stepped reference oracle — same SimResult, same SimStats buckets
// and latency timelines — across every scheduler, both partition modes,
// 1/2/4/8 tenants and thread counts. The horizon property test then pins the
// arbiter's next_event_cycle() contract directly: no fabric event observable
// by a tenant may land before its reported horizon.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "base/metrics.h"
#include "base/parallel.h"
#include "fleet/session.h"
#include "fleet/trace_repository.h"
#include "rtm/fabric_arbiter.h"
#include "rtm/run_time_manager.h"
#include "rtm/tenant_sim.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp {
namespace {

using fleet::Content;
using fleet::SessionSpec;
using fleet::TraceEntry;
using fleet::TraceRepository;

SessionSpec small_session(Content content, int frames, const std::string& scheduler,
                          unsigned acs) {
  SessionSpec spec;
  spec.content = content;
  spec.frames = frames;
  spec.width = content == Content::kH264 ? 96 : 128;
  spec.height = content == Content::kH264 ? 64 : 96;
  spec.scheduler = scheduler;
  spec.container_count = acs;
  return spec;
}

void seed_from_entry(const TraceEntry& entry, RunTimeManager& rtm) {
  for (HotSpotId hs = 0; hs < entry.seeds.size(); ++hs)
    for (SiId si = 0; si < entry.seeds[hs].size(); ++si)
      if (entry.seeds[hs][si] != 0) rtm.seed_forecast(hs, si, entry.seeds[hs][si]);
}

void expect_stats_equal(const SimStats& ref, const SimStats& ff, std::size_t si_count) {
  ASSERT_EQ(ref.bucket_count(), ff.bucket_count());
  for (SiId si = 0; si < si_count; ++si) {
    ASSERT_EQ(ref.executions(si), ff.executions(si)) << "si " << si;
    for (std::size_t b = 0; b < ref.bucket_count(); ++b)
      ASSERT_EQ(ref.bucket_executions(si, b), ff.bucket_executions(si, b))
          << "si " << si << " bucket " << b;
    const auto& rt = ref.latency_timeline(si);
    const auto& ft = ff.latency_timeline(si);
    ASSERT_EQ(rt.size(), ft.size()) << "si " << si;
    for (std::size_t p = 0; p < rt.size(); ++p) {
      ASSERT_EQ(rt[p].at, ft[p].at) << "si " << si << " point " << p;
      ASSERT_EQ(rt[p].latency, ft[p].latency) << "si " << si << " point " << p;
    }
  }
}

/// One tenant's ingredients: the spec it was configured from (scheduler,
/// forecast mode) plus the repository's shared trace entry.
struct TenantSpec {
  SessionSpec spec;
  const TraceEntry* entry = nullptr;
};

/// One co-simulated device: fresh arbiter + RTMs over shared trace entries,
/// replayed with the given options. Results and (optional) per-tenant stats
/// land in `results` / `stats`.
void run_device(const std::vector<TenantSpec>& entries, PartitionMode partition,
                unsigned acs_per_tenant, const CosimOptions& options,
                std::vector<SimResult>& results, std::vector<SimStats>* stats) {
  const std::size_t k = entries.size();
  ArbiterConfig arb_config;
  arb_config.total_containers = static_cast<unsigned>(k) * acs_per_tenant;
  arb_config.partition = partition;
  FabricArbiter arbiter(arb_config);

  std::vector<std::unique_ptr<AtomScheduler>> schedulers(k);
  std::vector<std::unique_ptr<RunTimeManager>> rtms(k);
  std::vector<TenantRun> runs(k);
  for (std::size_t i = 0; i < k; ++i) {
    TenantConfig tenant;
    tenant.quota = acs_per_tenant;
    tenant.floor = 2;
    runs[i].tenant = arbiter.add_tenant(tenant);
  }
  for (std::size_t i = 0; i < k; ++i) {
    const TraceEntry& entry = *entries[i].entry;
    schedulers[i] = make_scheduler(entries[i].spec.scheduler);
    RtmConfig config;
    config.scheduler = schedulers[i].get();
    config.forecast_mode = entries[i].spec.forecast_mode;
    config.arbiter = &arbiter;
    config.tenant = runs[i].tenant;
    rtms[i] = std::make_unique<RunTimeManager>(&entry.set, entry.trace.hot_spots.size(),
                                               config);
    seed_from_entry(entry, *rtms[i]);
    runs[i].trace = &entry.trace;
    runs[i].rtm = rtms[i].get();
    if (stats != nullptr) runs[i].stats = &(*stats)[i];
  }
  arbiter.check_invariants();
  results = run_tenants(arbiter, std::span<TenantRun>(runs), options);
  arbiter.check_invariants();
}

void expect_results_equal(const std::vector<SimResult>& ref,
                          const std::vector<SimResult>& ff) {
  ASSERT_EQ(ref.size(), ff.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i].total_cycles, ff[i].total_cycles) << "tenant " << i;
    ASSERT_EQ(ref[i].si_executions, ff[i].si_executions) << "tenant " << i;
    ASSERT_EQ(ref[i].atom_loads, ff[i].atom_loads) << "tenant " << i;
    ASSERT_EQ(ref[i].hot_spot_cycles, ff[i].hot_spot_cycles) << "tenant " << i;
  }
}

TEST(Cosim, FastForwardMatchesReferenceAcrossSchedulersPartitionsAndTenantCounts) {
  // Randomized mixes (seeded, deterministic): every scheduler × both
  // partition modes × 1/2/4/8 tenants, stats collected so the comparison
  // covers latency timelines, not just totals.
  TraceRepository repo;
  std::mt19937_64 rng(0x5eed);
  for (const std::string& scheduler : scheduler_names()) {
    for (const PartitionMode partition :
         {PartitionMode::kStatic, PartitionMode::kBenefitWeighted}) {
      for (const std::size_t tenants : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(scheduler + (partition == PartitionMode::kStatic ? "/static/" : "/weighted/") +
                     std::to_string(tenants));
        std::vector<TenantSpec> entries;
        std::size_t si_count = 0;
        for (std::size_t i = 0; i < tenants; ++i) {
          const Content content = rng() % 3 == 0 ? Content::kJpeg : Content::kH264;
          const int frames = 1 + static_cast<int>(rng() % 2);
          const SessionSpec spec = small_session(content, frames, scheduler, 6);
          entries.push_back({spec, &repo.get(spec)});
          si_count = std::max(si_count, entries.back().entry->set.si_count());
        }

        std::vector<SimResult> ref_results;
        std::vector<SimStats> ref_stats(tenants, SimStats(si_count));
        CosimOptions ref;
        ref.mode = CosimMode::kReference;
        run_device(entries, partition, 6, ref, ref_results, &ref_stats);

        std::vector<SimResult> ff_results;
        std::vector<SimStats> ff_stats(tenants, SimStats(si_count));
        CosimOptions ff;
        ff.mode = CosimMode::kFastForward;
        run_device(entries, partition, 6, ff, ff_results, &ff_stats);

        expect_results_equal(ref_results, ff_results);
        for (std::size_t i = 0; i < tenants; ++i) {
          SCOPED_TRACE("tenant " + std::to_string(i));
          expect_stats_equal(ref_stats[i], ff_stats[i], entries[i].entry->set.si_count());
        }
      }
    }
  }
}

TEST(Cosim, HorizonOverrunEngagesWithStaticSeeds) {
  // Non-vacuity check for regime 3, which only engages once the device is
  // truly quiescent. That takes three ingredients:
  //  - kStaticSeeds: the monitored EMA never reaches an exact fixed point,
  //    so decide() keys would never repeat and the port-silence probe (an
  //    exact decision-cache lookup) would stay conservative forever;
  //  - a quota covering the content's whole working set (JPEG's five SIs
  //    max out at 20 containers), so once everything is resident every
  //    re-decision schedules zero loads and no claim is ever raised;
  //  - sessions long enough that the serial-port warm-up (tens of loads,
  //    ~10^5 cycles each) is a prefix, leaving a long jointly-quiet tail.
  // In that regime the overrun must actually fast-forward instances — while
  // staying bit-exact vs the reference.
  TraceRepository repo;
  std::vector<TenantSpec> entries;
  std::size_t si_count = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    SessionSpec spec = small_session(Content::kJpeg, 128 + static_cast<int>(i) * 8,
                                     i % 2 == 0 ? "HEF" : "SJF", 20);
    spec.forecast_mode = ForecastMode::kStaticSeeds;
    entries.push_back({spec, &repo.get(spec)});
    si_count = std::max(si_count, entries.back().entry->set.si_count());
  }

  std::vector<SimResult> ref_results;
  std::vector<SimStats> ref_stats(entries.size(), SimStats(si_count));
  CosimOptions ref;
  ref.mode = CosimMode::kReference;
  run_device(entries, PartitionMode::kStatic, 20, ref, ref_results, &ref_stats);

  MetricCounter& ff_metric = metric_counter("rtm.cosim.fast_forward_instances");
  const std::uint64_t before = ff_metric.value();
  std::vector<SimResult> ff_results;
  std::vector<SimStats> ff_stats(entries.size(), SimStats(si_count));
  CosimOptions ff;
  ff.mode = CosimMode::kFastForward;
  run_device(entries, PartitionMode::kStatic, 20, ff, ff_results, &ff_stats);

  EXPECT_GT(ff_metric.value(), before) << "horizon overrun never engaged";
  expect_results_equal(ref_results, ff_results);
  for (std::size_t i = 0; i < entries.size(); ++i)
    expect_stats_equal(ref_stats[i], ff_stats[i], entries[i].entry->set.si_count());
}

TEST(Cosim, ParallelQuiescentSweepIsThreadCountInvariant) {
  // The parallel sweep must be invisible in the results: serial fast-forward,
  // 1-thread pool and 4-thread pool all byte-identical to the reference.
  // kStatic so sweeps actually fire (weighted multi-tenant pins the horizon
  // to `now` and the pool is ignored); kStaticSeeds so the port-silence
  // probe fires at all (see HorizonOverrunEngagesWithStaticSeeds).
  TraceRepository repo;
  std::vector<TenantSpec> entries;
  for (std::size_t i = 0; i < 3; ++i) {
    SessionSpec spec = small_session(Content::kJpeg, 120 + static_cast<int>(i) * 8,
                                     i % 2 == 0 ? "HEF" : "SJF", 20);
    spec.forecast_mode = ForecastMode::kStaticSeeds;
    entries.push_back({spec, &repo.get(spec)});
  }
  std::size_t si_count = 0;
  for (const TenantSpec& e : entries) si_count = std::max(si_count, e.entry->set.si_count());

  std::vector<SimResult> ref_results;
  std::vector<SimStats> ref_stats(entries.size(), SimStats(si_count));
  CosimOptions ref;
  ref.mode = CosimMode::kReference;
  run_device(entries, PartitionMode::kStatic, 20, ref, ref_results, &ref_stats);

  MetricCounter& ff_metric = metric_counter("rtm.cosim.fast_forward_instances");
  for (const unsigned threads : {1u, 4u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    std::vector<SimResult> par_results;
    std::vector<SimStats> par_stats(entries.size(), SimStats(si_count));
    CosimOptions par;
    par.pool = &pool;
    const std::uint64_t before = ff_metric.value();
    run_device(entries, PartitionMode::kStatic, 20, par, par_results, &par_stats);
    EXPECT_GT(ff_metric.value(), before) << "no instance was fast-forwarded";
    expect_results_equal(ref_results, par_results);
    for (std::size_t i = 0; i < entries.size(); ++i)
      expect_stats_equal(ref_stats[i], par_stats[i], entries[i].entry->set.si_count());
  }
}

TEST(Cosim, PoolIsIgnoredUnderWeightedMultiTenant) {
  // rebalance_possible() == true makes the sweep unsound; run_tenants must
  // fall back to the serial fast-forward and still match the reference.
  TraceRepository repo;
  std::vector<TenantSpec> entries;
  for (std::size_t i = 0; i < 4; ++i) {
    const SessionSpec spec = small_session(Content::kH264, 1, "HEF", 6);
    entries.push_back({spec, &repo.get(spec)});
  }

  std::vector<SimResult> ref_results;
  CosimOptions ref;
  ref.mode = CosimMode::kReference;
  run_device(entries, PartitionMode::kBenefitWeighted, 6, ref, ref_results, nullptr);

  ThreadPool pool(4);
  std::vector<SimResult> par_results;
  CosimOptions par;
  par.pool = &pool;
  run_device(entries, PartitionMode::kBenefitWeighted, 6, par, par_results, nullptr);
  expect_results_equal(ref_results, par_results);
}

TEST(Cosim, HorizonIsNeverViolated) {
  // Property test for next_event_cycle()'s contract, driven by a manual
  // reference-order co-simulation over a static 3-tenant device. After each
  // tenant's instance we record its reported horizon plus a snapshot of
  // everything the fabric could do to it behind its back (mutation
  // generation, quota, completed loads, in-flight status). Whenever another
  // tenant then advances global simulated time, every snapshot whose horizon
  // lies beyond the stepped tenant's new clock must be untouched.
  // Long enough traces that the device reaches steady state (queues drained,
  // forecasts converged) — the regime the fast-forward overrun exploits.
  TraceRepository repo;
  std::vector<TenantSpec> entries;
  for (std::size_t i = 0; i < 3; ++i) {
    const SessionSpec spec = small_session(i == 1 ? Content::kJpeg : Content::kH264, 8,
                                           i == 0 ? "HEF" : "SJF", 8);
    entries.push_back({spec, &repo.get(spec)});
  }
  const std::size_t n = entries.size();

  ArbiterConfig arb_config;
  arb_config.total_containers = static_cast<unsigned>(n) * 8;
  FabricArbiter arbiter(arb_config);
  std::vector<std::unique_ptr<AtomScheduler>> schedulers(n);
  std::vector<std::unique_ptr<RunTimeManager>> rtms(n);
  std::vector<TenantId> tenants(n);
  for (std::size_t i = 0; i < n; ++i) {
    TenantConfig tenant;
    tenant.quota = 6;
    tenant.floor = 2;
    tenants[i] = arbiter.add_tenant(tenant);
  }
  for (std::size_t i = 0; i < n; ++i) {
    schedulers[i] = make_scheduler(entries[i].spec.scheduler);
    RtmConfig config;
    config.scheduler = schedulers[i].get();
    config.arbiter = &arbiter;
    config.tenant = tenants[i];
    rtms[i] = std::make_unique<RunTimeManager>(
        &entries[i].entry->set, entries[i].entry->trace.hot_spots.size(), config);
    seed_from_entry(*entries[i].entry, *rtms[i]);
  }

  struct Snapshot {
    Cycles horizon = 0;
    std::uint64_t generation = 0;
    unsigned quota = 0;
    std::uint64_t completed_loads = 0;
    bool inflight = false;
    bool valid = false;
  };
  std::vector<Snapshot> snapshots(n);
  const auto observe = [&](std::size_t i, Cycles clock) {
    Snapshot s;
    s.horizon = arbiter.next_event_cycle(tenants[i], clock);
    s.generation = arbiter.fabric_generation(tenants[i]);
    s.quota = arbiter.quota(tenants[i]);
    s.completed_loads = arbiter.completed_loads(tenants[i]);
    s.inflight = arbiter.inflight(tenants[i]).has_value();
    s.valid = true;
    // Sub-contract: an in-flight load pins the horizon to its completion.
    if (s.inflight)
      EXPECT_EQ(s.horizon, arbiter.inflight(tenants[i])->finishes_at) << "tenant " << i;
    return s;
  };

  std::vector<Cycles> clocks(n, 0);
  std::vector<std::size_t> next_instance(n, 0);
  std::vector<std::uint64_t> si_executions(n, 0);
  std::vector<std::vector<LatencySegment>> segments(n);
  std::vector<std::vector<SiRun>> runs_scratch(n);
  std::size_t live = n;
  std::uint64_t quiet_horizons = 0;
  while (live > 0) {
    std::size_t pick = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (next_instance[i] >= entries[i].entry->trace.instances.size()) continue;
      if (pick == n || clocks[i] < clocks[pick]) pick = i;
    }
    ASSERT_LT(pick, n);
    clocks[pick] = replay_instance(entries[pick].entry->trace, next_instance[pick]++,
                                  *rtms[pick], nullptr, clocks[pick],
                                  si_executions[pick], segments[pick],
                                  runs_scratch[pick]);
    // The step performed fabric events no later than the tenant's new clock:
    // every other tenant whose horizon lies beyond it must be unaffected.
    for (std::size_t j = 0; j < n; ++j) {
      if (j == pick || !snapshots[j].valid) continue;
      const Snapshot& before = snapshots[j];
      if (before.horizon <= clocks[pick]) continue;
      EXPECT_EQ(before.generation, arbiter.fabric_generation(tenants[j])) << "tenant " << j;
      EXPECT_EQ(before.quota, arbiter.quota(tenants[j])) << "tenant " << j;
      EXPECT_EQ(before.completed_loads, arbiter.completed_loads(tenants[j]))
          << "tenant " << j;
      EXPECT_EQ(before.inflight, arbiter.inflight(tenants[j]).has_value())
          << "tenant " << j;
    }
    if (next_instance[pick] >= entries[pick].entry->trace.instances.size()) {
      arbiter.retire_tenant(tenants[pick]);
      snapshots[pick].valid = false;
      --live;
    } else {
      snapshots[pick] = observe(pick, clocks[pick]);
      if (snapshots[pick].horizon == FabricArbiter::kNoEvent) ++quiet_horizons;
    }
  }
  // The device does reach quiescence (otherwise the fast-forward never
  // overruns and this test proves nothing about the interesting regime).
  EXPECT_GT(quiet_horizons, 0u);
}

TEST(Cosim, WeightedMultiTenantHorizonCollapsesToNow) {
  // With kBenefitWeighted and >1 tenants any decision point may rebalance:
  // the horizon must never promise quiet time, and quiescent_until must
  // agree device-wide.
  TraceRepository repo;
  const TraceEntry& entry = repo.get(small_session(Content::kH264, 1, "HEF", 6));
  ArbiterConfig config;
  config.total_containers = 12;
  config.partition = PartitionMode::kBenefitWeighted;
  FabricArbiter arbiter(config);
  TenantConfig tenant;
  tenant.quota = 6;
  const TenantId a = arbiter.add_tenant(tenant);
  arbiter.add_tenant(tenant);
  const auto scheduler = make_scheduler("HEF");
  RtmConfig rc;
  rc.scheduler = scheduler.get();
  rc.arbiter = &arbiter;
  rc.tenant = a;
  RunTimeManager rtm(&entry.set, entry.trace.hot_spots.size(), rc);
  EXPECT_TRUE(arbiter.rebalance_possible());
  EXPECT_EQ(arbiter.next_event_cycle(a, 12345), 12345u);
  EXPECT_EQ(arbiter.quiescent_until(777), 777u);

  // A single-tenant static device is quiescent until someone asks.
  ArbiterConfig solo_config;
  solo_config.total_containers = 6;
  FabricArbiter solo(solo_config);
  const TenantId s = solo.add_tenant(tenant);
  const auto solo_scheduler = make_scheduler("HEF");
  RtmConfig src;
  src.scheduler = solo_scheduler.get();
  src.arbiter = &solo;
  src.tenant = s;
  RunTimeManager solo_rtm(&entry.set, entry.trace.hot_spots.size(), src);
  EXPECT_FALSE(solo.rebalance_possible());
  EXPECT_EQ(solo.next_event_cycle(s, 0), FabricArbiter::kNoEvent);
  EXPECT_EQ(solo.quiescent_until(0), FabricArbiter::kNoEvent);
}

}  // namespace
}  // namespace rispp
