// Tests for the textual platform-description parser.
#include <gtest/gtest.h>

#include "config/platform_parser.h"
#include "sched/registry.h"
#include "isa/h264_si_library.h"

namespace rispp::config {
namespace {

constexpr const char* kTinyPlatform = R"(
# two atoms, one SI
atom A 2 40 400
atom B 1 20 300

si "Fir" trap=50 molecules=4
  caps A=3 B=2
  layer A x6
  layer B x2
end
)";

TEST(PlatformParser, ParsesTinyPlatform) {
  const auto set = parse_platform_string(kTinyPlatform);
  EXPECT_EQ(set.atom_type_count(), 2u);
  ASSERT_EQ(set.si_count(), 1u);
  const auto id = set.find("Fir");
  ASSERT_TRUE(id.has_value());
  const SpecialInstruction& si = set.si(*id);
  EXPECT_EQ(si.molecules.size(), 4u);
  EXPECT_EQ(si.graph.node_count(), 8u);
  EXPECT_EQ(si.software_latency, 6u * 40 + 2u * 20 + 50);
  // Layers chain: B nodes depend on all A nodes.
  EXPECT_EQ(si.graph.node(6).preds.size(), 6u);
}

TEST(PlatformParser, BlocksRepeatSubGraphs) {
  const auto set = parse_platform_string(R"(
atom P 2 56 620
atom C 1 12 210
si "MC" trap=64
  caps P=4 C=2
  block x3
    layer P x2
    layer C x1
  end
end
)");
  const SpecialInstruction& si = set.si(0);
  EXPECT_EQ(si.graph.node_count(), 9u);
  const Molecule occ = si.graph.occurrences();
  EXPECT_EQ(occ[0], 6);
  EXPECT_EQ(occ[1], 3);
  // Blocks are independent: with one instance each, the critical path is one
  // block's chain (P then C), the rest serializes on resources.
  EXPECT_EQ(si.graph.critical_path(), 3u);
}

TEST(PlatformParser, QuotedNamesAndComments) {
  const auto set = parse_platform_string(R"(
atom "My Atom" 1 10 100   # trailing comment
si "My SI" trap=10        # another
  layer "My Atom" x4
end
)");
  EXPECT_TRUE(set.library().find("My Atom").has_value());
  EXPECT_TRUE(set.find("My SI").has_value());
}

TEST(PlatformParser, ReproducesTheH264SadSi) {
  const auto set = parse_platform_string(R"(
atom SADRow 2 64 410
si "SAD" trap=64 molecules=3
  caps SADRow=3
  layer SADRow x16
end
)");
  const auto builtin = h264sis::build_h264_si_set();
  const SpecialInstruction& parsed = set.si(0);
  const SpecialInstruction& reference = builtin.si(builtin.find("SAD").value());
  ASSERT_EQ(parsed.molecules.size(), reference.molecules.size());
  for (std::size_t m = 0; m < parsed.molecules.size(); ++m)
    EXPECT_EQ(parsed.molecules[m].latency, reference.molecules[m].latency);
  EXPECT_EQ(parsed.software_latency, reference.software_latency);
}

TEST(PlatformParser, MinDeterminantFiltersSmallMolecules) {
  const auto set = parse_platform_string(R"(
atom A 2 40 400
si "X" trap=50 min_det=3
  caps A=4
  layer A x8
end
)");
  for (const auto& m : set.si(0).molecules) EXPECT_GE(m.atoms.determinant(), 3u);
}

TEST(PlatformParser, ErrorsCarryLineNumbers) {
  const auto expect_error = [](const char* text, const char* fragment) {
    try {
      (void)parse_platform_string(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find("line"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
  };
  expect_error("bogus", "expected 'atom' or 'si'");
  expect_error("atom A 1 2", "atom needs");
  expect_error("atom A 1 2 3\nsi \"X\"\n  layer A xfoo\nend", "number");
  expect_error("atom A 1 2 3\nsi \"X\"\n  layer A x4\n", "unterminated");
  expect_error("atom A 1 2 3\nsi \"X\"\nend", "no layers");
  expect_error("atom A 1 2 3\nsi \"X\" bad=1\n  layer A x1\nend", "unknown si attribute");
}

TEST(PlatformParser, UnknownAtomInLayerThrows) {
  EXPECT_THROW((void)parse_platform_string(R"(
atom A 1 10 100
si "X" trap=10
  layer B x4
end
)"),
               std::logic_error);
}

TEST(PlatformParser, DescribeListsAtomsAndMolecules) {
  const auto set = parse_platform_string(kTinyPlatform);
  const std::string report = describe_platform(set);
  EXPECT_NE(report.find("atom A 2 40 400"), std::string::npos);
  EXPECT_NE(report.find("si \"Fir\""), std::string::npos);
  EXPECT_NE(report.find("molecules"), std::string::npos);
}

TEST(PlatformParser, ParsedPlatformSchedulesEndToEnd) {
  // The parsed platform is a first-class citizen: run a schedule through it.
  const auto set = parse_platform_string(kTinyPlatform);
  ScheduleRequest req;
  req.set = &set;
  req.selected = {SiRef{0, static_cast<MoleculeId>(set.si(0).molecules.size() - 1)}};
  req.available = Molecule(set.atom_type_count());
  req.expected_executions = {1000};
  const auto hef = make_scheduler("HEF");
  EXPECT_TRUE(is_valid_schedule(req, hef->schedule(req)));
}

}  // namespace
}  // namespace rispp::config
