// Tests of the functional H.264 kernels against naive references and their
// algebraic identities.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "base/prng.h"
#include "h264/deblock.h"
#include "h264/frame.h"
#include "h264/interpolate.h"
#include "h264/intra.h"
#include "h264/kernels.h"
#include "h264/quant.h"
#include "h264/synthetic_video.h"
#include "h264/transform.h"

namespace rispp::h264 {
namespace {

Plane random_plane(Xoshiro256& rng, int w, int h) {
  Plane p(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) p.at(x, y) = static_cast<Pixel>(rng.bounded(256));
  return p;
}

TEST(PlaneTest, ClampedAccess) {
  Plane p(4, 4);
  p.at(0, 0) = 10;
  p.at(3, 3) = 99;
  EXPECT_EQ(p.at_clamped(-5, -5), 10);
  EXPECT_EQ(p.at_clamped(100, 100), 99);
  EXPECT_THROW((void)p.at(4, 0), std::logic_error);
}

TEST(SadTest, MatchesNaiveReference) {
  Xoshiro256 rng(1);
  const Plane a = random_plane(rng, 64, 64);
  const Plane b = random_plane(rng, 64, 64);
  for (int trial = 0; trial < 20; ++trial) {
    const int cx = static_cast<int>(rng.bounded(48));
    const int cy = static_cast<int>(rng.bounded(48));
    const int rx = static_cast<int>(rng.range(-8, 55));
    const int ry = static_cast<int>(rng.range(-8, 55));
    std::uint32_t expected = 0;
    for (int y = 0; y < 16; ++y)
      for (int x = 0; x < 16; ++x)
        expected += static_cast<std::uint32_t>(
            std::abs(static_cast<int>(a.at(cx + x, cy + y)) - b.at_clamped(rx + x, ry + y)));
    EXPECT_EQ(sad_16x16(a, cx, cy, b, rx, ry), expected);
  }
}

TEST(SadTest, ZeroForIdenticalBlocks) {
  Xoshiro256 rng(2);
  const Plane a = random_plane(rng, 32, 32);
  EXPECT_EQ(sad_16x16(a, 8, 8, a, 8, 8), 0u);
}

TEST(SatdTest, ZeroForIdenticalBlocks) {
  Xoshiro256 rng(3);
  const Plane a = random_plane(rng, 32, 32);
  EXPECT_EQ(satd_4x4(a, 4, 4, a, 4, 4), 0u);
  EXPECT_EQ(satd_16x16(a, 8, 8, a, 8, 8), 0u);
}

TEST(SatdTest, DcDifferenceTransformsToSingleCoefficient) {
  // A constant residual d concentrates in the DC coefficient: SATD of a 4x4
  // block with constant difference d is |16*d|/2 = 8*|d|.
  Plane a(8, 8, 100), b(8, 8, 90);
  EXPECT_EQ(satd_4x4(a, 0, 0, b, 0, 0), 80u);
}

TEST(SatdTest, SatdLowerBoundedByHalfSad) {
  // Cauchy–Schwarz/Parseval: sum|H(d)| >= sum|d| per 4x4 block, so
  // 2*SATD >= SAD (up to the 16 floor-divisions of the /2 normalization).
  Xoshiro256 rng(4);
  const Plane a = random_plane(rng, 32, 32);
  const Plane b = random_plane(rng, 32, 32);
  for (int trial = 0; trial < 10; ++trial) {
    const int x = static_cast<int>(rng.bounded(16));
    const int y = static_cast<int>(rng.bounded(16));
    EXPECT_GE(2 * satd_16x16(a, x, y, b, x, y) + 32, sad_16x16(a, x, y, b, x, y));
  }
}

TEST(SatdTest, Blockwise16x16Decomposition) {
  Xoshiro256 rng(5);
  const Plane a = random_plane(rng, 32, 32);
  const Plane b = random_plane(rng, 32, 32);
  std::uint32_t sum = 0;
  for (int by = 0; by < 16; by += 4)
    for (int bx = 0; bx < 16; bx += 4) sum += satd_4x4(a, bx, by, b, bx, by);
  EXPECT_EQ(satd_16x16(a, 0, 0, b, 0, 0), sum);
}

TEST(TransformTest, DctRoundTripIsExactUpTo400) {
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    int in[16], coeff[16], out[16];
    for (int& v : in) v = static_cast<int>(rng.range(-255, 255));
    dct4x4(in, coeff);
    idct4x4(coeff, out);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], 400 * in[i]);
  }
}

TEST(TransformTest, DctOfConstantBlockIsDcOnly) {
  int in[16], coeff[16];
  for (int& v : in) v = 7;
  dct4x4(in, coeff);
  EXPECT_EQ(coeff[0], 16 * 7);
  for (int i = 1; i < 16; ++i) EXPECT_EQ(coeff[i], 0);
}

TEST(TransformTest, Hadamard4x4InvolutionUpTo16) {
  Xoshiro256 rng(7);
  int in[16], mid[16], out[16];
  for (int& v : in) v = static_cast<int>(rng.range(-1000, 1000));
  hadamard4x4(in, mid);
  hadamard4x4(mid, out);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], 16 * in[i]);
}

TEST(TransformTest, Hadamard2x2InvolutionUpTo4) {
  int in[4] = {13, -5, 8, 600}, mid[4], out[4];
  hadamard2x2(in, mid);
  hadamard2x2(mid, out);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], 4 * in[i]);
}

TEST(QuantTest, StepDoublesEverySixQp) {
  for (int qp = 0; qp + 6 <= 51; ++qp)
    EXPECT_EQ(quant_step(qp + 6), 2 * quant_step(qp));
}

TEST(QuantTest, RoundTripErrorBoundedByStep) {
  Xoshiro256 rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const int qp = static_cast<int>(rng.bounded(52));
    const int v = static_cast<int>(rng.range(-5000, 5000));
    const int rec = dequantize(quantize(v, qp), qp);
    EXPECT_LE(std::abs(rec - v), quant_step(qp));
  }
}

TEST(QuantTest, QuantizePreservesSignAndZero) {
  EXPECT_EQ(quantize(0, 20), 0);
  EXPECT_GT(quantize(10'000, 20), 0);
  EXPECT_LT(quantize(-10'000, 20), 0);
  EXPECT_EQ(quantize(-10'000, 20), -quantize(10'000, 20));
}

TEST(QuantTest, DescaleIdctRoundsSymmetrically) {
  EXPECT_EQ(descale_idct(400), 1);
  EXPECT_EQ(descale_idct(-400), -1);
  EXPECT_EQ(descale_idct(199), 0);
  EXPECT_EQ(descale_idct(200), 1);
  EXPECT_EQ(descale_idct(-200), -1);
}

TEST(InterpolateTest, FullPelIsIdentity) {
  Xoshiro256 rng(9);
  const Plane p = random_plane(rng, 32, 32);
  EXPECT_EQ(interpolate_half_pel(p, 5, 7, false, false), p.at(5, 7));
}

TEST(InterpolateTest, HalfPelOfConstantPlaneIsConstant)
{
  const Plane p(32, 32, 77);
  EXPECT_EQ(interpolate_half_pel(p, 10, 10, true, false), 77);
  EXPECT_EQ(interpolate_half_pel(p, 10, 10, false, true), 77);
  EXPECT_EQ(interpolate_half_pel(p, 10, 10, true, true), 77);
}

TEST(InterpolateTest, HorizontalHalfPelMatchesDirectFilter) {
  Xoshiro256 rng(10);
  const Plane p = random_plane(rng, 32, 32);
  const int x = 10, y = 12;
  const int raw = point_filter_6tap(p.at(x - 2, y), p.at(x - 1, y), p.at(x, y),
                                    p.at(x + 1, y), p.at(x + 2, y), p.at(x + 3, y));
  EXPECT_EQ(interpolate_half_pel(p, x, y, true, false), clip_pixel((raw + 16) >> 5));
}

TEST(InterpolateTest, MotionCompensationFullPelCopies) {
  Xoshiro256 rng(11);
  const Plane p = random_plane(rng, 64, 64);
  Pixel dst[16 * 16];
  motion_compensate_16x16(p, 16, 16, MotionVector{4, -6}, dst);  // (+2,-3) full pel
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) EXPECT_EQ(dst[y * 16 + x], p.at(16 + 2 + x, 16 - 3 + y));
}

TEST(InterpolateTest, NegativeHalfPelVectorDecomposition) {
  // mv.x = -3 half-pels = -2 full + half: base floor(-3/2) = -2, half set.
  const MotionVector mv{-3, 0};
  EXPECT_TRUE(mv.is_half_pel());
  Xoshiro256 rng(12);
  const Plane p = random_plane(rng, 64, 64);
  Pixel dst[16 * 16];
  motion_compensate_16x16(p, 32, 32, mv, dst);
  EXPECT_EQ(dst[0], interpolate_half_pel(p, 32 - 2, 32, true, false));
}

TEST(IntraTest, HdcAveragesLeftColumn) {
  Plane recon(32, 32, 0);
  for (int y = 0; y < 16; ++y) recon.at(15, 16 + y) = 100;
  Pixel pred[16 * 16];
  ipred_hdc_16x16(recon, 16, 16, pred);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(pred[i], 100);
}

TEST(IntraTest, VdcAveragesTopRow) {
  Plane recon(32, 32, 0);
  for (int x = 0; x < 16; ++x) recon.at(16 + x, 15) = 60;
  Pixel pred[16 * 16];
  ipred_vdc_16x16(recon, 16, 16, pred);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(pred[i], 60);
}

TEST(IntraTest, FrameBorderFallsBackTo128) {
  Plane recon(32, 32, 200);
  Pixel pred[16 * 16];
  ipred_hdc_16x16(recon, 0, 0, pred);
  EXPECT_EQ(pred[0], 128);
  ipred_vdc_16x16(recon, 0, 0, pred);
  EXPECT_EQ(pred[0], 128);
}

TEST(DeblockTest, SmoothsAHardEdge) {
  Plane p(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) p.at(x, y) = x < 16 ? 100 : 120;
  const DeblockThresholds th;
  const int filtered = deblock_bs4_vertical(p, 16, 0, th);
  EXPECT_EQ(filtered, 16);
  // The step is smaller after filtering.
  EXPECT_LT(std::abs(p.at(16, 4) - p.at(15, 4)), 20);
}

TEST(DeblockTest, LeavesStrongRealEdgesAlone) {
  Plane p(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) p.at(x, y) = x < 16 ? 20 : 220;  // |p0-q0|=200 >= alpha
  const DeblockThresholds th;
  EXPECT_EQ(deblock_bs4_vertical(p, 16, 0, th), 0);
  EXPECT_EQ(p.at(16, 4), 220);
}

TEST(DeblockTest, HorizontalMirrorsVertical) {
  Plane v(32, 32), h(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x) {
      v.at(x, y) = x < 16 ? 100 : 118;
      h.at(x, y) = y < 16 ? 100 : 118;
    }
  const DeblockThresholds th;
  EXPECT_EQ(deblock_bs4_vertical(v, 16, 0, th), deblock_bs4_horizontal(h, 0, 16, th));
  EXPECT_EQ(v.at(16, 3), h.at(3, 16));
}

TEST(SyntheticVideoTest, DeterministicAndMoving) {
  VideoConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  SyntheticVideo gen1(cfg), gen2(cfg);
  const Frame f1a = gen1.next();
  const Frame f1b = gen2.next();
  // Determinism: same config, same frames.
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 64; ++x) ASSERT_EQ(f1a.y.at(x, y), f1b.y.at(x, y));
  // Motion: consecutive frames differ substantially.
  const Frame f2 = gen1.next();
  std::uint64_t diff = 0;
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 64; ++x) diff += std::abs(static_cast<int>(f2.y.at(x, y)) - f1a.y.at(x, y));
  EXPECT_GT(diff, 1000u);
}

// ---------------------------------------------------------------------------
// Scalar/SIMD backend equivalence. The SIMD kernels claim bit-exactness; the
// fuzzers below hammer that claim with random content, random block
// positions, and reference positions that cross the frame border (the
// edge-clamped path, where the SIMD kernels must fall back to scalar).

TEST(KernelBackendTest, OverrideAndAvailability) {
  const KernelBackend entry = active_kernel_backend();
  set_kernel_backend(KernelBackend::kScalar);
  EXPECT_EQ(active_kernel_backend(), KernelBackend::kScalar);
  set_kernel_backend(KernelBackend::kSimd);
  // Selecting kSimd without the backend compiled in keeps scalar.
  EXPECT_EQ(active_kernel_backend(),
            simd_available() ? KernelBackend::kSimd : KernelBackend::kScalar);
  set_kernel_backend(entry);
}

TEST(KernelBackendTest, DispatchFollowsOverride) {
  Xoshiro256 rng(20);
  const Plane a = random_plane(rng, 48, 48);
  const Plane b = random_plane(rng, 48, 48);
  const KernelBackend entry = active_kernel_backend();
  set_kernel_backend(KernelBackend::kScalar);
  const std::uint32_t scalar = sad_16x16(a, 8, 8, b, 9, 7);
  set_kernel_backend(KernelBackend::kSimd);
  const std::uint32_t dispatched = sad_16x16(a, 8, 8, b, 9, 7);
  set_kernel_backend(entry);
  EXPECT_EQ(scalar, sad_16x16_scalar(a, 8, 8, b, 9, 7));
  EXPECT_EQ(dispatched, scalar);  // bit-exact whichever backend ran
}

TEST(KernelEquivalenceTest, SadAndSatdFuzz) {
  if (!simd_available()) GTEST_SKIP() << "SIMD backend not compiled in";
  Xoshiro256 rng(21);
  const Plane a = random_plane(rng, 80, 64);
  const Plane b = random_plane(rng, 80, 64);
  for (int trial = 0; trial < 400; ++trial) {
    const int cx = static_cast<int>(rng.bounded(80 - 16 + 1));
    const int cy = static_cast<int>(rng.bounded(64 - 16 + 1));
    // Reference positions deliberately overshoot the plane on every side so
    // the clamped out-of-bounds path is exercised alongside the fast path.
    const int rx = static_cast<int>(rng.range(-24, 88));
    const int ry = static_cast<int>(rng.range(-24, 72));
    ASSERT_EQ(sad_16x16_scalar(a, cx, cy, b, rx, ry), sad_16x16_simd(a, cx, cy, b, rx, ry))
        << "cx=" << cx << " cy=" << cy << " rx=" << rx << " ry=" << ry;
    ASSERT_EQ(satd_16x16_scalar(a, cx, cy, b, rx, ry),
              satd_16x16_simd(a, cx, cy, b, rx, ry))
        << "cx=" << cx << " cy=" << cy << " rx=" << rx << " ry=" << ry;
  }
}

TEST(KernelEquivalenceTest, SatdPredFuzz) {
  if (!simd_available()) GTEST_SKIP() << "SIMD backend not compiled in";
  Xoshiro256 rng(22);
  const Plane a = random_plane(rng, 64, 64);
  for (int trial = 0; trial < 200; ++trial) {
    Pixel pred[16 * 16];
    for (auto& p : pred) p = static_cast<Pixel>(rng.bounded(256));
    const int cx = static_cast<int>(rng.bounded(64 - 16 + 1));
    const int cy = static_cast<int>(rng.bounded(64 - 16 + 1));
    ASSERT_EQ(satd_16x16_pred_scalar(a, cx, cy, pred),
              satd_16x16_pred_simd(a, cx, cy, pred))
        << "cx=" << cx << " cy=" << cy;
  }
}

TEST(KernelEquivalenceTest, MotionCompensateFuzz) {
  if (!simd_available()) GTEST_SKIP() << "SIMD backend not compiled in";
  Xoshiro256 rng(23);
  const Plane ref = random_plane(rng, 80, 64);
  for (int trial = 0; trial < 400; ++trial) {
    // MB origins across the whole plane (including border MBs) and motion
    // vectors spanning all four full/half phase combinations, far enough to
    // push the filter footprint out of bounds.
    const int px = static_cast<int>(rng.bounded(80 - 16 + 1));
    const int py = static_cast<int>(rng.bounded(64 - 16 + 1));
    const MotionVector mv{static_cast<int>(rng.range(-40, 40)),
                          static_cast<int>(rng.range(-40, 40))};
    Pixel scalar_dst[16 * 16], simd_dst[16 * 16];
    motion_compensate_16x16_scalar(ref, px, py, mv, scalar_dst);
    motion_compensate_16x16_simd(ref, px, py, mv, simd_dst);
    for (int i = 0; i < 16 * 16; ++i)
      ASSERT_EQ(scalar_dst[i], simd_dst[i])
          << "px=" << px << " py=" << py << " mv=(" << mv.x << "," << mv.y << ") i=" << i;
  }
}

TEST(KernelEquivalenceTest, TransformFuzz) {
  if (!simd_available()) GTEST_SKIP() << "SIMD backend not compiled in";
  Xoshiro256 rng(24);
  for (int trial = 0; trial < 300; ++trial) {
    int in[16], scalar_out[16], simd_out[16];
    for (int& v : in) v = static_cast<int>(rng.range(-2048, 2048));
    dct4x4_scalar(in, scalar_out);
    dct4x4_simd(in, simd_out);
    for (int i = 0; i < 16; ++i) ASSERT_EQ(scalar_out[i], simd_out[i]) << "dct i=" << i;
    idct4x4_scalar(in, scalar_out);
    idct4x4_simd(in, simd_out);
    for (int i = 0; i < 16; ++i) ASSERT_EQ(scalar_out[i], simd_out[i]) << "idct i=" << i;
    hadamard4x4_scalar(in, scalar_out);
    hadamard4x4_simd(in, simd_out);
    for (int i = 0; i < 16; ++i) ASSERT_EQ(scalar_out[i], simd_out[i]) << "ht i=" << i;
  }
}

TEST(PsnrTest, IdenticalIs99AndNoisyIsFinite) {
  Frame a(32, 32), b(32, 32);
  EXPECT_EQ(psnr_y(a, a), 99.0);
  b.y.at(3, 3) = 50;
  const double p = psnr_y(a, b);
  EXPECT_GT(p, 20.0);
  EXPECT_LT(p, 99.0);
}

}  // namespace
}  // namespace rispp::h264
