// Design-space exploration (src/dse, DESIGN §10): mutation soundness, the
// memoized fast path against its naive oracle, thread-count determinism of
// the search, Pareto/bound invariants, and the cache-isolation guarantees
// generated ISAs rely on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "base/env.h"
#include "base/parallel.h"
#include "base/prng.h"
#include "config/h264_platform.h"
#include "config/platform_parser.h"
#include "dpg/makespan_memo.h"
#include "dse/design_point.h"
#include "dse/engine.h"
#include "dse/eval_cache.h"
#include "dse/pareto.h"
#include "fleet/shared_decision_cache.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "isa/si.h"
#include "select/selection.h"
#include "sim/trace.h"

namespace rispp {
namespace {

SiId find_si(const SpecialInstructionSet& set, const std::string& name) {
  const auto id = set.find(name);
  EXPECT_TRUE(id.has_value()) << name;
  return id.value();
}

// A small deterministic trace over three hot spots of the H.264 platform —
// enough structure (mixed SIs, uneven instance lengths) to exercise
// selection and scheduling, small enough that a full DSE run stays fast.
WorkloadTrace small_trace(const SpecialInstructionSet& set) {
  const SiId sad = find_si(set, "SAD");
  const SiId satd = find_si(set, "SATD");
  const SiId dct = find_si(set, "(I)DCT");
  const SiId mc = find_si(set, "MC 4");
  const SiId lf = find_si(set, "LF_BS4");
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"ME", {sad, satd}, 8},
                     HotSpotInfo{"EncLoop", {dct, mc}, 12},
                     HotSpotInfo{"LF", {lf}, 6}};
  Xoshiro256 rng(7);
  for (int i = 0; i < 30; ++i) {
    HotSpotInstance inst;
    inst.hot_spot = static_cast<HotSpotId>(i % 3);
    inst.entry_overhead = 500 + rng.bounded(500);
    const std::vector<SiId>& sis = trace.hot_spots[inst.hot_spot].sis;
    const int executions = 40 + static_cast<int>(rng.bounded(60));
    for (int e = 0; e < executions; ++e)
      inst.executions.push_back(sis[rng.bounded(sis.size())]);
    trace.instances.push_back(std::move(inst));
  }
  trace.build_runs();
  return trace;
}

// Short search shape shared by the engine tests.
dse::DseOptions small_options() {
  dse::DseOptions options;
  options.generations = 3;
  options.population = 3;
  options.mutations_per_survivor = 4;
  options.budget = 60;
  options.seed = 11;
  options.ac_budgets = {6, 10};
  return options;
}

std::vector<config::PlatformSpec> mutated_specs(unsigned count, std::uint64_t seed) {
  std::vector<config::PlatformSpec> specs;
  dse::DesignPoint point = dse::degraded_seed(config::h264_platform_spec());
  Xoshiro256 rng(seed);
  for (unsigned i = 0; i < count; ++i) {
    dse::mutate(point, rng);
    specs.push_back(point.spec);
  }
  return specs;
}

// The platform-language description of the Table 1 library must build the
// exact observable ISA the hand-built C++ constructor does — the DSE's
// comparison target and the trace's recording ISA are then interchangeable.
TEST(Dse, PlatformSpecMatchesHandbuiltLibrary) {
  const SpecialInstructionSet from_spec = config::build_platform(config::h264_platform_spec());
  const SpecialInstructionSet handbuilt = h264sis::build_h264_si_set();
  EXPECT_EQ(fingerprint(from_spec), fingerprint(handbuilt));
}

// Every reachable candidate serializes through the platform language and
// back without loss: parse(emit(s)) == s and the rebuilt set's fingerprint
// is unchanged — what lets `rispp_dse --out` round-trip its discovery.
TEST(Dse, MutatedSpecsRoundTripThroughEmit) {
  MakespanMemo memo;
  for (const config::PlatformSpec& spec : mutated_specs(25, 3)) {
    const std::string text = config::emit_platform(spec);
    const config::PlatformSpec reparsed = config::parse_platform_spec_string(text);
    ASSERT_EQ(reparsed, spec) << text;
    EXPECT_EQ(fingerprint(config::build_platform(reparsed, &memo)),
              fingerprint(config::build_platform(spec, &memo)));
  }
}

// Work preservation: mutations repartition atoms and retune caps but never
// change the elementary work an SI performs, so the software-only replay —
// the speedup denominator shared by every candidate — is invariant.
TEST(Dse, MutationsPreserveSoftwareReference) {
  const config::PlatformSpec handbuilt = config::h264_platform_spec();
  MakespanMemo memo;
  const SpecialInstructionSet seed_set =
      config::build_platform(dse::degraded_seed(handbuilt).spec, &memo);
  const WorkloadTrace trace = small_trace(seed_set);
  const Cycles reference = dse::software_reference_cycles(seed_set, trace);
  for (const config::PlatformSpec& spec : mutated_specs(15, 5)) {
    const SpecialInstructionSet set = config::build_platform(spec, &memo);
    EXPECT_EQ(dse::software_reference_cycles(set, trace), reference);
  }
}

// The MakespanMemo is a pure-function cache: building a spec through a memo
// (fresh or warm) yields the same observable ISA as the memo-less full
// list-scheduling pass.
TEST(Dse, MemoizedBuildMatchesReference) {
  MakespanMemo memo;
  for (const config::PlatformSpec& spec : mutated_specs(20, 9)) {
    const std::uint64_t reference = fingerprint(config::build_platform(spec, nullptr));
    EXPECT_EQ(fingerprint(config::build_platform(spec, &memo)), reference);
    // Warm second build: every graph hits the memo now.
    EXPECT_EQ(fingerprint(config::build_platform(spec, &memo)), reference);
  }
}

// The engine's fast path (memoized build + run-batched replay + decision
// cache) must be bit-exact with the naive full re-simulation it claims to
// accelerate — same per-budget cycle counts, not just close speedups.
TEST(Dse, FastPathEvaluationBitExactWithNaive) {
  const config::PlatformSpec handbuilt = config::h264_platform_spec();
  MakespanMemo memo;
  const SpecialInstructionSet seed_set =
      config::build_platform(dse::degraded_seed(handbuilt).spec, &memo);
  const WorkloadTrace trace = small_trace(seed_set);
  const Cycles reference = dse::software_reference_cycles(seed_set, trace);
  dse::DseOptions options = small_options();
  options.makespan_memo = &memo;
  for (const config::PlatformSpec& spec : mutated_specs(8, 13)) {
    const dse::EvalResult fast = dse::evaluate_candidate(spec, trace, reference, options);
    const dse::EvalResult naive = dse::evaluate_candidate_naive(spec, trace, reference, options);
    EXPECT_EQ(fast.total_cycles, naive.total_cycles);
    EXPECT_EQ(fast.slices, naive.slices);
    EXPECT_DOUBLE_EQ(fast.mean_speedup, naive.mean_speedup);
  }
}

dse::DseResult run_small_search(unsigned threads) {
  const config::PlatformSpec handbuilt = config::h264_platform_spec();
  MakespanMemo memo;
  dse::EvalCache cache;
  ThreadPool pool(threads);
  dse::DseOptions options = small_options();
  options.pool = &pool;
  options.eval_cache = &cache;
  options.makespan_memo = &memo;
  const SpecialInstructionSet seed_set =
      config::build_platform(dse::degraded_seed(handbuilt).spec, &memo);
  return dse::run_dse(small_trace(seed_set), handbuilt, options);
}

// The search is a deterministic function of (trace, seed): the PRNG never
// leaves the serial proposal stage and parallel stages write index-addressed
// slots, so any worker count discovers the identical ISA and Pareto front.
TEST(Dse, DeterministicAcrossThreadCounts) {
  const dse::DseResult one = run_small_search(1);
  const dse::DseResult four = run_small_search(4);
  EXPECT_EQ(one.best.fingerprint, four.best.fingerprint);
  EXPECT_EQ(one.platform_text, four.platform_text);
  EXPECT_EQ(one.front, four.front);
  EXPECT_EQ(one.proposals, four.proposals);
  EXPECT_EQ(one.replays + one.cache_hits + one.abandoned,
            four.replays + four.cache_hits + four.abandoned);
  EXPECT_EQ(one.best.point.spec, four.best.point.spec);
  // And the search actually searches: the best candidate beats the degraded
  // seed it started from (the front's smallest point).
  EXPECT_GT(one.best.eval.mean_speedup, one.front.front().speedup);
}

// Pareto invariants under a random insert stream: members are sorted by
// slices with strictly increasing speedup (no member dominates another), and
// dominates() agrees with membership.
TEST(Dse, ParetoFrontInvariants) {
  Xoshiro256 rng(0xda7e);
  dse::ParetoFront front;
  for (int i = 0; i < 500; ++i) {
    dse::ParetoPoint p;
    p.slices = 50 + static_cast<unsigned>(rng.bounded(200));
    p.speedup = 1.0 + static_cast<double>(rng.bounded(1000)) / 50.0;
    p.fingerprint = rng.next();
    const bool entered = front.insert(p);
    // An inserted point is never dominated by the resulting front (beyond
    // itself); a rejected one is always weakly dominated.
    if (!entered) EXPECT_TRUE(front.dominates(p.slices, p.speedup));
  }
  const auto& points = front.points();
  ASSERT_FALSE(points.empty());
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i - 1].slices, points[i].slices);
    EXPECT_LT(points[i - 1].speedup, points[i].speedup);
  }
  for (const dse::ParetoPoint& p : points) {
    EXPECT_TRUE(front.dominates(p.slices, p.speedup));
    EXPECT_FALSE(front.dominates(p.slices, p.speedup + 1e-9));
  }
}

// The early-abandon bound must be a sound upper bound on the achievable mean
// speedup — otherwise pruning could drop the true optimum. Mirrors the
// engine's bound computation and checks it against full evaluations.
TEST(Dse, AbandonBoundIsSoundUpperBound) {
  const config::PlatformSpec handbuilt = config::h264_platform_spec();
  MakespanMemo memo;
  const SpecialInstructionSet seed_set =
      config::build_platform(dse::degraded_seed(handbuilt).spec, &memo);
  const WorkloadTrace trace = small_trace(seed_set);
  const Cycles reference = dse::software_reference_cycles(seed_set, trace);
  dse::DseOptions options = small_options();
  options.makespan_memo = &memo;
  const unsigned max_budget = 10;
  for (const config::PlatformSpec& spec : mutated_specs(10, 21)) {
    const SpecialInstructionSet set = config::build_platform(spec, &memo);
    Cycles ideal = trace.overhead_cycles();
    for (SiId si = 0; si < set.si_count(); ++si)
      ideal += trace.executions_of(si) * best_case_latency(set, si, max_budget);
    const double bound =
        static_cast<double>(reference) / static_cast<double>(std::max<Cycles>(ideal, 1));
    const dse::EvalResult eval = dse::evaluate_candidate(spec, trace, reference, options);
    EXPECT_GE(bound, eval.mean_speedup) << config::emit_platform(spec);
  }
}

// Everything the caches may key on: atom types, SI names, trap latencies and
// the full molecule tables. Two sets with equal observable text replay any
// trace identically; the fingerprint must separate everything else.
std::string observable_text(const SpecialInstructionSet& set) {
  std::string out;
  for (AtomTypeId t = 0; t < set.atom_type_count(); ++t) {
    const AtomType& type = set.library().type(t);
    out += type.name + ":" + std::to_string(type.op_latency) + "," +
           std::to_string(type.sw_op_cycles) + "," + std::to_string(type.slices) + ";";
  }
  for (SiId si = 0; si < set.si_count(); ++si) {
    const SpecialInstruction& s = set.si(si);
    out += s.name + "=" + std::to_string(s.software_latency) + "[";
    for (const MoleculeImpl& m : s.molecules) {
      for (std::size_t d = 0; d < m.atoms.dimension(); ++d)
        out += std::to_string(m.atoms[d]) + ".";
      out += "@" + std::to_string(m.latency) + "|";
    }
    out += "]";
  }
  return out;
}

// Fingerprints are the isolation key every cache layer hangs off. Over a
// long mutation walk: a fingerprint maps to exactly one observable ISA (two
// specs may legitimately share one — e.g. caps past the DAG's width add no
// molecules — but never the reverse), distinct fingerprints give generated
// ISAs distinct trace-cache paths, and the fleet's shared decision cache
// interns them as distinct domains.
TEST(Dse, FingerprintIsolatesGeneratedIsas) {
  MakespanMemo memo;
  std::map<std::uint64_t, std::string> seen;  // fingerprint -> observable ISA
  std::set<std::string> distinct_isas;
  fleet::SharedDecisionCache shared(1 << 8, 2);
  std::set<fleet::SharedDecisionCache::DomainId> domains;
  std::set<std::string> trace_paths;
  std::set<std::uint64_t> fingerprints;
  for (const config::PlatformSpec& spec : mutated_specs(120, 31)) {
    const SpecialInstructionSet set = config::build_platform(spec, &memo);
    const std::uint64_t fp = fingerprint(set);
    const std::string isa = observable_text(set);
    const auto [it, inserted] = seen.emplace(fp, isa);
    if (!inserted) EXPECT_EQ(it->second, isa) << "fingerprint collision";
    distinct_isas.insert(isa);
    fingerprints.insert(fp);
    domains.insert(shared.register_domain(fp, "HEF", 100, 0));
    trace_paths.insert(h264::trace_cache_path(set, h264::WorkloadConfig{}).string());
  }
  // Distinct observable ISAs stay distinct through every keying layer.
  EXPECT_EQ(fingerprints.size(), distinct_isas.size());
  EXPECT_EQ(domains.size(), fingerprints.size());
  EXPECT_EQ(trace_paths.size(), fingerprints.size());
  EXPECT_GT(fingerprints.size(), 20u);  // the walk actually moved
  // Re-registration interns, never forks.
  for (const auto& [fp, isa] : seen)
    EXPECT_TRUE(domains.count(shared.register_domain(fp, "HEF", 100, 0)));
}

// The eval cache key pairs the ISA fingerprint with the evaluation context:
// the same ISA under a different scheduler/budget/trace must miss.
TEST(Dse, EvalCacheKeysOnContext) {
  dse::EvalCache cache;
  dse::EvalResult result;
  result.mean_speedup = 2.0;
  result.slices = 10;
  cache.insert(/*fingerprint=*/42, /*context=*/1, result);
  EXPECT_TRUE(cache.lookup(42, 1).has_value());
  EXPECT_FALSE(cache.lookup(42, 2).has_value());
  EXPECT_FALSE(cache.lookup(43, 1).has_value());
  // Contexts differ when any evaluation knob differs.
  const config::PlatformSpec handbuilt = config::h264_platform_spec();
  const SpecialInstructionSet set = config::build_platform(handbuilt);
  const WorkloadTrace trace = small_trace(set);
  dse::DseOptions a = small_options();
  dse::DseOptions b = a;
  b.scheduler = "SJF";
  dse::DseOptions c = a;
  c.ac_budgets = {6, 12};
  EXPECT_NE(dse::eval_context_digest(trace, 1000, a), dse::eval_context_digest(trace, 1000, b));
  EXPECT_NE(dse::eval_context_digest(trace, 1000, a), dse::eval_context_digest(trace, 1000, c));
  EXPECT_NE(dse::eval_context_digest(trace, 1000, a), dse::eval_context_digest(trace, 999, a));
}

// Garbage in the DSE env knobs must be a loud exit-2 naming the variable —
// never a silent fall-back onto a default search (rispp_dse reads these
// through the same parse_env_int the other drivers use).
TEST(Dse, EnvParseErrorsExitLoudly) {
  ::setenv("RISPP_DSE_SEED", "abc", 1);
  EXPECT_EXIT(parse_env_int("RISPP_DSE_SEED", 1, 0, 1'000'000'000'000L),
              ::testing::ExitedWithCode(kEnvParseExitCode), "RISPP_DSE_SEED");
  ::unsetenv("RISPP_DSE_SEED");
  ::setenv("RISPP_DSE_GENERATIONS", "-5", 1);
  EXPECT_EXIT(parse_env_int("RISPP_DSE_GENERATIONS", 16, 1, 100000),
              ::testing::ExitedWithCode(kEnvParseExitCode), "RISPP_DSE_GENERATIONS");
  ::unsetenv("RISPP_DSE_GENERATIONS");
  EXPECT_EQ(parse_env_int("RISPP_DSE_SEED", 1, 0, 1'000'000'000'000L), 1);
}

}  // namespace
}  // namespace rispp
