// Tests for traces, the cycle-level executor and bucketed statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/software_only.h"
#include "h264/workload.h"
#include "isa/h264_si_library.h"
#include "jpeg/jpeg_si_library.h"
#include "jpeg/jpeg_workload.h"
#include "sim/executor.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace rispp {
namespace {

WorkloadTrace tiny_trace() {
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"A", {0, 1}, 5}, HotSpotInfo{"B", {1}, 3}};
  trace.instances = {
      HotSpotInstance{0, {0, 1, 0}, 100},
      HotSpotInstance{1, {1, 1}, 50},
  };
  return trace;
}

/// Backend with fixed latencies for executor arithmetic tests.
class FixedBackend final : public ExecutionBackend {
 public:
  explicit FixedBackend(std::vector<Cycles> latencies) : latencies_(std::move(latencies)) {}
  std::string_view name() const override { return "Fixed"; }
  void on_hot_spot_entry(const WorkloadTrace&, std::size_t, Cycles) override { ++entries_; }
  void on_hot_spot_exit(Cycles) override { ++exits_; }
  Cycles si_execution_latency(SiId si, Cycles) override { return latencies_[si]; }
  int entries_ = 0, exits_ = 0;

 private:
  std::vector<Cycles> latencies_;
};

TEST(Executor, AccountsOverheadsAndLatencies) {
  const WorkloadTrace trace = tiny_trace();
  FixedBackend backend({10, 20});
  SimStats stats(2);
  const SimResult result = run_trace(trace, backend, &stats);
  // Instance 0: 100 entry + (10+5)+(20+5)+(10+5) = 155.
  // Instance 1: 50 entry + (20+3)+(20+3) = 96.
  EXPECT_EQ(result.total_cycles, 155u + 96u);
  EXPECT_EQ(result.si_executions, 5u);
  EXPECT_EQ(backend.entries_, 2);
  EXPECT_EQ(backend.exits_, 2);
  EXPECT_EQ(stats.executions(0), 2u);
  EXPECT_EQ(stats.executions(1), 3u);
  ASSERT_EQ(result.hot_spot_cycles.size(), 2u);
  EXPECT_EQ(result.hot_spot_cycles[0], 155u);
  EXPECT_EQ(result.hot_spot_cycles[1], 96u);
}

TEST(Stats, BucketsSplitAt100KCycles) {
  SimStats stats(1);
  stats.record_execution(0, 0, 10);
  stats.record_execution(0, 99'999, 10);
  stats.record_execution(0, 100'000, 10);
  stats.record_execution(0, 250'000, 10);
  EXPECT_EQ(stats.bucket_executions(0, 0), 2u);
  EXPECT_EQ(stats.bucket_executions(0, 1), 1u);
  EXPECT_EQ(stats.bucket_executions(0, 2), 1u);
  EXPECT_EQ(stats.bucket_executions(0, 3), 0u);
  EXPECT_EQ(stats.bucket_count(), 3u);
  EXPECT_EQ(stats.total_executions(), 4u);
}

TEST(Stats, LatencyTimelineRecordsChangePoints) {
  SimStats stats(1);
  stats.record_execution(0, 10, 500);
  stats.record_execution(0, 20, 500);  // same latency -> no new point
  stats.record_execution(0, 30, 100);
  const auto& tl = stats.latency_timeline(0);
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl[0].at, 10u);
  EXPECT_EQ(tl[0].latency, 500u);
  EXPECT_EQ(tl[1].at, 30u);
  EXPECT_EQ(tl[1].latency, 100u);
}

TEST(Trace, TotalsAndPerSiCounts) {
  const WorkloadTrace trace = tiny_trace();
  EXPECT_EQ(trace.total_si_executions(), 5u);
  EXPECT_EQ(trace.executions_of(0), 2u);
  EXPECT_EQ(trace.executions_of(1), 3u);
  EXPECT_EQ(trace.executions_of(7), 0u);
}

TEST(Trace, BinaryRoundTrip) {
  const WorkloadTrace trace = tiny_trace();
  std::stringstream ss;
  trace.save(ss);
  const WorkloadTrace loaded = WorkloadTrace::load(ss);
  ASSERT_EQ(loaded.hot_spots.size(), trace.hot_spots.size());
  EXPECT_EQ(loaded.hot_spots[0].name, "A");
  EXPECT_EQ(loaded.hot_spots[0].sis, trace.hot_spots[0].sis);
  EXPECT_EQ(loaded.hot_spots[1].per_execution_overhead, 3u);
  ASSERT_EQ(loaded.instances.size(), trace.instances.size());
  EXPECT_EQ(loaded.instances[0].executions, trace.instances[0].executions);
  EXPECT_EQ(loaded.instances[1].entry_overhead, 50u);
}

TEST(Trace, RejectsGarbage) {
  std::stringstream ss;
  ss << "this is not a trace";
  EXPECT_THROW(WorkloadTrace::load(ss), std::logic_error);
}

TEST(Trace, RoundTripCarriesRuns) {
  // v2 serializes the RLE run form: a load never rebuilds it.
  WorkloadTrace trace = tiny_trace();
  trace.build_runs();
  std::stringstream ss;
  trace.save(ss);
  const WorkloadTrace loaded = WorkloadTrace::load(ss);
  EXPECT_TRUE(loaded.runs_built());
  ASSERT_EQ(loaded.instances.size(), trace.instances.size());
  for (std::size_t i = 0; i < trace.instances.size(); ++i) {
    ASSERT_EQ(loaded.instances[i].runs.size(), trace.instances[i].runs.size());
    for (std::size_t r = 0; r < trace.instances[i].runs.size(); ++r) {
      EXPECT_EQ(loaded.instances[i].runs[r].si, trace.instances[i].runs[r].si);
      EXPECT_EQ(loaded.instances[i].runs[r].count, trace.instances[i].runs[r].count);
    }
  }
  EXPECT_EQ(loaded.total_si_executions(), trace.total_si_executions());
  EXPECT_EQ(loaded.executions_of(0), trace.executions_of(0));
  EXPECT_EQ(loaded.executions_of(1), trace.executions_of(1));
}

TEST(Trace, SaveEncodesRunsWhenNotBuilt) {
  // Even a trace saved before build_runs() yields a v2 file with runs.
  const WorkloadTrace trace = tiny_trace();  // runs never built
  std::stringstream ss;
  trace.save(ss);
  const WorkloadTrace loaded = WorkloadTrace::load(ss);
  EXPECT_TRUE(loaded.runs_built());
  ASSERT_EQ(loaded.instances[0].runs.size(), 3u);  // {0},{1},{0}
  ASSERT_EQ(loaded.instances[1].runs.size(), 1u);  // {1,1} coalesced
  EXPECT_EQ(loaded.instances[1].runs[0].count, 2u);
}

TEST(Trace, RejectsV1FormatWithRegenerateMessage) {
  // A v1 file ("RTRC" magic, no serialized runs) must be rejected outright,
  // not misparsed: the magic changed with the format.
  std::stringstream ss;
  const std::uint32_t v1_magic = 0x52545243;
  ss.write(reinterpret_cast<const char*>(&v1_magic), sizeof v1_magic);
  const std::uint32_t hot_spots = 1;  // plausible v1 payload after the magic
  ss.write(reinterpret_cast<const char*>(&hot_spots), sizeof hot_spots);
  try {
    WorkloadTrace::load(ss);
    FAIL() << "v1 trace was not rejected";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("regenerate"), std::string::npos) << e.what();
  }
}

TEST(Trace, SerializedRunsMatchBuildRunsOnRealWorkloads) {
  // Migration guarantee: for real traces (H.264 and JPEG) the serialized run
  // form is exactly what build_runs() would compute from the executions.
  const auto check = [](const WorkloadTrace& generated) {
    std::stringstream ss;
    generated.save(ss);
    const WorkloadTrace loaded = WorkloadTrace::load(ss);
    WorkloadTrace rebuilt = loaded;
    rebuilt.build_runs();
    ASSERT_EQ(loaded.instances.size(), rebuilt.instances.size());
    for (std::size_t i = 0; i < loaded.instances.size(); ++i) {
      ASSERT_EQ(loaded.instances[i].runs.size(), rebuilt.instances[i].runs.size())
          << "instance " << i;
      for (std::size_t r = 0; r < loaded.instances[i].runs.size(); ++r) {
        EXPECT_EQ(loaded.instances[i].runs[r].si, rebuilt.instances[i].runs[r].si);
        EXPECT_EQ(loaded.instances[i].runs[r].count, rebuilt.instances[i].runs[r].count);
      }
    }
    EXPECT_EQ(loaded.total_si_executions(), rebuilt.total_si_executions());
  };
  {
    h264::WorkloadConfig config;
    config.frames = 3;
    config.video.width = 96;
    config.video.height = 64;
    check(h264::generate_h264_workload(h264sis::build_h264_si_set(), config).trace);
  }
  {
    jpeg::JpegWorkloadConfig config;
    config.images = 2;
    config.width = 128;
    config.height = 96;
    check(jpeg::generate_jpeg_workload(jpegsis::build_jpeg_si_set(), config).trace);
  }
}

TEST(Trace, RejectsInconsistentRuns) {
  // Runs whose counts do not sum to the execution count are corruption.
  WorkloadTrace trace = tiny_trace();
  trace.build_runs();
  trace.instances[0].runs[0].count += 1;  // now sum(runs) != executions
  std::stringstream ss;
  trace.save(ss);
  EXPECT_THROW(WorkloadTrace::load(ss), std::logic_error);
}

TEST(Executor, SoftwareOnlyMatchesClosedForm) {
  const auto set = h264sis::build_h264_si_set();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"X", {0}, 7}};
  trace.instances = {HotSpotInstance{0, std::vector<SiId>(10, 0), 1000}};
  SoftwareOnlyBackend backend(&set);
  const SimResult r = run_trace(trace, backend);
  EXPECT_EQ(r.total_cycles, 1000u + 10u * (set.si(0).software_latency + 7));
  EXPECT_EQ(r.atom_loads, 0u);
}

}  // namespace
}  // namespace rispp
