// Tests for traces, the cycle-level executor and bucketed statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/software_only.h"
#include "isa/h264_si_library.h"
#include "sim/executor.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace rispp {
namespace {

WorkloadTrace tiny_trace() {
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"A", {0, 1}, 5}, HotSpotInfo{"B", {1}, 3}};
  trace.instances = {
      HotSpotInstance{0, {0, 1, 0}, 100},
      HotSpotInstance{1, {1, 1}, 50},
  };
  return trace;
}

/// Backend with fixed latencies for executor arithmetic tests.
class FixedBackend final : public ExecutionBackend {
 public:
  explicit FixedBackend(std::vector<Cycles> latencies) : latencies_(std::move(latencies)) {}
  std::string_view name() const override { return "Fixed"; }
  void on_hot_spot_entry(const WorkloadTrace&, std::size_t, Cycles) override { ++entries_; }
  void on_hot_spot_exit(Cycles) override { ++exits_; }
  Cycles si_execution_latency(SiId si, Cycles) override { return latencies_[si]; }
  int entries_ = 0, exits_ = 0;

 private:
  std::vector<Cycles> latencies_;
};

TEST(Executor, AccountsOverheadsAndLatencies) {
  const WorkloadTrace trace = tiny_trace();
  FixedBackend backend({10, 20});
  SimStats stats(2);
  const SimResult result = run_trace(trace, backend, &stats);
  // Instance 0: 100 entry + (10+5)+(20+5)+(10+5) = 155.
  // Instance 1: 50 entry + (20+3)+(20+3) = 96.
  EXPECT_EQ(result.total_cycles, 155u + 96u);
  EXPECT_EQ(result.si_executions, 5u);
  EXPECT_EQ(backend.entries_, 2);
  EXPECT_EQ(backend.exits_, 2);
  EXPECT_EQ(stats.executions(0), 2u);
  EXPECT_EQ(stats.executions(1), 3u);
  ASSERT_EQ(result.hot_spot_cycles.size(), 2u);
  EXPECT_EQ(result.hot_spot_cycles[0], 155u);
  EXPECT_EQ(result.hot_spot_cycles[1], 96u);
}

TEST(Stats, BucketsSplitAt100KCycles) {
  SimStats stats(1);
  stats.record_execution(0, 0, 10);
  stats.record_execution(0, 99'999, 10);
  stats.record_execution(0, 100'000, 10);
  stats.record_execution(0, 250'000, 10);
  EXPECT_EQ(stats.bucket_executions(0, 0), 2u);
  EXPECT_EQ(stats.bucket_executions(0, 1), 1u);
  EXPECT_EQ(stats.bucket_executions(0, 2), 1u);
  EXPECT_EQ(stats.bucket_executions(0, 3), 0u);
  EXPECT_EQ(stats.bucket_count(), 3u);
  EXPECT_EQ(stats.total_executions(), 4u);
}

TEST(Stats, LatencyTimelineRecordsChangePoints) {
  SimStats stats(1);
  stats.record_execution(0, 10, 500);
  stats.record_execution(0, 20, 500);  // same latency -> no new point
  stats.record_execution(0, 30, 100);
  const auto& tl = stats.latency_timeline(0);
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl[0].at, 10u);
  EXPECT_EQ(tl[0].latency, 500u);
  EXPECT_EQ(tl[1].at, 30u);
  EXPECT_EQ(tl[1].latency, 100u);
}

TEST(Trace, TotalsAndPerSiCounts) {
  const WorkloadTrace trace = tiny_trace();
  EXPECT_EQ(trace.total_si_executions(), 5u);
  EXPECT_EQ(trace.executions_of(0), 2u);
  EXPECT_EQ(trace.executions_of(1), 3u);
  EXPECT_EQ(trace.executions_of(7), 0u);
}

TEST(Trace, BinaryRoundTrip) {
  const WorkloadTrace trace = tiny_trace();
  std::stringstream ss;
  trace.save(ss);
  const WorkloadTrace loaded = WorkloadTrace::load(ss);
  ASSERT_EQ(loaded.hot_spots.size(), trace.hot_spots.size());
  EXPECT_EQ(loaded.hot_spots[0].name, "A");
  EXPECT_EQ(loaded.hot_spots[0].sis, trace.hot_spots[0].sis);
  EXPECT_EQ(loaded.hot_spots[1].per_execution_overhead, 3u);
  ASSERT_EQ(loaded.instances.size(), trace.instances.size());
  EXPECT_EQ(loaded.instances[0].executions, trace.instances[0].executions);
  EXPECT_EQ(loaded.instances[1].entry_overhead, 50u);
}

TEST(Trace, RejectsGarbage) {
  std::stringstream ss;
  ss << "this is not a trace";
  EXPECT_THROW(WorkloadTrace::load(ss), std::logic_error);
}

TEST(Executor, SoftwareOnlyMatchesClosedForm) {
  const auto set = h264sis::build_h264_si_set();
  WorkloadTrace trace;
  trace.hot_spots = {HotSpotInfo{"X", {0}, 7}};
  trace.instances = {HotSpotInstance{0, std::vector<SiId>(10, 0), 1000}};
  SoftwareOnlyBackend backend(&set);
  const SimResult r = run_trace(trace, backend);
  EXPECT_EQ(r.total_cycles, 1000u + 10u * (set.si(0).software_latency + 7));
  EXPECT_EQ(r.atom_loads, 0u);
}

}  // namespace
}  // namespace rispp
