// The concurrent report driver (bench/driver.{h,cpp}) and the bench env /
// trace-cache hardening: glob filtering, the subprocess pool (byte-identical
// logs vs a sequential run), the BENCH_SUITE.json round trip, the
// perf-regression gate, strict RISPP_FRAMES / RISPP_THREADS parsing and the
// fingerprinted cache key.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/env.h"
#include "base/parallel.h"
#include "bench/common.h"
#include "bench/driver.h"
#include "isa/h264_si_library.h"
#include "isa/si.h"

namespace rispp::bench {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(GlobMatch, WildcardsAndLiterals) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("fig*", "fig7_scheduler_sweep"));
  EXPECT_TRUE(glob_match("*sweep", "fig7_scheduler_sweep"));
  EXPECT_TRUE(glob_match("fig?_*", "fig1_utilization"));
  EXPECT_TRUE(glob_match("a*b*c", "a_x_b_y_c"));
  EXPECT_TRUE(glob_match("exact", "exact"));
  EXPECT_FALSE(glob_match("fig*", "table1_si_inventory"));
  EXPECT_FALSE(glob_match("exact", "exactly"));
  EXPECT_FALSE(glob_match("?", ""));
  EXPECT_FALSE(glob_match("a*c", "a_b_d"));
}

TEST(ComputeChildThreads, RedistributesFinishedReportsThreads) {
  // Early in the run more reports remain than concurrent slots: each child
  // gets the static total/jobs share.
  EXPECT_EQ(compute_child_threads(8, 4, 10), 2u);
  EXPECT_EQ(compute_child_threads(8, 4, 4), 2u);
  // The tail: fewer unfinished reports than slots — stragglers inherit the
  // finished reports' threads.
  EXPECT_EQ(compute_child_threads(8, 4, 2), 4u);
  EXPECT_EQ(compute_child_threads(8, 4, 1), 8u);
}

TEST(ComputeChildThreads, ClampsDegenerateInputs) {
  EXPECT_EQ(compute_child_threads(0, 0, 0), 1u);  // never zero threads
  EXPECT_EQ(compute_child_threads(1, 8, 8), 1u);  // more slots than threads
  EXPECT_EQ(compute_child_threads(8, 0, 5), 8u);  // jobs clamped to >= 1
  EXPECT_EQ(compute_child_threads(3, 2, 2), 1u);  // integer division floors
}

TEST(ParseIntStrict, AcceptsOnlyFullIntegersInRange) {
  EXPECT_EQ(parse_int_strict("42", 1, 100), 42);
  EXPECT_EQ(parse_int_strict("1", 1, 100), 1);
  EXPECT_EQ(parse_int_strict("-3", -10, 10), -3);
  EXPECT_FALSE(parse_int_strict("abc", 1, 100).has_value());
  EXPECT_FALSE(parse_int_strict("12x", 1, 100).has_value());
  EXPECT_FALSE(parse_int_strict("", 1, 100).has_value());
  EXPECT_FALSE(parse_int_strict(nullptr, 1, 100).has_value());
  EXPECT_FALSE(parse_int_strict("0", 1, 100).has_value());    // below min
  EXPECT_FALSE(parse_int_strict("101", 1, 100).has_value());  // above max
  EXPECT_FALSE(parse_int_strict("999999999999999999999", 1, 100).has_value());
}

// Garbage or zero in the bench env vars must be a loud exit, never a silent
// fall-back that quietly runs the wrong configuration.
TEST(EnvDeathTest, GarbageFramesExitsLoudly) {
  ::setenv("RISPP_FRAMES", "abc", 1);
  EXPECT_EXIT(bench_frames(), ::testing::ExitedWithCode(kEnvParseExitCode),
              "RISPP_FRAMES");
  ::setenv("RISPP_FRAMES", "0", 1);
  EXPECT_EXIT(bench_frames(), ::testing::ExitedWithCode(kEnvParseExitCode),
              "RISPP_FRAMES");
  ::unsetenv("RISPP_FRAMES");
  EXPECT_EQ(bench_frames(), 140);  // default untouched
}

TEST(EnvDeathTest, ZeroThreadsExitsLoudly) {
  ::setenv("RISPP_THREADS", "0", 1);
  EXPECT_EXIT(parallel_thread_count(), ::testing::ExitedWithCode(kEnvParseExitCode),
              "RISPP_THREADS");
  ::setenv("RISPP_THREADS", "many", 1);
  EXPECT_EXIT(parallel_thread_count(), ::testing::ExitedWithCode(kEnvParseExitCode),
              "RISPP_THREADS");
  ::setenv("RISPP_THREADS", "3", 1);
  EXPECT_EQ(parallel_thread_count(), 3u);
  ::unsetenv("RISPP_THREADS");
}

// The cache key must change whenever the SI set or the workload parameters
// change — otherwise an edited library could replay a stale recorded trace.
TEST(TraceCacheKey, MutatedSiSetMissesTheCache) {
  const h264::WorkloadConfig config;
  SpecialInstructionSet set = h264sis::build_h264_si_set();
  const fs::path original = h264::trace_cache_path(set, config);

  SpecialInstructionSet rebuilt = h264sis::build_h264_si_set();
  EXPECT_EQ(original, h264::trace_cache_path(rebuilt, config))
      << "same set + config must be deterministic (cache hits at all)";

  DataPathGraph extra(&rebuilt.library());
  extra.add_node(0);
  Molecule cap(rebuilt.atom_type_count());
  cap[0] = 1;
  rebuilt.add_si("DriverTestExtra", std::move(extra), cap, 10);
  EXPECT_NE(original, h264::trace_cache_path(rebuilt, config))
      << "an added SI must change the cache key";
}

TEST(TraceCacheKey, WorkloadConfigIsPartOfTheKey) {
  const SpecialInstructionSet set = h264sis::build_h264_si_set();
  h264::WorkloadConfig config;
  const fs::path original = h264::trace_cache_path(set, config);
  config.encoder.qp += 1;
  EXPECT_NE(original, h264::trace_cache_path(set, config));

  h264::WorkloadConfig noise;
  noise.video.seed += 1;
  EXPECT_NE(original, h264::trace_cache_path(set, noise));
}

TEST(PerfRecordRoundTrip, BenchPerfLogWritesWhatTheDriverParses) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_perf_log_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ::setenv("RISPP_BENCH_JSON_DIR", dir.string().c_str(), 1);
  {
    BenchPerfLog log("driver_roundtrip");
    log.set_cells(12);
  }
  ::unsetenv("RISPP_BENCH_JSON_DIR");

  const auto record = parse_perf_record(dir / "BENCH_driver_roundtrip.json");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->bench, "driver_roundtrip");
  EXPECT_EQ(record->cells, 12.0);
  EXPECT_GE(record->wall_seconds, 0.0);
  EXPECT_GT(record->cells_per_sec, 0.0);
  fs::remove_all(dir);
}

// --- subprocess pool over fake report scripts ------------------------------

/// Writes an executable shell script named `name` into `dir`.
fs::path write_script(const fs::path& dir, const std::string& name,
                      const std::string& body) {
  const fs::path path = dir / name;
  {
    std::ofstream out(path);
    out << "#!/bin/sh\n" << body;
  }
  fs::permissions(path, fs::perms::owner_all | fs::perms::group_read |
                            fs::perms::others_read);
  return path;
}

struct FakeSuite {
  fs::path dir;
  std::vector<fs::path> binaries;
};

FakeSuite make_fake_suite(const std::string& tag) {
  FakeSuite suite;
  suite.dir = fs::path(::testing::TempDir()) / ("rispp_driver_" + tag);
  fs::remove_all(suite.dir);
  fs::create_directories(suite.dir);
  // Deterministic multi-line output plus a perf record, so the pool, the log
  // capture and the json collection are all exercised.
  suite.binaries.push_back(write_script(suite.dir, "alpha",
                                        "i=0\n"
                                        "while [ $i -lt 50 ]; do\n"
                                        "  echo \"alpha line $i\"\n"
                                        "  i=$((i + 1))\n"
                                        "done\n"
                                        "printf '{\"bench\": \"alpha\", "
                                        "\"wall_seconds\": 1.25, \"cells\": 8, "
                                        "\"cells_per_sec\": 6.4}\\n' "
                                        "> \"$RISPP_BENCH_JSON_DIR/BENCH_alpha.json\"\n"));
  suite.binaries.push_back(write_script(suite.dir, "bravo",
                                        "echo \"bravo threads=$RISPP_THREADS\"\n"
                                        "echo \"bravo done\" >&2\n"));
  suite.binaries.push_back(write_script(suite.dir, "charlie", "echo boom\nexit 3\n"));
  return suite;
}

TEST(RunReports, ConcurrentLogsMatchSequentialByteForByte) {
  FakeSuite suite = make_fake_suite("pool");
  DriverOptions sequential;
  sequential.jobs = 1;
  sequential.threads_per_child = 2;
  sequential.out_dir = suite.dir / "seq";
  DriverOptions concurrent = sequential;
  concurrent.jobs = 3;
  concurrent.out_dir = suite.dir / "par";

  std::ostringstream status;
  const auto seq = run_reports(suite.binaries, sequential, status);
  const auto par = run_reports(suite.binaries, concurrent, status);

  ASSERT_EQ(seq.size(), suite.binaries.size());
  ASSERT_EQ(par.size(), suite.binaries.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    // Results keep input order regardless of completion order.
    EXPECT_EQ(seq[i].name, suite.binaries[i].filename().string());
    EXPECT_EQ(par[i].name, seq[i].name);
    EXPECT_EQ(par[i].exit_code, seq[i].exit_code);
    EXPECT_EQ(slurp(par[i].log), slurp(seq[i].log))
        << seq[i].name << " log differs between jobs=1 and jobs=3";
  }
  // Children see their thread share, stdout AND stderr are captured, a
  // failing report keeps its exit code, and the perf record is collected.
  EXPECT_EQ(slurp(seq[1].log), "bravo threads=2\nbravo done\n");
  EXPECT_EQ(seq[2].exit_code, 3);
  ASSERT_TRUE(seq[0].perf.has_value());
  EXPECT_EQ(seq[0].perf->bench, "alpha");
  EXPECT_EQ(seq[0].perf->cells, 8.0);
  // The status stream got one completion line per report per run.
  const std::string lines = status.str();
  EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'),
            static_cast<long>(2 * suite.binaries.size()));
  fs::remove_all(suite.dir);
}

TEST(RunReports, SuiteJsonRoundTripsThroughLoadBaseline) {
  FakeSuite suite = make_fake_suite("suite");
  DriverOptions options;
  options.jobs = 2;
  options.threads_per_child = 1;
  options.out_dir = suite.dir / "out";
  std::ostringstream status;
  const auto results = run_reports(suite.binaries, options, status);

  const fs::path path = options.out_dir / "BENCH_SUITE.json";
  write_suite(results, 8, options, path);
  const auto baseline = load_baseline(path);
  ASSERT_EQ(baseline.size(), 3u);
  // The suite serializes with ostream default precision (6 significant
  // digits) — plenty for a 20 % gate.
  EXPECT_NEAR(baseline.at("alpha").wall_seconds, results[0].wall_seconds,
              1e-4 * (1.0 + results[0].wall_seconds));
  EXPECT_EQ(baseline.at("alpha").cells_per_sec, 6.4);
  EXPECT_GT(baseline.at("bravo").wall_seconds, 0.0);
  EXPECT_TRUE(baseline.count("charlie"));
  fs::remove_all(suite.dir);
}

// --- metrics snapshots: per-child collection and the suite round trip ------

TEST(ParseMetricsRecord, ReadsCountersAndGauges) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_metrics_record";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "METRICS.json";
  std::ofstream(path) << "{\n  \"counters\": {\n    \"rtm.decision_cache.hits\": 12,\n"
                         "    \"pool.steals\": 3\n  },\n"
                         "  \"gauges\": {\n    \"sim.level\": 0.5\n  }\n}\n";
  const auto metrics = parse_metrics_record(path);
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics.at("rtm.decision_cache.hits"), 12.0);
  EXPECT_EQ(metrics.at("pool.steals"), 3.0);
  EXPECT_EQ(metrics.at("sim.level"), 0.5);
  fs::remove_all(dir);
}

TEST(ParseMetricsRecord, MissingFileIsEmptyNotAnError) {
  const auto metrics =
      parse_metrics_record(fs::path(::testing::TempDir()) / "rispp_no_such_metrics.json");
  EXPECT_TRUE(metrics.empty());
}

TEST(ParseMetricsRecord, CorruptionThrows) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_metrics_corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "METRICS.json";
  // Trailing garbage (concatenated snapshots).
  std::ofstream(path) << "{\"counters\": {\"a\": 1}}\n{\"counters\": {\"a\": 2}}\n";
  EXPECT_THROW(parse_metrics_record(path), std::logic_error);
  // A duplicated metric name would silently shadow the other occurrence.
  std::ofstream(path, std::ios::trunc) << "{\"counters\": {\"a\": 1, \"a\": 2}}\n";
  EXPECT_THROW(parse_metrics_record(path), std::logic_error);
  // A non-numeric value can only be corruption.
  std::ofstream(path, std::ios::trunc) << "{\"counters\": {\"a\": oops}}\n";
  EXPECT_THROW(parse_metrics_record(path), std::logic_error);
  fs::remove_all(dir);
}

TEST(RunReports, CollectsChildMetricsSnapshots) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_driver_metrics";
  fs::remove_all(dir);
  fs::create_directories(dir);
  // A fake report that writes its registry snapshot to $RISPP_METRICS, the
  // way init_metrics_from_env() does at exit in a real report.
  const std::vector<fs::path> binaries = {write_script(
      dir, "metricful",
      "printf '{\\n  \"counters\": {\\n    \"child.counter\": 5\\n  },\\n"
      "  \"gauges\": {\\n    \"child.gauge\": 1.5\\n  }\\n}\\n' > \"$RISPP_METRICS\"\n")};
  DriverOptions options;
  options.jobs = 1;
  options.threads_per_child = 1;
  options.out_dir = dir / "out";
  std::ostringstream status;
  const auto results = run_reports(binaries, options, status);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].exit_code, 0);
  ASSERT_EQ(results[0].metrics.size(), 2u);
  EXPECT_EQ(results[0].metrics.at("child.counter"), 5.0);
  EXPECT_EQ(results[0].metrics.at("child.gauge"), 1.5);

  // The suite record carries the nested metrics subobject, and load_baseline
  // still reads the chunk correctly despite the nested braces.
  const fs::path suite_path = options.out_dir / "BENCH_SUITE.json";
  write_suite(results, 8, options, suite_path);
  const std::string text = slurp(suite_path);
  EXPECT_NE(text.find("\"metrics\": {\"child.counter\": 5, \"child.gauge\": 1.5}"),
            std::string::npos)
      << text;
  const auto baseline = load_baseline(suite_path);
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_NEAR(baseline.at("metricful").wall_seconds, results[0].wall_seconds,
              1e-4 * (1.0 + results[0].wall_seconds));
  fs::remove_all(dir);
}

TEST(RunReports, TraceDirControlsChildTraceEnv) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_driver_trace_env";
  fs::remove_all(dir);
  fs::create_directories(dir);
  // The fake report records what RISPP_TRACE it saw.
  const std::vector<fs::path> binaries = {write_script(
      dir, "tracer", "printf '%s' \"${RISPP_TRACE-unset}\" > \"$RISPP_BENCH_JSON_DIR/env.txt\"\n")};
  DriverOptions options;
  options.jobs = 1;
  options.threads_per_child = 1;
  options.out_dir = dir / "out";
  options.trace_dir = dir / "traces";
  std::ostringstream status;
  (void)run_reports(binaries, options, status);
  EXPECT_EQ(slurp(options.out_dir / "json" / "tracer" / "env.txt"),
            (options.trace_dir / "tracer.trace.json").string());

  // Without --trace-dir the child must see RISPP_TRACE *unset*, even when the
  // driver process itself is being traced: children would otherwise all
  // overwrite the parent's trace file at exit.
  ::setenv("RISPP_TRACE", "/tmp/parent.trace.json", 1);
  options.trace_dir.clear();
  options.out_dir = dir / "out2";
  (void)run_reports(binaries, options, status);
  ::unsetenv("RISPP_TRACE");
  EXPECT_EQ(slurp(options.out_dir / "json" / "tracer" / "env.txt"), "unset");
  fs::remove_all(dir);
}

// --- scanner hardening: corrupted records are loud errors, never misreads --

/// A syntactically complete suite file with one report entry, produced by the
/// real writer so the happy path stays a true round trip.
fs::path write_minimal_suite(const fs::path& dir, const std::string& extra = "") {
  fs::create_directories(dir);
  const fs::path path = dir / "BENCH_SUITE.json";
  std::ofstream out(path);
  out << "{\n  \"frames\": 8,\n  \"jobs\": 1,\n  \"threads_per_child\": 1,\n"
         "  \"reports\": [\n"
         "    {\"name\": \"alpha\", \"exit_code\": 0, \"wall_seconds\": 1.5,"
         " \"bench\": \"alpha\", \"cells\": 4, \"cells_per_sec\": 2.7}\n  ]\n}\n"
      << extra;
  return path;
}

TEST(ScannerHardening, TrailingGarbageAfterSuiteObjectThrows) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_scan_trailing";
  fs::remove_all(dir);
  const fs::path path = write_minimal_suite(dir, "{\"stale\": 1}\n");
  EXPECT_THROW(load_baseline(path), std::logic_error);
  fs::remove_all(dir);
}

TEST(ScannerHardening, CleanSuiteStillRoundTrips) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_scan_clean";
  fs::remove_all(dir);
  const fs::path path = write_minimal_suite(dir);
  const auto baseline = load_baseline(path);
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_EQ(baseline.at("alpha").wall_seconds, 1.5);
  EXPECT_EQ(baseline.at("alpha").cells_per_sec, 2.7);
  fs::remove_all(dir);
}

TEST(ScannerHardening, DuplicateKeyInSuiteChunkThrows) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_scan_dup_chunk";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "BENCH_SUITE.json";
  // wall_seconds appears twice in one report chunk: the first-occurrence scan
  // would silently pick 0.1 and the gate would compare against the wrong run.
  std::ofstream(path) << "{\n  \"reports\": [\n"
                         "    {\"name\": \"alpha\", \"wall_seconds\": 0.1, "
                         "\"wall_seconds\": 9.9}\n  ]\n}\n";
  EXPECT_THROW(load_baseline(path), std::logic_error);
  fs::remove_all(dir);
}

TEST(ScannerHardening, DuplicateKeyInPerfRecordThrows) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_scan_dup_record";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "BENCH_dup.json";
  std::ofstream(path) << "{\"bench\": \"dup\", \"bench\": \"shadow\", "
                         "\"wall_seconds\": 1.0}\n";
  EXPECT_THROW(parse_perf_record(path), std::logic_error);
  fs::remove_all(dir);
}

TEST(ScannerHardening, TrailingGarbageAfterPerfRecordThrows) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_scan_trailing_record";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "BENCH_two.json";
  // Two concatenated records (e.g. a botched append instead of O_TRUNC).
  std::ofstream(path) << "{\"bench\": \"two\", \"wall_seconds\": 1.0}\n"
                         "{\"bench\": \"two\", \"wall_seconds\": 2.0}\n";
  EXPECT_THROW(parse_perf_record(path), std::logic_error);
  fs::remove_all(dir);
}

TEST(ScannerHardening, QuotedBracesAndEscapesDoNotConfuseTheObjectCheck) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_scan_quoted";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "BENCH_braces.json";
  std::ofstream(path) << "{\"bench\": \"br{ce}s\\\"\", \"wall_seconds\": 1.0}\n";
  const auto record = parse_perf_record(path);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->bench, "br{ce}s\\");  // find_string stops at the escape
  fs::remove_all(dir);
}

TEST(ScannerHardening, MissingBaselineFileIsEmptyNotAnError) {
  // The CLI turns an empty map into its own clean "empty or unreadable"
  // diagnostic (exit 2); the strict checks only police content that exists.
  const auto baseline =
      load_baseline(fs::path(::testing::TempDir()) / "rispp_scan_missing.json");
  EXPECT_TRUE(baseline.empty());
}

TEST(LoadBaseline, ReadsADirectoryOfPerfRecords) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_baseline_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir / "BENCH_alpha.json")
      << "{\"bench\": \"alpha\", \"wall_seconds\": 2.5, \"cells\": 4, "
         "\"cells_per_sec\": 1.6}\n";
  std::ofstream(dir / "not_a_record.txt") << "ignore me\n";
  const auto baseline = load_baseline(dir);
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_EQ(baseline.at("alpha").wall_seconds, 2.5);
  fs::remove_all(dir);
}

// --- the perf-regression gate ----------------------------------------------

ReportResult make_result(const std::string& name, double wall, double rate = 0.0) {
  ReportResult r;
  r.name = name;
  r.exit_code = 0;
  r.wall_seconds = wall;
  if (rate > 0.0) {
    PerfRecord perf;
    perf.bench = name;
    perf.wall_seconds = wall;
    perf.cells_per_sec = rate;
    r.perf = perf;
  }
  return r;
}

PerfRecord make_base(const std::string& name, double wall, double rate = 0.0) {
  PerfRecord record;
  record.bench = name;
  record.wall_seconds = wall;
  record.cells_per_sec = rate;
  return record;
}

TEST(RegressionGate, FailsOnInjectedSlowdown) {
  // 1.0 s -> 1.5 s is a 50 % slowdown: far over the 20 % budget and far over
  // the 50 ms jitter slack, so the gate must fail.
  const std::vector<ReportResult> results = {make_result("slow", 1.5)};
  const std::map<std::string, PerfRecord> baseline = {{"slow", make_base("slow", 1.0)}};
  const auto gate = compare_against_baseline(results, baseline, 0.20);
  ASSERT_EQ(gate.deltas.size(), 1u);
  EXPECT_TRUE(gate.deltas[0].regressed);
  EXPECT_TRUE(gate.failed);
  EXPECT_NE(render_regression_table(gate).find("REGRESSED"), std::string::npos);
}

TEST(RegressionGate, PassesWithinBudget) {
  const std::vector<ReportResult> results = {make_result("steady", 1.1)};
  const std::map<std::string, PerfRecord> baseline = {
      {"steady", make_base("steady", 1.0)}};
  const auto gate = compare_against_baseline(results, baseline, 0.20);
  ASSERT_EQ(gate.deltas.size(), 1u);
  EXPECT_FALSE(gate.deltas[0].regressed);
  EXPECT_FALSE(gate.failed);
}

TEST(RegressionGate, TinyAbsoluteGrowthIsJitterNotRegression) {
  // 8 ms -> 14 ms is a 75 % relative slowdown but only 6 ms absolute — below
  // the 50 ms slack, where scheduler jitter swamps any real signal.
  const std::vector<ReportResult> results = {make_result("tiny", 0.014)};
  const std::map<std::string, PerfRecord> baseline = {{"tiny", make_base("tiny", 0.008)}};
  EXPECT_FALSE(compare_against_baseline(results, baseline, 0.20).failed);
}

TEST(RegressionGate, FailsOnCellsPerSecDrop) {
  // Wall holds steady but the recorded throughput fell 30 %.
  const std::vector<ReportResult> results = {make_result("rate", 1.0, 700.0)};
  const std::map<std::string, PerfRecord> baseline = {
      {"rate", make_base("rate", 1.0, 1000.0)}};
  const auto gate = compare_against_baseline(results, baseline, 0.20);
  ASSERT_EQ(gate.deltas.size(), 1u);
  EXPECT_TRUE(gate.failed);
}

TEST(RegressionGate, NewAndMissingReportsNeverFailTheGate) {
  const std::vector<ReportResult> results = {make_result("brand_new", 9.0)};
  const std::map<std::string, PerfRecord> baseline = {
      {"retired", make_base("retired", 1.0)}};
  const auto gate = compare_against_baseline(results, baseline, 0.20);
  EXPECT_TRUE(gate.deltas.empty());  // brand_new has no baseline: no delta
  ASSERT_EQ(gate.missing.size(), 1u);
  EXPECT_EQ(gate.missing[0], "retired");
  EXPECT_FALSE(gate.failed);
}

TEST(RegressionGate, FailedReportsAreGatedByExitCodeNotPerf) {
  ReportResult crashed = make_result("crashed", 10.0);
  crashed.exit_code = 139;
  const std::map<std::string, PerfRecord> baseline = {
      {"crashed", make_base("crashed", 1.0)}};
  // The run itself already fails on the non-zero exit; the gate skips it.
  EXPECT_FALSE(compare_against_baseline({crashed}, baseline, 0.20).failed);
}

TEST(DiscoverReports, FindsExecutablesAndSkipsMicroOps) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rispp_discover";
  fs::remove_all(dir);
  fs::create_directories(dir);
  write_script(dir, "zeta", "exit 0\n");
  write_script(dir, "alpha", "exit 0\n");
  write_script(dir, "micro_ops", "exit 0\n");
  std::ofstream(dir / "notes.txt") << "not executable\n";
  const auto reports = discover_reports(dir);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].filename().string(), "alpha");  // sorted
  EXPECT_EQ(reports[1].filename().string(), "zeta");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace rispp::bench
