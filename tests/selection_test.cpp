// Tests for the Molecule selection substrate (NA <= #ACs guarantee, profit
// behaviour, budget monotonicity).
#include <gtest/gtest.h>

#include "isa/h264_si_library.h"
#include "base/prng.h"
#include "jpeg/jpeg_si_library.h"
#include "select/optimal.h"
#include "select/selection.h"

namespace rispp {
namespace {

SelectionRequest h264_me_request(const SpecialInstructionSet& set, unsigned acs) {
  SelectionRequest req;
  req.set = &set;
  req.hot_spot_sis = {set.find("SAD").value(), set.find("SATD").value()};
  req.expected_executions.assign(set.si_count(), 0);
  req.expected_executions[req.hot_spot_sis[0]] = 24'000;
  req.expected_executions[req.hot_spot_sis[1]] = 3'600;
  req.container_count = acs;
  return req;
}

TEST(Selection, RespectsContainerBudget) {
  const auto set = h264sis::build_h264_si_set();
  for (unsigned acs = 0; acs <= 24; ++acs) {
    const auto req = h264_me_request(set, acs);
    const auto selection = select_molecules(req);
    EXPECT_LE(selection_atom_count(set, selection), acs) << acs;
  }
}

TEST(Selection, ZeroBudgetSelectsNothing) {
  const auto set = h264sis::build_h264_si_set();
  EXPECT_TRUE(select_molecules(h264_me_request(set, 0)).empty());
}

TEST(Selection, AtMostOneMoleculePerSi) {
  const auto set = h264sis::build_h264_si_set();
  const auto selection = select_molecules(h264_me_request(set, 20));
  std::vector<bool> seen(set.si_count(), false);
  for (const SiRef& s : selection) {
    EXPECT_FALSE(seen[s.si]);
    seen[s.si] = true;
  }
}

TEST(Selection, LargerBudgetNeverWorsensTotalBenefit) {
  const auto set = h264sis::build_h264_si_set();
  auto benefit_of = [&](const std::vector<SiRef>& sel,
                        const SelectionRequest& req) {
    long double total = 0.0L;
    for (const SiRef& s : sel) {
      const Cycles gain = set.si(s.si).software_latency - set.latency(s);
      total += static_cast<long double>(req.expected_executions[s.si]) * gain;
    }
    return total;
  };
  long double prev = -1.0L;
  for (unsigned acs = 4; acs <= 24; acs += 2) {
    const auto req = h264_me_request(set, acs);
    const long double b = benefit_of(select_molecules(req), req);
    EXPECT_GE(b, prev) << "budget " << acs;
    prev = b;
  }
}

TEST(Selection, PrefersTheHeavilyExecutedSi) {
  // With a budget that fits only one SI's molecule, the hot one wins.
  const auto set = h264sis::build_h264_si_set();
  SelectionRequest req;
  req.set = &set;
  const SiId sad = set.find("SAD").value();
  const SiId lf = set.find("LF_BS4").value();
  req.hot_spot_sis = {sad, lf};
  req.expected_executions.assign(set.si_count(), 0);
  req.expected_executions[sad] = 50'000;
  req.expected_executions[lf] = 10;
  req.container_count = 3;
  const auto selection = select_molecules(req);
  ASSERT_FALSE(selection.empty());
  for (const SiRef& s : selection) EXPECT_EQ(s.si, sad);
}

TEST(Selection, SharedAtomsMakeJointSelectionCheaper) {
  // SATD and (I)HT 4x4 share HadCore/SAV: selecting both must cost less than
  // the sum of their individual atom counts.
  const auto set = h264sis::build_h264_si_set();
  const SiId satd = set.find("SATD").value();
  const SiId ht4 = set.find("(I)HT 4x4").value();
  SelectionRequest req;
  req.set = &set;
  req.hot_spot_sis = {satd, ht4};
  req.expected_executions.assign(set.si_count(), 0);
  req.expected_executions[satd] = 10'000;
  req.expected_executions[ht4] = 10'000;
  req.container_count = 24;
  const auto selection = select_molecules(req);
  ASSERT_EQ(selection.size(), 2u);
  unsigned individual = 0;
  for (const SiRef& s : selection)
    individual += set.si(s.si).molecule(s.mol).atoms.determinant();
  EXPECT_LT(selection_atom_count(set, selection), individual);
}

TEST(Selection, GreedyMatchesExhaustiveOptimumOnRandomInstances) {
  const auto set = h264sis::build_h264_si_set();
  Xoshiro256 rng(31);
  int within_five_percent = 0;
  constexpr int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    SelectionRequest req;
    req.set = &set;
    req.expected_executions.assign(set.si_count(), 0);
    // Two to three SIs with small molecule lists keep the search tractable.
    const std::vector<std::string> pool{"SAD", "LF_BS4", "(I)HT 4x4", "IPred HDC",
                                        "IPred VDC", "(I)HT 2x2"};
    for (int k = 0; k < 3; ++k) {
      const SiId si = set.find(pool[rng.bounded(pool.size())]).value();
      if (std::find(req.hot_spot_sis.begin(), req.hot_spot_sis.end(), si) !=
          req.hot_spot_sis.end())
        continue;
      req.hot_spot_sis.push_back(si);
      req.expected_executions[si] = 1 + rng.bounded(20'000);
    }
    req.container_count = 2 + static_cast<unsigned>(rng.bounded(14));

    const long double greedy = selection_benefit(req, select_molecules(req));
    const long double optimal = selection_benefit(req, select_molecules_optimal(req));
    EXPECT_LE(greedy, optimal + 1e-6L);
    if (greedy >= optimal * 0.95L - 1e-6L) ++within_five_percent;
  }
  EXPECT_GE(within_five_percent, kTrials - 2);
}

TEST(Selection, IncrementalMatchesReferenceOnRandomInstances) {
  // select_molecules is the incremental (prefix/suffix-join) rewrite of the
  // greedy algorithm; select_molecules_reference is the original, kept as
  // the oracle. Equivalence must be exact — the same SiRef sequence, not
  // merely the same benefit — because replay bit-exactness depends on it.
  // Duplicate hot_spot_sis entries are deliberately generated: the
  // incremental path must detect them and fall back to the reference
  // (positional vs by-value exclusion would otherwise diverge).
  const auto h264 = h264sis::build_h264_si_set();
  const auto jpeg = jpegsis::build_jpeg_si_set();
  Xoshiro256 rng(97);
  int duplicate_instances = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const SpecialInstructionSet& set = (trial % 2 == 0) ? h264 : jpeg;
    SelectionRequest req;
    req.set = &set;
    req.expected_executions.assign(set.si_count(), 0);
    const std::size_t n = 1 + rng.bounded(set.si_count() + 2);
    for (std::size_t k = 0; k < n; ++k) {
      const SiId si = static_cast<SiId>(rng.bounded(set.si_count()));
      req.hot_spot_sis.push_back(si);  // duplicates intentionally possible
      req.expected_executions[si] = rng.bounded(50'000);  // may stay zero
    }
    std::vector<SiId> sorted = req.hot_spot_sis;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      ++duplicate_instances;
    req.container_count = static_cast<unsigned>(rng.bounded(25));

    const auto fast = select_molecules(req);
    const auto reference = select_molecules_reference(req);
    ASSERT_EQ(fast, reference) << "trial " << trial;
  }
  // The generator must actually exercise the duplicate-SIs fallback.
  EXPECT_GT(duplicate_instances, 50);
}

TEST(Selection, IncrementalStaysWithinOptimalOnSmallRandomInstances) {
  // Cross-check the incremental path against the exhaustive optimum too
  // (the reference-equivalence above makes this transitive, but a direct
  // bound keeps the property visible if the reference ever changes).
  const auto set = h264sis::build_h264_si_set();
  Xoshiro256 rng(131);
  const std::vector<std::string> pool{"SAD", "LF_BS4", "(I)HT 4x4", "IPred HDC",
                                      "IPred VDC", "(I)HT 2x2"};
  for (int trial = 0; trial < 20; ++trial) {
    SelectionRequest req;
    req.set = &set;
    req.expected_executions.assign(set.si_count(), 0);
    for (int k = 0; k < 3; ++k) {
      const SiId si = set.find(pool[rng.bounded(pool.size())]).value();
      if (std::find(req.hot_spot_sis.begin(), req.hot_spot_sis.end(), si) !=
          req.hot_spot_sis.end())
        continue;
      req.hot_spot_sis.push_back(si);
      req.expected_executions[si] = 1 + rng.bounded(30'000);
    }
    req.container_count = 2 + static_cast<unsigned>(rng.bounded(12));
    const long double greedy = selection_benefit(req, select_molecules(req));
    const long double optimal = selection_benefit(req, select_molecules_optimal(req));
    EXPECT_LE(greedy, optimal + 1e-6L) << "trial " << trial;
  }
}

TEST(Selection, OptimalSearchRefusesHugeInstances) {
  const auto set = h264sis::build_h264_si_set();
  SelectionRequest req;
  req.set = &set;
  req.expected_executions.assign(set.si_count(), 100);
  for (SiId si = 0; si < set.si_count(); ++si) req.hot_spot_sis.push_back(si);
  req.container_count = 24;
  EXPECT_THROW(select_molecules_optimal(req), std::logic_error);
}

TEST(Selection, ZeroExpectationsSelectNothing) {
  const auto set = h264sis::build_h264_si_set();
  auto req = h264_me_request(set, 24);
  req.expected_executions.assign(set.si_count(), 0);
  EXPECT_TRUE(select_molecules(req).empty());
}

}  // namespace
}  // namespace rispp
