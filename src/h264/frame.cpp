#include "h264/frame.h"

#include <cmath>

namespace rispp::h264 {

double psnr_y(const Frame& a, const Frame& b) {
  RISPP_CHECK(a.width() == b.width() && a.height() == b.height());
  double sse = 0.0;
  for (int y = 0; y < a.height(); ++y) {
    const Pixel* ra = a.y.row(y);
    const Pixel* rb = b.y.row(y);
    for (int x = 0; x < a.width(); ++x) {
      const double d = static_cast<double>(ra[x]) - rb[x];
      sse += d * d;
    }
  }
  if (sse == 0.0) return 99.0;
  const double mse = sse / (static_cast<double>(a.width()) * a.height());
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace rispp::h264
