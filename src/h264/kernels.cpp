#include "h264/kernels.h"

#include <atomic>
#include <cstdlib>

#include "base/env.h"
#include "h264/simd.h"

namespace rispp::h264 {
namespace {

/// In-place 4-point Hadamard butterfly (unnormalized).
inline void hadamard4(int& a, int& b, int& c, int& d) {
  const int s0 = a + c, s1 = b + d, s2 = a - c, s3 = b - d;
  a = s0 + s1;
  b = s2 + s3;
  c = s0 - s1;
  d = s2 - s3;
}

KernelBackend default_backend() {
  if (!simd_available()) return KernelBackend::kScalar;
  return parse_env_int("RISPP_SIMD", 1, 0, 1) != 0 ? KernelBackend::kSimd
                                                   : KernelBackend::kScalar;
}

std::atomic<KernelBackend>& backend_state() {
  static std::atomic<KernelBackend> state{default_backend()};
  return state;
}

}  // namespace

bool simd_available() {
#ifdef RISPP_SIMD
  return true;
#else
  return false;
#endif
}

KernelBackend active_kernel_backend() {
  return backend_state().load(std::memory_order_relaxed);
}

void set_kernel_backend(KernelBackend backend) {
  if (backend == KernelBackend::kSimd && !simd_available()) backend = KernelBackend::kScalar;
  backend_state().store(backend, std::memory_order_relaxed);
}

std::uint32_t sad_16x16_scalar(const Plane& cur, int cx, int cy, const Plane& ref, int rx,
                               int ry) {
  std::uint32_t acc = 0;
  const bool inside = rx >= 0 && ry >= 0 && rx + 16 <= ref.width() && ry + 16 <= ref.height();
  for (int y = 0; y < 16; ++y) {
    const Pixel* crow = cur.row(cy + y) + cx;
    if (inside) {
      const Pixel* rrow = ref.row(ry + y) + rx;
      for (int x = 0; x < 16; ++x) acc += static_cast<std::uint32_t>(std::abs(crow[x] - rrow[x]));
    } else {
      for (int x = 0; x < 16; ++x)
        acc += static_cast<std::uint32_t>(std::abs(crow[x] - ref.at_clamped(rx + x, ry + y)));
    }
  }
  return acc;
}

std::uint32_t satd_4x4(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry) {
  int d[16];
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x)
      d[y * 4 + x] = static_cast<int>(cur.at(cx + x, cy + y)) -
                     static_cast<int>(ref.at_clamped(rx + x, ry + y));
  // Horizontal then vertical butterflies.
  for (int y = 0; y < 4; ++y) hadamard4(d[y * 4 + 0], d[y * 4 + 1], d[y * 4 + 2], d[y * 4 + 3]);
  for (int x = 0; x < 4; ++x) hadamard4(d[0 + x], d[4 + x], d[8 + x], d[12 + x]);
  std::uint32_t acc = 0;
  for (int i = 0; i < 16; ++i) acc += static_cast<std::uint32_t>(std::abs(d[i]));
  return acc / 2;
}

std::uint32_t satd_16x16_scalar(const Plane& cur, int cx, int cy, const Plane& ref, int rx,
                                int ry) {
  std::uint32_t acc = 0;
  for (int by = 0; by < 16; by += 4)
    for (int bx = 0; bx < 16; bx += 4)
      acc += satd_4x4(cur, cx + bx, cy + by, ref, rx + bx, ry + by);
  return acc;
}

std::uint32_t satd_16x16_pred_scalar(const Plane& cur, int cx, int cy, const Pixel pred[16 * 16]) {
  std::uint32_t acc = 0;
  for (int by = 0; by < 16; by += 4) {
    for (int bx = 0; bx < 16; bx += 4) {
      int d[16];
      for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
          d[y * 4 + x] = static_cast<int>(cur.at(cx + bx + x, cy + by + y)) -
                         static_cast<int>(pred[(by + y) * 16 + bx + x]);
      for (int y = 0; y < 4; ++y)
        hadamard4(d[y * 4 + 0], d[y * 4 + 1], d[y * 4 + 2], d[y * 4 + 3]);
      for (int x = 0; x < 4; ++x) hadamard4(d[0 + x], d[4 + x], d[8 + x], d[12 + x]);
      std::uint32_t s = 0;
      for (int i = 0; i < 16; ++i) s += static_cast<std::uint32_t>(std::abs(d[i]));
      acc += s / 2;
    }
  }
  return acc;
}

#ifdef RISPP_SIMD

namespace {

using simd::i16x16;
using simd::i32x16;

/// 4-point Hadamard butterfly within each 4-lane group of one vector, via
/// shuffles. Output lanes come out as {y0, y2, y1, y3} of the scalar
/// hadamard4 — a within-group permutation, invisible to the abs-sum.
inline i16x16 hadamard4_groups(i16x16 v) {
  const i16x16 u =
      __builtin_shufflevector(v, v, 2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
  const i16x16 s = v + u;  // lanes 0,1 of each group: a+c, b+d
  const i16x16 t = v - u;  // lanes 0,1 of each group: a-c, b-d
  const i16x16 w = __builtin_shufflevector(s, t, 0, 1, 16, 17, 4, 5, 20, 21, 8, 9, 24, 25, 12, 13,
                                           28, 29);  // {s0, s1, s2, s3}
  const i16x16 u2 =
      __builtin_shufflevector(w, w, 1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14);
  const i16x16 s2 = w + u2;
  const i16x16 t2 = w - u2;
  return __builtin_shufflevector(s2, t2, 0, 16, 2, 18, 4, 20, 6, 22, 8, 24, 10, 26, 12, 28, 14,
                                 30);  // {s0+s1, s0-s1, s2+s3, s2-s3}
}

/// SATD contribution of one 4-row band (four 4x4 blocks side by side): the
/// 2-D Hadamard is evaluated columns-first + lane-permuted — both exact-
/// integer-equal in abs-sum to the scalar rows-first order — and each
/// block's abs-sum is halved separately, exactly like the scalar kernel.
inline std::uint32_t satd_band(const Pixel* cur[4], const Pixel* pred[4]) {
  i16x16 d0 = simd::widen_i16(simd::load_u8x16(cur[0])) -
              simd::widen_i16(simd::load_u8x16(pred[0]));
  i16x16 d1 = simd::widen_i16(simd::load_u8x16(cur[1])) -
              simd::widen_i16(simd::load_u8x16(pred[1]));
  i16x16 d2 = simd::widen_i16(simd::load_u8x16(cur[2])) -
              simd::widen_i16(simd::load_u8x16(pred[2]));
  i16x16 d3 = simd::widen_i16(simd::load_u8x16(cur[3])) -
              simd::widen_i16(simd::load_u8x16(pred[3]));
  // Vertical (column) butterflies, lanewise across the four rows.
  const i16x16 s0 = d0 + d2, s1 = d1 + d3, s2 = d0 - d2, s3 = d1 - d3;
  i16x16 v0 = s0 + s1, v1 = s2 + s3, v2 = s0 - s1, v3 = s2 - s3;
  // Horizontal butterflies within each 4-lane group.
  v0 = hadamard4_groups(v0);
  v1 = hadamard4_groups(v1);
  v2 = hadamard4_groups(v2);
  v3 = hadamard4_groups(v3);
  // Coefficients reach +-4080, so per-lane column totals need 32 bits.
  const i32x16 tot = simd::widen_i32(simd::abs_lanes(v0)) + simd::widen_i32(simd::abs_lanes(v1)) +
                     simd::widen_i32(simd::abs_lanes(v2)) + simd::widen_i32(simd::abs_lanes(v3));
  std::uint32_t acc = 0;
  for (int b = 0; b < 4; ++b) {
    const std::uint32_t s = static_cast<std::uint32_t>(tot[4 * b + 0] + tot[4 * b + 1] +
                                                       tot[4 * b + 2] + tot[4 * b + 3]);
    acc += s / 2;
  }
  return acc;
}

}  // namespace

std::uint32_t sad_16x16_simd(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry) {
  const bool inside = rx >= 0 && ry >= 0 && rx + 16 <= ref.width() && ry + 16 <= ref.height();
  if (!inside) return sad_16x16_scalar(cur, cx, cy, ref, rx, ry);
  i16x16 acc{};  // per-lane max 16 * 255 = 4080, no i16 overflow
  for (int y = 0; y < 16; ++y) {
    const i16x16 c = simd::widen_i16(simd::load_u8x16(cur.row(cy + y) + cx));
    const i16x16 r = simd::widen_i16(simd::load_u8x16(ref.row(ry + y) + rx));
    acc += simd::abs_lanes(c - r);
  }
  return simd::horizontal_sum_u32(acc);
}

std::uint32_t satd_16x16_simd(const Plane& cur, int cx, int cy, const Plane& ref, int rx,
                              int ry) {
  const bool inside = rx >= 0 && ry >= 0 && rx + 16 <= ref.width() && ry + 16 <= ref.height();
  if (!inside) return satd_16x16_scalar(cur, cx, cy, ref, rx, ry);
  std::uint32_t acc = 0;
  for (int by = 0; by < 16; by += 4) {
    const Pixel* crow[4];
    const Pixel* rrow[4];
    for (int y = 0; y < 4; ++y) {
      crow[y] = cur.row(cy + by + y) + cx;
      rrow[y] = ref.row(ry + by + y) + rx;
    }
    acc += satd_band(crow, rrow);
  }
  return acc;
}

std::uint32_t satd_16x16_pred_simd(const Plane& cur, int cx, int cy, const Pixel pred[16 * 16]) {
  std::uint32_t acc = 0;
  for (int by = 0; by < 16; by += 4) {
    const Pixel* crow[4];
    const Pixel* prow[4];
    for (int y = 0; y < 4; ++y) {
      crow[y] = cur.row(cy + by + y) + cx;
      prow[y] = pred + (by + y) * 16;
    }
    acc += satd_band(crow, prow);
  }
  return acc;
}

#else  // !RISPP_SIMD

std::uint32_t sad_16x16_simd(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry) {
  return sad_16x16_scalar(cur, cx, cy, ref, rx, ry);
}

std::uint32_t satd_16x16_simd(const Plane& cur, int cx, int cy, const Plane& ref, int rx,
                              int ry) {
  return satd_16x16_scalar(cur, cx, cy, ref, rx, ry);
}

std::uint32_t satd_16x16_pred_simd(const Plane& cur, int cx, int cy, const Pixel pred[16 * 16]) {
  return satd_16x16_pred_scalar(cur, cx, cy, pred);
}

#endif  // RISPP_SIMD

std::uint32_t sad_16x16(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry) {
  return active_kernel_backend() == KernelBackend::kSimd ? sad_16x16_simd(cur, cx, cy, ref, rx, ry)
                                                         : sad_16x16_scalar(cur, cx, cy, ref, rx,
                                                                            ry);
}

std::uint32_t satd_16x16(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry) {
  return active_kernel_backend() == KernelBackend::kSimd
             ? satd_16x16_simd(cur, cx, cy, ref, rx, ry)
             : satd_16x16_scalar(cur, cx, cy, ref, rx, ry);
}

std::uint32_t satd_16x16_pred(const Plane& cur, int cx, int cy, const Pixel pred[16 * 16]) {
  return active_kernel_backend() == KernelBackend::kSimd
             ? satd_16x16_pred_simd(cur, cx, cy, pred)
             : satd_16x16_pred_scalar(cur, cx, cy, pred);
}

}  // namespace rispp::h264
