#include "h264/kernels.h"

#include <cstdlib>

namespace rispp::h264 {
namespace {

/// In-place 4-point Hadamard butterfly (unnormalized).
inline void hadamard4(int& a, int& b, int& c, int& d) {
  const int s0 = a + c, s1 = b + d, s2 = a - c, s3 = b - d;
  a = s0 + s1;
  b = s2 + s3;
  c = s0 - s1;
  d = s2 - s3;
}

}  // namespace

std::uint32_t sad_16x16(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry) {
  std::uint32_t acc = 0;
  const bool inside = rx >= 0 && ry >= 0 && rx + 16 <= ref.width() && ry + 16 <= ref.height();
  for (int y = 0; y < 16; ++y) {
    const Pixel* crow = cur.row(cy + y) + cx;
    if (inside) {
      const Pixel* rrow = ref.row(ry + y) + rx;
      for (int x = 0; x < 16; ++x) acc += static_cast<std::uint32_t>(std::abs(crow[x] - rrow[x]));
    } else {
      for (int x = 0; x < 16; ++x)
        acc += static_cast<std::uint32_t>(std::abs(crow[x] - ref.at_clamped(rx + x, ry + y)));
    }
  }
  return acc;
}

std::uint32_t satd_4x4(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry) {
  int d[16];
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x)
      d[y * 4 + x] = static_cast<int>(cur.at(cx + x, cy + y)) -
                     static_cast<int>(ref.at_clamped(rx + x, ry + y));
  // Horizontal then vertical butterflies.
  for (int y = 0; y < 4; ++y) hadamard4(d[y * 4 + 0], d[y * 4 + 1], d[y * 4 + 2], d[y * 4 + 3]);
  for (int x = 0; x < 4; ++x) hadamard4(d[0 + x], d[4 + x], d[8 + x], d[12 + x]);
  std::uint32_t acc = 0;
  for (int i = 0; i < 16; ++i) acc += static_cast<std::uint32_t>(std::abs(d[i]));
  return acc / 2;
}

std::uint32_t satd_16x16(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry) {
  std::uint32_t acc = 0;
  for (int by = 0; by < 16; by += 4)
    for (int bx = 0; bx < 16; bx += 4)
      acc += satd_4x4(cur, cx + bx, cy + by, ref, rx + bx, ry + by);
  return acc;
}

std::uint32_t satd_16x16_pred(const Plane& cur, int cx, int cy, const Pixel pred[16 * 16]) {
  std::uint32_t acc = 0;
  for (int by = 0; by < 16; by += 4) {
    for (int bx = 0; bx < 16; bx += 4) {
      int d[16];
      for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
          d[y * 4 + x] = static_cast<int>(cur.at(cx + bx + x, cy + by + y)) -
                         static_cast<int>(pred[(by + y) * 16 + bx + x]);
      for (int y = 0; y < 4; ++y)
        hadamard4(d[y * 4 + 0], d[y * 4 + 1], d[y * 4 + 2], d[y * 4 + 3]);
      for (int x = 0; x < 4; ++x) hadamard4(d[0 + x], d[4 + x], d[8 + x], d[12 + x]);
      std::uint32_t s = 0;
      for (int i = 0; i < 16; ++i) s += static_cast<std::uint32_t>(std::abs(d[i]));
      acc += s / 2;
    }
  }
  return acc;
}

}  // namespace rispp::h264
