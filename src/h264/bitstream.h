// Bit-level I/O for the entropy coder.
#pragma once

#include <cstdint>
#include <vector>

namespace rispp::h264 {

class BitWriter {
 public:
  /// Appends the `count` low bits of `value`, MSB first.
  void put_bits(std::uint32_t value, int count);
  void put_bit(bool bit) { put_bits(bit ? 1 : 0, 1); }

  /// Pads with zero bits to the next byte boundary.
  void align();

  /// Appends every bit of `other` (complete bytes plus its partial tail), as
  /// if other's put_bits calls had been replayed here — the encoder stitches
  /// per-row writers back into one frame payload this way.
  void append(const BitWriter& other);

  std::size_t bit_count() const { return bit_count_; }
  /// Byte view (aligned with zero padding).
  std::vector<std::uint8_t> bytes() const;

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  int filled_ = 0;  // bits in current_
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  /// Reads `count` bits MSB first; throws past the end.
  std::uint32_t get_bits(int count);
  bool get_bit() { return get_bits(1) != 0; }

  std::size_t bits_consumed() const { return position_; }
  bool exhausted() const { return position_ >= bytes_.size() * 8; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t position_ = 0;
};

}  // namespace rispp::h264
