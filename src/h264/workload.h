// Workload generation: runs the functional encoder over the synthetic CIF
// sequence and emits the WorkloadTrace the cycle-level simulator replays —
// the paper's 140-frame evaluation run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "h264/encoder.h"
#include "h264/synthetic_video.h"
#include "isa/si.h"
#include "sim/trace.h"

namespace rispp::h264 {

/// Hot-spot ids of the H.264 trace (Figure 1 order within each frame).
enum : HotSpotId { kHotSpotMe = 0, kHotSpotEe = 1, kHotSpotLf = 2 };

/// Bump when the encoder/workload changes in a way that alters recorded
/// traces or their file format — cache files (bench/common.cpp) are keyed on
/// it. v4: trace format v2 (serialized RLE runs).
inline constexpr int kWorkloadTraceVersion = 4;

struct WorkloadConfig {
  int frames = 140;  // the paper's sequence length
  VideoConfig video;
  EncoderConfig encoder;
  /// Base-processor glue cycles around each SI execution and per hot-spot
  /// entry (loop control, address generation, function calls).
  Cycles per_execution_overhead = 8;
  Cycles hot_spot_entry_overhead = 2'000;
  /// Wavefront thread count for the encoder: 0 (default) uses the global
  /// pool, >= 1 a dedicated pool of that size. The trace is identical for
  /// any value (determinism-tested), so this is NOT part of the cache key.
  int encode_threads = 0;
};

/// Resolves the Table 1 SI names against `set`.
H264SiIds resolve_si_ids(const SpecialInstructionSet& set);

struct WorkloadResult {
  WorkloadTrace trace;
  double mean_psnr = 0.0;
  /// Entropy-coded payload bitrate at 30 fps.
  double mean_bitrate_kbps = 0.0;
  int intra_mbs = 0;
  int inter_mbs = 0;
};

/// Encodes `config.frames` frames and returns the SI trace (3 hot-spot
/// instances per P frame: ME, EE, LF; I frames have no ME instance).
WorkloadResult generate_h264_workload(const SpecialInstructionSet& set,
                                      const WorkloadConfig& config);

/// Digest of everything that determines a recorded trace's contents: the SI
/// set (names, molecule tables — isa fingerprint()) plus every WorkloadConfig
/// field that shapes the trace. Editing the H.264 SI library or the workload
/// parameters changes the digest, so a stale cached trace can never be
/// replayed. (encode_threads is deliberately excluded — the trace is
/// thread-count-invariant, determinism-tested.)
std::uint64_t workload_fingerprint(const SpecialInstructionSet& set,
                                   const WorkloadConfig& config);

/// Cache file a recorded trace for `config` lives at: keyed by
/// kWorkloadTraceVersion, the frame count and workload_fingerprint(), under
/// trace_cache_dir() (honors RISPP_TRACE_DIR). Shared between the bench
/// harness and the fleet's TraceRepository.
std::filesystem::path trace_cache_path(const SpecialInstructionSet& set,
                                       const WorkloadConfig& config);

/// Design-time forecast seeds per (hot spot, SI) — rough per-frame counts a
/// designer would profile offline; the monitor refines them online.
std::vector<std::vector<std::uint64_t>> default_forecast_seeds(const SpecialInstructionSet& set);

/// Applies default_forecast_seeds to any backend exposing seed_forecast.
template <typename Backend>
void seed_default_forecasts(const SpecialInstructionSet& set, Backend& backend) {
  const auto seeds = default_forecast_seeds(set);
  for (HotSpotId hs = 0; hs < seeds.size(); ++hs)
    for (SiId si = 0; si < seeds[hs].size(); ++si)
      if (seeds[hs][si] != 0) backend.seed_forecast(hs, si, seeds[hs][si]);
}

}  // namespace rispp::h264
