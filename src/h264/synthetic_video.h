// Deterministic synthetic CIF video — the substitution for the paper's
// proprietary test sequence (see DESIGN.md).
//
// The scheduler only cares about the *statistics* the encoder extracts from
// the video: how many search steps motion estimation needs (motion
// magnitude / predictability), how often intra beats inter (occlusions,
// scene cuts), and how many strong deblocking edges appear (blockiness).
// The generator therefore animates textured objects over a gradient
// background with phase-varying motion, periodic high-motion bursts and a
// scene cut, plus sensor noise — producing data-dependent, non-stationary
// per-frame SI counts like a real sequence.
#pragma once

#include "base/prng.h"
#include "h264/frame.h"

namespace rispp::h264 {

struct VideoConfig {
  int width = kCifWidth;
  int height = kCifHeight;
  std::uint64_t seed = 0x5EED;
  int object_count = 6;
  /// A scene cut every `cut_period` frames (0 = never): forces intra bursts.
  int cut_period = 60;
  double noise_stddev = 1.5;
};

class SyntheticVideo {
 public:
  explicit SyntheticVideo(const VideoConfig& config = {});

  /// Generates the next frame; deterministic in (config, call count).
  Frame next();

  int frame_index() const { return frame_; }

 private:
  struct Object {
    double x, y;          // top-left position
    int w, h;
    double phase;         // motion phase offset
    double speed;         // base velocity in pixels/frame
    int texture;          // texture family selector
    int luma;             // base brightness
  };

  void reseed_scene();
  Pixel background(int x, int y) const;
  Pixel object_pixel(const Object& o, int x, int y) const;

  VideoConfig config_;
  Xoshiro256 rng_;
  std::vector<Object> objects_;
  int frame_ = 0;
  int scene_ = 0;
};

}  // namespace rispp::h264
