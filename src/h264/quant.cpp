#include "h264/quant.h"

#include "base/check.h"

namespace rispp::h264 {

int quant_step(int qp) {
  RISPP_CHECK(qp >= 0 && qp <= 51);
  // Base steps for qp%6 as in H.264 (Qstep doubles every 6).
  static constexpr int kBase[6] = {10, 11, 13, 14, 16, 18};
  return kBase[qp % 6] << (qp / 6);
}

int quantize(int coeff, int qp) {
  const int step = quant_step(qp);
  const int mag = coeff < 0 ? -coeff : coeff;
  const int level = (mag + step / 3) / step;
  return coeff < 0 ? -level : level;
}

int dequantize(int level, int qp) { return level * quant_step(qp); }

void quantize_block(int coeffs[16], int levels[16], int qp) {
  for (int i = 0; i < 16; ++i) levels[i] = quantize(coeffs[i], qp);
}

void dequantize_block(const int levels[16], int coeffs[16], int qp) {
  for (int i = 0; i < 16; ++i) coeffs[i] = dequantize(levels[i], qp);
}

int descale_idct(int v) {
  return v >= 0 ? (v + 200) / 400 : -((-v + 200) / 400);
}

}  // namespace rispp::h264
