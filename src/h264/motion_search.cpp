#include "h264/motion_search.h"

#include <array>

#include "h264/kernels.h"

namespace rispp::h264 {
namespace {

/// SATD of the current MB against the half-pel interpolated candidate.
std::uint32_t half_pel_satd(const Plane& cur, const Plane& ref, int mb_px_x, int mb_px_y,
                            const MotionVector& mv) {
  Pixel pred[16 * 16];
  motion_compensate_16x16(ref, mb_px_x, mb_px_y, mv, pred);
  return satd_16x16_pred(cur, mb_px_x, mb_px_y, pred);
}

}  // namespace

MotionSearchResult motion_search_16x16(const Plane& cur, const Plane& ref, int mb_px_x,
                                       int mb_px_y, const MotionVector& prediction,
                                       const MotionSearchConfig& config,
                                       const KernelHook& hook) {
  MotionSearchResult result;

  auto eval_sad = [&](int fx, int fy) {
    ++result.sad_evaluations;
    if (hook) hook(false);
    return sad_16x16(cur, mb_px_x, mb_px_y, ref, mb_px_x + fx, mb_px_y + fy);
  };

  // Start at the prediction (full-pel part) and at (0,0); keep the better.
  int best_x = prediction.x >> 1;
  int best_y = prediction.y >> 1;
  if (best_x > config.search_range) best_x = config.search_range;
  if (best_x < -config.search_range) best_x = -config.search_range;
  if (best_y > config.search_range) best_y = config.search_range;
  if (best_y < -config.search_range) best_y = -config.search_range;

  std::uint32_t best = eval_sad(best_x, best_y);
  if (best_x != 0 || best_y != 0) {
    const std::uint32_t zero = eval_sad(0, 0);
    if (zero < best) {
      best = zero;
      best_x = 0;
      best_y = 0;
    }
  }

  // Dense 7x7 full-pel scan around the seed (UMHexagonS-style windowed
  // pass), then diamond refinement.
  const int cx = best_x, cy = best_y;
  for (int dy = -3; dy <= 3; ++dy) {
    for (int dx = -3; dx <= 3; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const int fx = cx + dx, fy = cy + dy;
      if (fx < -config.search_range || fx > config.search_range ||
          fy < -config.search_range || fy > config.search_range)
        continue;
      const std::uint32_t s = eval_sad(fx, fy);
      if (s < best) {
        best = s;
        best_x = fx;
        best_y = fy;
      }
    }
  }

  // Large diamond until the center wins, then small diamond once.
  static constexpr std::array<std::pair<int, int>, 8> kLarge{
      {{0, -2}, {1, -1}, {2, 0}, {1, 1}, {0, 2}, {-1, 1}, {-2, 0}, {-1, -1}}};
  static constexpr std::array<std::pair<int, int>, 4> kSmall{
      {{0, -1}, {1, 0}, {0, 1}, {-1, 0}}};

  bool moved = true;
  int rounds = 0;
  while (moved && best > config.early_exit && rounds < 2 * config.search_range) {
    moved = false;
    ++rounds;
    for (const auto& [dx, dy] : kLarge) {
      const int fx = best_x + dx, fy = best_y + dy;
      if (fx < -config.search_range || fx > config.search_range ||
          fy < -config.search_range || fy > config.search_range)
        continue;
      const std::uint32_t s = eval_sad(fx, fy);
      if (s < best) {
        best = s;
        best_x = fx;
        best_y = fy;
        moved = true;
        break;  // greedy: re-center immediately (keeps counts data-dependent)
      }
    }
  }
  for (const auto& [dx, dy] : kSmall) {
    const int fx = best_x + dx, fy = best_y + dy;
    if (fx < -config.search_range || fx > config.search_range ||
        fy < -config.search_range || fy > config.search_range)
      continue;
    const std::uint32_t s = eval_sad(fx, fy);
    if (s < best) {
      best = s;
      best_x = fx;
      best_y = fy;
    }
  }
  result.sad = best;

  // Half-pel refinement with SATD around the full-pel winner (8 neighbours +
  // center, the classic 9-point refinement).
  MotionVector best_mv{2 * best_x, 2 * best_y};
  auto eval_satd = [&](const MotionVector& mv) {
    ++result.satd_evaluations;
    if (hook) hook(true);
    return half_pel_satd(cur, ref, mb_px_x, mb_px_y, mv);
  };
  std::uint32_t best_cost = eval_satd(best_mv);
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const MotionVector mv{2 * best_x + dx, 2 * best_y + dy};
      const std::uint32_t c = eval_satd(mv);
      if (c < best_cost) {
        best_cost = c;
        best_mv = mv;
      }
    }
  }
  result.mv = best_mv;
  result.satd = best_cost;
  return result;
}

}  // namespace rispp::h264
