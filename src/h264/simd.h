// Portable fixed-width SIMD primitives for the H.264 kernels.
//
// Built on the GCC/Clang generic vector extensions, so the same source
// compiles to SSE/NEON/AVX (or scalar expansion) without any
// target-specific intrinsics. Everything here is exact integer arithmetic:
// a kernel written with these types produces bit-identical results to its
// scalar reference — the paper's SADRow trap handler makes the same
// packed-word argument for the hardware SIs.
//
// When the extensions are unavailable RISPP_SIMD stays undefined and the
// dispatching kernels (kernels.h) keep the scalar path.
#pragma once

#include <cstdint>
#include <cstring>

#if (defined(__GNUC__) || defined(__clang__)) && !defined(RISPP_NO_SIMD)
#define RISPP_SIMD 1
#endif

#ifdef RISPP_SIMD

namespace rispp::h264::simd {

using u8x16 = std::uint8_t __attribute__((vector_size(16)));
using i16x16 = std::int16_t __attribute__((vector_size(32)));
using i32x4 = std::int32_t __attribute__((vector_size(16)));
using i32x16 = std::int32_t __attribute__((vector_size(64)));

inline u8x16 load_u8x16(const std::uint8_t* p) {
  u8x16 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void store_u8x16(std::uint8_t* p, u8x16 v) { std::memcpy(p, &v, sizeof v); }

inline i32x4 load_i32x4(const int* p) {
  i32x4 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void store_i32x4(int* p, i32x4 v) { std::memcpy(p, &v, sizeof v); }

inline i16x16 widen_i16(u8x16 v) { return __builtin_convertvector(v, i16x16); }
inline i32x16 widen_i32(u8x16 v) { return __builtin_convertvector(v, i32x16); }
inline i32x16 widen_i32(i16x16 v) { return __builtin_convertvector(v, i32x16); }
inline u8x16 narrow_u8(i16x16 v) { return __builtin_convertvector(v, u8x16); }
inline u8x16 narrow_u8(i32x16 v) { return __builtin_convertvector(v, u8x16); }

/// Lanewise |v| via sign-mask arithmetic (no lane may be INT_MIN — pixel
/// differences and Hadamard coefficients are far smaller).
inline i16x16 abs_lanes(i16x16 v) {
  const i16x16 m = v >> 15;
  return (v ^ m) - m;
}

inline i32x4 abs_lanes(i32x4 v) {
  const i32x4 m = v >> 31;
  return (v ^ m) - m;
}

/// Lanewise clamp to the pixel range [0, 255] via mask arithmetic.
template <typename V>
inline V clamp_pixel_lanes(V v) {
  v &= ~(v >> (sizeof(v[0]) * 8 - 1));  // negative lanes -> 0
  const V over = (255 - v) >> (sizeof(v[0]) * 8 - 1);
  return (v & ~over) | (over & 255);
}

/// In-place 4x4 transpose of four row vectors.
inline void transpose4(i32x4& a, i32x4& b, i32x4& c, i32x4& d) {
  const i32x4 t0 = __builtin_shufflevector(a, b, 0, 4, 1, 5);
  const i32x4 t1 = __builtin_shufflevector(a, b, 2, 6, 3, 7);
  const i32x4 t2 = __builtin_shufflevector(c, d, 0, 4, 1, 5);
  const i32x4 t3 = __builtin_shufflevector(c, d, 2, 6, 3, 7);
  a = __builtin_shufflevector(t0, t2, 0, 1, 4, 5);
  b = __builtin_shufflevector(t0, t2, 2, 3, 6, 7);
  c = __builtin_shufflevector(t1, t3, 0, 1, 4, 5);
  d = __builtin_shufflevector(t1, t3, 2, 3, 6, 7);
}

template <typename V>
inline std::uint32_t horizontal_sum_u32(V v) {
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < sizeof(v) / sizeof(v[0]); ++i)
    acc += static_cast<std::uint32_t>(v[i]);
  return acc;
}

}  // namespace rispp::h264::simd

#endif  // RISPP_SIMD
