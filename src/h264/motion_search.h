// Motion estimation: full-pel diamond search with SAD, then half-pel
// refinement with SATD — the Motion Estimation hot spot that issues the
// paper's ~32K SAD/SATD Special Instruction executions per frame (Figure 2:
// 31,977). Every kernel evaluation is reported to the caller so the
// workload recorder can emit the SI execution trace.
#pragma once

#include <cstdint>
#include <functional>

#include "h264/frame.h"
#include "h264/interpolate.h"

namespace rispp::h264 {

struct MotionSearchConfig {
  int search_range = 16;     // full-pel radius the search may roam
  std::uint32_t early_exit = 300;  // SAD below this stops the search
};

struct MotionSearchResult {
  MotionVector mv;           // half-pel units
  std::uint32_t sad = 0;     // best full-pel SAD
  std::uint32_t satd = 0;    // best half-pel SATD (inter cost)
  int sad_evaluations = 0;   // SAD SI executions issued
  int satd_evaluations = 0;  // SATD SI executions issued
};

/// Called once per kernel evaluation: (is_satd). Used by the workload
/// recorder; may be empty.
using KernelHook = std::function<void(bool is_satd)>;

/// Searches the 16x16 MB at pixel (mb_px_x, mb_px_y) of `cur` in `ref`.
/// `prediction` seeds the search (median/left-neighbour MV in the encoder).
MotionSearchResult motion_search_16x16(const Plane& cur, const Plane& ref, int mb_px_x,
                                       int mb_px_y, const MotionVector& prediction,
                                       const MotionSearchConfig& config,
                                       const KernelHook& hook = {});

}  // namespace rispp::h264
