#include "h264/interpolate.h"

#include <cstring>

#include "h264/kernels.h"
#include "h264/simd.h"

namespace rispp::h264 {
namespace {

int filter_h(const Plane& ref, int x, int y) {
  return point_filter_6tap(ref.at_clamped(x - 2, y), ref.at_clamped(x - 1, y),
                           ref.at_clamped(x, y), ref.at_clamped(x + 1, y),
                           ref.at_clamped(x + 2, y), ref.at_clamped(x + 3, y));
}

int filter_v(const Plane& ref, int x, int y) {
  return point_filter_6tap(ref.at_clamped(x, y - 2), ref.at_clamped(x, y - 1),
                           ref.at_clamped(x, y), ref.at_clamped(x, y + 1),
                           ref.at_clamped(x, y + 2), ref.at_clamped(x, y + 3));
}

/// Vertical filter over horizontally filtered intermediates (the "j" sample
/// of the standard), with the combined 1/1024 normalization.
int filter_hv(const Plane& ref, int x, int y) {
  int rows[6];
  for (int k = 0; k < 6; ++k) rows[k] = filter_h(ref, x, y - 2 + k);
  const int v = point_filter_6tap(rows[0], rows[1], rows[2], rows[3], rows[4], rows[5]);
  return (v + 512) >> 10;
}

}  // namespace

Pixel interpolate_half_pel(const Plane& ref, int full_x, int full_y, bool half_x, bool half_y) {
  if (!half_x && !half_y) return ref.at_clamped(full_x, full_y);
  if (half_x && !half_y) return clip_pixel((filter_h(ref, full_x, full_y) + 16) >> 5);
  if (!half_x && half_y) return clip_pixel((filter_v(ref, full_x, full_y) + 16) >> 5);
  return clip_pixel(filter_hv(ref, full_x, full_y));
}

void motion_compensate_16x16_scalar(const Plane& ref, int mb_px_x, int mb_px_y,
                                    const MotionVector& mv, Pixel dst[16 * 16]) {
  const int base_x = mb_px_x + (mv.x >> 1);
  const int base_y = mb_px_y + (mv.y >> 1);
  const bool half_x = (mv.x & 1) != 0;
  const bool half_y = (mv.y & 1) != 0;
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      dst[y * 16 + x] = interpolate_half_pel(ref, base_x + x, base_y + y, half_x, half_y);
}

#ifdef RISPP_SIMD

namespace {

using simd::i16x16;
using simd::i32x16;
using simd::u8x16;

inline i16x16 row_i16(const Pixel* p) { return simd::widen_i16(simd::load_u8x16(p)); }
inline i32x16 row_i32(const Pixel* p) { return simd::widen_i32(simd::load_u8x16(p)); }

/// 6-tap horizontal filter of 16 adjacent samples starting at p, 16-bit
/// lanes (raw value range [-2550, 5610], well inside int16).
inline i16x16 filter_h16(const Pixel* p) {
  return row_i16(p - 2) - 5 * row_i16(p - 1) + 20 * row_i16(p) + 20 * row_i16(p + 1) -
         5 * row_i16(p + 2) + row_i16(p + 3);
}

inline void store_clipped(Pixel* dst, i16x16 v) {
  simd::store_u8x16(dst, simd::narrow_u8(simd::clamp_pixel_lanes(v)));
}

}  // namespace

void motion_compensate_16x16_simd(const Plane& ref, int mb_px_x, int mb_px_y,
                                  const MotionVector& mv, Pixel dst[16 * 16]) {
  const int base_x = mb_px_x + (mv.x >> 1);
  const int base_y = mb_px_y + (mv.y >> 1);
  const bool half_x = (mv.x & 1) != 0;
  const bool half_y = (mv.y & 1) != 0;
  // Conservative footprint of the 6-tap filter around the 16x16 block; any
  // clamped access means the scalar edge-replication path.
  if (base_x - 2 < 0 || base_x + 19 > ref.width() || base_y - 2 < 0 ||
      base_y + 19 > ref.height()) {
    motion_compensate_16x16_scalar(ref, mb_px_x, mb_px_y, mv, dst);
    return;
  }
  if (!half_x && !half_y) {
    for (int y = 0; y < 16; ++y) std::memcpy(dst + y * 16, ref.row(base_y + y) + base_x, 16);
    return;
  }
  if (half_x && !half_y) {
    for (int y = 0; y < 16; ++y) {
      const i16x16 v = filter_h16(ref.row(base_y + y) + base_x);
      store_clipped(dst + y * 16, (v + 16) >> 5);
    }
    return;
  }
  if (!half_x && half_y) {
    for (int y = 0; y < 16; ++y) {
      const int ry = base_y + y;
      const i16x16 v = row_i16(ref.row(ry - 2) + base_x) - 5 * row_i16(ref.row(ry - 1) + base_x) +
                       20 * row_i16(ref.row(ry) + base_x) +
                       20 * row_i16(ref.row(ry + 1) + base_x) -
                       5 * row_i16(ref.row(ry + 2) + base_x) + row_i16(ref.row(ry + 3) + base_x);
      store_clipped(dst + y * 16, (v + 16) >> 5);
    }
    return;
  }
  // half_x && half_y: vertical 6-tap over raw horizontal intermediates
  // (range exceeds int16, so 32-bit lanes), then the combined (v+512)>>10.
  i32x16 hrow[21];
  for (int r = 0; r < 21; ++r) {
    const Pixel* p = ref.row(base_y - 2 + r) + base_x;
    hrow[r] = row_i32(p - 2) - 5 * row_i32(p - 1) + 20 * row_i32(p) + 20 * row_i32(p + 1) -
              5 * row_i32(p + 2) + row_i32(p + 3);
  }
  for (int y = 0; y < 16; ++y) {
    const i32x16 v = hrow[y] - 5 * hrow[y + 1] + 20 * hrow[y + 2] + 20 * hrow[y + 3] -
                     5 * hrow[y + 4] + hrow[y + 5];
    const i32x16 c = simd::clamp_pixel_lanes((v + 512) >> 10);
    simd::store_u8x16(dst + y * 16, simd::narrow_u8(c));
  }
}

#else  // !RISPP_SIMD

void motion_compensate_16x16_simd(const Plane& ref, int mb_px_x, int mb_px_y,
                                  const MotionVector& mv, Pixel dst[16 * 16]) {
  motion_compensate_16x16_scalar(ref, mb_px_x, mb_px_y, mv, dst);
}

#endif  // RISPP_SIMD

void motion_compensate_16x16(const Plane& ref, int mb_px_x, int mb_px_y, const MotionVector& mv,
                             Pixel dst[16 * 16]) {
  if (active_kernel_backend() == KernelBackend::kSimd)
    motion_compensate_16x16_simd(ref, mb_px_x, mb_px_y, mv, dst);
  else
    motion_compensate_16x16_scalar(ref, mb_px_x, mb_px_y, mv, dst);
}

}  // namespace rispp::h264
