#include "h264/interpolate.h"

namespace rispp::h264 {
namespace {

int filter_h(const Plane& ref, int x, int y) {
  return point_filter_6tap(ref.at_clamped(x - 2, y), ref.at_clamped(x - 1, y),
                           ref.at_clamped(x, y), ref.at_clamped(x + 1, y),
                           ref.at_clamped(x + 2, y), ref.at_clamped(x + 3, y));
}

int filter_v(const Plane& ref, int x, int y) {
  return point_filter_6tap(ref.at_clamped(x, y - 2), ref.at_clamped(x, y - 1),
                           ref.at_clamped(x, y), ref.at_clamped(x, y + 1),
                           ref.at_clamped(x, y + 2), ref.at_clamped(x, y + 3));
}

/// Vertical filter over horizontally filtered intermediates (the "j" sample
/// of the standard), with the combined 1/1024 normalization.
int filter_hv(const Plane& ref, int x, int y) {
  int rows[6];
  for (int k = 0; k < 6; ++k) rows[k] = filter_h(ref, x, y - 2 + k);
  const int v = point_filter_6tap(rows[0], rows[1], rows[2], rows[3], rows[4], rows[5]);
  return (v + 512) >> 10;
}

}  // namespace

Pixel interpolate_half_pel(const Plane& ref, int full_x, int full_y, bool half_x, bool half_y) {
  if (!half_x && !half_y) return ref.at_clamped(full_x, full_y);
  if (half_x && !half_y) return clip_pixel((filter_h(ref, full_x, full_y) + 16) >> 5);
  if (!half_x && half_y) return clip_pixel((filter_v(ref, full_x, full_y) + 16) >> 5);
  return clip_pixel(filter_hv(ref, full_x, full_y));
}

void motion_compensate_16x16(const Plane& ref, int mb_px_x, int mb_px_y,
                             const MotionVector& mv, Pixel dst[16 * 16]) {
  const int base_x = mb_px_x + (mv.x >> 1);
  const int base_y = mb_px_y + (mv.y >> 1);
  const bool half_x = (mv.x & 1) != 0;
  const bool half_y = (mv.y & 1) != 0;
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      dst[y * 16 + x] = interpolate_half_pel(ref, base_x + x, base_y + y, half_x, half_y);
}

}  // namespace rispp::h264
