// The H.264-subset encoder that generates the workload.
//
// Per frame the encoder walks the paper's Figure 1 hot-spot sequence:
//   ME  — full-/half-pel motion search per MB (SAD, SATD),
//   EE  — mode decision, motion compensation / intra prediction, residual
//         transform + quantization + reconstruction (MC, (I)DCT, (I)HT 2x2,
//         (I)HT 4x4, IPred HDC, IPred VDC),
//   LF  — strong deblocking of intra/blocky MB edges (LF_BS4).
// Every SI-accelerable kernel invocation is appended to a FrameSiTrace in
// program order; the cycle-level simulator replays those traces.
//
// This is a real encoder in the sense that matters here: it operates on
// actual pixels, makes data-dependent decisions (search trajectories, mode
// choices, filter conditions) and maintains a reconstruction loop, so SI
// counts vary frame to frame the way the paper's profile does.
#pragma once

#include <vector>

#include "base/types.h"
#include "h264/deblock.h"
#include "h264/frame.h"
#include "h264/entropy.h"
#include "h264/motion_search.h"

namespace rispp {
class ThreadPool;
}

namespace rispp::h264 {

struct EncoderConfig {
  int qp = 28;
  MotionSearchConfig search;
  DeblockThresholds deblock;
  /// Intra is chosen when intra_cost * 8 < inter_cost * intra_bias_num.
  int intra_bias_num = 7;
  /// Edge gradient above which a P-frame MB edge is treated as a strong
  /// (BS4-candidate) edge.
  int strong_edge_threshold = 18;
};

/// SI ids the encoder reports (resolved once from the instruction set).
struct H264SiIds {
  SiId sad = 0, satd = 0, dct = 0, ht2x2 = 0, ht4x4 = 0;
  SiId mc = 0, ipred_hdc = 0, ipred_vdc = 0, lf_bs4 = 0;
};

struct FrameSiTrace {
  std::vector<SiId> me, ee, lf;
};

struct FrameResult {
  double psnr = 0.0;
  int intra_mbs = 0;
  int inter_mbs = 0;
  /// Entropy-coded size of the frame (header-less payload bits).
  std::size_t bits = 0;
};

class Encoder {
 public:
  Encoder(const EncoderConfig& config, int width, int height, const H264SiIds& ids);

  /// Encodes one frame; appends SI executions to `trace` if non-null.
  /// The first frame is always intra.
  ///
  /// ME, EE and LF evaluate macroblock rows as a wavefront on the thread
  /// pool (set_thread_pool; default: ThreadPool::global()): row r's motion
  /// search waits for one finished MB of row r-1 (top MV predictor), its
  /// encoding engine trails row r-1 by one MB (top reconstruction for IPred
  /// VDC, top coded MV), and its deblocking filter trails row r-1 by two MBs
  /// (the horizontal filter reads pixels the row above finishes with MB
  /// mx+1's vertical filter, and writes pixels that same filter reads).
  /// Per-row SI events and entropy bits are folded back in row order, so
  /// trace and payload are identical for any thread count.
  FrameResult encode_frame(const Frame& input, FrameSiTrace* trace);

  /// Pool used for the wavefront; nullptr (default) means the global pool.
  /// A pool with thread_count() <= 1 reproduces the serial encode exactly.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  const Frame& reconstructed() const { return recon_; }
  /// Entropy-coded payload of the last encoded frame (decoder input).
  std::vector<std::uint8_t> last_frame_bytes() const { return frame_bits_.bytes(); }
  int frames_encoded() const { return frame_; }

 private:
  struct MbDecision {
    bool intra = false;
    MotionVector mv;
  };

  /// Transforms, quantizes and reconstructs one 16x16 luma block given its
  /// prediction, entropy-coding levels into `bits` (the caller row's
  /// writer); returns summed absolute quantized levels (activity proxy).
  int code_mb_luma(const Frame& input, int px, int py, const Pixel pred[16 * 16],
                   BitWriter& bits);
  void code_mb_chroma(const Frame& input, int px, int py);

  EncoderConfig config_;
  H264SiIds ids_;
  Frame recon_;
  Frame ref_;  // previous reconstructed frame
  std::vector<MotionVector> mv_field_;   // ME results (search seeding)
  std::vector<MotionVector> coded_mv_;   // decodable MV field (intra -> zero)
  std::vector<MbDecision> decisions_;
  std::vector<std::uint32_t> inter_cost_scratch_;  // per-MB inter SATD of this frame
  BitWriter frame_bits_;                           // entropy-coded payload
  ThreadPool* pool_ = nullptr;                     // nullptr -> global pool
  int frame_ = 0;
};

}  // namespace rispp::h264
