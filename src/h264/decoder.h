// Luma decoder for the encoder's entropy stream — the proof that the
// bitstream is self-contained: decoding (prediction, residual
// reconstruction AND the in-loop deblocking pass) must reproduce the
// encoder's luma reconstruction *bit-exactly*, frame after frame
// (drift-free closed loop), which the round-trip tests assert. Chroma uses
// the simplified DC model and is not entropy-coded, so the decoder covers
// luma.
#pragma once

#include "h264/bitstream.h"
#include "h264/encoder.h"
#include "h264/frame.h"

namespace rispp::h264 {

struct DecodedFrame {
  Plane luma;
  int intra_mbs = 0;
  int inter_mbs = 0;
};

/// Decodes one frame's luma from `reader` against the previous
/// reconstruction `ref_luma` (ignored for all-intra frames), including the
/// in-loop deblocking pass. `config` must match the encoder's (qp, deblock
/// thresholds, strong-edge gate); dimensions come from `ref_luma`.
DecodedFrame decode_frame_luma(BitReader& reader, const Plane& ref_luma,
                               const EncoderConfig& config);

}  // namespace rispp::h264
