// Cost kernels of the Motion Estimation hot spot — the functional
// counterparts of the SAD and SATD Special Instructions.
#pragma once

#include <cstdint>

#include "h264/frame.h"

namespace rispp::h264 {

/// Sum of absolute differences over a 16x16 block. `cur` is addressed
/// in-bounds at (cx,cy); the reference candidate (rx,ry) is edge-clamped so
/// search windows may cross the frame border.
std::uint32_t sad_16x16(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry);

/// 4x4 SATD: sum of absolute values of the 2-D Hadamard transform of the
/// residual, normalized by /2 as in the JM reference software.
std::uint32_t satd_4x4(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry);

/// 16x16 SATD as the sum of its sixteen 4x4 SATDs.
std::uint32_t satd_16x16(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry);

/// SATD of a 16x16 block against an in-memory prediction block (row-major
/// 16x16) — used for intra mode cost.
std::uint32_t satd_16x16_pred(const Plane& cur, int cx, int cy, const Pixel pred[16 * 16]);

}  // namespace rispp::h264
