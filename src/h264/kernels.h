// Cost kernels of the Motion Estimation hot spot — the functional
// counterparts of the SAD and SATD Special Instructions.
//
// Each kernel exists in two backends: a scalar reference and a portable
// fixed-width SIMD version (simd.h) that is bit-exact by construction —
// integer-only arithmetic, identical rounding, and (for SATD) the
// transpose-commutation of the Hadamard abs-sum. The public entry points
// dispatch on the process-wide backend; tests fuzz the two against each
// other (h264_kernels_test.cpp).
#pragma once

#include <cstdint>

#include "h264/frame.h"

namespace rispp::h264 {

enum class KernelBackend {
  kScalar,  // reference path, always available
  kSimd,    // GCC vector-extension path (simd.h)
};

/// True when the SIMD backend is compiled in (GCC/Clang vector extensions).
bool simd_available();

/// The backend the dispatching kernels currently use. Defaults to kSimd when
/// available unless RISPP_SIMD=0 (strictly parsed, base/env.h).
KernelBackend active_kernel_backend();

/// Overrides the backend process-wide (benches and equivalence tests).
/// Selecting kSimd without simd_available() keeps the scalar path.
void set_kernel_backend(KernelBackend backend);

/// Sum of absolute differences over a 16x16 block. `cur` is addressed
/// in-bounds at (cx,cy); the reference candidate (rx,ry) is edge-clamped so
/// search windows may cross the frame border.
std::uint32_t sad_16x16(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry);

/// 4x4 SATD: sum of absolute values of the 2-D Hadamard transform of the
/// residual, normalized by /2 as in the JM reference software.
std::uint32_t satd_4x4(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry);

/// 16x16 SATD as the sum of its sixteen 4x4 SATDs.
std::uint32_t satd_16x16(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry);

/// SATD of a 16x16 block against an in-memory prediction block (row-major
/// 16x16) — used for intra mode cost.
std::uint32_t satd_16x16_pred(const Plane& cur, int cx, int cy, const Pixel pred[16 * 16]);

// Backend-pinned variants (equivalence tests and micro benches).
std::uint32_t sad_16x16_scalar(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry);
std::uint32_t sad_16x16_simd(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry);
std::uint32_t satd_16x16_scalar(const Plane& cur, int cx, int cy, const Plane& ref, int rx,
                                int ry);
std::uint32_t satd_16x16_simd(const Plane& cur, int cx, int cy, const Plane& ref, int rx, int ry);
std::uint32_t satd_16x16_pred_scalar(const Plane& cur, int cx, int cy, const Pixel pred[16 * 16]);
std::uint32_t satd_16x16_pred_simd(const Plane& cur, int cx, int cy, const Pixel pred[16 * 16]);

}  // namespace rispp::h264
