#include "h264/entropy.h"

#include "base/check.h"

namespace rispp::h264 {

const int kZigZag4x4[16] = {0, 1,  4,  8,  5, 2,  3,  6,
                            9, 12, 13, 10, 7, 11, 14, 15};

void write_ue(BitWriter& writer, std::uint32_t value) {
  // codeNum = value; written as [zeros] 1 [info], zeros = info bits.
  const std::uint64_t code = static_cast<std::uint64_t>(value) + 1;
  int bits = 0;
  while ((code >> bits) > 1) ++bits;
  writer.put_bits(0, bits);
  writer.put_bit(true);
  if (bits > 0) writer.put_bits(static_cast<std::uint32_t>(code & ((1u << bits) - 1)), bits);
}

std::uint32_t read_ue(BitReader& reader) {
  int zeros = 0;
  while (!reader.get_bit()) {
    ++zeros;
    RISPP_CHECK_MSG(zeros <= 32, "malformed ue(v) code");
  }
  std::uint32_t info = zeros > 0 ? reader.get_bits(zeros) : 0;
  return (1u << zeros) - 1 + info;
}

void write_se(BitWriter& writer, std::int32_t value) {
  // 0 -> 0, 1 -> 1, -1 -> 2, 2 -> 3, -2 -> 4, ...
  const std::uint32_t mapped =
      value > 0 ? static_cast<std::uint32_t>(2 * value - 1)
                : static_cast<std::uint32_t>(-2 * static_cast<std::int64_t>(value));
  write_ue(writer, mapped);
}

std::int32_t read_se(BitReader& reader) {
  const std::uint32_t mapped = read_ue(reader);
  if (mapped == 0) return 0;
  const auto magnitude = static_cast<std::int32_t>((mapped + 1) / 2);
  return mapped % 2 == 1 ? magnitude : -magnitude;
}

std::size_t encode_residual_block(BitWriter& writer, const int levels[16]) {
  const std::size_t before = writer.bit_count();
  int nonzero = 0;
  for (int i = 0; i < 16; ++i)
    if (levels[kZigZag4x4[i]] != 0) ++nonzero;
  write_ue(writer, static_cast<std::uint32_t>(nonzero));
  int run = 0;
  for (int i = 0; i < 16; ++i) {
    const int level = levels[kZigZag4x4[i]];
    if (level == 0) {
      ++run;
      continue;
    }
    write_ue(writer, static_cast<std::uint32_t>(run));
    write_se(writer, level);
    run = 0;
  }
  return writer.bit_count() - before;
}

void decode_residual_block(BitReader& reader, int levels[16]) {
  for (int i = 0; i < 16; ++i) levels[i] = 0;
  const std::uint32_t nonzero = read_ue(reader);
  RISPP_CHECK_MSG(nonzero <= 16, "corrupt residual block header");
  int position = 0;
  for (std::uint32_t k = 0; k < nonzero; ++k) {
    const auto run = static_cast<int>(read_ue(reader));
    position += run;
    RISPP_CHECK_MSG(position < 16, "corrupt residual run");
    levels[kZigZag4x4[position]] = read_se(reader);
    ++position;
  }
}

}  // namespace rispp::h264
