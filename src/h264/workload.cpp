#include "h264/workload.h"

#include <cinttypes>
#include <cstdio>
#include <memory>

#include "base/check.h"
#include "base/parallel.h"
#include "isa/h264_si_library.h"

namespace rispp::h264 {

H264SiIds resolve_si_ids(const SpecialInstructionSet& set) {
  auto need = [&](const char* name) {
    const auto id = set.find(name);
    RISPP_CHECK_MSG(id.has_value(), "SI " << name << " missing from instruction set");
    return *id;
  };
  H264SiIds ids;
  ids.sad = need(h264sis::kSad);
  ids.satd = need(h264sis::kSatd);
  ids.dct = need(h264sis::kDct);
  ids.ht2x2 = need(h264sis::kHt2x2);
  ids.ht4x4 = need(h264sis::kHt4x4);
  ids.mc = need(h264sis::kMc);
  ids.ipred_hdc = need(h264sis::kIpredHdc);
  ids.ipred_vdc = need(h264sis::kIpredVdc);
  ids.lf_bs4 = need(h264sis::kLfBs4);
  return ids;
}

WorkloadResult generate_h264_workload(const SpecialInstructionSet& set,
                                      const WorkloadConfig& config) {
  const H264SiIds ids = resolve_si_ids(set);

  WorkloadResult result;
  WorkloadTrace& trace = result.trace;
  trace.hot_spots.resize(3);
  trace.hot_spots[kHotSpotMe] = {"ME", {ids.sad, ids.satd}, config.per_execution_overhead};
  trace.hot_spots[kHotSpotEe] = {"EE",
                                 {ids.dct, ids.ht2x2, ids.ht4x4, ids.mc, ids.ipred_hdc,
                                  ids.ipred_vdc},
                                 config.per_execution_overhead};
  trace.hot_spots[kHotSpotLf] = {"LF", {ids.lf_bs4}, config.per_execution_overhead};

  SyntheticVideo video(config.video);
  Encoder encoder(config.encoder, config.video.width, config.video.height, ids);
  std::unique_ptr<ThreadPool> own_pool;
  if (config.encode_threads > 0) {
    own_pool = std::make_unique<ThreadPool>(static_cast<unsigned>(config.encode_threads));
    encoder.set_thread_pool(own_pool.get());
  }

  double psnr_sum = 0.0;
  std::uint64_t total_bits = 0;
  for (int f = 0; f < config.frames; ++f) {
    const Frame input = video.next();
    FrameSiTrace frame_trace;
    const FrameResult fr = encoder.encode_frame(input, &frame_trace);
    psnr_sum += fr.psnr;
    total_bits += fr.bits;
    result.intra_mbs += fr.intra_mbs;
    result.inter_mbs += fr.inter_mbs;

    if (!frame_trace.me.empty()) {
      trace.instances.push_back(HotSpotInstance{
          kHotSpotMe, std::move(frame_trace.me), config.hot_spot_entry_overhead});
    }
    trace.instances.push_back(HotSpotInstance{
        kHotSpotEe, std::move(frame_trace.ee), config.hot_spot_entry_overhead});
    trace.instances.push_back(HotSpotInstance{
        kHotSpotLf, std::move(frame_trace.lf), config.hot_spot_entry_overhead});
  }
  result.mean_psnr = config.frames > 0 ? psnr_sum / config.frames : 0.0;
  result.mean_bitrate_kbps =
      config.frames > 0
          ? static_cast<double>(total_bits) * 30.0 / config.frames / 1000.0
          : 0.0;
  trace.build_runs();
  return result;
}

std::vector<std::vector<std::uint64_t>> default_forecast_seeds(
    const SpecialInstructionSet& set) {
  const H264SiIds ids = resolve_si_ids(set);
  std::vector<std::vector<std::uint64_t>> seeds(3,
                                                std::vector<std::uint64_t>(set.si_count(), 0));
  // Rough offline profile of one CIF frame (396 MBs).
  seeds[kHotSpotMe][ids.sad] = 24'000;
  seeds[kHotSpotMe][ids.satd] = 3'600;
  seeds[kHotSpotEe][ids.mc] = 1'400;
  seeds[kHotSpotEe][ids.dct] = 2'000;
  seeds[kHotSpotEe][ids.ht2x2] = 400;
  seeds[kHotSpotEe][ids.ht4x4] = 40;
  seeds[kHotSpotEe][ids.ipred_hdc] = 400;
  seeds[kHotSpotEe][ids.ipred_vdc] = 400;
  seeds[kHotSpotLf][ids.lf_bs4] = 400;
  return seeds;
}

std::uint64_t workload_fingerprint(const SpecialInstructionSet& set,
                                   const WorkloadConfig& config) {
  std::uint64_t hash = fingerprint(set);
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.frames));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.video.width));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.video.height));
  hash = fingerprint_mix(hash, config.video.seed);
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.video.object_count));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.video.cut_period));
  hash = fingerprint_mix(hash,
                         static_cast<std::uint64_t>(config.video.noise_stddev * 1024.0));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.encoder.qp));
  hash = fingerprint_mix(hash,
                         static_cast<std::uint64_t>(config.encoder.search.search_range));
  hash = fingerprint_mix(hash, config.encoder.search.early_exit);
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.encoder.deblock.alpha));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.encoder.deblock.beta));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.encoder.intra_bias_num));
  hash = fingerprint_mix(
      hash, static_cast<std::uint64_t>(config.encoder.strong_edge_threshold));
  hash = fingerprint_mix(hash, config.per_execution_overhead);
  hash = fingerprint_mix(hash, config.hot_spot_entry_overhead);
  return hash;
}

std::filesystem::path trace_cache_path(const SpecialInstructionSet& set,
                                       const WorkloadConfig& config) {
  char key[32];
  std::snprintf(key, sizeof key, "%016" PRIx64, workload_fingerprint(set, config));
  return trace_cache_dir() /
         ("rispp_h264_trace_v" + std::to_string(kWorkloadTraceVersion) + "_" +
          std::to_string(config.frames) + "_" + key + ".rtrc");
}

}  // namespace rispp::h264
