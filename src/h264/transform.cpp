#include "h264/transform.h"

#include "h264/kernels.h"
#include "h264/simd.h"

namespace rispp::h264 {
namespace {

// H.264 forward core transform matrix C (applied as C * X * C^T):
//   | 1  1  1  1 |
//   | 2  1 -1 -2 |
//   | 1 -1 -1  1 |
//   | 1 -2  2 -1 |
inline void forward_butterfly(const int x[4], int y[4]) {
  const int s0 = x[0] + x[3], s1 = x[1] + x[2];
  const int d0 = x[0] - x[3], d1 = x[1] - x[2];
  y[0] = s0 + s1;
  y[1] = 2 * d0 + d1;
  y[2] = s0 - s1;
  y[3] = d0 - 2 * d1;
}

// Exact integer inverse. C's rows are orthogonal with squared norms
// (4,10,4,10), so B = C^T * diag(5,2,5,2) satisfies B*C = 20*I — applied on
// rows and columns, idct4x4(dct4x4(x)) == 400 * x exactly. (Real codecs fold
// the scaling into the dequantization tables; our pipeline divides by 400
// with rounding after dequant, see quant.h.)
inline void inverse_butterfly(const int x[4], int y[4]) {
  const int a = 5 * (x[0] + x[2]);
  const int b = 5 * (x[0] - x[2]);
  const int c = 4 * x[1] + 2 * x[3];
  const int d = 2 * x[1] - 4 * x[3];
  y[0] = a + c;
  y[1] = b + d;
  y[2] = b - d;
  y[3] = a - c;
}

template <typename RowFn>
void transform_2d(const int in[16], int out[16], RowFn fn) {
  int tmp[16];
  // Rows.
  for (int r = 0; r < 4; ++r) fn(&in[4 * r], &tmp[4 * r]);
  // Columns.
  for (int c = 0; c < 4; ++c) {
    int col[4] = {tmp[c], tmp[4 + c], tmp[8 + c], tmp[12 + c]};
    int res[4];
    fn(col, res);
    out[c] = res[0];
    out[4 + c] = res[1];
    out[8 + c] = res[2];
    out[12 + c] = res[3];
  }
}

}  // namespace

void dct4x4_scalar(const int in[16], int out[16]) {
  transform_2d(in, out, [](const int* x, int* y) { forward_butterfly(x, y); });
}

void idct4x4_scalar(const int in[16], int out[16]) {
  transform_2d(in, out, [](const int* x, int* y) { inverse_butterfly(x, y); });
}

void hadamard4x4_scalar(const int in[16], int out[16]) {
  transform_2d(in, out, [](const int* x, int* y) {
    const int s0 = x[0] + x[2], s1 = x[1] + x[3];
    const int d0 = x[0] - x[2], d1 = x[1] - x[3];
    y[0] = s0 + s1;
    y[1] = d0 + d1;
    y[2] = s0 - s1;
    y[3] = d0 - d1;
  });
}

#ifdef RISPP_SIMD

namespace {

using simd::i32x4;

// Both 1-D passes run as lanewise butterflies over transposed row vectors:
// load rows -> transpose (lanes = one matrix row each) -> butterfly = the
// scalar row pass -> transpose -> butterfly = the scalar column pass ->
// vectors are the output rows. Pure int32 adds/shifts, so bit-identical.
template <typename Butterfly>
inline void transform_2d_simd(const int in[16], int out[16], Butterfly fn) {
  i32x4 r0 = simd::load_i32x4(in + 0);
  i32x4 r1 = simd::load_i32x4(in + 4);
  i32x4 r2 = simd::load_i32x4(in + 8);
  i32x4 r3 = simd::load_i32x4(in + 12);
  simd::transpose4(r0, r1, r2, r3);
  fn(r0, r1, r2, r3);
  simd::transpose4(r0, r1, r2, r3);
  fn(r0, r1, r2, r3);
  simd::store_i32x4(out + 0, r0);
  simd::store_i32x4(out + 4, r1);
  simd::store_i32x4(out + 8, r2);
  simd::store_i32x4(out + 12, r3);
}

inline void forward_butterfly_v(i32x4& x0, i32x4& x1, i32x4& x2, i32x4& x3) {
  const i32x4 s0 = x0 + x3, s1 = x1 + x2;
  const i32x4 d0 = x0 - x3, d1 = x1 - x2;
  x0 = s0 + s1;
  x1 = 2 * d0 + d1;
  x2 = s0 - s1;
  x3 = d0 - 2 * d1;
}

inline void inverse_butterfly_v(i32x4& x0, i32x4& x1, i32x4& x2, i32x4& x3) {
  const i32x4 a = 5 * (x0 + x2);
  const i32x4 b = 5 * (x0 - x2);
  const i32x4 c = 4 * x1 + 2 * x3;
  const i32x4 d = 2 * x1 - 4 * x3;
  x0 = a + c;
  x1 = b + d;
  x2 = b - d;
  x3 = a - c;
}

inline void hadamard_butterfly_v(i32x4& x0, i32x4& x1, i32x4& x2, i32x4& x3) {
  const i32x4 s0 = x0 + x2, s1 = x1 + x3;
  const i32x4 d0 = x0 - x2, d1 = x1 - x3;
  x0 = s0 + s1;
  x1 = d0 + d1;
  x2 = s0 - s1;
  x3 = d0 - d1;
}

}  // namespace

void dct4x4_simd(const int in[16], int out[16]) {
  transform_2d_simd(in, out, forward_butterfly_v);
}

void idct4x4_simd(const int in[16], int out[16]) {
  transform_2d_simd(in, out, inverse_butterfly_v);
}

void hadamard4x4_simd(const int in[16], int out[16]) {
  transform_2d_simd(in, out, hadamard_butterfly_v);
}

#else  // !RISPP_SIMD

void dct4x4_simd(const int in[16], int out[16]) { dct4x4_scalar(in, out); }
void idct4x4_simd(const int in[16], int out[16]) { idct4x4_scalar(in, out); }
void hadamard4x4_simd(const int in[16], int out[16]) { hadamard4x4_scalar(in, out); }

#endif  // RISPP_SIMD

void dct4x4(const int in[16], int out[16]) {
  if (active_kernel_backend() == KernelBackend::kSimd)
    dct4x4_simd(in, out);
  else
    dct4x4_scalar(in, out);
}

void idct4x4(const int in[16], int out[16]) {
  if (active_kernel_backend() == KernelBackend::kSimd)
    idct4x4_simd(in, out);
  else
    idct4x4_scalar(in, out);
}

void hadamard4x4(const int in[16], int out[16]) {
  if (active_kernel_backend() == KernelBackend::kSimd)
    hadamard4x4_simd(in, out);
  else
    hadamard4x4_scalar(in, out);
}

void hadamard2x2(const int in[4], int out[4]) {
  out[0] = in[0] + in[1] + in[2] + in[3];
  out[1] = in[0] - in[1] + in[2] - in[3];
  out[2] = in[0] + in[1] - in[2] - in[3];
  out[3] = in[0] - in[1] - in[2] + in[3];
}

}  // namespace rispp::h264
