#include "h264/transform.h"

namespace rispp::h264 {
namespace {

// H.264 forward core transform matrix C (applied as C * X * C^T):
//   | 1  1  1  1 |
//   | 2  1 -1 -2 |
//   | 1 -1 -1  1 |
//   | 1 -2  2 -1 |
inline void forward_butterfly(const int x[4], int y[4]) {
  const int s0 = x[0] + x[3], s1 = x[1] + x[2];
  const int d0 = x[0] - x[3], d1 = x[1] - x[2];
  y[0] = s0 + s1;
  y[1] = 2 * d0 + d1;
  y[2] = s0 - s1;
  y[3] = d0 - 2 * d1;
}

// Exact integer inverse. C's rows are orthogonal with squared norms
// (4,10,4,10), so B = C^T * diag(5,2,5,2) satisfies B*C = 20*I — applied on
// rows and columns, idct4x4(dct4x4(x)) == 400 * x exactly. (Real codecs fold
// the scaling into the dequantization tables; our pipeline divides by 400
// with rounding after dequant, see quant.h.)
inline void inverse_butterfly(const int x[4], int y[4]) {
  const int a = 5 * (x[0] + x[2]);
  const int b = 5 * (x[0] - x[2]);
  const int c = 4 * x[1] + 2 * x[3];
  const int d = 2 * x[1] - 4 * x[3];
  y[0] = a + c;
  y[1] = b + d;
  y[2] = b - d;
  y[3] = a - c;
}

template <typename RowFn>
void transform_2d(const int in[16], int out[16], RowFn fn) {
  int tmp[16];
  // Rows.
  for (int r = 0; r < 4; ++r) fn(&in[4 * r], &tmp[4 * r]);
  // Columns.
  for (int c = 0; c < 4; ++c) {
    int col[4] = {tmp[c], tmp[4 + c], tmp[8 + c], tmp[12 + c]};
    int res[4];
    fn(col, res);
    out[c] = res[0];
    out[4 + c] = res[1];
    out[8 + c] = res[2];
    out[12 + c] = res[3];
  }
}

}  // namespace

void dct4x4(const int in[16], int out[16]) {
  transform_2d(in, out, [](const int* x, int* y) { forward_butterfly(x, y); });
}

void idct4x4(const int in[16], int out[16]) {
  transform_2d(in, out, [](const int* x, int* y) { inverse_butterfly(x, y); });
}

void hadamard4x4(const int in[16], int out[16]) {
  transform_2d(in, out, [](const int* x, int* y) {
    const int s0 = x[0] + x[2], s1 = x[1] + x[3];
    const int d0 = x[0] - x[2], d1 = x[1] - x[3];
    y[0] = s0 + s1;
    y[1] = d0 + d1;
    y[2] = s0 - s1;
    y[3] = d0 - d1;
  });
}

void hadamard2x2(const int in[4], int out[4]) {
  out[0] = in[0] + in[1] + in[2] + in[3];
  out[1] = in[0] - in[1] + in[2] - in[3];
  out[2] = in[0] + in[1] - in[2] - in[3];
  out[3] = in[0] - in[1] - in[2] + in[3];
}

}  // namespace rispp::h264
