// Scalar quantization of transform coefficients (the QuantCore atom's
// functional counterpart). Simplified H.264 model: one step size per QP,
// doubling every 6 QP steps, dead-zone rounding.
#pragma once

namespace rispp::h264 {

/// Quantization step for 0 <= qp <= 51.
int quant_step(int qp);

/// Dead-zone quantizer: sign(v) * floor((|v| + step/3) / step).
int quantize(int coeff, int qp);

/// Reconstruction: level * step.
int dequantize(int level, int qp);

/// Full round trip for a 4x4 coefficient block (in place).
void quantize_block(int coeffs[16], int levels[16], int qp);
void dequantize_block(const int levels[16], int coeffs[16], int qp);

/// Divides by the idct4x4 scale factor (400) with symmetric rounding —
/// applied to reconstructed residuals.
int descale_idct(int v);

}  // namespace rispp::h264
