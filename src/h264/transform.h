// H.264 4x4 integer transforms — the functional counterparts of the (I)DCT,
// (I)HT 4x4 and (I)HT 2x2 Special Instructions.
#pragma once

#include <cstdint>

namespace rispp::h264 {

/// Forward 4x4 integer DCT approximation (H.264 core transform).
/// in/out are row-major 4x4.
void dct4x4(const int in[16], int out[16]);

/// Inverse of dct4x4 up to scaling: idct4x4(dct4x4(x)) == 400*x componentwise
/// (real codecs fold the scaling into dequantization; our pipeline divides
/// explicitly with rounding, see quant.h).
void idct4x4(const int in[16], int out[16]);

/// 4x4 Hadamard transform of luma DC coefficients (Intra16x16 path).
/// Involutory up to scale: hadamard4x4 twice == 16*x.
void hadamard4x4(const int in[16], int out[16]);

/// 2x2 Hadamard of chroma DC coefficients; twice == 4*x.
void hadamard2x2(const int in[4], int out[4]);

}  // namespace rispp::h264
