// H.264 4x4 integer transforms — the functional counterparts of the (I)DCT,
// (I)HT 4x4 and (I)HT 2x2 Special Instructions.
//
// dct4x4/idct4x4/hadamard4x4 dispatch on the active kernel backend
// (kernels.h); the SIMD versions run the same exact-integer butterflies on
// transposed row vectors and are bit-identical to the scalar reference.
#pragma once

#include <cstdint>

namespace rispp::h264 {

/// Forward 4x4 integer DCT approximation (H.264 core transform).
/// in/out are row-major 4x4.
void dct4x4(const int in[16], int out[16]);

/// Inverse of dct4x4 up to scaling: idct4x4(dct4x4(x)) == 400*x componentwise
/// (real codecs fold the scaling into dequantization; our pipeline divides
/// explicitly with rounding, see quant.h).
void idct4x4(const int in[16], int out[16]);

/// 4x4 Hadamard transform of luma DC coefficients (Intra16x16 path).
/// Involutory up to scale: hadamard4x4 twice == 16*x.
void hadamard4x4(const int in[16], int out[16]);

/// 2x2 Hadamard of chroma DC coefficients; twice == 4*x.
void hadamard2x2(const int in[4], int out[4]);

// Backend-pinned variants (equivalence tests and micro benches).
void dct4x4_scalar(const int in[16], int out[16]);
void dct4x4_simd(const int in[16], int out[16]);
void idct4x4_scalar(const int in[16], int out[16]);
void idct4x4_simd(const int in[16], int out[16]);
void hadamard4x4_scalar(const int in[16], int out[16]);
void hadamard4x4_simd(const int in[16], int out[16]);

}  // namespace rispp::h264
