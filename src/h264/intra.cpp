#include "h264/intra.h"

namespace rispp::h264 {
namespace {
void fill(Pixel pred[16 * 16], Pixel value) {
  for (int i = 0; i < 16 * 16; ++i) pred[i] = value;
}
}  // namespace

void ipred_hdc_16x16(const Plane& recon, int mb_px_x, int mb_px_y, Pixel pred[16 * 16]) {
  if (mb_px_x == 0) {
    fill(pred, 128);
    return;
  }
  int sum = 0;
  for (int y = 0; y < 16; ++y) sum += recon.at(mb_px_x - 1, mb_px_y + y);
  fill(pred, static_cast<Pixel>((sum + 8) / 16));
}

void ipred_vdc_16x16(const Plane& recon, int mb_px_x, int mb_px_y, Pixel pred[16 * 16]) {
  if (mb_px_y == 0) {
    fill(pred, 128);
    return;
  }
  int sum = 0;
  for (int x = 0; x < 16; ++x) sum += recon.at(mb_px_x + x, mb_px_y - 1);
  fill(pred, static_cast<Pixel>((sum + 8) / 16));
}

}  // namespace rispp::h264
