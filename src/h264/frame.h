// Pixel planes and frames for the H.264-subset encoder workload.
#pragma once

#include <cstdint>
#include <vector>

#include "base/check.h"

namespace rispp::h264 {

using Pixel = std::uint8_t;

inline constexpr int kMbSize = 16;

/// CIF, the paper's evaluation resolution.
inline constexpr int kCifWidth = 352;
inline constexpr int kCifHeight = 288;

class Plane {
 public:
  Plane() = default;
  Plane(int width, int height, Pixel fill = 0)
      : width_(width), height_(height), data_(static_cast<std::size_t>(width) * height, fill) {
    RISPP_CHECK(width > 0 && height > 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }

  Pixel at(int x, int y) const { return data_[index(x, y)]; }
  Pixel& at(int x, int y) { return data_[index(x, y)]; }

  /// Edge-clamped access — motion vectors and filter taps may reach outside
  /// the frame; H.264 pads by edge replication.
  Pixel at_clamped(int x, int y) const {
    x = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    y = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return data_[index(x, y)];
  }

  const Pixel* row(int y) const { return data_.data() + static_cast<std::size_t>(y) * width_; }
  Pixel* row(int y) { return data_.data() + static_cast<std::size_t>(y) * width_; }

 private:
  std::size_t index(int x, int y) const {
    RISPP_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return static_cast<std::size_t>(y) * width_ + x;
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<Pixel> data_;
};

/// 4:2:0 frame.
struct Frame {
  Plane y, cb, cr;

  Frame() = default;
  Frame(int width, int height)
      : y(width, height), cb(width / 2, height / 2), cr(width / 2, height / 2) {}

  int width() const { return y.width(); }
  int height() const { return y.height(); }
  int mbs_x() const { return y.width() / kMbSize; }
  int mbs_y() const { return y.height() / kMbSize; }
  int mb_count() const { return mbs_x() * mbs_y(); }
};

/// Luma PSNR between two frames (encoder quality sanity checks).
double psnr_y(const Frame& a, const Frame& b);

inline Pixel clip_pixel(int v) {
  return static_cast<Pixel>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

}  // namespace rispp::h264
