#include "h264/encoder.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "base/check.h"
#include "base/parallel.h"
#include "h264/intra.h"
#include "h264/kernels.h"
#include "h264/quant.h"
#include "h264/transform.h"

namespace rispp::h264 {

Encoder::Encoder(const EncoderConfig& config, int width, int height, const H264SiIds& ids)
    : config_(config), ids_(ids), recon_(width, height), ref_(width, height) {
  RISPP_CHECK(width % kMbSize == 0 && height % kMbSize == 0);
  const int mbs = (width / kMbSize) * (height / kMbSize);
  mv_field_.resize(mbs);
  coded_mv_.resize(mbs);
  decisions_.resize(mbs);
}

int Encoder::code_mb_luma(const Frame& input, int px, int py, const Pixel pred[16 * 16],
                          BitWriter& bits) {
  int activity = 0;
  for (int by = 0; by < 16; by += 4) {
    for (int bx = 0; bx < 16; bx += 4) {
      int resid[16], coeff[16], level[16], deq[16], rec[16];
      for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
          resid[y * 4 + x] = static_cast<int>(input.y.at(px + bx + x, py + by + y)) -
                             static_cast<int>(pred[(by + y) * 16 + bx + x]);
      dct4x4(resid, coeff);
      quantize_block(coeff, level, config_.qp);
      encode_residual_block(bits, level);
      for (int i = 0; i < 16; ++i) activity += std::abs(level[i]);
      dequantize_block(level, deq, config_.qp);
      idct4x4(deq, rec);
      for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x) {
          const int value = static_cast<int>(pred[(by + y) * 16 + bx + x]) +
                            descale_idct(rec[y * 4 + x]);
          recon_.y.at(px + bx + x, py + by + y) = clip_pixel(value);
        }
    }
  }
  return activity;
}

void Encoder::code_mb_chroma(const Frame& input, int px, int py) {
  // Chroma model: DC-only coding per 4x4 (the HT 2x2 path dominates); AC is
  // carried through unquantized — enough realism for the workload while
  // keeping chroma out of the critical calibration path.
  const int cx = px / 2, cy = py / 2;
  for (const Plane* src : {&input.cb, &input.cr}) {
    Plane& dst = src == &input.cb ? recon_.cb : recon_.cr;
    int dc[4];
    int k = 0;
    for (int by = 0; by < 8; by += 4)
      for (int bx = 0; bx < 8; bx += 4) {
        int sum = 0;
        for (int y = 0; y < 4; ++y)
          for (int x = 0; x < 4; ++x) sum += src->at(cx + bx + x, cy + by + y);
        dc[k++] = sum / 16;
      }
    int ht[4];
    hadamard2x2(dc, ht);
    for (int i = 0; i < 4; ++i) ht[i] = dequantize(quantize(ht[i], config_.qp), config_.qp);
    int rec_dc[4];
    hadamard2x2(ht, rec_dc);  // involution up to factor 4
    k = 0;
    for (int by = 0; by < 8; by += 4)
      for (int bx = 0; bx < 8; bx += 4) {
        const int mean = rec_dc[k] / 4;
        ++k;
        for (int y = 0; y < 4; ++y)
          for (int x = 0; x < 4; ++x) {
            const int ac = static_cast<int>(src->at(cx + bx + x, cy + by + y)) -
                           static_cast<int>(src->at(cx + bx, cy + by));
            dst.at(cx + bx + x, cy + by + y) = clip_pixel(mean + ac);
          }
      }
  }
}

FrameResult Encoder::encode_frame(const Frame& input, FrameSiTrace* trace) {
  RISPP_CHECK(input.width() == recon_.width() && input.height() == recon_.height());
  const bool intra_frame = frame_ == 0;
  const int mbs_x = input.mbs_x();
  const int mbs_y = input.mbs_y();
  FrameResult result;
  frame_bits_ = BitWriter();

  ThreadPool& pool = pool_ != nullptr ? *pool_ : ThreadPool::global();

  // Per-row wavefront progress: <counter>[r] is the number of MBs of row r
  // a phase has completed. release on store / acquire on load publishes the
  // row's mv_field_/recon_ writes to the row below.
  const auto make_progress = [&] {
    std::unique_ptr<std::atomic<int>[]> p(new std::atomic<int>[mbs_y]);
    for (int i = 0; i < mbs_y; ++i) p[i].store(0, std::memory_order_relaxed);
    return p;
  };

  // ---- Motion Estimation hot spot (wavefront over MB rows) --------------
  inter_cost_scratch_.assign(mv_field_.size(), 0);
  if (!intra_frame) {
    std::vector<std::vector<SiId>> row_me(trace != nullptr ? mbs_y : 0);
    const auto me_done = make_progress();
    pool.parallel_for(static_cast<std::size_t>(mbs_y), [&](std::size_t row) {
      const int my = static_cast<int>(row);
      KernelHook hook;
      if (trace != nullptr) {
        std::vector<SiId>* events = &row_me[my];
        const H264SiIds ids = ids_;
        hook = [events, ids](bool is_satd) { events->push_back(is_satd ? ids.satd : ids.sad); };
      }
      // The row's first MB predicts from the MB directly above, so one
      // finished MB of row my-1 unblocks the whole row.
      if (my > 0)
        while (me_done[my - 1].load(std::memory_order_acquire) < 1) std::this_thread::yield();
      for (int mx = 0; mx < mbs_x; ++mx) {
        const int mb = my * mbs_x + mx;
        // MV prediction: left neighbour, else top, else zero.
        MotionVector pred;
        if (mx > 0) pred = mv_field_[mb - 1];
        else if (my > 0) pred = mv_field_[mb - mbs_x];
        const MotionSearchResult sr = motion_search_16x16(
            input.y, ref_.y, mx * kMbSize, my * kMbSize, pred, config_.search, hook);
        mv_field_[mb] = sr.mv;
        decisions_[mb].mv = sr.mv;
        decisions_[mb].intra = false;
        inter_cost_scratch_[mb] = sr.satd;  // EE mode decision input
        me_done[my].store(mx + 1, std::memory_order_release);
      }
    });
    if (trace != nullptr)
      for (const auto& row : row_me) trace->me.insert(trace->me.end(), row.begin(), row.end());
  }

  // ---- Encoding Engine hot spot (wavefront, one-MB lag per row) ---------
  {
    std::vector<std::vector<SiId>> row_ee(trace != nullptr ? mbs_y : 0);
    std::vector<BitWriter> row_bits(mbs_y);
    std::vector<int> row_intra(mbs_y, 0);
    std::vector<int> row_inter(mbs_y, 0);
    const auto ee_done = make_progress();
    pool.parallel_for(static_cast<std::size_t>(mbs_y), [&](std::size_t row) {
      const int my = static_cast<int>(row);
      BitWriter& bits = row_bits[my];
      auto record = [&](SiId si) {
        if (trace != nullptr) row_ee[my].push_back(si);
      };
      for (int mx = 0; mx < mbs_x; ++mx) {
        // IPred VDC and the decodable MV predictor read the MB directly
        // above: trail row my-1 by one MB.
        if (my > 0)
          while (ee_done[my - 1].load(std::memory_order_acquire) < mx + 1)
            std::this_thread::yield();
        const int mb = my * mbs_x + mx;
        const int px = mx * kMbSize, py = my * kMbSize;

        // Intra candidates: horizontal and vertical DC prediction from the
        // in-progress reconstruction.
        Pixel pred_h[16 * 16], pred_v[16 * 16];
        ipred_hdc_16x16(recon_.y, px, py, pred_h);
        record(ids_.ipred_hdc);
        ipred_vdc_16x16(recon_.y, px, py, pred_v);
        record(ids_.ipred_vdc);
        const std::uint32_t cost_h = satd_16x16_pred(input.y, px, py, pred_h);
        const std::uint32_t cost_v = satd_16x16_pred(input.y, px, py, pred_v);
        const Pixel* intra_pred = cost_h <= cost_v ? pred_h : pred_v;
        const std::uint32_t intra_cost = cost_h <= cost_v ? cost_h : cost_v;

        bool use_intra = intra_frame;
        if (!intra_frame) {
          const std::uint32_t inter_cost = inter_cost_scratch_[mb];
          use_intra =
              intra_cost * 8 < inter_cost * static_cast<std::uint32_t>(config_.intra_bias_num);
        }
        decisions_[mb].intra = use_intra;
        coded_mv_[mb] = use_intra ? MotionVector{} : decisions_[mb].mv;

        // MB header: mode flag plus, for inter MBs, the differential MV.
        bits.put_bit(use_intra);
        Pixel prediction[16 * 16];
        if (use_intra) {
          bits.put_bit(cost_h <= cost_v);  // HDC vs VDC choice
          for (int i = 0; i < 16 * 16; ++i) prediction[i] = intra_pred[i];
          ++row_intra[my];
        } else {
          // The MV predictor must be decodable: left (else top) neighbour's
          // *coded* MV, which is zero for intra MBs.
          MotionVector pred_mv;
          if (mx > 0) pred_mv = coded_mv_[mb - 1];
          else if (my > 0) pred_mv = coded_mv_[mb - mbs_x];
          write_se(bits, decisions_[mb].mv.x - pred_mv.x);
          write_se(bits, decisions_[mb].mv.y - pred_mv.y);
          motion_compensate_16x16(ref_.y, px, py, decisions_[mb].mv, prediction);
          // The MC 4 SI covers one 8x8 quarter (Table 1 names it after its
          // 4x4 sub-block granularity): four executions per inter MB.
          for (int q = 0; q < 4; ++q) record(ids_.mc);
          ++row_inter[my];
        }

        const int activity = code_mb_luma(input, px, py, prediction, bits);
        // (I)DCT runs per 8x8 region: four luma quarters plus one chroma pass.
        for (int q = 0; q < 5; ++q) record(ids_.dct);

        if (use_intra) {
          // Intra16x16: extra Hadamard pass over the luma DC coefficients.
          record(ids_.ht4x4);
        }
        code_mb_chroma(input, px, py);
        record(ids_.ht2x2);  // chroma DC Hadamard
        (void)activity;
        ee_done[my].store(mx + 1, std::memory_order_release);
      }
    });
    // Fold the rows back in raster order: the payload, MB counters and SI
    // events come out identical to the serial encode.
    for (int my = 0; my < mbs_y; ++my) {
      frame_bits_.append(row_bits[my]);
      result.intra_mbs += row_intra[my];
      result.inter_mbs += row_inter[my];
    }
    if (trace != nullptr)
      for (const auto& row : row_ee) trace->ee.insert(trace->ee.end(), row.begin(), row.end());
  }

  // ---- Loop Filter hot spot (wavefront, two-MB lag per row) -------------
  {
    std::vector<std::vector<SiId>> row_lf(trace != nullptr ? mbs_y : 0);
    const auto lf_done = make_progress();
    pool.parallel_for(static_cast<std::size_t>(mbs_y), [&](std::size_t row) {
      const int my = static_cast<int>(row);
      for (int mx = 0; mx < mbs_x; ++mx) {
        // The horizontal filter reads three rows up — pixels the row above
        // finishes writing with MB (mx+1, my-1)'s vertical filter — and
        // writes two rows up, pixels that same MB's vertical filter reads:
        // both the true and the anti dependency are satisfied once the row
        // above is two MBs ahead.
        if (my > 0) {
          const int need = std::min(mx + 2, mbs_x);
          while (lf_done[my - 1].load(std::memory_order_acquire) < need)
            std::this_thread::yield();
        }
        const int mb = my * mbs_x + mx;
        const int px = mx * kMbSize, py = my * kMbSize;

        auto strong_edge_v = [&]() {
          if (mx == 0) return false;
          if (decisions_[mb].intra || decisions_[mb - 1].intra) return true;
          // Blockiness: mean gradient across the edge.
          int grad = 0;
          for (int y = 0; y < 16; ++y)
            grad += std::abs(recon_.y.at(px, py + y) - recon_.y.at(px - 1, py + y));
          return grad / 16 >= config_.strong_edge_threshold;
        };
        auto strong_edge_h = [&]() {
          if (my == 0) return false;
          if (decisions_[mb].intra || decisions_[mb - mbs_x].intra) return true;
          int grad = 0;
          for (int x = 0; x < 16; ++x)
            grad += std::abs(recon_.y.at(px + x, py) - recon_.y.at(px + x, py - 1));
          return grad / 16 >= config_.strong_edge_threshold;
        };

        if (strong_edge_v()) {
          deblock_bs4_vertical(recon_.y, px, py, config_.deblock);
          if (trace != nullptr) row_lf[my].push_back(ids_.lf_bs4);
        }
        if (strong_edge_h()) {
          deblock_bs4_horizontal(recon_.y, px, py, config_.deblock);
          if (trace != nullptr) row_lf[my].push_back(ids_.lf_bs4);
        }
        lf_done[my].store(mx + 1, std::memory_order_release);
      }
    });
    // Raster-order fold keeps the LF trace identical to the serial filter.
    if (trace != nullptr)
      for (const auto& row : row_lf) trace->lf.insert(trace->lf.end(), row.begin(), row.end());
  }

  frame_bits_.align();
  result.bits = frame_bits_.bit_count();
  result.psnr = psnr_y(input, recon_);
  ref_ = recon_;
  ++frame_;
  return result;
}

}  // namespace rispp::h264
