// In-loop deblocking, boundary-strength-4 path — the LF_BS4 Special
// Instruction. BS4 (strong filtering) applies on macroblock edges where at
// least one side is intra coded; the per-pixel-line activity condition
// (|p0-q0| < alpha etc.) gates the actual filtering.
#pragma once

#include "h264/frame.h"

namespace rispp::h264 {

struct DeblockThresholds {
  int alpha = 40;  // edge activity threshold
  int beta = 12;   // side flatness threshold
};

/// Strong-filters the vertical MB edge at x = edge_px_x (columns left:
/// p2 p1 p0 | q0 q1 q2) for 16 rows starting at row_px_y. Returns how many
/// pixel lines were actually filtered (the condition held).
int deblock_bs4_vertical(Plane& plane, int edge_px_x, int row_px_y,
                         const DeblockThresholds& thresholds);

/// Same for the horizontal MB edge at y = edge_px_y.
int deblock_bs4_horizontal(Plane& plane, int col_px_x, int edge_px_y,
                           const DeblockThresholds& thresholds);

}  // namespace rispp::h264
