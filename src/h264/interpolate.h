// Sub-pel interpolation — the functional counterpart of the MC Special
// Instruction of Figure 3: BytePack gathers the source pixels, PointFilter
// is the 6-tap half-pel filter (1,-5,20,20,-5,1)/32, Clip3 saturates to
// [0,255].
#pragma once

#include "h264/frame.h"

namespace rispp::h264 {

/// One application of the H.264 6-tap filter to six neighbouring samples
/// (unnormalized; callers add 16 and shift by 5).
inline int point_filter_6tap(int a, int b, int c, int d, int e, int f) {
  return a - 5 * b + 20 * c + 20 * d - 5 * e + f;
}

/// Motion vector in half-pel units.
struct MotionVector {
  int x = 0;  // half-pels
  int y = 0;
  bool operator==(const MotionVector&) const = default;

  bool is_half_pel() const { return (x & 1) != 0 || (y & 1) != 0; }
};

/// Motion-compensates a 16x16 luma block from `ref` at full- or half-pel
/// position (mb_x*16*2 + mv.x, ...) into `dst` (row-major 16x16).
/// Edge-clamped like the SAD kernels. Dispatches on the active kernel
/// backend (kernels.h); the SIMD path is bit-exact and falls back to scalar
/// whenever the filter footprint could leave the frame.
void motion_compensate_16x16(const Plane& ref, int mb_px_x, int mb_px_y,
                             const MotionVector& mv, Pixel dst[16 * 16]);

// Backend-pinned variants (equivalence tests and micro benches).
void motion_compensate_16x16_scalar(const Plane& ref, int mb_px_x, int mb_px_y,
                                    const MotionVector& mv, Pixel dst[16 * 16]);
void motion_compensate_16x16_simd(const Plane& ref, int mb_px_x, int mb_px_y,
                                  const MotionVector& mv, Pixel dst[16 * 16]);

/// Half-pel interpolation at a single position (tests / reference).
Pixel interpolate_half_pel(const Plane& ref, int full_x, int full_y, bool half_x, bool half_y);

}  // namespace rispp::h264
