#include "h264/synthetic_video.h"

#include <cmath>

namespace rispp::h264 {

SyntheticVideo::SyntheticVideo(const VideoConfig& config)
    : config_(config), rng_(config.seed) {
  reseed_scene();
}

void SyntheticVideo::reseed_scene() {
  objects_.clear();
  for (int i = 0; i < config_.object_count; ++i) {
    Object o;
    o.w = 24 + static_cast<int>(rng_.bounded(64));
    o.h = 24 + static_cast<int>(rng_.bounded(48));
    o.x = static_cast<double>(rng_.bounded(static_cast<std::uint64_t>(config_.width - o.w)));
    o.y = static_cast<double>(rng_.bounded(static_cast<std::uint64_t>(config_.height - o.h)));
    o.phase = rng_.uniform01() * 6.28318;
    o.speed = 0.5 + rng_.uniform01() * 3.0;
    o.texture = static_cast<int>(rng_.bounded(3));
    o.luma = 60 + static_cast<int>(rng_.bounded(150));
    objects_.push_back(o);
  }
}

Pixel SyntheticVideo::background(int x, int y) const {
  // Slow diagonal gradient with a coarse plaid so flat areas still have
  // texture for SAD/SATD to chew on.
  const int g = 40 + ((x + 2 * y) / 8) % 96 + (((x / 32) + (y / 32)) % 2) * 10;
  return clip_pixel(g);
}

Pixel SyntheticVideo::object_pixel(const Object& o, int x, int y) const {
  const int lx = x - static_cast<int>(o.x);
  const int ly = y - static_cast<int>(o.y);
  switch (o.texture) {
    case 0:  // stripes
      return clip_pixel(o.luma + ((lx / 3) % 2) * 40 - 20);
    case 1:  // checker
      return clip_pixel(o.luma + (((lx / 4) + (ly / 4)) % 2) * 36 - 18);
    default:  // radial-ish ramp
      return clip_pixel(o.luma + ((lx * lx + ly * ly) / 64) % 48 - 24);
  }
}

Frame SyntheticVideo::next() {
  if (config_.cut_period > 0 && frame_ > 0 && frame_ % config_.cut_period == 0) {
    ++scene_;
    reseed_scene();
  }

  // Global motion intensity varies sinusoidally (calm <-> busy phases) with
  // a high-motion burst in the middle third of each scene.
  const double t = static_cast<double>(frame_);
  const double intensity = 1.0 + 0.8 * std::sin(t * 0.10) +
                           ((frame_ % 50) > 30 ? 1.2 : 0.0);

  // Move objects.
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    Object& o = objects_[i];
    const double angle = o.phase + t * 0.07 + static_cast<double>(i);
    o.x += std::cos(angle) * o.speed * intensity;
    o.y += std::sin(angle * 0.8) * o.speed * intensity * 0.6;
    // Wrap around softly.
    if (o.x < -o.w) o.x = config_.width;
    if (o.x > config_.width) o.x = -o.w + 1;
    if (o.y < -o.h) o.y = config_.height;
    if (o.y > config_.height) o.y = -o.h + 1;
  }

  Frame frame(config_.width, config_.height);
  for (int y = 0; y < config_.height; ++y) {
    Pixel* row = frame.y.row(y);
    for (int x = 0; x < config_.width; ++x) {
      Pixel p = background(x, y);
      for (const Object& o : objects_) {
        if (x >= static_cast<int>(o.x) && x < static_cast<int>(o.x) + o.w &&
            y >= static_cast<int>(o.y) && y < static_cast<int>(o.y) + o.h) {
          p = object_pixel(o, x, y);
        }
      }
      const int noisy =
          static_cast<int>(p) + static_cast<int>(rng_.gaussian(0.0, config_.noise_stddev));
      row[x] = clip_pixel(noisy);
    }
  }
  // Chroma: cheap function of luma position (the workload model only uses
  // chroma for DC transforms, not for motion search).
  for (int y = 0; y < config_.height / 2; ++y) {
    Pixel* cb = frame.cb.row(y);
    Pixel* cr = frame.cr.row(y);
    for (int x = 0; x < config_.width / 2; ++x) {
      cb[x] = clip_pixel(128 + (frame.y.at(2 * x, 2 * y) - 128) / 4);
      cr[x] = clip_pixel(128 - (frame.y.at(2 * x, 2 * y) - 128) / 6);
    }
  }
  ++frame_;
  return frame;
}

}  // namespace rispp::h264
