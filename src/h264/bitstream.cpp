#include "h264/bitstream.h"

#include "base/check.h"

namespace rispp::h264 {

void BitWriter::put_bits(std::uint32_t value, int count) {
  RISPP_CHECK(count >= 0 && count <= 32);
  for (int i = count - 1; i >= 0; --i) {
    const bool bit = (value >> i) & 1u;
    current_ = static_cast<std::uint8_t>((current_ << 1) | (bit ? 1 : 0));
    if (++filled_ == 8) {
      bytes_.push_back(current_);
      current_ = 0;
      filled_ = 0;
    }
  }
  bit_count_ += static_cast<std::size_t>(count);
}

void BitWriter::align() {
  while (filled_ != 0) put_bit(false);
}

void BitWriter::append(const BitWriter& other) {
  for (const std::uint8_t byte : other.bytes_) put_bits(byte, 8);
  // current_ keeps its filled_ bits in the low positions, oldest bit
  // highest — exactly put_bits' (value, count) contract.
  if (other.filled_ > 0) put_bits(other.current_, other.filled_);
}

std::vector<std::uint8_t> BitWriter::bytes() const {
  std::vector<std::uint8_t> out = bytes_;
  if (filled_ != 0)
    out.push_back(static_cast<std::uint8_t>(current_ << (8 - filled_)));
  return out;
}

std::uint32_t BitReader::get_bits(int count) {
  RISPP_CHECK(count >= 0 && count <= 32);
  std::uint32_t value = 0;
  for (int i = 0; i < count; ++i) {
    RISPP_CHECK_MSG(position_ < bytes_.size() * 8, "bitstream exhausted");
    const std::size_t byte = position_ / 8;
    const int bit = 7 - static_cast<int>(position_ % 8);
    value = (value << 1) | ((bytes_[byte] >> bit) & 1u);
    ++position_;
  }
  return value;
}

}  // namespace rispp::h264
