// Entropy coding of quantized residual blocks — a CAVLC-flavoured run-level
// coder over Exp-Golomb codes. This is the back end that turns the
// encoder's levels into actual bits, so the workload reports a real bitrate
// and the reconstruction loop is provably inverible end-to-end
// (encode -> serialize -> parse -> decode round-trips exactly).
#pragma once

#include <cstdint>

#include "h264/bitstream.h"

namespace rispp::h264 {

/// Unsigned Exp-Golomb (ue(v)) as in H.264 §9.1.
void write_ue(BitWriter& writer, std::uint32_t value);
std::uint32_t read_ue(BitReader& reader);

/// Signed Exp-Golomb (se(v)): 0,1,-1,2,-2,... mapping.
void write_se(BitWriter& writer, std::int32_t value);
std::int32_t read_se(BitReader& reader);

/// Encodes one 4x4 block of quantized levels (row-major) in zig-zag
/// (run, level) form: ue(#nonzero), then per coefficient ue(run-before) and
/// se(level). Returns the number of bits written.
std::size_t encode_residual_block(BitWriter& writer, const int levels[16]);

/// Exact inverse of encode_residual_block.
void decode_residual_block(BitReader& reader, int levels[16]);

/// The 4x4 zig-zag scan order (exposed for tests).
extern const int kZigZag4x4[16];

}  // namespace rispp::h264
