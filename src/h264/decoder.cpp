#include "h264/decoder.h"

#include <cstdlib>
#include <vector>

#include "base/check.h"
#include "h264/deblock.h"
#include "h264/entropy.h"
#include "h264/interpolate.h"
#include "h264/intra.h"
#include "h264/quant.h"
#include "h264/transform.h"

namespace rispp::h264 {

DecodedFrame decode_frame_luma(BitReader& reader, const Plane& ref_luma,
                               const EncoderConfig& config) {
  const int width = ref_luma.width();
  const int height = ref_luma.height();
  const int qp = config.qp;
  RISPP_CHECK(width % kMbSize == 0 && height % kMbSize == 0);
  DecodedFrame out;
  out.luma = Plane(width, height);
  const int mbs_x = width / kMbSize;
  const int mbs_y = height / kMbSize;
  std::vector<MotionVector> coded_mv(static_cast<std::size_t>(mbs_x) * mbs_y);
  std::vector<bool> intra_mb(static_cast<std::size_t>(mbs_x) * mbs_y, false);

  for (int my = 0; my < mbs_y; ++my) {
    for (int mx = 0; mx < mbs_x; ++mx) {
      const int mb = my * mbs_x + mx;
      const int px = mx * kMbSize, py = my * kMbSize;

      Pixel prediction[16 * 16];
      const bool intra = reader.get_bit();
      if (intra) {
        const bool horizontal = reader.get_bit();
        if (horizontal) ipred_hdc_16x16(out.luma, px, py, prediction);
        else ipred_vdc_16x16(out.luma, px, py, prediction);
        coded_mv[mb] = MotionVector{};
        intra_mb[mb] = true;
        ++out.intra_mbs;
      } else {
        MotionVector pred_mv;
        if (mx > 0) pred_mv = coded_mv[mb - 1];
        else if (my > 0) pred_mv = coded_mv[mb - mbs_x];
        MotionVector mv;
        mv.x = pred_mv.x + read_se(reader);
        mv.y = pred_mv.y + read_se(reader);
        motion_compensate_16x16(ref_luma, px, py, mv, prediction);
        coded_mv[mb] = mv;
        ++out.inter_mbs;
      }

      // Residual blocks in the encoder's scan order.
      for (int by = 0; by < 16; by += 4) {
        for (int bx = 0; bx < 16; bx += 4) {
          int levels[16], deq[16], rec[16];
          decode_residual_block(reader, levels);
          dequantize_block(levels, deq, qp);
          idct4x4(deq, rec);
          for (int y = 0; y < 4; ++y)
            for (int x = 0; x < 4; ++x) {
              const int value = static_cast<int>(prediction[(by + y) * 16 + bx + x]) +
                                descale_idct(rec[y * 4 + x]);
              out.luma.at(px + bx + x, py + by + y) = clip_pixel(value);
            }
        }
      }
    }
  }

  // In-loop deblocking, mirroring the encoder's LF pass exactly: the strong
  // edge conditions depend only on decoded data (intra flags + gradients).
  for (int my = 0; my < mbs_y; ++my) {
    for (int mx = 0; mx < mbs_x; ++mx) {
      const int mb = my * mbs_x + mx;
      const int px = mx * kMbSize, py = my * kMbSize;
      auto strong_edge_v = [&]() {
        if (mx == 0) return false;
        if (intra_mb[mb] || intra_mb[mb - 1]) return true;
        int grad = 0;
        for (int y = 0; y < 16; ++y)
          grad += std::abs(out.luma.at(px, py + y) - out.luma.at(px - 1, py + y));
        return grad / 16 >= config.strong_edge_threshold;
      };
      auto strong_edge_h = [&]() {
        if (my == 0) return false;
        if (intra_mb[mb] || intra_mb[mb - mbs_x]) return true;
        int grad = 0;
        for (int x = 0; x < 16; ++x)
          grad += std::abs(out.luma.at(px + x, py) - out.luma.at(px + x, py - 1));
        return grad / 16 >= config.strong_edge_threshold;
      };
      if (strong_edge_v()) deblock_bs4_vertical(out.luma, px, py, config.deblock);
      if (strong_edge_h()) deblock_bs4_horizontal(out.luma, px, py, config.deblock);
    }
  }
  return out;
}

}  // namespace rispp::h264
