// Intra 16x16 DC prediction — the IPred HDC / IPred VDC Special
// Instructions: DC prediction from the left column (horizontal) or the top
// row (vertical) of previously reconstructed neighbours.
#pragma once

#include <cstdint>

#include "h264/frame.h"

namespace rispp::h264 {

/// Fills `pred` (row-major 16x16) with the DC value of the left neighbour
/// column of MB (mb_px_x, mb_px_y) in `recon`; 128 if there is none.
void ipred_hdc_16x16(const Plane& recon, int mb_px_x, int mb_px_y, Pixel pred[16 * 16]);

/// Same from the top neighbour row.
void ipred_vdc_16x16(const Plane& recon, int mb_px_x, int mb_px_y, Pixel pred[16 * 16]);

}  // namespace rispp::h264
