#include "h264/deblock.h"

#include <cstdlib>

namespace rispp::h264 {
namespace {

struct Line {
  int p2, p1, p0, q0, q1, q2;
};

/// H.264 strong (BS4) luma filter for one pixel line; returns the filtered
/// values of p1 p0 q0 q1 (3-tap/5-tap averaging per the standard's
/// simplified form).
bool filter_line(Line& l, const DeblockThresholds& th) {
  if (std::abs(l.p0 - l.q0) >= th.alpha) return false;
  if (std::abs(l.p1 - l.p0) >= th.beta) return false;
  if (std::abs(l.q1 - l.q0) >= th.beta) return false;
  const int p0 = (l.p2 + 2 * l.p1 + 2 * l.p0 + 2 * l.q0 + l.q1 + 4) >> 3;
  const int p1 = (l.p2 + l.p1 + l.p0 + l.q0 + 2) >> 2;
  const int q0 = (l.q2 + 2 * l.q1 + 2 * l.q0 + 2 * l.p0 + l.p1 + 4) >> 3;
  const int q1 = (l.q2 + l.q1 + l.q0 + l.p0 + 2) >> 2;
  l.p0 = p0;
  l.p1 = p1;
  l.q0 = q0;
  l.q1 = q1;
  return true;
}

}  // namespace

int deblock_bs4_vertical(Plane& plane, int edge_px_x, int row_px_y,
                         const DeblockThresholds& th) {
  if (edge_px_x < 3 || edge_px_x + 2 >= plane.width()) return 0;
  int filtered = 0;
  for (int dy = 0; dy < 16 && row_px_y + dy < plane.height(); ++dy) {
    const int y = row_px_y + dy;
    Line l{plane.at(edge_px_x - 3, y), plane.at(edge_px_x - 2, y), plane.at(edge_px_x - 1, y),
           plane.at(edge_px_x, y), plane.at(edge_px_x + 1, y), plane.at(edge_px_x + 2, y)};
    if (!filter_line(l, th)) continue;
    plane.at(edge_px_x - 2, y) = clip_pixel(l.p1);
    plane.at(edge_px_x - 1, y) = clip_pixel(l.p0);
    plane.at(edge_px_x, y) = clip_pixel(l.q0);
    plane.at(edge_px_x + 1, y) = clip_pixel(l.q1);
    ++filtered;
  }
  return filtered;
}

int deblock_bs4_horizontal(Plane& plane, int col_px_x, int edge_px_y,
                           const DeblockThresholds& th) {
  if (edge_px_y < 3 || edge_px_y + 2 >= plane.height()) return 0;
  int filtered = 0;
  for (int dx = 0; dx < 16 && col_px_x + dx < plane.width(); ++dx) {
    const int x = col_px_x + dx;
    Line l{plane.at(x, edge_px_y - 3), plane.at(x, edge_px_y - 2), plane.at(x, edge_px_y - 1),
           plane.at(x, edge_px_y), plane.at(x, edge_px_y + 1), plane.at(x, edge_px_y + 2)};
    if (!filter_line(l, th)) continue;
    plane.at(x, edge_px_y - 2) = clip_pixel(l.p1);
    plane.at(x, edge_px_y - 1) = clip_pixel(l.p0);
    plane.at(x, edge_px_y) = clip_pixel(l.q0);
    plane.at(x, edge_px_y + 1) = clip_pixel(l.q1);
    ++filtered;
  }
  return filtered;
}

}  // namespace rispp::h264
