#include "sched/fsfr.h"

#include "base/metrics.h"

namespace rispp {
namespace sched_detail {

namespace {
/// Smallest-additional-atoms live candidate of `si`; ties broken by lower
/// latency, then molecule id (determinism). `examined` accumulates how many
/// live candidates the scan looked at.
bool pick_smallest(UpgradeState& state, SiId si, SiRef& out, std::uint64_t& examined) {
  const auto live = state.live_candidates_of(si);
  examined += live.size();
  if (live.empty()) return false;
  const SiRef* best = &live.front();
  for (const SiRef& c : live) {
    const unsigned ca = state.additional_atoms(c), ba = state.additional_atoms(*best);
    if (ca < ba || (ca == ba && state.latency(c) < state.latency(*best))) best = &c;
  }
  out = *best;
  return true;
}
}  // namespace

std::uint64_t upgrade_si_fully(UpgradeState& state, const SiRef& selected) {
  std::uint64_t examined = 0;
  while (!state.reached_selected(selected)) {
    SiRef next;
    if (!pick_smallest(state, selected.si, next, examined)) break;  // nothing live left
    state.commit(next);
  }
  return examined;
}

std::uint64_t commit_smallest_step(UpgradeState& state, SiId si) {
  std::uint64_t examined = 0;
  SiRef next;
  if (pick_smallest(state, si, next, examined)) state.commit(next);
  return examined;
}

}  // namespace sched_detail

Schedule FsfrScheduler::schedule(const ScheduleRequest& request) const {
  UpgradeState state(request);
  std::uint64_t examined = 0;
  for (const SiRef& selected : by_importance(request))
    examined += sched_detail::upgrade_si_fully(state, selected);
  static MetricCounter& invocations = metric_counter("sched.fsfr.invocations");
  static MetricCounter& candidates = metric_counter("sched.fsfr.candidates_evaluated");
  invocations.add();
  candidates.add(examined);
  return state.take_schedule();
}

}  // namespace rispp
