#include "sched/fsfr.h"

namespace rispp {
namespace sched_detail {

namespace {
/// Smallest-additional-atoms live candidate of `si`; ties broken by lower
/// latency, then molecule id (determinism).
bool pick_smallest(UpgradeState& state, SiId si, SiRef& out) {
  const auto live = state.live_candidates_of(si);
  if (live.empty()) return false;
  const SiRef* best = &live.front();
  for (const SiRef& c : live) {
    const unsigned ca = state.additional_atoms(c), ba = state.additional_atoms(*best);
    if (ca < ba || (ca == ba && state.latency(c) < state.latency(*best))) best = &c;
  }
  out = *best;
  return true;
}
}  // namespace

void upgrade_si_fully(UpgradeState& state, const SiRef& selected) {
  while (!state.reached_selected(selected)) {
    SiRef next;
    if (!pick_smallest(state, selected.si, next)) break;  // nothing live left
    state.commit(next);
  }
}

void commit_smallest_step(UpgradeState& state, SiId si) {
  SiRef next;
  if (pick_smallest(state, si, next)) state.commit(next);
}

}  // namespace sched_detail

Schedule FsfrScheduler::schedule(const ScheduleRequest& request) const {
  UpgradeState state(request);
  for (const SiRef& selected : by_importance(request))
    sched_detail::upgrade_si_fully(state, selected);
  return state.take_schedule();
}

}  // namespace rispp
