// "Smallest Job First" (§4.4): after the ASF first phase (a smallest
// molecule per SI), always commit the candidate — across all SIs — that
// needs the fewest additional atoms; ties go to the bigger performance
// improvement. Locally cheap steps, but blind to execution frequencies.
#pragma once

#include "sched/schedule.h"

namespace rispp {

class SjfScheduler final : public AtomScheduler {
 public:
  std::string_view name() const override { return "SJF"; }
  Schedule schedule(const ScheduleRequest& request) const override;
};

}  // namespace rispp
