#include "sched/sjf.h"

#include "base/metrics.h"
#include "sched/fsfr.h"

namespace rispp {

Schedule SjfScheduler::schedule(const ScheduleRequest& request) const {
  UpgradeState state(request);
  std::uint64_t examined = 0;
  // Phase 1 (like ASF): the smallest hardware molecule for each SI.
  for (const SiRef& selected : by_importance(request))
    examined += sched_detail::commit_smallest_step(state, selected.si);

  // Phase 2: globally smallest additional-atom step; ties by bigger
  // performance improvement (bestLatency - candidate latency).
  for (;;) {
    const auto& live = state.live_candidates();
    if (live.empty()) break;
    examined += live.size();
    const SiRef* best = nullptr;
    unsigned best_atoms = 0;
    Cycles best_gain = 0;
    for (const SiRef& c : live) {
      const unsigned atoms = state.additional_atoms(c);
      const Cycles lat = state.latency(c);
      const Cycles best_lat = state.best_latency(c.si);
      const Cycles gain = best_lat > lat ? best_lat - lat : 0;
      if (best == nullptr || atoms < best_atoms ||
          (atoms == best_atoms && gain > best_gain)) {
        best = &c;
        best_atoms = atoms;
        best_gain = gain;
      }
    }
    state.commit(*best);
  }
  static MetricCounter& invocations = metric_counter("sched.sjf.invocations");
  static MetricCounter& candidates = metric_counter("sched.sjf.candidates_evaluated");
  invocations.add();
  candidates.add(examined);
  return state.take_schedule();
}

}  // namespace rispp
