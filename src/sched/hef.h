// "Highest Efficiency First" — the paper's proposed scheduler (Figure 6).
//
// Each round, every live candidate o is scored
//
//     benefit(o) = expectedExecutions(o.SI) * (bestLatency(o.SI) - latency(o))
//                  ------------------------------------------------------------
//                                 |a ⊖ o|  (additional atoms)
//
// and the maximum is committed. The hardware implementation avoids the
// division (§5): to compare (a*b)/c > (d*e)/f it evaluates (a*b)*f > (d*e)*c,
// valid because the atom counts c, f are always > 0. We implement exactly
// that comparison (128-bit products) and property-test it against exact
// rational comparison.
#pragma once

#include <cstdint>

#include "sched/schedule.h"

namespace rispp {

/// benefit as an unevaluated fraction (numerator = execs * latency gain,
/// denominator = additional atoms > 0).
struct Benefit {
  std::uint64_t gain_weighted = 0;  // expectedExecs * (bestLatency - latency)
  std::uint64_t atoms = 1;          // |a ⊖ o|, always > 0 for live candidates
};

/// The §5 division-free comparison: a.gain_weighted/a.atoms > b.gain_weighted/b.atoms
/// evaluated as cross products in 128 bits.
bool benefit_greater(const Benefit& a, const Benefit& b);

/// Cost counters mirroring the hardware FSM work (Table 3 proxy): how many
/// benefit computations, comparisons and commit steps one scheduler call
/// performs.
struct HefCostCounters {
  std::uint64_t invocations = 0;
  std::uint64_t rounds = 0;               // while-loop iterations (FSM passes)
  std::uint64_t benefit_evaluations = 0;  // Figure 6 line 20
  std::uint64_t benefit_comparisons = 0;  // Figure 6 line 21
  std::uint64_t commits = 0;              // Figure 6 lines 25-28
  std::uint64_t atoms_scheduled = 0;
};

class HefScheduler final : public AtomScheduler {
 public:
  /// `counters`, when given, accumulates FSM work across calls (not owned;
  /// must outlive the scheduler).
  explicit HefScheduler(HefCostCounters* counters = nullptr) : counters_(counters) {}

  std::string_view name() const override { return "HEF"; }
  Schedule schedule(const ScheduleRequest& request) const override;

 private:
  HefCostCounters* counters_;
};

}  // namespace rispp
