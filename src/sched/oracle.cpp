#include "sched/oracle.h"

#include <map>
#include <vector>

#include "base/check.h"

namespace rispp {
namespace {

/// Sum over selected SIs of expected * fastest-available latency under `a`.
long double wait_rate(const ScheduleRequest& request, const Molecule& a) {
  long double rate = 0.0L;
  for (const SiRef& s : request.selected) {
    const auto expected =
        static_cast<long double>(request.expected_executions[s.si]);
    rate += expected *
            static_cast<long double>(request.set->fastest_available_latency(s.si, a));
  }
  return rate;
}

struct DfsResult {
  long double cost = 0.0L;
  std::vector<SiRef> commits;  // best commit order from this state on
};

class OracleSearch {
 public:
  OracleSearch(const ScheduleRequest& request, Cycles cycles_per_atom)
      : request_(request), set_(*request.set), cycles_per_atom_(cycles_per_atom) {}

  DfsResult solve(const Molecule& available) {
    std::vector<AtomCount> key(available.counts().begin(), available.counts().end());
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;

    // Live candidates under eq. (4) for this availability.
    std::vector<Cycles> best_latency(set_.si_count(), 0);
    for (SiId si = 0; si < set_.si_count(); ++si)
      best_latency[si] = set_.fastest_available_latency(si, available);
    std::vector<SiRef> live = smaller_candidates(set_, request_.selected);
    clean_candidates(set_, live, available, best_latency);

    DfsResult best;
    bool first = true;
    for (const SiRef& c : live) {
      const Molecule& atoms = set_.si(c.si).molecule(c.mol).atoms;
      const Molecule delta = missing(available, atoms);
      const long double load_cycles =
          static_cast<long double>(delta.determinant()) *
          static_cast<long double>(cycles_per_atom_);
      // While this step loads, everything runs at the *current* latencies.
      const long double step_cost = load_cycles * wait_rate(request_, available);
      DfsResult sub = solve(join(available, atoms));
      sub.cost += step_cost;
      sub.commits.insert(sub.commits.begin(), c);
      if (first || sub.cost < best.cost) {
        best = std::move(sub);
        first = false;
      }
    }
    memo_.emplace(std::move(key), best);
    return best;
  }

 private:
  const ScheduleRequest& request_;
  const SpecialInstructionSet& set_;
  Cycles cycles_per_atom_;
  std::map<std::vector<AtomCount>, DfsResult> memo_;
};

}  // namespace

long double weighted_wait_cost(const ScheduleRequest& request, const Schedule& schedule,
                               Cycles cycles_per_atom) {
  Molecule a = request.available;
  long double cost = 0.0L;
  for (const UpgradeStep& step : schedule.steps) {
    const long double load_cycles = static_cast<long double>(step.load_count) *
                                    static_cast<long double>(cycles_per_atom);
    cost += load_cycles * wait_rate(request, a);
    const Molecule& atoms = request.set->si(step.molecule.si).molecule(step.molecule.mol).atoms;
    a = join(a, atoms);
  }
  return cost;
}

Schedule OracleScheduler::schedule(const ScheduleRequest& request) const {
  // Guard against accidentally unleashing the exponential search on the full
  // H.264 instance — the oracle is a test/ablation instrument.
  const auto candidates = smaller_candidates(*request.set, request.selected);
  RISPP_CHECK_MSG(candidates.size() <= 40,
                  "oracle limited to small instances, got " << candidates.size()
                                                            << " candidates");
  OracleSearch search(request, cycles_per_atom_);
  const DfsResult best = search.solve(request.available);

  // Replay the best commit order through the shared machinery so the
  // resulting Schedule has identical structure to the greedy strategies'.
  UpgradeState state(request);
  for (const SiRef& c : best.commits) state.commit(c);
  return state.take_schedule();
}

}  // namespace rispp
