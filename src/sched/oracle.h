// Exact reference scheduler for small instances, and the analytic cost
// objective the greedy strategies approximate.
//
// §4.2: "An optimal schedule requires a precise future knowledge". The
// realistic proxy available to a run-time scheduler is the expected SI
// execution count. Under the (standard) assumption that executions are
// spread uniformly over the hot spot, the damage a schedule causes is the
// *weighted waiting cost*: while atoms load, every SI executes at its
// currently fastest available latency, so
//
//   cost(SF) = Σ_steps  loadCycles(step) * Σ_SI expected(SI) * latency(SI, a)
//
// (latencies taken under the availability *before* the step completes).
// OracleScheduler enumerates all molecule commit orders (DFS with
// memoization on the availability vector) and returns a cost-minimal
// schedule. Exponential — only for tests/ablations with few candidates.
#pragma once

#include "sched/schedule.h"

namespace rispp {

/// The weighted waiting cost of a schedule, with `cycles_per_atom` load time
/// per scheduled atom. Lower is better; 0 means everything was preloaded.
/// Uses long double accumulation to stay exact for the magnitudes involved.
long double weighted_wait_cost(const ScheduleRequest& request, const Schedule& schedule,
                               Cycles cycles_per_atom);

class OracleScheduler final : public AtomScheduler {
 public:
  explicit OracleScheduler(Cycles cycles_per_atom) : cycles_per_atom_(cycles_per_atom) {}

  std::string_view name() const override { return "Oracle"; }
  Schedule schedule(const ScheduleRequest& request) const override;

 private:
  Cycles cycles_per_atom_;
};

}  // namespace rispp
