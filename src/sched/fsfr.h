// "First Select First Reconfigure" (§4.4): fully upgrade the most important
// SI — walking the staircase of its intermediate molecules — before starting
// the next SI. Strong when few SIs matter; fails when a second SI starves in
// software (the paper's Figure 7 dip around 7 ACs).
#pragma once

#include "sched/schedule.h"

namespace rispp {

class FsfrScheduler final : public AtomScheduler {
 public:
  std::string_view name() const override { return "FSFR"; }
  Schedule schedule(const ScheduleRequest& request) const override;
};

namespace sched_detail {
/// Upgrades one SI to its selected molecule by repeatedly committing the
/// live candidate of that SI needing the fewest additional atoms (ties:
/// lower latency). Shared by FSFR (whole algorithm) and ASF/SJF (phase 2).
/// Returns how many live candidates were examined (the metrics registry's
/// per-strategy candidate-evaluation count).
std::uint64_t upgrade_si_fully(UpgradeState& state, const SiRef& selected);

/// Commits the smallest live accelerating step of one SI, if any (ASF/SJF
/// phase 1). Returns the number of live candidates examined.
std::uint64_t commit_smallest_step(UpgradeState& state, SiId si);
}  // namespace sched_detail

}  // namespace rispp
