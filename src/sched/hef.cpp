#include "sched/hef.h"

#include "base/check.h"
#include "base/metrics.h"

namespace rispp {

bool benefit_greater(const Benefit& a, const Benefit& b) {
  RISPP_CHECK(a.atoms > 0 && b.atoms > 0);
  // (a.gain * b.atoms) > (b.gain * a.atoms); products fit in 128 bits.
  const __uint128_t lhs = static_cast<__uint128_t>(a.gain_weighted) * b.atoms;
  const __uint128_t rhs = static_cast<__uint128_t>(b.gain_weighted) * a.atoms;
  return lhs > rhs;
}

Schedule HefScheduler::schedule(const ScheduleRequest& request) const {
  // UpgradeState implements Figure 6 lines 1-9 (candidates M' and the
  // bestLatency array) and lines 13-16 (cleaning) inside live_candidates().
  UpgradeState state(request);
  if (counters_) ++counters_->invocations;
  std::uint64_t examined = 0;

  // Lines 12-29: schedule the Molecule candidates.
  for (;;) {
    const auto& live = state.live_candidates();
    if (live.empty()) break;  // line 17
    if (counters_) ++counters_->rounds;
    examined += live.size();

    // Lines 18-24: pick the highest-benefit candidate. bestBenefit starts at
    // 0 and the comparison is strict, so the first maximum wins — matching
    // the pseudocode's iteration order (SiId, then molecule id).
    Benefit best_benefit{0, 1};
    const SiRef* chosen = nullptr;
    for (const SiRef& o : live) {
      const Cycles best_lat = state.best_latency(o.si);
      const Cycles lat = state.latency(o);
      // Cleaning guarantees lat < best_lat for live candidates.
      Benefit b;
      b.gain_weighted = state.expected_executions(o.si) * (best_lat - lat);
      b.atoms = state.additional_atoms(o);
      if (counters_) {
        ++counters_->benefit_evaluations;
        ++counters_->benefit_comparisons;
      }
      if (chosen == nullptr ? b.gain_weighted > 0 : benefit_greater(b, best_benefit)) {
        best_benefit = b;
        chosen = &o;
      }
    }
    if (chosen == nullptr) break;  // all live candidates have zero benefit

    // Lines 25-28.
    if (counters_) {
      ++counters_->commits;
      counters_->atoms_scheduled += best_benefit.atoms;
    }
    state.commit(*chosen);
  }
  static MetricCounter& invocations = metric_counter("sched.hef.invocations");
  static MetricCounter& candidates = metric_counter("sched.hef.candidates_evaluated");
  invocations.add();
  candidates.add(examined);
  return state.take_schedule();
}

}  // namespace rispp
