#include "sched/registry.h"

#include "base/check.h"
#include "sched/asf.h"
#include "sched/fsfr.h"
#include "sched/hef.h"
#include "sched/sjf.h"

namespace rispp {

std::vector<std::string> scheduler_names() { return {"ASF", "FSFR", "SJF", "HEF"}; }

bool has_scheduler(const std::string& name) {
  for (const std::string& known : scheduler_names())
    if (known == name) return true;
  return false;
}

std::unique_ptr<AtomScheduler> make_scheduler(const std::string& name) {
  if (name == "FSFR") return std::make_unique<FsfrScheduler>();
  if (name == "ASF") return std::make_unique<AsfScheduler>();
  if (name == "SJF") return std::make_unique<SjfScheduler>();
  if (name == "HEF") return std::make_unique<HefScheduler>();
  RISPP_CHECK_MSG(false, "unknown scheduler " << name);
  return nullptr;
}

}  // namespace rispp
