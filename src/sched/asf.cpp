#include "sched/asf.h"

#include "base/metrics.h"
#include "sched/fsfr.h"

namespace rispp {

Schedule AsfScheduler::schedule(const ScheduleRequest& request) const {
  UpgradeState state(request);
  std::uint64_t examined = 0;
  // Phase 1: one accelerating molecule for *all* SIs, in plain SI order —
  // this is exactly the behaviour the paper faults at large AC counts: time
  // is spent accelerating SIs "even though some of them are significantly
  // less often executed than others".
  for (const SiRef& selected : request.selected)
    examined += sched_detail::commit_smallest_step(state, selected.si);
  // Phase 2: follow the FSFR path (importance order).
  for (const SiRef& selected : by_importance(request))
    examined += sched_detail::upgrade_si_fully(state, selected);
  static MetricCounter& invocations = metric_counter("sched.asf.invocations");
  static MetricCounter& candidates = metric_counter("sched.asf.candidates_evaluated");
  invocations.add();
  candidates.add(examined);
  return state.take_schedule();
}

}  // namespace rispp
