#include "sched/asf.h"

#include "sched/fsfr.h"

namespace rispp {

Schedule AsfScheduler::schedule(const ScheduleRequest& request) const {
  UpgradeState state(request);
  // Phase 1: one accelerating molecule for *all* SIs, in plain SI order —
  // this is exactly the behaviour the paper faults at large AC counts: time
  // is spent accelerating SIs "even though some of them are significantly
  // less often executed than others".
  for (const SiRef& selected : request.selected)
    sched_detail::commit_smallest_step(state, selected.si);
  // Phase 2: follow the FSFR path (importance order).
  for (const SiRef& selected : by_importance(request))
    sched_detail::upgrade_si_fully(state, selected);
  return state.take_schedule();
}

}  // namespace rispp
