// "Avoid Software First" (§4.4): before any deep upgrading, load one
// smallest accelerating molecule for *every* selected SI (in importance
// order) so no SI is stuck in the trap; then continue like FSFR. Pays off at
// small AC counts, wastes time on rarely-executed SIs at large ones (the
// paper's Figure 7 crossover at 17 ACs).
#pragma once

#include "sched/schedule.h"

namespace rispp {

class AsfScheduler final : public AtomScheduler {
 public:
  std::string_view name() const override { return "ASF"; }
  Schedule schedule(const ScheduleRequest& request) const override;
};

}  // namespace rispp
