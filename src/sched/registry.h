// Name-based construction of the §4 schedulers ("FSFR", "ASF", "SJF", "HEF").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/schedule.h"

namespace rispp {

/// The evaluated strategies in the paper's presentation order.
std::vector<std::string> scheduler_names();

/// Whether `name` names a registered strategy (drivers validate flags with
/// this before make_scheduler's throw would turn a typo into a stack trace).
bool has_scheduler(const std::string& name);

/// Throws on unknown names.
std::unique_ptr<AtomScheduler> make_scheduler(const std::string& name);

}  // namespace rispp
