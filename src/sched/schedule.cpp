#include "sched/schedule.h"

#include <algorithm>

#include "base/check.h"

namespace rispp {

bool is_valid_schedule(const ScheduleRequest& request, const Schedule& schedule) {
  const SpecialInstructionSet& set = *request.set;
  std::vector<Molecule> selected_atoms;
  selected_atoms.reserve(request.selected.size());
  for (const SiRef& s : request.selected)
    selected_atoms.push_back(set.si(s.si).molecule(s.mol).atoms);
  const Molecule sup_m = sup(selected_atoms, set.atom_type_count());
  const Molecule budget = missing(request.available, sup_m);

  // (a) loads stay within the per-type budget.
  Molecule loaded(set.atom_type_count());
  for (AtomTypeId t : schedule.loads) {
    if (t >= set.atom_type_count()) return false;
    if (++loaded[t] > budget[t]) return false;
  }

  // (b) the selected performance level is reached for every SI.
  const Molecule final_atoms = [&] {
    Molecule a = request.available;
    for (std::size_t i = 0; i < a.dimension(); ++i)
      a[i] = static_cast<AtomCount>(a[i] + loaded[i]);
    return a;
  }();
  for (const SiRef& s : request.selected) {
    const Cycles target = set.si(s.si).molecule(s.mol).latency;
    if (set.fastest_available_latency(s.si, final_atoms) > target) return false;
  }

  // Steps must partition the load list.
  std::size_t covered = 0;
  for (const UpgradeStep& step : schedule.steps) {
    if (step.first_load != covered) return false;
    covered += step.load_count;
  }
  return covered == schedule.loads.size();
}

// One UpgradeState exists per AtomScheduler::schedule() call and they never
// nest, so a single per-thread slot recycles the vector capacity; a second
// live instance on the same thread (tests constructing states side by side)
// simply falls back to owning fresh vectors.
struct UpgradeScratch {
  std::vector<Cycles> best_latency;
  std::vector<SiRef> candidates;
  bool in_use = false;
};

namespace {
UpgradeScratch& upgrade_scratch() {
  thread_local UpgradeScratch scratch;
  return scratch;
}
}  // namespace

UpgradeState::UpgradeState(const ScheduleRequest& request)
    : request_(&request), set_(request.set), available_(request.available) {
  RISPP_CHECK(set_ != nullptr);
  RISPP_CHECK(available_.dimension() == set_->atom_type_count());
  RISPP_CHECK(request.expected_executions.size() == set_->si_count());

  UpgradeScratch& pool = upgrade_scratch();
  if (!pool.in_use) {
    pool.in_use = true;
    scratch_ = &pool;
    best_latency_ = std::move(pool.best_latency);
    candidates_ = std::move(pool.candidates);
  }

  // Figure 6 lines 6-9: initialize bestLatency from what is available now.
  best_latency_.assign(set_->si_count(), 0);
  for (SiId si = 0; si < set_->si_count(); ++si)
    best_latency_[si] = set_->fastest_available_latency(si, available_);

  // Figure 6 lines 1-5 / eq. (3): all smaller molecules of the selected SIs.
  smaller_candidates_into(*set_, request.selected, candidates_);
}

UpgradeState::~UpgradeState() {
  if (scratch_ != nullptr) {
    scratch_->best_latency = std::move(best_latency_);
    scratch_->candidates = std::move(candidates_);
    scratch_->in_use = false;
  }
}

void UpgradeState::clean() {
  if (!dirty_) return;
  clean_candidates(*set_, candidates_, available_, best_latency_);
  if (request_->payback_cycles_per_atom > 0) {
    std::erase_if(candidates_, [&](const SiRef& c) {
      const Cycles gain = best_latency_[c.si] - set_->latency(c);  // > 0 after cleaning
      const auto saving =
          static_cast<__uint128_t>(request_->expected_executions[c.si]) * gain;
      const auto cost = static_cast<__uint128_t>(additional_atoms(c)) *
                        request_->payback_cycles_per_atom;
      return saving <= cost;
    });
  }
  dirty_ = false;
}

const std::vector<SiRef>& UpgradeState::live_candidates() {
  clean();
  return candidates_;
}

std::vector<SiRef> UpgradeState::live_candidates_of(SiId si) {
  clean();
  std::vector<SiRef> out;
  for (const SiRef& c : candidates_)
    if (c.si == si) out.push_back(c);
  return out;
}

void UpgradeState::commit(const SiRef& molecule) {
  const Molecule& atoms = set_->si(molecule.si).molecule(molecule.mol).atoms;
  missing_into(delta_, available_, atoms);
  RISPP_CHECK_MSG(delta_.determinant() > 0, "committing an already-available molecule");

  UpgradeStep step;
  step.molecule = molecule;
  step.first_load = schedule_.loads.size();
  append_unit_decomposition(delta_, schedule_.loads);
  step.load_count = schedule_.loads.size() - step.first_load;
  schedule_.steps.push_back(step);

  join_into(available_, atoms);
  best_latency_[molecule.si] =
      std::min(best_latency_[molecule.si], set_->latency(molecule));
  dirty_ = true;
}

bool UpgradeState::reached_selected(const SiRef& selected) const {
  return best_latency_[selected.si] <= set_->latency(selected);
}

std::uint64_t UpgradeState::expected_executions(SiId si) const {
  return request_->expected_executions[si];
}

unsigned UpgradeState::additional_atoms(const SiRef& candidate) const {
  const Molecule& atoms = set_->si(candidate.si).molecule(candidate.mol).atoms;
  return missing_determinant(available_, atoms);
}

std::uint64_t si_importance(const ScheduleRequest& request, const SiRef& selected) {
  const SpecialInstructionSet& set = *request.set;
  const Cycles now = set.fastest_available_latency(selected.si, request.available);
  const Cycles then = set.latency(selected);
  const Cycles gain = now > then ? now - then : 0;
  return request.expected_executions[selected.si] * gain;
}

std::vector<SiRef> by_importance(const ScheduleRequest& request) {
  std::vector<SiRef> order = request.selected;
  std::stable_sort(order.begin(), order.end(), [&](const SiRef& a, const SiRef& b) {
    const std::uint64_t ia = si_importance(request, a), ib = si_importance(request, b);
    if (ia != ib) return ia > ib;
    return a.si < b.si;
  });
  return order;
}

}  // namespace rispp
