// The Atom scheduling problem of §4.2.
//
// Input: the Molecules selected for the upcoming hot spot (one per SI), the
// atoms currently available in the Atom Containers, and the expected SI
// execution counts from online monitoring. Output: the scheduling function
// SF — an ordered list of Unit-Molecules (single atom loads), eq. (1) —
// subject to the multiplicity condition eq. (2).
//
// All four strategies (§4.3/4.4) reduce Atom scheduling to *Molecule*
// scheduling: each step commits one candidate molecule and emits the atoms
// it still misses (a ⊖ m). The shared machinery lives in UpgradeState.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "alg/molecule.h"
#include "isa/candidates.h"
#include "isa/si.h"

namespace rispp {

struct ScheduleRequest {
  const SpecialInstructionSet* set = nullptr;
  /// Selected Molecules M — at most one per SI (the selection substrate
  /// guarantees |sup M| <= #ACs).
  std::vector<SiRef> selected;
  /// Atoms already configured when the hot spot is entered (warm start).
  Molecule available;
  /// Expected executions per SiId for this hot-spot instance (monitoring).
  std::vector<std::uint64_t> expected_executions;

  /// Payback rule (0 = disabled): a candidate molecule is only worth
  /// scheduling if its expected cycle savings within this hot-spot instance,
  /// expectedExecs * (bestLatency - latency), exceed the reconfiguration
  /// time of its missing atoms, |a ⊖ m| * payback_cycles_per_atom. The
  /// Run-Time Manager enables this with the port's average atom load time;
  /// it prunes tail upgrades that would only evict other hot spots' atoms
  /// without ever repaying their own load.
  Cycles payback_cycles_per_atom = 0;
};

/// One committed upgrade step: the molecule composed and how many atom loads
/// it appended to SF.
struct UpgradeStep {
  SiRef molecule;
  std::size_t first_load = 0;  // index into Schedule::loads
  std::size_t load_count = 0;
};

struct Schedule {
  /// SF(1..k): atom types in loading order (each entry is one Unit-Molecule).
  std::vector<AtomTypeId> loads;
  /// The molecule-level decisions that generated `loads`, in order.
  std::vector<UpgradeStep> steps;
};

/// Validity of a schedule under warm starts and candidate cleaning:
///  (a) the loads never exceed what sup(M) still misses (condition (2) as an
///      upper bound — a ⊖ sup(M) per type), and
///  (b) after all loads every selected SI reaches at least its selected
///      molecule's latency.
/// For a cold start in which no candidate is cleaned away this degenerates to
/// the paper's exact multiplicity condition (2) (tested separately).
bool is_valid_schedule(const ScheduleRequest& request, const Schedule& schedule);

/// Strategy interface. Implementations are stateless; `schedule` is const.
class AtomScheduler {
 public:
  virtual ~AtomScheduler() = default;
  virtual std::string_view name() const = 0;
  virtual Schedule schedule(const ScheduleRequest& request) const = 0;
};

struct UpgradeScratch;  // per-thread vector capacity pool (schedule.cpp)

/// Shared molecule-upgrade bookkeeping used by all strategies.
/// Draws its vector storage from a per-thread scratch pool while alive, so
/// the one-UpgradeState-per-schedule() pattern stops allocating once warm.
class UpgradeState {
 public:
  explicit UpgradeState(const ScheduleRequest& request);
  ~UpgradeState();
  UpgradeState(const UpgradeState&) = delete;
  UpgradeState& operator=(const UpgradeState&) = delete;

  /// Live candidates after eq. (4) cleaning (cleans lazily on access).
  const std::vector<SiRef>& live_candidates();
  /// Live candidates restricted to one SI.
  std::vector<SiRef> live_candidates_of(SiId si);

  /// Commits a candidate: appends a ⊖ m to the schedule, updates a and
  /// bestLatency (Figure 6 lines 25-28).
  void commit(const SiRef& molecule);

  /// True when the SI's selected molecule latency has been reached.
  bool reached_selected(const SiRef& selected) const;

  const Molecule& available() const { return available_; }
  Cycles best_latency(SiId si) const { return best_latency_[si]; }
  std::uint64_t expected_executions(SiId si) const;
  unsigned additional_atoms(const SiRef& candidate) const;
  Cycles latency(const SiRef& candidate) const { return set_->latency(candidate); }

  Schedule take_schedule() { return std::move(schedule_); }
  const ScheduleRequest& request() const { return *request_; }

 private:
  void clean();

  const ScheduleRequest* request_;
  const SpecialInstructionSet* set_;
  Molecule available_;
  Molecule delta_;                     // commit() scratch: a ⊖ m
  std::vector<Cycles> best_latency_;   // per SiId
  std::vector<SiRef> candidates_;      // M' progressively cleaned to M''
  bool dirty_ = true;
  Schedule schedule_;
  UpgradeScratch* scratch_ = nullptr;  // owning pool slot, returned in dtor
};

/// Importance of a selected SI (used by FSFR/ASF to order the SIs):
/// expected executions x potential improvement of the selected Molecule over
/// what is currently available.
std::uint64_t si_importance(const ScheduleRequest& request, const SiRef& selected);

/// Orders `selected` by descending importance (stable; ties by SiId).
std::vector<SiRef> by_importance(const ScheduleRequest& request);

}  // namespace rispp
