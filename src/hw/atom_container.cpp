#include "hw/atom_container.h"

#include "base/check.h"

namespace rispp {

ContainerFile::ContainerFile(unsigned count, std::size_t atom_type_dimension)
    : containers_(count), ready_(atom_type_dimension), active_(count) {}

ContainerFile::ContainerFile(unsigned count, std::size_t atom_type_dimension,
                             unsigned enabled_count)
    : containers_(count), ready_(atom_type_dimension), active_(enabled_count) {
  RISPP_CHECK(enabled_count <= count);
  for (unsigned id = enabled_count; id < count; ++id) containers_[id].enabled = false;
}

const AtomContainer& ContainerFile::container(ContainerId id) const {
  RISPP_CHECK(id < containers_.size());
  return containers_[id];
}

void ContainerFile::begin_load(ContainerId id, AtomTypeId type) {
  RISPP_CHECK(id < containers_.size());
  RISPP_CHECK(type < ready_.dimension());
  AtomContainer& c = containers_[id];
  RISPP_CHECK_MSG(c.enabled, "container " << id << " is outside the quota");
  RISPP_CHECK_MSG(c.state != ContainerState::kLoading,
                  "container " << id << " already reconfiguring");
  if (c.state == ContainerState::kReady) {
    RISPP_CHECK(ready_[c.type] > 0);
    --ready_[c.type];  // the previous atom is destroyed immediately
  }
  c.state = ContainerState::kLoading;
  c.type = type;
}

void ContainerFile::complete_load(ContainerId id) {
  RISPP_CHECK(id < containers_.size());
  AtomContainer& c = containers_[id];
  RISPP_CHECK(c.state == ContainerState::kLoading);
  c.state = ContainerState::kReady;
  ++ready_[c.type];
}

bool ContainerFile::disable(ContainerId id) {
  RISPP_CHECK(id < containers_.size());
  AtomContainer& c = containers_[id];
  RISPP_CHECK_MSG(c.enabled, "container " << id << " already disabled");
  RISPP_CHECK_MSG(c.state != ContainerState::kLoading,
                  "cannot disable container " << id << " mid-reconfiguration");
  const bool evicted = c.state == ContainerState::kReady;
  if (evicted) {
    RISPP_CHECK(ready_[c.type] > 0);
    --ready_[c.type];
  }
  c.state = ContainerState::kEmpty;
  c.enabled = false;
  RISPP_CHECK(active_ > 0);
  --active_;
  return evicted;
}

void ContainerFile::enable(ContainerId id) {
  RISPP_CHECK(id < containers_.size());
  AtomContainer& c = containers_[id];
  RISPP_CHECK_MSG(!c.enabled, "container " << id << " already enabled");
  RISPP_CHECK(c.state == ContainerState::kEmpty);
  c.enabled = true;
  ++active_;
}

void ContainerFile::touch(const Molecule& used, Cycles now) {
  for (std::size_t t = 0; t < used.dimension(); ++t) {
    if (used[t] == 0) continue;
    AtomCount remaining = used[t];
    for (auto& c : containers_) {
      if (remaining == 0) break;
      if (c.state == ContainerState::kReady && c.type == t) {
        c.last_used = now;
        --remaining;
      }
    }
  }
}

std::optional<ContainerId> ContainerFile::find_empty() const {
  for (ContainerId id = 0; id < containers_.size(); ++id)
    if (containers_[id].enabled && containers_[id].state == ContainerState::kEmpty)
      return id;
  return std::nullopt;
}

std::vector<ContainerId> ContainerFile::ready_of_type(AtomTypeId type) const {
  std::vector<ContainerId> out;
  for (ContainerId id = 0; id < containers_.size(); ++id)
    if (containers_[id].state == ContainerState::kReady && containers_[id].type == type)
      out.push_back(id);
  return out;
}

}  // namespace rispp
