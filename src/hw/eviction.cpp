#include "hw/eviction.h"

#include "base/check.h"

namespace rispp {

std::optional<ContainerId> pick_victim(const ContainerFile& file, const Molecule& hard_demand,
                                       const Molecule& soft_demand,
                                       std::span<const Cycles> type_last_used) {
  if (auto empty = file.find_empty()) return empty;
  RISPP_CHECK(type_last_used.size() == hard_demand.dimension());
  RISPP_CHECK(soft_demand.dimension() == hard_demand.dimension());

  const Molecule& ready = file.ready_atoms();

  // Preference classes, best first:
  //   0: not wanted by anyone (over both hard and soft demand)
  //   1: soft-demanded only (another hot spot wants it resident)
  // Ties within a class go to the least-recently-used type.
  std::optional<ContainerId> best;
  int best_class = 0;
  Cycles best_used = 0;
  for (ContainerId id = 0; id < file.size(); ++id) {
    const AtomContainer& c = file.container(id);
    if (!c.enabled) continue;  // outside the owner's quota (multi-tenant)
    if (c.state != ContainerState::kReady) continue;
    if (ready[c.type] <= hard_demand[c.type]) continue;  // hard-pinned
    const AtomCount wanted = std::max(hard_demand[c.type], soft_demand[c.type]);
    const int cls = ready[c.type] > wanted ? 0 : 1;
    const Cycles used = type_last_used[c.type];
    const bool better = !best.has_value() || cls < best_class ||
                        (cls == best_class && used < best_used);
    if (better) {
      best = id;
      best_class = cls;
      best_used = used;
    }
  }
  return best;
}

}  // namespace rispp
