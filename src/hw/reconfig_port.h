// The single reconfiguration port (SelectMap/ICAP): one atom loads at a
// time; the load sequence is whatever the SI Scheduler decided. The port is
// a pure timing device — orchestration (victim choice, queue replacement on
// hot-spot switches) lives in the Run-Time Manager.
#pragma once

#include <optional>
#include <vector>

#include "base/trace_event.h"
#include "base/types.h"
#include "dpg/atom_library.h"
#include "hw/bitstream.h"

namespace rispp {

class ReconfigPort {
 public:
  ReconfigPort(const AtomLibrary* library, BitstreamModel model);

  bool busy() const { return inflight_.has_value(); }

  struct InflightLoad {
    AtomTypeId type;
    ContainerId container;
    Cycles finishes_at;
  };
  const std::optional<InflightLoad>& inflight() const { return inflight_; }

  /// Starts loading `type` into `container` at time `now` (port must be idle).
  /// Returns the completion time.
  Cycles start(AtomTypeId type, ContainerId container, Cycles now);

  /// Retires the in-flight load (must have finished by `now`).
  InflightLoad retire(Cycles now);

  /// Cycles one load of `type` occupies the port.
  Cycles load_cycles(AtomTypeId type) const;

  std::uint64_t completed_loads() const { return completed_; }

 private:
  const AtomLibrary* library_;
  BitstreamModel model_;
  std::optional<InflightLoad> inflight_;
  std::uint64_t completed_ = 0;

  // Observability: every port gets its own trace lane on the reconfig-port
  // track; each start() emits one complete span (Figure 4's port timeline).
  // Atom-type names are interned lazily on the first traced load so span
  // names outlive the at-exit flush.
  TraceLane trace_lane_;
  std::vector<const char*> traced_type_names_;
};

}  // namespace rispp
