// Partial-bitstream size and reconfiguration-time model.
//
// The prototype loads atoms through the Xilinx SelectMap/ICAP interface at
// 66 MB/s; due to FPGA constraints each atom occupies four CLB rows and its
// partial bitstream averages ~60 KB, giving the paper's 874.03 us average
// atom reconfiguration time (§5). We derive per-atom bitstream bytes from
// the atom's slice count and convert to cycles at the 100 MHz core clock, so
// the fleet average lands on the paper's figure (asserted in tests).
#pragma once

#include "base/clock.h"
#include "base/types.h"
#include "dpg/atom_library.h"

namespace rispp {

struct BitstreamModel {
  /// SelectMap/ICAP bandwidth.
  std::uint64_t bytes_per_second = 66'000'000;
  /// Configuration payload per slice (CLB frames + routing).
  std::uint64_t bytes_per_slice = 145;
  /// Fixed ICAP setup cost per load, in cycles.
  Cycles setup_cycles = 64;

  std::uint64_t bitstream_bytes(const AtomType& type) const {
    return type.slices * bytes_per_slice;
  }

  Cycles reconfig_cycles(const AtomType& type) const {
    const double seconds = static_cast<double>(bitstream_bytes(type)) /
                           static_cast<double>(bytes_per_second);
    return setup_cycles + static_cast<Cycles>(seconds * static_cast<double>(kCoreClockHz));
  }

  /// Average over a library — the paper's headline 874.03 us.
  double average_reconfig_us(const AtomLibrary& lib) const;
};

}  // namespace rispp
