#include "hw/reconfig_port.h"

#include "base/check.h"
#include "base/clock.h"
#include "base/metrics.h"

namespace rispp {

ReconfigPort::ReconfigPort(const AtomLibrary* library, BitstreamModel model)
    : library_(library), model_(model), trace_lane_(trace_new_lane()) {
  RISPP_CHECK(library != nullptr);
  trace_name_lane(TraceTrack::kReconfigPort, trace_lane_, "atom loads");
}

Cycles ReconfigPort::start(AtomTypeId type, ContainerId container, Cycles now) {
  RISPP_CHECK_MSG(!busy(), "reconfiguration port is single-channel");
  const Cycles done = now + load_cycles(type);
  inflight_ = InflightLoad{type, container, done};
  static MetricCounter& started = metric_counter("port.loads_started");
  started.add();
  if (trace_enabled()) {
    if (traced_type_names_.empty()) {
      traced_type_names_.reserve(library_->size());
      for (AtomTypeId t = 0; t < library_->size(); ++t)
        traced_type_names_.push_back(trace_intern(library_->type(t).name));
    }
    trace_complete(TraceTrack::kReconfigPort, trace_lane_, traced_type_names_[type],
                   us_from_cycles(now), us_from_cycles(done - now));
  }
  return done;
}

ReconfigPort::InflightLoad ReconfigPort::retire(Cycles now) {
  RISPP_CHECK(inflight_.has_value());
  RISPP_CHECK_MSG(inflight_->finishes_at <= now,
                  "retiring a load that finishes at " << inflight_->finishes_at
                                                      << " but now is " << now);
  InflightLoad done = *inflight_;
  inflight_.reset();
  ++completed_;
  return done;
}

Cycles ReconfigPort::load_cycles(AtomTypeId type) const {
  return model_.reconfig_cycles(library_->type(type));
}

}  // namespace rispp
