#include "hw/reconfig_port.h"

#include "base/check.h"

namespace rispp {

ReconfigPort::ReconfigPort(const AtomLibrary* library, BitstreamModel model)
    : library_(library), model_(model) {
  RISPP_CHECK(library != nullptr);
}

Cycles ReconfigPort::start(AtomTypeId type, ContainerId container, Cycles now) {
  RISPP_CHECK_MSG(!busy(), "reconfiguration port is single-channel");
  const Cycles done = now + load_cycles(type);
  inflight_ = InflightLoad{type, container, done};
  return done;
}

ReconfigPort::InflightLoad ReconfigPort::retire(Cycles now) {
  RISPP_CHECK(inflight_.has_value());
  RISPP_CHECK_MSG(inflight_->finishes_at <= now,
                  "retiring a load that finishes at " << inflight_->finishes_at
                                                      << " but now is " << now);
  InflightLoad done = *inflight_;
  inflight_.reset();
  ++completed_;
  return done;
}

Cycles ReconfigPort::load_cycles(AtomTypeId type) const {
  return model_.reconfig_cycles(library_->type(type));
}

}  // namespace rispp
