// Victim selection when a scheduled atom load needs a container.
//
// The Molecule selection guarantees the *target* set fits (NA <= #ACs), but
// containers may still hold atoms of the previous hot spot. The policy is
// working-set aware:
//   1. an empty container, else
//   2. a ready atom over-provisioned w.r.t. the *hard* demand (the current
//      hot spot's selection sup) — atoms in hard demand are pinned; among
//      the evictable ones, prefer
//      a. atoms no *other* hot spot's selection wants either (soft demand),
//      b. then least-recently-used types.
// Soft demand keeps the containers partitioned sensibly between recurring
// hot spots (ME/EE/LF alternate every frame) instead of letting each hot
// spot cannibalize the others' residency. If nothing is evictable the load
// cannot proceed yet (the caller defers it) — this happens while in-flight
// loads temporarily pin containers.
#pragma once

#include <optional>
#include <span>

#include "alg/molecule.h"
#include "hw/atom_container.h"

namespace rispp {

/// `hard_demand`: atoms per type that must remain (or become) resident — the
/// current selection's sup. `soft_demand`: atoms other hot spots' last
/// selections want resident (join over their sups). `type_last_used`:
/// per-type LRU stamps. Returns the container to overwrite, or nullopt if
/// every container is hard-pinned.
std::optional<ContainerId> pick_victim(const ContainerFile& file, const Molecule& hard_demand,
                                       const Molecule& soft_demand,
                                       std::span<const Cycles> type_last_used);

}  // namespace rispp
