#include "hw/bitstream.h"

namespace rispp {

double BitstreamModel::average_reconfig_us(const AtomLibrary& lib) const {
  if (lib.size() == 0) return 0.0;
  double total = 0.0;
  for (AtomTypeId t = 0; t < lib.size(); ++t)
    total += us_from_cycles(reconfig_cycles(lib.type(t)));
  return total / static_cast<double>(lib.size());
}

}  // namespace rispp
