// The Atom Container (AC) file: the fixed set of small reconfigurable
// regions, each of which holds at most one atom (§3).
//
// Multi-tenant note (DESIGN §9): under the fabric arbiter each tenant views
// the shared fabric through its own ContainerFile whose *physical* size is
// the whole device but whose *enabled* subset is the tenant's current quota.
// Container ids are stable across quota changes — shrinking a quota disables
// containers (evicting their atoms) instead of renumbering, so in-flight
// loads and LRU bookkeeping never chase moving ids. The solo path constructs
// the file fully enabled and behaves exactly as before.
#pragma once

#include <optional>
#include <vector>

#include "alg/molecule.h"
#include "base/types.h"

namespace rispp {

enum class ContainerState { kEmpty, kLoading, kReady };

struct AtomContainer {
  ContainerState state = ContainerState::kEmpty;
  AtomTypeId type = 0;        // valid unless kEmpty
  Cycles last_used = 0;       // for LRU eviction among superfluous atoms
  bool enabled = true;        // disabled = outside the owner's current quota
};

class ContainerFile {
 public:
  /// Fully enabled file (the solo path).
  ContainerFile(unsigned count, std::size_t atom_type_dimension);
  /// Tenant view: `count` physical slots, the first `enabled_count` enabled.
  ContainerFile(unsigned count, std::size_t atom_type_dimension, unsigned enabled_count);

  /// Physical slot count (stable id space).
  unsigned size() const { return static_cast<unsigned>(containers_.size()); }
  /// Enabled slot count — the owner's current budget. Selection and
  /// scheduling must use this, never size().
  unsigned active() const { return active_; }
  const AtomContainer& container(ContainerId id) const;
  bool enabled(ContainerId id) const { return container(id).enabled; }

  /// Atoms usable by SIs right now (kReady only).
  const Molecule& ready_atoms() const { return ready_; }

  /// Marks a container as the target of a reconfiguration for `type`
  /// (overwriting whatever it held). The caller picked the victim.
  void begin_load(ContainerId id, AtomTypeId type);
  /// Reconfiguration finished; the atom becomes usable.
  void complete_load(ContainerId id);

  /// Removes `id` from the quota, destroying any ready atom it held (the
  /// cross-tenant eviction primitive). Must not be loading. Returns true if
  /// a ready atom was evicted.
  bool disable(ContainerId id);
  /// Returns a disabled container to the quota (it re-enters empty).
  void enable(ContainerId id);

  /// Bumps the LRU stamp of one ready atom of each type in `used` (SI
  /// execution touches its atoms).
  void touch(const Molecule& used, Cycles now);

  /// First enabled empty container, if any.
  std::optional<ContainerId> find_empty() const;
  /// All ready containers holding `type`.
  std::vector<ContainerId> ready_of_type(AtomTypeId type) const;

 private:
  std::vector<AtomContainer> containers_;
  Molecule ready_;  // cached kReady counts per type
  unsigned active_ = 0;
};

}  // namespace rispp
