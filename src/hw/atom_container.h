// The Atom Container (AC) file: the fixed set of small reconfigurable
// regions, each of which holds at most one atom (§3).
#pragma once

#include <optional>
#include <vector>

#include "alg/molecule.h"
#include "base/types.h"

namespace rispp {

enum class ContainerState { kEmpty, kLoading, kReady };

struct AtomContainer {
  ContainerState state = ContainerState::kEmpty;
  AtomTypeId type = 0;        // valid unless kEmpty
  Cycles last_used = 0;       // for LRU eviction among superfluous atoms
};

class ContainerFile {
 public:
  ContainerFile(unsigned count, std::size_t atom_type_dimension);

  unsigned size() const { return static_cast<unsigned>(containers_.size()); }
  const AtomContainer& container(ContainerId id) const;

  /// Atoms usable by SIs right now (kReady only).
  const Molecule& ready_atoms() const { return ready_; }

  /// Marks a container as the target of a reconfiguration for `type`
  /// (overwriting whatever it held). The caller picked the victim.
  void begin_load(ContainerId id, AtomTypeId type);
  /// Reconfiguration finished; the atom becomes usable.
  void complete_load(ContainerId id);

  /// Bumps the LRU stamp of one ready atom of each type in `used` (SI
  /// execution touches its atoms).
  void touch(const Molecule& used, Cycles now);

  /// First empty container, if any.
  std::optional<ContainerId> find_empty() const;
  /// All ready containers holding `type`.
  std::vector<ContainerId> ready_of_type(AtomTypeId type) const;

 private:
  std::vector<AtomContainer> containers_;
  Molecule ready_;  // cached kReady counts per type
};

}  // namespace rispp
