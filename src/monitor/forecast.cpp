#include "monitor/forecast.h"

#include "base/check.h"

namespace rispp {

ExecutionMonitor::ExecutionMonitor(std::size_t hot_spot_count, std::size_t si_count)
    : forecast_(hot_spot_count, std::vector<std::uint64_t>(si_count, 0)),
      last_(hot_spot_count, std::vector<std::uint64_t>(si_count, 0)),
      counting_(si_count, 0) {}

void ExecutionMonitor::seed(HotSpotId hs, SiId si, std::uint64_t expected) {
  RISPP_CHECK(hs < forecast_.size() && si < counting_.size());
  forecast_[hs][si] = expected;
}

void ExecutionMonitor::begin_hot_spot(HotSpotId hs) {
  RISPP_CHECK_MSG(!active_, "previous hot spot not closed");
  RISPP_CHECK(hs < forecast_.size());
  current_ = hs;
  active_ = true;
  std::fill(counting_.begin(), counting_.end(), 0);
}

void ExecutionMonitor::record_execution(SiId si) {
  RISPP_CHECK(active_ && si < counting_.size());
  ++counting_[si];
}

void ExecutionMonitor::record_executions(SiId si, std::uint64_t n) {
  RISPP_CHECK(active_ && si < counting_.size());
  counting_[si] += n;
}

void ExecutionMonitor::end_hot_spot() {
  RISPP_CHECK(active_);
  active_ = false;
  auto& fc = forecast_[current_];
  auto& last = last_[current_];
  for (std::size_t si = 0; si < counting_.size(); ++si) {
    last[si] = counting_[si];
    // Exponential weighted update, alpha = 1/2 (one adder + one shift).
    fc[si] = (fc[si] + counting_[si]) / 2;
  }
}

const std::vector<std::uint64_t>& ExecutionMonitor::forecast(HotSpotId hs) const {
  RISPP_CHECK(hs < forecast_.size());
  return forecast_[hs];
}

const std::vector<std::uint64_t>& ExecutionMonitor::last_measured(HotSpotId hs) const {
  RISPP_CHECK(hs < last_.size());
  return last_[hs];
}

}  // namespace rispp
