// Online monitoring of SI execution frequencies (§3.1, task II of the
// Run-Time Manager; the light-weight hardware is the SASO'07 companion
// work [24]).
//
// Per (hot spot, SI) the monitor keeps a forecast of how often the SI will
// execute in the next instance of that hot spot. After a hot spot finishes,
// the measured count is folded into the forecast with an exponential
// weighted update  f' = (f + measured) / 2  — one adder and one shift in
// hardware. Forecasts feed both Molecule selection and the HEF benefit.
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.h"

namespace rispp {

using HotSpotId = std::uint16_t;

class ExecutionMonitor {
 public:
  ExecutionMonitor(std::size_t hot_spot_count, std::size_t si_count);

  /// Design-time seed for the very first execution of a hot spot.
  void seed(HotSpotId hs, SiId si, std::uint64_t expected);

  /// Starts counting a new instance of `hs` (any previous instance must have
  /// been closed with end_hot_spot).
  void begin_hot_spot(HotSpotId hs);
  void record_execution(SiId si);
  /// Bulk form for batched replay: equivalent to `n` record_execution calls.
  void record_executions(SiId si, std::uint64_t n);
  /// Folds counts into forecasts.
  void end_hot_spot();

  /// Forecast per SiId for the next instance of `hs`.
  const std::vector<std::uint64_t>& forecast(HotSpotId hs) const;

  /// Measured counts of the *last finished* instance of `hs` (testing and
  /// Figure 8 style analysis).
  const std::vector<std::uint64_t>& last_measured(HotSpotId hs) const;

  bool in_hot_spot() const { return active_; }

 private:
  std::vector<std::vector<std::uint64_t>> forecast_;  // [hs][si]
  std::vector<std::vector<std::uint64_t>> last_;      // [hs][si]
  std::vector<std::uint64_t> counting_;               // [si], current instance
  HotSpotId current_ = 0;
  bool active_ = false;
};

}  // namespace rispp
