// The fabric arbiter: one physical reconfigurable fabric shared by N tenant
// run-time managers (DESIGN §9).
//
// The paper's run-time system assumes a single application owns every Atom
// Container and the one reconfiguration port. The arbiter generalizes that
// to N concurrent applications on one device:
//
//  - *Containers* — each tenant views the fabric through its own
//    ContainerFile (stable ids, physical size = whole device) of which its
//    current quota is enabled. Quotas always sum to the device size.
//    Partitioning is kStatic (quotas fixed at setup) or kBenefitWeighted
//    (quotas follow an exponential average of each tenant's forecast mass,
//    re-apportioned by largest remainder at decision points — a tenant
//    reclaims containers by evicting another tenant's least-valuable atoms,
//    never below the victim's floor).
//  - *The port* — one atom loads at a time device-wide. Grants are stride-
//    scheduled weighted round-robin among the requesting tenant and every
//    tenant with a standing claim (a claim is registered when a request is
//    denied and withdrawn when the claimant's queue drains or it retires).
//    A tenant denied `starvation_bound` consecutive grant epochs wins the
//    next free port unconditionally.
//
// A 1-tenant arbiter degenerates exactly to the solo path: the quota is the
// whole device, round-robin has one contender, and every grant decision
// reduces to "is the port free" — tests/multitenant_test.cpp asserts the
// resulting SimStats are byte-identical to the pre-arbiter RunTimeManager.
//
// Observability: rtm.arbiter.{grants,evictions,port_wait_cycles} counters
// and one simulated-time lane per tenant on the "fabric arbiter" track (the
// multi-tenant version of Figure 4's port timeline).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "base/metrics.h"
#include "base/trace_event.h"
#include "base/types.h"
#include "dpg/atom_library.h"
#include "hw/atom_container.h"
#include "hw/bitstream.h"
#include "hw/reconfig_port.h"

namespace rispp {

using TenantId = std::uint16_t;

enum class PartitionMode : std::uint8_t {
  kStatic,           // quotas fixed at setup
  kBenefitWeighted,  // quotas follow forecast-mass EMAs (largest remainder)
};

struct ArbiterConfig {
  /// Physical Atom Containers on the device; tenant quotas sum to this.
  unsigned total_containers = 10;
  BitstreamModel bitstream;
  PartitionMode partition = PartitionMode::kStatic;
  /// A tenant denied this many consecutive grant epochs takes the next free
  /// port regardless of weighted round-robin.
  unsigned starvation_bound = 4;
  /// Decision points between two benefit-weighted re-apportionments.
  std::uint64_t rebalance_period = 8;
};

struct TenantConfig {
  /// Initial Atom-Container quota.
  unsigned quota = 0;
  /// Rebalancing and cross-tenant eviction never push the tenant below this.
  unsigned floor = 1;
  /// Weighted-round-robin port share.
  unsigned weight = 1;
};

class FabricArbiter {
 public:
  /// At most this many tenants per device (keeps tenant storage stable so
  /// container/file references handed to RTMs never move).
  static constexpr std::size_t kMaxTenants = 64;

  explicit FabricArbiter(const ArbiterConfig& config);

  /// Registers a tenant (call every add_tenant before constructing the
  /// tenants' RunTimeManagers). Quotas must sum to total_containers by the
  /// time the simulation starts — check_invariants() verifies.
  TenantId add_tenant(const TenantConfig& config);

  /// Called by the tenant's RunTimeManager at construction: materializes the
  /// tenant's container view (physical size = the device, quota enabled)
  /// over the tenant's atom-type space, and records the library the port
  /// needs for load timing. `lru_stamps` points at the RTM's per-type LRU
  /// stamp array (read during cross-tenant victim selection; must outlive
  /// the arbiter's use).
  void bind(TenantId t, const AtomLibrary* library, std::size_t atom_type_dimension,
            const std::vector<Cycles>* lru_stamps);

  ContainerFile& containers(TenantId t);
  const ContainerFile& containers(TenantId t) const;

  // -- The single reconfiguration port ---------------------------------
  using InflightLoad = ReconfigPort::InflightLoad;

  /// The tenant's own in-flight load (independent of who holds the port
  /// *now* — a finished load stays visible until its owner retires it).
  const std::optional<InflightLoad>& inflight(TenantId t) const;

  /// Asks for the port at `now` to load `type` into the tenant's container
  /// `container`. Returns nullopt on a grant (the load is in flight);
  /// otherwise the denial registers a claim and returns a retry hint
  /// strictly after `now` (the tenant re-asks at its next reconfiguration
  /// event, bounded by the hint on the fast-forward paths).
  std::optional<Cycles> try_start(TenantId t, AtomTypeId type, ContainerId container,
                                  Cycles now);

  /// Denial-only fast path: would try_start(t, type, *, now) be denied? On a
  /// denial this performs exactly try_start's denial bookkeeping (claim,
  /// starvation accounting) and returns the same retry hint; on nullopt the
  /// arbiter state is untouched and an immediate try_start at the same `now`
  /// is guaranteed to grant. Lets the RTM skip victim selection (an
  /// O(containers) scan) on the contended retry path.
  std::optional<Cycles> precheck(TenantId t, AtomTypeId type, Cycles now);

  /// Retires the tenant's finished load (finishes_at <= now).
  InflightLoad retire(TenantId t, Cycles now);

  /// The tenant's load queue drained — its port claim (if any) lapses.
  void withdraw_claim(TenantId t);

  /// The tenant's trace ended: claim withdrawn and the tenant leaves the
  /// round-robin (its containers keep their quota until a rebalance).
  void retire_tenant(TenantId t);

  // -- Decision points ---------------------------------------------------
  /// Called at every hot-spot entry before the tenant decides.
  /// `forecast_mass` is the summed expected executions of the hot spot's
  /// SIs — the benefit signal driving kBenefitWeighted quotas.
  void on_decision_point(TenantId t, std::uint64_t forecast_mass, Cycles now);

  /// Bumped whenever the arbiter mutates the tenant's containers from
  /// *outside* the tenant's own calls (quota rebalance evicting its atoms);
  /// the tenant's RTM invalidates its latency cache when it observes a new
  /// generation. last_fabric_event() is the simulated time of the mutation.
  std::uint64_t fabric_generation(TenantId t) const;
  Cycles last_fabric_event(TenantId t) const;

  // -- Event horizon (DESIGN §9.1) ---------------------------------------
  /// "No pending fabric event": next_event_cycle / quiescent_until return
  /// this when nothing scheduled can ever affect the tenant/device.
  static constexpr Cycles kNoEvent = std::numeric_limits<Cycles>::max();

  /// Earliest future cycle at which any pending fabric event can affect
  /// tenant `t`, assuming no tenant issues further port requests before
  /// then: its own in-flight load's completion, the port becoming free for
  /// its standing claim (with any starvation-bound promotion folded into the
  /// grant it then competes for), or — under kBenefitWeighted with more than
  /// one tenant — `now` itself, because any other tenant's next decision
  /// point may hit a rebalance_period boundary and evict this tenant's
  /// atoms. kNoEvent means the tenant is beyond every horizon: nothing the
  /// fabric has scheduled can reach it. The value is valid until the
  /// tenant's own next arbiter call or a fabric_generation(t) bump,
  /// whichever comes first (the co-simulation recomputes per epoch).
  Cycles next_event_cycle(TenantId t, Cycles now) const;

  /// Device-wide horizon: the earliest pending fabric event across all
  /// tenants (min in-flight completion; `now` while any claim stands or a
  /// weighted rebalance could fire). kNoEvent = the device is quiescent —
  /// with no tenant asking for the port, fabric state cannot change at all.
  Cycles quiescent_until(Cycles now) const;

  /// True while a quota rebalance can fire at a future decision point
  /// (kBenefitWeighted with more than one registered tenant). While false,
  /// fabric_generation(t) is frozen for every tenant and decision points
  /// commute across tenants — the precondition for the co-simulation's
  /// out-of-order fast-forward (DESIGN §9.1).
  bool rebalance_possible() const {
    return config_.partition == PartitionMode::kBenefitWeighted && tenants_.size() > 1;
  }

  // -- Introspection ------------------------------------------------------
  std::size_t tenant_count() const { return tenants_.size(); }
  unsigned quota(TenantId t) const;
  unsigned floor(TenantId t) const;
  std::uint64_t completed_loads(TenantId t) const;
  Cycles load_cycles(TenantId t, AtomTypeId type) const;
  std::uint64_t grants() const { return grants_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t port_wait_cycles() const { return port_wait_cycles_; }

  /// Hard checks: every bound tenant's quota within [floor, total] and all
  /// quotas summing to total_containers (once every tenant is bound).
  void check_invariants() const;

 private:
  struct Tenant {
    TenantConfig config;
    const AtomLibrary* library = nullptr;
    const std::vector<Cycles>* lru_stamps = nullptr;
    std::optional<ContainerFile> file;
    std::optional<InflightLoad> inflight;
    std::uint64_t completed_loads = 0;
    // Stride-scheduled weighted round-robin: lowest pass wins; a grant
    // advances the winner's pass by its stride (inversely ∝ weight).
    std::uint64_t pass = 0;
    std::uint64_t stride = 0;
    bool claim = false;
    Cycles waiting_since = 0;
    std::uint64_t last_denied_epoch = ~std::uint64_t{0};
    unsigned denied_epochs = 0;
    bool retired = false;
    // Benefit EMA for kBenefitWeighted quotas.
    double benefit_ema = 0.0;
    // External-mutation generation (see fabric_generation()).
    std::uint64_t mutation_gen = 0;
    Cycles mutation_now = 0;
    // Tracing: one simulated-time lane per tenant; type names interned lazily.
    TraceLane lane = 0;
    std::vector<const char*> traced_type_names;
    // Per-tenant distribution series (DESIGN §7), resolved once in bind() so
    // the grant/eviction hot paths never touch the registry lock.
    MetricHistogram* port_wait_hist = nullptr;
    MetricHistogram* victim_age_hist = nullptr;
  };

  Tenant& tenant(TenantId t);
  const Tenant& tenant(TenantId t) const;
  /// Winner of the free port among `asker` and all standing claimants.
  TenantId pick_winner(TenantId asker) const;
  /// try_start's denial bookkeeping (claim registration + per-grant-epoch
  /// starvation accounting); returns the retry hint.
  Cycles deny(Tenant& ten, Cycles now, Cycles duration);
  /// Re-apportions quotas to the benefit-weighted entitlements.
  void rebalance(Cycles now);
  /// Disables up to `count` of the tenant's least-valuable enabled
  /// containers (never kLoading); returns how many were disabled.
  unsigned shrink_tenant(TenantId t, unsigned count, Cycles now);

  ArbiterConfig config_;
  std::vector<Tenant> tenants_;
  Cycles busy_until_ = 0;
  std::uint64_t grants_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t port_wait_cycles_ = 0;
  // Atomic so the co-simulation's parallel quiescent-epoch sweep (which only
  // runs while rebalance_possible() is false, i.e. the count cannot trigger
  // a rebalance) can count decision points from worker threads.
  std::atomic<std::uint64_t> decision_points_{0};
};

}  // namespace rispp
