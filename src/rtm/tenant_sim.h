// Multi-tenant co-simulation: N traces replayed against N tenant RTMs of one
// FabricArbiter, interleaved at hot-spot-instance granularity (DESIGN §9).
//
// Each tenant keeps its own simulated clock (its application's cycle count);
// the fabric events — port grants and quota moves — are serialized in global
// simulated time by always stepping the tenant whose clock is furthest
// behind. Instance granularity is exact enough because a tenant only *asks*
// for the port at its own reconfiguration events, and those all carry its own
// timestamps; the min-clock order just guarantees no tenant asks for the port
// "in the past" of a grant another tenant already received more than one
// instance ahead. With one tenant this degenerates to run_trace(kBatched) and
// is bit-identical to it.
//
// Two co-simulation modes produce bit-exact identical results:
//  - kReference: one instance per min-clock pick, O(n) scan — the oracle.
//  - kFastForward (DESIGN §9.1): epoch-based. The min-clock pick comes from
//    a binary heap keyed (clock, tenant id); the picked tenant replays
//    instances until its clock passes the runner-up (identical order to the
//    reference), then — while the arbiter's event horizon reports no pending
//    fabric event and each upcoming entry probes port-silent — keeps
//    fast-forwarding past the runner-up (out of order, but every skipped-over
//    operation commutes). Optionally, tenants of one device step in parallel
//    during quiescent epochs (CosimOptions::pool), with a deterministic
//    thread-count-invariant merge.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "rtm/fabric_arbiter.h"
#include "rtm/run_time_manager.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace rispp {

class ThreadPool;

/// One tenant of the co-simulation. The RTM must have been constructed with
/// config.arbiter = the arbiter passed to run_tenants and config.tenant =
/// this tenant id.
struct TenantRun {
  TenantId tenant = 0;
  const WorkloadTrace* trace = nullptr;
  RunTimeManager* rtm = nullptr;
  /// Optional per-tenant stats (forces the per-run replay path, like
  /// run_trace with stats).
  SimStats* stats = nullptr;
};

enum class CosimMode : std::uint8_t {
  kFastForward,  // epoch-based fast-forward (the default; bit-exact)
  kReference,    // instance-at-a-time min-clock stepping (the oracle)
};

struct CosimOptions {
  CosimMode mode = CosimMode::kFastForward;
  /// When set (kFastForward only), tenants of this device replay their
  /// port-silent prefixes in parallel during quiescent epochs. Results are
  /// thread-count-invariant: each tenant's prefix depends only on its own
  /// state. Ignored while the arbiter reports rebalance_possible().
  ThreadPool* pool = nullptr;
};

/// The fast-forward scheduler's pick queue: a binary min-heap keyed
/// (clock, tenant id) so ties break to the lowest id exactly like the
/// reference's linear scan. Inline so micro_ops can bench it directly.
class MinClockHeap {
 public:
  struct Item {
    Cycles clock = 0;
    std::uint32_t id = 0;
  };

  /// The reference pick order: earlier clock first, lower id on ties.
  static bool before(const Item& a, const Item& b) {
    return a.clock < b.clock || (a.clock == b.clock && a.id < b.id);
  }

  void reset(std::size_t capacity) {
    items_.clear();
    items_.reserve(capacity);
  }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  const Item& top() const { return items_.front(); }
  void push(Item item) {
    items_.push_back(item);
    std::push_heap(items_.begin(), items_.end(), &MinClockHeap::after);
  }
  Item pop() {
    std::pop_heap(items_.begin(), items_.end(), &MinClockHeap::after);
    const Item item = items_.back();
    items_.pop_back();
    return item;
  }

 private:
  // std:: heap algorithms build max-heaps: "greater" under this comparator
  // (i.e. picked later) sinks, so the front is the reference's next pick.
  static bool after(const Item& a, const Item& b) { return before(b, a); }

  std::vector<Item> items_;
};

/// Replays every tenant's trace to completion and returns one SimResult per
/// tenant (same semantics as run_trace per tenant: total_cycles is the
/// tenant's own clock, atom_loads its completed port loads — an empty trace
/// yields total_cycles 0 and whatever loads already completed). Tenants that
/// finish retire from the arbiter so the remaining tenants' port claims
/// stay live. Both CosimModes return bit-identical results
/// (tests/cosim_test.cpp byte-compares SimResult + SimStats across
/// schedulers, partition modes, tenant counts and thread counts).
std::vector<SimResult> run_tenants(FabricArbiter& arbiter, std::span<TenantRun> tenants,
                                   const CosimOptions& options = {});

}  // namespace rispp
