// Multi-tenant co-simulation: N traces replayed against N tenant RTMs of one
// FabricArbiter, interleaved at hot-spot-instance granularity (DESIGN §9).
//
// Each tenant keeps its own simulated clock (its application's cycle count);
// the fabric events — port grants and quota moves — are serialized in global
// simulated time by always stepping the tenant whose clock is furthest
// behind. Instance granularity is exact enough because a tenant only *asks*
// for the port at its own reconfiguration events, and those all carry its own
// timestamps; the min-clock order just guarantees no tenant asks for the port
// "in the past" of a grant another tenant already received more than one
// instance ahead. With one tenant this degenerates to run_trace(kBatched) and
// is bit-identical to it.
#pragma once

#include <span>
#include <vector>

#include "rtm/fabric_arbiter.h"
#include "rtm/run_time_manager.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace rispp {

/// One tenant of the co-simulation. The RTM must have been constructed with
/// config.arbiter = the arbiter passed to run_tenants and config.tenant =
/// this tenant id.
struct TenantRun {
  TenantId tenant = 0;
  const WorkloadTrace* trace = nullptr;
  RunTimeManager* rtm = nullptr;
  /// Optional per-tenant stats (forces the per-run replay path, like
  /// run_trace with stats).
  SimStats* stats = nullptr;
};

/// Replays every tenant's trace to completion and returns one SimResult per
/// tenant (same semantics as run_trace per tenant: total_cycles is the
/// tenant's own clock, atom_loads its completed port loads). Tenants that
/// finish retire from the arbiter so the remaining tenants' port claims
/// stay live.
std::vector<SimResult> run_tenants(FabricArbiter& arbiter, std::span<TenantRun> tenants);

}  // namespace rispp
