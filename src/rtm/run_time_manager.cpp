#include "rtm/run_time_manager.h"

#include <algorithm>
#include <chrono>

#include "base/check.h"
#include "base/clock.h"
#include "base/log.h"
#include "base/metrics.h"
#include "hw/eviction.h"

namespace rispp {

std::uint64_t rtm_domain_digest(const RtmConfig& config) {
  // See the declaration: fold every knob that changes decide()'s output for
  // an identical key. Seeded with an arbitrary odd constant so digest 0
  // never collides with "no digest".
  return fingerprint_mix(0x9e3779b97f4a7c15ull,
                         static_cast<std::uint64_t>(config.forecast_mode));
}

RunTimeManager::RunTimeManager(const SpecialInstructionSet* set, std::size_t hot_spot_count,
                               const RtmConfig& config)
    : set_(set),
      config_(config),
      monitor_(hot_spot_count, set->si_count()),
      seeds_(hot_spot_count, std::vector<std::uint64_t>(set->si_count(), 0)),
      containers_(config.arbiter != nullptr ? 0 : config.container_count,
                  set->atom_type_count()),
      port_(&set->library(), config.bitstream),
      demand_(set->atom_type_count()),
      soft_demand_(set->atom_type_count()),
      hot_spot_sup_(hot_spot_count, Molecule(set->atom_type_count())),
      successor_(hot_spot_count, 0),
      last_forecast_(hot_spot_count),
      last_selection_(hot_spot_count),
      entry_seen_(hot_spot_count, false),
      prefetch_demand_(set->atom_type_count()),
      type_last_used_(set->atom_type_count(), 0),
      cached_molecule_(set->si_count(), kSoftwareMolecule),
      span_step_gen_(set->si_count(), 0),
      span_step_(set->si_count(), 0),
      span_touch_gen_(set->si_count(), 0),
      span_last_start_(set->si_count(), 0),
      upgrade_lane_(trace_new_lane()) {
  RISPP_CHECK(config_.scheduler != nullptr);
  trace_name_lane(TraceTrack::kExecutor, upgrade_lane_, "SI upgrades");
  if (config_.arbiter != nullptr) {
    config_.arbiter->bind(config_.tenant, &set_->library(), set_->atom_type_count(),
                          &type_last_used_);
    cf_ = &config_.arbiter->containers(config_.tenant);
  } else {
    cf_ = &containers_;
  }
  if (config_.payback_horizon > 0)
    payback_cycles_per_atom_ =
        cycles_from_us(config_.bitstream.average_reconfig_us(set_->library())) /
        config_.payback_horizon;
  if (config_.shared_decision_cache != nullptr)
    shared_domain_ = config_.shared_decision_cache->register_domain(
        fingerprint(*set_), config_.scheduler->name(), payback_cycles_per_atom_,
        rtm_domain_digest(config_));
}

void RunTimeManager::seed_forecast(HotSpotId hs, SiId si, std::uint64_t expected) {
  RISPP_CHECK_MSG(!seen_any_hot_spot_,
                  "seed_forecast is a design-time profile: seeding after the first "
                  "hot-spot entry would silently lose to the adapted forecast");
  RISPP_CHECK(hs < seeds_.size() && si < seeds_[hs].size());
  RISPP_CHECK_MSG(seeds_[hs][si] == 0, "re-seeding forecast for hot spot "
                                           << hs << ", SI " << si
                                           << ": a profile has one value per pair");
  monitor_.seed(hs, si, expected);
  seeds_[hs][si] = expected;
}

void RunTimeManager::on_hot_spot_entry(const WorkloadTrace& trace, std::size_t instance,
                                       Cycles now) {
  advance_reconfig(now);

  const HotSpotId hs = trace.instances[instance].hot_spot;
  const HotSpotInfo& info = trace.hot_spots[hs];
  // First-order successor prediction for prefetching.
  if (seen_any_hot_spot_) successor_[current_hot_spot_] = hs;
  current_hot_spot_ = hs;
  seen_any_hot_spot_ = true;
  prefetch_computed_ = false;
  prefetch_loads_.clear();
  monitor_.begin_hot_spot(hs);

  const std::vector<std::uint64_t>* forecast = nullptr;
  switch (config_.forecast_mode) {
    case ForecastMode::kMonitored:
      forecast = &monitor_.forecast(hs);
      break;
    case ForecastMode::kStaticSeeds:
      forecast = &seeds_[hs];
      break;
    case ForecastMode::kOracle:
      oracle_forecast_.assign(set_->si_count(), 0);
      for (SiId si : trace.instances[instance].executions) ++oracle_forecast_[si];
      forecast = &oracle_forecast_;
      break;
  }

  // Multi-tenant: report the forecast mass (the benefit signal) to the
  // arbiter, which may rebalance quotas — so read the budget only after.
  if (config_.arbiter != nullptr) {
    std::uint64_t mass = 0;
    for (SiId si : info.sis) mass += (*forecast)[si];
    config_.arbiter->on_decision_point(config_.tenant, mass, now);
  }

  // III) determine re-loading decisions: selection, then scheduling (memoized
  // — monitored forecasts converge after warm-up, so the steady state of a
  // long replay is pure cache hits).
  const DecisionEntry& decision = decide(info.sis, *forecast, cf_->active());
  selection_ = decision.selection;

  // Mispredict → reconfig churn (ROADMAP traffic-robustness metric): the
  // forecast drifted since this hot spot's previous entry AND that drift
  // flipped the selection, so the loads below are churn the forecaster
  // caused. Oracle forecasts track the true workload — a change there is a
  // real workload shift, not a mispredict.
  if (config_.forecast_mode != ForecastMode::kOracle && entry_seen_[hs] &&
      *forecast != last_forecast_[hs] && decision.selection != last_selection_[hs]) {
    static MetricCounter& mispredicts = metric_counter("rtm.forecast.mispredicts");
    mispredicts.add();
    static MetricHistogram& churn =
        metric_histogram("rtm.forecast.mispredict_reconfig_loads");
    churn.record(decision.loads.size());
  }
  entry_seen_[hs] = true;
  last_forecast_[hs] = *forecast;
  last_selection_[hs] = decision.selection;

  // The new hot spot overrides whatever the previous one still wanted to
  // load (the in-flight atom, if any, completes normally).
  pending_loads_.assign(decision.loads.begin(), decision.loads.end());
  demand_.assign_zero(set_->atom_type_count());
  for (const SiRef& s : selection_)
    join_into(demand_, set_->si(s.si).molecule(s.mol).atoms);
  hot_spot_sup_[hs] = demand_;
  soft_demand_.assign_zero(set_->atom_type_count());
  for (HotSpotId other = 0; other < hot_spot_sup_.size(); ++other)
    if (other != hs) join_into(soft_demand_, hot_spot_sup_[other]);

  RISPP_DEBUG("hot spot " << info.name << " @" << now << ": " << selection_.size()
                          << " molecules selected, " << pending_loads_.size()
                          << " atom loads scheduled by " << config_.scheduler->name());
  start_pending_loads(now);
}

void RunTimeManager::on_hot_spot_exit(Cycles) { monitor_.end_hot_spot(); }

ReconfigPort::InflightLoad RunTimeManager::fabric_retire(Cycles now) {
  return config_.arbiter != nullptr ? config_.arbiter->retire(config_.tenant, now)
                                    : port_.retire(now);
}

std::optional<Cycles> RunTimeManager::fabric_try_start(AtomTypeId type, ContainerId victim,
                                                       Cycles now) {
  if (config_.arbiter != nullptr)
    return config_.arbiter->try_start(config_.tenant, type, victim, now);
  port_.start(type, victim, now);
  return std::nullopt;
}

std::optional<Cycles> RunTimeManager::fabric_stall_bound(Cycles now) const {
  if (fabric_loading()) return fabric_finishes_at();
  // After advance_reconfig a standing denial's hint is strictly in the
  // future (the arbiter hints at least one load duration ahead), so the
  // fast-forward windows always make progress.
  if (config_.arbiter != nullptr && denied_until_ > now) return denied_until_;
  return std::nullopt;
}

void RunTimeManager::sync_fabric() {
  if (config_.arbiter == nullptr) return;
  const std::uint64_t gen = config_.arbiter->fabric_generation(config_.tenant);
  if (gen != fabric_gen_seen_) {
    // A quota rebalance evicted ready atoms behind our back.
    fabric_gen_seen_ = gen;
    if (cache_valid_) cache_event_now_ = config_.arbiter->last_fabric_event(config_.tenant);
    cache_valid_ = false;
  }
}

void RunTimeManager::advance_reconfig(Cycles now) {
  sync_fabric();
  while (fabric_loading() && fabric_finishes_at() <= now) {
    const auto done = fabric_retire(now);
    cf_->complete_load(done.container);
    if (cache_valid_) cache_event_now_ = done.finishes_at;
    cache_valid_ = false;
    start_pending_loads(done.finishes_at);
  }
  if (!fabric_loading()) start_pending_loads(now);
}

void RunTimeManager::start_pending_loads(Cycles now) {
  while (!fabric_loading() && !pending_loads_.empty()) {
    const AtomTypeId type = pending_loads_.front();
    // Ask for the port before scanning for a victim: on the contended retry
    // path nearly every ask is a denial, and precheck performs the identical
    // denial bookkeeping without the O(containers) victim scan. On nullopt
    // an immediate try_start at the same `now` is guaranteed to grant.
    if (config_.arbiter != nullptr) {
      if (const auto hint = config_.arbiter->precheck(config_.tenant, type, now)) {
        denied_until_ = *hint;
        return;
      }
    }
    const auto victim = pick_victim(*cf_, demand_, soft_demand_, type_last_used_);
    if (!victim.has_value()) {
      // Every container is pinned (in-flight loads); retry at the next
      // reconfiguration event.
      RISPP_DEBUG("load of atom type " << type << " deferred: no victim container");
      return;
    }
    // A denial must leave the container untouched (the claim stands; retry
    // at the hint) — unreachable after a clean precheck, kept for solo mode.
    if (const auto hint = fabric_try_start(type, *victim, now)) {
      denied_until_ = *hint;
      return;
    }
    denied_until_ = 0;
    pending_loads_.pop_front();
    cf_->begin_load(*victim, type);
    if (cache_valid_) cache_event_now_ = now;
    cache_valid_ = false;  // eviction may have removed a ready atom
  }

  // Port drained the current schedule: optionally prefetch the predicted
  // next hot spot's atoms. The current demand stays hard-pinned, so
  // prefetching can only consume containers the current hot spot spares.
  if (config_.enable_prefetch && !fabric_loading() && pending_loads_.empty()) {
    if (!prefetch_computed_) compute_prefetch();
    if (!prefetch_loads_.empty()) {
      // Neither demand changes while the loads drain; join once.
      Molecule hard = demand_;
      join_into(hard, prefetch_demand_);
      while (!fabric_loading() && !prefetch_loads_.empty()) {
        const AtomTypeId type = prefetch_loads_.front();
        if (config_.arbiter != nullptr) {
          if (const auto hint = config_.arbiter->precheck(config_.tenant, type, now)) {
            denied_until_ = *hint;
            return;
          }
        }
        const auto victim = pick_victim(*cf_, hard, soft_demand_, type_last_used_);
        if (!victim.has_value()) return;
        if (const auto hint = fabric_try_start(type, *victim, now)) {
          denied_until_ = *hint;
          return;
        }
        denied_until_ = 0;
        prefetch_loads_.pop_front();
        cf_->begin_load(*victim, type);
        if (cache_valid_) cache_event_now_ = now;
        cache_valid_ = false;
      }
    }
  }

  // Both queues drained: nothing left to ask the port for, so any standing
  // claim from an earlier denial lapses (other tenants stop yielding to us).
  if (config_.arbiter != nullptr && pending_loads_.empty() && prefetch_loads_.empty()) {
    config_.arbiter->withdraw_claim(config_.tenant);
    denied_until_ = 0;
  }
}

void RunTimeManager::compute_prefetch() {
  prefetch_computed_ = true;
  if (!seen_any_hot_spot_) return;
  const HotSpotId next = successor_[current_hot_spot_];
  if (next == current_hot_spot_) return;  // no prediction yet

  // Select and schedule for the predicted hot spot against what would be
  // resident, but never count on evicting current-demand atoms: the budget
  // is the containers minus the current selection's sup.
  const unsigned budget =
      cf_->active() > demand_.determinant()
          ? cf_->active() - demand_.determinant()
          : 0;
  if (budget == 0) return;

  // Which forecast predicts hot spot `next`'s executions:
  //  - kMonitored: the monitor's adapted forecast (the paper's system);
  //  - kStaticSeeds: the design-time profile, never adapted;
  //  - kOracle: the oracle only knows the *current* instance's exact counts
  //    (it reads trace.instances[instance].executions); no future instance
  //    of `next` has been reached yet, so oracle prefetch intentionally
  //    falls back to the monitored forecast rather than pretending to know
  //    counts it cannot have.
  const std::vector<std::uint64_t>* forecast = nullptr;
  switch (config_.forecast_mode) {
    case ForecastMode::kMonitored:
      forecast = &monitor_.forecast(next);
      break;
    case ForecastMode::kStaticSeeds:
      forecast = &seeds_[next];
      break;
    case ForecastMode::kOracle:
      forecast = &monitor_.forecast(next);
      break;
  }

  // Hot-spot SI lists live in the trace; we reconstruct them from the
  // forecast: any SI with a nonzero forecast for `next` belongs to it.
  // The prefetch selection may also use atoms the current hot spot already
  // holds (sharing), so the effective budget is |sup(next) ∪ demand| <= ACs;
  // we approximate by selecting under the remaining budget.
  prefetch_sis_.clear();
  for (SiId si = 0; si < set_->si_count(); ++si)
    if ((*forecast)[si] > 0) prefetch_sis_.push_back(si);
  if (prefetch_sis_.empty()) return;
  const DecisionEntry& decision = decide(prefetch_sis_, *forecast, budget);
  if (decision.selection.empty()) return;

  prefetch_demand_.assign_zero(set_->atom_type_count());
  for (const SiRef& s : decision.selection)
    join_into(prefetch_demand_, set_->si(s.si).molecule(s.mol).atoms);
  prefetch_loads_.assign(decision.loads.begin(), decision.loads.end());
  RISPP_DEBUG("prefetching " << prefetch_loads_.size() << " atoms for hot spot " << next);
}

bool RunTimeManager::entry_is_port_silent(const WorkloadTrace& trace,
                                          std::size_t instance) const {
  // Only meaningful under an arbiter, and only sound while quotas are
  // frozen: a pending rebalance could shrink cf_ between this probe and the
  // entry it predicts, invalidating the budget baked into the key below.
  if (config_.arbiter == nullptr || config_.arbiter->rebalance_possible()) return false;
  // Prefetch keeps asking the port after the schedule drains; the oracle
  // forecast is rebuilt per instance (cheap to probe but decide() bypasses
  // the memo's steady state far more often); the shared cache mutates under
  // a lock on every lookup. All three fall back to normal stepping.
  if (config_.enable_prefetch || config_.forecast_mode == ForecastMode::kOracle) return false;
  if (!config_.enable_decision_cache || config_.shared_decision_cache != nullptr) return false;
  // Anything queued or in flight makes the entry port-active by definition.
  if (!reconfig_idle()) return false;

  const HotSpotId hs = trace.instances[instance].hot_spot;
  const HotSpotInfo& info = trace.hot_spots[hs];
  // The forecast the entry will read. monitor_.forecast() is a plain getter
  // (folding happens at end_hot_spot, which already ran for the previous
  // instance), so this equals what on_hot_spot_entry sees.
  const std::vector<std::uint64_t>& forecast = config_.forecast_mode == ForecastMode::kMonitored
                                                   ? monitor_.forecast(hs)
                                                   : seeds_[hs];
  const Molecule& ready = cf_->ready_atoms();
  const unsigned budget = cf_->active();

  // decide()'s key digest, byte-for-byte (see the cached branch there).
  std::uint64_t hash = fingerprint_mix(0, info.sis.size());
  for (SiId si : info.sis) hash = fingerprint_mix(hash, si);
  for (std::uint64_t f : forecast) hash = fingerprint_mix(hash, f);
  for (std::size_t t = 0; t < ready.dimension(); ++t) hash = fingerprint_mix(hash, ready[t]);
  hash = fingerprint_mix(hash, budget);

  const auto bucket_it = decision_cache_.find(hash);
  if (bucket_it == decision_cache_.end()) return false;
  for (const auto entry_it : bucket_it->second) {
    if (entry_it->budget == budget && entry_it->sis == info.sis &&
        entry_it->forecast == forecast && entry_it->ready == ready) {
      // No splice, no counters: the replayed entry performs those itself.
      return entry_it->loads.empty();
    }
  }
  return false;
}

const RunTimeManager::DecisionEntry& RunTimeManager::decide(
    const std::vector<SiId>& sis, const std::vector<std::uint64_t>& forecast,
    unsigned budget) {
  const Molecule& ready = cf_->ready_atoms();
  static MetricCounter& hit_metric = metric_counter("rtm.decision_cache.hits");
  static MetricCounter& miss_metric = metric_counter("rtm.decision_cache.misses");
  static MetricCounter& eviction_metric = metric_counter("rtm.decision_cache.evictions");

  if (config_.shared_decision_cache != nullptr) {
    // Fleet mode: memoize through the process-wide cache so identical
    // decisions computed by other sessions replay here. The hit copies into
    // shared_scratch_ under the shard lock (the cache entry may be evicted
    // concurrently); the per-RTM counters keep counting so introspection and
    // fig8-style analysis work unchanged.
    fleet::SharedDecisionCache& cache = *config_.shared_decision_cache;
    if (cache.lookup(shared_domain_, config_.session_id, sis, forecast, ready, budget,
                     shared_scratch_)) {
      ++decision_cache_hits_;
      hit_metric.add();
      uncached_decision_.selection = std::move(shared_scratch_.selection);
      uncached_decision_.loads = std::move(shared_scratch_.loads);
      return uncached_decision_;
    }
    ++decision_cache_misses_;
    miss_metric.add();
    trace_begin_now(TraceTrack::kRtm, "decide");
    compute_decision(sis, forecast, budget, ready, uncached_decision_);
    trace_end_now(TraceTrack::kRtm, "decide");
    shared_scratch_.selection = uncached_decision_.selection;
    shared_scratch_.loads = uncached_decision_.loads;
    cache.insert(shared_domain_, config_.session_id, sis, forecast, ready, budget,
                 shared_scratch_);
    return uncached_decision_;
  }

  DecisionEntry* out = nullptr;
  if (config_.enable_decision_cache) {
    // FNV-1a digest of the full key; the bucket scan below compares the key
    // exactly, so the hash only routes, it never decides.
    std::uint64_t hash = fingerprint_mix(0, sis.size());
    for (SiId si : sis) hash = fingerprint_mix(hash, si);
    for (std::uint64_t f : forecast) hash = fingerprint_mix(hash, f);
    for (std::size_t t = 0; t < ready.dimension(); ++t) hash = fingerprint_mix(hash, ready[t]);
    hash = fingerprint_mix(hash, budget);

    const auto bucket_it = decision_cache_.find(hash);
    if (bucket_it != decision_cache_.end()) {
      for (const auto entry_it : bucket_it->second) {
        if (entry_it->budget == budget && entry_it->sis == sis &&
            entry_it->forecast == forecast && entry_it->ready == ready) {
          ++decision_cache_hits_;
          hit_metric.add();
          if (trace_enabled())
            trace_counter_now(TraceTrack::kRtm, "decision cache hits",
                              static_cast<double>(decision_cache_hits_));
          decision_lru_.splice(decision_lru_.begin(), decision_lru_, entry_it);
          return *entry_it;
        }
      }
    }

    // Miss past capacity: evict the least-recently-used decision (a future
    // miss on that key simply recomputes, so eviction is bit-exact).
    const std::size_t capacity = std::max<std::size_t>(1, config_.decision_cache_capacity);
    if (decision_lru_.size() >= capacity) {
      const auto victim = std::prev(decision_lru_.end());
      auto& victim_bucket = decision_cache_[victim->hash];
      victim_bucket.erase(std::find(victim_bucket.begin(), victim_bucket.end(), victim));
      if (victim_bucket.empty()) decision_cache_.erase(victim->hash);
      decision_lru_.erase(victim);
      ++decision_cache_evictions_;
      eviction_metric.add();
    }
    decision_lru_.emplace_front();
    decision_cache_[hash].push_back(decision_lru_.begin());
    out = &decision_lru_.front();
    out->hash = hash;
    out->sis = sis;
    out->forecast = forecast;
    out->ready = ready;
    out->budget = budget;
  } else {
    out = &uncached_decision_;
  }
  ++decision_cache_misses_;
  miss_metric.add();

  // The selection→schedule pipeline is the expensive path worth seeing on
  // the timeline; cache hits above return in nanoseconds and stay silent.
  trace_begin_now(TraceTrack::kRtm, "decide");
  compute_decision(sis, forecast, budget, ready, *out);
  trace_end_now(TraceTrack::kRtm, "decide");
  if (trace_enabled())
    trace_counter_now(TraceTrack::kRtm, "decision cache misses",
                      static_cast<double>(decision_cache_misses_));
  return *out;
}

void RunTimeManager::compute_decision(const std::vector<SiId>& sis,
                                      const std::vector<std::uint64_t>& forecast,
                                      unsigned budget, const Molecule& ready,
                                      DecisionEntry& out) {
  // Wall-clock cost of the uncached selection→schedule pipeline; cache hits
  // never get here, so this is the tail the memo layers are hiding.
  const auto started = std::chrono::steady_clock::now();
  SelectionRequest sel_req;
  sel_req.set = set_;
  sel_req.hot_spot_sis = sis;
  sel_req.expected_executions = forecast;
  sel_req.container_count = budget;
  out.selection = select_molecules(sel_req);

  ScheduleRequest sched_req;
  sched_req.set = set_;
  sched_req.selected = out.selection;
  sched_req.available = ready;
  sched_req.expected_executions = forecast;
  sched_req.payback_cycles_per_atom = payback_cycles_per_atom_;
  Schedule schedule = config_.scheduler->schedule(sched_req);
  out.loads = std::move(schedule.loads);
  static MetricHistogram& latency = metric_histogram("rtm.decision_latency_ns");
  latency.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count()));
}

void RunTimeManager::refresh_cache() {
  const Molecule& ready = cf_->ready_atoms();
  const bool traced = trace_enabled();
  if (traced && traced_si_names_.empty()) {
    traced_si_names_.reserve(set_->si_count());
    for (SiId si = 0; si < set_->si_count(); ++si)
      traced_si_names_.push_back(trace_intern(set_->si(si).name));
  }
  std::uint64_t upgrades = 0;
  for (SiId si = 0; si < set_->si_count(); ++si) {
    const MoleculeId mol = set_->fastest_available(si, ready);
    if (mol != cached_molecule_[si]) {
      // The gradual-upgrade property (§3.1): count latency-improving
      // transitions (trap → slow molecule → selected molecule). Downgrades
      // (an eviction took a ready atom) change the cache but are not
      // upgrades. cache_event_now_ holds the port event that invalidated
      // the cache, i.e. when the transition actually happened.
      if (set_->si(si).latency(mol) < set_->si(si).latency(cached_molecule_[si])) {
        ++upgrades;
        if (traced)
          trace_instant(TraceTrack::kExecutor, upgrade_lane_, traced_si_names_[si],
                        us_from_cycles(cache_event_now_));
      }
      cached_molecule_[si] = mol;
    }
  }
  if (upgrades > 0) {
    static MetricCounter& upgrade_metric = metric_counter("rtm.si_upgrades");
    upgrade_metric.add(upgrades);
  }
  cache_valid_ = true;
}

Cycles RunTimeManager::current_latency(SiId si) const {
  return set_->fastest_available_latency(si, cf_->ready_atoms());
}

Cycles RunTimeManager::si_execution_latency(SiId si, Cycles now) {
  advance_reconfig(now);
  if (!cache_valid_) refresh_cache();

  // I) control the SI execution: composed molecule or trap.
  const MoleculeId mol = cached_molecule_[si];

  // II) observe.
  monitor_.record_execution(si);

  if (mol != kSoftwareMolecule) {
    // LRU stamps per used atom type (coarse but O(#types of this molecule)).
    const Molecule& atoms = set_->si(si).molecule(mol).atoms;
    for (std::size_t t = 0; t < atoms.dimension(); ++t)
      if (atoms[t] != 0) type_last_used_[t] = now;
  }
  return set_->si(si).latency(mol);
}

Cycles RunTimeManager::si_execution_run_latency(SiId si, std::uint64_t count, Cycles now,
                                                Cycles per_execution_overhead,
                                                std::vector<LatencySegment>& segments) {
  // Fast-forward: an SI's latency only changes when an atom load completes on
  // the reconfiguration port (complete_load / the evictions of the loads it
  // chains), so all executions starting before the in-flight load's finish
  // time observe the same latency. Each iteration advances state to `now`,
  // reads the current latency, and jumps over every execution that fits
  // before the next port completion — O(port events), not O(count).
  Cycles total = 0;
  while (count > 0) {
    advance_reconfig(now);
    if (!cache_valid_) refresh_cache();
    const MoleculeId mol = cached_molecule_[si];
    const Cycles latency = set_->si(si).latency(mol);
    const Cycles step = latency + per_execution_overhead;
    std::uint64_t fit = count;
    const auto bound = fabric_stall_bound(now);
    if (bound.has_value() && step > 0) {
      const Cycles finish = *bound;  // > now after advance
      fit = std::min<std::uint64_t>(count, (finish - now + step - 1) / step);
    }
    monitor_.record_executions(si, fit);
    if (mol != kSoftwareMolecule) {
      // Only the last stamp of the stretch survives scalar replay.
      const Cycles last_start = now + (fit - 1) * step;
      const Molecule& atoms = set_->si(si).molecule(mol).atoms;
      for (std::size_t t = 0; t < atoms.dimension(); ++t)
        if (atoms[t] != 0) type_last_used_[t] = last_start;
    }
    append_latency_segment(segments, fit, latency);
    total += fit * latency;
    now += fit * step;
    count -= fit;
  }
  return total;
}

Cycles RunTimeManager::si_execution_span(std::span<const SiRun> runs, Cycles now,
                                         Cycles per_execution_overhead) {
  // Between two reconfiguration-port completions *every* SI's latency is
  // fixed, so a whole port-quiet window replays with pure arithmetic: per
  // run one step lookup, one monitor bulk-add and one clock advance. LRU
  // stamps are materialized once per window (only the latest stamp of each
  // atom type survives scalar replay). Bit-exact with scalar replay.
  std::size_t i = 0;
  std::uint64_t remaining = 0;  // rest of runs[i] when a window split it
  while (i < runs.size()) {
    // Open a window: advance reconfiguration state to `now`.
    advance_reconfig(now);
    if (!cache_valid_) refresh_cache();
    const auto bound = fabric_stall_bound(now);
    const bool bounded = bound.has_value();
    const Cycles window_end = bounded ? *bound : 0;
    ++span_gen_;
    span_touched_.clear();

    while (i < runs.size()) {
      if (bounded && now >= window_end) break;  // next execution sees the load
      const SiId si = runs[i].si;
      const std::uint64_t count = remaining > 0 ? remaining : runs[i].count;
      if (span_step_gen_[si] != span_gen_) {
        span_step_gen_[si] = span_gen_;
        span_step_[si] =
            set_->si(si).latency(cached_molecule_[si]) + per_execution_overhead;
      }
      const Cycles step = span_step_[si];
      std::uint64_t fit = count;
      if (bounded && step > 0)
        fit = std::min<std::uint64_t>(count, (window_end - now + step - 1) / step);
      if (fit > 0) {
        monitor_.record_executions(si, fit);
        span_last_start_[si] = now + (fit - 1) * step;
        if (span_touch_gen_[si] != span_gen_) {
          span_touch_gen_[si] = span_gen_;
          span_touched_.push_back(si);
        }
        now += fit * step;
      }
      if (fit == count) {
        ++i;
        remaining = 0;
      } else {
        remaining = count - fit;
        break;  // window exhausted; reopen at the port completion
      }
    }

    // Close the window: materialize the LRU stamps while the molecules the
    // window executed with are still cached (the next advance_reconfig may
    // change them).
    for (const SiId si : span_touched_) {
      const MoleculeId mol = cached_molecule_[si];
      if (mol == kSoftwareMolecule) continue;
      const Cycles last = span_last_start_[si];
      const Molecule& atoms = set_->si(si).molecule(mol).atoms;
      for (std::size_t t = 0; t < atoms.dimension(); ++t)
        if (atoms[t] != 0 && type_last_used_[t] < last) type_last_used_[t] = last;
    }
  }
  return now;
}

}  // namespace rispp
