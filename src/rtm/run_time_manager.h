// The RISPP Run-Time Manager (§3.1) — the ExecutionBackend that ties the
// whole platform together:
//
//   I)  controls SI execution: forwards an SI to the Atom Containers when a
//       molecule is composed, or lets it trap onto the base instruction set;
//   II) observes: per-hot-spot SI execution frequencies feed the forecast
//       (ExecutionMonitor) used as "expected executions";
//   III) decides re-loading: at every hot-spot entry it runs Molecule
//       selection under the AC budget, asks the configured SI Scheduler for
//       the atom loading sequence, and feeds the single reconfiguration
//       port, evicting superfluous atoms as loads start.
//
// The gradual-upgrade property falls out of (I): as loads complete, the
// fastest *available* molecule of each SI improves step by step.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/trace_event.h"

#include "fleet/shared_decision_cache.h"
#include "hw/atom_container.h"
#include "hw/bitstream.h"
#include "hw/reconfig_port.h"
#include "monitor/forecast.h"
#include "rtm/fabric_arbiter.h"
#include "sched/schedule.h"
#include "select/selection.h"
#include "sim/executor.h"

namespace rispp {

/// Where "expected SI executions" come from (the ablation_forecast bench
/// compares these; the paper's system is kMonitored).
enum class ForecastMode {
  kMonitored,    // online monitoring with exponential update (the paper)
  kStaticSeeds,  // design-time profile only, never adapted
  kOracle,       // exact counts of the upcoming instance (future knowledge)
};

struct RtmConfig {
  unsigned container_count = 10;
  BitstreamModel bitstream;
  /// The SI Scheduler strategy (not owned; must outlive the RTM).
  const AtomScheduler* scheduler = nullptr;
  ForecastMode forecast_mode = ForecastMode::kMonitored;
  /// Payback horizon for the upgrade cleaning rule: the number of hot-spot
  /// instances an atom is assumed to stay resident, over which its
  /// reconfiguration time must be repaid by expected latency savings
  /// (0 disables the rule).
  unsigned payback_horizon = 16;
  /// Cross-hot-spot prefetching (an extension beyond the paper): once the
  /// current hot spot's load sequence has drained, the idle port starts
  /// loading the schedule of the *predicted next* hot spot (first-order
  /// successor prediction), without evicting anything the current hot spot
  /// demands.
  bool enable_prefetch = false;
  /// Memoize the selection→schedule decision (DESIGN §6.2). The decision is
  /// a pure function of (hot-spot SI list, forecast vector, ready atoms,
  /// container budget) once the SI set, the scheduler strategy, and the
  /// payback constant are fixed — and those are per-RTM-instance constants —
  /// so replaying a cached decision is bit-exact by construction. Off is
  /// only useful for A/B tests and the cache's own equivalence tests.
  bool enable_decision_cache = true;
  /// Decision-cache entry bound: past it, the least-recently-used decision
  /// is evicted (misses recompute, so any capacity stays bit-exact).
  /// Steady-state workloads sit far below the default.
  std::size_t decision_cache_capacity = 4096;
  /// Process-wide decision cache shared across sessions (src/fleet). When
  /// set it replaces the per-instance cache above: decide() registers this
  /// RTM's constants (SI-set fingerprint, scheduler name, payback) as a
  /// cache domain and memoizes through the shared cache, so identical
  /// decisions computed by *other* sessions replay here. Bit-exact for the
  /// same reason the per-instance cache is: the domain makes the key
  /// complete. Not owned; must outlive the RTM.
  fleet::SharedDecisionCache* shared_decision_cache = nullptr;
  /// Identity of the owning session — only used for the shared cache's
  /// cross-session hit accounting, never for decisions.
  std::uint64_t session_id = 0;
  /// Multi-tenant mode (DESIGN §9): when set, this RTM is tenant `tenant` of
  /// the arbiter's shared fabric — the AC view and the reconfiguration port
  /// come from the arbiter (container_count is ignored) and every load is
  /// subject to port arbitration and quota rebalancing. Not owned; must
  /// outlive the RTM. A 1-tenant arbiter is bit-identical to the solo path.
  FabricArbiter* arbiter = nullptr;
  TenantId tenant = 0;
};

/// Digest of every RtmConfig knob that changes decide()'s output for an
/// identical (sis, forecast, ready atoms, budget) key. Folded into the shared
/// decision cache's domain identity so sessions configured differently never
/// share decisions: two domains with equal SI sets, schedulers and payback
/// constants but different digests stay apart. forecast_mode enters today;
/// fold any future decision-influencing knob here the same way.
std::uint64_t rtm_domain_digest(const RtmConfig& config);

class RunTimeManager final : public ExecutionBackend {
 public:
  RunTimeManager(const SpecialInstructionSet* set, std::size_t hot_spot_count,
                 const RtmConfig& config);

  /// Design-time forecast seed for the first instance of each hot spot.
  /// Seeds are a design-time profile: seeding after the first hot-spot entry
  /// or re-seeding a (hot spot, SI) pair that already holds a nonzero seed is
  /// a hard error (RISPP_CHECK) — both silently skewed kStaticSeeds results
  /// before, because monitor_.seed and seeds_ disagreed on "latest wins".
  void seed_forecast(HotSpotId hs, SiId si, std::uint64_t expected);

  // -- ExecutionBackend ------------------------------------------------
  std::string_view name() const override { return config_.scheduler->name(); }
  void on_hot_spot_entry(const WorkloadTrace& trace, std::size_t instance,
                         Cycles now) override;
  void on_hot_spot_exit(Cycles now) override;
  Cycles si_execution_latency(SiId si, Cycles now) override;
  Cycles si_execution_run_latency(SiId si, std::uint64_t count, Cycles now,
                                  Cycles per_execution_overhead,
                                  std::vector<LatencySegment>& segments) override;
  Cycles si_execution_span(std::span<const SiRun> runs, Cycles now,
                           Cycles per_execution_overhead) override;
  std::uint64_t completed_loads() const override {
    return config_.arbiter != nullptr ? config_.arbiter->completed_loads(config_.tenant)
                                      : port_.completed_loads();
  }

  // -- Co-simulation fast-forward (rtm/tenant_sim.cpp, DESIGN §9.1) ----
  /// No load in flight and both load queues drained: entering a hot spot is
  /// the only thing that could next touch the reconfiguration port.
  bool reconfig_idle() const {
    return !fabric_loading() && pending_loads_.empty() && prefetch_loads_.empty();
  }
  /// Conservative probe: would replaying `instance` be *port-silent* — no
  /// port request, no load completion, no queued load left behind? True only
  /// when the reconfig machinery is idle AND the entry's decision is already
  /// memoized with an empty load sequence, checked against the exact key
  /// decide() would build (same hash, same full-key compare) without
  /// touching the cache's recency state or counters. False negatives are
  /// fine (the caller falls back to normal stepping); false positives would
  /// break bit-exactness, so every precondition decide() bakes into the key
  /// (forecast mode, prefetch, private cache) is checked here. Only
  /// meaningful under an arbiter with rebalance_possible() == false — a
  /// port-silent entry then commutes with other tenants' steps (DESIGN §9.1).
  bool entry_is_port_silent(const WorkloadTrace& trace, std::size_t instance) const;

  // -- Introspection (tests, Figure 8 analysis) ------------------------
  const Molecule& ready_atoms() const { return cf_->ready_atoms(); }
  const std::vector<SiRef>& current_selection() const { return selection_; }
  const ExecutionMonitor& monitor() const { return monitor_; }
  /// Latency the SI would take if issued at the current state.
  Cycles current_latency(SiId si) const;
  /// Decision-cache effectiveness (both the entry and the prefetch path).
  std::uint64_t decision_cache_hits() const { return decision_cache_hits_; }
  std::uint64_t decision_cache_misses() const { return decision_cache_misses_; }
  std::uint64_t decision_cache_evictions() const { return decision_cache_evictions_; }
  std::size_t decision_cache_size() const { return decision_lru_.size(); }

 private:
  void advance_reconfig(Cycles now);
  void start_pending_loads(Cycles now);
  void compute_prefetch();

  // Fabric shims: the solo path owns a private port and a fully enabled
  // ContainerFile; under an arbiter the tenant shares the device port and
  // views its quota through the arbiter's file (cf_ points at whichever).
  bool fabric_loading() const {
    return config_.arbiter != nullptr ? config_.arbiter->inflight(config_.tenant).has_value()
                                      : port_.busy();
  }
  Cycles fabric_finishes_at() const {
    return config_.arbiter != nullptr
               ? config_.arbiter->inflight(config_.tenant)->finishes_at
               : port_.inflight()->finishes_at;
  }
  ReconfigPort::InflightLoad fabric_retire(Cycles now);
  /// nullopt = the load started; otherwise the arbiter's retry hint
  /// (strictly after `now`), recorded in denied_until_ by the caller.
  std::optional<Cycles> fabric_try_start(AtomTypeId type, ContainerId victim, Cycles now);
  /// The next simulated time at which this tenant's SI latencies can change:
  /// its own in-flight load's completion, or the arbiter's retry hint while
  /// it waits for the port. nullopt = no pending fabric event (latencies are
  /// stable until the next decision point). Bounds the fast-forward windows
  /// of si_execution_run_latency / si_execution_span.
  std::optional<Cycles> fabric_stall_bound(Cycles now) const;
  /// Consumes arbiter-side mutations (quota rebalances evicting our atoms)
  /// by invalidating the latency cache when the fabric generation moved.
  void sync_fabric();

  /// One memoized decision: the key (everything the selection→schedule
  /// pipeline reads that varies at run time) and the result. Schedule::steps
  /// are not kept — the RTM only replays the atom load sequence.
  struct DecisionEntry {
    std::vector<SiId> sis;
    std::vector<std::uint64_t> forecast;
    Molecule ready;
    unsigned budget = 0;
    std::vector<SiRef> selection;
    std::vector<AtomTypeId> loads;
    std::uint64_t hash = 0;  // key digest, kept so eviction finds the bucket
  };
  /// Runs selection + scheduling for (sis, forecast, current ready atoms,
  /// budget), or replays the memoized result verbatim on a key match. The
  /// returned reference lives in the cache: it is invalidated by the next
  /// decide() call, so consume it before any path that may decide again.
  const DecisionEntry& decide(const std::vector<SiId>& sis,
                              const std::vector<std::uint64_t>& forecast,
                              unsigned budget);
  /// The uncached selection→schedule pipeline behind decide().
  void compute_decision(const std::vector<SiId>& sis,
                        const std::vector<std::uint64_t>& forecast, unsigned budget,
                        const Molecule& ready, DecisionEntry& out);

  const SpecialInstructionSet* set_;
  RtmConfig config_;
  ExecutionMonitor monitor_;
  std::vector<std::vector<std::uint64_t>> seeds_;  // design-time profile copy
  ContainerFile containers_;  // solo mode only (empty under an arbiter)
  ReconfigPort port_;         // solo mode only (idle under an arbiter)
  ContainerFile* cf_ = nullptr;  // the AC view: &containers_ or the arbiter's
  Cycles denied_until_ = 0;      // arbiter retry hint from the last denial
  std::uint64_t fabric_gen_seen_ = 0;  // last consumed arbiter mutation gen

  std::vector<SiRef> selection_;
  Cycles payback_cycles_per_atom_ = 0;   // avg atom load time (payback rule)
  Molecule demand_;                      // sup of the current selection (hard)
  Molecule soft_demand_;                 // join of the other hot spots' sups
  std::vector<Molecule> hot_spot_sup_;   // last selection sup per hot spot
  std::deque<AtomTypeId> pending_loads_; // remaining SF output
  std::deque<AtomTypeId> prefetch_loads_;       // predicted next hot spot's SF
  std::vector<HotSpotId> successor_;            // last observed successor per hot spot
  // Forecast-churn attribution (DESIGN §7): each hot spot's previous forecast
  // and selection; a drifted forecast that flips the selection is a
  // mispredict and the resulting loads are churn.
  std::vector<std::vector<std::uint64_t>> last_forecast_;
  std::vector<std::vector<SiRef>> last_selection_;
  std::vector<bool> entry_seen_;
  HotSpotId current_hot_spot_ = 0;
  bool seen_any_hot_spot_ = false;
  bool prefetch_computed_ = false;
  Molecule prefetch_demand_;                    // sup of the prefetch selection
  std::vector<Cycles> type_last_used_;   // LRU stamps per atom type

  // Decision cache (see decide()). Entries live on an LRU list (front =
  // most recent; hits splice to the front, a miss past capacity evicts the
  // back). Buckets map the key digest to list iterators holding full keys:
  // a hash collision degrades to a linear compare, never to a wrong
  // decision. std::list iterators survive splicing, so bucket entries stay
  // valid across recency updates.
  std::list<DecisionEntry> decision_lru_;
  std::unordered_map<std::uint64_t, std::vector<std::list<DecisionEntry>::iterator>>
      decision_cache_;
  std::uint64_t decision_cache_hits_ = 0;
  std::uint64_t decision_cache_misses_ = 0;
  std::uint64_t decision_cache_evictions_ = 0;
  DecisionEntry uncached_decision_;      // result slot (cache off / shared cache)
  fleet::SharedDecisionCache::DomainId shared_domain_ = 0;
  fleet::SharedDecision shared_scratch_;        // shared-cache copy-in/out slot
  std::vector<std::uint64_t> oracle_forecast_;  // per-entry scratch (kOracle)
  std::vector<SiId> prefetch_sis_;              // per-entry scratch (prefetch)

  // Latency cache, invalidated when ready atoms change. refresh_cache()
  // also diffs old vs new molecules to spot per-SI upgrade transitions
  // (trap → slow molecule → selected molecule): cache_event_now_ remembers
  // the simulated time of the first invalidating port event since the last
  // refresh, which timestamps the upgrade instants on the executor track.
  std::vector<MoleculeId> cached_molecule_;  // per SiId
  bool cache_valid_ = false;
  Cycles cache_event_now_ = 0;
  TraceLane upgrade_lane_;                      // "SI upgrades" row
  std::vector<const char*> traced_si_names_;    // interned, lazy
  void refresh_cache();

  // Scratch for si_execution_span's port-quiet windows (per SiId, validated
  // against span_gen_ so windows open without O(si_count) clears).
  std::uint64_t span_gen_ = 0;
  std::vector<std::uint64_t> span_step_gen_;   // step cache validity
  std::vector<Cycles> span_step_;              // latency + overhead this window
  std::vector<std::uint64_t> span_touch_gen_;  // "executed this window" marker
  std::vector<Cycles> span_last_start_;        // last execution start this window
  std::vector<SiId> span_touched_;             // SIs executed this window
};

}  // namespace rispp
