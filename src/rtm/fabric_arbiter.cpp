#include "rtm/fabric_arbiter.h"

#include <algorithm>
#include <string>
#include <tuple>

#include "base/apportion.h"
#include "base/check.h"
#include "base/clock.h"
#include "base/metrics.h"

namespace rispp {

namespace {

MetricCounter& grants_counter() {
  static MetricCounter& c = metric_counter("rtm.arbiter.grants");
  return c;
}

MetricCounter& evictions_counter() {
  static MetricCounter& c = metric_counter("rtm.arbiter.evictions");
  return c;
}

MetricCounter& port_wait_counter() {
  static MetricCounter& c = metric_counter("rtm.arbiter.port_wait_cycles");
  return c;
}

MetricCounter& horizon_counter() {
  static MetricCounter& c = metric_counter("rtm.cosim.horizon_recomputes");
  return c;
}

}  // namespace

FabricArbiter::FabricArbiter(const ArbiterConfig& config) : config_(config) {
  RISPP_CHECK(config_.total_containers > 0);
  RISPP_CHECK(config_.starvation_bound > 0);
  RISPP_CHECK(config_.rebalance_period > 0);
  // Tenant storage never reallocates: ContainerFile references handed to
  // RunTimeManagers must stay valid for the arbiter's lifetime.
  tenants_.reserve(kMaxTenants);
  // Register the counters eagerly so a multi-tenant run always exposes them
  // (tools/trace_check --require-counter), even before the first grant.
  grants_counter();
  evictions_counter();
  port_wait_counter();
}

TenantId FabricArbiter::add_tenant(const TenantConfig& config) {
  RISPP_CHECK_MSG(tenants_.size() < kMaxTenants,
                  "at most " << kMaxTenants << " tenants per device");
  RISPP_CHECK(config.quota > 0);
  RISPP_CHECK_MSG(config.floor <= config.quota,
                  "tenant floor " << config.floor << " exceeds its quota " << config.quota);
  RISPP_CHECK(config.weight > 0);
  unsigned committed = config.quota;
  for (const Tenant& t : tenants_) committed += t.file ? t.file->active() : t.config.quota;
  RISPP_CHECK_MSG(committed <= config_.total_containers,
                  "tenant quotas (" << committed << ") exceed the device ("
                                    << config_.total_containers << " containers)");
  Tenant t;
  t.config = config;
  // Stride scheduling: pass advances inversely to weight, so over time port
  // grants converge to the weight ratio.
  constexpr std::uint64_t kStrideScale = 1u << 16;
  t.stride = kStrideScale / config.weight;
  if (t.stride == 0) t.stride = 1;
  tenants_.push_back(std::move(t));
  return static_cast<TenantId>(tenants_.size() - 1);
}

void FabricArbiter::bind(TenantId t, const AtomLibrary* library,
                         std::size_t atom_type_dimension,
                         const std::vector<Cycles>* lru_stamps) {
  Tenant& ten = tenant(t);
  RISPP_CHECK(library != nullptr);
  RISPP_CHECK(lru_stamps != nullptr);
  RISPP_CHECK_MSG(!ten.file.has_value(), "tenant " << t << " already bound");
  ten.library = library;
  ten.lru_stamps = lru_stamps;
  ten.file.emplace(config_.total_containers, atom_type_dimension, ten.config.quota);
  ten.lane = trace_new_lane();
  trace_name_lane(TraceTrack::kArbiter, ten.lane,
                  trace_intern("tenant " + std::to_string(t)));
  ten.port_wait_hist = &metric_histogram("rtm.arbiter.port_wait_cycles", {"tenant", t});
  ten.victim_age_hist =
      &metric_histogram("rtm.arbiter.eviction_victim_age_cycles", {"tenant", t});
}

ContainerFile& FabricArbiter::containers(TenantId t) {
  Tenant& ten = tenant(t);
  RISPP_CHECK_MSG(ten.file.has_value(), "tenant " << t << " not bound");
  return *ten.file;
}

const ContainerFile& FabricArbiter::containers(TenantId t) const {
  const Tenant& ten = tenant(t);
  RISPP_CHECK_MSG(ten.file.has_value(), "tenant " << t << " not bound");
  return *ten.file;
}

const std::optional<FabricArbiter::InflightLoad>& FabricArbiter::inflight(TenantId t) const {
  return tenant(t).inflight;
}

TenantId FabricArbiter::pick_winner(TenantId asker) const {
  TenantId best = asker;
  auto key = [&](TenantId id) {
    const Tenant& t = tenants_[id];
    const bool starved = t.denied_epochs >= config_.starvation_bound;
    // Starved tenants first, then lowest pass, then lowest id.
    return std::tuple<int, std::uint64_t, TenantId>(starved ? 0 : 1, t.pass, id);
  };
  for (TenantId id = 0; id < tenants_.size(); ++id) {
    if (id == asker) continue;
    const Tenant& t = tenants_[id];
    if (t.retired || !t.claim) continue;
    if (key(id) < key(best)) best = id;
  }
  return best;
}

std::optional<Cycles> FabricArbiter::try_start(TenantId t, AtomTypeId type,
                                               ContainerId container, Cycles now) {
  Tenant& ten = tenant(t);
  RISPP_CHECK_MSG(ten.file.has_value(), "tenant " << t << " not bound");
  RISPP_CHECK_MSG(!ten.inflight.has_value(),
                  "tenant " << t << " already has a load in flight");
  RISPP_CHECK_MSG(!ten.retired, "tenant " << t << " already retired");
  const Cycles duration = load_cycles(t, type);
  const bool port_free = busy_until_ <= now;
  if (!port_free || pick_winner(t) != t) return deny(ten, now, duration);
  if (ten.claim) {
    ten.claim = false;
    const Cycles waited = now - ten.waiting_since;
    port_wait_cycles_ += waited;
    port_wait_counter().add(waited);
    ten.port_wait_hist->record(waited);
  }
  ten.denied_epochs = 0;
  ten.last_denied_epoch = ~std::uint64_t{0};
  ten.pass += ten.stride;
  const Cycles done = now + duration;
  ten.inflight = InflightLoad{type, container, done};
  busy_until_ = done;
  ++grants_;
  grants_counter().add();
  if (trace_enabled()) {
    if (ten.traced_type_names.empty()) {
      ten.traced_type_names.reserve(ten.library->size());
      for (AtomTypeId ty = 0; ty < ten.library->size(); ++ty)
        ten.traced_type_names.push_back(trace_intern(ten.library->type(ty).name));
    }
    trace_complete(TraceTrack::kArbiter, ten.lane, ten.traced_type_names[type],
                   us_from_cycles(now), us_from_cycles(duration));
  }
  return std::nullopt;
}

Cycles FabricArbiter::deny(Tenant& ten, Cycles now, Cycles duration) {
  // Denied: the claim stands until the queue drains or the tenant wins.
  if (!ten.claim) {
    ten.claim = true;
    ten.waiting_since = now;
  }
  // Count at most one denial per grant epoch, so `denied_epochs` means
  // "consecutive grants that went to somebody else".
  if (ten.last_denied_epoch != grants_) {
    ten.last_denied_epoch = grants_;
    ++ten.denied_epochs;
  }
  return busy_until_ > now ? busy_until_ : now + duration;
}

std::optional<Cycles> FabricArbiter::precheck(TenantId t, AtomTypeId type, Cycles now) {
  Tenant& ten = tenant(t);
  RISPP_CHECK_MSG(ten.file.has_value(), "tenant " << t << " not bound");
  RISPP_CHECK_MSG(!ten.inflight.has_value(),
                  "tenant " << t << " already has a load in flight");
  RISPP_CHECK_MSG(!ten.retired, "tenant " << t << " already retired");
  const bool port_free = busy_until_ <= now;
  if (port_free && pick_winner(t) == t) return std::nullopt;
  return deny(ten, now, load_cycles(t, type));
}

FabricArbiter::InflightLoad FabricArbiter::retire(TenantId t, Cycles now) {
  Tenant& ten = tenant(t);
  RISPP_CHECK(ten.inflight.has_value());
  RISPP_CHECK_MSG(ten.inflight->finishes_at <= now,
                  "retiring a load that finishes at " << ten.inflight->finishes_at
                                                      << " but now is " << now);
  InflightLoad done = *ten.inflight;
  ten.inflight.reset();
  ++ten.completed_loads;
  return done;
}

void FabricArbiter::withdraw_claim(TenantId t) {
  Tenant& ten = tenant(t);
  ten.claim = false;
  ten.denied_epochs = 0;
  ten.last_denied_epoch = ~std::uint64_t{0};
}

void FabricArbiter::retire_tenant(TenantId t) {
  Tenant& ten = tenant(t);
  withdraw_claim(t);
  ten.retired = true;
  ten.benefit_ema = 0.0;
}

void FabricArbiter::on_decision_point(TenantId t, std::uint64_t forecast_mass, Cycles now) {
  Tenant& ten = tenant(t);
  ten.benefit_ema = (ten.benefit_ema + static_cast<double>(forecast_mass)) / 2.0;
  // Relaxed: concurrent callers exist only during the co-simulation's
  // parallel quiescent-epoch sweep, which is gated on !rebalance_possible()
  // — the count can't trigger a rebalance there, and each tenant's EMA is
  // tenant-local.
  const std::uint64_t dp = decision_points_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (rebalance_possible() && dp % config_.rebalance_period == 0) rebalance(now);
}

unsigned FabricArbiter::shrink_tenant(TenantId t, unsigned count, Cycles now) {
  Tenant& ten = tenants_[t];
  ContainerFile& file = *ten.file;
  unsigned freed = 0;
  // Cheapest victims first: enabled-but-empty containers lose nothing.
  for (ContainerId id = 0; id < file.size() && freed < count; ++id) {
    const AtomContainer& c = file.container(id);
    if (!c.enabled || c.state != ContainerState::kEmpty) continue;
    file.disable(id);
    ++freed;
  }
  // Then ready atoms, least-recently-used type first (id breaks ties).
  // A kLoading container is never disabled — the in-flight load would dangle.
  while (freed < count) {
    std::optional<ContainerId> victim;
    Cycles victim_used = 0;
    for (ContainerId id = 0; id < file.size(); ++id) {
      const AtomContainer& c = file.container(id);
      if (!c.enabled || c.state != ContainerState::kReady) continue;
      const Cycles used = (*ten.lru_stamps)[c.type];
      if (!victim.has_value() || used < victim_used) {
        victim = id;
        victim_used = used;
      }
    }
    if (!victim.has_value()) break;  // only kLoading left; retry next rebalance
    const bool evicted = file.disable(*victim);
    RISPP_CHECK(evicted);
    ++evictions_;
    evictions_counter().add();
    // How stale was the atom we threw out? A young victim means the LRU is
    // thrashing inside the tenant's working set.
    ten.victim_age_hist->record(now >= victim_used ? now - victim_used : 0);
    ++freed;
    // The victim lost a ready atom behind its RTM's back: bump the mutation
    // generation so the tenant's latency memo is rebuilt.
    ++ten.mutation_gen;
    ten.mutation_now = now;
  }
  return freed;
}

void FabricArbiter::rebalance(Cycles now) {
  // Entitlement = floor + largest-remainder share of the non-floor seats,
  // weighted by each live tenant's benefit EMA. Retired tenants surrender
  // everything (floor 0, weight 0).
  const std::size_t n = tenants_.size();
  std::uint64_t floor_sum = 0;
  std::vector<std::uint64_t> weights(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const Tenant& t = tenants_[i];
    if (!t.file.has_value()) return;  // not every tenant bound yet
    if (t.retired) continue;
    floor_sum += t.config.floor;
    weights[i] = static_cast<std::uint64_t>(t.benefit_ema * 1024.0);
  }
  if (floor_sum > config_.total_containers) return;  // floors alone oversubscribe
  const std::vector<std::uint64_t> extra =
      apportion_largest_remainder(config_.total_containers - floor_sum, weights);
  std::vector<unsigned> entitlement(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (tenants_[i].retired) continue;
    entitlement[i] = tenants_[i].config.floor + static_cast<unsigned>(extra[i]);
  }
  // Shrink losers first so the fabric never oversubscribes, then grow
  // winners by exactly as many containers as were actually freed (a loser
  // whose only victims are mid-reconfiguration yields fewer; the deficit
  // carries to the next rebalance).
  unsigned freed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned have = tenants_[i].file->active();
    if (have > entitlement[i]) freed += shrink_tenant(static_cast<TenantId>(i), have - entitlement[i], now);
  }
  for (std::size_t i = 0; i < n && freed > 0; ++i) {
    Tenant& t = tenants_[i];
    if (t.retired) continue;
    ContainerFile& file = *t.file;
    unsigned deficit = entitlement[i] > file.active() ? entitlement[i] - file.active() : 0;
    for (ContainerId id = 0; id < file.size() && deficit > 0 && freed > 0; ++id) {
      if (file.enabled(id)) continue;
      file.enable(id);
      --deficit;
      --freed;
    }
  }
}

std::uint64_t FabricArbiter::fabric_generation(TenantId t) const {
  return tenant(t).mutation_gen;
}

Cycles FabricArbiter::last_fabric_event(TenantId t) const { return tenant(t).mutation_now; }

Cycles FabricArbiter::next_event_cycle(TenantId t, Cycles now) const {
  horizon_counter().add();
  const Tenant& ten = tenant(t);
  // Its own in-flight load completes at a known cycle: the tenant must stop
  // there to retire it (and the port frees up for competitors).
  if (ten.inflight.has_value()) return ten.inflight->finishes_at;
  // A standing claim means the tenant is waiting on the port: the next
  // grant opportunity is when the port frees (or immediately, if it is
  // already free — the tenant should re-ask right away).
  if (ten.claim) return busy_until_ > now ? busy_until_ : now;
  // Under weighted partitioning any other tenant's next decision point may
  // hit a rebalance_period boundary and shrink this tenant's quota — there
  // is no lower bound on when, so the horizon collapses to `now`.
  if (rebalance_possible()) return now;
  // No in-flight load, no claim, quotas frozen: only the tenant's own
  // future requests can involve the fabric. Nothing scheduled can reach it.
  return kNoEvent;
}

Cycles FabricArbiter::quiescent_until(Cycles now) const {
  horizon_counter().add();
  if (rebalance_possible()) return now;
  Cycles horizon = kNoEvent;
  for (const Tenant& ten : tenants_) {
    if (ten.retired) continue;
    if (ten.claim) return now;
    if (ten.inflight.has_value())
      horizon = std::min(horizon, ten.inflight->finishes_at);
  }
  return horizon;
}

unsigned FabricArbiter::quota(TenantId t) const {
  const Tenant& ten = tenant(t);
  return ten.file ? ten.file->active() : ten.config.quota;
}

unsigned FabricArbiter::floor(TenantId t) const { return tenant(t).config.floor; }

std::uint64_t FabricArbiter::completed_loads(TenantId t) const {
  return tenant(t).completed_loads;
}

Cycles FabricArbiter::load_cycles(TenantId t, AtomTypeId type) const {
  const Tenant& ten = tenant(t);
  RISPP_CHECK(ten.library != nullptr);
  return config_.bitstream.reconfig_cycles(ten.library->type(type));
}

void FabricArbiter::check_invariants() const {
  unsigned active_sum = 0;
  bool all_bound = !tenants_.empty();
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& t = tenants_[i];
    if (!t.file.has_value()) {
      all_bound = false;
      continue;
    }
    active_sum += t.file->active();
    if (!t.retired) {
      RISPP_CHECK_MSG(t.file->active() >= t.config.floor,
                      "tenant " << i << " below its floor: " << t.file->active() << " < "
                                << t.config.floor);
    }
    RISPP_CHECK(t.file->active() <= config_.total_containers);
  }
  if (all_bound) {
    RISPP_CHECK_MSG(active_sum <= config_.total_containers,
                    "quotas oversubscribe the fabric: " << active_sum << " > "
                                                        << config_.total_containers);
  }
}

FabricArbiter::Tenant& FabricArbiter::tenant(TenantId t) {
  RISPP_CHECK_MSG(t < tenants_.size(), "unknown tenant " << t);
  return tenants_[t];
}

const FabricArbiter::Tenant& FabricArbiter::tenant(TenantId t) const {
  RISPP_CHECK_MSG(t < tenants_.size(), "unknown tenant " << t);
  return tenants_[t];
}

}  // namespace rispp
