#include "rtm/tenant_sim.h"

#include <limits>

#include "base/check.h"
#include "base/metrics.h"

namespace rispp {

std::vector<SimResult> run_tenants(FabricArbiter& arbiter, std::span<TenantRun> tenants) {
  const std::size_t n = tenants.size();
  RISPP_CHECK(n > 0);
  std::vector<SimResult> results(n);
  std::vector<Cycles> clocks(n, 0);
  std::vector<std::size_t> next_instance(n, 0);
  std::vector<std::vector<LatencySegment>> segments(n);
  std::vector<std::vector<SiRun>> runs_scratch(n);
  static MetricCounter& entries = metric_counter("sim.hot_spot_entries");

  for (std::size_t i = 0; i < n; ++i) {
    RISPP_CHECK(tenants[i].trace != nullptr && tenants[i].rtm != nullptr);
    results[i].hot_spot_cycles.assign(tenants[i].trace->hot_spots.size(), 0);
    if (tenants[i].trace->instances.empty()) arbiter.retire_tenant(tenants[i].tenant);
  }

  std::size_t live = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (next_instance[i] < tenants[i].trace->instances.size()) ++live;

  while (live > 0) {
    // Step the tenant whose clock is furthest behind (ties to the lowest
    // index) so fabric events are consumed in global simulated order.
    std::size_t pick = n;
    Cycles min_clock = std::numeric_limits<Cycles>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (next_instance[i] >= tenants[i].trace->instances.size()) continue;
      if (clocks[i] < min_clock) {
        min_clock = clocks[i];
        pick = i;
      }
    }
    RISPP_CHECK(pick < n);

    TenantRun& t = tenants[pick];
    const std::size_t idx = next_instance[pick]++;
    const Cycles entered = clocks[pick];
    entries.add();
    clocks[pick] = replay_instance(*t.trace, idx, *t.rtm, t.stats, entered,
                                   results[pick].si_executions, segments[pick],
                                   runs_scratch[pick]);
    results[pick].hot_spot_cycles[t.trace->instances[idx].hot_spot] +=
        clocks[pick] - entered;

    if (next_instance[pick] >= t.trace->instances.size()) {
      // Done: leave the round-robin so a standing claim cannot stall the
      // other tenants' starvation accounting.
      results[pick].total_cycles = clocks[pick];
      results[pick].atom_loads = t.rtm->completed_loads();
      arbiter.retire_tenant(t.tenant);
      --live;
    }
  }
  return results;
}

}  // namespace rispp
