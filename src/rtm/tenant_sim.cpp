#include "rtm/tenant_sim.h"

#include <atomic>
#include <limits>

#include "base/check.h"
#include "base/clock.h"
#include "base/metrics.h"
#include "base/parallel.h"

namespace rispp {

std::vector<SimResult> run_tenants(FabricArbiter& arbiter, std::span<TenantRun> tenants,
                                   const CosimOptions& options) {
  const std::size_t n = tenants.size();
  RISPP_CHECK(n > 0);
  std::vector<SimResult> results(n);
  std::vector<Cycles> clocks(n, 0);
  std::vector<std::size_t> next_instance(n, 0);
  std::vector<std::vector<LatencySegment>> segments(n);
  std::vector<std::vector<SiRun>> runs_scratch(n);
  static MetricCounter& entries = metric_counter("sim.hot_spot_entries");
  static MetricCounter& epochs_metric = metric_counter("rtm.cosim.epochs");
  static MetricCounter& ff_metric = metric_counter("rtm.cosim.fast_forward_instances");

  for (std::size_t i = 0; i < n; ++i) {
    RISPP_CHECK(tenants[i].trace != nullptr && tenants[i].rtm != nullptr);
    results[i].hot_spot_cycles.assign(tenants[i].trace->hot_spots.size(), 0);
    if (tenants[i].trace->instances.empty()) {
      // Zero instances: finalize with run_trace's semantics (the clock never
      // moves; atom_loads reports the port's completions) instead of leaving
      // the result default-initialized, then leave the round-robin.
      results[i].total_cycles = 0;
      results[i].atom_loads = tenants[i].rtm->completed_loads();
      arbiter.retire_tenant(tenants[i].tenant);
    }
  }

  auto done = [&](std::size_t i) {
    return next_instance[i] >= tenants[i].trace->instances.size();
  };
  auto step = [&](std::size_t i) {
    TenantRun& t = tenants[i];
    const std::size_t idx = next_instance[i]++;
    const Cycles entered = clocks[i];
    entries.add();
    clocks[i] = replay_instance(*t.trace, idx, *t.rtm, t.stats, entered,
                                results[i].si_executions, segments[i], runs_scratch[i]);
    results[i].hot_spot_cycles[t.trace->instances[idx].hot_spot] += clocks[i] - entered;
  };
  auto finalize = [&](std::size_t i) {
    // Done: leave the round-robin so a standing claim cannot stall the
    // other tenants' starvation accounting.
    results[i].total_cycles = clocks[i];
    results[i].atom_loads = tenants[i].rtm->completed_loads();
    arbiter.retire_tenant(tenants[i].tenant);
  };

  if (options.mode == CosimMode::kReference) {
    // The oracle: one instance per pick, picked by linear min-clock scan
    // (ties to the lowest index) so fabric events are consumed in global
    // simulated order.
    std::size_t live = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (!done(i)) ++live;
    while (live > 0) {
      std::size_t pick = n;
      Cycles min_clock = std::numeric_limits<Cycles>::max();
      for (std::size_t i = 0; i < n; ++i) {
        if (done(i)) continue;
        if (clocks[i] < min_clock) {
          min_clock = clocks[i];
          pick = i;
        }
      }
      RISPP_CHECK(pick < n);
      step(pick);
      if (done(pick)) {
        finalize(pick);
        --live;
      }
    }
    return results;
  }

  // Fast-forward (DESIGN §9.1). Every epoch pops the reference's next pick
  // from the heap and replays it in three regimes, each bit-exact:
  //  1. min-clock batch — keep stepping while the tenant remains the
  //     (clock, id)-minimum: literally the reference order;
  //  2. sole survivor — an empty heap means every future reference pick is
  //     this tenant, so it runs to completion unconditionally;
  //  3. horizon overrun — past the runner-up but with next_event_cycle() ==
  //     kNoEvent, port-silent entries (probed one ahead) only touch
  //     tenant-local state plus commuting shared counters, so replaying them
  //     out of order cannot change any tenant's results.
  MinClockHeap heap;
  heap.reset(n);
  for (std::size_t i = 0; i < n; ++i)
    if (!done(i)) heap.push({clocks[i], static_cast<std::uint32_t>(i)});

  // Per-device epoch lane on the arbiter track: one slice per epoch, in the
  // popped tenant's simulated time (the multi-tenant analogue of the solo
  // port timeline's quiet windows).
  TraceLane epoch_lane = 0;
  const char* epoch_name = nullptr;
  if (trace_enabled()) {
    epoch_lane = trace_new_lane();
    trace_name_lane(TraceTrack::kArbiter, epoch_lane, "cosim epochs");
    epoch_name = trace_intern("epoch");
  }

  const bool parallel_ok = options.pool != nullptr && !arbiter.rebalance_possible();
  std::vector<std::size_t> sweep_ids;  // scratch: live tenants of one sweep

  while (!heap.empty()) {
    const MinClockHeap::Item min = heap.pop();
    const std::size_t i = min.id;

    // Parallel quiescent sweep: when even the min-clock tenant is beyond
    // every horizon, all live tenants are mutually independent for as long
    // as their entries probe port-silent — each replays its own prefix on
    // the pool (tenant-local state only; the shared decision-point and
    // metric counters are atomic and commute), then the heap is rebuilt.
    // Thread-count-invariant: no tenant reads another's progress.
    if (parallel_ok && !heap.empty() &&
        arbiter.next_event_cycle(tenants[i].tenant, clocks[i]) == FabricArbiter::kNoEvent &&
        tenants[i].rtm->entry_is_port_silent(*tenants[i].trace, next_instance[i])) {
      sweep_ids.clear();
      sweep_ids.push_back(i);
      while (!heap.empty()) sweep_ids.push_back(heap.pop().id);
      std::atomic<std::uint64_t> swept{0};
      options.pool->parallel_for(sweep_ids.size(), [&](std::size_t k) {
        const std::size_t j = sweep_ids[k];
        std::uint64_t local = 0;
        while (!done(j) &&
               tenants[j].rtm->entry_is_port_silent(*tenants[j].trace, next_instance[j])) {
          step(j);
          ++local;
        }
        swept.fetch_add(local, std::memory_order_relaxed);
      });
      ff_metric.add(swept.load(std::memory_order_relaxed));
      epochs_metric.add();
      // Retirements happen serially in index order, like the reference.
      heap.reset(n);
      for (const std::size_t j : sweep_ids) {
        if (done(j))
          finalize(j);
        else
          heap.push({clocks[j], static_cast<std::uint32_t>(j)});
      }
      continue;  // the min tenant swept at least one instance: progress
    }

    epochs_metric.add();
    const Cycles epoch_start = clocks[i];
    const bool last = heap.empty();
    MinClockHeap::Item bound{};
    if (!last) bound = heap.top();

    // Regimes 1 + 2: the popped tenant was the reference's pick; keep
    // stepping while it would be re-picked (or unconditionally once alone).
    step(i);
    while (!done(i) &&
           (last ||
            MinClockHeap::before({clocks[i], static_cast<std::uint32_t>(i)}, bound))) {
      step(i);
    }

    // Regime 3: horizon overrun.
    if (!done(i) && !last &&
        arbiter.next_event_cycle(tenants[i].tenant, clocks[i]) == FabricArbiter::kNoEvent) {
      std::uint64_t ff = 0;
      while (!done(i) &&
             tenants[i].rtm->entry_is_port_silent(*tenants[i].trace, next_instance[i])) {
        step(i);
        ++ff;
      }
      if (ff > 0) ff_metric.add(ff);
    }

    if (trace_enabled()) {
      trace_complete(TraceTrack::kArbiter, epoch_lane, epoch_name,
                     us_from_cycles(epoch_start), us_from_cycles(clocks[i] - epoch_start));
    }

    if (done(i))
      finalize(i);
    else
      heap.push({clocks[i], static_cast<std::uint32_t>(i)});
  }
  return results;
}

}  // namespace rispp
