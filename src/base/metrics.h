// Process-global metrics registry: named monotonic counters, gauges, and
// log-bucketed histograms.
//
// The ad-hoc counters previously scattered across rtm/, sim/stats.h and the
// bench driver get one home with a JSON snapshot API. Counters are relaxed
// atomics — safe to bump from pool workers — and registration is a one-time
// mutex-guarded name lookup, so call sites cache the reference:
//
//   static MetricCounter& hits = metric_counter("rtm.decision_cache.hits");
//   hits.add();
//
// Histograms capture whole distributions (DESIGN §7): HDR-style log buckets
// (32 linear sub-buckets per octave, so a recorded value lands in a bucket
// at most 1/32 ≈ 3.1% wide relative to its magnitude; values below 64 are
// exact) behind per-thread relaxed-atomic shards that only merge at snapshot
// time. A labeled-scope overload gives per-tenant series first-class names:
//
//   metric_histogram("rtm.arbiter.port_wait_cycles", {"tenant", id}).record(waited);
//
// registers "rtm.arbiter.port_wait_cycles{tenant=3}" — one canonical string,
// no ad-hoc concatenation at call sites.
//
// RISPP_METRICS=<path> (read by the same startup hook as RISPP_TRACE) writes
// the snapshot at process exit; the rispp_bench driver sets it per child and
// folds every report's snapshot into BENCH_SUITE.json.
// RISPP_METRICS_INTERVAL_MS=<n> additionally starts the flight recorder: a
// background sampler that emits every counter/gauge as Chrome-trace counter
// samples each window (churn becomes a slope, not an end-state) and keeps a
// rotating ring of windowed snapshots, flushed to <RISPP_METRICS>.ring.json
// at exit. Recording into any of these never perturbs simulation results.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rispp {

/// Monotonic counter. Registered objects live for the process lifetime, so
/// cached references never dangle.
class MetricCounter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge (a level, not a count).
class MetricGauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A merged histogram view: immutable, cheap to combine, and the unit the
/// JSON snapshot / rispp_stats layers traffic in. Buckets are (upper bound,
/// count) pairs in ascending value order, non-empty buckets only.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // valid only when count > 0
  std::uint64_t max = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  /// The q-th quantile under the same index rule as percentile_sorted
  /// (floor(q*count), clamped), answered with the holding bucket's upper
  /// bound — so p(q) ≥ the exact order statistic and ≤ it · (1 + 1/32).
  std::uint64_t p(double q) const;

  /// Fraction of recorded values ≤ `objective`, counting only buckets whose
  /// upper bound fits (a conservative lower bound — the SLO never looks
  /// better than reality). Returns 1.0 for an empty snapshot.
  double fraction_at_most(std::uint64_t objective) const;

  /// Folds `other` in. Merge is commutative and associative: buckets add
  /// pointwise, count/sum add, min/max widen.
  void merge(const HistogramSnapshot& other);
};

/// Log-bucketed histogram of non-negative integer samples (cycles, ns, µs).
/// record() is wait-free from any thread: samples land in one of kShards
/// per-thread shards (threads map to shards round-robin, so at ≤ kShards
/// recording threads every shard is single-writer) with relaxed atomics;
/// shards allocate lazily and merge only in snapshot().
class MetricHistogram {
 public:
  /// Linear sub-buckets per octave: 1 << kSubBucketBits = 32, the ~5%-class
  /// relative-error budget the snapshot quantiles inherit.
  static constexpr unsigned kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = std::uint64_t{1} << kSubBucketBits;
  /// Index 0..2·kSubBuckets-1 are exact; above that, one run of kSubBuckets
  /// indices per octave up to 2^64.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>((64 - kSubBucketBits + 1) * kSubBuckets);

  MetricHistogram() = default;
  ~MetricHistogram();
  MetricHistogram(const MetricHistogram&) = delete;
  MetricHistogram& operator=(const MetricHistogram&) = delete;

  void record(std::uint64_t value);
  HistogramSnapshot snapshot() const;

  /// Bucket math, exposed for the tests' error-bound proofs.
  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_upper_bound(std::size_t index);

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard;
  Shard& shard_for_thread();

  std::array<std::atomic<Shard*>, kShards> shards_{};
};

/// One label dimension for a histogram series; the registered name becomes
/// "<name>{<key>=<value>}". Keys and values with '{', '}', '=' or '"' are
/// rejected (RISPP_CHECK) — they would break the canonical form.
struct MetricLabel {
  std::string_view key;
  std::uint64_t value = 0;
};

/// Returns the counter/gauge/histogram registered under `name`, creating it
/// on first use. The reference stays valid for the process lifetime.
MetricCounter& metric_counter(std::string_view name);
MetricGauge& metric_gauge(std::string_view name);
MetricHistogram& metric_histogram(std::string_view name);
MetricHistogram& metric_histogram(std::string_view name, const MetricLabel& label);

/// All registered counters/gauges/histograms, sorted by name.
std::vector<std::pair<std::string, std::uint64_t>> metrics_counter_snapshot();
std::vector<std::pair<std::string, double>> metrics_gauge_snapshot();
std::vector<std::pair<std::string, HistogramSnapshot>> metrics_histogram_snapshot();

/// {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
/// sorted. Each histogram entry carries count/sum/min/max, p50/p90/p99, and
/// its non-empty buckets as [upper, count] pairs.
std::string metrics_snapshot_json();

/// Writes metrics_snapshot_json() to `path` (parent directories created).
/// Returns false (with a stderr diagnostic) on I/O failure.
bool write_metrics_json(const std::string& path);

/// Schema check for a metrics snapshot document (or a flight-recorder ring
/// file — an object with a "windows" array of snapshots). Returns an error
/// description, or nullopt if the document is well-formed. Used by
/// trace_check --metrics and the tests.
std::optional<std::string> validate_metrics_json(std::istream& in);

/// RISPP_METRICS=<path> registers an at-exit snapshot write. Called from the
/// same static initializer as init_trace_from_env().
void init_metrics_from_env();

// ---------------------------------------------------------------------------
// Flight recorder: periodic windowed snapshots while the process runs.

struct FlightRecorderOptions {
  /// Sampling period. Must be ≥ 1.
  int interval_ms = 100;
  /// Where the ring is written on stop (empty keeps it in memory only —
  /// the Chrome-trace counter samples still flow if a trace is active).
  std::string ring_path;
  /// Windows retained; older ones rotate out.
  std::size_t ring_capacity = 128;
};

/// Starts the background sampler (idempotent — a second start is ignored
/// while one is running). Each window emits every registered counter and
/// gauge as a 'C' sample on the metrics trace track and appends a windowed
/// snapshot (with histogram summaries) to the ring.
void start_flight_recorder(const FlightRecorderOptions& options);

/// Stops the sampler, takes one final window, and writes the ring to
/// ring_path as {"interval_ms": .., "windows": [...]}. Safe to call with no
/// recorder running. Also armed via atexit by init_flight_recorder_from_env.
void stop_flight_recorder();

/// RISPP_METRICS_INTERVAL_MS=<n> (strictly parsed; garbage exits 2 naming
/// the variable) starts the recorder with ring_path = RISPP_METRICS path +
/// ".ring.json" when RISPP_METRICS is set. Called from the same static
/// initializer as init_trace_from_env().
void init_flight_recorder_from_env();

}  // namespace rispp
