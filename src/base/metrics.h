// Process-global metrics registry: named monotonic counters and gauges.
//
// The ad-hoc counters previously scattered across rtm/, sim/stats.h and the
// bench driver get one home with a JSON snapshot API. Counters are relaxed
// atomics — safe to bump from pool workers — and registration is a one-time
// mutex-guarded name lookup, so call sites cache the reference:
//
//   static MetricCounter& hits = metric_counter("rtm.decision_cache.hits");
//   hits.add();
//
// RISPP_METRICS=<path> (read by the same startup hook as RISPP_TRACE) writes
// the snapshot at process exit; the rispp_bench driver sets it per child and
// folds every report's snapshot into BENCH_SUITE.json.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rispp {

/// Monotonic counter. Registered objects live for the process lifetime, so
/// cached references never dangle.
class MetricCounter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge (a level, not a count).
class MetricGauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Returns the counter/gauge registered under `name`, creating it on first
/// use. The reference stays valid for the process lifetime.
MetricCounter& metric_counter(std::string_view name);
MetricGauge& metric_gauge(std::string_view name);

/// All registered counters/gauges, sorted by name.
std::vector<std::pair<std::string, std::uint64_t>> metrics_counter_snapshot();
std::vector<std::pair<std::string, double>> metrics_gauge_snapshot();

/// {"counters": {...}, "gauges": {...}} with keys sorted.
std::string metrics_snapshot_json();

/// Writes metrics_snapshot_json() to `path` (parent directories created).
/// Returns false (with a stderr diagnostic) on I/O failure.
bool write_metrics_json(const std::string& path);

/// RISPP_METRICS=<path> registers an at-exit snapshot write. Called from the
/// same static initializer as init_trace_from_env().
void init_metrics_from_env();

}  // namespace rispp
