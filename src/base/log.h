// Leveled logging with a process-global verbosity switch.
//
// The simulator is usually silent; RISPP_LOG_LEVEL=debug (environment) or
// set_log_level() turns on scheduler decision traces, which is how Figure 8
// style analyses were debugged.
#pragma once

#include <sstream>
#include <string>

namespace rispp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Reads RISPP_LOG_LEVEL from the environment once ("debug", "info", ...).
void init_log_level_from_env();

namespace detail {
void emit_log(LogLevel level, const std::string& message);
}

}  // namespace rispp

#define RISPP_LOG(level, expr)                                      \
  do {                                                              \
    if (static_cast<int>(level) >= static_cast<int>(::rispp::log_level())) { \
      std::ostringstream os_;                                       \
      os_ << expr;                                                  \
      ::rispp::detail::emit_log(level, os_.str());                  \
    }                                                               \
  } while (false)

#define RISPP_DEBUG(expr) RISPP_LOG(::rispp::LogLevel::kDebug, expr)
#define RISPP_INFO(expr) RISPP_LOG(::rispp::LogLevel::kInfo, expr)
#define RISPP_WARN(expr) RISPP_LOG(::rispp::LogLevel::kWarn, expr)
