// Strict environment-variable parsing for the runtime knobs (RISPP_THREADS,
// RISPP_FRAMES, ...). A typo'd value silently falling back to a default is
// worse than no knob at all — a 140-frame run launched as RISPP_FRAMES=abc
// wastes minutes before anyone notices — so invalid values fail loudly.
#pragma once

#include <optional>

namespace rispp {

/// Exit code used when an environment knob fails to parse.
inline constexpr int kEnvParseExitCode = 2;

/// Parses `text` as a base-10 integer in [min_value, max_value]. The whole
/// string must be consumed (leading/trailing junk, empty strings and
/// overflow all fail); returns nullopt on any failure.
std::optional<long> parse_int_strict(const char* text, long min_value, long max_value);

/// Reads the environment variable `name`: returns `fallback` when unset or
/// empty, its value when it parses as an integer in [min_value, max_value],
/// and otherwise prints a diagnostic naming the variable and the accepted
/// range to stderr and exits with kEnvParseExitCode.
long parse_env_int(const char* name, long fallback, long min_value, long max_value);

}  // namespace rispp
