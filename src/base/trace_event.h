// Zero-cost structured tracing in the Chrome trace-event format.
//
// The paper's whole argument is a timeline (Figures 4 and 8: atoms streaming
// through the single reconfiguration port while SIs upgrade step by step), so
// the run-time system can emit that timeline directly: set
// RISPP_TRACE=<out.json> and every instrumented layer records spans, instants
// and counter samples into per-thread lock-free buffers, flushed at process
// exit as a JSON file that loads in about://tracing / Perfetto.
//
// Cost model: with tracing off (the default) every instrumentation site is
// one relaxed atomic load plus a branch — measured at ~1 ns by the
// BM_TraceSpanDisabled micro benchmark — and report outputs are byte-identical
// with tracing on or off (the tracer never writes to stdout/stderr on
// success, and no instrumented computation depends on it).
//
// Tracks and lanes: a *track* (Chrome pid) groups one subsystem — the
// reconfiguration port, the executor, the RTM, the thread pool, the bench
// driver — and a *lane* (Chrome tid) is one row within it. Lanes are virtual
// thread ids handed out by trace_new_lane(): simulated-time rows (port loads,
// hot-spot instances, SI upgrades; timestamps in simulated µs via
// us_from_cycles) allocate one lane per run or port so rows stay
// monotonically timestamped even when parallel sweep cells overlap or
// sequential cells restart simulated time at zero. Wall-clock rows (RTM
// decide() spans, pool jobs) use the calling thread's own lane.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rispp {

/// One subsystem = one Chrome process (pid) = one named track group.
enum class TraceTrack : std::uint8_t {
  kReconfigPort = 0,  // Figure 4: one span per atom load on the single port
  kExecutor,          // hot-spot instances (B/E) and per-SI upgrade instants
  kRtm,               // decide() spans + decision-cache counter samples
  kThreadPool,        // work-stealing pool jobs and steal instants
  kBench,             // one span per report under the rispp_bench driver
  kMetrics,           // final registry counter samples at flush
  kFleet,             // one span per session under the fleet driver
  kArbiter,           // per-tenant port-timeline lanes under the fabric arbiter
};
inline constexpr std::size_t kTraceTrackCount = 8;

/// Human name of a track ("reconfig port", ...), used as the Chrome
/// process_name metadata.
const char* trace_track_name(TraceTrack track);

namespace trace_detail {
extern std::atomic<bool> g_enabled;
}  // namespace trace_detail

/// The single branch every instrumentation site pays when tracing is off.
inline bool trace_enabled() {
  return trace_detail::g_enabled.load(std::memory_order_relaxed);
}

/// A row within a track (Chrome tid). Ids are process-unique across lanes
/// and OS threads, so a lane never collides with another row.
using TraceLane = std::uint32_t;

/// Allocates a fresh lane id (cheap: one relaxed atomic increment).
TraceLane trace_new_lane();

/// Names a lane (Chrome thread_name metadata). `name` must stay valid until
/// the trace is flushed — pass a literal or trace_intern() the string.
void trace_name_lane(TraceTrack track, TraceLane lane, const char* name);

/// Copies `name` into leaked process-lifetime storage and returns a stable
/// pointer (deduplicated). Event names must outlive the at-exit flush, which
/// runs after most static destructors; intern anything that is not a literal.
const char* trace_intern(std::string_view name);

// -- Emitters (no-ops when tracing is off) -------------------------------
// Explicit-timestamp forms for simulated-time rows: `ts_us`/`dur_us` are
// microseconds (us_from_cycles for simulated cycles). Events on one
// (track, lane) row must be emitted with non-decreasing timestamps.

/// Complete event ('X'): a span with a known duration.
void trace_complete(TraceTrack track, TraceLane lane, const char* name, double ts_us,
                    double dur_us);
/// Duration begin/end pair ('B'/'E'); must nest properly per lane.
void trace_begin(TraceTrack track, TraceLane lane, const char* name, double ts_us);
void trace_end(TraceTrack track, TraceLane lane, const char* name, double ts_us);
/// Instant event ('i').
void trace_instant(TraceTrack track, TraceLane lane, const char* name, double ts_us);
/// Counter sample ('C').
void trace_counter(TraceTrack track, TraceLane lane, const char* name, double ts_us,
                   double value);

/// Wall-clock microseconds since the trace session started (valid only while
/// a session is active).
double trace_now_us();

/// Instant / counter sample on the calling thread's own lane, stamped with
/// the current wall clock.
void trace_instant_now(TraceTrack track, const char* name);
void trace_counter_now(TraceTrack track, const char* name, double value);

/// Wall-clock duration pair on the calling thread's lane. Prefer these over
/// TraceSpan when other events (instants, counters) can land on the same
/// (track, thread) row while the span is open: a 'B'/'E' pair keeps the row's
/// file order monotonic, whereas TraceSpan's complete event is only appended
/// when the span closes.
void trace_begin_now(TraceTrack track, const char* name);
void trace_end_now(TraceTrack track, const char* name);

/// RAII wall-clock span on the calling thread's lane: captures the start
/// time at construction, emits one complete event at destruction. When
/// tracing is off both ends cost one relaxed load + branch.
class TraceSpan {
 public:
  TraceSpan(TraceTrack track, const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  double start_us_;  // < 0 when tracing was off at construction
  TraceTrack track_;
};

#define RISPP_TRACE_CAT2(a, b) a##b
#define RISPP_TRACE_CAT(a, b) RISPP_TRACE_CAT2(a, b)
/// Scoped span: RISPP_TRACE_SPAN(TraceTrack::kRtm, "decide");
#define RISPP_TRACE_SPAN(track, name) \
  ::rispp::TraceSpan RISPP_TRACE_CAT(rispp_trace_span_, __LINE__)((track), (name))

// -- Session control ------------------------------------------------------

/// Starts recording into in-memory buffers; the JSON goes to `path` at
/// stop_trace_session(). An already-active session is flushed first.
void start_trace_session(const std::string& path);

/// Disables tracing and writes the buffered events (plus one final counter
/// sample per metrics-registry entry) as {"traceEvents": [...]} to the
/// session's path. Silent on success; errors go to stderr. No-op without an
/// active session.
void stop_trace_session();

/// RISPP_TRACE=<out.json> starts a session at startup and registers an
/// at-exit flush. Called from a static initializer in trace_event.cpp, so
/// every binary linking the instrumented code honors the variable.
void init_trace_from_env();

// -- Validation (tests, tools/trace_check) --------------------------------

struct TraceValidation {
  std::size_t events = 0;  // non-metadata events
  std::size_t tracks = 0;  // distinct pids with at least one non-metadata event
  std::vector<std::string> counter_names;  // sorted, unique
};

/// Parses a Chrome trace JSON (top-level array or {"traceEvents": [...]})
/// and checks well-formedness: every event has a valid phase, name, pid and
/// tid; 'X' events have ts and dur >= 0; 'B'/'E' pairs match per (pid, tid)
/// row; non-metadata timestamps are monotonically non-decreasing per row in
/// file order. Returns nullopt on success, else a description of the first
/// problem.
std::optional<std::string> validate_chrome_trace(std::istream& in,
                                                 TraceValidation* info = nullptr);

}  // namespace rispp
