// Shared percentile path for the fleet reports (DESIGN §7).
//
// Both fleet drivers used to carry a private sort-and-index lambda; this
// header is that lambda, hoisted, plus the toggle that lets the same call
// site read a log-bucketed histogram sketch instead. The index rule is
// deliberately the historical one — floor(q * N), clamped — so replacing the
// ad-hoc blocks keeps every reported p50/p99 bit-exact.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "base/check.h"
#include "base/metrics.h"

namespace rispp {

/// How report_percentiles answers: kExact sorts the samples and applies the
/// historical index rule (bit-exact with the pre-quantile.h report blocks);
/// kSketch reads the log-bucketed histogram (≤ 1/32 relative error, no sort).
enum class QuantileMode { kExact, kSketch };

/// The q-th percentile of an ascending-sorted, non-empty range under the
/// fleet reports' historical rule: element floor(q * N), clamped to the last.
template <typename T>
T percentile_sorted(const std::vector<T>& sorted, double q) {
  RISPP_CHECK(!sorted.empty());
  const std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

template <typename T>
struct PercentilePair {
  T p50{};
  T p99{};
};

/// One shared path for "record the distribution, report two points": every
/// value lands in `hist` (scaled by `to_units` and rounded to the histogram's
/// integer domain), then p50/p99 come back either exactly (sorts `values` in
/// place) or from the sketch (scaled back down). Reports use kExact so their
/// output never moves; tooling reading snapshots gets the same numbers the
/// kSketch path would print, within the bucket error bound.
template <typename T>
PercentilePair<T> record_and_percentiles(std::vector<T>& values, MetricHistogram& hist,
                                         double to_units, QuantileMode mode) {
  RISPP_CHECK(!values.empty());
  for (const T& v : values) {
    const double scaled = static_cast<double>(v) * to_units;
    hist.record(scaled <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(scaled)));
  }
  if (mode == QuantileMode::kExact) {
    std::sort(values.begin(), values.end());
    return {percentile_sorted(values, 0.50), percentile_sorted(values, 0.99)};
  }
  const HistogramSnapshot snap = hist.snapshot();
  return {static_cast<T>(static_cast<double>(snap.p(0.50)) / to_units),
          static_cast<T>(static_cast<double>(snap.p(0.99)) / to_units)};
}

}  // namespace rispp
