#include "base/apportion.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace rispp {

std::vector<std::uint64_t> apportion_largest_remainder(
    std::uint64_t seats, std::span<const std::uint64_t> weights) {
  if (weights.empty()) {
    RISPP_CHECK_MSG(seats == 0, "cannot apportion seats over zero parties");
    return {};
  }
  std::uint64_t total_weight = 0;
  for (const std::uint64_t w : weights) {
    RISPP_CHECK_MSG(w <= (std::uint64_t{1} << 32), "apportionment weight overflows");
    total_weight += w;
  }

  std::vector<std::uint64_t> shares(weights.size(), 0);
  std::vector<std::uint64_t> remainders(weights.size(), 0);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    // All-zero weights degrade to uniform so the split stays total.
    const std::uint64_t w = total_weight > 0 ? weights[i] : 1;
    const std::uint64_t divisor = total_weight > 0 ? total_weight : weights.size();
    RISPP_CHECK_MSG(seats <= (std::uint64_t{1} << 32), "apportionment seats overflow");
    shares[i] = seats * w / divisor;
    remainders[i] = seats * w % divisor;
    assigned += shares[i];
  }

  // Hand the leftover seats to the largest remainders, lowest index first on
  // ties — a total order, so the apportionment is deterministic.
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return remainders[a] > remainders[b];
  });
  RISPP_CHECK(assigned <= seats);
  std::uint64_t leftover = seats - assigned;
  for (std::size_t i = 0; leftover > 0; i = (i + 1) % order.size(), --leftover)
    ++shares[order[i]];
  return shares;
}

}  // namespace rispp
