#include "base/stats.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "base/json_mini.h"
#include "base/table.h"

namespace rispp::stats {

namespace {

using jsonmini::JsonValue;

bool is_object(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kObject;
}

std::optional<double> number_field(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return std::nullopt;
  return v->number;
}

std::optional<std::uint64_t> count_field(const JsonValue& obj, std::string_view key) {
  const auto n = number_field(obj, key);
  if (!n || *n < 0.0 || *n != std::floor(*n)) return std::nullopt;
  return static_cast<std::uint64_t>(*n);
}

bool parse_scalar_section(const JsonValue& doc, const char* section,
                          std::map<std::string, double>& out, std::string& error) {
  const JsonValue* obj = doc.find(section);
  if (obj == nullptr) return true;  // a window may omit an empty section
  if (obj->kind != JsonValue::Kind::kObject) {
    error = std::string(section) + " is not an object";
    return false;
  }
  for (const auto& [name, value] : obj->object) {
    if (value.kind != JsonValue::Kind::kNumber) {
      error = std::string(section) + " entry " + name + " is not a number";
      return false;
    }
    out[name] = value.number;
  }
  return true;
}

bool parse_histogram_section(const JsonValue& doc,
                             std::map<std::string, HistogramEntry>& out,
                             std::string& error) {
  const JsonValue* obj = doc.find("histograms");
  if (obj == nullptr) return true;
  if (obj->kind != JsonValue::Kind::kObject) {
    error = "histograms is not an object";
    return false;
  }
  for (const auto& [name, value] : obj->object) {
    if (value.kind != JsonValue::Kind::kObject) {
      error = "histogram " + name + " is not an object";
      return false;
    }
    HistogramEntry entry;
    const auto count = count_field(value, "count");
    const auto sum = count_field(value, "sum");
    const auto min = count_field(value, "min");
    const auto max = count_field(value, "max");
    const auto p50 = count_field(value, "p50");
    const auto p90 = count_field(value, "p90");
    const auto p99 = count_field(value, "p99");
    if (!count || !sum || !min || !max || !p50 || !p90 || !p99) {
      error = "histogram " + name + " lacks a summary field";
      return false;
    }
    entry.snapshot.count = *count;
    entry.snapshot.sum = *sum;
    entry.snapshot.min = *min;
    entry.snapshot.max = *max;
    entry.p50 = *p50;
    entry.p90 = *p90;
    entry.p99 = *p99;
    if (const JsonValue* buckets = value.find("buckets")) {
      if (buckets->kind != JsonValue::Kind::kArray) {
        error = "histogram " + name + " buckets is not an array";
        return false;
      }
      for (const JsonValue& pair : buckets->array) {
        if (pair.kind != JsonValue::Kind::kArray || pair.array.size() != 2 ||
            pair.array[0].kind != JsonValue::Kind::kNumber ||
            pair.array[1].kind != JsonValue::Kind::kNumber) {
          error = "histogram " + name + " has a malformed bucket";
          return false;
        }
        entry.snapshot.buckets.emplace_back(
            static_cast<std::uint64_t>(pair.array[0].number),
            static_cast<std::uint64_t>(pair.array[1].number));
      }
      entry.has_buckets = true;
    }
    out[name] = std::move(entry);
  }
  return true;
}

bool parse_suite(const JsonValue& doc, MetricsDocument& out, std::string& error) {
  const JsonValue* reports = doc.find("reports");
  if (reports == nullptr || reports->kind != JsonValue::Kind::kArray) {
    error = "reports is not an array";
    return false;
  }
  for (const JsonValue& report : reports->array) {
    if (report.kind != JsonValue::Kind::kObject) {
      error = "reports holds a non-object entry";
      return false;
    }
    const JsonValue* name = report.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString) {
      error = "a report entry lacks a name";
      return false;
    }
    const JsonValue* metrics = report.find("metrics");
    if (metrics == nullptr) continue;  // reports without a snapshot are fine
    if (metrics->kind != JsonValue::Kind::kObject) {
      error = "metrics of " + name->string + " is not an object";
      return false;
    }
    for (const auto& [key, value] : metrics->object) {
      if (value.kind != JsonValue::Kind::kNumber) {
        error = "metric " + key + " of " + name->string + " is not a number";
        return false;
      }
      // Suite metrics are already flat (histograms folded to summaries), so
      // everything lands in the scalar map under a per-report prefix.
      out.gauges[name->string + "/" + key] = value.number;
    }
  }
  return true;
}

/// Integral values print without an exponent; everything else gets %.6g.
std::string fmt_number(double value) {
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

std::string fmt_quantile_label(double q) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", q * 100.0);
  return std::string("p") + buf;
}

/// Series rows of one base name, unlabeled first, then by label value.
std::vector<std::pair<std::string, const HistogramEntry*>> series_of(
    const MetricsDocument& doc, const std::string& base) {
  std::vector<std::pair<std::string, const HistogramEntry*>> rows;
  std::vector<std::pair<SeriesName, const HistogramEntry*>> matched;
  for (const auto& [name, entry] : doc.histograms) {
    SeriesName series = parse_series_name(name);
    if (series.base != base) continue;
    matched.emplace_back(std::move(series), &entry);
  }
  std::stable_sort(matched.begin(), matched.end(), [](const auto& a, const auto& b) {
    if (a.first.labeled != b.first.labeled) return !a.first.labeled;
    if (a.first.label_key != b.first.label_key) return a.first.label_key < b.first.label_key;
    return a.first.label_value < b.first.label_value;
  });
  for (const auto& [series, entry] : matched) {
    std::string label = "(all)";
    if (series.labeled)
      label = series.label_key + "=" + std::to_string(series.label_value);
    rows.emplace_back(std::move(label), entry);
  }
  return rows;
}

}  // namespace

SeriesName parse_series_name(const std::string& name) {
  SeriesName out;
  out.base = name;
  if (name.empty() || name.back() != '}') return out;
  const std::size_t open = name.rfind('{');
  if (open == std::string::npos) return out;
  const std::string inner = name.substr(open + 1, name.size() - open - 2);
  const std::size_t eq = inner.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= inner.size()) return out;
  std::uint64_t value = 0;
  for (std::size_t p = eq + 1; p < inner.size(); ++p) {
    if (!std::isdigit(static_cast<unsigned char>(inner[p]))) return out;
    value = value * 10 + static_cast<std::uint64_t>(inner[p] - '0');
  }
  out.base = name.substr(0, open);
  out.label_key = inner.substr(0, eq);
  out.label_value = value;
  out.labeled = true;
  return out;
}

bool parse_metrics_document(const std::string& text, MetricsDocument& out,
                            std::string& error) {
  out = MetricsDocument{};
  JsonValue doc;
  if (!jsonmini::parse_document(text, doc, error)) return false;
  if (doc.kind != JsonValue::Kind::kObject) {
    error = "document is not a JSON object";
    return false;
  }
  if (doc.find("reports") != nullptr) return parse_suite(doc, out, error);
  if (const JsonValue* windows = doc.find("windows")) {
    // Flight-recorder ring: the last window is the freshest end state.
    if (windows->kind != JsonValue::Kind::kArray) {
      error = "windows is not an array";
      return false;
    }
    if (windows->array.empty()) {
      error = "ring has no windows";
      return false;
    }
    const JsonValue& last = windows->array.back();
    if (last.kind != JsonValue::Kind::kObject) {
      error = "ring window is not an object";
      return false;
    }
    return parse_scalar_section(last, "counters", out.counters, error) &&
           parse_scalar_section(last, "gauges", out.gauges, error) &&
           parse_histogram_section(last, out.histograms, error);
  }
  if (!is_object(doc.find("counters")) || !is_object(doc.find("gauges"))) {
    error = "not a metrics snapshot (no counters/gauges), ring, or suite";
    return false;
  }
  return parse_scalar_section(doc, "counters", out.counters, error) &&
         parse_scalar_section(doc, "gauges", out.gauges, error) &&
         parse_histogram_section(doc, out.histograms, error);
}

bool load_metrics_document(const std::string& path, MetricsDocument& out,
                           std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = path + ": cannot open";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) {
    error = path + ": empty file";
    return false;
  }
  if (!parse_metrics_document(text, out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

std::map<std::string, double> flatten(const MetricsDocument& doc) {
  std::map<std::string, double> flat = doc.counters;
  for (const auto& [name, value] : doc.gauges) flat[name] = value;
  for (const auto& [name, entry] : doc.histograms) {
    flat[name + ".count"] = static_cast<double>(entry.snapshot.count);
    flat[name + ".sum"] = static_cast<double>(entry.snapshot.sum);
    flat[name + ".min"] = static_cast<double>(entry.snapshot.min);
    flat[name + ".max"] = static_cast<double>(entry.snapshot.max);
    flat[name + ".p50"] = static_cast<double>(entry.p50);
    flat[name + ".p90"] = static_cast<double>(entry.p90);
    flat[name + ".p99"] = static_cast<double>(entry.p99);
  }
  return flat;
}

std::optional<std::string> render_slo_table(const MetricsDocument& doc,
                                            const std::string& metric,
                                            std::uint64_t objective) {
  const auto rows = series_of(doc, metric);
  if (rows.empty()) return std::nullopt;
  TextTable table({"series", "count", "p50", "p99",
                   "<= " + std::to_string(objective)});
  for (const auto& [label, entry] : rows) {
    std::string attainment = "n/a";
    if (entry->has_buckets) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f%%",
                    entry->snapshot.fraction_at_most(objective) * 100.0);
      attainment = buf;
    }
    table.add(label, std::to_string(entry->snapshot.count),
              std::to_string(entry->p50), std::to_string(entry->p99), attainment);
  }
  return table.render();
}

std::string render_quantile_table(const MetricsDocument& doc,
                                  const std::vector<double>& quantiles,
                                  const std::string& filter) {
  std::vector<std::string> header = {"histogram", "count", "min", "max"};
  for (const double q : quantiles) header.push_back(fmt_quantile_label(q));
  TextTable table(std::move(header));
  for (const auto& [name, entry] : doc.histograms) {
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    std::vector<std::string> row = {name, std::to_string(entry.snapshot.count),
                                    std::to_string(entry.snapshot.min),
                                    std::to_string(entry.snapshot.max)};
    for (const double q : quantiles) {
      if (entry.has_buckets) {
        row.push_back(std::to_string(entry.snapshot.p(q)));
      } else if (q == 0.5) {
        row.push_back(std::to_string(entry.p50));
      } else if (q == 0.9) {
        row.push_back(std::to_string(entry.p90));
      } else if (q == 0.99) {
        row.push_back(std::to_string(entry.p99));
      } else {
        // Off the recorded p50/p90/p99 grid and no buckets to interpolate.
        row.emplace_back("n/a");
      }
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string render_diff(const MetricsDocument& base, const MetricsDocument& now,
                        std::size_t top) {
  const auto base_flat = flatten(base);
  const auto now_flat = flatten(now);
  struct Row {
    const std::string* key;
    double base, now, magnitude;
  };
  std::vector<Row> rows;
  for (const auto& [key, now_value] : now_flat) {
    const auto it = base_flat.find(key);
    if (it == base_flat.end() || it->second == now_value) continue;
    const double magnitude = it->second != 0.0
                                 ? std::abs(now_value / it->second - 1.0)
                                 : std::numeric_limits<double>::infinity();
    rows.push_back({&key, it->second, now_value, magnitude});
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.magnitude > b.magnitude; });
  if (rows.size() > top) rows.resize(top);
  if (rows.empty()) return "(no overlapping metrics changed)\n";
  TextTable table({"metric", "base", "now", "delta"});
  for (const Row& row : rows) {
    const std::string delta =
        row.base != 0.0 ? format_fixed((row.now / row.base - 1.0) * 100.0, 1) + "%"
                        : std::string("new");
    table.add(*row.key, fmt_number(row.base), fmt_number(row.now), delta);
  }
  return table.render();
}

}  // namespace rispp::stats
