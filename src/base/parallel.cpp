#include "base/parallel.h"

#include "base/env.h"

namespace rispp {
namespace {

// Set while a thread executes job indices, so nested parallel_for calls fall
// back to a serial loop instead of deadlocking on the single-job pool.
thread_local bool t_inside_pool_job = false;

}  // namespace

unsigned parallel_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<unsigned>(parse_env_int("RISPP_THREADS", hw > 0 ? hw : 1, 1, 4096));
}

ThreadPool::ThreadPool(unsigned threads) : threads_(threads > 0 ? threads : 1) {
  // The caller participates in every job, so spawn one fewer worker.
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1 || t_inside_pool_job) {
    // Serial fallback with the same semantics as the pooled path: every
    // index runs, the lowest-index exception is rethrown.
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();
  run_indices(job);
  {
    // Wait until every worker that attached to the job has detached; after
    // that no other thread touches `job` and it can safely leave scope.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job.attached == 0; });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (job_ != nullptr) {
        job = job_;
        ++job->attached;
      }
    }
    if (job != nullptr) {
      run_indices(*job);
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        last = --job->attached == 0;
      }
      if (last) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_indices(Job& job) {
  t_inside_pool_job = true;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!job.error || i < job.error_index) {
        job.error = std::current_exception();
        job.error_index = i;
      }
    }
  }
  t_inside_pool_job = false;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(parallel_thread_count());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace rispp
