#include "base/parallel.h"

#include <algorithm>

#include "base/env.h"
#include "base/metrics.h"
#include "base/trace_event.h"

namespace rispp {
namespace {

// Set while a thread executes job indices, so nested parallel_for calls fall
// back to a serial loop instead of deadlocking on the single-job pool.
thread_local bool t_inside_pool_job = false;

}  // namespace

unsigned parallel_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<unsigned>(parse_env_int("RISPP_THREADS", hw > 0 ? hw : 1, 1, 4096));
}

ThreadPool::ThreadPool(unsigned threads) : threads_(threads > 0 ? threads : 1), slots_(threads_) {
  // The caller participates in every job (slot 0), so spawn one fewer worker.
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ <= 1 || n == 1 || t_inside_pool_job) {
    // Serial fallback with the same semantics as the pooled path: every
    // index runs in increasing order, the lowest-index exception is
    // rethrown.
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  // Pre-split [0, n) and deal chunks round-robin in increasing order: slot s
  // owns chunks s, s+threads, ... — each deque is ordered, and fronts across
  // slots 0..threads-1 hold the globally smallest pending chunks.
  const std::size_t chunk_size =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(threads_) * 8));
  std::size_t begin = 0;
  unsigned slot = 0;
  while (begin < n) {
    const std::size_t end = std::min(n, begin + chunk_size);
    {
      std::lock_guard<std::mutex> lock(slots_[slot].mutex);
      slots_[slot].chunks.push_back(Chunk{begin, end});
    }
    begin = end;
    slot = (slot + 1) % threads_;
  }

  static MetricCounter& jobs = metric_counter("pool.jobs");
  jobs.add();

  Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();
  run_chunks(job, /*slot=*/0);
  {
    // Wait until every worker that attached to the job has detached; after
    // that no other thread touches `job` and it can safely leave scope.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job.attached == 0; });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::worker_loop(unsigned slot) {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (job_ != nullptr) {
        job = job_;
        ++job->attached;
      }
    }
    if (job != nullptr) {
      run_chunks(*job, slot);
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        last = --job->attached == 0;
      }
      if (last) done_cv_.notify_all();
    }
  }
}

/// Pops the owner's front chunk, or — when the own deque is empty — steals
/// from the back of another slot's deque. Owners drain FIFO so each thread
/// runs its indices in increasing order; thieves take from the back so they
/// grab the chunk farthest from what the owner touches next.
bool ThreadPool::claim(unsigned slot, Chunk& out) {
  {
    std::lock_guard<std::mutex> lock(slots_[slot].mutex);
    if (!slots_[slot].chunks.empty()) {
      out = slots_[slot].chunks.front();
      slots_[slot].chunks.pop_front();
      return true;
    }
  }
  for (unsigned k = 1; k < threads_; ++k) {
    const unsigned victim = (slot + k) % threads_;
    bool stolen = false;
    {
      std::lock_guard<std::mutex> lock(slots_[victim].mutex);
      if (!slots_[victim].chunks.empty()) {
        out = slots_[victim].chunks.back();
        slots_[victim].chunks.pop_back();
        stolen = true;
      }
    }
    if (stolen) {
      static MetricCounter& steals = metric_counter("pool.steals");
      steals.add();
      trace_instant_now(TraceTrack::kThreadPool, "steal");
      return true;
    }
  }
  // All chunks are claimed (no new chunks appear mid-job), so it is safe to
  // detach even while other participants still run theirs.
  return false;
}

void ThreadPool::run_chunks(Job& job, unsigned slot) {
  t_inside_pool_job = true;
  // B/E pair rather than TraceSpan: steal instants land on this thread's row
  // while the span is open, and file order per row must stay monotonic.
  trace_begin_now(TraceTrack::kThreadPool, "job");
  Chunk chunk;
  while (claim(slot, chunk)) {
    for (std::size_t i = chunk.begin; i < chunk.end; ++i) {
      try {
        (*job.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!job.error || i < job.error_index) {
          job.error = std::current_exception();
          job.error_index = i;
        }
      }
    }
  }
  trace_end_now(TraceTrack::kThreadPool, "job");
  t_inside_pool_job = false;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(parallel_thread_count());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(n, fn);
}

}  // namespace rispp
