// Exact integer apportionment (largest-remainder / Hamilton's method).
//
// Several layers need to split an integer resource proportionally with an
// *exact* sum: the fleet mix expansion splits N sessions across content
// kinds, and the fabric arbiter splits Atom Containers across tenants by
// benefit weight. Rounding each share independently can miss the total by
// ±(kinds-1); the largest-remainder rule never does, and breaking remainder
// ties by lowest index keeps the split fully deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace rispp {

/// Splits `seats` into integer shares proportional to `weights`; the result
/// always sums to exactly `seats`. Each share starts at its floored quota
/// (seats * w / W); the remaining seats go to the largest fractional
/// remainders, ties to the lowest index. An all-zero weight vector degrades
/// to uniform weights (every empty-handed caller still gets a deterministic
/// split). An empty weight vector returns empty (seats must then be 0).
std::vector<std::uint64_t> apportion_largest_remainder(
    std::uint64_t seats, std::span<const std::uint64_t> weights);

}  // namespace rispp
