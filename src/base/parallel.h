// A small fixed-size thread pool for fanning independent work items across
// cores (bench/common.h run_sweep, the encoder's wavefront rows).
// Deliberately minimal: one job at a time and the caller participates — but
// scheduling is work-stealing: the index range is pre-split into chunks
// dealt round-robin (in increasing order) onto per-thread deques; owners pop
// their own deque FIFO, idle threads steal from other deques' backs. Uneven
// items no longer serialize behind one straggler, and results stay in
// deterministic slots regardless of thread count — RISPP_THREADS=1
// reproduces multi-threaded results exactly.
//
// The increasing-order FIFO ownership gives pipelined jobs (the encoder
// wavefront, which spin-waits on lower-index progress) a liveness
// guarantee: the smallest unfinished index is always either running or at
// the front of a deque whose owner is running a smaller index.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rispp {

/// Worker count parallel_for uses: RISPP_THREADS if set, else
/// std::thread::hardware_concurrency() (min 1). RISPP_THREADS must be an
/// integer >= 1 — anything else (garbage, 0, negative) is a loud error
/// (base/env.h), not a silent fallback.
unsigned parallel_thread_count();

class ThreadPool {
 public:
  /// `threads` is the total concurrency including the calling thread;
  /// `threads <= 1` makes parallel_for a serial loop.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return threads_; }

  /// Invokes fn(0) .. fn(n-1) exactly once each, concurrently, and returns
  /// once all calls finished. If any call throws, the exception of the
  /// lowest-index failure is rethrown in the caller (the remaining indices
  /// still run). Reentrant calls from inside a worker run serially, in
  /// increasing index order.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized from parallel_thread_count().
  static ThreadPool& global();

 private:
  /// Contiguous index range [begin, end), executed in increasing order.
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// One work deque per participant (slot 0 = the caller).
  struct Slot {
    std::mutex mutex;
    std::deque<Chunk> chunks;
  };

  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    unsigned attached = 0;  // participants inside run_chunks (mutex-guarded)
    std::exception_ptr error;            // lowest-index failure (mutex-guarded)
    std::size_t error_index = 0;
  };

  void worker_loop(unsigned slot);
  void run_chunks(Job& job, unsigned slot);
  bool claim(unsigned slot, Chunk& out);

  unsigned threads_;
  std::vector<std::thread> workers_;
  std::vector<Slot> slots_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers: a new job arrived / stop
  std::condition_variable done_cv_;   // caller: all participants detached
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

}  // namespace rispp
