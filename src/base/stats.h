// Offline analysis over metrics snapshots — the library behind rispp_stats.
//
// Three input shapes fold into one MetricsDocument:
//   * a registry snapshot ({"counters", "gauges", "histograms"}) as written
//     by RISPP_METRICS — histograms arrive with their full bucket arrays, so
//     quantiles and SLO attainment are computable at any objective;
//   * a flight-recorder ring ({"interval_ms", "windows": [...]}) — the last
//     window's scalars and histogram summaries (no buckets: attainment and
//     off-grid quantiles degrade to "n/a");
//   * a BENCH_SUITE.json — every report's flat metrics map, keys prefixed
//     "<report>/" so two suites diff report-by-report.
//
// The renderers are pure string producers over MetricsDocument so the Stats.*
// tests exercise them without a CLI or the filesystem.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/metrics.h"

namespace rispp::stats {

/// One histogram as read back from a document. `snapshot.buckets` is empty
/// for ring/suite inputs; the p* fields always carry what the document said.
struct HistogramEntry {
  HistogramSnapshot snapshot;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  bool has_buckets = false;
};

struct MetricsDocument {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramEntry> histograms;
};

/// A histogram series name split at its label suffix:
/// "rtm.arbiter.port_wait_cycles{tenant=3}" → base + ("tenant", 3).
/// Unlabeled names keep base == name and labeled == false.
struct SeriesName {
  std::string base;
  std::string label_key;
  std::uint64_t label_value = 0;
  bool labeled = false;
};
SeriesName parse_series_name(const std::string& name);

/// Parses `text` (any of the three shapes above) into `out`. On failure
/// returns false and fills `error`; `out` is left unspecified.
bool parse_metrics_document(const std::string& text, MetricsDocument& out,
                            std::string& error);

/// Reads and parses `path`; empty/unreadable files are errors here (a CLI
/// pointing at a missing snapshot is a user mistake worth a message).
bool load_metrics_document(const std::string& path, MetricsDocument& out,
                           std::string& error);

/// Counters, gauges and histogram summaries (<name>.count/.sum/.min/.max/
/// .p50/.p90/.p99) as one flat name → value map — the diff currency.
std::map<std::string, double> flatten(const MetricsDocument& doc);

/// Per-series SLO attainment for `metric`: one row per series whose base
/// name matches (the unlabeled series plus every label variant, so a
/// per-tenant family renders one row per tenant). Attainment is the fraction
/// of recorded values ≤ `objective` (conservative — bucket-granular);
/// series without buckets show "n/a". Returns nullopt when no series
/// matches.
std::optional<std::string> render_slo_table(const MetricsDocument& doc,
                                            const std::string& metric,
                                            std::uint64_t objective);

/// All histograms (optionally only those whose name contains `filter`) with
/// count/min/max plus the requested quantiles. Quantiles beyond the recorded
/// p50/p90/p99 grid need buckets; without them the cell reads "n/a".
std::string render_quantile_table(const MetricsDocument& doc,
                                  const std::vector<double>& quantiles,
                                  const std::string& filter);

/// The `top` largest relative movements between two documents' flattened
/// views (a metric appearing from zero ranks highest, shown as "new";
/// metrics present on only one side are skipped).
std::string render_diff(const MetricsDocument& base, const MetricsDocument& now,
                        std::size_t top);

}  // namespace rispp::stats
