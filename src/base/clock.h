// Conversion between wall-clock time and simulated cycles.
//
// The DATE'08 prototype runs a Leon2/DLX pipeline; we model a 100 MHz core
// clock, which places the paper's 874.03 us average atom reconfiguration at
// ~87,403 cycles and keeps all figure axes in the paper's value ranges.
#pragma once

#include <cstdint>

#include "base/types.h"

namespace rispp {

inline constexpr std::uint64_t kCoreClockHz = 100'000'000;

/// Microseconds -> cycles at the model core clock.
constexpr Cycles cycles_from_us(double us) {
  return static_cast<Cycles>(us * (static_cast<double>(kCoreClockHz) / 1e6));
}

/// Cycles -> microseconds at the model core clock.
constexpr double us_from_cycles(Cycles c) {
  return static_cast<double>(c) / (static_cast<double>(kCoreClockHz) / 1e6);
}

}  // namespace rispp
