#include "base/log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/env.h"

namespace rispp {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void init_log_level_from_env() {
  // Strict like RISPP_FRAMES/RISPP_THREADS (base/env.h): a typo'd level
  // silently keeping the default would hide the logs someone asked for.
  const char* env = std::getenv("RISPP_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  if (std::strcmp(env, "debug") == 0) g_level = LogLevel::kDebug;
  else if (std::strcmp(env, "info") == 0) g_level = LogLevel::kInfo;
  else if (std::strcmp(env, "warn") == 0) g_level = LogLevel::kWarn;
  else if (std::strcmp(env, "error") == 0) g_level = LogLevel::kError;
  else if (std::strcmp(env, "off") == 0) g_level = LogLevel::kOff;
  else {
    std::fprintf(stderr, "RISPP_LOG_LEVEL=%s is not one of debug|info|warn|error|off\n",
                 env);
    std::exit(kEnvParseExitCode);
  }
}

namespace detail {
void emit_log(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[rispp %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace rispp
