#include "base/trace_event.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "base/json_mini.h"
#include "base/log.h"
#include "base/metrics.h"

namespace rispp {

namespace trace_detail {
std::atomic<bool> g_enabled{false};
}  // namespace trace_detail

namespace {

// Events per chunk (~400 KB each); chunks chain so a buffer grows while
// tracing without ever moving published events. The per-thread cap bounds a
// runaway trace at ~50 MB of events.
constexpr std::size_t kChunkEvents = std::size_t{1} << 13;
constexpr std::uint64_t kMaxEventsPerThread = std::uint64_t{1} << 20;

struct Event {
  const char* name = nullptr;
  double ts = 0.0;
  double dur = 0.0;
  double value = 0.0;
  std::uint32_t tid = 0;
  TraceTrack track = TraceTrack::kReconfigPort;
  char phase = 'X';
};

struct Chunk {
  std::array<Event, kChunkEvents> events;
  // Single-writer publication: the owning thread stores size with release
  // after filling the slot; the flusher reads it with acquire. Full chunks
  // link the next one the same way.
  std::atomic<std::size_t> size{0};
  std::atomic<Chunk*> next{nullptr};
};

/// One event buffer per emitting thread. Owned (and leaked) by the registry
/// so the at-exit flush can read buffers of threads that already exited.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  Chunk* head = nullptr;
  Chunk* tail = nullptr;          // writer-only
  std::uint64_t appended = 0;     // writer-only
  std::atomic<std::uint64_t> dropped{0};
  std::uint64_t session_skip = 0;  // flushed watermark (registry mutex)

  void append(const Event& e) {
    if (appended >= kMaxEventsPerThread) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::size_t n = tail->size.load(std::memory_order_relaxed);
    if (n == kChunkEvents) {
      Chunk* grown = new Chunk;
      tail->next.store(grown, std::memory_order_release);
      tail = grown;
      n = 0;
    }
    tail->events[n] = e;
    tail->size.store(n + 1, std::memory_order_release);
    ++appended;
  }
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<ThreadBuffer*> buffers;
  std::unordered_set<std::string> interned;
  std::string out_path;
  bool session_active = false;
};

TraceRegistry& registry() {
  // Leaked: the at-exit flush may run after static destructors.
  static TraceRegistry* r = new TraceRegistry;
  return *r;
}

// Lane ids and thread-buffer ids come from the same counter so a simulated
// lane can never collide with a real thread's row.
std::atomic<std::uint32_t> g_next_tid{1};

// Wall-clock base of the active session (steady-clock nanoseconds).
std::atomic<std::int64_t> g_base_ns{0};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* t_buffer = [] {
    ThreadBuffer* b = new ThreadBuffer;
    b->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    b->head = b->tail = new Chunk;
    TraceRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(b);
    return b;
  }();
  return *t_buffer;
}

void emit(TraceTrack track, TraceLane lane, const char* name, char phase, double ts,
          double dur = 0.0, double value = 0.0) {
  Event e;
  e.name = name;
  e.ts = ts;
  e.dur = dur;
  e.value = value;
  e.tid = lane;
  e.track = track;
  e.phase = phase;
  local_buffer().append(e);
}

/// Walks the published events of `b`, invoking fn on each with index >=
/// skip; returns the published count.
template <typename Fn>
std::uint64_t for_each_published(const ThreadBuffer& b, std::uint64_t skip, Fn&& fn) {
  std::uint64_t index = 0;
  for (const Chunk* c = b.head; c != nullptr; c = c->next.load(std::memory_order_acquire)) {
    const std::size_t n = c->size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i, ++index)
      if (index >= skip) fn(c->events[i]);
    if (n < kChunkEvents) break;  // later chunks are not published yet
  }
  return index;
}

std::uint64_t count_published(const ThreadBuffer& b) {
  return for_each_published(b, ~std::uint64_t{0}, [](const Event&) {});
}

void write_escaped(std::ostream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out << '\\' << *s;
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out << buf;
    } else {
      out << *s;
    }
  }
}

int track_pid(TraceTrack track) { return static_cast<int>(track) + 1; }

void write_event(std::ostream& out, bool& first, const Event& e) {
  out << (first ? "\n" : ",\n");
  first = false;
  char buf[64];
  if (e.phase == 'M') {
    out << R"({"name":"thread_name","ph":"M","pid":)" << track_pid(e.track)
        << ",\"tid\":" << e.tid << R"(,"args":{"name":")";
    write_escaped(out, e.name);
    out << "\"}}";
    return;
  }
  out << "{\"name\":\"";
  write_escaped(out, e.name);
  out << "\",\"ph\":\"" << e.phase << "\",\"pid\":" << track_pid(e.track)
      << ",\"tid\":" << e.tid;
  std::snprintf(buf, sizeof buf, "%.3f", e.ts);
  out << ",\"ts\":" << buf;
  if (e.phase == 'X') {
    std::snprintf(buf, sizeof buf, "%.3f", e.dur);
    out << ",\"dur\":" << buf;
  } else if (e.phase == 'i') {
    out << ",\"s\":\"t\"";
  } else if (e.phase == 'C') {
    std::snprintf(buf, sizeof buf, "%.17g", e.value);
    out << ",\"args\":{\"value\":" << buf << "}";
  }
  out << "}";
}

/// Serializes everything published since the session watermark and advances
/// the watermarks. Caller holds the registry mutex; tracing must already be
/// disabled (or never enabled) so rows stay ordered.
void flush_locked(TraceRegistry& r) {
  const std::filesystem::path target(r.out_path);
  std::error_code ec;
  if (!target.parent_path().empty())
    std::filesystem::create_directories(target.parent_path(), ec);
  std::ofstream out(target, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[rispp] cannot write RISPP_TRACE file %s\n",
                 r.out_path.c_str());
    return;
  }

  // Pass 1: which tracks appear (for process_name metadata).
  std::array<bool, kTraceTrackCount> present{};
  std::uint64_t dropped = 0;
  for (const ThreadBuffer* b : r.buffers) {
    for_each_published(*b, b->session_skip, [&](const Event& e) {
      present[static_cast<std::size_t>(e.track)] = true;
    });
    dropped += b->dropped.load(std::memory_order_relaxed);
  }
  const auto counters = metrics_counter_snapshot();
  const auto gauges = metrics_gauge_snapshot();
  if (!counters.empty() || !gauges.empty() || dropped > 0)
    present[static_cast<std::size_t>(TraceTrack::kMetrics)] = true;

  out << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t t = 0; t < kTraceTrackCount; ++t) {
    if (!present[t]) continue;
    out << (first ? "\n" : ",\n");
    first = false;
    out << R"({"name":"process_name","ph":"M","pid":)"
        << track_pid(static_cast<TraceTrack>(t)) << R"(,"tid":0,"args":{"name":")";
    write_escaped(out, trace_track_name(static_cast<TraceTrack>(t)));
    out << "\"}}";
  }

  // Pass 2: the events, one buffer at a time (each (track, lane) row lives
  // in exactly one buffer in emission order, so rows stay monotonic).
  for (ThreadBuffer* b : r.buffers)
    b->session_skip = for_each_published(*b, b->session_skip,
                                         [&](const Event& e) { write_event(out, first, e); });

  // Final registry snapshot as counter samples on the metrics track.
  const double end_ts = trace_now_us();
  const auto write_counter = [&](const std::string& name, double value) {
    Event e;
    e.name = name.c_str();
    e.ts = end_ts >= 0.0 ? end_ts : 0.0;
    e.value = value;
    e.tid = 0;
    e.track = TraceTrack::kMetrics;
    e.phase = 'C';
    write_event(out, first, e);
  };
  for (const auto& [name, value] : counters) write_counter(name, static_cast<double>(value));
  for (const auto& [name, value] : gauges) write_counter(name, value);
  if (dropped > 0) write_counter("trace.dropped_events", static_cast<double>(dropped));

  out << "\n]}\n";
  out.flush();
  if (!out.good())
    std::fprintf(stderr, "[rispp] failed writing RISPP_TRACE file %s\n",
                 r.out_path.c_str());
}

}  // namespace

const char* trace_track_name(TraceTrack track) {
  switch (track) {
    case TraceTrack::kReconfigPort: return "reconfig port";
    case TraceTrack::kExecutor: return "executor";
    case TraceTrack::kRtm: return "run-time manager";
    case TraceTrack::kThreadPool: return "thread pool";
    case TraceTrack::kBench: return "bench driver";
    case TraceTrack::kMetrics: return "metrics";
    case TraceTrack::kFleet: return "fleet";
    case TraceTrack::kArbiter: return "fabric arbiter";
  }
  return "?";
}

TraceLane trace_new_lane() { return g_next_tid.fetch_add(1, std::memory_order_relaxed); }

void trace_name_lane(TraceTrack track, TraceLane lane, const char* name) {
  if (!trace_enabled()) return;
  emit(track, lane, name, 'M', 0.0);
}

const char* trace_intern(std::string_view name) {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.interned.emplace(name).first->c_str();
}

void trace_complete(TraceTrack track, TraceLane lane, const char* name, double ts_us,
                    double dur_us) {
  if (!trace_enabled()) return;
  emit(track, lane, name, 'X', ts_us, dur_us);
}

void trace_begin(TraceTrack track, TraceLane lane, const char* name, double ts_us) {
  if (!trace_enabled()) return;
  emit(track, lane, name, 'B', ts_us);
}

void trace_end(TraceTrack track, TraceLane lane, const char* name, double ts_us) {
  if (!trace_enabled()) return;
  emit(track, lane, name, 'E', ts_us);
}

void trace_instant(TraceTrack track, TraceLane lane, const char* name, double ts_us) {
  if (!trace_enabled()) return;
  emit(track, lane, name, 'i', ts_us);
}

void trace_counter(TraceTrack track, TraceLane lane, const char* name, double ts_us,
                   double value) {
  if (!trace_enabled()) return;
  emit(track, lane, name, 'C', ts_us, 0.0, value);
}

double trace_now_us() {
  return static_cast<double>(steady_ns() - g_base_ns.load(std::memory_order_relaxed)) /
         1000.0;
}

void trace_instant_now(TraceTrack track, const char* name) {
  if (!trace_enabled()) return;
  emit(track, local_buffer().tid, name, 'i', trace_now_us());
}

void trace_counter_now(TraceTrack track, const char* name, double value) {
  if (!trace_enabled()) return;
  emit(track, local_buffer().tid, name, 'C', trace_now_us(), 0.0, value);
}

void trace_begin_now(TraceTrack track, const char* name) {
  if (!trace_enabled()) return;
  emit(track, local_buffer().tid, name, 'B', trace_now_us());
}

void trace_end_now(TraceTrack track, const char* name) {
  if (!trace_enabled()) return;
  emit(track, local_buffer().tid, name, 'E', trace_now_us());
}

TraceSpan::TraceSpan(TraceTrack track, const char* name)
    : name_(name), start_us_(trace_enabled() ? trace_now_us() : -1.0), track_(track) {}

TraceSpan::~TraceSpan() {
  if (start_us_ < 0.0 || !trace_enabled()) return;
  emit(track_, local_buffer().tid, name_, 'X', start_us_, trace_now_us() - start_us_);
}

void start_trace_session(const std::string& path) {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (r.session_active) {
    trace_detail::g_enabled.store(false, std::memory_order_relaxed);
    flush_locked(r);
  }
  r.out_path = path;
  for (ThreadBuffer* b : r.buffers) b->session_skip = count_published(*b);
  g_base_ns.store(steady_ns(), std::memory_order_relaxed);
  r.session_active = true;
  trace_detail::g_enabled.store(true, std::memory_order_relaxed);
}

void stop_trace_session() {
  TraceRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (!r.session_active) return;
  trace_detail::g_enabled.store(false, std::memory_order_relaxed);
  flush_locked(r);
  r.session_active = false;
}

void init_trace_from_env() {
  const char* env = std::getenv("RISPP_TRACE");
  if (env == nullptr || *env == '\0') return;
  static bool armed = false;
  if (!armed) {
    armed = true;
    std::atexit(stop_trace_session);
  }
  start_trace_session(env);
}

// ---------------------------------------------------------------------------
// Validation: a minimal JSON reader plus the Chrome-trace well-formedness
// rules the tests and tools/trace_check enforce.

namespace {

using jsonmini::JsonParser;
using jsonmini::JsonValue;

std::optional<double> event_number(const JsonValue& event, std::string_view key) {
  const JsonValue* v = event.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return std::nullopt;
  return v->number;
}

}  // namespace

std::optional<std::string> validate_chrome_trace(std::istream& in, TraceValidation* info) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return "empty input";

  JsonValue root;
  JsonParser parser{text, 0, {}};
  if (!parser.parse_value(root)) return parser.error;
  parser.skip_ws();
  if (parser.pos != text.size()) return "trailing garbage after the JSON value";

  const JsonValue* events = nullptr;
  if (root.kind == JsonValue::Kind::kArray) {
    events = &root;
  } else if (root.kind == JsonValue::Kind::kObject) {
    events = root.find("traceEvents");
    if (events == nullptr || events->kind != JsonValue::Kind::kArray)
      return "top-level object has no \"traceEvents\" array";
  } else {
    return "top level is neither an array nor an object";
  }

  // Per (pid, tid) row: last timestamp (file-order monotonicity) and the
  // open B-event stack.
  std::map<std::uint64_t, double> last_ts;
  std::map<std::uint64_t, std::vector<std::string>> open;
  std::set<std::int64_t> pids;
  std::set<std::string> counter_names;
  std::size_t event_count = 0;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "event " + std::to_string(i);
    if (e.kind != JsonValue::Kind::kObject) return at + ": not an object";
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->string.size() != 1)
      return at + ": missing or invalid \"ph\"";
    const char phase = ph->string[0];
    if (std::strchr("XBEiICM", phase) == nullptr)
      return at + ": unsupported phase '" + ph->string + "'";
    const JsonValue* name = e.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString || name->string.empty())
      return at + ": missing or empty \"name\"";
    const auto pid = event_number(e, "pid");
    const auto tid = event_number(e, "tid");
    if (!pid || !tid) return at + ": missing numeric \"pid\"/\"tid\"";
    if (phase == 'M') continue;  // metadata carries no timestamp

    const auto ts = event_number(e, "ts");
    if (!ts) return at + ": missing numeric \"ts\"";
    const std::uint64_t row = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                                   static_cast<std::int64_t>(*pid)))
                               << 32) |
                              static_cast<std::uint32_t>(static_cast<std::int64_t>(*tid));
    const auto seen = last_ts.find(row);
    if (seen != last_ts.end() && *ts < seen->second - 1e-9)
      return at + " (" + name->string + "): timestamp " + std::to_string(*ts) +
             " goes backwards on pid " + std::to_string(*pid) + " tid " +
             std::to_string(*tid) + " (previous " + std::to_string(seen->second) + ")";
    last_ts[row] = std::max(seen == last_ts.end() ? *ts : seen->second, *ts);

    if (phase == 'X') {
      const auto dur = event_number(e, "dur");
      if (!dur || *dur < 0.0) return at + ": 'X' event without a non-negative \"dur\"";
    } else if (phase == 'B') {
      open[row].push_back(name->string);
    } else if (phase == 'E') {
      auto& stack = open[row];
      if (stack.empty()) return at + ": 'E' event without a matching 'B'";
      if (stack.back() != name->string)
        return at + ": 'E' event \"" + name->string + "\" does not match open 'B' \"" +
               stack.back() + "\"";
      stack.pop_back();
    } else if (phase == 'C') {
      counter_names.insert(name->string);
    }
    pids.insert(static_cast<std::int64_t>(*pid));
    ++event_count;
  }

  for (const auto& [row, stack] : open)
    if (!stack.empty())
      return "unclosed 'B' event \"" + stack.back() + "\" on row " + std::to_string(row);

  if (info != nullptr) {
    info->events = event_count;
    info->tracks = pids.size();
    info->counter_names.assign(counter_names.begin(), counter_names.end());
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Startup hook: every binary that links any instrumented code (they all
// reference trace_enabled's definition here) honors RISPP_LOG_LEVEL,
// RISPP_METRICS and RISPP_TRACE without touching its main().

namespace {
[[maybe_unused]] const bool g_env_bootstrap = [] {
  init_log_level_from_env();
  init_metrics_from_env();
  init_trace_from_env();
  // Last so its atexit hook runs first (LIFO): the sampler stops before the
  // trace flush and the final metrics write see a quiet registry.
  init_flight_recorder_from_env();
  return true;
}();
}  // namespace

}  // namespace rispp
