// Fundamental scalar types and identifiers used throughout the RISPP
// run-time-system model.
#pragma once

#include <cstdint>
#include <limits>

namespace rispp {

/// Simulated processor clock cycles. The model clock is 100 MHz (see
/// base/clock.h), matching the DATE'08 prototype discussion.
using Cycles = std::uint64_t;

/// Index of an atom *type* in the global AtomLibrary (BytePack, PointFilter,
/// Clip3, ... for the H.264 instance).
using AtomTypeId = std::uint16_t;

/// Index of a Special Instruction in a SpecialInstructionSet.
using SiId = std::uint16_t;

/// Index of a Molecule within one SI's molecule list. kSoftwareMolecule
/// denotes the trap-based execution with the base instruction set.
using MoleculeId = std::uint16_t;
inline constexpr MoleculeId kSoftwareMolecule = std::numeric_limits<MoleculeId>::max();

/// Index of a physical Atom Container.
using ContainerId = std::uint16_t;
inline constexpr ContainerId kNoContainer = std::numeric_limits<ContainerId>::max();

/// One instance count inside a Molecule vector.
using AtomCount = std::uint16_t;

inline constexpr Cycles kMaxCycles = std::numeric_limits<Cycles>::max();

}  // namespace rispp
