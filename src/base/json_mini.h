// Minimal recursive-descent JSON reader shared by the validators and the
// stats toolchain.
//
// This started life inside trace_event.cpp as the Chrome-trace validator's
// private parser; the metrics snapshot validator and rispp_stats need the
// same thing, so it lives here now. It is a *reader* for trusted-ish tool
// input, not a general JSON library: numbers become double, \u escapes are
// kept verbatim (no UTF-8 decoding), and object keys preserve file order so
// duplicate keys stay visible to callers that care.
#pragma once

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rispp::jsonmini {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

struct JsonParser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty())
      error = message + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (c == 't' || c == 'f') {
      const bool value = c == 't';
      const char* word = value ? "true" : "false";
      if (text.compare(pos, std::strlen(word), word) != 0) return fail("invalid literal");
      pos += std::strlen(word);
      out.kind = JsonValue::Kind::kBool;
      out.boolean = value;
      return true;
    }
    if (c == 'n') {
      if (text.compare(pos, 4, "null") != 0) return fail("invalid literal");
      pos += 4;
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    char* end = nullptr;
    const double number = std::strtod(text.c_str() + pos, &end);
    if (end == text.c_str() + pos) return fail("invalid value");
    pos = static_cast<std::size_t>(end - text.c_str());
    out.kind = JsonValue::Kind::kNumber;
    out.number = number;
    return true;
  }

  bool parse_string(std::string& out) {
    if (text[pos] != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) break;
        const char esc = text[pos];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 >= text.size()) return fail("truncated \\u escape");
            // Validation only: keep the raw escape, no UTF-8 decoding.
            out += "\\u";
            out.append(text, pos + 1, 4);
            pos += 4;
            break;
          }
          default: return fail("invalid escape");
        }
        ++pos;
        continue;
      }
      out += c;
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos >= text.size()) return fail("unterminated array");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos >= text.size() || text[pos] != '"') return fail("expected object key");
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos >= text.size()) return fail("unterminated object");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

/// Parses `text` as exactly one JSON document. Returns true on success;
/// otherwise `error` describes the failure (including trailing garbage).
inline bool parse_document(const std::string& text, JsonValue& out, std::string& error) {
  JsonParser parser{text, 0, {}};
  if (!parser.parse_value(out)) {
    error = parser.error;
    return false;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    error = "trailing garbage after the JSON value";
    return false;
  }
  return true;
}

}  // namespace rispp::jsonmini
