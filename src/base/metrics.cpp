#include "base/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <istream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "base/check.h"
#include "base/env.h"
#include "base/json_mini.h"
#include "base/trace_event.h"

namespace rispp {
namespace {

// Leaked on purpose: counters registered from function-local statics are
// read by the at-exit flush, which runs after static destructors would.
struct MetricsRegistry {
  std::mutex mutex;
  std::map<std::string, MetricCounter*, std::less<>> counters;
  std::map<std::string, MetricGauge*, std::less<>> gauges;
  std::map<std::string, MetricHistogram*, std::less<>> histograms;
  std::string out_path;  // RISPP_METRICS target, written at exit
};

MetricsRegistry& registry() {
  static MetricsRegistry* r = new MetricsRegistry;
  return *r;
}

void append_number(std::ostringstream& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    out << static_cast<long long>(v);
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out << buf;
  }
}

void write_metrics_at_exit() {
  MetricsRegistry& r = registry();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    path = r.out_path;
  }
  if (!path.empty()) write_metrics_json(path);
}

/// Shards map recording threads round-robin; with at most kShards live
/// recorders every shard is single-writer and the relaxed fetch_adds never
/// contend.
std::size_t thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (value < seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// MetricHistogram

struct MetricHistogram::Shard {
  std::array<std::atomic<std::uint64_t>, kBucketCount> counts{};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};
};

MetricHistogram::~MetricHistogram() {
  for (auto& slot : shards_) delete slot.load(std::memory_order_acquire);
}

std::size_t MetricHistogram::bucket_index(std::uint64_t value) {
  // Values below two octaves of sub-buckets are their own bucket (exact);
  // above, the top kSubBucketBits+1 bits pick (octave, linear sub-bucket).
  if (value < kSubBuckets * 2) return static_cast<std::size_t>(value);
  const unsigned msb = 63u - static_cast<unsigned>(__builtin_clzll(value));
  const unsigned shift = msb - kSubBucketBits;
  return (static_cast<std::size_t>(shift + 1) << kSubBucketBits) +
         static_cast<std::size_t>((value >> shift) & (kSubBuckets - 1));
}

std::uint64_t MetricHistogram::bucket_upper_bound(std::size_t index) {
  RISPP_CHECK(index < kBucketCount);
  if (index < kSubBuckets * 2) return index;
  const unsigned shift = static_cast<unsigned>(index >> kSubBucketBits) - 1;
  const std::uint64_t sub = index & (kSubBuckets - 1);
  const std::uint64_t low = (kSubBuckets + sub) << shift;
  return low + ((std::uint64_t{1} << shift) - 1);
}

MetricHistogram::Shard& MetricHistogram::shard_for_thread() {
  std::atomic<Shard*>& slot = shards_[thread_ordinal() % kShards];
  Shard* shard = slot.load(std::memory_order_acquire);
  if (shard == nullptr) {
    Shard* fresh = new Shard;
    if (slot.compare_exchange_strong(shard, fresh, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      shard = fresh;
    } else {
      delete fresh;  // another thread won the install race
    }
  }
  return *shard;
}

void MetricHistogram::record(std::uint64_t value) {
  Shard& s = shard_for_thread();
  s.counts[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  atomic_min(s.min, value);
  atomic_max(s.max, value);
}

HistogramSnapshot MetricHistogram::snapshot() const {
  std::vector<std::uint64_t> totals(kBucketCount, 0);
  HistogramSnapshot out;
  out.min = ~std::uint64_t{0};
  for (const auto& slot : shards_) {
    const Shard* s = slot.load(std::memory_order_acquire);
    if (s == nullptr) continue;
    for (std::size_t b = 0; b < kBucketCount; ++b)
      totals[b] += s->counts[b].load(std::memory_order_relaxed);
    out.sum += s->sum.load(std::memory_order_relaxed);
    out.min = std::min(out.min, s->min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, s->max.load(std::memory_order_relaxed));
  }
  for (std::size_t b = 0; b < kBucketCount; ++b) {
    if (totals[b] == 0) continue;
    out.count += totals[b];
    out.buckets.emplace_back(bucket_upper_bound(b), totals[b]);
  }
  if (out.count == 0) {
    out.min = 0;
    out.max = 0;
  }
  return out;
}

std::uint64_t HistogramSnapshot::p(double q) const {
  if (count == 0) return 0;
  std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(count));
  if (target >= count) target = count - 1;
  std::uint64_t cumulative = 0;
  for (const auto& [upper, n] : buckets) {
    cumulative += n;
    // The target order statistic lies in this bucket; its upper bound is
    // within one bucket width (≤ 1/kSubBuckets relative) above it. Clamping
    // to the observed max only ever moves the answer closer.
    if (cumulative > target) return std::min(upper, max);
  }
  return max;
}

double HistogramSnapshot::fraction_at_most(std::uint64_t objective) const {
  if (count == 0) return 1.0;
  std::uint64_t attained = 0;
  for (const auto& [upper, n] : buckets) {
    if (upper > objective) break;
    attained += n;
  }
  return static_cast<double>(attained) / static_cast<double>(count);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b >= other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a >= buckets.size() || other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first, buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

// ---------------------------------------------------------------------------
// Registry

MetricCounter& metric_counter(std::string_view name) {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.counters.find(name);
  if (it == r.counters.end())
    it = r.counters.emplace(std::string(name), new MetricCounter).first;
  return *it->second;
}

MetricGauge& metric_gauge(std::string_view name) {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end())
    it = r.gauges.emplace(std::string(name), new MetricGauge).first;
  return *it->second;
}

MetricHistogram& metric_histogram(std::string_view name) {
  RISPP_CHECK(name.find_first_of("{}=\"") == std::string_view::npos);
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end())
    it = r.histograms.emplace(std::string(name), new MetricHistogram).first;
  return *it->second;
}

MetricHistogram& metric_histogram(std::string_view name, const MetricLabel& label) {
  RISPP_CHECK(name.find_first_of("{}=\"") == std::string_view::npos);
  RISPP_CHECK(!label.key.empty() &&
              label.key.find_first_of("{}=\"") == std::string_view::npos);
  std::string canonical;
  canonical.reserve(name.size() + label.key.size() + 24);
  canonical.append(name);
  canonical.push_back('{');
  canonical.append(label.key);
  canonical.push_back('=');
  canonical.append(std::to_string(label.value));
  canonical.push_back('}');
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.histograms.find(canonical);
  if (it == r.histograms.end())
    it = r.histograms.emplace(std::move(canonical), new MetricHistogram).first;
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> metrics_counter_snapshot() {
  MetricsRegistry& r = registry();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::lock_guard<std::mutex> lock(r.mutex);
  out.reserve(r.counters.size());
  for (const auto& [name, counter] : r.counters) out.emplace_back(name, counter->value());
  return out;
}

std::vector<std::pair<std::string, double>> metrics_gauge_snapshot() {
  MetricsRegistry& r = registry();
  std::vector<std::pair<std::string, double>> out;
  std::lock_guard<std::mutex> lock(r.mutex);
  out.reserve(r.gauges.size());
  for (const auto& [name, gauge] : r.gauges) out.emplace_back(name, gauge->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>> metrics_histogram_snapshot() {
  MetricsRegistry& r = registry();
  // Collect the stable pointers under the lock, merge shards outside it —
  // snapshot() walks 16 × kBucketCount atomics per histogram.
  std::vector<std::pair<std::string, MetricHistogram*>> live;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    live.reserve(r.histograms.size());
    for (const auto& [name, hist] : r.histograms) live.emplace_back(name, hist);
  }
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(live.size());
  for (const auto& [name, hist] : live) out.emplace_back(name, hist->snapshot());
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot JSON

namespace {

void append_histogram_json(std::ostringstream& out, const HistogramSnapshot& h,
                           bool with_buckets) {
  out << "{\"count\": " << h.count << ", \"sum\": " << h.sum << ", \"min\": " << h.min
      << ", \"max\": " << h.max << ", \"p50\": " << h.p(0.50)
      << ", \"p90\": " << h.p(0.90) << ", \"p99\": " << h.p(0.99);
  if (with_buckets) {
    out << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      out << (i == 0 ? "" : ", ") << "[" << h.buckets[i].first << ", "
          << h.buckets[i].second << "]";
    out << "]";
  }
  out << "}";
}

void append_snapshot_json(
    std::ostringstream& out, const std::string& indent,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters,
    const std::vector<std::pair<std::string, double>>& gauges,
    const std::vector<std::pair<std::string, HistogramSnapshot>>& histograms,
    bool with_buckets) {
  const std::string inner = indent + "  ";
  out << indent << "\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i)
    out << (i == 0 ? "\n" : ",\n") << inner << "\"" << counters[i].first
        << "\": " << counters[i].second;
  out << (counters.empty() ? "}" : "\n" + indent + "}") << ",\n";
  out << indent << "\"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << inner << "\"" << gauges[i].first << "\": ";
    append_number(out, gauges[i].second);
  }
  out << (gauges.empty() ? "}" : "\n" + indent + "}") << ",\n";
  out << indent << "\"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << inner << "\"" << histograms[i].first << "\": ";
    append_histogram_json(out, histograms[i].second, with_buckets);
  }
  out << (histograms.empty() ? "}" : "\n" + indent + "}");
}

}  // namespace

std::string metrics_snapshot_json() {
  std::ostringstream out;
  out << "{\n";
  append_snapshot_json(out, "  ", metrics_counter_snapshot(), metrics_gauge_snapshot(),
                       metrics_histogram_snapshot(), /*with_buckets=*/true);
  out << "\n}\n";
  return out.str();
}

bool write_metrics_json(const std::string& path) {
  const std::filesystem::path target(path);
  std::error_code ec;
  if (!target.parent_path().empty())
    std::filesystem::create_directories(target.parent_path(), ec);
  std::ofstream out(target, std::ios::binary | std::ios::trunc);
  out << metrics_snapshot_json();
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "[rispp] cannot write RISPP_METRICS snapshot to %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

void init_metrics_from_env() {
  const char* env = std::getenv("RISPP_METRICS");
  if (env == nullptr || *env == '\0') return;
  MetricsRegistry& r = registry();
  bool arm = false;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    arm = r.out_path.empty();
    r.out_path = env;
  }
  if (arm) std::atexit(write_metrics_at_exit);
}

// ---------------------------------------------------------------------------
// Snapshot validation (trace_check --metrics and the tests)

namespace {

using jsonmini::JsonValue;

bool is_count(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::kNumber && v->number >= 0.0 &&
         v->number == std::floor(v->number);
}

std::optional<std::string> validate_scalar_section(const JsonValue& root,
                                                   std::string_view key,
                                                   bool counts_only) {
  const JsonValue* section = root.find(key);
  if (section == nullptr)
    return "missing \"" + std::string(key) + "\" object";
  if (section->kind != JsonValue::Kind::kObject)
    return "\"" + std::string(key) + "\" is not an object";
  for (const auto& [name, value] : section->object) {
    if (value.kind != JsonValue::Kind::kNumber)
      return "\"" + std::string(key) + "\" entry \"" + name + "\" is not a number";
    if (counts_only && !is_count(&value))
      return "\"" + std::string(key) + "\" entry \"" + name +
             "\" is not a non-negative integer";
  }
  return std::nullopt;
}

std::optional<std::string> validate_histogram_entry(const std::string& name,
                                                    const JsonValue& h) {
  if (h.kind != JsonValue::Kind::kObject)
    return "histogram \"" + name + "\" is not an object";
  for (const char* field : {"count", "sum", "min", "max", "p50", "p90", "p99"}) {
    if (!is_count(h.find(field)))
      return "histogram \"" + name + "\" lacks a non-negative integer \"" +
             field + "\"";
  }
  const double count = h.find("count")->number;
  if (h.find("min")->number > h.find("max")->number)
    return "histogram \"" + name + "\" has min > max";
  if (h.find("p50")->number > h.find("p99")->number)
    return "histogram \"" + name + "\" has p50 > p99";
  const JsonValue* buckets = h.find("buckets");
  if (buckets == nullptr) return std::nullopt;  // ring windows omit buckets
  if (buckets->kind != JsonValue::Kind::kArray)
    return "histogram \"" + name + "\" has a non-array \"buckets\"";
  double total = 0.0;
  double last_upper = -1.0;
  for (const JsonValue& b : buckets->array) {
    if (b.kind != JsonValue::Kind::kArray || b.array.size() != 2 ||
        !is_count(&b.array[0]) || !is_count(&b.array[1]) || b.array[1].number < 1.0)
      return "histogram \"" + name + "\" has a malformed bucket";
    if (b.array[0].number <= last_upper)
      return "histogram \"" + name + "\" has non-ascending bucket bounds";
    last_upper = b.array[0].number;
    total += b.array[1].number;
  }
  if (total != count)
    return "histogram \"" + name + "\" bucket counts do not sum to \"count\"";
  return std::nullopt;
}

std::optional<std::string> validate_snapshot_object(const JsonValue& root) {
  if (root.kind != JsonValue::Kind::kObject) return "snapshot is not an object";
  if (auto err = validate_scalar_section(root, "counters", /*counts_only=*/true))
    return err;
  if (auto err = validate_scalar_section(root, "gauges", /*counts_only=*/false))
    return err;
  const JsonValue* histograms = root.find("histograms");
  if (histograms == nullptr) return "missing \"histograms\" object";
  if (histograms->kind != JsonValue::Kind::kObject)
    return "\"histograms\" is not an object";
  for (const auto& [name, h] : histograms->object)
    if (auto err = validate_histogram_entry(name, h)) return err;
  return std::nullopt;
}

}  // namespace

std::optional<std::string> validate_metrics_json(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return "empty input";
  JsonValue root;
  std::string error;
  if (!jsonmini::parse_document(text, root, error)) return error;
  if (root.kind != JsonValue::Kind::kObject)
    return "top level is not an object";
  const JsonValue* windows = root.find("windows");
  if (windows == nullptr) return validate_snapshot_object(root);
  // Flight-recorder ring: {"interval_ms": .., "windows": [snapshot, ...]}.
  if (!is_count(root.find("interval_ms")))
    return "ring file lacks a non-negative integer \"interval_ms\"";
  if (windows->kind != JsonValue::Kind::kArray)
    return "\"windows\" is not an array";
  double last_t = -1.0;
  for (const JsonValue& w : windows->array) {
    if (w.kind != JsonValue::Kind::kObject) return "ring window is not an object";
    const JsonValue* t = w.find("t_ms");
    if (t == nullptr || t->kind != JsonValue::Kind::kNumber || t->number < last_t)
      return "ring windows lack monotonically non-decreasing \"t_ms\"";
    last_t = t->number;
    if (auto err = validate_snapshot_object(w)) return err;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Flight recorder

namespace {

struct FlightWindow {
  double t_ms = 0.0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

// Leaked for the same reason as the registry: stop_flight_recorder runs from
// atexit, after static destructors would have torn a plain global down.
struct FlightRecorder {
  std::mutex mutex;
  std::condition_variable cv;
  std::thread worker;
  bool running = false;
  bool stop_requested = false;
  FlightRecorderOptions options;
  std::chrono::steady_clock::time_point start_time;
  std::deque<FlightWindow> ring;
};

FlightRecorder& flight_recorder() {
  static FlightRecorder* r = new FlightRecorder;
  return *r;
}

/// One window: registry snapshot into the ring plus (when a trace session is
/// live) 'C' samples on the metrics track so churn shows up as slopes. The
/// sampler thread owns its own trace lane, so its rows stay monotonic no
/// matter what the sim threads emit.
void flight_sample(FlightRecorder& r) {
  FlightWindow w;
  w.t_ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - r.start_time)
               .count();
  w.counters = metrics_counter_snapshot();
  w.gauges = metrics_gauge_snapshot();
  w.histograms = metrics_histogram_snapshot();
  if (trace_enabled()) {
    for (const auto& [name, value] : w.counters)
      trace_counter_now(TraceTrack::kMetrics, trace_intern(name),
                        static_cast<double>(value));
    for (const auto& [name, value] : w.gauges)
      trace_counter_now(TraceTrack::kMetrics, trace_intern(name), value);
    for (const auto& [name, h] : w.histograms) {
      trace_counter_now(TraceTrack::kMetrics, trace_intern(name + ".count"),
                        static_cast<double>(h.count));
      trace_counter_now(TraceTrack::kMetrics, trace_intern(name + ".p99"),
                        static_cast<double>(h.p(0.99)));
    }
  }
  std::lock_guard<std::mutex> lock(r.mutex);
  r.ring.push_back(std::move(w));
  while (r.ring.size() > std::max<std::size_t>(r.options.ring_capacity, 1))
    r.ring.pop_front();
}

void flight_worker(FlightRecorder* r) {
  const auto interval = std::chrono::milliseconds(r->options.interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(r->mutex);
      if (r->cv.wait_for(lock, interval, [r] { return r->stop_requested; })) break;
    }
    flight_sample(*r);
  }
  flight_sample(*r);  // final window so short runs still record end-state
}

void write_ring_locked(FlightRecorder& r) {
  if (r.options.ring_path.empty()) return;
  std::ostringstream out;
  out << "{\n  \"interval_ms\": " << r.options.interval_ms << ",\n  \"windows\": [";
  bool first = true;
  for (const FlightWindow& w : r.ring) {
    out << (first ? "\n" : ",\n") << "    {\n      \"t_ms\": ";
    append_number(out, w.t_ms);
    out << ",\n";
    // Summaries only (no buckets): the ring is a timeline, not an archive.
    append_snapshot_json(out, "      ", w.counters, w.gauges, w.histograms,
                         /*with_buckets=*/false);
    out << "\n    }";
    first = false;
  }
  out << (first ? "]" : "\n  ]") << "\n}\n";
  const std::filesystem::path target(r.options.ring_path);
  std::error_code ec;
  if (!target.parent_path().empty())
    std::filesystem::create_directories(target.parent_path(), ec);
  std::ofstream file(target, std::ios::binary | std::ios::trunc);
  file << out.str();
  file.flush();
  if (!file.good())
    std::fprintf(stderr, "[rispp] cannot write flight-recorder ring to %s\n",
                 r.options.ring_path.c_str());
}

}  // namespace

void start_flight_recorder(const FlightRecorderOptions& options) {
  RISPP_CHECK(options.interval_ms >= 1);
  FlightRecorder& r = flight_recorder();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (r.running) return;
  r.running = true;
  r.stop_requested = false;
  r.options = options;
  r.start_time = std::chrono::steady_clock::now();
  r.ring.clear();
  r.worker = std::thread(flight_worker, &r);
}

void stop_flight_recorder() {
  FlightRecorder& r = flight_recorder();
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    if (!r.running) return;
    r.stop_requested = true;
    worker = std::move(r.worker);
  }
  r.cv.notify_all();
  worker.join();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.running = false;
  write_ring_locked(r);
}

void init_flight_recorder_from_env() {
  const long interval =
      parse_env_int("RISPP_METRICS_INTERVAL_MS", 0, 0, 3'600'000);
  if (interval == 0) return;  // unset or an explicit 0 both mean "off"
  FlightRecorderOptions options;
  options.interval_ms = static_cast<int>(interval);
  if (const char* metrics = std::getenv("RISPP_METRICS");
      metrics != nullptr && *metrics != '\0')
    options.ring_path = std::string(metrics) + ".ring.json";
  static bool armed = false;
  if (!armed) {
    armed = true;
    std::atexit(stop_flight_recorder);
  }
  start_flight_recorder(options);
}

}  // namespace rispp
