#include "base/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

namespace rispp {
namespace {

// Leaked on purpose: counters registered from function-local statics are
// read by the at-exit flush, which runs after static destructors would.
struct MetricsRegistry {
  std::mutex mutex;
  std::map<std::string, MetricCounter*, std::less<>> counters;
  std::map<std::string, MetricGauge*, std::less<>> gauges;
  std::string out_path;  // RISPP_METRICS target, written at exit
};

MetricsRegistry& registry() {
  static MetricsRegistry* r = new MetricsRegistry;
  return *r;
}

void append_number(std::ostringstream& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    out << static_cast<long long>(v);
  } else {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out << buf;
  }
}

void write_metrics_at_exit() {
  MetricsRegistry& r = registry();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    path = r.out_path;
  }
  if (!path.empty()) write_metrics_json(path);
}

}  // namespace

MetricCounter& metric_counter(std::string_view name) {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.counters.find(name);
  if (it == r.counters.end())
    it = r.counters.emplace(std::string(name), new MetricCounter).first;
  return *it->second;
}

MetricGauge& metric_gauge(std::string_view name) {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.gauges.find(name);
  if (it == r.gauges.end())
    it = r.gauges.emplace(std::string(name), new MetricGauge).first;
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> metrics_counter_snapshot() {
  MetricsRegistry& r = registry();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::lock_guard<std::mutex> lock(r.mutex);
  out.reserve(r.counters.size());
  for (const auto& [name, counter] : r.counters) out.emplace_back(name, counter->value());
  return out;
}

std::vector<std::pair<std::string, double>> metrics_gauge_snapshot() {
  MetricsRegistry& r = registry();
  std::vector<std::pair<std::string, double>> out;
  std::lock_guard<std::mutex> lock(r.mutex);
  out.reserve(r.gauges.size());
  for (const auto& [name, gauge] : r.gauges) out.emplace_back(name, gauge->value());
  return out;
}

std::string metrics_snapshot_json() {
  const auto counters = metrics_counter_snapshot();
  const auto gauges = metrics_gauge_snapshot();
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i)
    out << (i == 0 ? "\n" : ",\n") << "    \"" << counters[i].first
        << "\": " << counters[i].second;
  out << (counters.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << gauges[i].first << "\": ";
    append_number(out, gauges[i].second);
  }
  out << (gauges.empty() ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

bool write_metrics_json(const std::string& path) {
  const std::filesystem::path target(path);
  std::error_code ec;
  if (!target.parent_path().empty())
    std::filesystem::create_directories(target.parent_path(), ec);
  std::ofstream out(target, std::ios::binary | std::ios::trunc);
  out << metrics_snapshot_json();
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "[rispp] cannot write RISPP_METRICS snapshot to %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

void init_metrics_from_env() {
  const char* env = std::getenv("RISPP_METRICS");
  if (env == nullptr || *env == '\0') return;
  MetricsRegistry& r = registry();
  bool arm = false;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    arm = r.out_path.empty();
    r.out_path = env;
  }
  if (arm) std::atexit(write_metrics_at_exit);
}

}  // namespace rispp
