// Invariant checking that stays on in release builds.
//
// The simulator is a measurement instrument: a silently-violated invariant
// produces wrong numbers, so RISPP_CHECK is always active (unlike assert).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rispp::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "RISPP_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace rispp::detail

#define RISPP_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr)) ::rispp::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define RISPP_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << msg;                                                           \
      ::rispp::detail::check_failed(#expr, __FILE__, __LINE__, os_.str());  \
    }                                                                       \
  } while (false)
