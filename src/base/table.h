// Plain-text table rendering for the figure/table report benches.
//
// The bench binaries print the paper's rows/series as aligned text tables so
// the output can be eyeballed next to the paper and diffed between runs.
#pragma once

#include <string>
#include <vector>

namespace rispp {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with operator<<.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({cell_to_string(cells)...});
  }

  /// Renders with column alignment and a header separator.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string cell_to_string(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.2f" style) without iostream state.
std::string format_fixed(double v, int digits);

/// Groups thousands: 7403000000 -> "7,403,000,000".
std::string format_grouped(unsigned long long v);

template <typename T>
std::string TextTable::cell_to_string(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v;
  } else if constexpr (std::is_convertible_v<T, const char*>) {
    return std::string(v);
  } else if constexpr (std::is_floating_point_v<T>) {
    return format_fixed(static_cast<double>(v), 2);
  } else {
    return std::to_string(v);
  }
}

}  // namespace rispp
