// Minimal CSV emission for bench series (so figures can be re-plotted).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rispp {

class CsvWriter {
 public:
  /// Writes the header immediately.
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  void write_row(const std::vector<std::string>& cells);

  template <typename... Ts>
  void write(const Ts&... cells) {
    write_row({to_cell(cells)...});
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      return std::to_string(v);
    }
  }

  static std::string escape(const std::string& cell);

  std::ostream& os_;
  std::size_t columns_;
};

}  // namespace rispp
