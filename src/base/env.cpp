#include "base/env.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace rispp {

std::optional<long> parse_int_strict(const char* text, long min_value, long max_value) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return std::nullopt;
  if (value < min_value || value > max_value) return std::nullopt;
  return value;
}

long parse_env_int(const char* name, long fallback, long min_value, long max_value) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return fallback;
  if (const auto value = parse_int_strict(text, min_value, max_value)) return *value;
  std::fprintf(stderr, "%s=%s is not an integer in [%ld, %ld]\n", name, text, min_value,
               max_value);
  std::exit(kEnvParseExitCode);
}

}  // namespace rispp
