#include "base/csv.h"

#include "base/check.h"

namespace rispp {

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(os), columns_(header.size()) {
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  RISPP_CHECK(cells.size() == columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    os_ << escape(cells[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace rispp
