#include "base/table.h"

#include <cstdio>

#include "base/check.h"

namespace rispp {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  RISPP_CHECK_MSG(cells.size() == header_.size(),
                  "row has " << cells.size() << " cells, header has " << header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(width[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };

  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string format_grouped(unsigned long long v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace rispp
