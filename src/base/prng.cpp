#include "base/prng.h"

namespace rispp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(bounded(span));
}

double Xoshiro256::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::gaussian(double mean, double stddev) {
  double acc = 0.0;
  for (int i = 0; i < 6; ++i) acc += uniform01();
  // Sum of 6 U(0,1): mean 3, variance 0.5 -> normalize to N(0,1)-ish.
  const double z = (acc - 3.0) / 0.7071067811865476;
  return mean + stddev * z;
}

}  // namespace rispp
