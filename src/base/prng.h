// Deterministic PRNG for synthetic workload generation.
//
// xoshiro256** (Blackman & Vigna). We carry our own generator rather than
// <random>'s engines so that traces are bit-identical across standard
// libraries — benchmark reproducibility depends on it.
#pragma once

#include <cstdint>

namespace rispp {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Approximately normal via sum of uniforms (Irwin–Hall, 6 terms):
  /// cheap, deterministic, good enough for pixel noise.
  double gaussian(double mean, double stddev);

 private:
  std::uint64_t s_[4];
};

}  // namespace rispp
