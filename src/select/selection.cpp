#include "select/selection.h"

#include <algorithm>

#include "base/check.h"

namespace rispp {

unsigned selection_atom_count(const SpecialInstructionSet& set,
                              std::vector<SiRef> const& selection) {
  Molecule acc(set.atom_type_count());
  for (const SiRef& s : selection) acc = join(acc, set.si(s.si).molecule(s.mol).atoms);
  return acc.determinant();
}

std::vector<SiRef> select_molecules(const SelectionRequest& request) {
  const SpecialInstructionSet& set = *request.set;
  RISPP_CHECK(request.expected_executions.size() == set.si_count());

  // chosen[si] = molecule id or kSoftwareMolecule.
  std::vector<MoleculeId> chosen(set.si_count(), kSoftwareMolecule);
  Molecule sup_now(set.atom_type_count());

  auto latency_of = [&](SiId si) {
    return set.si(si).latency(chosen[si]);
  };

  for (;;) {
    // Find the best affordable swap.
    bool found = false;
    long double best_density = 0.0L;
    SiId best_si = 0;
    MoleculeId best_mol = 0;
    Molecule best_sup(set.atom_type_count());

    for (SiId si : request.hot_spot_sis) {
      const SpecialInstruction& s = set.si(si);
      const Cycles current = latency_of(si);
      const std::uint64_t execs = request.expected_executions[si];
      for (MoleculeId m = 0; m < s.molecules.size(); ++m) {
        if (s.molecules[m].latency >= current) continue;  // not an improvement
        // sup after swapping this SI to molecule m.
        Molecule trial(set.atom_type_count());
        for (SiId other : request.hot_spot_sis) {
          if (other == si) continue;
          if (chosen[other] != kSoftwareMolecule)
            trial = join(trial, set.si(other).molecule(chosen[other]).atoms);
        }
        trial = join(trial, s.molecules[m].atoms);
        if (trial.determinant() > request.container_count) continue;  // unaffordable

        const unsigned growth = trial.determinant() >= sup_now.determinant()
                                    ? trial.determinant() - sup_now.determinant()
                                    : 0;
        const long double profit =
            static_cast<long double>(execs) *
            static_cast<long double>(current - s.molecules[m].latency);
        if (profit <= 0.0L) continue;  // never burn area on unexecuted SIs
        const long double density =
            profit / static_cast<long double>(growth == 0 ? 1 : growth);
        // Zero-growth improvements dominate everything else.
        const long double score = growth == 0 ? density * 1e9L : density;
        if (!found || score > best_density) {
          found = true;
          best_density = score;
          best_si = si;
          best_mol = m;
          best_sup = trial;
        }
      }
    }
    if (!found) break;
    chosen[best_si] = best_mol;
    sup_now = best_sup;
  }

  std::vector<SiRef> selection;
  for (SiId si : request.hot_spot_sis)
    if (chosen[si] != kSoftwareMolecule) selection.push_back(SiRef{si, chosen[si]});
  RISPP_CHECK(selection_atom_count(set, selection) <= request.container_count);
  return selection;
}

}  // namespace rispp
