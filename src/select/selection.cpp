#include "select/selection.h"

#include <algorithm>

#include "base/check.h"

namespace rispp {

unsigned selection_atom_count(const SpecialInstructionSet& set,
                              std::vector<SiRef> const& selection) {
  Molecule acc(set.atom_type_count());
  for (const SiRef& s : selection) join_into(acc, set.si(s.si).molecule(s.mol).atoms);
  return acc.determinant();
}

std::vector<SiRef> select_molecules_reference(const SelectionRequest& request) {
  const SpecialInstructionSet& set = *request.set;
  RISPP_CHECK(request.expected_executions.size() == set.si_count());

  // chosen[si] = molecule id or kSoftwareMolecule.
  std::vector<MoleculeId> chosen(set.si_count(), kSoftwareMolecule);
  Molecule sup_now(set.atom_type_count());

  auto latency_of = [&](SiId si) {
    return set.si(si).latency(chosen[si]);
  };

  for (;;) {
    // Find the best affordable swap.
    bool found = false;
    long double best_density = 0.0L;
    SiId best_si = 0;
    MoleculeId best_mol = 0;
    Molecule best_sup(set.atom_type_count());

    for (SiId si : request.hot_spot_sis) {
      const SpecialInstruction& s = set.si(si);
      const Cycles current = latency_of(si);
      const std::uint64_t execs = request.expected_executions[si];
      for (MoleculeId m = 0; m < s.molecules.size(); ++m) {
        if (s.molecules[m].latency >= current) continue;  // not an improvement
        // sup after swapping this SI to molecule m.
        Molecule trial(set.atom_type_count());
        for (SiId other : request.hot_spot_sis) {
          if (other == si) continue;
          if (chosen[other] != kSoftwareMolecule)
            join_into(trial, set.si(other).molecule(chosen[other]).atoms);
        }
        join_into(trial, s.molecules[m].atoms);
        if (trial.determinant() > request.container_count) continue;  // unaffordable

        const unsigned growth = trial.determinant() >= sup_now.determinant()
                                    ? trial.determinant() - sup_now.determinant()
                                    : 0;
        const long double profit =
            static_cast<long double>(execs) *
            static_cast<long double>(current - s.molecules[m].latency);
        if (profit <= 0.0L) continue;  // never burn area on unexecuted SIs
        const long double density =
            profit / static_cast<long double>(growth == 0 ? 1 : growth);
        // Zero-growth improvements dominate everything else.
        const long double score = growth == 0 ? density * 1e9L : density;
        if (!found || score > best_density) {
          found = true;
          best_density = score;
          best_si = si;
          best_mol = m;
          best_sup = trial;
        }
      }
    }
    if (!found) break;
    chosen[best_si] = best_mol;
    sup_now = best_sup;
  }

  std::vector<SiRef> selection;
  for (SiId si : request.hot_spot_sis)
    if (chosen[si] != kSoftwareMolecule) selection.push_back(SiRef{si, chosen[si]});
  RISPP_CHECK(selection_atom_count(set, selection) <= request.container_count);
  return selection;
}

namespace {

/// Per-thread scratch so the hot path allocates nothing once warmed up:
/// molecules of dimension <= Molecule::kInlineCapacity live entirely in the
/// inline buffers, and the vectors only grow when a larger hot spot appears.
struct SelectionScratch {
  std::vector<MoleculeId> chosen;
  // pre[k] = join of chosen molecules at positions < k; suf[k] = at >= k.
  std::vector<Molecule> pre;
  std::vector<Molecule> suf;
  Molecule excl;  // join of all positions != k, rebuilt per trial position
};

bool has_duplicate_sis(const std::vector<SiId>& sis) {
  for (std::size_t i = 0; i < sis.size(); ++i)
    for (std::size_t j = i + 1; j < sis.size(); ++j)
      if (sis[i] == sis[j]) return true;
  return false;
}

}  // namespace

std::vector<SiRef> select_molecules(const SelectionRequest& request) {
  const SpecialInstructionSet& set = *request.set;
  RISPP_CHECK(request.expected_executions.size() == set.si_count());

  // The reference trial excludes the swapped SI by *value*; the prefix/suffix
  // decomposition excludes by position. Identical only when ids are unique —
  // which every RTM-produced request satisfies.
  if (has_duplicate_sis(request.hot_spot_sis)) return select_molecules_reference(request);

  const std::size_t n = request.hot_spot_sis.size();
  const std::size_t dim = set.atom_type_count();

  thread_local SelectionScratch scratch;
  scratch.chosen.assign(set.si_count(), kSoftwareMolecule);
  std::vector<MoleculeId>& chosen = scratch.chosen;
  if (scratch.pre.size() < n + 1) scratch.pre.resize(n + 1);
  if (scratch.suf.size() < n + 1) scratch.suf.resize(n + 1);

  unsigned sup_now_det = 0;  // |sup of chosen| — all the reference reads of sup_now

  for (;;) {
    // Exclusive sups for this round: excl(k) = pre[k] ∪ suf[k+1].
    scratch.pre[0].assign_zero(dim);
    for (std::size_t k = 0; k < n; ++k) {
      scratch.pre[k + 1] = scratch.pre[k];
      const MoleculeId c = chosen[request.hot_spot_sis[k]];
      if (c != kSoftwareMolecule)
        join_into(scratch.pre[k + 1], set.si(request.hot_spot_sis[k]).molecule(c).atoms);
    }
    scratch.suf[n].assign_zero(dim);
    for (std::size_t k = n; k-- > 0;) {
      scratch.suf[k] = scratch.suf[k + 1];
      const MoleculeId c = chosen[request.hot_spot_sis[k]];
      if (c != kSoftwareMolecule)
        join_into(scratch.suf[k], set.si(request.hot_spot_sis[k]).molecule(c).atoms);
    }

    bool found = false;
    long double best_density = 0.0L;
    SiId best_si = 0;
    MoleculeId best_mol = 0;
    unsigned best_sup_det = 0;

    for (std::size_t k = 0; k < n; ++k) {
      const SiId si = request.hot_spot_sis[k];
      const SpecialInstruction& s = set.si(si);
      const Cycles current = s.latency(chosen[si]);
      const std::uint64_t execs = request.expected_executions[si];
      scratch.excl = scratch.pre[k];
      join_into(scratch.excl, scratch.suf[k + 1]);
      for (MoleculeId m = 0; m < s.molecules.size(); ++m) {
        if (s.molecules[m].latency >= current) continue;  // not an improvement
        // |excl ∪ candidate| — the reference's trial determinant, O(dim).
        const unsigned trial_det = join_determinant(scratch.excl, s.molecules[m].atoms);
        if (trial_det > request.container_count) continue;  // unaffordable

        const unsigned growth = trial_det >= sup_now_det ? trial_det - sup_now_det : 0;
        const long double profit =
            static_cast<long double>(execs) *
            static_cast<long double>(current - s.molecules[m].latency);
        if (profit <= 0.0L) continue;  // never burn area on unexecuted SIs
        const long double density =
            profit / static_cast<long double>(growth == 0 ? 1 : growth);
        // Zero-growth improvements dominate everything else.
        const long double score = growth == 0 ? density * 1e9L : density;
        if (!found || score > best_density) {
          found = true;
          best_density = score;
          best_si = si;
          best_mol = m;
          best_sup_det = trial_det;
        }
      }
    }
    if (!found) break;
    chosen[best_si] = best_mol;
    sup_now_det = best_sup_det;
  }

  std::vector<SiRef> selection;
  for (SiId si : request.hot_spot_sis)
    if (chosen[si] != kSoftwareMolecule) selection.push_back(SiRef{si, chosen[si]});
  RISPP_CHECK(selection_atom_count(set, selection) <= request.container_count);
  return selection;
}

Cycles best_case_latency(const SpecialInstructionSet& set, SiId si,
                         unsigned container_count) {
  const SpecialInstruction& s = set.si(si);
  Cycles best = s.software_latency;
  for (const MoleculeImpl& m : s.molecules) {
    if (m.atoms.determinant() > container_count) continue;
    if (m.latency < best) best = m.latency;
  }
  return best;
}

}  // namespace rispp
