// Exhaustive Molecule selection — the exact reference the greedy
// select_molecules() approximates. Enumerates every combination of (at most
// one molecule per hot-spot SI, or software) whose sup fits the Atom
// Container budget and maximizes total expected benefit
// Σ expectedExecs(SI) * (trapLatency - latency(molecule)).
// Exponential in Π (molecule counts + 1); guarded for test/ablation sizes.
#pragma once

#include "select/selection.h"

namespace rispp {

/// Total expected benefit of a selection under `request`'s expectations.
long double selection_benefit(const SelectionRequest& request,
                              const std::vector<SiRef>& selection);

/// Exact maximizer; throws if the search space exceeds ~2M combinations.
std::vector<SiRef> select_molecules_optimal(const SelectionRequest& request);

}  // namespace rispp
