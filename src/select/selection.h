// Molecule *selection* — the Run-Time Manager task the paper delegates to
// its companion work ("the details of the selection are beyond the scope of
// this paper", §3.1) but which the scheduler needs as input: which Molecule
// shall implement each SI of the upcoming hot spot, subject to the Atom
// Container budget NA = |sup M| <= #ACs.
//
// We implement the RISPP-style greedy profit ascent: starting from "every SI
// in software", repeatedly apply the single-molecule swap with the highest
// profit density
//
//     expectedExecs(SI) * (latency(current) - latency(candidate))
//     -----------------------------------------------------------
//          growth of |sup M| caused by the swap  (>= 1)
//
// (zero-growth improvements are taken eagerly — atom-type sharing between
// SIs makes them common) until no affordable improving swap remains.
#pragma once

#include <cstdint>
#include <vector>

#include "alg/molecule.h"
#include "isa/si.h"

namespace rispp {

struct SelectionRequest {
  const SpecialInstructionSet* set = nullptr;
  /// SIs of the upcoming hot spot.
  std::vector<SiId> hot_spot_sis;
  /// Expected executions per SiId (monitoring forecast).
  std::vector<std::uint64_t> expected_executions;
  /// Atom Container budget (#ACs).
  unsigned container_count = 0;
};

/// Returns at most one SiRef per hot-spot SI; SIs that did not get hardware
/// under the budget are absent (they stay on the trap path).
/// Postcondition: |sup of returned molecules| <= container_count.
///
/// Incremental implementation: per round it materializes, for every hot-spot
/// SI position, the exclusive sup (join of all *other* SIs' chosen molecules)
/// from prefix/suffix joins, so each swap trial costs O(dim) instead of
/// re-joining the whole selection — O(rounds·|SIs|·molecules·dim) total.
/// Bit-exact with select_molecules_reference for every input: join is an
/// elementwise max (grouping-independent), the trial determinant, growth,
/// profit, and score expressions are verbatim those of the reference, and
/// the trial iteration order is unchanged. Inputs whose hot_spot_sis contain
/// duplicate ids (the reference excludes by *value*) take the reference path.
std::vector<SiRef> select_molecules(const SelectionRequest& request);

/// The original O(rounds·|SIs|²·molecules·dim) greedy, kept as the oracle for
/// fuzz-equivalence tests and as the fallback for duplicate hot_spot_sis.
std::vector<SiRef> select_molecules_reference(const SelectionRequest& request);

/// NA of a selection: |sup M| — the Atom Containers it occupies.
unsigned selection_atom_count(const SpecialInstructionSet& set,
                              std::vector<SiRef> const& selection);

/// Floor on the latency ANY run-time selection can ever give `si` under an
/// Atom Container budget of `container_count`: the fastest molecule whose
/// determinant fits the budget (a molecule needing more atoms than there are
/// containers can never be fully resident), or the trap latency when none
/// fits. The DSE engine's early-abandon bound sums this over the trace —
/// sound because an execution's latency is always that of some *available*
/// molecule (or the trap), and every available molecule fits the budget.
Cycles best_case_latency(const SpecialInstructionSet& set, SiId si,
                         unsigned container_count);

}  // namespace rispp
