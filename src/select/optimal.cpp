#include "select/optimal.h"

#include "base/check.h"

namespace rispp {

long double selection_benefit(const SelectionRequest& request,
                              const std::vector<SiRef>& selection) {
  const SpecialInstructionSet& set = *request.set;
  long double total = 0.0L;
  for (const SiRef& s : selection) {
    const Cycles gain = set.si(s.si).software_latency - set.latency(s);
    total += static_cast<long double>(request.expected_executions[s.si]) *
             static_cast<long double>(gain);
  }
  return total;
}

namespace {

struct SearchState {
  const SelectionRequest* request;
  long double best_benefit = -1.0L;
  std::vector<SiRef> best;
  std::vector<SiRef> current;
};

void search(SearchState& state, std::size_t index, const Molecule& sup_now,
            long double benefit_now) {
  const SelectionRequest& request = *state.request;
  const SpecialInstructionSet& set = *request.set;
  if (index == request.hot_spot_sis.size()) {
    if (benefit_now > state.best_benefit) {
      state.best_benefit = benefit_now;
      state.best = state.current;
    }
    return;
  }
  const SiId si = request.hot_spot_sis[index];

  // Option: leave this SI in software.
  search(state, index + 1, sup_now, benefit_now);

  const auto execs = static_cast<long double>(request.expected_executions[si]);
  if (execs <= 0.0L) return;  // hardware can never help an unexecuted SI
  for (MoleculeId m = 0; m < set.si(si).molecules.size(); ++m) {
    const Molecule next_sup = join(sup_now, set.si(si).molecule(m).atoms);
    if (next_sup.determinant() > request.container_count) continue;
    const Cycles gain = set.si(si).software_latency - set.si(si).molecule(m).latency;
    state.current.push_back(SiRef{si, m});
    search(state, index + 1, next_sup, benefit_now + execs * static_cast<long double>(gain));
    state.current.pop_back();
  }
}

}  // namespace

std::vector<SiRef> select_molecules_optimal(const SelectionRequest& request) {
  const SpecialInstructionSet& set = *request.set;
  long double combinations = 1.0L;
  for (SiId si : request.hot_spot_sis)
    combinations *= static_cast<long double>(set.si(si).molecules.size() + 1);
  RISPP_CHECK_MSG(combinations <= 2e6L,
                  "optimal selection limited to small instances (" << (double)combinations
                                                                   << " combos)");
  SearchState state;
  state.request = &request;
  search(state, 0, Molecule(set.atom_type_count()), 0.0L);
  return state.best;
}

}  // namespace rispp
