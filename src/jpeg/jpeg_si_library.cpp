#include "jpeg/jpeg_si_library.h"

#include "base/check.h"

namespace rispp::jpegsis {
namespace {

using rispp::AtomLibrary;
using rispp::AtomTypeId;
using rispp::Cycles;
using rispp::DataPathGraph;
using rispp::Molecule;
using rispp::NodeId;
using rispp::SpecialInstructionSet;

constexpr Cycles kTrapOverhead = 64;

AtomLibrary build_library() {
  AtomLibrary lib;
  lib.add({kCscCore, 2, 44, 480});
  lib.add({kSubSample, 1, 16, 260});
  lib.add({kDctRow8, 3, 72, 640});
  lib.add({kQuantDiv, 2, 40, 420});
  lib.add({kZigZag, 1, 14, 240});
  lib.add({kRunLength, 1, 20, 310});
  return lib;
}

AtomTypeId id_of(const AtomLibrary& lib, const char* name) {
  const auto id = lib.find(name);
  RISPP_CHECK(id.has_value());
  return *id;
}

Molecule caps(const AtomLibrary& lib,
              std::initializer_list<std::pair<const char*, unsigned>> list) {
  Molecule m(lib.size());
  for (const auto& [name, cap] : list) m[id_of(lib, name)] = static_cast<rispp::AtomCount>(cap);
  return m;
}

}  // namespace

SpecialInstructionSet build_jpeg_si_set() {
  SpecialInstructionSet set(build_library());
  const AtomLibrary& lib = set.library();
  const AtomTypeId csc = id_of(lib, kCscCore);
  const AtomTypeId sub = id_of(lib, kSubSample);
  const AtomTypeId dct = id_of(lib, kDctRow8);
  const AtomTypeId quant = id_of(lib, kQuantDiv);
  const AtomTypeId zig = id_of(lib, kZigZag);
  const AtomTypeId rle = id_of(lib, kRunLength);

  // CSC: one 8x8 block of RGB->YCbCr, 16 matrix-row ops.
  {
    DataPathGraph g(&lib);
    g.add_layer(csc, 16);
    set.add_si(kCsc, std::move(g), caps(lib, {{kCscCore, 4}}), kTrapOverhead);
  }
  // Downsample: 4:2:0 chroma averaging of one MCU.
  {
    DataPathGraph g(&lib);
    g.add_layer(sub, 8);
    set.add_si(kDownsample, std::move(g), caps(lib, {{kSubSample, 2}}), kTrapOverhead);
  }
  // FDCT 8x8: 8 row passes then 8 column passes.
  {
    DataPathGraph g(&lib);
    const auto rows = g.add_layer(dct, 8);
    g.add_layer(dct, 8, rows);
    set.add_si(kFdct, std::move(g), caps(lib, {{kDctRow8, 4}}), kTrapOverhead);
  }
  // Quant 8x8: 16 quad-quantizer ops behind a reorder.
  {
    DataPathGraph g(&lib);
    const auto pack = g.add_layer(zig, 2);
    g.add_layer(quant, 16, pack);
    set.add_si(kQuant, std::move(g), caps(lib, {{kQuantDiv, 4}, {kZigZag, 2}}),
               kTrapOverhead);
  }
  // ZigZag RLE: scan + run compression of one block.
  {
    DataPathGraph g(&lib);
    const auto scan = g.add_layer(zig, 8);
    g.add_layer(rle, 8, scan);
    set.add_si(kRle, std::move(g), caps(lib, {{kZigZag, 2}, {kRunLength, 4}}), kTrapOverhead);
  }
  return set;
}

}  // namespace rispp::jpegsis
