#include "jpeg/jpeg_workload.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "base/check.h"
#include "base/prng.h"
#include "h264/transform.h"
#include "jpeg/jpeg_si_library.h"

namespace rispp::jpeg {
namespace {

/// Synthetic 8x8 block content model: per image, a "busyness" phase drives
/// how many AC coefficients survive quantization. We run a real 4x4 DCT per
/// quadrant on generated texture to get genuinely data-dependent counts.
int block_activity(Xoshiro256& rng, double busyness) {
  int pixels[16];
  int nonzero = 0;
  for (int quadrant = 0; quadrant < 4; ++quadrant) {
    for (int i = 0; i < 16; ++i) {
      const double texture = rng.gaussian(0.0, 12.0 * busyness);
      pixels[i] = static_cast<int>(128.0 + texture) - 128;
    }
    int coeff[16];
    h264::dct4x4(pixels, coeff);
    for (int i = 0; i < 16; ++i)
      if (std::abs(coeff[i]) > 160) ++nonzero;  // quantization threshold
  }
  return nonzero;
}

}  // namespace

JpegWorkloadResult generate_jpeg_workload(const SpecialInstructionSet& set,
                                          const JpegWorkloadConfig& config) {
  RISPP_CHECK(config.width % 16 == 0 && config.height % 16 == 0);
  const auto need = [&](const char* name) {
    const auto id = set.find(name);
    RISPP_CHECK_MSG(id.has_value(), "missing SI " << name);
    return *id;
  };
  const SiId csc = need(jpegsis::kCsc);
  const SiId down = need(jpegsis::kDownsample);
  const SiId fdct = need(jpegsis::kFdct);
  const SiId quant = need(jpegsis::kQuant);
  const SiId rle = need(jpegsis::kRle);

  JpegWorkloadResult result;
  WorkloadTrace& trace = result.trace;
  trace.hot_spots.resize(3);
  trace.hot_spots[kHotSpotCc] = {"CC", {csc, down}, 8};
  trace.hot_spots[kHotSpotTq] = {"TQ", {fdct, quant}, 8};
  trace.hot_spots[kHotSpotEc] = {"EC", {rle}, 8};

  Xoshiro256 rng(config.seed);
  const int mcus_x = config.width / 16;
  const int mcus_y = config.height / 16;
  std::uint64_t activity_sum = 0;

  for (int img = 0; img < config.images; ++img) {
    // Image busyness follows a slow phase (like the H.264 motion phases).
    const double busyness =
        0.6 + 0.5 * std::sin(img * 0.35) + rng.uniform01() * 0.3;

    HotSpotInstance cc{kHotSpotCc, {}, 1'500};
    HotSpotInstance tq{kHotSpotTq, {}, 1'500};
    HotSpotInstance ec{kHotSpotEc, {}, 1'500};
    for (int mcu = 0; mcu < mcus_x * mcus_y; ++mcu) {
      // Per MCU: 4 luma + 2 chroma 8x8 blocks.
      for (int b = 0; b < 6; ++b) cc.executions.push_back(csc);
      cc.executions.push_back(down);
      for (int b = 0; b < 6; ++b) {
        tq.executions.push_back(fdct);
        tq.executions.push_back(quant);
        const int activity = block_activity(rng, busyness);
        activity_sum += static_cast<std::uint64_t>(activity);
        ++result.total_blocks;
        // RLE work scales with the number of coefficient runs.
        const int rle_invocations = 1 + activity / 4;
        for (int k = 0; k < rle_invocations; ++k) ec.executions.push_back(rle);
      }
    }
    trace.instances.push_back(std::move(cc));
    trace.instances.push_back(std::move(tq));
    trace.instances.push_back(std::move(ec));
  }
  result.mean_activity = result.total_blocks > 0
                             ? static_cast<double>(activity_sum) /
                                   static_cast<double>(result.total_blocks)
                             : 0.0;
  trace.build_runs();
  return result;
}

std::vector<std::vector<std::uint64_t>> jpeg_forecast_seeds(const SpecialInstructionSet& set) {
  const auto need = [&](const char* name) { return set.find(name).value(); };
  std::vector<std::vector<std::uint64_t>> seeds(3,
                                                std::vector<std::uint64_t>(set.si_count(), 0));
  // Rough profile of one 512x384 image (768 MCUs, 4608 blocks).
  seeds[kHotSpotCc][need(jpegsis::kCsc)] = 4'600;
  seeds[kHotSpotCc][need(jpegsis::kDownsample)] = 770;
  seeds[kHotSpotTq][need(jpegsis::kFdct)] = 4'600;
  seeds[kHotSpotTq][need(jpegsis::kQuant)] = 4'600;
  seeds[kHotSpotEc][need(jpegsis::kRle)] = 6'000;
  return seeds;
}

std::uint64_t workload_fingerprint(const SpecialInstructionSet& set,
                                   const JpegWorkloadConfig& config) {
  std::uint64_t hash = fingerprint(set);
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.images));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.width));
  hash = fingerprint_mix(hash, static_cast<std::uint64_t>(config.height));
  hash = fingerprint_mix(hash, config.seed);
  return hash;
}

std::filesystem::path trace_cache_path(const SpecialInstructionSet& set,
                                       const JpegWorkloadConfig& config) {
  char key[32];
  std::snprintf(key, sizeof key, "%016" PRIx64, workload_fingerprint(set, config));
  return trace_cache_dir() /
         ("rispp_jpeg_trace_v" + std::to_string(kJpegWorkloadTraceVersion) + "_" +
          std::to_string(config.images) + "_" + key + ".rtrc");
}

}  // namespace rispp::jpeg
