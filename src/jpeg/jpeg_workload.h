// Workload generation for the JPEG-style platform: compresses a stream of
// synthetic RGB images and records the SI trace (three hot spots per image:
// CC, TQ, EC). The EC counts are data-dependent — busy images produce more
// coefficient activity and thus more RLE work — so the monitor has real
// variation to track, as in the H.264 workload.
#pragma once

#include "isa/si.h"
#include "sim/trace.h"

namespace rispp::jpeg {

enum : HotSpotId { kHotSpotCc = 0, kHotSpotTq = 1, kHotSpotEc = 2 };

/// Bump when the compressor/workload changes in a way that alters recorded
/// traces — disk cache files are keyed on it (see trace_cache_path).
inline constexpr int kJpegWorkloadTraceVersion = 1;

struct JpegWorkloadConfig {
  int images = 40;
  int width = 512;   // multiples of 16
  int height = 384;
  std::uint64_t seed = 0x1936;  // JPEG's JFIF heritage
};

struct JpegWorkloadResult {
  WorkloadTrace trace;
  std::uint64_t total_blocks = 0;
  double mean_activity = 0.0;  // nonzero coefficients per block
};

JpegWorkloadResult generate_jpeg_workload(const SpecialInstructionSet& set,
                                          const JpegWorkloadConfig& config);

/// Digest of everything that determines a recorded JPEG trace: the SI set
/// fingerprint plus every JpegWorkloadConfig field.
std::uint64_t workload_fingerprint(const SpecialInstructionSet& set,
                                   const JpegWorkloadConfig& config);

/// Cache file a recorded trace for `config` lives at, under
/// trace_cache_dir() (honors RISPP_TRACE_DIR); keyed by
/// kJpegWorkloadTraceVersion, the image count and workload_fingerprint().
std::filesystem::path trace_cache_path(const SpecialInstructionSet& set,
                                       const JpegWorkloadConfig& config);

/// Forecast seeds for the three hot spots.
std::vector<std::vector<std::uint64_t>> jpeg_forecast_seeds(const SpecialInstructionSet& set);

template <typename Backend>
void seed_jpeg_forecasts(const SpecialInstructionSet& set, Backend& backend) {
  const auto seeds = jpeg_forecast_seeds(set);
  for (HotSpotId hs = 0; hs < seeds.size(); ++hs)
    for (SiId si = 0; si < seeds[hs].size(); ++si)
      if (seeds[hs][si] != 0) backend.seed_forecast(hs, si, seeds[hs][si]);
}

}  // namespace rispp::jpeg
