// A second platform instance: Special Instructions for a baseline-JPEG-style
// image compressor.
//
// The paper stresses that RISPP "is by no means limited to" the H.264
// encoder (§1/§6). This library demonstrates that: a different application
// domain, its own atom types and SIs, running on exactly the same run-time
// system (selection, SI Scheduler, Atom Containers, monitor). The
// bench/generality_jpeg binary sweeps the §4 schedulers over it.
//
// Hot spots of the compressor:
//   CC — color conversion + chroma downsampling (CSC, Downsample),
//   TQ — 8x8 forward DCT + quantization (FDCT 8x8, Quant 8x8),
//   EC — zig-zag + run-length entropy preparation (ZigZag RLE).
#pragma once

#include "isa/si.h"

namespace rispp::jpegsis {

inline constexpr const char* kCscCore = "CscCore";       // 3x3 color matrix row
inline constexpr const char* kSubSample = "SubSample";   // 2x2 chroma average
inline constexpr const char* kDctRow8 = "DctRow8";       // 8-point DCT row pass
inline constexpr const char* kQuantDiv = "QuantDiv";     // table quantizer
inline constexpr const char* kZigZag = "ZigZagScan";     // coefficient reorder
inline constexpr const char* kRunLength = "RunLength";   // zero-run compressor

inline constexpr const char* kCsc = "CSC";
inline constexpr const char* kDownsample = "Downsample";
inline constexpr const char* kFdct = "FDCT 8x8";
inline constexpr const char* kQuant = "Quant 8x8";
inline constexpr const char* kRle = "ZigZag RLE";

/// Builds the JPEG platform SI set (5 SIs over 6 atom types).
rispp::SpecialInstructionSet build_jpeg_si_set();

}  // namespace rispp::jpegsis
