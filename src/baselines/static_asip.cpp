#include "baselines/static_asip.h"

namespace rispp {

StaticAsipBackend::StaticAsipBackend(const SpecialInstructionSet* set) {
  best_latency_.resize(set->si_count());
  for (SiId si = 0; si < set->si_count(); ++si) {
    Cycles best = set->si(si).software_latency;
    unsigned best_atoms = 0;
    for (const MoleculeImpl& m : set->si(si).molecules) {
      if (m.latency < best) {
        best = m.latency;
        best_atoms = m.atoms.determinant();
      }
    }
    best_latency_[si] = best;
    dedicated_atoms_ += best_atoms;
  }
}

}  // namespace rispp
