#include "baselines/onechip.h"

#include "base/check.h"
#include "hw/eviction.h"

namespace rispp {

OneChipBackend::OneChipBackend(const SpecialInstructionSet* set, std::size_t hot_spot_count,
                               const OneChipConfig& config)
    : set_(set),
      config_(config),
      monitor_(hot_spot_count, set->si_count()),
      containers_(config.container_count, set->atom_type_count()),
      port_(&set->library(), config.bitstream),
      demand_(set->atom_type_count()),
      requested_(set->si_count(), false),
      selected_molecule_(set->si_count(), kSoftwareMolecule),
      type_last_used_(set->atom_type_count(), 0),
      cached_latency_(set->si_count(), 0),
      span_step_gen_(set->si_count(), 0),
      span_step_(set->si_count(), 0),
      span_touch_gen_(set->si_count(), 0),
      span_last_start_(set->si_count(), 0) {}

void OneChipBackend::seed_forecast(HotSpotId hs, SiId si, std::uint64_t expected) {
  monitor_.seed(hs, si, expected);
}

void OneChipBackend::on_hot_spot_entry(const WorkloadTrace& trace, std::size_t instance,
                                       Cycles now) {
  advance_reconfig(now);

  const HotSpotId hs = trace.instances[instance].hot_spot;
  const HotSpotInfo& info = trace.hot_spots[hs];
  monitor_.begin_hot_spot(hs);
  const auto& forecast = monitor_.forecast(hs);

  // Same accelerators: identical selection under the same budget. But no
  // prefetch — configurations are requested lazily at first use.
  SelectionRequest sel_req;
  sel_req.set = set_;
  sel_req.hot_spot_sis = info.sis;
  sel_req.expected_executions = forecast;
  sel_req.container_count = containers_.size();
  selection_ = select_molecules(sel_req);

  pending_loads_.clear();
  std::fill(requested_.begin(), requested_.end(), false);
  std::fill(selected_molecule_.begin(), selected_molecule_.end(), kSoftwareMolecule);
  for (const SiRef& s : selection_) selected_molecule_[s.si] = s.mol;

  demand_ = Molecule(set_->atom_type_count());
  for (const SiRef& s : selection_)
    demand_ = join(demand_, set_->si(s.si).molecule(s.mol).atoms);
  cache_valid_ = false;
}

void OneChipBackend::on_hot_spot_exit(Cycles) { monitor_.end_hot_spot(); }

void OneChipBackend::request_configuration(SiId si) {
  const MoleculeId mol = selected_molecule_[si];
  if (mol == kSoftwareMolecule || requested_[si]) return;
  requested_[si] = true;
  // Queue the atoms this SI's single implementation still misses, counting
  // what earlier requests already queued.
  Molecule accumulated = containers_.ready_atoms();
  for (AtomTypeId t : pending_loads_) ++accumulated[t];
  if (port_.busy()) ++accumulated[port_.inflight()->type];
  for (AtomTypeId t : unit_decomposition(missing(accumulated, set_->si(si).molecule(mol).atoms)))
    pending_loads_.push_back(t);
}

void OneChipBackend::advance_reconfig(Cycles now) {
  while (port_.busy() && port_.inflight()->finishes_at <= now) {
    const auto done = port_.retire(now);
    containers_.complete_load(done.container);
    cache_valid_ = false;
    start_pending_loads(done.finishes_at);
  }
  if (!port_.busy()) start_pending_loads(now);
}

void OneChipBackend::start_pending_loads(Cycles now) {
  while (!port_.busy() && !pending_loads_.empty()) {
    const AtomTypeId type = pending_loads_.front();
    const auto victim =
        pick_victim(containers_, demand_, Molecule(set_->atom_type_count()), type_last_used_);
    if (!victim.has_value()) return;
    pending_loads_.pop_front();
    containers_.begin_load(*victim, type);
    cache_valid_ = false;
    port_.start(type, *victim, now);
  }
}

void OneChipBackend::refresh_cache() {
  const Molecule& ready = containers_.ready_atoms();
  for (SiId si = 0; si < set_->si_count(); ++si) {
    const MoleculeId mol = selected_molecule_[si];
    if (mol != kSoftwareMolecule && leq(set_->si(si).molecule(mol).atoms, ready))
      cached_latency_[si] = set_->si(si).molecule(mol).latency;
    else
      cached_latency_[si] = set_->si(si).software_latency;
  }
  cache_valid_ = true;
}

Cycles OneChipBackend::si_execution_latency(SiId si, Cycles now) {
  advance_reconfig(now);
  request_configuration(si);  // demand loading at first use
  start_pending_loads(now);
  if (!cache_valid_) refresh_cache();
  monitor_.record_execution(si);
  if (cached_latency_[si] != set_->si(si).software_latency) {
    const Molecule& atoms = set_->si(si).molecule(selected_molecule_[si]).atoms;
    for (std::size_t t = 0; t < atoms.dimension(); ++t)
      if (atoms[t] != 0) type_last_used_[t] = now;
  }
  return cached_latency_[si];
}

Cycles OneChipBackend::si_execution_run_latency(SiId si, std::uint64_t count, Cycles now,
                                                Cycles per_execution_overhead,
                                                std::vector<LatencySegment>& segments) {
  // Fast-forward between port completions. The demand-load request fires at
  // the first execution of the run (request_configuration is idempotent for
  // the following ones, exactly as in scalar replay).
  Cycles total = 0;
  while (count > 0) {
    advance_reconfig(now);
    request_configuration(si);
    start_pending_loads(now);
    if (!cache_valid_) refresh_cache();
    const Cycles latency = cached_latency_[si];
    const Cycles step = latency + per_execution_overhead;
    std::uint64_t fit = count;
    if (port_.busy() && step > 0) {
      const Cycles finish = port_.inflight()->finishes_at;
      fit = std::min<std::uint64_t>(count, (finish - now + step - 1) / step);
    }
    monitor_.record_executions(si, fit);
    if (latency != set_->si(si).software_latency) {
      const Cycles last_start = now + (fit - 1) * step;
      const Molecule& atoms = set_->si(si).molecule(selected_molecule_[si]).atoms;
      for (std::size_t t = 0; t < atoms.dimension(); ++t)
        if (atoms[t] != 0) type_last_used_[t] = last_start;
    }
    append_latency_segment(segments, fit, latency);
    total += fit * latency;
    now += fit * step;
    count -= fit;
  }
  return total;
}

Cycles OneChipBackend::si_execution_span(std::span<const SiRun> runs, Cycles now,
                                         Cycles per_execution_overhead) {
  // Port-quiet-window arithmetic as in RunTimeManager::si_execution_span,
  // plus OneChip's demand loading: scalar replay issues the configuration
  // request at an SI's *first* execution, so a window closes whenever the
  // next run's SI has not been requested yet — the reopen sequence below
  // fires the request at exactly that execution's time, after the preceding
  // executions' LRU stamps have been materialized (the victim search the
  // request may trigger must observe them). Bit-exact with scalar replay.
  std::size_t i = 0;
  std::uint64_t remaining = 0;  // rest of runs[i] when a window split it
  while (i < runs.size()) {
    advance_reconfig(now);
    request_configuration(runs[i].si);  // idempotent for already-requested SIs
    start_pending_loads(now);
    if (!cache_valid_) refresh_cache();
    const bool bounded = port_.busy();
    const Cycles window_end = bounded ? port_.inflight()->finishes_at : 0;
    ++span_gen_;
    span_touched_.clear();

    while (i < runs.size()) {
      if (bounded && now >= window_end) break;  // next execution sees the load
      const SiId si = runs[i].si;
      // A not-yet-requested SI fires its demand request at its first
      // execution: reopen the window there.
      if (remaining == 0 && !requested_[si] &&
          selected_molecule_[si] != kSoftwareMolecule)
        break;
      const std::uint64_t count = remaining > 0 ? remaining : runs[i].count;
      if (span_step_gen_[si] != span_gen_) {
        span_step_gen_[si] = span_gen_;
        span_step_[si] = cached_latency_[si] + per_execution_overhead;
      }
      const Cycles step = span_step_[si];
      std::uint64_t fit = count;
      if (bounded && step > 0)
        fit = std::min<std::uint64_t>(count, (window_end - now + step - 1) / step);
      if (fit > 0) {
        monitor_.record_executions(si, fit);
        if (cached_latency_[si] != set_->si(si).software_latency) {
          span_last_start_[si] = now + (fit - 1) * step;
          if (span_touch_gen_[si] != span_gen_) {
            span_touch_gen_[si] = span_gen_;
            span_touched_.push_back(si);
          }
        }
        now += fit * step;
      }
      if (fit == count) {
        ++i;
        remaining = 0;
      } else {
        remaining = count - fit;
        break;  // window exhausted; reopen at the port completion
      }
    }

    // Materialize the LRU stamps while the window's molecules are still
    // selected (the next advance_reconfig may refresh the cache).
    for (const SiId si : span_touched_) {
      const Cycles last = span_last_start_[si];
      const Molecule& atoms = set_->si(si).molecule(selected_molecule_[si]).atoms;
      for (std::size_t t = 0; t < atoms.dimension(); ++t)
        if (atoms[t] != 0 && type_last_used_[t] < last) type_last_used_[t] = last;
    }
  }
  return now;
}

}  // namespace rispp
