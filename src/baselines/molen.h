// Molen-like baseline (§5, Table 2): a state-of-the-art reconfigurable
// processor with a *single* implementation per SI and explicitly
// predetermined reconfiguration.
//
// For the fair comparison the paper describes, Molen gets the same hardware
// accelerators: the same Atom Containers, the same reconfiguration port and
// the same selected Molecules (via the same selection under the same AC
// budget). What it lacks is the RISPP upgrade hierarchy: an SI executes with
// its molecule only once ALL of that molecule's atoms are configured, and in
// software until then. Loads are issued molecule-by-molecule in importance
// order at hot-spot entry (prefetch).
#pragma once

#include <deque>
#include <vector>

#include "hw/atom_container.h"
#include "hw/bitstream.h"
#include "hw/reconfig_port.h"
#include "monitor/forecast.h"
#include "select/selection.h"
#include "sim/executor.h"

namespace rispp {

struct MolenConfig {
  unsigned container_count = 10;
  BitstreamModel bitstream;
};

class MolenBackend final : public ExecutionBackend {
 public:
  MolenBackend(const SpecialInstructionSet* set, std::size_t hot_spot_count,
               const MolenConfig& config);

  void seed_forecast(HotSpotId hs, SiId si, std::uint64_t expected);

  std::string_view name() const override { return "Molen"; }
  void on_hot_spot_entry(const WorkloadTrace& trace, std::size_t instance,
                         Cycles now) override;
  void on_hot_spot_exit(Cycles now) override;
  Cycles si_execution_latency(SiId si, Cycles now) override;
  Cycles si_execution_run_latency(SiId si, std::uint64_t count, Cycles now,
                                  Cycles per_execution_overhead,
                                  std::vector<LatencySegment>& segments) override;
  Cycles si_execution_span(std::span<const SiRun> runs, Cycles now,
                           Cycles per_execution_overhead) override;
  std::uint64_t completed_loads() const override { return port_.completed_loads(); }

  const std::vector<SiRef>& current_selection() const { return selection_; }

 private:
  void advance_reconfig(Cycles now);
  void start_pending_loads(Cycles now);
  void refresh_cache();

  const SpecialInstructionSet* set_;
  MolenConfig config_;
  ExecutionMonitor monitor_;
  ContainerFile containers_;
  ReconfigPort port_;

  std::vector<SiRef> selection_;
  Molecule demand_;
  Molecule soft_demand_;
  std::vector<Molecule> hot_spot_sup_;
  std::deque<AtomTypeId> pending_loads_;
  std::vector<Cycles> type_last_used_;

  /// Per SiId: the latency the SI currently takes (selected molecule if
  /// complete, else software). kMaxCycles marks "not in this hot spot".
  std::vector<Cycles> cached_latency_;
  std::vector<MoleculeId> selected_molecule_;  // per SiId, kSoftwareMolecule if none
  bool cache_valid_ = false;

  // Scratch for si_execution_span's port-quiet windows (per SiId, validated
  // against span_gen_ so windows open without O(si_count) clears).
  std::uint64_t span_gen_ = 0;
  std::vector<std::uint64_t> span_step_gen_;   // step cache validity
  std::vector<Cycles> span_step_;              // latency + overhead this window
  std::vector<std::uint64_t> span_touch_gen_;  // "stamped this window" marker
  std::vector<Cycles> span_last_start_;        // last execution start this window
  std::vector<SiId> span_touched_;             // SIs to LRU-stamp at window close
};

}  // namespace rispp
