// OneChip98-like baseline (§2/§5: "We have further on analyzed the behavior
// of state-of-the-art related reconfigurable computing systems, i.e. Molen
// [19] and OneChip [21]. They both provide a single implementation per SI
// and thus cannot upgrade during run time.")
//
// OneChip couples a Reconfigurable Functional Unit to the host processor and
// loads configurations on demand: unlike the Molen model there is no
// explicit prefetch at hot-spot entry — the first *use* of an SI requests
// its (single) implementation, and the SI traps to software until that
// implementation is fully configured. Same accelerators as RISPP/Molen
// (identical selection under the same AC budget).
#pragma once

#include <deque>
#include <vector>

#include "hw/atom_container.h"
#include "hw/bitstream.h"
#include "hw/reconfig_port.h"
#include "monitor/forecast.h"
#include "select/selection.h"
#include "sim/executor.h"

namespace rispp {

struct OneChipConfig {
  unsigned container_count = 10;
  BitstreamModel bitstream;
};

class OneChipBackend final : public ExecutionBackend {
 public:
  OneChipBackend(const SpecialInstructionSet* set, std::size_t hot_spot_count,
                 const OneChipConfig& config);

  void seed_forecast(HotSpotId hs, SiId si, std::uint64_t expected);

  std::string_view name() const override { return "OneChip"; }
  void on_hot_spot_entry(const WorkloadTrace& trace, std::size_t instance,
                         Cycles now) override;
  void on_hot_spot_exit(Cycles now) override;
  Cycles si_execution_latency(SiId si, Cycles now) override;
  Cycles si_execution_run_latency(SiId si, std::uint64_t count, Cycles now,
                                  Cycles per_execution_overhead,
                                  std::vector<LatencySegment>& segments) override;
  Cycles si_execution_span(std::span<const SiRun> runs, Cycles now,
                           Cycles per_execution_overhead) override;
  std::uint64_t completed_loads() const override { return port_.completed_loads(); }

 private:
  void advance_reconfig(Cycles now);
  void start_pending_loads(Cycles now);
  void request_configuration(SiId si);
  void refresh_cache();

  const SpecialInstructionSet* set_;
  OneChipConfig config_;
  ExecutionMonitor monitor_;
  ContainerFile containers_;
  ReconfigPort port_;

  std::vector<SiRef> selection_;
  Molecule demand_;
  std::deque<AtomTypeId> pending_loads_;
  std::vector<bool> requested_;               // per SiId: configuration queued?
  std::vector<MoleculeId> selected_molecule_; // per SiId
  std::vector<Cycles> type_last_used_;
  std::vector<Cycles> cached_latency_;
  bool cache_valid_ = false;

  // Scratch for si_execution_span's port-quiet windows (per SiId, validated
  // against span_gen_ so windows open without O(si_count) clears).
  std::uint64_t span_gen_ = 0;
  std::vector<std::uint64_t> span_step_gen_;   // step cache validity
  std::vector<Cycles> span_step_;              // latency + overhead this window
  std::vector<std::uint64_t> span_touch_gen_;  // "stamped this window" marker
  std::vector<Cycles> span_last_start_;        // last execution start this window
  std::vector<SiId> span_touched_;             // SIs to LRU-stamp at window close
};

}  // namespace rispp
