#include "baselines/software_only.h"

// Header-only backend; this TU anchors the library target.
