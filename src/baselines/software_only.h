// Pure base-processor execution (0 Atom Containers): every SI traps. The
// paper's reference point "down to the execution speed of a general-purpose
// processor in case of zero ACs: 7,403M cycles".
#pragma once

#include "sim/executor.h"
#include "isa/si.h"

namespace rispp {

class SoftwareOnlyBackend final : public ExecutionBackend {
 public:
  explicit SoftwareOnlyBackend(const SpecialInstructionSet* set) : set_(set) {}

  std::string_view name() const override { return "Software"; }
  void on_hot_spot_entry(const WorkloadTrace&, std::size_t, Cycles) override {}
  void on_hot_spot_exit(Cycles) override {}
  Cycles si_execution_latency(SiId si, Cycles) override {
    return set_->si(si).software_latency;
  }
  Cycles si_execution_run_latency(SiId si, std::uint64_t count, Cycles, Cycles,
                                  std::vector<LatencySegment>& segments) override {
    // Latency never changes: a whole run is one segment.
    const Cycles latency = set_->si(si).software_latency;
    append_latency_segment(segments, count, latency);
    return latency * count;
  }
  Cycles si_execution_span(std::span<const SiRun> runs, Cycles now,
                           Cycles per_execution_overhead) override {
    for (const SiRun& run : runs)
      now += run.count * (set_->si(run.si).software_latency + per_execution_overhead);
    return now;
  }

 private:
  const SpecialInstructionSet* set_;
};

}  // namespace rispp
