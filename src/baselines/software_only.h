// Pure base-processor execution (0 Atom Containers): every SI traps. The
// paper's reference point "down to the execution speed of a general-purpose
// processor in case of zero ACs: 7,403M cycles".
#pragma once

#include "sim/executor.h"
#include "isa/si.h"

namespace rispp {

class SoftwareOnlyBackend final : public ExecutionBackend {
 public:
  explicit SoftwareOnlyBackend(const SpecialInstructionSet* set) : set_(set) {}

  std::string_view name() const override { return "Software"; }
  void on_hot_spot_entry(const WorkloadTrace&, std::size_t, Cycles) override {}
  void on_hot_spot_exit(Cycles) override {}
  Cycles si_execution_latency(SiId si, Cycles) override {
    return set_->si(si).software_latency;
  }

 private:
  const SpecialInstructionSet* set_;
};

}  // namespace rispp
