// Static-ASIP upper bound: every SI permanently owns its fastest molecule in
// dedicated hardware (no reconfiguration, unlimited area). This is the
// extensible-processor paradigm of Figure 1a — maximal speed, maximal idle
// silicon — and serves as the lower bound on achievable execution time.
#pragma once

#include <vector>

#include "isa/si.h"
#include "sim/executor.h"

namespace rispp {

class StaticAsipBackend final : public ExecutionBackend {
 public:
  explicit StaticAsipBackend(const SpecialInstructionSet* set);

  std::string_view name() const override { return "StaticASIP"; }
  void on_hot_spot_entry(const WorkloadTrace&, std::size_t, Cycles) override {}
  void on_hot_spot_exit(Cycles) override {}
  Cycles si_execution_latency(SiId si, Cycles) override { return best_latency_[si]; }
  Cycles si_execution_run_latency(SiId si, std::uint64_t count, Cycles, Cycles,
                                  std::vector<LatencySegment>& segments) override {
    // Dedicated hardware: the latency never changes, a run is one segment.
    append_latency_segment(segments, count, best_latency_[si]);
    return best_latency_[si] * count;
  }
  Cycles si_execution_span(std::span<const SiRun> runs, Cycles now,
                           Cycles per_execution_overhead) override {
    for (const SiRun& run : runs)
      now += run.count * (best_latency_[run.si] + per_execution_overhead);
    return now;
  }

  /// Total atoms the dedicated hardware would occupy (the paper's "overhead
  /// can easily grow twice the size of the original processor core").
  unsigned dedicated_atoms() const { return dedicated_atoms_; }

 private:
  std::vector<Cycles> best_latency_;
  unsigned dedicated_atoms_ = 0;
};

}  // namespace rispp
