#include "config/h264_platform.h"

namespace rispp::config {
namespace {

/// Exception entry/exit cost of the SI trap, as in isa/h264_si_library.cpp.
constexpr Cycles kTrap = 64;

PlatformSi si(std::string name, unsigned molecule_target, unsigned min_determinant,
              std::vector<std::pair<std::string, unsigned>> caps,
              std::vector<PlatformBlock> blocks) {
  PlatformSi out;
  out.name = std::move(name);
  out.trap_overhead = kTrap;
  out.molecule_target = molecule_target;
  out.min_determinant = min_determinant;
  out.caps = std::move(caps);
  out.blocks = std::move(blocks);
  return out;
}

}  // namespace

PlatformSpec h264_platform_spec() {
  PlatformSpec spec;
  // Atom table in library order: name, hw op latency, sw cycles, slices.
  spec.atoms = {
      {"SADRow", 2, 64, 410},       {"QSub", 1, 24, 330},
      {"HadCore", 2, 48, 540},      {"SAV", 1, 20, 290},
      {"Repack", 1, 12, 230},       {"TransformRow", 2, 40, 500},
      {"QuantCore", 2, 36, 470},    {"BytePack", 1, 16, 340},
      {"PointFilter", 2, 56, 620},  {"Clip3", 1, 12, 210},
      {"PredAvg", 1, 24, 300},      {"EdgeCond", 1, 20, 350},
      {"FiltCore", 2, 44, 580},
  };

  // SAD: 16 independent row SADs.
  spec.sis.push_back(si("SAD", 3, 0, {{"SADRow", 3}},
                        {{1, {{"SADRow", 16}}}}));

  // SATD: 16 4x4 blocks of Repack -> 2 QSub -> 2+2 Hadamard -> SAV.
  spec.sis.push_back(si("SATD", 20, 5,
                        {{"QSub", 4}, {"HadCore", 6}, {"SAV", 3}, {"Repack", 2}},
                        {{16,
                          {{"Repack", 1},
                           {"QSub", 2},
                           {"HadCore", 2},
                           {"HadCore", 2},
                           {"SAV", 1}}}}));

  // (I)DCT: 16 blocks of Repack -> row -> column -> quant.
  spec.sis.push_back(si("(I)DCT", 12, 0,
                        {{"TransformRow", 4}, {"QuantCore", 3}, {"Repack", 2}},
                        {{16,
                          {{"Repack", 1},
                           {"TransformRow", 1},
                           {"TransformRow", 1},
                           {"QuantCore", 1}}}}));

  // (I)HT 2x2: chroma DC Hadamard, two planes.
  spec.sis.push_back(si("(I)HT 2x2", 2, 0, {{"HadCore", 2}},
                        {{1, {{"HadCore", 2}}}}));

  // (I)HT 4x4: luma DC Hadamard rows -> columns -> scaling sums.
  spec.sis.push_back(si("(I)HT 4x4", 7, 0, {{"HadCore", 4}, {"SAV", 2}},
                        {{1, {{"HadCore", 8}, {"HadCore", 4}, {"SAV", 8}}}}));

  // MC 4: Figure 3 pipeline over 8 4x8 sub-blocks.
  spec.sis.push_back(si("MC 4", 11, 0,
                        {{"BytePack", 2}, {"PointFilter", 6}, {"Clip3", 2}},
                        {{8, {{"BytePack", 4}, {"PointFilter", 6}, {"Clip3", 2}}}}));

  // IPred HDC: horizontal DC intra prediction.
  spec.sis.push_back(si("IPred HDC", 4, 0, {{"PredAvg", 3}, {"Clip3", 2}},
                        {{1, {{"PredAvg", 8}, {"Clip3", 2}}}}));

  // IPred VDC: vertical DC intra prediction.
  spec.sis.push_back(si("IPred VDC", 3, 0, {{"PredAvg", 3}},
                        {{1, {{"PredAvg", 12}}}}));

  // LF_BS4: 16 pixel-edge condition checks each feeding a strong filter.
  spec.sis.push_back(si("LF_BS4", 5, 0, {{"EdgeCond", 2}, {"FiltCore", 4}},
                        {{16, {{"EdgeCond", 1}, {"FiltCore", 1}}}}));

  return spec;
}

}  // namespace rispp::config
