#include "config/platform_parser.h"

#include <istream>
#include <set>
#include <sstream>
#include <vector>

#include "base/check.h"
#include "base/table.h"

namespace rispp::config {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_quotes = false;
  for (char ch : line) {
    if (ch == '#' && !in_quotes) break;  // comment
    if (ch == '"') {
      in_quotes = !in_quotes;
      continue;  // quotes delimit but are not part of the token
    }
    if (!in_quotes && (ch == ' ' || ch == '\t')) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

[[noreturn]] void fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "platform description line " << line << ": " << message;
  throw std::logic_error(os.str());
}

long parse_int(int line, const std::string& text) {
  std::size_t used = 0;
  long value = 0;
  try {
    value = std::stol(text, &used);
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + text + "'");
  }
  if (used != text.size()) fail(line, "trailing characters in number '" + text + "'");
  return value;
}

/// Splits "key=value"; returns false if '=' is absent.
bool split_kv(const std::string& token, std::string& key, std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

/// "x16" -> 16.
unsigned parse_count(int line, const std::string& token) {
  if (token.size() < 2 || token[0] != 'x') fail(line, "expected xN count, got '" + token + "'");
  const long n = parse_int(line, token.substr(1));
  if (n <= 0 || n > 4096) fail(line, "count out of range in '" + token + "'");
  return static_cast<unsigned>(n);
}

/// Quotes a name for emission; the tokenizer strips the quotes back off, so
/// quoting unconditionally keeps names with spaces round-trippable.
std::string quoted(const std::string& name) { return "\"" + name + "\""; }

}  // namespace

PlatformSpec parse_platform_spec(std::istream& input) {
  PlatformSpec spec;
  std::set<std::string> atom_names;

  enum class State { kTop, kSi, kBlock };
  State state = State::kTop;
  PlatformSi current_si;
  PlatformBlock current_block;
  bool explicit_block = false;

  auto flush_block = [&](int line) {
    if (current_block.layers.empty()) {
      if (explicit_block) fail(line, "empty block");
      return;
    }
    current_si.blocks.push_back(std::move(current_block));
    current_block = PlatformBlock{};
  };

  std::string line_text;
  int line = 0;
  while (std::getline(input, line_text)) {
    ++line;
    const auto tokens = tokenize(line_text);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];

    if (state == State::kTop) {
      if (head == "atom") {
        if (tokens.size() != 5) fail(line, "atom needs: name op_latency sw_cycles slices");
        AtomType type;
        type.name = tokens[1];
        type.op_latency = static_cast<Cycles>(parse_int(line, tokens[2]));
        type.sw_op_cycles = static_cast<Cycles>(parse_int(line, tokens[3]));
        type.slices = static_cast<unsigned>(parse_int(line, tokens[4]));
        if (!atom_names.insert(type.name).second)
          fail(line, "duplicate atom type '" + type.name + "'");
        spec.atoms.push_back(std::move(type));
      } else if (head == "si") {
        if (tokens.size() < 2) fail(line, "si needs a name");
        current_si = PlatformSi{};
        current_si.name = tokens[1];
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          std::string key, value;
          if (!split_kv(tokens[i], key, value)) fail(line, "expected key=value: " + tokens[i]);
          if (key == "trap") current_si.trap_overhead = static_cast<Cycles>(parse_int(line, value));
          else if (key == "molecules")
            current_si.molecule_target = static_cast<unsigned>(parse_int(line, value));
          else if (key == "min_det")
            current_si.min_determinant = static_cast<unsigned>(parse_int(line, value));
          else fail(line, "unknown si attribute '" + key + "'");
        }
        state = State::kSi;
        explicit_block = false;
      } else {
        fail(line, "expected 'atom' or 'si', got '" + head + "'");
      }
      continue;
    }

    // Inside an si (or block).
    if (head == "caps") {
      if (state != State::kSi) fail(line, "caps must precede blocks/layers");
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) fail(line, "caps entries are Name=N");
        current_si.caps.emplace_back(key, static_cast<unsigned>(parse_int(line, value)));
      }
    } else if (head == "block") {
      if (state == State::kBlock) fail(line, "blocks do not nest");
      flush_block(line);  // implicit layers before the block form their own block
      if (tokens.size() != 2) fail(line, "block needs an xN count");
      current_block.repeat = parse_count(line, tokens[1]);
      explicit_block = true;
      state = State::kBlock;
    } else if (head == "layer") {
      if (tokens.size() != 3) fail(line, "layer needs: atom-name xN");
      PlatformLayer layer;
      layer.atom = tokens[1];
      layer.count = parse_count(line, tokens[2]);
      current_block.layers.push_back(std::move(layer));
    } else if (head == "end") {
      if (state == State::kBlock) {
        if (current_block.layers.empty()) fail(line, "empty block");
        flush_block(line);
        explicit_block = false;
        state = State::kSi;
      } else {
        flush_block(line);
        if (current_si.blocks.empty()) fail(line, "si '" + current_si.name + "' has no layers");
        spec.sis.push_back(std::move(current_si));
        state = State::kTop;
      }
    } else {
      fail(line, "unexpected '" + head + "' inside si");
    }
  }
  if (state != State::kTop) fail(line, "unterminated si '" + current_si.name + "'");
  if (spec.atoms.empty()) fail(line, "no atoms defined");
  if (spec.sis.empty()) fail(line, "no SIs defined");
  return spec;
}

PlatformSpec parse_platform_spec_string(const std::string& text) {
  std::istringstream is(text);
  return parse_platform_spec(is);
}

SpecialInstructionSet build_platform(const PlatformSpec& spec, MakespanMemo* makespan_memo) {
  AtomLibrary library;
  for (const AtomType& type : spec.atoms) library.add(type);

  SpecialInstructionSet set(std::move(library));
  for (const PlatformSi& si : spec.sis) {
    DataPathGraph graph(&set.library());
    for (const PlatformBlock& block : si.blocks) {
      for (unsigned r = 0; r < block.repeat; ++r) {
        std::vector<NodeId> prev;
        for (const PlatformLayer& layer : block.layers) {
          const auto type = set.library().find(layer.atom);
          if (!type.has_value())
            throw std::logic_error("platform description: si '" + si.name +
                                   "' uses unknown atom '" + layer.atom + "'");
          prev = graph.add_layer(*type, layer.count, prev);
        }
      }
    }
    Molecule caps(set.library().size());
    for (const auto& [name, cap] : si.caps) {
      const auto type = set.library().find(name);
      if (!type.has_value())
        throw std::logic_error("platform description: cap for unknown atom '" + name + "'");
      caps[*type] = static_cast<AtomCount>(cap);
    }
    set.add_si(si.name, std::move(graph), caps, si.trap_overhead, si.molecule_target,
               si.min_determinant, makespan_memo);
  }
  return set;
}

std::string emit_platform(const PlatformSpec& spec) {
  std::ostringstream os;
  os << "# RISPP platform: " << spec.sis.size() << " SIs over " << spec.atoms.size()
     << " atom types\n";
  for (const AtomType& a : spec.atoms)
    os << "atom " << quoted(a.name) << " " << a.op_latency << " " << a.sw_op_cycles << " "
       << a.slices << "\n";
  for (const PlatformSi& si : spec.sis) {
    os << "\nsi " << quoted(si.name) << " trap=" << si.trap_overhead
       << " molecules=" << si.molecule_target << " min_det=" << si.min_determinant << "\n";
    if (!si.caps.empty()) {
      os << "  caps";
      for (const auto& [name, cap] : si.caps) os << " " << quoted(name) << "=" << cap;
      os << "\n";
    }
    for (const PlatformBlock& block : si.blocks) {
      os << "  block x" << block.repeat << "\n";
      for (const PlatformLayer& layer : block.layers)
        os << "    layer " << quoted(layer.atom) << " x" << layer.count << "\n";
      os << "  end\n";
    }
    os << "end\n";
  }
  return os.str();
}

SpecialInstructionSet parse_platform(std::istream& input) {
  return build_platform(parse_platform_spec(input));
}

SpecialInstructionSet parse_platform_string(const std::string& text) {
  std::istringstream is(text);
  return parse_platform(is);
}

std::string describe_platform(const SpecialInstructionSet& set) {
  std::ostringstream os;
  os << "# RISPP platform: " << set.si_count() << " SIs over " << set.atom_type_count()
     << " atom types\n";
  for (AtomTypeId t = 0; t < set.library().size(); ++t) {
    const AtomType& a = set.library().type(t);
    os << "atom " << a.name << " " << a.op_latency << " " << a.sw_op_cycles << " "
       << a.slices << "\n";
  }
  for (SiId id = 0; id < set.si_count(); ++id) {
    const SpecialInstruction& si = set.si(id);
    os << "# si \"" << si.name << "\": trap latency " << si.software_latency << ", "
       << si.molecules.size() << " molecules\n";
    for (const auto& m : si.molecules)
      os << "#   " << m.atoms.to_string() << " -> " << m.latency << " cycles\n";
  }
  return os.str();
}

}  // namespace rispp::config
