#include "config/platform_parser.h"

#include <istream>
#include <sstream>
#include <vector>

#include "base/check.h"
#include "base/table.h"

namespace rispp::config {
namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  bool in_quotes = false;
  for (char ch : line) {
    if (ch == '#' && !in_quotes) break;  // comment
    if (ch == '"') {
      in_quotes = !in_quotes;
      continue;  // quotes delimit but are not part of the token
    }
    if (!in_quotes && (ch == ' ' || ch == '\t')) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

[[noreturn]] void fail(int line, const std::string& message) {
  std::ostringstream os;
  os << "platform description line " << line << ": " << message;
  throw std::logic_error(os.str());
}

long parse_int(int line, const std::string& text) {
  std::size_t used = 0;
  long value = 0;
  try {
    value = std::stol(text, &used);
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + text + "'");
  }
  if (used != text.size()) fail(line, "trailing characters in number '" + text + "'");
  return value;
}

/// Splits "key=value"; returns false if '=' is absent.
bool split_kv(const std::string& token, std::string& key, std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

/// "x16" -> 16.
unsigned parse_count(int line, const std::string& token) {
  if (token.size() < 2 || token[0] != 'x') fail(line, "expected xN count, got '" + token + "'");
  const long n = parse_int(line, token.substr(1));
  if (n <= 0 || n > 4096) fail(line, "count out of range in '" + token + "'");
  return static_cast<unsigned>(n);
}

struct LayerSpec {
  std::string atom;
  unsigned count = 0;
};

struct SiSpec {
  std::string name;
  Cycles trap_overhead = 64;
  unsigned molecule_target = 0;
  unsigned min_determinant = 0;
  std::vector<std::pair<std::string, unsigned>> caps;
  /// Blocks of chained layers; repetition per block.
  std::vector<std::pair<std::vector<LayerSpec>, unsigned>> blocks;
};

}  // namespace

SpecialInstructionSet parse_platform(std::istream& input) {
  AtomLibrary library;
  std::vector<SiSpec> sis;

  enum class State { kTop, kSi, kBlock };
  State state = State::kTop;
  SiSpec current_si;
  std::vector<LayerSpec> current_block;
  unsigned current_block_count = 1;
  bool explicit_block = false;

  auto flush_block = [&](int line) {
    if (current_block.empty()) {
      if (explicit_block) fail(line, "empty block");
      return;
    }
    current_si.blocks.emplace_back(std::move(current_block), current_block_count);
    current_block.clear();
    current_block_count = 1;
  };

  std::string line_text;
  int line = 0;
  while (std::getline(input, line_text)) {
    ++line;
    const auto tokens = tokenize(line_text);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];

    if (state == State::kTop) {
      if (head == "atom") {
        if (tokens.size() != 5) fail(line, "atom needs: name op_latency sw_cycles slices");
        AtomType type;
        type.name = tokens[1];
        type.op_latency = static_cast<Cycles>(parse_int(line, tokens[2]));
        type.sw_op_cycles = static_cast<Cycles>(parse_int(line, tokens[3]));
        type.slices = static_cast<unsigned>(parse_int(line, tokens[4]));
        try {
          library.add(type);
        } catch (const std::logic_error& e) {
          fail(line, e.what());
        }
      } else if (head == "si") {
        if (tokens.size() < 2) fail(line, "si needs a name");
        current_si = SiSpec{};
        current_si.name = tokens[1];
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          std::string key, value;
          if (!split_kv(tokens[i], key, value)) fail(line, "expected key=value: " + tokens[i]);
          if (key == "trap") current_si.trap_overhead = static_cast<Cycles>(parse_int(line, value));
          else if (key == "molecules")
            current_si.molecule_target = static_cast<unsigned>(parse_int(line, value));
          else if (key == "min_det")
            current_si.min_determinant = static_cast<unsigned>(parse_int(line, value));
          else fail(line, "unknown si attribute '" + key + "'");
        }
        state = State::kSi;
        explicit_block = false;
      } else {
        fail(line, "expected 'atom' or 'si', got '" + head + "'");
      }
      continue;
    }

    // Inside an si (or block).
    if (head == "caps") {
      if (state != State::kSi) fail(line, "caps must precede blocks/layers");
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string key, value;
        if (!split_kv(tokens[i], key, value)) fail(line, "caps entries are Name=N");
        current_si.caps.emplace_back(key, static_cast<unsigned>(parse_int(line, value)));
      }
    } else if (head == "block") {
      if (state == State::kBlock) fail(line, "blocks do not nest");
      flush_block(line);  // implicit layers before the block form their own block
      if (tokens.size() != 2) fail(line, "block needs an xN count");
      current_block_count = parse_count(line, tokens[1]);
      explicit_block = true;
      state = State::kBlock;
    } else if (head == "layer") {
      if (tokens.size() != 3) fail(line, "layer needs: atom-name xN");
      LayerSpec spec;
      spec.atom = tokens[1];
      spec.count = parse_count(line, tokens[2]);
      current_block.push_back(spec);
    } else if (head == "end") {
      if (state == State::kBlock) {
        if (current_block.empty()) fail(line, "empty block");
        flush_block(line);
        explicit_block = false;
        state = State::kSi;
      } else {
        flush_block(line);
        if (current_si.blocks.empty()) fail(line, "si '" + current_si.name + "' has no layers");
        sis.push_back(std::move(current_si));
        state = State::kTop;
      }
    } else {
      fail(line, "unexpected '" + head + "' inside si");
    }
  }
  if (state != State::kTop) fail(line, "unterminated si '" + current_si.name + "'");
  if (library.size() == 0) fail(line, "no atoms defined");
  if (sis.empty()) fail(line, "no SIs defined");

  SpecialInstructionSet set(std::move(library));
  for (SiSpec& spec : sis) {
    DataPathGraph graph(&set.library());
    for (const auto& [layers, repeat] : spec.blocks) {
      for (unsigned r = 0; r < repeat; ++r) {
        std::vector<NodeId> prev;
        for (const LayerSpec& layer : layers) {
          const auto type = set.library().find(layer.atom);
          if (!type.has_value())
            throw std::logic_error("platform description: si '" + spec.name +
                                   "' uses unknown atom '" + layer.atom + "'");
          prev = graph.add_layer(*type, layer.count, prev);
        }
      }
    }
    Molecule caps(set.library().size());
    for (const auto& [name, cap] : spec.caps) {
      const auto type = set.library().find(name);
      if (!type.has_value())
        throw std::logic_error("platform description: cap for unknown atom '" + name + "'");
      caps[*type] = static_cast<AtomCount>(cap);
    }
    set.add_si(spec.name, std::move(graph), caps, spec.trap_overhead, spec.molecule_target,
               spec.min_determinant);
  }
  return set;
}

SpecialInstructionSet parse_platform_string(const std::string& text) {
  std::istringstream is(text);
  return parse_platform(is);
}

std::string describe_platform(const SpecialInstructionSet& set) {
  std::ostringstream os;
  os << "# RISPP platform: " << set.si_count() << " SIs over " << set.atom_type_count()
     << " atom types\n";
  for (AtomTypeId t = 0; t < set.library().size(); ++t) {
    const AtomType& a = set.library().type(t);
    os << "atom " << a.name << " " << a.op_latency << " " << a.sw_op_cycles << " "
       << a.slices << "\n";
  }
  for (SiId id = 0; id < set.si_count(); ++id) {
    const SpecialInstruction& si = set.si(id);
    os << "# si \"" << si.name << "\": trap latency " << si.software_latency << ", "
       << si.molecules.size() << " molecules\n";
    for (const auto& m : si.molecules)
      os << "#   " << m.atoms.to_string() << " -> " << m.latency << " cycles\n";
  }
  return os.str();
}

}  // namespace rispp::config
