// Textual platform descriptions.
//
// A downstream user defines their own RISPP platform — atom types, Special
// Instructions, data-path graphs, instance caps — in a small line-oriented
// language instead of C++:
//
//     # atoms:  name  hw-op-latency  sw-cycles-per-op  slices
//     atom SADRow   2  64  410
//     atom Clip3    1  12  210
//
//     # one SI; body until 'end'
//     si "SAD" trap=64 molecules=3
//       caps SADRow=3
//       layer SADRow x16          # 16 parallel occurrences
//     end
//
//     si "MC" trap=64 molecules=11 min_det=6
//       caps BytePack=2 PointFilter=6 Clip3=2
//       block x8                  # repeat the sub-graph 8 times
//         layer BytePack x4       # layers chain: each depends on the
//         layer PointFilter x6    # whole previous layer of its block
//         layer Clip3 x2
//       end
//     end
//
// Semantics: inside an `si`, consecutive `layer` lines chain (layer N
// depends on all nodes of layer N-1); `block xN ... end` repeats its layer
// chain N times as independent sub-graphs (block-level parallelism).
// `molecules=` is the Table 1 style thinning target, `min_det=` the minimum
// hardware-molecule determinant; both optional.
#pragma once

#include <iosfwd>
#include <string>

#include "isa/si.h"

namespace rispp::config {

/// Parses a platform description; throws std::logic_error with a line number
/// on malformed input.
SpecialInstructionSet parse_platform(std::istream& input);
SpecialInstructionSet parse_platform_string(const std::string& text);

/// Renders a human-readable report of `set`: the atom table in `atom` line
/// syntax plus, per SI, the derived molecule list (as comments). Graph
/// structure is not reconstructed, so the output is documentation, not a
/// round-trip serialization.
std::string describe_platform(const SpecialInstructionSet& set);

}  // namespace rispp::config
