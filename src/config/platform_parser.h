// Textual platform descriptions.
//
// A downstream user defines their own RISPP platform — atom types, Special
// Instructions, data-path graphs, instance caps — in a small line-oriented
// language instead of C++:
//
//     # atoms:  name  hw-op-latency  sw-cycles-per-op  slices
//     atom SADRow   2  64  410
//     atom Clip3    1  12  210
//
//     # one SI; body until 'end'
//     si "SAD" trap=64 molecules=3
//       caps SADRow=3
//       layer SADRow x16          # 16 parallel occurrences
//     end
//
//     si "MC" trap=64 molecules=11 min_det=6
//       caps BytePack=2 PointFilter=6 Clip3=2
//       block x8                  # repeat the sub-graph 8 times
//         layer BytePack x4       # layers chain: each depends on the
//         layer PointFilter x6    # whole previous layer of its block
//         layer Clip3 x2
//       end
//     end
//
// Semantics: inside an `si`, consecutive `layer` lines chain (layer N
// depends on all nodes of layer N-1); `block xN ... end` repeats its layer
// chain N times as independent sub-graphs (block-level parallelism).
// `molecules=` is the Table 1 style thinning target, `min_det=` the minimum
// hardware-molecule determinant; both optional.
//
// The language round-trips through a structured IR (PlatformSpec): parsing
// yields a spec, build_platform() turns a spec into a SpecialInstructionSet,
// and emit_platform() serializes a spec back to the description language
// such that parse_platform_spec(emit_platform(s)) == s. The DSE engine
// (src/dse) mutates PlatformSpecs directly and emits its discovered ISAs as
// `.rispp` files through the same emitter.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "isa/si.h"

namespace rispp::config {

/// One `layer <atom> xN` line: `count` parallel occurrences of `atom`, each
/// depending on every node of the previous layer in the chain.
struct PlatformLayer {
  std::string atom;
  unsigned count = 0;
  bool operator==(const PlatformLayer&) const = default;
};

/// One `block xN` (or the implicit block formed by bare layer lines): its
/// layer chain instantiated `repeat` times as independent sub-graphs.
struct PlatformBlock {
  unsigned repeat = 1;
  std::vector<PlatformLayer> layers;
  bool operator==(const PlatformBlock&) const = default;
};

struct PlatformSi {
  std::string name;
  Cycles trap_overhead = 64;
  unsigned molecule_target = 0;   // 0 = keep every enumerated molecule
  unsigned min_determinant = 0;   // 0 = no minimum
  /// Instance caps by atom name, in declaration order. Types used by the
  /// graph but absent here default to their occurrence count.
  std::vector<std::pair<std::string, unsigned>> caps;
  std::vector<PlatformBlock> blocks;
  bool operator==(const PlatformSi&) const = default;
};

/// The structured form of one platform description file.
struct PlatformSpec {
  std::vector<AtomType> atoms;
  std::vector<PlatformSi> sis;
  bool operator==(const PlatformSpec&) const = default;
};

/// Parses a platform description into its IR; throws std::logic_error with a
/// line number on malformed input. Purely syntactic — name resolution and
/// molecule enumeration happen in build_platform().
PlatformSpec parse_platform_spec(std::istream& input);
PlatformSpec parse_platform_spec_string(const std::string& text);

/// Builds the instruction set a spec describes; throws std::logic_error on
/// unknown atom names (layers or caps naming atoms the spec never declared).
/// `makespan_memo` (optional) is forwarded to add_si so molecule enumeration
/// reuses memoized list-schedule makespans — the DSE engine's candidate
/// build path; results are bit-identical with or without it.
SpecialInstructionSet build_platform(const PlatformSpec& spec,
                                     MakespanMemo* makespan_memo = nullptr);

/// Serializes a spec back to the description language. Exact round trip:
/// parse_platform_spec(emit_platform(s)) == s for every buildable spec, so
/// an emitted file reconstructs a bit-identical instruction set (equal isa
/// fingerprint — asserted by the DSE driver and tests).
std::string emit_platform(const PlatformSpec& spec);

/// Parses a platform description; throws std::logic_error with a line number
/// on malformed input. Equivalent to build_platform(parse_platform_spec()).
SpecialInstructionSet parse_platform(std::istream& input);
SpecialInstructionSet parse_platform_string(const std::string& text);

/// Renders a human-readable report of `set`: the atom table in `atom` line
/// syntax plus, per SI, the derived molecule list (as comments). Graph
/// structure is not reconstructed, so the output is documentation, not a
/// round-trip serialization (emit_platform on the spec is).
std::string describe_platform(const SpecialInstructionSet& set);

}  // namespace rispp::config
