// The Table 1 H.264 platform as a PlatformSpec — the hand-built
// isa/h264_si_library.cpp expressed in the `.rispp` platform IR.
//
// build_platform(h264_platform_spec()) constructs the exact same
// SpecialInstructionSet as h264sis::build_h264_si_set() (equal isa
// fingerprint; asserted by tests/dse_test.cpp). The DSE engine explores from
// this spec: degraded_seed() strips it down, mutations grow it back, and the
// discovered ISA's speedup is reported relative to this hand-built one.
#pragma once

#include "config/platform_parser.h"

namespace rispp::config {

/// The hand-built H.264 platform of Table 1: 13 atom types, 9 SIs.
PlatformSpec h264_platform_spec();

}  // namespace rispp::config
