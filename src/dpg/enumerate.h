// Enumeration of an SI's Molecule set from its data-path graph.
//
// Candidates are all instance vectors m with 1 <= m_t <= cap_t for every atom
// type the graph uses (a hardware Molecule needs at least one instance of
// each used type; the trap implementation is the separate "software
// molecule"). Each candidate's latency comes from the list scheduler.
//
// Dominated candidates are removed at *design time*: m is dropped iff there
// is a strictly smaller m' <= m with latency(m') <= latency(m) — more atoms
// for no gain. Incomparable molecules are all kept even when one of them has
// a worse latency (the paper's m4=(1,3) vs m2=(2,2) discussion): whether m4
// is useful depends on the atoms already loaded, which is only known at run
// time, so eq. (4) cleans them there instead.
#pragma once

#include <functional>
#include <vector>

#include "alg/molecule.h"
#include "base/types.h"
#include "dpg/graph.h"

namespace rispp {

struct MoleculeImpl {
  Molecule atoms;   // instance counts, global atom-type dimension
  Cycles latency;   // one SI execution with these instances
};

struct EnumerationOptions {
  /// Per-type instance cap; zero entries mean "use the occurrence count".
  /// Caps bound the hardware the Molecule selection may ever pick.
  Molecule instance_caps;
};

/// Returns the Pareto-cleaned molecule list, sorted by ascending determinant
/// and, within equal determinant, ascending latency.
std::vector<MoleculeImpl> enumerate_molecules(const DataPathGraph& graph,
                                              const EnumerationOptions& options);

namespace detail {
/// Implementation hook shared with the memoized overload in makespan_memo.h:
/// identical enumeration/cleaning, with every candidate's latency supplied by
/// `latency` instead of the list scheduler directly.
std::vector<MoleculeImpl> enumerate_molecules_with(
    const DataPathGraph& graph, const EnumerationOptions& options,
    const std::function<Cycles(const Molecule&)>& latency);
}  // namespace detail

}  // namespace rispp
