#include "dpg/makespan_memo.h"

#include <algorithm>

#include "base/check.h"
#include "base/metrics.h"
#include "dpg/list_scheduler.h"

namespace rispp {
namespace {

// Local FNV-1a (isa/ owns fingerprint_mix and sits above dpg/).
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t mix(std::uint64_t hash, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (value >> shift) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

MakespanGraphKey makespan_graph_key(const DataPathGraph& graph) {
  MakespanGraphKey key;
  // Canonical type indices in first-use order make the digest independent of
  // the library's type-id assignment (mutated candidates rebuild libraries).
  std::vector<std::uint32_t> canonical(graph.library().size(),
                                       static_cast<std::uint32_t>(-1));
  std::uint64_t h = mix(kFnvOffset, graph.node_count());
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    const DpgNode& node = graph.node(id);
    if (canonical[node.type] == static_cast<std::uint32_t>(-1)) {
      canonical[node.type] = static_cast<std::uint32_t>(key.used_types.size());
      key.used_types.push_back(node.type);
    }
    h = mix(h, canonical[node.type]);
    h = mix(h, graph.library().type(node.type).op_latency);
    h = mix(h, node.preds.size());
    for (NodeId pred : node.preds) h = mix(h, pred);
  }
  key.digest = h;
  return key;
}

std::size_t MakespanMemo::KeyHash::operator()(const Key& k) const {
  std::uint64_t h = k.digest;
  for (AtomCount c : k.counts) h = mix(h, c);
  return static_cast<std::size_t>(h);
}

Cycles MakespanMemo::latency(const DataPathGraph& graph, const MakespanGraphKey& key,
                             const Molecule& instances) {
  Key packed;
  packed.digest = key.digest;
  packed.counts.reserve(key.used_types.size());
  for (AtomTypeId t : key.used_types) packed.counts.push_back(instances[t]);

  static MetricCounter& hits = metric_counter("dse.makespan_memo.hits");
  static MetricCounter& misses = metric_counter("dse.makespan_memo.misses");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(packed);
    if (it != map_.end()) {
      ++stats_.hits;
      hits.add();
      return it->second;
    }
  }
  // Schedule outside the lock: the value is a pure function of the key, so a
  // concurrent duplicate computation inserts the same result.
  const Cycles makespan = molecule_latency(graph, instances);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    misses.add();
    map_.emplace(std::move(packed), makespan);
  }
  return makespan;
}

MakespanMemo::Stats MakespanMemo::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t MakespanMemo::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void MakespanMemo::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  stats_ = Stats{};
}

MakespanMemo& MakespanMemo::global() {
  static MakespanMemo* memo = new MakespanMemo();  // leaked: process lifetime
  return *memo;
}

std::vector<MoleculeImpl> enumerate_molecules(const DataPathGraph& graph,
                                              const EnumerationOptions& options,
                                              MakespanMemo* memo) {
  if (memo == nullptr) return enumerate_molecules(graph, options);
  const MakespanGraphKey key = makespan_graph_key(graph);
  return detail::enumerate_molecules_with(
      graph, options, [&](const Molecule& m) { return memo->latency(graph, key, m); });
}

}  // namespace rispp
