// Global library of atom *types* — the reloadable elementary data paths
// (§3: "Atom: an elementary data path; can be re-loaded at run time").
//
// Every Molecule vector in the platform is indexed against one AtomLibrary,
// so AtomTypeId is a dense index into this table.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/types.h"

namespace rispp {

struct AtomType {
  std::string name;

  /// Cycles one operation takes on the hardware atom (pipeline initiation
  /// interval; the Figure 3 PointFilter is a short multi-adder tree).
  Cycles op_latency = 1;

  /// Cycles the base processor needs to emulate one operation of this atom
  /// with its general-purpose instruction set (drives the trap latency).
  Cycles sw_op_cycles = 16;

  /// FPGA slice count — an area proxy used by the bitstream-size model
  /// (paper: average atom is 421 slices / 60,488-byte partial bitstream).
  unsigned slices = 421;

  bool operator==(const AtomType&) const = default;
};

class AtomLibrary {
 public:
  /// Registers a type; names must be unique.
  AtomTypeId add(AtomType type);

  const AtomType& type(AtomTypeId id) const;
  std::size_t size() const { return types_.size(); }

  std::optional<AtomTypeId> find(const std::string& name) const;

 private:
  std::vector<AtomType> types_;
};

}  // namespace rispp
