// Resource-constrained list scheduling of an SI data-path graph.
//
// Given a Molecule (instance counts per atom type) the scheduler computes the
// number of cycles one SI execution takes when every atom type t owns m_t
// physical instances. This *derives* the latency column of every Molecule in
// the platform instead of hand-assigning numbers, and reproduces the paper's
// two parallelism levels:
//   * Atom-level parallelism  — inside one atom (its op_latency is short
//     because the data path is wide), fixed at design time;
//   * Molecule-level parallelism — more instances of a type lower the
//     makespan, chosen at run time.
//
// Classic longest-path-priority list scheduling: ready nodes are started on
// free instances in order of decreasing remaining critical path. The result
// is deterministic for identical inputs.
#pragma once

#include <vector>

#include "alg/molecule.h"
#include "base/types.h"
#include "dpg/graph.h"

namespace rispp {

struct ListScheduleResult {
  Cycles makespan = 0;
  /// start[i] = cycle node i begins; useful for tests and visualization.
  std::vector<Cycles> start;
};

/// Schedules `graph` with the instance counts in `instances`.
/// Requires instances[t] >= 1 for every atom type the graph uses.
ListScheduleResult list_schedule(const DataPathGraph& graph, const Molecule& instances);

/// Convenience: just the makespan.
Cycles molecule_latency(const DataPathGraph& graph, const Molecule& instances);

}  // namespace rispp
