// Data-path graph of one Special Instruction.
//
// An SI body is a DAG whose nodes are atom *occurrences* (Figure 3 shows the
// Motion Compensation SI: BytePack, PointFilter and Clip3 occurrences wired
// together). A Molecule assigns an instance count to each atom type; the
// list scheduler (list_scheduler.h) then computes the SI latency under that
// resource constraint. With one instance per type the occurrences of that
// type are serialized onto the single instance ("reusing the single
// Atom-instance for all occurrences of its type"); with one instance per
// occurrence the full Molecule-level parallelism is exploited.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "alg/molecule.h"
#include "base/types.h"
#include "dpg/atom_library.h"

namespace rispp {

using NodeId = std::uint32_t;

struct DpgNode {
  AtomTypeId type;
  std::vector<NodeId> preds;  // all < own id, so the graph is acyclic by construction
};

class DataPathGraph {
 public:
  explicit DataPathGraph(const AtomLibrary* library);

  /// Adds an occurrence of `type` depending on `preds` (each already added).
  NodeId add_node(AtomTypeId type, std::vector<NodeId> preds = {});

  /// Convenience: a layer of `count` independent occurrences, each depending
  /// on all of `preds`. Returns the new node ids.
  std::vector<NodeId> add_layer(AtomTypeId type, unsigned count,
                                std::span<const NodeId> preds = {});

  std::size_t node_count() const { return nodes_.size(); }
  const DpgNode& node(NodeId id) const;
  const AtomLibrary& library() const { return *library_; }

  /// Occurrence vector: how many nodes of each atom type the graph contains.
  /// This is the natural upper bound for Molecule instance counts.
  Molecule occurrences() const;

  /// Total base-processor cycles to execute every occurrence sequentially
  /// with general-purpose instructions (the trap implementation body).
  Cycles software_cycles() const;

  /// Length of the longest latency-weighted path (the resource-unconstrained
  /// lower bound on any molecule latency).
  Cycles critical_path() const;

 private:
  const AtomLibrary* library_;
  std::vector<DpgNode> nodes_;
};

}  // namespace rispp
