#include "dpg/atom_library.h"

#include "base/check.h"

namespace rispp {

AtomTypeId AtomLibrary::add(AtomType type) {
  RISPP_CHECK_MSG(!find(type.name).has_value(), "duplicate atom type " << type.name);
  RISPP_CHECK(type.op_latency > 0);
  RISPP_CHECK(type.sw_op_cycles > 0);
  types_.push_back(std::move(type));
  return static_cast<AtomTypeId>(types_.size() - 1);
}

const AtomType& AtomLibrary::type(AtomTypeId id) const {
  RISPP_CHECK(id < types_.size());
  return types_[id];
}

std::optional<AtomTypeId> AtomLibrary::find(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i)
    if (types_[i].name == name) return static_cast<AtomTypeId>(i);
  return std::nullopt;
}

}  // namespace rispp
