#include "dpg/list_scheduler.h"

#include <algorithm>
#include <queue>

#include "base/check.h"

namespace rispp {
namespace {

/// Remaining critical path from each node to any sink (node latency included).
std::vector<Cycles> downward_rank(const DataPathGraph& graph) {
  const auto n = static_cast<NodeId>(graph.node_count());
  std::vector<std::vector<NodeId>> succs(n);
  for (NodeId id = 0; id < n; ++id)
    for (NodeId p : graph.node(id).preds) succs[p].push_back(id);

  std::vector<Cycles> rank(n, 0);
  for (NodeId id = n; id-- > 0;) {
    Cycles best = 0;
    for (NodeId s : succs[id]) best = std::max(best, rank[s]);
    rank[id] = best + graph.library().type(graph.node(id).type).op_latency;
  }
  return rank;
}

}  // namespace

ListScheduleResult list_schedule(const DataPathGraph& graph, const Molecule& instances) {
  RISPP_CHECK(instances.dimension() == graph.library().size());
  const Molecule occ = graph.occurrences();
  for (std::size_t t = 0; t < occ.dimension(); ++t)
    RISPP_CHECK_MSG(occ[t] == 0 || instances[t] >= 1,
                    "atom type " << t << " used by graph but has no instance");

  const auto n = static_cast<NodeId>(graph.node_count());
  ListScheduleResult result;
  result.start.assign(n, 0);
  if (n == 0) return result;

  const std::vector<Cycles> rank = downward_rank(graph);

  // earliest[i]: max finish time over predecessors (data-ready time).
  std::vector<Cycles> earliest(n, 0);
  std::vector<unsigned> missing_preds(n, 0);
  std::vector<std::vector<NodeId>> succs(n);
  for (NodeId id = 0; id < n; ++id) {
    missing_preds[id] = static_cast<unsigned>(graph.node(id).preds.size());
    for (NodeId p : graph.node(id).preds) succs[p].push_back(id);
  }

  // Per atom type: min-heap of instance-free times.
  std::vector<std::vector<Cycles>> instance_free(instances.dimension());
  for (std::size_t t = 0; t < instances.dimension(); ++t)
    if (occ[t] > 0) instance_free[t].assign(instances[t], 0);

  // Ready queue ordered by (higher rank first, then node id for determinism).
  auto cmp = [&](NodeId a, NodeId b) {
    if (rank[a] != rank[b]) return rank[a] < rank[b];  // max-heap on rank
    return a > b;
  };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(cmp)> ready(cmp);
  for (NodeId id = 0; id < n; ++id)
    if (missing_preds[id] == 0) ready.push(id);

  Cycles makespan = 0;
  unsigned scheduled = 0;
  while (!ready.empty()) {
    const NodeId id = ready.top();
    ready.pop();
    const AtomTypeId t = graph.node(id).type;
    auto& frees = instance_free[t];
    // Pick the instance that frees earliest.
    auto it = std::min_element(frees.begin(), frees.end());
    const Cycles start = std::max(*it, earliest[id]);
    const Cycles lat = graph.library().type(t).op_latency;
    *it = start + lat;
    result.start[id] = start;
    makespan = std::max(makespan, start + lat);
    ++scheduled;
    for (NodeId s : succs[id]) {
      earliest[s] = std::max(earliest[s], start + lat);
      if (--missing_preds[s] == 0) ready.push(s);
    }
  }
  RISPP_CHECK_MSG(scheduled == n, "graph has unreachable nodes (cycle?)");
  result.makespan = makespan;
  return result;
}

Cycles molecule_latency(const DataPathGraph& graph, const Molecule& instances) {
  return list_schedule(graph, instances).makespan;
}

}  // namespace rispp
