#include "dpg/graph.h"

#include <algorithm>

#include "base/check.h"

namespace rispp {

DataPathGraph::DataPathGraph(const AtomLibrary* library) : library_(library) {
  RISPP_CHECK(library != nullptr);
}

NodeId DataPathGraph::add_node(AtomTypeId type, std::vector<NodeId> preds) {
  RISPP_CHECK(type < library_->size());
  const auto id = static_cast<NodeId>(nodes_.size());
  for (NodeId p : preds) RISPP_CHECK_MSG(p < id, "predecessor " << p << " not yet added");
  nodes_.push_back(DpgNode{type, std::move(preds)});
  return id;
}

std::vector<NodeId> DataPathGraph::add_layer(AtomTypeId type, unsigned count,
                                             std::span<const NodeId> preds) {
  std::vector<NodeId> ids;
  ids.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    ids.push_back(add_node(type, {preds.begin(), preds.end()}));
  return ids;
}

const DpgNode& DataPathGraph::node(NodeId id) const {
  RISPP_CHECK(id < nodes_.size());
  return nodes_[id];
}

Molecule DataPathGraph::occurrences() const {
  Molecule occ(library_->size());
  for (const DpgNode& n : nodes_) ++occ[n.type];
  return occ;
}

Cycles DataPathGraph::software_cycles() const {
  Cycles total = 0;
  for (const DpgNode& n : nodes_) total += library_->type(n.type).sw_op_cycles;
  return total;
}

Cycles DataPathGraph::critical_path() const {
  std::vector<Cycles> finish(nodes_.size(), 0);
  Cycles best = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    Cycles start = 0;
    for (NodeId p : nodes_[id].preds) start = std::max(start, finish[p]);
    finish[id] = start + library_->type(nodes_[id].type).op_latency;
    best = std::max(best, finish[id]);
  }
  return best;
}

}  // namespace rispp
