// Memoized list-schedule makespans, keyed on graph *structure*.
//
// The DSE engine (src/dse) evaluates thousands of candidate platforms whose
// SIs mostly share data-path graphs: a single-atom mutation touches one SI
// and leaves the other eight identical, and even the touched SI usually
// re-appears in later generations (mutations are invertible). Re-running the
// list scheduler over every (graph, instance-vector) pair per candidate is
// the dominant cost of candidate construction, and almost all of that work
// is repeated.
//
// MakespanMemo caches makespans under a *library-independent* structure key:
// nodes are described by (canonical type index in first-use order, hardware
// op latency, predecessor list), so two graphs that differ only in atom
// naming, type-id assignment or library membership — the normal situation
// for mutated candidates, which each build a fresh AtomLibrary — share
// entries. The instance vector is packed over used types in the same
// canonical order. The memoized value is a pure function of the key, so
// concurrent lookups from pool workers are deterministic regardless of
// interleaving; the full recompute (list_schedule) stays available as the
// fuzz oracle (tests/dse_test.cpp).
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "alg/molecule.h"
#include "base/types.h"
#include "dpg/enumerate.h"
#include "dpg/graph.h"

namespace rispp {

/// Precomputed per-graph memoization handle: the canonical structure digest
/// plus the used atom types in first-use order (the count-packing order).
/// Compute once per graph (O(nodes)), then every latency lookup is O(types).
struct MakespanGraphKey {
  std::uint64_t digest = 0;
  std::vector<AtomTypeId> used_types;
};

MakespanGraphKey makespan_graph_key(const DataPathGraph& graph);

class MakespanMemo {
 public:
  /// Makespan of `graph` under `instances`, memoized. `key` must be
  /// makespan_graph_key(graph); `instances` must satisfy the list-scheduler
  /// precondition (>= 1 instance of every used type). Thread-safe.
  Cycles latency(const DataPathGraph& graph, const MakespanGraphKey& key,
                 const Molecule& instances);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;
  std::size_t size() const;
  void clear();

  /// Process-wide instance shared by every DSE engine (candidates from
  /// different searches overlap whenever they mutate the same seed).
  static MakespanMemo& global();

 private:
  struct Key {
    std::uint64_t digest = 0;
    std::vector<AtomCount> counts;  // used types only, first-use order
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, Cycles, KeyHash> map_;
  Stats stats_;
};

/// enumerate_molecules with every makespan routed through `memo` (nullptr
/// falls back to the plain path). Bit-identical to the memo-less overload —
/// asserted by the DSE fuzz tests — since the memo value is a pure function
/// of the structure key.
std::vector<MoleculeImpl> enumerate_molecules(const DataPathGraph& graph,
                                              const EnumerationOptions& options,
                                              MakespanMemo* memo);

}  // namespace rispp
