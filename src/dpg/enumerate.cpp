#include "dpg/enumerate.h"

#include <algorithm>

#include "base/check.h"
#include "dpg/list_scheduler.h"

namespace rispp {

std::vector<MoleculeImpl> detail::enumerate_molecules_with(
    const DataPathGraph& graph, const EnumerationOptions& options,
    const std::function<Cycles(const Molecule&)>& latency) {
  const Molecule occ = graph.occurrences();
  const std::size_t dim = occ.dimension();

  // Effective cap per type: explicit cap, bounded by occurrences (more
  // instances than occurrences can never help the list scheduler).
  Molecule cap(dim);
  std::vector<std::size_t> used_types;
  for (std::size_t t = 0; t < dim; ++t) {
    if (occ[t] == 0) continue;
    AtomCount c = occ[t];
    if (options.instance_caps.dimension() == dim && options.instance_caps[t] != 0)
      c = std::min<AtomCount>(c, options.instance_caps[t]);
    cap[t] = c;
    used_types.push_back(t);
  }
  RISPP_CHECK_MSG(!used_types.empty(), "SI graph uses no atoms");

  // Enumerate the full grid 1..cap_t per used type.
  std::vector<MoleculeImpl> all;
  Molecule current(dim);
  for (std::size_t t : used_types) current[t] = 1;
  for (;;) {
    all.push_back(MoleculeImpl{current, latency(current)});
    // Odometer increment over used types.
    std::size_t k = 0;
    for (; k < used_types.size(); ++k) {
      const std::size_t t = used_types[k];
      if (current[t] < cap[t]) {
        ++current[t];
        break;
      }
      current[t] = 1;
    }
    if (k == used_types.size()) break;
  }

  // Design-time cleaning: drop m if a strictly smaller m' offers latency <= m.
  std::vector<MoleculeImpl> kept;
  for (const MoleculeImpl& m : all) {
    const bool dominated = std::any_of(all.begin(), all.end(), [&](const MoleculeImpl& o) {
      return o.atoms != m.atoms && leq(o.atoms, m.atoms) && o.latency <= m.latency;
    });
    if (!dominated) kept.push_back(m);
  }

  std::sort(kept.begin(), kept.end(), [](const MoleculeImpl& a, const MoleculeImpl& b) {
    const unsigned da = a.atoms.determinant(), db = b.atoms.determinant();
    if (da != db) return da < db;
    if (a.latency != b.latency) return a.latency < b.latency;
    return std::lexicographical_compare(a.atoms.counts().begin(), a.atoms.counts().end(),
                                        b.atoms.counts().begin(), b.atoms.counts().end());
  });
  return kept;
}

std::vector<MoleculeImpl> enumerate_molecules(const DataPathGraph& graph,
                                              const EnumerationOptions& options) {
  return detail::enumerate_molecules_with(
      graph, options, [&](const Molecule& m) { return molecule_latency(graph, m); });
}

}  // namespace rispp
