#include "fleet/tenant_fleet.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>

#include "base/check.h"
#include "base/metrics.h"
#include "base/quantile.h"
#include "baselines/software_only.h"
#include "rtm/run_time_manager.h"
#include "rtm/tenant_sim.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp::fleet {

ContendedReport run_contended_fleet(const std::vector<SessionSpec>& specs,
                                    const ContendedOptions& options,
                                    std::vector<SimResult>* results) {
  ContendedReport report;
  report.sessions = specs.size();
  if (specs.empty()) return report;
  RISPP_CHECK(options.tenants_per_device >= 1);
  RISPP_CHECK(options.tenants_per_device <=
              static_cast<int>(FabricArbiter::kMaxTenants));
  RISPP_CHECK(options.acs_per_tenant >= 1);

  TraceRepository& traces =
      options.traces != nullptr ? *options.traces : TraceRepository::global();
  ThreadPool& pool = options.pool != nullptr ? *options.pool : ThreadPool::global();

  // Resolve cohorts and the software-only baseline serially up front: trace
  // generation and the baseline replay happen once per distinct content, and
  // the devices then only read immutable entries.
  std::vector<const TraceEntry*> entry_of(specs.size());
  std::map<const TraceEntry*, Cycles> software_cycles;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    (void)make_scheduler(specs[s].scheduler);  // fail on bad specs up front
    const TraceEntry& entry = traces.get(specs[s]);
    entry_of[s] = &entry;
    if (software_cycles.find(&entry) == software_cycles.end()) {
      SoftwareOnlyBackend software(&entry.set);
      software_cycles[&entry] = run_trace(entry.trace, software).total_cycles;
    }
  }

  // Consecutive sessions (the specs come in arrival order) share a device.
  const std::size_t per_device = static_cast<std::size_t>(options.tenants_per_device);
  const std::size_t devices = (specs.size() + per_device - 1) / per_device;
  report.devices = devices;
  std::vector<SimResult> session_results(specs.size());
  std::vector<std::uint64_t> device_grants(devices, 0);
  std::vector<std::uint64_t> device_evictions(devices, 0);
  std::vector<std::uint64_t> device_port_wait(devices, 0);

  const auto t0 = std::chrono::steady_clock::now();
  pool.parallel_for(devices, [&](std::size_t d) {
    const std::size_t first = d * per_device;
    const std::size_t k = std::min(per_device, specs.size() - first);

    ArbiterConfig arb_config;
    arb_config.total_containers =
        static_cast<unsigned>(k) * static_cast<unsigned>(options.acs_per_tenant);
    arb_config.partition = options.partition;
    FabricArbiter arbiter(arb_config);

    std::vector<std::unique_ptr<AtomScheduler>> schedulers(k);
    std::vector<std::unique_ptr<RunTimeManager>> rtms(k);
    std::vector<TenantRun> runs(k);
    for (std::size_t i = 0; i < k; ++i) {
      TenantConfig tenant;
      tenant.quota = static_cast<unsigned>(options.acs_per_tenant);
      tenant.floor = static_cast<unsigned>(
          std::clamp(options.floor, 1, options.acs_per_tenant));
      runs[i].tenant = arbiter.add_tenant(tenant);
    }
    for (std::size_t i = 0; i < k; ++i) {
      const SessionSpec& spec = specs[first + i];
      const TraceEntry& entry = *entry_of[first + i];
      schedulers[i] = make_scheduler(spec.scheduler);
      RtmConfig config;
      config.scheduler = schedulers[i].get();
      config.forecast_mode = spec.forecast_mode;
      config.session_id = first + i;
      config.arbiter = &arbiter;
      config.tenant = runs[i].tenant;
      rtms[i] = std::make_unique<RunTimeManager>(&entry.set, entry.trace.hot_spots.size(),
                                                 config);
      for (HotSpotId hs = 0; hs < entry.seeds.size(); ++hs)
        for (SiId si = 0; si < entry.seeds[hs].size(); ++si)
          if (entry.seeds[hs][si] != 0) rtms[i]->seed_forecast(hs, si, entry.seeds[hs][si]);
      runs[i].trace = &entry.trace;
      runs[i].rtm = rtms[i].get();
    }
    arbiter.check_invariants();

    CosimOptions cosim;
    cosim.mode = options.cosim;
    cosim.pool = options.parallel_tenants ? &pool : nullptr;
    std::vector<SimResult> device_results =
        run_tenants(arbiter, std::span<TenantRun>(runs), cosim);
    arbiter.check_invariants();
    for (std::size_t i = 0; i < k; ++i)
      session_results[first + i] = std::move(device_results[i]);
    device_grants[d] = arbiter.grants();
    device_evictions[d] = arbiter.evictions();
    device_port_wait[d] = arbiter.port_wait_cycles();
  });
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  report.sessions_per_min =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.sessions) * 60.0 / report.wall_seconds
          : 0.0;

  for (std::size_t d = 0; d < devices; ++d) {
    report.grants += device_grants[d];
    report.evictions += device_evictions[d];
    report.port_wait_cycles += device_port_wait[d];
  }

  std::vector<Cycles> cycles(specs.size());
  Cycles rispp_total = 0;
  Cycles software_total = 0;
  std::uint64_t checksum = fingerprint_mix(0, specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    cycles[s] = session_results[s].total_cycles;
    rispp_total += cycles[s];
    software_total += software_cycles[entry_of[s]];
    checksum = fingerprint_mix(checksum, cycles[s]);
  }
  report.cycles_checksum = checksum;
  // Per-tenant session-latency series: sessions map onto tenant slots in
  // arrival order, so slot = session % tenants_per_device aggregates the
  // same slot across devices.
  for (std::size_t s = 0; s < specs.size(); ++s)
    metric_histogram("fleet.contended.session_cycles",
                     {"tenant", static_cast<std::uint64_t>(s % per_device)})
        .record(cycles[s]);
  // Shared report path (base/quantile.h); kExact keeps p50/p99 bit-exact
  // with the old sort-based block.
  const PercentilePair<Cycles> cycle_pcts =
      record_and_percentiles(cycles, metric_histogram("fleet.contended.session_cycles"),
                             /*to_units=*/1.0, QuantileMode::kExact);
  report.sim_cycles_p50 = cycle_pcts.p50;
  report.sim_cycles_p99 = cycle_pcts.p99;
  report.aggregate_speedup =
      rispp_total > 0
          ? static_cast<double>(software_total) / static_cast<double>(rispp_total)
          : 0.0;

  metric_gauge("fleet.contended.aggregate_speedup").set(report.aggregate_speedup);
  metric_gauge("fleet.contended.sim_cycles_p50")
      .set(static_cast<double>(report.sim_cycles_p50));
  metric_gauge("fleet.contended.sim_cycles_p99")
      .set(static_cast<double>(report.sim_cycles_p99));
  static MetricCounter& sessions_metric = metric_counter("fleet.sessions_completed");
  sessions_metric.add(specs.size());

  if (results != nullptr) *results = std::move(session_results);
  return report;
}

}  // namespace rispp::fleet
