// Process-wide workload-trace cache for fleet simulation.
//
// Generating a workload trace (encoding H.264 frames or compressing JPEG
// images) costs orders of magnitude more than replaying it, and a fleet's
// sessions cluster on a handful of distinct contents. The repository
// memoizes (content kind, length, dimensions) → {SI set, trace, forecast
// seeds} once per process; every session of a cohort replays the same const
// WorkloadTrace, which is safe because replay never mutates the trace (the
// same contract the parallel sweep harness relies on). Entries are never
// evicted — a fleet run resolves its cohorts up front and the distinct
// content count is tiny compared to the session count.
//
// A memory miss consults the on-disk trace cache before generating: the SI
// set and forecast seeds are rebuilt in-process (cheap), and the recorded
// trace itself is loaded from trace_cache_dir() when a file keyed by the
// same workload fingerprint exists — the same key scheme the bench harness
// uses, so one warm cache serves both. Generation still writes the file
// (atomic tmp + rename), so the second process to want a content gets it
// for the cost of a load.
//
// Metrics: fleet.trace_cache.{hits,misses,disk_hits} — the in-memory hit
// rate climbs with fleet size, which is the point; disk_hits track
// cross-process reuse.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fleet/session.h"
#include "isa/si.h"
#include "sim/trace.h"

namespace rispp::fleet {

/// Everything a session needs to replay one content: the SI set the trace
/// was recorded against, the trace itself (runs built), and the design-time
/// forecast seeds per (hot spot, SI).
struct TraceEntry {
  SpecialInstructionSet set;
  WorkloadTrace trace;
  std::vector<std::vector<std::uint64_t>> seeds;

  explicit TraceEntry(SpecialInstructionSet s) : set(std::move(s)) {}
};

class TraceRepository {
 public:
  /// Returns the memoized entry for the spec's content, generating it on
  /// first use (generation runs under the repository lock — resolve cohorts
  /// before fanning sessions out, as SessionBatch's constructor does).
  /// The reference stays valid for the repository's lifetime.
  const TraceEntry& get(const SessionSpec& spec);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// Memory misses that were satisfied from the on-disk trace cache.
  std::uint64_t disk_hits() const;
  std::size_t size() const;

  /// The process-wide instance (never destroyed: entries outlive sessions).
  static TraceRepository& global();

 private:
  struct Key {
    int content;
    int frames;
    int width;
    int height;
    auto operator<=>(const Key&) const = default;
  };

  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<TraceEntry>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t disk_hits_ = 0;
};

}  // namespace rispp::fleet
