#include "fleet/spec.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>

#include "base/apportion.h"
#include "base/env.h"
#include "base/prng.h"
#include "sched/registry.h"

namespace rispp::fleet {

namespace {

[[noreturn]] void die(const char* label, const char* text, const char* expected) {
  std::fprintf(stderr, "%s=%s does not parse: expected %s\n", label, text, expected);
  std::exit(kEnvParseExitCode);
}

std::vector<std::string> split_commas(std::string_view text) {
  std::vector<std::string> parts;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    parts.emplace_back(text.substr(0, comma));
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  return parts;
}

}  // namespace

void parse_mix_or_die(const char* label, const char* text, FleetSpec& spec) {
  constexpr const char* kExpected = "a weight list like \"h264=4,jpeg=1\"";
  if (text == nullptr || *text == '\0') die(label, text == nullptr ? "" : text, kExpected);
  unsigned h264 = 0;
  unsigned jpeg = 0;
  for (const std::string& part : split_commas(text)) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) die(label, text, kExpected);
    const std::string kind = part.substr(0, eq);
    const auto weight = parse_int_strict(part.c_str() + eq + 1, 0, 1'000'000);
    if (!weight) die(label, text, kExpected);
    if (kind == "h264")
      h264 = static_cast<unsigned>(*weight);
    else if (kind == "jpeg")
      jpeg = static_cast<unsigned>(*weight);
    else
      die(label, text, kExpected);
  }
  if (h264 + jpeg == 0) die(label, text, "at least one positive weight");
  spec.h264_weight = h264;
  spec.jpeg_weight = jpeg;
}

void parse_range_or_die(const char* label, const char* text, long min_value,
                        long max_value, int& lo, int& hi) {
  constexpr const char* kExpected = "an integer or a range like \"2..8\"";
  if (text == nullptr || *text == '\0') die(label, text == nullptr ? "" : text, kExpected);
  const std::string_view view(text);
  const std::size_t dots = view.find("..");
  if (dots == std::string_view::npos) {
    const auto value = parse_int_strict(text, min_value, max_value);
    if (!value) die(label, text, kExpected);
    lo = hi = static_cast<int>(*value);
    return;
  }
  const std::string first(view.substr(0, dots));
  const std::string second(view.substr(dots + 2));
  const auto lo_value = parse_int_strict(first.c_str(), min_value, max_value);
  const auto hi_value = parse_int_strict(second.c_str(), min_value, max_value);
  if (!lo_value || !hi_value || *lo_value > *hi_value) die(label, text, kExpected);
  lo = static_cast<int>(*lo_value);
  hi = static_cast<int>(*hi_value);
}

std::vector<std::string> parse_schedulers_or_die(const char* label, const char* text) {
  if (text == nullptr || *text == '\0')
    die(label, text == nullptr ? "" : text, "a scheduler list like \"HEF,SJF\"");
  const std::vector<std::string> known = scheduler_names();
  std::vector<std::string> names = split_commas(text);
  for (const std::string& name : names)
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::string expected = "scheduler names from {";
      for (std::size_t i = 0; i < known.size(); ++i) {
        if (i != 0) expected += ", ";
        expected += known[i];
      }
      expected += "}";
      die(label, text, expected.c_str());
    }
  return names;
}

double parse_arrival_or_die(const char* label, const char* text) {
  constexpr const char* kExpected = "\"all\" or \"uniform:<sessions_per_min>\"";
  if (text == nullptr || *text == '\0') die(label, text == nullptr ? "" : text, kExpected);
  if (std::strcmp(text, "all") == 0) return 0.0;
  constexpr std::string_view kUniform = "uniform:";
  const std::string_view view(text);
  if (view.substr(0, kUniform.size()) != kUniform) die(label, text, kExpected);
  const std::string rate(view.substr(kUniform.size()));
  const auto per_min = parse_int_strict(rate.c_str(), 1, 100'000'000);
  if (!per_min) die(label, text, kExpected);
  return static_cast<double>(*per_min);
}

PartitionMode parse_partition_or_die(const char* label, const char* text) {
  constexpr const char* kExpected = "\"static\" or \"weighted\"";
  if (text == nullptr || *text == '\0') die(label, text == nullptr ? "" : text, kExpected);
  if (std::strcmp(text, "static") == 0) return PartitionMode::kStatic;
  if (std::strcmp(text, "weighted") == 0) return PartitionMode::kBenefitWeighted;
  die(label, text, kExpected);
}

void apply_fleet_env(FleetSpec& spec) {
  spec.sessions =
      static_cast<int>(parse_env_int("RISPP_SESSIONS", spec.sessions, 1, 10'000'000));
  spec.tenants = static_cast<int>(parse_env_int(
      "RISPP_TENANTS", spec.tenants, 1, static_cast<long>(FabricArbiter::kMaxTenants)));
}

std::vector<SessionSpec> expand_fleet_spec(const FleetSpec& spec) {
  Xoshiro256 prng(spec.seed);
  std::vector<SessionSpec> sessions;
  sessions.reserve(static_cast<std::size_t>(std::max(spec.sessions, 0)));
  const double spacing_ms =
      spec.arrival_per_min > 0.0 ? 60'000.0 / spec.arrival_per_min : 0.0;

  // Exact content split: largest-remainder apportionment of the session
  // count over the mix weights (the old per-session PRNG draw only matched
  // the mix in expectation — an N=5 "h264=4,jpeg=1" fleet could easily come
  // out all-h264), interleaved by smooth weighted round-robin so contents
  // alternate in arrival order at the mix ratio.
  const std::uint64_t weights[] = {spec.h264_weight, spec.jpeg_weight};
  const std::vector<std::uint64_t> counts = apportion_largest_remainder(
      static_cast<std::uint64_t>(std::max(spec.sessions, 0)), weights);
  std::int64_t credit[] = {0, 0};
  std::uint64_t emitted[] = {0, 0};
  for (int s = 0; s < spec.sessions; ++s) {
    // Accumulate each content's remaining entitlement; the largest credit
    // (ties to h264) emits next. Exhausted contents stop accruing.
    for (int k = 0; k < 2; ++k)
      credit[k] = emitted[k] < counts[k] ? credit[k] + static_cast<std::int64_t>(counts[k])
                                         : std::numeric_limits<std::int64_t>::min();
    const int pick = credit[1] > credit[0] ? 1 : 0;
    credit[pick] -= spec.sessions;
    ++emitted[pick];

    SessionSpec session;
    session.content = pick == 0 ? Content::kH264 : Content::kJpeg;
    session.frames = static_cast<int>(prng.range(spec.frames_min, spec.frames_max));
    session.scheduler = spec.schedulers[prng.bounded(spec.schedulers.size())];
    session.container_count =
        static_cast<unsigned>(prng.range(spec.acs_min, spec.acs_max));
    session.arrival_ms = spacing_ms * static_cast<double>(s);
    sessions.push_back(std::move(session));
  }
  return sessions;
}

}  // namespace rispp::fleet
