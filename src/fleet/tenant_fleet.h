// Contended-fleet simulation: sessions sharing devices (DESIGN §9).
//
// The classic fleet (session_batch.h) gives every session its own device —
// sessions only share immutable traces and memoized decisions, so they
// parallelize freely. The contended fleet packs `tenants_per_device`
// consecutive sessions onto one device whose fabric they share through a
// FabricArbiter: each device is one serial co-simulation (run_tenants), and
// devices fan out across the thread pool. The interesting outputs shift from
// wall-clock throughput to *simulated* contention: how much of the solo
// speedup survives the shared port and the split fabric, and how long the
// per-tenant tail gets (fig_multitenant sweeps both against tenant count and
// partition mode).
#pragma once

#include <cstdint>
#include <vector>

#include "base/parallel.h"
#include "base/types.h"
#include "fleet/session.h"
#include "fleet/trace_repository.h"
#include "rtm/fabric_arbiter.h"
#include "rtm/tenant_sim.h"
#include "sim/stats.h"

namespace rispp::fleet {

struct ContendedOptions {
  /// Sessions packed onto one device (arrival order; the last device takes
  /// the remainder). 1 gives every session a private arbiter — bit-identical
  /// to the solo path.
  int tenants_per_device = 4;
  /// Atom Containers each tenant contributes (device fabric = tenants *
  /// acs_per_tenant).
  int acs_per_tenant = 8;
  /// Quota floor per tenant (clamped to acs_per_tenant).
  int floor = 2;
  PartitionMode partition = PartitionMode::kStatic;
  /// Pool to fan devices over; null uses ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// Trace repository; null uses the global one.
  TraceRepository* traces = nullptr;
  /// Per-device co-simulation mode: the epoch-based fast-forward (default)
  /// or the instance-stepped reference oracle. Bit-identical results.
  CosimMode cosim = CosimMode::kFastForward;
  /// Also step one device's tenants in parallel during quiescent epochs
  /// (kFastForward only). With devices already fanned over the pool this
  /// degenerates serial (reentrant parallel_for runs inline); it pays off
  /// for few-device, many-tenant shapes.
  bool parallel_tenants = false;
};

struct ContendedReport {
  std::size_t sessions = 0;
  std::size_t devices = 0;
  double wall_seconds = 0.0;
  double sessions_per_min = 0.0;
  /// Per-tenant completion time in *simulated* cycles (the tail a tenant
  /// application actually experiences under contention).
  Cycles sim_cycles_p50 = 0;
  Cycles sim_cycles_p99 = 0;
  /// Σ software-only cycles / Σ RISPP cycles over all sessions — the fleet's
  /// aggregate speedup (1-tenant devices reproduce the solo speedup).
  double aggregate_speedup = 0.0;
  /// Arbiter activity summed over all devices.
  std::uint64_t grants = 0;
  std::uint64_t evictions = 0;
  std::uint64_t port_wait_cycles = 0;
  /// Order-independent digest of every session's total_cycles (comparable
  /// across thread counts; determinism is per-device, not per-schedule).
  std::uint64_t cycles_checksum = 0;
};

/// Runs the contended fleet. When `results` is non-null it receives one
/// SimResult per session (spec order) — the equivalence tests compare these
/// against solo runs.
ContendedReport run_contended_fleet(const std::vector<SessionSpec>& specs,
                                    const ContendedOptions& options,
                                    std::vector<SimResult>* results = nullptr);

}  // namespace rispp::fleet
