#include "fleet/session_batch.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <string>
#include <thread>

#include "base/check.h"
#include "base/metrics.h"
#include "base/quantile.h"
#include "isa/si.h"
#include "base/trace_event.h"
#include "sched/registry.h"
#include "sim/executor.h"

namespace rispp::fleet {

namespace {

const char* content_name(Content content) {
  return content == Content::kH264 ? "h264" : "jpeg";
}

}  // namespace

SessionBatch::SessionBatch(std::vector<SessionSpec> specs, const FleetOptions& options)
    : specs_(std::move(specs)), options_(options) {
  if (options_.traces == nullptr) options_.traces = &TraceRepository::global();
  if (options_.share_decision_cache && options_.shared_cache == nullptr)
    options_.shared_cache = &SharedDecisionCache::global();
  const std::size_t n = specs_.size();

  // Validate scheduler names up front: a bad spec must fail at construction,
  // not halfway through a fleet run on a pool worker.
  for (const SessionSpec& spec : specs_) (void)make_scheduler(spec.scheduler);

  // Resolve cohorts (content → shared trace) serially; the repository
  // generates each distinct content exactly once.
  cohort_of_.resize(n);
  std::map<const TraceEntry*, std::uint32_t> cohort_ids;
  for (std::size_t s = 0; s < n; ++s) {
    const TraceEntry& entry = options_.traces->get(specs_[s]);
    const auto [it, inserted] =
        cohort_ids.emplace(&entry, static_cast<std::uint32_t>(cohorts_.size()));
    if (inserted) cohorts_.push_back(&entry);
    cohort_of_[s] = it->second;
  }

  // SoA layout. Per-session hot-spot rows are flattened with per-cohort
  // strides so results live in one contiguous array.
  total_cycles_.assign(n, 0);
  si_executions_.assign(n, 0);
  atom_loads_.assign(n, 0);
  latency_ms_.assign(n, 0.0);
  dc_hits_.assign(n, 0);
  dc_misses_.assign(n, 0);
  hot_spot_offset_.resize(n);
  std::uint32_t offset = 0;
  for (std::size_t s = 0; s < n; ++s) {
    hot_spot_offset_[s] = offset;
    offset += static_cast<std::uint32_t>(cohorts_[cohort_of_[s]]->trace.hot_spots.size());
  }
  hot_spot_cycles_.assign(offset, 0);
  if (options_.collect_stats) stats_.resize(n);

  // Blocks: per cohort, sessions in arrival order, chunks of block_size;
  // the global block order is by arrival so the pool's FIFO ownership deals
  // work out in the order sessions become runnable.
  const unsigned block_size = std::max(1u, options_.block_size);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return specs_[a].arrival_ms < specs_[b].arrival_ms;
  });
  std::vector<Block*> open(cohorts_.size(), nullptr);
  std::vector<std::unique_ptr<Block>> built;
  for (const std::uint32_t s : order) {
    const std::uint32_t cohort = cohort_of_[s];
    if (open[cohort] == nullptr || open[cohort]->sessions.size() >= block_size) {
      built.push_back(std::make_unique<Block>());
      open[cohort] = built.back().get();
      open[cohort]->cohort = cohort;
      open[cohort]->arrival_ms = specs_[s].arrival_ms;
    }
    open[cohort]->sessions.push_back(s);
  }
  blocks_.reserve(built.size());
  for (auto& block : built) blocks_.push_back(std::move(*block));
  std::stable_sort(blocks_.begin(), blocks_.end(),
                   [](const Block& a, const Block& b) { return a.arrival_ms < b.arrival_ms; });
  if (trace_enabled())
    for (Block& block : blocks_) {
      const SessionSpec& first = specs_[block.sessions.front()];
      block.trace_name = trace_intern(std::string("block ") + content_name(first.content) +
                                      " x" + std::to_string(block.sessions.size()));
    }
}

void SessionBatch::run_block(const Block& block) {
  // Honor the arrival schedule: a block never starts before its earliest
  // member arrives (blocks are dealt in arrival order, so a sleeping worker
  // models the arrival process, not a scheduling artifact).
  const auto arrival_point =
      start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(block.arrival_ms));
  if (std::chrono::steady_clock::now() < arrival_point)
    std::this_thread::sleep_until(arrival_point);
  if (block.trace_name != nullptr)
    trace_begin_now(TraceTrack::kFleet, block.trace_name);

  const TraceEntry& entry = *cohorts_[block.cohort];
  const WorkloadTrace& trace = entry.trace;
  const std::size_t k = block.sessions.size();

  // Per-session backends plus the SoA clock array for this block.
  std::vector<std::unique_ptr<AtomScheduler>> schedulers(k);
  std::vector<std::unique_ptr<RunTimeManager>> backends(k);
  std::vector<Cycles> now(k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    const SessionSpec& spec = specs_[block.sessions[i]];
    schedulers[i] = make_scheduler(spec.scheduler);
    RtmConfig config;
    config.container_count = spec.container_count;
    config.scheduler = schedulers[i].get();
    config.forecast_mode = spec.forecast_mode;
    config.shared_decision_cache =
        options_.share_decision_cache ? options_.shared_cache : nullptr;
    config.session_id = block.sessions[i];
    backends[i] = std::make_unique<RunTimeManager>(&entry.set, trace.hot_spots.size(), config);
    for (HotSpotId hs = 0; hs < entry.seeds.size(); ++hs)
      for (SiId si = 0; si < entry.seeds[hs].size(); ++si)
        if (entry.seeds[hs][si] != 0) backends[i]->seed_forecast(hs, si, entry.seeds[hs][si]);
    if (options_.collect_stats)
      stats_[block.sessions[i]] = std::make_unique<SimStats>(entry.set.si_count());
  }

  // Instance-major stepping: the shared instance (and its run array) stays
  // cache-resident while every session of the block consumes it. Each
  // session's state evolves through sim::replay_instance — the same body as
  // run_trace's batched mode and the multi-tenant co-simulation — so
  // per-session results are bit-identical to a solo replay.
  std::vector<LatencySegment> segments;
  std::vector<SiRun> local_runs;  // fallback for traces without a run form
  for (std::size_t idx = 0; idx < trace.instances.size(); ++idx) {
    const HotSpotInstance& inst = trace.instances[idx];
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint32_t s = block.sessions[i];
      const Cycles entered = now[i];
      SimStats* stats = options_.collect_stats ? stats_[s].get() : nullptr;
      now[i] = replay_instance(trace, idx, *backends[i], stats, now[i], si_executions_[s],
                               segments, local_runs);
      hot_spot_cycles_[hot_spot_offset_[s] + inst.hot_spot] += now[i] - entered;
    }
  }

  const auto done = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t s = block.sessions[i];
    total_cycles_[s] = now[i];
    atom_loads_[s] = backends[i]->completed_loads();
    dc_hits_[s] = backends[i]->decision_cache_hits();
    dc_misses_[s] = backends[i]->decision_cache_misses();
    // Completion latency from the session's own arrival; the block is the
    // scheduling quantum, so its members complete together.
    const double since_start =
        std::chrono::duration<double, std::milli>(done - start_).count();
    latency_ms_[s] = since_start - specs_[s].arrival_ms;
  }
  if (block.trace_name != nullptr) trace_end_now(TraceTrack::kFleet, block.trace_name);
}

void SessionBatch::run() {
  static MetricCounter& sessions_metric = metric_counter("fleet.sessions_completed");
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : ThreadPool::global();
  start_ = std::chrono::steady_clock::now();
  pool.parallel_for(blocks_.size(), [&](std::size_t b) { run_block(blocks_[b]); });
  sessions_metric.add(specs_.size());
}

SimResult SessionBatch::result(std::size_t s) const {
  SimResult result;
  result.total_cycles = total_cycles_[s];
  result.si_executions = si_executions_[s];
  result.atom_loads = atom_loads_[s];
  const std::size_t hot_spots = cohorts_[cohort_of_[s]]->trace.hot_spots.size();
  result.hot_spot_cycles.assign(hot_spot_cycles_.begin() + hot_spot_offset_[s],
                                hot_spot_cycles_.begin() + hot_spot_offset_[s] + hot_spots);
  return result;
}

const SimStats* SessionBatch::stats(std::size_t s) const {
  return s < stats_.size() ? stats_[s].get() : nullptr;
}

FleetReport run_fleet(SessionBatch& batch) {
  FleetReport report;
  report.sessions = batch.session_count();
  if (report.sessions == 0) return report;

  const FleetOptions& options = batch.options();
  const SharedDecisionCache* cache =
      options.share_decision_cache ? options.shared_cache : nullptr;
  const std::uint64_t hits0 = cache != nullptr ? cache->hits() : 0;
  const std::uint64_t misses0 = cache != nullptr ? cache->misses() : 0;
  const std::uint64_t cross0 = cache != nullptr ? cache->cross_session_hits() : 0;

  const auto t0 = std::chrono::steady_clock::now();
  batch.run();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  report.sessions_per_min =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.sessions) * 60.0 / report.wall_seconds
          : 0.0;

  std::vector<double> latencies(report.sessions);
  for (std::size_t s = 0; s < report.sessions; ++s) latencies[s] = batch.latency_ms(s);
  // Shared report path (base/quantile.h): the whole distribution lands in the
  // histogram (as µs) while the reported two points stay bit-exact with the
  // old sort-based block via the exact-mode toggle.
  const PercentilePair<double> latency_pcts =
      record_and_percentiles(latencies, metric_histogram("fleet.session_latency_us"),
                             /*to_units=*/1000.0, QuantileMode::kExact);
  report.latency_p50_ms = latency_pcts.p50;
  report.latency_p99_ms = latency_pcts.p99;

  if (cache != nullptr) {
    report.cache_hits = cache->hits() - hits0;
    report.cache_misses = cache->misses() - misses0;
    report.cross_session_hits = cache->cross_session_hits() - cross0;
    const std::uint64_t lookups = report.cache_hits + report.cache_misses;
    report.cross_session_hit_rate =
        lookups > 0 ? static_cast<double>(report.cross_session_hits) /
                          static_cast<double>(lookups)
                    : 0.0;
  }

  std::uint64_t checksum = fingerprint_mix(0, report.sessions);
  for (std::size_t s = 0; s < report.sessions; ++s)
    checksum = fingerprint_mix(checksum, batch.result(s).total_cycles);
  report.cycles_checksum = checksum;

  metric_gauge("fleet.sessions_per_min").set(report.sessions_per_min);
  metric_gauge("fleet.session_latency_p50_ms").set(report.latency_p50_ms);
  metric_gauge("fleet.session_latency_p99_ms").set(report.latency_p99_ms);
  metric_gauge("fleet.cross_session_hit_rate").set(report.cross_session_hit_rate);
  return report;
}

FleetReport run_fleet(const std::vector<SessionSpec>& specs, const FleetOptions& options) {
  SessionBatch batch(specs, options);
  return run_fleet(batch);
}

}  // namespace rispp::fleet
