// Batched multi-session simulation: the fleet-scale core.
//
// A SessionBatch replays thousands of independent sessions (heterogeneous
// content, length, scheduler strategy, AC budget, forecast mode) in one
// process, restructured for throughput:
//
//  - Structure of arrays: per-session hot state (simulated clocks, cursors,
//    result counters, completion latencies) lives in parallel arrays indexed
//    by session id, not in per-session objects — one cache line holds eight
//    sessions' clocks, and the batch's result accessors read straight out of
//    the arrays.
//  - Cohorts: sessions that replay the same content share one immutable
//    WorkloadTrace via the process-wide fleet::TraceRepository. Cohort
//    stepping is *instance-major*: for each hot-spot instance of the shared
//    trace, every session of a block advances through that instance before
//    the walk moves on — the instance's run array stays resident in cache
//    across the whole block instead of being re-streamed once per session.
//  - Blocks: sessions of one cohort are grouped (arrival order) into blocks
//    of `block_size`; blocks are the work items the work-stealing ThreadPool
//    deals across workers, so stealing moves whole session groups *between*
//    sessions rather than splitting one session (a session's replay is
//    inherently serial — simulated time is a chain).
//  - Shared decisions: all sessions memoize through one
//    fleet::SharedDecisionCache, so a session's decisions are mostly replays
//    of decisions other sessions already computed.
//
// Correctness contract: every session's simulated results are bit-identical
// to the same session run alone through sim::run_trace on a fresh backend —
// batching, blocking, stealing and cache sharing may only change wall-clock.
// tests/fleet_test.cpp asserts this over randomized mixes, schedulers and
// thread counts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/parallel.h"
#include "fleet/session.h"
#include "fleet/shared_decision_cache.h"
#include "fleet/trace_repository.h"
#include "sim/stats.h"

namespace rispp::fleet {

struct FleetOptions {
  /// Sessions per work-stealing block (the stealing granularity).
  unsigned block_size = 8;
  /// Collect full per-session SimStats (buckets, latency timelines) — the
  /// equivalence tests use this; throughput runs leave it off to take the
  /// whole-instance span fast path.
  bool collect_stats = false;
  /// Memoize decisions through a process-wide SharedDecisionCache. Off gives
  /// every session its own per-RTM cache (bit-exact either way).
  bool share_decision_cache = true;
  /// Cache to share; null with share_decision_cache uses the global one.
  SharedDecisionCache* shared_cache = nullptr;
  /// Trace repository; null uses the global one.
  TraceRepository* traces = nullptr;
  /// Pool to fan blocks over; null uses ThreadPool::global().
  ThreadPool* pool = nullptr;
};

class SessionBatch {
 public:
  /// Resolves every spec's cohort (generating missing traces now, serially)
  /// and lays out the SoA state. Throws on unknown scheduler names.
  SessionBatch(std::vector<SessionSpec> specs, const FleetOptions& options);

  /// Replays every session to completion, fanning blocks across the pool in
  /// arrival order and honoring each session's arrival offset.
  void run();

  // -- Per-session results (valid after run()) ---------------------------
  std::size_t session_count() const { return specs_.size(); }
  const SessionSpec& spec(std::size_t s) const { return specs_[s]; }
  /// Reassembled from the SoA arrays; bit-identical to the solo run.
  SimResult result(std::size_t s) const;
  /// Null unless options.collect_stats.
  const SimStats* stats(std::size_t s) const;
  /// Wall milliseconds from the session's arrival to its completion.
  double latency_ms(std::size_t s) const { return latency_ms_[s]; }
  std::uint64_t decision_cache_hits(std::size_t s) const { return dc_hits_[s]; }
  std::uint64_t decision_cache_misses(std::size_t s) const { return dc_misses_[s]; }

  std::size_t cohort_count() const { return cohorts_.size(); }
  std::size_t block_count() const { return blocks_.size(); }
  /// The options as resolved by the constructor (null caches filled in).
  const FleetOptions& options() const { return options_; }

 private:
  struct Block {
    std::uint32_t cohort = 0;
    std::vector<std::uint32_t> sessions;  // batch session ids, arrival order
    double arrival_ms = 0.0;              // earliest member arrival
    const char* trace_name = nullptr;     // interned label, null untraced
  };

  void run_block(const Block& block);

  std::vector<SessionSpec> specs_;
  FleetOptions options_;
  std::vector<const TraceEntry*> cohorts_;
  std::vector<std::uint32_t> cohort_of_;  // per session
  std::vector<Block> blocks_;             // ordered by arrival

  // -- SoA result state (written by run_block, one slot per session) -----
  std::vector<Cycles> total_cycles_;
  std::vector<std::uint64_t> si_executions_;
  std::vector<std::uint64_t> atom_loads_;
  std::vector<std::uint32_t> hot_spot_offset_;  // into hot_spot_cycles_
  std::vector<Cycles> hot_spot_cycles_;         // flattened per-session rows
  std::vector<double> latency_ms_;
  std::vector<std::uint64_t> dc_hits_;
  std::vector<std::uint64_t> dc_misses_;
  std::vector<std::unique_ptr<SimStats>> stats_;  // collect_stats only

  std::chrono::steady_clock::time_point start_;
};

/// Summary of one fleet run (tools/fleet_driver.cpp, bench/fleet_throughput).
struct FleetReport {
  std::size_t sessions = 0;
  double wall_seconds = 0.0;
  double sessions_per_min = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  /// Shared-decision-cache activity attributable to this run (deltas).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cross_session_hits = 0;
  /// cross_session_hits / (hits + misses); 0 when the cache was off.
  double cross_session_hit_rate = 0.0;
  /// Order-independent digest of every session's total_cycles — lets two
  /// fleet runs (or a fleet run and a solo sweep) be compared at a glance.
  std::uint64_t cycles_checksum = 0;
};

/// Runs a caller-owned batch and summarizes: throughput, completion-latency
/// percentiles, shared-cache hit rates. Also publishes
/// fleet.sessions_per_min / fleet.session_latency_{p50,p99}_ms gauges to the
/// metrics registry so BENCH_SUITE.json picks them up. The batch's results
/// stay valid afterwards (the driver's --solo cross-check reads them).
FleetReport run_fleet(SessionBatch& batch);

/// Convenience: builds the batch from the specs and runs it.
FleetReport run_fleet(const std::vector<SessionSpec>& specs, const FleetOptions& options);

}  // namespace rispp::fleet
