// One fleet session: an independent simulated RTM run — which content it
// replays, under which platform/scheduler configuration, and when it
// arrives. Thousands of these are batched by fleet::SessionBatch.
#pragma once

#include <cstdint>
#include <string>

#include "rtm/run_time_manager.h"

namespace rispp::fleet {

enum class Content : std::uint8_t {
  kH264 = 0,  // synthetic CIF encode (the paper's workload)
  kJpeg = 1,  // synthetic RGB image stream
};

struct SessionSpec {
  Content content = Content::kH264;
  /// Sequence length: H.264 frames or JPEG images.
  int frames = 8;
  /// Content dimensions; 0 = the content's default (CIF 352x288 for H.264,
  /// 512x384 for JPEG).
  int width = 0;
  int height = 0;

  /// Scheduler strategy name (sched/registry.h): "FSFR", "ASF", "SJF", "HEF".
  std::string scheduler = "HEF";
  unsigned container_count = 10;
  ForecastMode forecast_mode = ForecastMode::kMonitored;

  /// Arrival offset from the fleet's start, in wall milliseconds. A session
  /// never starts before its arrival; completion latency is measured from
  /// it. 0 = present at fleet start.
  double arrival_ms = 0.0;
};

}  // namespace rispp::fleet
