// Fleet-mix specification and its strict parsers.
//
// A FleetSpec describes a population of sessions compactly — how many, the
// content mix, the length range, the scheduler strategies in rotation, the
// platform-size range, and the arrival schedule — and expand_fleet_spec
// deterministically expands it into concrete SessionSpecs with a seeded
// PRNG, so the same spec always yields byte-identical fleets (the
// equivalence tests and the CI smoke job depend on that).
//
// Parsing follows the base/env contract: a value that does not parse prints
// a diagnostic naming the offending variable or flag and exits with
// kEnvParseExitCode (2). Silent fallback on a typo'd fleet spec would burn a
// whole throughput run before anyone noticed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/session.h"
#include "rtm/fabric_arbiter.h"

namespace rispp::fleet {

struct FleetSpec {
  /// Session count; RISPP_SESSIONS / --sessions.
  int sessions = 1000;
  /// Content mix weights; --mix "h264=4,jpeg=1". Zero weight drops a kind.
  unsigned h264_weight = 4;
  unsigned jpeg_weight = 1;
  /// Sequence-length range (inclusive); --frames "2..8" or a single "4".
  int frames_min = 2;
  int frames_max = 8;
  /// Scheduler strategies in rotation; --schedulers "HEF,SJF". Every name
  /// must come from sched/registry's scheduler_names().
  std::vector<std::string> schedulers = {"HEF"};
  /// Atom-container count range (inclusive); --acs "5..20" or "10".
  int acs_min = 10;
  int acs_max = 10;
  /// Arrival schedule; --arrival "all" (everyone present at start, 0) or
  /// "uniform:<sessions_per_min>" (evenly spaced arrivals at that rate).
  double arrival_per_min = 0.0;
  /// PRNG seed for the expansion; --seed.
  std::uint64_t seed = 1;
  /// Multi-tenant mode; RISPP_TENANTS / --tenants. 1 = each session owns a
  /// whole device (the classic fleet); >1 = consecutive sessions share one
  /// device's fabric through a FabricArbiter, `tenants` per device.
  int tenants = 1;
  /// Atom Containers contributed per tenant (device fabric = tenants *
  /// acs_per_tenant); --acs-per-tenant.
  int acs_per_tenant = 8;
  /// Per-tenant quota floor under rebalancing/eviction; --floor.
  int tenant_floor = 2;
  /// Fabric partitioning under contention; --partition "static"|"weighted".
  PartitionMode partition = PartitionMode::kStatic;
};

/// Parses "h264=4,jpeg=1" (either kind may be omitted; at least one weight
/// must be positive) into the spec's weights. `label` names the flag or
/// variable in the diagnostic. Exits kEnvParseExitCode on garbage.
void parse_mix_or_die(const char* label, const char* text, FleetSpec& spec);

/// Parses "lo..hi" or a single "v" into an inclusive range within
/// [min_value, max_value] with lo <= hi. Exits kEnvParseExitCode on garbage.
void parse_range_or_die(const char* label, const char* text, long min_value,
                        long max_value, int& lo, int& hi);

/// Parses a comma-separated scheduler list, validating every name against
/// scheduler_names(). Exits kEnvParseExitCode on an unknown name.
std::vector<std::string> parse_schedulers_or_die(const char* label, const char* text);

/// Parses "all" or "uniform:<per_min>" into an arrival rate (0 = all at
/// start). Exits kEnvParseExitCode on garbage.
double parse_arrival_or_die(const char* label, const char* text);

/// Parses "static" or "weighted". Exits kEnvParseExitCode on garbage.
PartitionMode parse_partition_or_die(const char* label, const char* text);

/// Reads the RISPP_SESSIONS and RISPP_TENANTS environment variables into the
/// spec (strict: garbage exits kEnvParseExitCode naming the variable; unset
/// leaves the spec untouched).
void apply_fleet_env(FleetSpec& spec);

/// Deterministically expands the spec into concrete sessions with a
/// Xoshiro256 seeded from spec.seed. Same spec, same fleet — always.
/// The content mix is exact, not sampled: the session counts per content are
/// apportioned by largest remainder (so "h264=4,jpeg=1" over 1000 sessions
/// yields exactly 800/200, and over any N the split is within one session of
/// N*weight/total), then interleaved by smooth weighted round-robin so the
/// arrival order mixes contents instead of batching them.
std::vector<SessionSpec> expand_fleet_spec(const FleetSpec& spec);

}  // namespace rispp::fleet
