// Process-wide, thread-safe RTM decision cache shared across sessions.
//
// The per-RTM decision cache (rtm/run_time_manager.h, DESIGN §6.2) memoizes
// the selection→schedule pipeline on (hot-spot SIs, forecast, ready atoms,
// budget) — a key that is complete only because the SI set, the scheduler
// strategy and the payback constant are per-RTM constants. In a fleet,
// thousands of sessions replay the same handful of contents under the same
// handful of scheduler/AC configs, so their decision keys collide massively
// *across* sessions: this cache hoists the memo to the process, keyed
// additionally on a registered "domain" (SI-set fingerprint, scheduler name,
// payback constant — the per-RTM constants made explicit), so session B hits
// decisions session A computed. Replaying a hit stays bit-exact by the same
// argument as the per-RTM cache: the value is a pure function of the full
// key, and the domain makes the key complete across heterogeneous sessions.
//
// Concurrency: the cache is sharded by key digest; each shard holds its own
// mutex, LRU list and digest→entry buckets, so concurrent sessions on the
// work-stealing pool contend only when their keys land in the same shard.
// A hit copies the decision out under the shard lock (entries may be evicted
// by other sessions the moment the lock drops). Hash collisions degrade to a
// full key compare — including the exact domain id — never to a wrong
// decision.
//
// Metrics: fleet.decision_cache.{hits,misses,evictions,cross_session_hits};
// cross_session_hits counts hits on entries inserted by a *different*
// session — the number that should climb with fleet size.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "alg/molecule.h"
#include "base/types.h"
#include "isa/si.h"

namespace rispp::fleet {

/// The memoized result of one selection→schedule decision.
struct SharedDecision {
  std::vector<SiRef> selection;
  std::vector<AtomTypeId> loads;
};

class SharedDecisionCache {
 public:
  /// `capacity` bounds the total entry count across all shards (LRU per
  /// shard); `shards` is rounded up to a power of two.
  explicit SharedDecisionCache(std::size_t capacity = 1 << 16, unsigned shards = 16);

  /// A domain is the tuple of per-RTM constants the per-session cache key
  /// left implicit. Registration interns the exact tuple (same tuple → same
  /// id), so entry comparison on the id is an exact key compare, not a hash
  /// compare. `config_digest` folds every remaining RtmConfig knob that can
  /// change a decision (rtm_domain_digest: forecast mode today) — without it,
  /// two sessions with equal SI set / scheduler / payback but different
  /// configurations would intern the *same* domain and could replay each
  /// other's decisions.
  using DomainId = std::uint32_t;
  DomainId register_domain(std::uint64_t set_fingerprint, std::string_view scheduler,
                           Cycles payback_cycles_per_atom, std::uint64_t config_digest);

  /// Looks up the decision for the full key; on a hit copies it into `out`
  /// and returns true. `session` identifies the caller for the
  /// cross-session-hit metric.
  bool lookup(DomainId domain, std::uint64_t session, const std::vector<SiId>& sis,
              const std::vector<std::uint64_t>& forecast, const Molecule& ready,
              unsigned budget, SharedDecision& out);

  /// Inserts a freshly computed decision. A concurrent insert of the same
  /// key by another session is benign: the value is a pure function of the
  /// key, so whichever copy survives replays identically.
  void insert(DomainId domain, std::uint64_t session, const std::vector<SiId>& sis,
              const std::vector<std::uint64_t>& forecast, const Molecule& ready,
              unsigned budget, const SharedDecision& decision);

  // -- Introspection ----------------------------------------------------
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  /// Hits on entries inserted by a different session than the one looking up.
  std::uint64_t cross_session_hits() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  /// The process-wide instance the fleet driver shares across every session.
  static SharedDecisionCache& global();

 private:
  struct Entry {
    DomainId domain = 0;
    std::uint64_t session = 0;  // inserter (cross-session-hit accounting)
    std::vector<SiId> sis;
    std::vector<std::uint64_t> forecast;
    Molecule ready;
    unsigned budget = 0;
    std::uint64_t hash = 0;
    SharedDecision decision;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>> buckets;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t cross_session_hits = 0;
  };

  static std::uint64_t key_hash(DomainId domain, const std::vector<SiId>& sis,
                                const std::vector<std::uint64_t>& forecast,
                                const Molecule& ready, unsigned budget);
  Shard& shard_for(std::uint64_t hash) { return shards_[hash & shard_mask_]; }

  std::size_t capacity_;
  std::size_t shard_capacity_;
  std::size_t shard_mask_;
  std::vector<Shard> shards_;

  std::mutex domains_mutex_;
  struct Domain {
    std::uint64_t set_fingerprint;
    std::string scheduler;
    Cycles payback;
    std::uint64_t config_digest;
  };
  std::vector<Domain> domains_;
};

}  // namespace rispp::fleet
